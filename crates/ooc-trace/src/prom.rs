//! Deterministic Prometheus-text-format exposition writer and checker.
//!
//! The workload observatory publishes its SLO scorecards in the Prometheus
//! text format (version 0.0.4) so the simulated service can be scraped like
//! a real one. Rendering is byte-deterministic: metrics render in the order
//! given, labels in the order given, floats with a fixed `{:.9}` format —
//! two identical runs produce identical expositions, which CI `cmp`s.
//!
//! [`validate`] is the matching checker used by the `obs-smoke` job: it
//! re-parses an exposition and enforces the structural rules that matter
//! (name/label syntax, `# HELP`/`# TYPE` preceding samples, histogram `le`
//! buckets cumulative and ending in `+Inf`, finite sample values).

use std::fmt::Write as _;

/// Metric kind, mirroring the Prometheus `# TYPE` vocabulary we emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone counter.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Cumulative `le` buckets plus `_sum` / `_count`.
    Histogram,
}

impl MetricKind {
    fn label(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One sample of a counter or gauge metric: label pairs plus the value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Label `(name, value)` pairs, rendered in order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// One histogram series: label pairs plus cumulative buckets and moments.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSeries {
    /// Label `(name, value)` pairs shared by every bucket line.
    pub labels: Vec<(String, String)>,
    /// Cumulative `(upper_bound, count)` buckets in increasing bound order.
    /// The writer appends the mandatory `+Inf` bucket itself.
    pub buckets: Vec<(f64, u64)>,
    /// Sum of observed values.
    pub sum: f64,
    /// Total observations (the `+Inf` cumulative count).
    pub count: u64,
}

/// A metric family: name, help text, kind and its samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Metric family name (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
    pub name: String,
    /// One-line help text.
    pub help: String,
    /// Family kind.
    pub kind: MetricKind,
    /// Counter/gauge samples (ignored for histograms).
    pub samples: Vec<Sample>,
    /// Histogram series (ignored for counters/gauges).
    pub histograms: Vec<HistogramSeries>,
}

impl Metric {
    /// A gauge family with no samples yet.
    pub fn gauge(name: &str, help: &str) -> Metric {
        Metric {
            name: name.to_string(),
            help: help.to_string(),
            kind: MetricKind::Gauge,
            samples: Vec::new(),
            histograms: Vec::new(),
        }
    }

    /// A counter family with no samples yet.
    pub fn counter(name: &str, help: &str) -> Metric {
        Metric {
            kind: MetricKind::Counter,
            ..Metric::gauge(name, help)
        }
    }

    /// A histogram family with no series yet.
    pub fn histogram(name: &str, help: &str) -> Metric {
        Metric {
            kind: MetricKind::Histogram,
            ..Metric::gauge(name, help)
        }
    }

    /// Append a sample with the given labels.
    pub fn sample(mut self, labels: &[(&str, &str)], value: f64) -> Metric {
        self.samples.push(Sample {
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value,
        });
        self
    }

    /// Append a histogram series with the given labels.
    pub fn series(
        mut self,
        labels: &[(&str, &str)],
        buckets: Vec<(f64, u64)>,
        sum: f64,
        count: u64,
    ) -> Metric {
        self.histograms.push(HistogramSeries {
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            buckets,
            sum,
            count,
        });
        self
    }
}

/// Fixed-format float: `{:.9}` everywhere, so expositions never depend on
/// shortest-round-trip formatting details and stay byte-stable.
fn num(v: f64) -> String {
    format!("{v:.9}")
}

fn render_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Render metric families as a Prometheus text exposition. Deterministic:
/// byte-identical output for identical input.
pub fn render(metrics: &[Metric]) -> String {
    let mut out = String::new();
    for m in metrics {
        let _ = writeln!(out, "# HELP {} {}", m.name, m.help);
        let _ = writeln!(out, "# TYPE {} {}", m.name, m.kind.label());
        match m.kind {
            MetricKind::Counter | MetricKind::Gauge => {
                for s in &m.samples {
                    out.push_str(&m.name);
                    render_labels(&mut out, &s.labels, None);
                    let _ = writeln!(out, " {}", num(s.value));
                }
            }
            MetricKind::Histogram => {
                for h in &m.histograms {
                    for &(le, c) in &h.buckets {
                        let _ = write!(out, "{}_bucket", m.name);
                        render_labels(&mut out, &h.labels, Some(("le", &num(le))));
                        let _ = writeln!(out, " {c}");
                    }
                    let _ = write!(out, "{}_bucket", m.name);
                    render_labels(&mut out, &h.labels, Some(("le", "+Inf")));
                    let _ = writeln!(out, " {}", h.count);
                    let _ = write!(out, "{}_sum", m.name);
                    render_labels(&mut out, &h.labels, None);
                    let _ = writeln!(out, " {}", num(h.sum));
                    let _ = write!(out, "{}_count", m.name);
                    render_labels(&mut out, &h.labels, None);
                    let _ = writeln!(out, " {}", h.count);
                }
            }
        }
    }
    out
}

fn valid_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// A parsed sample line: metric name, label pairs, value.
type ParsedSample = (String, Vec<(String, String)>, f64);

/// Split `name{labels} value` into its parts; labels may be absent.
///
/// The close brace is found with a quote-aware scan — `}` (and `{`) are
/// legal inside quoted label values — and each label value is unescaped,
/// so `render` ∘ `split_sample` round-trips arbitrary values.
fn split_sample(line: &str) -> Result<ParsedSample, String> {
    let (name, labels, value) = match line.find('{') {
        Some(open) => {
            let mut in_quotes = false;
            let mut escaped = false;
            let mut close = None;
            for (i, c) in line[open + 1..].char_indices() {
                match c {
                    '\\' if in_quotes && !escaped => escaped = true,
                    '"' if !escaped => {
                        in_quotes = !in_quotes;
                    }
                    '}' if !in_quotes => {
                        close = Some(open + 1 + i);
                        break;
                    }
                    _ => escaped = false,
                }
            }
            let close =
                close.ok_or_else(|| format!("sample line without a closing '}}': {line:?}"))?;
            let body = line[open + 1..close].trim_end_matches(',');
            let mut pairs = Vec::new();
            if !body.is_empty() {
                for part in split_label_pairs(body)? {
                    let eq = part
                        .find('=')
                        .ok_or_else(|| format!("label without '=': {part:?}"))?;
                    let k = part[..eq].to_string();
                    let quoted = &part[eq + 1..];
                    let inner = quoted
                        .strip_prefix('"')
                        .and_then(|s| s.strip_suffix('"'))
                        .ok_or_else(|| format!("label value not quoted: {part:?}"))?;
                    pairs.push((k, unescape_label(inner)?));
                }
            }
            (line[..open].to_string(), pairs, line[close + 1..].trim())
        }
        None => {
            let sp = line
                .find(' ')
                .ok_or_else(|| format!("sample line without a value: {line:?}"))?;
            (line[..sp].to_string(), Vec::new(), line[sp + 1..].trim())
        }
    };
    let v = if value == "+Inf" {
        f64::INFINITY
    } else {
        value
            .parse::<f64>()
            .map_err(|_| format!("unparseable sample value {value:?}"))?
    };
    Ok((name, labels, v))
}

/// Undo [`escape_label`]: `\\` → `\`, `\"` → `"`, `\n` → newline. Any
/// other escape (or a dangling backslash) is a malformed exposition.
fn unescape_label(v: &str) -> Result<String, String> {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('n') => out.push('\n'),
            Some(c) => return Err(format!("unknown label escape '\\{c}' in {v:?}")),
            None => return Err(format!("dangling backslash in label value {v:?}")),
        }
    }
    Ok(out)
}

/// Split a label body on commas that sit outside quoted values.
fn split_label_pairs(body: &str) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut escaped = false;
    for c in body.chars() {
        match c {
            '\\' if in_quotes && !escaped => {
                escaped = true;
                cur.push(c);
            }
            '"' if !escaped => {
                in_quotes = !in_quotes;
                cur.push(c);
            }
            ',' if !in_quotes => {
                out.push(std::mem::take(&mut cur));
            }
            c => {
                escaped = false;
                cur.push(c);
            }
        }
    }
    if in_quotes {
        return Err(format!("unterminated label value in {body:?}"));
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    Ok(out)
}

/// Validate a Prometheus text exposition: every sample's family has `# HELP`
/// and `# TYPE` lines before it (each declared exactly once — a duplicated
/// family is how two expositions accidentally concatenated look), names and
/// labels are well-formed, sample
/// values are finite (except histogram `+Inf` bounds), and each histogram
/// series has cumulative bucket counts ending in a `+Inf` bucket that
/// matches its `_count`.
pub fn validate(text: &str) -> Result<(), String> {
    use std::collections::BTreeMap;
    let mut typed: BTreeMap<String, String> = BTreeMap::new();
    let mut helped: BTreeMap<String, bool> = BTreeMap::new();
    // (family, labels-without-le) -> (bucket cumulative counts in order,
    // +Inf count, _count value)
    type SeriesKey = (String, String);
    let mut buckets: BTreeMap<SeriesKey, Vec<(f64, u64)>> = BTreeMap::new();
    let mut inf: BTreeMap<SeriesKey, u64> = BTreeMap::new();
    let mut counts: BTreeMap<SeriesKey, u64> = BTreeMap::new();

    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap_or("");
            if !valid_name(name) {
                return Err(format!("line {ln}: bad metric name in HELP: {name:?}"));
            }
            if helped.insert(name.to_string(), true).is_some() {
                return Err(format!("line {ln}: duplicate # HELP for family {name:?}"));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split(' ');
            let name = it.next().unwrap_or("");
            let kind = it.next().unwrap_or("");
            if !valid_name(name) {
                return Err(format!("line {ln}: bad metric name in TYPE: {name:?}"));
            }
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("line {ln}: unknown metric type {kind:?}"));
            }
            if typed.insert(name.to_string(), kind.to_string()).is_some() {
                return Err(format!("line {ln}: duplicate # TYPE for family {name:?}"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // free-form comment
        }
        let (name, labels, value) = split_sample(line).map_err(|e| format!("line {ln}: {e}"))?;
        if !valid_name(&name) {
            return Err(format!("line {ln}: bad sample name {name:?}"));
        }
        for (k, _) in &labels {
            if !valid_label_name(k) {
                return Err(format!("line {ln}: bad label name {k:?}"));
            }
        }
        // Resolve the family: histogram samples use _bucket/_sum/_count.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suf| {
                name.strip_suffix(suf)
                    .filter(|f| typed.get(*f).map(String::as_str) == Some("histogram"))
            })
            .unwrap_or(&name)
            .to_string();
        if !typed.contains_key(&family) {
            return Err(format!(
                "line {ln}: sample {name:?} precedes its # TYPE line"
            ));
        }
        if !helped.contains_key(&family) {
            return Err(format!(
                "line {ln}: sample {name:?} precedes its # HELP line"
            ));
        }
        let le = labels
            .iter()
            .find(|(k, _)| k == "le")
            .map(|(_, v)| v.clone());
        let others: Vec<String> = labels
            .iter()
            .filter(|(k, _)| k != "le")
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        let key = (family.clone(), others.join(","));
        if name.ends_with("_bucket") && typed.get(&family).map(String::as_str) == Some("histogram")
        {
            let le = le.ok_or_else(|| format!("line {ln}: histogram bucket without le"))?;
            if le == "+Inf" {
                inf.insert(key, value as u64);
            } else {
                let bound = le
                    .parse::<f64>()
                    .map_err(|_| format!("line {ln}: unparseable le bound {le:?}"))?;
                buckets.entry(key).or_default().push((bound, value as u64));
            }
            continue;
        }
        if name.ends_with("_count") && typed.get(&family).map(String::as_str) == Some("histogram") {
            counts.insert(key, value as u64);
        }
        if !value.is_finite() {
            return Err(format!("line {ln}: non-finite sample value in {name:?}"));
        }
    }

    // Histogram structure: bounds strictly increasing, counts cumulative,
    // +Inf present and equal to _count.
    for (key, bs) in &buckets {
        for w in bs.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(format!(
                    "histogram {key:?}: le bounds not strictly increasing"
                ));
            }
            if w[1].1 < w[0].1 {
                return Err(format!("histogram {key:?}: bucket counts not cumulative"));
            }
        }
        let total = inf
            .get(key)
            .ok_or_else(|| format!("histogram {key:?}: missing +Inf bucket"))?;
        if let Some(last) = bs.last() {
            if last.1 > *total {
                return Err(format!("histogram {key:?}: +Inf below last bucket"));
            }
        }
        if let Some(c) = counts.get(key) {
            if c != total {
                return Err(format!("histogram {key:?}: _count != +Inf bucket"));
            }
        }
    }
    for key in inf.keys() {
        if !counts.contains_key(key) {
            return Err(format!("histogram {key:?}: missing _count sample"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scorecard() -> Vec<Metric> {
        vec![
            Metric::gauge("ooc_service_turnaround_seconds", "Turnaround quantiles")
                .sample(&[("policy", "fifo"), ("quantile", "0.5")], 12.25)
                .sample(&[("policy", "fifo"), ("quantile", "0.95")], 30.5),
            Metric::counter("ooc_service_completed_total", "Completed jobs")
                .sample(&[("policy", "fifo")], 14.0),
            Metric::histogram("ooc_service_wait_seconds", "Queue wait").series(
                &[("policy", "fifo")],
                vec![(0.001, 3), (0.01, 7), (0.1, 9)],
                0.345,
                9,
            ),
        ]
    }

    #[test]
    fn render_is_deterministic_and_validates() {
        let a = render(&scorecard());
        let b = render(&scorecard());
        assert_eq!(a, b);
        validate(&a).unwrap();
        assert!(a.contains("# TYPE ooc_service_wait_seconds histogram"));
        assert!(a.contains("le=\"+Inf\"} 9"));
        assert!(a.contains("ooc_service_turnaround_seconds{policy=\"fifo\",quantile=\"0.5\"}"));
    }

    #[test]
    fn validator_rejects_structural_violations() {
        // Sample before its TYPE line.
        assert!(validate("foo 1.0\n# HELP foo x\n# TYPE foo gauge\n").is_err());
        // Bad metric name.
        assert!(validate("# HELP 9foo x\n# TYPE 9foo gauge\n9foo 1\n").is_err());
        // Non-cumulative histogram buckets.
        let bad = "# HELP h x\n# TYPE h histogram\n\
                   h_bucket{le=\"1.0\"} 5\nh_bucket{le=\"2.0\"} 3\n\
                   h_bucket{le=\"+Inf\"} 5\nh_sum 1.0\nh_count 5\n";
        assert!(validate(bad).is_err());
        // Missing +Inf bucket.
        let bad = "# HELP h x\n# TYPE h histogram\n\
                   h_bucket{le=\"1.0\"} 5\nh_sum 1.0\nh_count 5\n";
        assert!(validate(bad).is_err());
        // _count disagreeing with +Inf.
        let bad = "# HELP h x\n# TYPE h histogram\n\
                   h_bucket{le=\"1.0\"} 5\nh_bucket{le=\"+Inf\"} 5\n\
                   h_sum 1.0\nh_count 7\n";
        assert!(validate(bad).is_err());
        // NaN sample value.
        assert!(validate("# HELP g x\n# TYPE g gauge\ng NaN\n").is_err());
        // A well-formed minimal exposition passes.
        validate("# HELP g x\n# TYPE g gauge\ng{a=\"b\"} 1.5\n").unwrap();
    }

    #[test]
    fn adversarial_label_values_round_trip_exactly() {
        // Values chosen to break naive parsers: embedded and trailing
        // quotes, backslashes, newlines, close braces, commas, '=' signs,
        // non-ASCII, and the empty string.
        let nasty: &[(&str, &str)] = &[
            ("quote_end", "ends with \""),
            ("quote_only", "\""),
            ("backslash_end", "trailing \\"),
            ("backslash_quote", "\\\""),
            ("newline", "line1\nline2"),
            ("non_ascii", "disque-Platte-ディスク-号"),
            ("braces", "a{b}c"),
            ("comma_eq", "k=\"v\",w=\"x\""),
            ("empty", ""),
        ];
        let mut g = Metric::gauge("adv", "adversarial label values");
        for (case, v) in nasty {
            g = g.sample(&[("case", case), ("value", v)], 1.0);
        }
        let text = render(&[g]);
        validate(&text).unwrap();
        // Parse every sample line back and compare the recovered label
        // value byte-for-byte with the original.
        let mut recovered = 0;
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, labels, value) = split_sample(line).unwrap();
            assert_eq!(name, "adv");
            assert_eq!(value, 1.0);
            let case = &labels.iter().find(|(k, _)| k == "case").unwrap().1;
            let got = &labels.iter().find(|(k, _)| k == "value").unwrap().1;
            let want = nasty.iter().find(|(c, _)| c == case).unwrap().1;
            assert_eq!(got, want, "case {case}: label value did not round-trip");
            recovered += 1;
        }
        assert_eq!(recovered, nasty.len());
    }

    #[test]
    fn validator_rejects_duplicate_families_and_malformed_samples() {
        // The same family declared twice — two expositions concatenated.
        let dup = "# HELP g x\n# TYPE g gauge\ng 1.0\n\
                   # HELP g x\n# TYPE g gauge\ng 2.0\n";
        assert!(validate(dup).unwrap_err().contains("duplicate"));
        // Unterminated label block: the '}' sits inside the quoted value.
        assert!(validate("# HELP g x\n# TYPE g gauge\ng{a=\"}\" 1.0\n").is_err());
        // Unquoted label value.
        assert!(validate("# HELP g x\n# TYPE g gauge\ng{a=b} 1.0\n").is_err());
        // Unknown escape sequence.
        assert!(validate("# HELP g x\n# TYPE g gauge\ng{a=\"\\t\"} 1.0\n").is_err());
        // Dangling backslash swallows the closing quote.
        assert!(validate("# HELP g x\n# TYPE g gauge\ng{a=\"\\\"} 1.0\n").is_err());
    }
}
