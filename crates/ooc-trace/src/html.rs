//! Self-contained HTML report writer: a span timeline plus time-series
//! charts, rendered as inline SVG with no external assets, scripts, or
//! stylesheets beyond an embedded `<style>` block.
//!
//! The workload observatory emits one of these per service bench run so a
//! scheduling decision can be inspected in a browser without Perfetto.
//! Rendering is byte-deterministic: fixed `{:.2}` coordinate formatting,
//! iteration in input order, and a stable color palette keyed by lane and
//! series index — two identical runs produce byte-identical files, which CI
//! `cmp`s. [`validate`] is the matching structural checker.

use std::fmt::Write as _;

use crate::perfetto::escape_json;

/// One horizontal band of the timeline: a label plus its spans.
#[derive(Debug, Clone, PartialEq)]
pub struct Lane {
    /// Row label drawn in the left gutter (e.g. a job or disk name).
    pub label: String,
    /// Spans as `(t0, t1, text)` in simulated seconds.
    pub spans: Vec<(f64, f64, String)>,
    /// Instant markers as `(t, text)`; drawn as ticks.
    pub marks: Vec<(f64, String)>,
}

impl Lane {
    /// An empty lane with the given label.
    pub fn new(label: &str) -> Lane {
        Lane {
            label: label.to_string(),
            spans: Vec::new(),
            marks: Vec::new(),
        }
    }
}

/// One polyline chart series: a label plus `(t, value)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Points as `(t, value)` in simulated seconds.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// A series from points.
    pub fn new(label: &str, points: Vec<(f64, f64)>) -> Series {
        Series {
            label: label.to_string(),
            points,
        }
    }
}

const LANE_H: f64 = 26.0;
const GUTTER: f64 = 160.0;
const PLOT_W: f64 = 860.0;
const CHART_H: f64 = 180.0;
const PALETTE: [&str; 8] = [
    "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2", "#edc948", "#b07aa1", "#9c755f",
];

/// Fixed-precision coordinate, so output bytes never depend on host float
/// formatting.
fn px(v: f64) -> String {
    format!("{v:.2}")
}

fn escape_html(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

fn time_extent(lanes: &[Lane], series: &[Series]) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for l in lanes {
        for &(t0, t1, _) in &l.spans {
            lo = lo.min(t0);
            hi = hi.max(t1);
        }
        for &(t, _) in &l.marks {
            lo = lo.min(t);
            hi = hi.max(t);
        }
    }
    for s in series {
        for &(t, _) in &s.points {
            lo = lo.min(t);
            hi = hi.max(t);
        }
    }
    if !lo.is_finite() || !hi.is_finite() {
        (0.0, 1.0)
    } else if hi <= lo {
        (lo, lo + 1.0)
    } else {
        (lo, hi)
    }
}

fn render_timeline(out: &mut String, lanes: &[Lane], t_lo: f64, t_hi: f64) {
    let scale = PLOT_W / (t_hi - t_lo);
    let x = |t: f64| GUTTER + (t - t_lo) * scale;
    let h = lanes.len() as f64 * LANE_H + 24.0;
    let w = GUTTER + PLOT_W + 8.0;
    let _ = writeln!(
        out,
        "<svg class=\"timeline\" width=\"{}\" height=\"{}\" viewBox=\"0 0 {} {}\">",
        px(w),
        px(h),
        px(w),
        px(h)
    );
    for (i, lane) in lanes.iter().enumerate() {
        let y = i as f64 * LANE_H + 18.0;
        let _ = writeln!(
            out,
            "<text x=\"4\" y=\"{}\" class=\"lane\">{}</text>",
            px(y + LANE_H * 0.55),
            escape_html(&lane.label)
        );
        let _ = writeln!(
            out,
            "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" class=\"rule\"/>",
            px(GUTTER),
            px(y + LANE_H - 2.0),
            px(GUTTER + PLOT_W),
            px(y + LANE_H - 2.0)
        );
        let fill = PALETTE[i % PALETTE.len()];
        for (t0, t1, text) in &lane.spans {
            let x0 = x(*t0);
            let wd = ((t1 - t0) * scale).max(0.5);
            let _ = writeln!(
                out,
                "<rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"{}\">\
                 <title>{}</title></rect>",
                px(x0),
                px(y + 3.0),
                px(wd),
                px(LANE_H - 8.0),
                fill,
                escape_html(text)
            );
        }
        for (t, text) in &lane.marks {
            let xm = x(*t);
            let _ = writeln!(
                out,
                "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" class=\"mark\">\
                 <title>{}</title></line>",
                px(xm),
                px(y + 1.0),
                px(xm),
                px(y + LANE_H - 3.0),
                escape_html(text)
            );
        }
    }
    let _ = writeln!(out, "</svg>");
}

fn render_chart(out: &mut String, series: &[Series], t_lo: f64, t_hi: f64) {
    let mut v_hi = f64::NEG_INFINITY;
    for s in series {
        for &(_, v) in &s.points {
            v_hi = v_hi.max(v);
        }
    }
    if !v_hi.is_finite() || v_hi <= 0.0 {
        v_hi = 1.0;
    }
    let xscale = PLOT_W / (t_hi - t_lo);
    let yscale = (CHART_H - 24.0) / v_hi;
    let x = |t: f64| GUTTER + (t - t_lo) * xscale;
    let y = |v: f64| CHART_H - 12.0 - v * yscale;
    let w = GUTTER + PLOT_W + 8.0;
    let _ = writeln!(
        out,
        "<svg class=\"chart\" width=\"{}\" height=\"{}\" viewBox=\"0 0 {} {}\">",
        px(w),
        px(CHART_H),
        px(w),
        px(CHART_H)
    );
    let _ = writeln!(
        out,
        "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" class=\"rule\"/>",
        px(GUTTER),
        px(y(0.0)),
        px(GUTTER + PLOT_W),
        px(y(0.0))
    );
    for (i, s) in series.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let mut path = String::new();
        for &(t, v) in &s.points {
            if path.is_empty() {
                let _ = write!(path, "M{} {}", px(x(t)), px(y(v)));
            } else {
                let _ = write!(path, " L{} {}", px(x(t)), px(y(v)));
            }
        }
        if !path.is_empty() {
            let _ = writeln!(
                out,
                "<path d=\"{path}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"1.5\"/>"
            );
        }
        let _ = writeln!(
            out,
            "<text x=\"4\" y=\"{}\" class=\"legend\" fill=\"{}\">{}</text>",
            px(16.0 + i as f64 * 14.0),
            color,
            escape_html(&s.label)
        );
    }
    let _ = writeln!(out, "</svg>");
}

/// Render a self-contained HTML report: a header, the span timeline, one
/// chart per series group, and a footer carrying the raw extent. Output is
/// byte-deterministic for identical input.
pub fn render(title: &str, lanes: &[Lane], charts: &[(&str, Vec<Series>)]) -> String {
    let all_series: Vec<Series> = charts.iter().flat_map(|(_, s)| s.iter().cloned()).collect();
    let (t_lo, t_hi) = time_extent(lanes, &all_series);
    let mut out = String::new();
    out.push_str("<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n");
    let _ = writeln!(out, "<title>{}</title>", escape_html(title));
    out.push_str(
        "<style>\nbody{font-family:monospace;background:#fafafa;color:#222;margin:16px}\n\
         h1{font-size:18px}h2{font-size:14px;margin:18px 0 4px}\n\
         svg{background:#fff;border:1px solid #ddd}\n\
         text.lane{font-size:11px}text.legend{font-size:11px}\n\
         line.rule{stroke:#eee;stroke-width:1}\n\
         line.mark{stroke:#e15759;stroke-width:1.5}\n\
         </style>\n</head>\n<body>\n",
    );
    let _ = writeln!(out, "<h1>{}</h1>", escape_html(title));
    let _ = writeln!(
        out,
        "<p>window: [{} s, {} s] &middot; lanes: {} &middot; charts: {}</p>",
        px(t_lo),
        px(t_hi),
        lanes.len(),
        charts.len()
    );
    if !lanes.is_empty() {
        out.push_str("<h2>timeline</h2>\n");
        render_timeline(&mut out, lanes, t_lo, t_hi);
    }
    for (name, series) in charts {
        let _ = writeln!(out, "<h2>{}</h2>", escape_html(name));
        render_chart(&mut out, series, t_lo, t_hi);
    }
    // The extent comment lets the validator and tests confirm the document
    // is complete without parsing SVG geometry.
    let _ = writeln!(
        out,
        "<!-- extent {} {} -->",
        escape_json(&px(t_lo)),
        escape_json(&px(t_hi))
    );
    out.push_str("</body>\n</html>\n");
    out
}

/// Validate a report produced by [`render`]: doctype present, `<html>` /
/// `<body>` / every `<svg>` closed, the extent comment present, and no
/// `NaN` / `inf` leaked into coordinates.
pub fn validate(text: &str) -> Result<(), String> {
    if !text.starts_with("<!DOCTYPE html>") {
        return Err("missing <!DOCTYPE html> prologue".into());
    }
    for (open, close) in [
        ("<html>", "</html>"),
        ("<head>", "</head>"),
        ("<body>", "</body>"),
    ] {
        let n_open = text.matches(open).count();
        let n_close = text.matches(close).count();
        if n_open != 1 || n_close != 1 {
            return Err(format!("expected exactly one {open}/{close} pair"));
        }
    }
    let n_svg_open = text.matches("<svg").count();
    let n_svg_close = text.matches("</svg>").count();
    if n_svg_open != n_svg_close {
        return Err(format!(
            "unbalanced svg tags: {n_svg_open} open vs {n_svg_close} close"
        ));
    }
    if !text.contains("<!-- extent ") {
        return Err("missing extent comment".into());
    }
    for bad in ["NaN", "inf\"", "-inf"] {
        if text.contains(bad) {
            return Err(format!("non-finite value leaked into report: {bad:?}"));
        }
    }
    if let Some(body_end) = text.find("</body>") {
        if text[body_end..].contains("<svg") {
            return Err("svg content after </body>".into());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> String {
        let mut lane = Lane::new("job j0");
        lane.spans.push((0.0, 1.5, "attempt 1".into()));
        lane.spans.push((2.0, 3.0, "attempt 2".into()));
        lane.marks.push((1.75, "preempt".into()));
        let series = vec![
            Series::new("disk0 depth", vec![(0.0, 0.0), (1.0, 3.0), (2.0, 1.0)]),
            Series::new("disk1 depth", vec![(0.0, 1.0), (1.0, 1.0), (2.0, 0.0)]),
        ];
        render("service run", &[lane], &[("queue depth", series)])
    }

    #[test]
    fn report_is_deterministic_and_validates() {
        let a = sample();
        let b = sample();
        assert_eq!(a, b);
        validate(&a).unwrap();
        assert!(a.contains("job j0"));
        assert!(a.contains("queue depth"));
        assert!(a.contains("<title>service run</title>"));
    }

    #[test]
    fn escapes_markup_in_labels() {
        let lane = Lane::new("a<b>&\"c\"");
        let out = render("t<&>", &[lane], &[]);
        validate(&out).unwrap();
        assert!(out.contains("a&lt;b&gt;&amp;&quot;c&quot;"));
        assert!(!out.contains("<b>&"));
    }

    #[test]
    fn validator_rejects_broken_documents() {
        let good = sample();
        assert!(validate(&good.replace("</html>", "")).is_err());
        assert!(validate(&good.replace("</svg>", "</sgv>")).is_err());
        assert!(validate(&good.replace("<!DOCTYPE html>", "")).is_err());
        assert!(validate(&good.replace("<!-- extent ", "<!-- extnt ")).is_err());
        assert!(validate(&good.replace("0.00", "NaN")).is_err());
    }

    #[test]
    fn empty_input_still_renders_a_valid_shell() {
        let out = render("empty", &[], &[]);
        validate(&out).unwrap();
        assert!(out.contains("window: [0.00 s, 1.00 s]"));
    }
}
