//! Minimal JSON parser and Chrome-trace validator.
//!
//! The workspace's `serde` is an offline no-op shim (marker traits only), so
//! trace validation cannot lean on `serde_json`. This module hand-rolls the
//! small strict subset needed to re-parse [`crate::perfetto`] output and
//! check it against the repo's checked-in schema
//! (`crates/bench/schemas/trace_schema.json`): required keys per event,
//! allowed phase letters, finite timestamps (JSON has no NaN literal, so a
//! NaN would fail to parse at emission), and monotone per-(pid, tid) clocks.

use std::collections::BTreeMap;

/// A parsed JSON value. Objects preserve key order via `BTreeMap` — good
/// enough for validation, which never re-serializes.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// String literal.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// As array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// As number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// As string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a JSON document. Strict: rejects trailing garbage, `NaN`,
/// `Infinity`, comments and unquoted keys.
pub fn parse(s: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                c as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let v = self.value()?;
            m.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(m));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            v.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(v));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|b| b as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // on char boundaries is safe via chars()).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "bad utf8".to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let n: f64 = text
            .parse()
            .map_err(|_| format!("bad number {:?} at byte {}", text, start))?;
        if !n.is_finite() {
            return Err(format!("non-finite number {:?}", text));
        }
        Ok(Json::Num(n))
    }
}

/// Summary of a validated Chrome trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCheck {
    /// Total events (including metadata).
    pub events: usize,
    /// Span (`"X"`) events.
    pub spans: usize,
    /// Counter (`"C"`) samples.
    pub counters: usize,
    /// Distinct pids (ranks).
    pub ranks: usize,
}

fn schema_strings(schema: &Json, key: &str) -> Vec<String> {
    schema
        .get(key)
        .and_then(|v| v.as_arr())
        .map(|a| {
            a.iter()
                .filter_map(|s| s.as_str().map(String::from))
                .collect()
        })
        .unwrap_or_default()
}

/// Validate a Chrome trace document against a schema object (see
/// `crates/bench/schemas/trace_schema.json`). Checks required keys, allowed
/// `ph` letters, finite numeric timestamps/durations, and that `ts` is
/// monotone non-decreasing per `(pid, tid)` timeline.
pub fn validate_chrome_trace(trace: &Json, schema: &Json) -> Result<TraceCheck, String> {
    for key in schema_strings(schema, "top_required") {
        if trace.get(&key).is_none() {
            return Err(format!("missing top-level key {:?}", key));
        }
    }
    let events = trace
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .ok_or("traceEvents is not an array")?;
    let event_required = schema_strings(schema, "event_required");
    let span_required = schema_strings(schema, "span_required");
    let ph_allowed = schema_strings(schema, "ph_allowed");
    let mut check = TraceCheck {
        events: events.len(),
        ..TraceCheck::default()
    };
    let mut last_ts: BTreeMap<(i64, i64), f64> = BTreeMap::new();
    let mut ranks: Vec<i64> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        if !ph_allowed.is_empty() && !ph_allowed.iter().any(|a| a == ph) {
            return Err(format!("event {i}: disallowed ph {:?}", ph));
        }
        for key in &event_required {
            // Metadata events carry no timestamp.
            if ph == "M" && key == "ts" {
                continue;
            }
            if ev.get(key).is_none() {
                return Err(format!("event {i}: missing key {:?}", key));
            }
        }
        let pid = ev
            .get("pid")
            .and_then(|v| v.as_num())
            .ok_or_else(|| format!("event {i}: missing pid"))? as i64;
        if !ranks.contains(&pid) {
            ranks.push(pid);
        }
        if ph == "M" {
            continue;
        }
        let ts = ev
            .get("ts")
            .and_then(|v| v.as_num())
            .ok_or_else(|| format!("event {i}: non-numeric ts"))?;
        if !ts.is_finite() || ts < 0.0 {
            return Err(format!("event {i}: bad ts {ts}"));
        }
        let tid = ev.get("tid").and_then(|v| v.as_num()).unwrap_or(0.0) as i64;
        let key = (pid, tid);
        if let Some(prev) = last_ts.get(&key) {
            if ts < *prev {
                return Err(format!(
                    "event {i}: ts {ts} goes backwards on pid {pid} tid {tid} (prev {prev})"
                ));
            }
        }
        last_ts.insert(key, ts);
        match ph {
            "X" => {
                check.spans += 1;
                for key in &span_required {
                    if ev.get(key).is_none() {
                        return Err(format!("span event {i}: missing key {:?}", key));
                    }
                }
                let dur = ev
                    .get("dur")
                    .and_then(|v| v.as_num())
                    .ok_or_else(|| format!("span event {i}: non-numeric dur"))?;
                if !dur.is_finite() || dur < 0.0 {
                    return Err(format!("span event {i}: bad dur {dur}"));
                }
            }
            "C" => check.counters += 1,
            _ => {}
        }
    }
    check.ranks = ranks.len();
    Ok(check)
}

/// The schema shipped in-repo, inlined so library tests don't depend on
/// bench crate paths. `tracerun --check` reads the checked-in file instead.
pub const DEFAULT_SCHEMA: &str = r#"{
  "top_required": ["traceEvents", "displayTimeUnit"],
  "event_required": ["ph", "pid", "ts", "name"],
  "span_required": ["dur", "cat", "tid", "args"],
  "ph_allowed": ["X", "i", "C", "M"]
}"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse(r#"{"a": [1, -2.5e3, "x\nу"], "b": {"c": true, "d": null}}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].as_num(),
            Some(-2500.0)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Bool(true)));
    }

    #[test]
    fn rejects_garbage_and_nan() {
        assert!(parse("{").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse(r#"{"a": NaN}"#).is_err());
    }

    #[test]
    fn validates_sample_export() {
        use crate::{Args, Category, Trace, TraceConfig, Tracer, Track};
        let tr = Tracer::new(0, TraceConfig::on());
        tr.span(
            Category::Compute,
            "compute",
            0.0,
            1e-3,
            Track::Main,
            Args::default(),
        );
        tr.counter("cache_used", 1e-3, 7.0);
        let doc = crate::perfetto::to_chrome_json(&Trace {
            ranks: vec![tr.finish()],
        });
        let parsed = parse(&doc).unwrap();
        let schema = parse(DEFAULT_SCHEMA).unwrap();
        let check = validate_chrome_trace(&parsed, &schema).unwrap();
        assert_eq!(check.spans, 1);
        assert_eq!(check.counters, 1);
        assert_eq!(check.ranks, 1);
    }

    #[test]
    fn flags_backwards_clock() {
        let doc = r#"{"displayTimeUnit":"ms","traceEvents":[
            {"name":"a","cat":"compute","ph":"X","ts":5.0,"dur":1.0,"pid":0,"tid":0,"args":{}},
            {"name":"b","cat":"compute","ph":"X","ts":4.0,"dur":1.0,"pid":0,"tid":0,"args":{}}
        ]}"#;
        let parsed = parse(doc).unwrap();
        let schema = parse(DEFAULT_SCHEMA).unwrap();
        assert!(validate_chrome_trace(&parsed, &schema).is_err());
    }
}
