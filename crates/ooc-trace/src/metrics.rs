//! In-memory metrics registry derived from a recorded [`Trace`].
//!
//! Aggregates the raw timeline into the numbers the paper's tables talk
//! about: log2-bucket histograms (I/O request size, message size, retry
//! backoff), per-category time/requests/bytes, per-array I/O attribution
//! and per-phase time breakdowns. All maps are `BTreeMap` so iteration —
//! and therefore any rendered report — is deterministic.

use std::collections::BTreeMap;

use crate::{Category, Event, EventKind, RankTrace, TimeGroup, Trace};

/// Power-of-two bucket histogram over `u64` samples. Bucket `i` holds
/// values `v` with `floor(log2(v)) == i` (value 0 goes to bucket 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            63 - v.leading_zeros() as usize
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` samples of value `v`.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::bucket_of(v)] += n;
        self.count += n;
        self.sum += v * n;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Nearest-rank percentile over the bucketed samples, reported as the
    /// lower bound of the bucket holding the rank. `q` is clamped to
    /// `[0, 1]`; an empty histogram reports 0. Because samples are
    /// log2-bucketed, the answer is exact to within one power of two —
    /// enough for SLO scorecards, deterministic by construction.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest-rank: the smallest rank r with r >= ceil(q * n), at least 1.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << i;
            }
        }
        1u64 << 63
    }

    /// Fold `other` into `self`: bucket-wise sum, moments combined. Merging
    /// an empty histogram is the identity in either direction.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Cumulative bucket counts as `(upper_bound, cumulative)` pairs over
    /// the non-empty prefix, ending with the total — the shape a Prometheus
    /// histogram exposition wants (`le` buckets plus `+Inf == count`).
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        let last = (0..64).rev().find(|&i| self.buckets[i] > 0);
        if let Some(last) = last {
            for i in 0..=last {
                cum += self.buckets[i];
                // Bucket i holds values in [2^i, 2^(i+1)); its inclusive
                // upper bound saturates at u64::MAX for the top bucket.
                let hi = if i == 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                out.push((hi, cum));
            }
        }
        out
    }

    /// Non-empty buckets as `(low_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (1u64 << i, *c))
            .collect()
    }

    /// Render as compact ASCII: one line per non-empty bucket.
    pub fn render(&self, label: &str, width: usize) -> String {
        let mut out = format!(
            "{label}: n={} mean={:.1} min={} max={}\n",
            self.count,
            self.mean(),
            self.min(),
            self.max()
        );
        let peak = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        for (low, count) in self.nonzero_buckets() {
            let bar = (count as f64 / peak as f64 * width as f64).round() as usize;
            out.push_str(&format!(
                "  >= {:>10} | {:<w$} {}\n",
                low,
                "#".repeat(bar.max(1)),
                count,
                w = width
            ));
        }
        out
    }
}

/// Aggregate for one event category.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CategoryStats {
    /// Events recorded.
    pub events: u64,
    /// Summed span duration, simulated seconds.
    pub seconds: f64,
    /// Summed requests / message count.
    pub requests: u64,
    /// Summed bytes.
    pub bytes: u64,
}

/// Per-array I/O attribution.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ArrayStats {
    /// Disk read requests.
    pub read_requests: u64,
    /// Bytes read from disk.
    pub read_bytes: u64,
    /// Disk write requests (including write-backs).
    pub write_requests: u64,
    /// Bytes written to disk (including write-backs).
    pub write_bytes: u64,
    /// Cache hits.
    pub hits: u64,
    /// Bytes served from cache.
    pub hit_bytes: u64,
    /// Simulated seconds spent in disk transfers for this array.
    pub io_seconds: f64,
}

/// Per-phase time breakdown (compute / comm / io / faults seconds).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TimeBreakdown {
    /// Seconds in compute spans.
    pub compute: f64,
    /// Seconds in send + recv spans.
    pub comm: f64,
    /// Seconds in disk read / write / write-back spans.
    pub io: f64,
    /// Seconds in fault-recovery and retry spans.
    pub faults: f64,
}

impl TimeBreakdown {
    /// Sum of all groups.
    pub fn total(&self) -> f64 {
        self.compute + self.comm + self.io + self.faults
    }

    fn add(&mut self, group: TimeGroup, secs: f64) {
        match group {
            TimeGroup::Compute => self.compute += secs,
            TimeGroup::Comm => self.comm += secs,
            TimeGroup::Io => self.io += secs,
            TimeGroup::Faults => self.faults += secs,
        }
    }
}

/// Metrics registry: everything the flame summary and divergence report
/// need, computed in one pass over the trace.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    /// I/O request size in bytes (one sample per coalesced request).
    pub io_request_bytes: Histogram,
    /// I/O request sizes split by access method (`direct`, `sieved`,
    /// `two-phase`), for disk transfers stamped with a method scope.
    pub io_request_bytes_by_method: BTreeMap<String, Histogram>,
    /// Point-to-point message payload sizes.
    pub msg_bytes: Histogram,
    /// Retry / fault-recovery span durations in nanoseconds.
    pub retry_ns: Histogram,
    /// Per-category aggregates (all ranks).
    pub by_category: BTreeMap<Category, CategoryStats>,
    /// Per-array I/O attribution (all ranks), keyed by array display name.
    pub by_array: BTreeMap<String, ArrayStats>,
    /// Per-phase time breakdown (all ranks), keyed by phase name.
    pub by_phase: BTreeMap<String, TimeBreakdown>,
    /// Per-rank time breakdown for reconciliation against `ProcStats`.
    pub per_rank: Vec<TimeBreakdown>,
}

fn is_io_transfer(cat: Category) -> bool {
    matches!(
        cat,
        Category::DiskRead | Category::DiskWrite | Category::WriteBack
    )
}

fn record_event(
    reg: &mut MetricsRegistry,
    rt: &RankTrace,
    ev: &Event,
    rank_td: &mut TimeBreakdown,
) {
    if ev.kind == EventKind::Counter {
        return;
    }
    let dur = ev.dur();
    let stats = reg.by_category.entry(ev.cat).or_default();
    stats.events += 1;
    stats.seconds += dur;
    stats.requests += ev.args.requests;
    stats.bytes += ev.args.bytes;

    if is_io_transfer(ev.cat) && ev.args.requests > 0 {
        let per_request = ev.args.bytes / ev.args.requests;
        reg.io_request_bytes.record_n(per_request, ev.args.requests);
        if let Some(method) = &ev.args.method {
            reg.io_request_bytes_by_method
                .entry(method.clone())
                .or_default()
                .record_n(per_request, ev.args.requests);
        }
    }
    if ev.cat == Category::Send {
        reg.msg_bytes.record(ev.args.bytes);
    }
    if matches!(ev.cat, Category::Retry | Category::Fault) {
        reg.retry_ns.record((dur * 1e9).round() as u64);
    }

    if let Some(group) = ev.cat.time_group() {
        rank_td.add(group, dur);
        if let Some(phase) = rt.phase_name(ev) {
            reg.by_phase
                .entry(phase.to_string())
                .or_default()
                .add(group, dur);
        }
    }

    if let Some(array) = &ev.args.array {
        let a = reg.by_array.entry(array.clone()).or_default();
        match ev.cat {
            Category::DiskRead => {
                a.read_requests += ev.args.requests;
                a.read_bytes += ev.args.bytes;
                a.io_seconds += dur;
            }
            Category::DiskWrite | Category::WriteBack => {
                a.write_requests += ev.args.requests;
                a.write_bytes += ev.args.bytes;
                a.io_seconds += dur;
            }
            Category::CacheHit => {
                a.hits += ev.args.requests;
                a.hit_bytes += ev.args.bytes;
            }
            _ => {}
        }
    }
}

/// Build a registry from a recorded trace.
pub fn from_trace(trace: &Trace) -> MetricsRegistry {
    let mut reg = MetricsRegistry::default();
    for rt in &trace.ranks {
        let mut td = TimeBreakdown::default();
        for ev in &rt.events {
            record_event(&mut reg, rt, ev, &mut td);
        }
        reg.per_rank.push(td);
    }
    reg
}

/// Time breakdown of a single rank timeline (used by reconciliation tests).
pub fn rank_time_breakdown(rt: &RankTrace) -> TimeBreakdown {
    let mut td = TimeBreakdown::default();
    for ev in &rt.events {
        if ev.kind == EventKind::Counter {
            continue;
        }
        if let Some(group) = ev.cat.time_group() {
            td.add(group, ev.dur());
        }
    }
    td
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Args, TraceConfig, Tracer, Track};

    #[test]
    fn histogram_buckets_and_moments() {
        let mut h = Histogram::default();
        h.record(0);
        h.record(1);
        h.record_n(1024, 3);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1 + 3 * 1024);
        assert_eq!(h.max(), 1024);
        assert_eq!(h.min(), 0);
        assert_eq!(h.nonzero_buckets(), vec![(1, 2), (1024, 3)]);
        assert!(h.render("io", 20).contains("n=5"));
    }

    #[test]
    fn percentile_is_nearest_rank_over_buckets() {
        // Empty: every quantile is 0.
        let h = Histogram::default();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(q), 0);
        }
        // Single sample: every quantile is its bucket's low bound.
        let mut h = Histogram::default();
        h.record(100); // bucket [64, 128)
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.percentile(q), 64);
        }
        // Skewed distribution: the tail only shows up past its rank.
        let mut h = Histogram::default();
        h.record_n(8, 90); // bucket low bound 8
        h.record_n(4096, 10); // bucket low bound 4096
        assert_eq!(h.percentile(0.50), 8);
        assert_eq!(h.percentile(0.90), 8);
        assert_eq!(h.percentile(0.91), 4096);
        assert_eq!(h.percentile(0.99), 4096);
        assert_eq!(h.percentile(1.0), 4096);
        // Out-of-range q clamps instead of panicking.
        assert_eq!(h.percentile(-1.0), 8);
        assert_eq!(h.percentile(2.0), 4096);
        // Value 0 lands in bucket 0, reported as low bound 1.
        let mut h = Histogram::default();
        h.record(0);
        assert_eq!(h.percentile(0.5), 1);
        // Saturating top bucket: u64::MAX is representable.
        let mut h = Histogram::default();
        h.record(u64::MAX);
        assert_eq!(h.percentile(1.0), 1u64 << 63);
    }

    #[test]
    fn merge_combines_buckets_and_moments() {
        let mut a = Histogram::default();
        a.record_n(16, 3);
        let mut b = Histogram::default();
        b.record(2);
        b.record(1 << 40);
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.sum(), 3 * 16 + 2 + (1 << 40));
        assert_eq!(a.min(), 2);
        assert_eq!(a.max(), 1 << 40);
        assert_eq!(a.percentile(0.5), 16);
        // Merging empty in either direction is the identity.
        let snapshot = a.clone();
        a.merge(&Histogram::default());
        assert_eq!(a, snapshot);
        let mut empty = Histogram::default();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot);
    }

    #[test]
    fn merge_of_extreme_singletons_keeps_boundaries_exact() {
        // Two single-sample histograms at the value domain's edges merge
        // into a well-formed two-bucket distribution.
        let mut lo = Histogram::default();
        lo.record(0); // bucket 0, reported low bound 1
        let mut hi = Histogram::default();
        hi.record(u64::MAX); // saturating top bucket
        lo.merge(&hi);
        assert_eq!(lo.count(), 2);
        assert_eq!(lo.min(), 0);
        assert_eq!(lo.max(), u64::MAX);
        assert_eq!(lo.percentile(0.5), 1);
        assert_eq!(lo.percentile(1.0), 1u64 << 63);
        // The cumulative exposition spans every bucket up to the top one,
        // ends at the total count, and its last upper bound saturates.
        let cum = lo.cumulative_buckets();
        assert_eq!(cum.len(), 64);
        assert_eq!(cum.first(), Some(&(1, 1)));
        assert_eq!(cum.last(), Some(&(u64::MAX, 2)));
    }

    #[test]
    fn cumulative_buckets_are_monotone_and_end_at_count() {
        let h = Histogram::default();
        assert!(h.cumulative_buckets().is_empty());
        let mut h = Histogram::default();
        h.record_n(1, 2);
        h.record_n(100, 3);
        let cum = h.cumulative_buckets();
        // Every bucket up to the last non-empty one appears, cumulative.
        assert_eq!(cum.first(), Some(&(1, 2)));
        assert_eq!(cum.last(), Some(&(127, 5)));
        assert!(cum.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
    }

    #[test]
    fn method_scope_buckets_io_requests_per_method() {
        let tr = Tracer::new(0, TraceConfig::on());
        tr.push_io_method("direct");
        tr.span(
            Category::DiskRead,
            "read",
            0.0,
            1.0,
            Track::Main,
            Args::io(8, 8 * 64),
        );
        tr.pop_io_method();
        tr.push_io_method("two-phase");
        tr.span(
            Category::DiskRead,
            "read",
            1.0,
            2.0,
            Track::Main,
            Args::io(1, 4096),
        );
        tr.pop_io_method();
        // Outside any scope: counted globally but not per-method.
        tr.span(
            Category::DiskWrite,
            "write",
            2.0,
            3.0,
            Track::Main,
            Args::io(2, 256),
        );
        let trace = Trace {
            ranks: vec![tr.finish()],
        };
        let reg = from_trace(&trace);
        assert_eq!(reg.io_request_bytes.count(), 11);
        let direct = &reg.io_request_bytes_by_method["direct"];
        assert_eq!((direct.count(), direct.mean()), (8, 64.0));
        let tp = &reg.io_request_bytes_by_method["two-phase"];
        assert_eq!((tp.count(), tp.max()), (1, 4096));
        assert_eq!(reg.io_request_bytes_by_method.len(), 2);
    }

    #[test]
    fn registry_attributes_time_and_arrays() {
        let tr = Tracer::new(0, TraceConfig::on());
        let p = tr.open_span(
            Category::Phase,
            "s0:gaxpy(c)",
            0.0,
            Args::default(),
            Some("s0:gaxpy(c)"),
        );
        tr.span(
            Category::DiskRead,
            "read",
            0.0,
            2.0,
            Track::Main,
            Args::io(4, 4096).with_array("a", Some(0)),
        );
        tr.span(
            Category::Compute,
            "compute",
            2.0,
            3.0,
            Track::Main,
            Args::default(),
        );
        tr.span(
            Category::Send,
            "send",
            3.0,
            4.0,
            Track::Main,
            Args::msg(1, 128),
        );
        tr.close_span(p, 4.0);
        let trace = Trace {
            ranks: vec![tr.finish()],
        };
        let reg = from_trace(&trace);
        let td = &reg.per_rank[0];
        assert_eq!(td.io, 2.0);
        assert_eq!(td.compute, 1.0);
        assert_eq!(td.comm, 1.0);
        let phase = &reg.by_phase["s0:gaxpy(c)"];
        assert_eq!(phase.total(), 4.0);
        let a = &reg.by_array["a"];
        assert_eq!(a.read_requests, 4);
        assert_eq!(a.read_bytes, 4096);
        // 4 requests of 1024 bytes each.
        assert_eq!(reg.io_request_bytes.count(), 4);
        assert_eq!(reg.io_request_bytes.mean(), 1024.0);
        assert_eq!(reg.msg_bytes.count(), 1);
        // Phase span itself contributes no time group.
        assert_eq!(reg.by_category[&Category::Phase].seconds, 4.0);
        assert_eq!(rank_time_breakdown(&trace.ranks[0]).total(), 4.0);
    }
}
