//! Chrome-trace-event JSON export, loadable in Perfetto (`ui.perfetto.dev`)
//! and `chrome://tracing`.
//!
//! Layout: one *process* per rank (`pid == rank`), with the rank's main
//! timeline on `tid 0`, the prefetch-overlap track on `tid 1`, the
//! disk-farm queueing track on `tid 2` (present only when a rank recorded
//! queue events), and counter tracks (`cache_used`, `cache_dirty`,
//! per-disk `queue_depth:dN`) as process-level `"C"` events. Spans are
//! `"X"` complete events, annotations are `"i"` instants.
//!
//! Determinism: timestamps are simulated seconds converted to *integer
//! nanoseconds* before formatting (printed as microseconds with three
//! decimals), so the emitted bytes never depend on host float-formatting
//! behavior and two identical seeded runs produce byte-identical files.

use std::fmt::Write as _;

use crate::{Event, EventKind, Trace};

/// Convert simulated seconds to the exported microsecond timestamp string,
/// via integer nanoseconds for byte-stable output.
pub fn format_ts(seconds: f64) -> String {
    let ns = (seconds * 1e9).round() as i128;
    let (sign, ns) = if ns < 0 { ("-", -ns) } else { ("", ns) };
    format!("{}{}.{:03}", sign, ns / 1000, ns % 1000)
}

/// Escape a string for inclusion in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn event_args(ev: &Event) -> String {
    let mut parts: Vec<String> = Vec::new();
    if let Some(a) = &ev.args.array {
        parts.push(format!("\"array\":\"{}\"", escape_json(a)));
    }
    if let Some(f) = ev.args.file {
        parts.push(format!("\"file\":{}", f));
    }
    if let Some(s) = ev.args.slab {
        parts.push(format!("\"slab\":{}", s));
    }
    if ev.args.requests > 0 {
        parts.push(format!("\"requests\":{}", ev.args.requests));
    }
    if ev.args.bytes > 0 {
        parts.push(format!("\"bytes\":{}", ev.args.bytes));
    }
    if let Some(p) = ev.args.peer {
        parts.push(format!("\"peer\":{}", p));
    }
    if let Some(m) = &ev.args.method {
        parts.push(format!("\"method\":\"{}\"", escape_json(m)));
    }
    if let Some(o) = ev.args.offset {
        parts.push(format!("\"offset\":{}", o));
    }
    if let Some(v) = ev.args.value {
        // Counter/flops values are integral by construction; keep them
        // byte-stable by printing as integers.
        parts.push(format!("\"value\":{}", v.round() as i64));
    }
    parts.join(",")
}

/// Render a full [`Trace`] as a Chrome trace-event JSON document.
pub fn to_chrome_json(trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |out: &mut String, line: String| {
        if first {
            first = false;
        } else {
            out.push_str(",\n");
        }
        out.push_str(&line);
    };
    for rt in &trace.ranks {
        let pid = rt.rank;
        push(
            &mut out,
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"rank {pid}\"}}}}"
            ),
        );
        push(
            &mut out,
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"main\"}}}}"
            ),
        );
        push(
            &mut out,
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":1,\
                 \"args\":{{\"name\":\"prefetch\"}}}}"
            ),
        );
        // The queue track exists only in farm traces; emitting its thread
        // name unconditionally would perturb byte-stable rank exports.
        if rt.events.iter().any(|e| e.track == crate::Track::Queue) {
            push(
                &mut out,
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":2,\
                     \"args\":{{\"name\":\"queue\"}}}}"
                ),
            );
        }
        for ev in &rt.events {
            let name = escape_json(&ev.name);
            let cat = ev.cat.label();
            let ts = format_ts(ev.t0);
            let tid = ev.track.tid();
            let args = event_args(ev);
            let phase_arg = match rt.phase_name(ev) {
                Some(p) => {
                    let sep = if args.is_empty() { "" } else { "," };
                    format!("{sep}\"phase\":\"{}\"", escape_json(p))
                }
                None => String::new(),
            };
            let line = match ev.kind {
                EventKind::Span => {
                    let dur = format_ts(ev.dur());
                    format!(
                        "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"ts\":{ts},\
                         \"dur\":{dur},\"pid\":{pid},\"tid\":{tid},\"args\":{{{args}{phase_arg}}}}}"
                    )
                }
                EventKind::Instant => format!(
                    "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{ts},\"pid\":{pid},\"tid\":{tid},\"args\":{{{args}{phase_arg}}}}}"
                ),
                EventKind::Counter => {
                    let v = ev.args.value.unwrap_or(0.0).round() as i64;
                    format!(
                        "{{\"name\":\"{name}\",\"ph\":\"C\",\"ts\":{ts},\"pid\":{pid},\
                         \"tid\":{tid},\"args\":{{\"{name}\":{v}}}}}"
                    )
                }
            };
            push(&mut out, line);
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Args, Category, Trace, TraceConfig, Tracer, Track};

    #[test]
    fn format_ts_is_integer_ns_based() {
        assert_eq!(format_ts(0.0), "0.000");
        assert_eq!(format_ts(1.0), "1000000.000");
        assert_eq!(format_ts(1.5e-6), "1.500");
        assert_eq!(format_ts(0.1 + 0.2), "300000.000");
        assert_eq!(format_ts(-2.5e-6), "-2.500");
    }

    #[test]
    fn escapes_special_chars() {
        assert_eq!(escape_json("a\"b\\c\n"), "a\\\"b\\\\c\\n");
    }

    fn sample_trace() -> Trace {
        let tr = Tracer::new(0, TraceConfig::on());
        let p = tr.open_span(
            Category::Phase,
            "s0:gaxpy(c)",
            0.0,
            Args::default(),
            Some("s0"),
        );
        tr.span(
            Category::DiskRead,
            "read",
            0.0,
            1e-3,
            Track::Main,
            Args::io(4, 1024).with_array("a", Some(0)),
        );
        tr.counter("cache_used", 1e-3, 512.0);
        tr.instant(Category::CacheHit, "hit", 1e-3, Args::io(1, 256));
        tr.close_span(p, 2e-3);
        Trace {
            ranks: vec![tr.finish()],
        }
    }

    #[test]
    fn chrome_json_is_deterministic_and_parseable() {
        let t = sample_trace();
        let a = to_chrome_json(&t);
        let b = to_chrome_json(&t);
        assert_eq!(a, b);
        let parsed = crate::json::parse(&a).expect("valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(|v| v.as_arr())
            .expect("traceEvents array");
        // 3 metadata + 4 recorded events.
        assert_eq!(events.len(), 7);
    }
}
