//! Deterministic tracing and metrics for the out-of-core compiler stack.
//!
//! The paper's argument is a cost story: where simulated time goes — I/O
//! requests, bytes, messages — per translation scheme (Tables 1–2, Fig. 10).
//! End-of-run totals (`ProcStats` / `DiskStats`) answer *how much*; this
//! crate answers *when* and *why* by recording a per-rank timeline of spans
//! stamped with the **simulated** clock. Because every timestamp comes from
//! the deterministic virtual clock (never the host), traces are
//! byte-for-byte reproducible across runs and seeds, including chaos runs.
//!
//! Three sinks consume a recorded [`Trace`]:
//!
//! * [`perfetto`] — Chrome-trace-event JSON loadable in Perfetto / chrome
//!   tracing (one process per rank, counter tracks for cache occupancy).
//! * [`metrics`] — an in-memory registry of histograms (I/O request size,
//!   message size, retry backoff) and per-array / per-phase / per-category
//!   attribution.
//! * [`json`] — a minimal hand-rolled JSON parser used to validate exported
//!   traces against a checked-in schema (CI `trace_smoke`).
//!
//! This crate sits below `dmsim` in the dependency graph, so timestamps are
//! plain `f64` simulated seconds rather than `dmsim::SimTime`.

use std::cell::RefCell;

use serde::{Deserialize, Serialize};

pub mod html;
pub mod json;
pub mod metrics;
pub mod perfetto;
pub mod prom;

/// Tracing configuration, threaded `CompilerOptions` → `RunConfig` →
/// `MachineConfig`. Default is fully off: with `enabled == false` no
/// [`Tracer`] is constructed and the instrumented code paths reduce to a
/// `None` check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Master switch: record span/instant events on the simulated clock.
    pub enabled: bool,
    /// Also emit counter samples (cache occupancy, outstanding dirty bytes).
    pub counters: bool,
    /// Stamp disk-transfer spans with per-request detail (file offsets) so
    /// scheduling layers can replay them. Off by default: without it the
    /// recorded events — and therefore exported traces — are byte-identical
    /// to builds that predate the detail fields.
    pub io_detail: bool,
}

impl TraceConfig {
    /// Tracing fully on (spans + counters).
    pub fn on() -> TraceConfig {
        TraceConfig {
            enabled: true,
            counters: true,
            io_detail: false,
        }
    }

    /// Spans only, no counter tracks.
    pub fn spans_only() -> TraceConfig {
        TraceConfig {
            enabled: true,
            counters: false,
            io_detail: false,
        }
    }

    /// Tracing fully on, including per-request I/O detail (offsets) for
    /// scheduling replay (`ooc-sched`).
    pub fn detailed() -> TraceConfig {
        TraceConfig {
            enabled: true,
            counters: true,
            io_detail: true,
        }
    }
}

/// Event taxonomy. Every instrumented operation in the stack maps to
/// exactly one category; [`Category::time_group`] defines how span
/// durations reconcile against the `ProcStats` time counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Category {
    /// Statement-level scope (`s0:gaxpy(c)` …); pushes a phase name.
    Phase,
    /// Structural executor scope (slab loop, transpose stage, ghost
    /// exchange); does not affect phase attribution.
    Slab,
    /// Charged floating-point work.
    Compute,
    /// Message transmit (fabric latency + bandwidth).
    Send,
    /// Message receive (wait until arrival).
    Recv,
    /// Collective operation scope (reduce, broadcast, …); inner sends and
    /// receives nest inside it.
    Collective,
    /// Two-phase I/O exchange scope: the all-to-all that moves data from
    /// the file-conforming to the computation-conforming decomposition.
    /// Inner sends and receives nest inside it.
    Exchange,
    /// Disk read transfer.
    DiskRead,
    /// Disk write transfer.
    DiskWrite,
    /// Dirty-slab write-back issued by the cache.
    WriteBack,
    /// Cache hit (instant: no simulated time passes).
    CacheHit,
    /// Sieve read annotation (spanning read vs useful bytes).
    Sieve,
    /// Injected-fault recovery time (torn-write repair, latency faults).
    Fault,
    /// Retry of a dropped message or failed I/O, including backoff.
    Retry,
    /// Checkpoint write / restore scope.
    Checkpoint,
    /// Array redistribution scope.
    Redist,
    /// Disk-farm queueing event (enqueue instants, wait spans, queue-depth
    /// counters) emitted by the `ooc-sched` scheduling layer. Queueing is
    /// waiting, not transfer, so it joins no `ProcStats` time group.
    Queue,
    /// Workload fault-domain executive event (admissions, watchdog kills,
    /// deadline misses, preemptions, resumes, quarantines, disk deaths)
    /// emitted by the `ooc-sched` guarded runtime. Control-plane actions
    /// charge no simulated time, so the category joins no time group.
    FaultDomain,
    /// Irregular-access inspector scope: the one-time indirection read,
    /// owner binning and want-list exchange that build an `IrregSchedule`.
    /// Structural — its charged reads/sends nest inside it.
    Inspector,
    /// Irregular-access executor scope: one gather driven by a cached
    /// schedule. Structural, like [`Category::Redist`].
    Gather,
}

/// Which `ProcStats` time counter a category's span durations sum into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeGroup {
    /// `time_compute`.
    Compute,
    /// `time_comm`.
    Comm,
    /// `time_io`.
    Io,
    /// `time_faults`.
    Faults,
}

impl Category {
    /// All categories, in display order.
    pub const ALL: [Category; 20] = [
        Category::Phase,
        Category::Slab,
        Category::Compute,
        Category::Send,
        Category::Recv,
        Category::Collective,
        Category::Exchange,
        Category::DiskRead,
        Category::DiskWrite,
        Category::WriteBack,
        Category::CacheHit,
        Category::Sieve,
        Category::Fault,
        Category::Retry,
        Category::Checkpoint,
        Category::Redist,
        Category::Queue,
        Category::FaultDomain,
        Category::Inspector,
        Category::Gather,
    ];

    /// Stable lowercase label used in exported JSON.
    pub fn label(&self) -> &'static str {
        match self {
            Category::Phase => "phase",
            Category::Slab => "slab",
            Category::Compute => "compute",
            Category::Send => "send",
            Category::Recv => "recv",
            Category::Collective => "collective",
            Category::Exchange => "exchange",
            Category::DiskRead => "disk_read",
            Category::DiskWrite => "disk_write",
            Category::WriteBack => "write_back",
            Category::CacheHit => "cache_hit",
            Category::Sieve => "sieve",
            Category::Fault => "fault",
            Category::Retry => "retry",
            Category::Checkpoint => "checkpoint",
            Category::Redist => "redist",
            Category::Queue => "queue",
            Category::FaultDomain => "fault_domain",
            Category::Inspector => "inspector",
            Category::Gather => "gather",
        }
    }

    /// Reconciliation group: charged leaf categories sum into exactly one
    /// `ProcStats` time counter; structural scopes (phase, slab, collective,
    /// exchange, checkpoint, redist, inspector, gather) and zero-duration
    /// annotations return `None`.
    pub fn time_group(&self) -> Option<TimeGroup> {
        match self {
            Category::Compute => Some(TimeGroup::Compute),
            Category::Send | Category::Recv => Some(TimeGroup::Comm),
            Category::DiskRead | Category::DiskWrite | Category::WriteBack => Some(TimeGroup::Io),
            Category::Fault | Category::Retry => Some(TimeGroup::Faults),
            _ => None,
        }
    }
}

/// Timeline track within a rank's process. Charged operations normally run
/// sequentially on [`Track::Main`]; prefetched reads overlap compute, so
/// their I/O spans live on [`Track::Overlap`] to keep every track
/// well-nested and non-overlapping. Queueing spans (waits of competing
/// requests, static-share services) overlap each other *by design*, so they
/// live on [`Track::Queue`], the one track exempt from nesting checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Track {
    /// The rank's main sequential timeline.
    Main,
    /// Prefetch I/O overlapped with main-track compute.
    Overlap,
    /// Disk-farm queueing spans (request waits, static-share services).
    /// Waits of different requests overlap freely; this track is exempt
    /// from [`check_well_nested`].
    Queue,
}

impl Track {
    /// Thread id used in the Chrome trace export.
    pub fn tid(&self) -> u32 {
        match self {
            Track::Main => 0,
            Track::Overlap => 1,
            Track::Queue => 2,
        }
    }

    /// Whether spans on this track must be well-nested and non-overlapping.
    /// [`Track::Queue`] carries inherently overlapping queueing spans and is
    /// exempt; every other track is checked by [`check_well_nested`].
    pub fn requires_nesting(&self) -> bool {
        !matches!(self, Track::Queue)
    }

    /// All tracks, in tid order.
    pub const ALL: [Track; 3] = [Track::Main, Track::Overlap, Track::Queue];
}

/// Optional structured payload attached to an event. All fields are
/// deterministic; absent fields are omitted from exported JSON.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Args {
    /// Array display name (`a`, `b`, …) the operation touches.
    pub array: Option<String>,
    /// Backing file id within the rank's logical disk.
    pub file: Option<u64>,
    /// Slab / stage index within the enclosing loop.
    pub slab: Option<u64>,
    /// I/O requests or message count covered by the event.
    pub requests: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Peer rank for point-to-point communication.
    pub peer: Option<usize>,
    /// Free-form scalar (flops for compute spans, counter values).
    pub value: Option<f64>,
    /// I/O access method in effect (`direct`, `sieved`, `two-phase`) —
    /// stamped on disk-transfer events inside a method scope, see
    /// [`Tracer::push_io_method`].
    #[serde(default)]
    pub method: Option<String>,
    /// Starting file offset of the first request covered by the event.
    /// Stamped on disk-transfer spans only when [`TraceConfig::io_detail`]
    /// is set; used by the `ooc-sched` elevator policy to order seeks.
    #[serde(default)]
    pub offset: Option<u64>,
}

impl Args {
    /// Requests + bytes payload.
    pub fn io(requests: u64, bytes: u64) -> Args {
        Args {
            requests,
            bytes,
            ..Args::default()
        }
    }

    /// Peer + bytes payload for point-to-point messages.
    pub fn msg(peer: usize, bytes: u64) -> Args {
        Args {
            peer: Some(peer),
            bytes,
            ..Args::default()
        }
    }

    /// Attach an array name.
    pub fn with_array(mut self, name: &str, file: Option<u64>) -> Args {
        self.array = Some(name.to_string());
        self.file = file;
        self
    }

    /// Attach a slab index.
    pub fn with_slab(mut self, slab: u64) -> Args {
        self.slab = Some(slab);
        self
    }

    /// Attach an I/O access-method label.
    pub fn with_method(mut self, method: &str) -> Args {
        self.method = Some(method.to_string());
        self
    }

    /// Attach a starting file offset (scheduling replay detail).
    pub fn with_offset(mut self, offset: u64) -> Args {
        self.offset = Some(offset);
        self
    }
}

/// How an event renders on the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// `[t0, t1]` duration scope.
    Span,
    /// Point annotation at `t0`.
    Instant,
    /// Counter sample at `t0` (value in `args.value`).
    Counter,
}

/// One recorded event on a rank's timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Category (determines reconciliation group and export color).
    pub cat: Category,
    /// Short stable display name (`read`, `send`, `s0:gaxpy(c)`, …).
    pub name: String,
    /// Event kind.
    pub kind: EventKind,
    /// Start time, simulated seconds.
    pub t0: f64,
    /// End time, simulated seconds (== `t0` for instants and counters).
    pub t1: f64,
    /// Track within the rank's process.
    pub track: Track,
    /// Index into [`RankTrace::phases`] of the innermost enclosing phase.
    pub phase: Option<u32>,
    /// Structured payload.
    pub args: Args,
}

impl Event {
    /// Span duration in seconds (zero for instants).
    pub fn dur(&self) -> f64 {
        self.t1 - self.t0
    }
}

/// The completed timeline of one rank.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankTrace {
    /// Rank that recorded the events.
    pub rank: usize,
    /// Events in emission order (non-decreasing `t0` per track).
    pub events: Vec<Event>,
    /// Phase names, indexed by [`Event::phase`].
    pub phases: Vec<String>,
}

impl RankTrace {
    /// Name of the phase an event belongs to, if any.
    pub fn phase_name(&self, ev: &Event) -> Option<&str> {
        ev.phase.map(|i| self.phases[i as usize].as_str())
    }
}

/// A full machine trace: one [`RankTrace`] per rank, sorted by rank.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Per-rank timelines.
    pub ranks: Vec<RankTrace>,
}

impl Trace {
    /// Total number of events across all ranks.
    pub fn event_count(&self) -> usize {
        self.ranks.iter().map(|r| r.events.len()).sum()
    }
}

/// Handle to an open span; close it with [`Tracer::close_span`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId {
    index: usize,
    pops_phase: bool,
}

impl SpanId {
    /// Whether closing this span also pops a phase from the phase stack.
    pub fn pops_phase(&self) -> bool {
        self.pops_phase
    }
}

struct TracerInner {
    events: Vec<Event>,
    phases: Vec<String>,
    phase_stack: Vec<u32>,
    method_stack: Vec<String>,
}

/// Per-rank event recorder. Interior-mutable so instrumented code can emit
/// through a shared reference; never shared across threads (each rank owns
/// its tracer).
pub struct Tracer {
    rank: usize,
    cfg: TraceConfig,
    inner: RefCell<TracerInner>,
}

impl Tracer {
    /// New empty tracer for `rank`.
    pub fn new(rank: usize, cfg: TraceConfig) -> Tracer {
        Tracer {
            rank,
            cfg,
            inner: RefCell::new(TracerInner {
                events: Vec::new(),
                phases: Vec::new(),
                phase_stack: Vec::new(),
                method_stack: Vec::new(),
            }),
        }
    }

    /// Rank this tracer records for.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Configuration the tracer was built with.
    pub fn config(&self) -> TraceConfig {
        self.cfg
    }

    fn current_phase(inner: &TracerInner) -> Option<u32> {
        inner.phase_stack.last().copied()
    }

    /// Whether `cat` is a disk-transfer event that should carry the active
    /// I/O access-method label.
    fn carries_method(cat: Category) -> bool {
        matches!(
            cat,
            Category::DiskRead | Category::DiskWrite | Category::WriteBack | Category::CacheHit
        )
    }

    fn stamp_method(inner: &TracerInner, cat: Category, args: &mut Args) {
        if args.method.is_none() && Self::carries_method(cat) {
            args.method = inner.method_stack.last().cloned();
        }
    }

    /// Enter an I/O access-method scope: disk-transfer events recorded
    /// before the matching [`Tracer::pop_io_method`] are stamped with
    /// `label` so metrics can histogram requests per method.
    pub fn push_io_method(&self, label: &str) {
        self.inner.borrow_mut().method_stack.push(label.to_string());
    }

    /// Leave the innermost I/O access-method scope.
    pub fn pop_io_method(&self) {
        self.inner.borrow_mut().method_stack.pop();
    }

    /// Record a completed `[t0, t1]` span (charge-style instrumentation:
    /// the caller knows the duration only after charging the clock).
    pub fn span(&self, cat: Category, name: &str, t0: f64, t1: f64, track: Track, mut args: Args) {
        let mut inner = self.inner.borrow_mut();
        let phase = Self::current_phase(&inner);
        Self::stamp_method(&inner, cat, &mut args);
        inner.events.push(Event {
            cat,
            name: name.to_string(),
            kind: EventKind::Span,
            t0,
            t1,
            track,
            phase,
            args,
        });
    }

    /// Open a structural span at `t0`; scope-style instrumentation closed by
    /// [`Tracer::close_span`]. If `phase_name` is given, the span also
    /// pushes a phase: every event emitted before the close is attributed
    /// to it.
    pub fn open_span(
        &self,
        cat: Category,
        name: &str,
        t0: f64,
        args: Args,
        phase_name: Option<&str>,
    ) -> SpanId {
        let mut inner = self.inner.borrow_mut();
        let phase = Self::current_phase(&inner);
        let index = inner.events.len();
        inner.events.push(Event {
            cat,
            name: name.to_string(),
            kind: EventKind::Span,
            t0,
            t1: t0,
            track: Track::Main,
            phase,
            args,
        });
        let pops_phase = if let Some(p) = phase_name {
            let id = inner.phases.len() as u32;
            inner.phases.push(p.to_string());
            inner.phase_stack.push(id);
            true
        } else {
            false
        };
        SpanId { index, pops_phase }
    }

    /// Close a span opened with [`Tracer::open_span`] at `t1`.
    pub fn close_span(&self, id: SpanId, t1: f64) {
        let mut inner = self.inner.borrow_mut();
        inner.events[id.index].t1 = t1;
        if id.pops_phase {
            inner.phase_stack.pop();
        }
    }

    /// Record a point annotation at `t`.
    pub fn instant(&self, cat: Category, name: &str, t: f64, mut args: Args) {
        let mut inner = self.inner.borrow_mut();
        let phase = Self::current_phase(&inner);
        Self::stamp_method(&inner, cat, &mut args);
        inner.events.push(Event {
            cat,
            name: name.to_string(),
            kind: EventKind::Instant,
            t0: t,
            t1: t,
            track: Track::Main,
            phase,
            args,
        });
    }

    /// Record a counter sample at `t`. No-op unless counters are enabled.
    pub fn counter(&self, name: &str, t: f64, value: f64) {
        if !self.cfg.counters {
            return;
        }
        let mut inner = self.inner.borrow_mut();
        let phase = Self::current_phase(&inner);
        inner.events.push(Event {
            cat: Category::Slab,
            name: name.to_string(),
            kind: EventKind::Counter,
            t0: t,
            t1: t,
            track: Track::Main,
            phase,
            args: Args {
                value: Some(value),
                ..Args::default()
            },
        });
    }

    /// Finish recording: consume the tracer and return the rank timeline.
    /// Any still-open structural spans keep their open-time `t1`.
    pub fn finish(self) -> RankTrace {
        let inner = self.inner.into_inner();
        RankTrace {
            rank: self.rank,
            events: inner.events,
            phases: inner.phases,
        }
    }
}

/// Check that every nesting-checked track of `rt` is well-nested and
/// non-overlapping: any two proper spans on the same track are either
/// disjoint or one contains the other (shared endpoints allowed).
/// [`Track::Queue`] is exempt ([`Track::requires_nesting`]) — queueing
/// waits overlap by nature. Returns a description of the first violation.
pub fn check_well_nested(rt: &RankTrace) -> Result<(), String> {
    for track in Track::ALL.into_iter().filter(Track::requires_nesting) {
        let mut spans: Vec<&Event> = rt
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Span && e.track == track && e.t1 > e.t0)
            .collect();
        // Sort outermost-first: by start time, then longest first so a
        // containing span precedes its children.
        spans.sort_by(|a, b| {
            a.t0.partial_cmp(&b.t0)
                .unwrap()
                .then(b.t1.partial_cmp(&a.t1).unwrap())
        });
        let mut stack: Vec<&Event> = Vec::new();
        for s in spans {
            while let Some(top) = stack.last() {
                if s.t0 >= top.t1 {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(top) = stack.last() {
                if s.t1 > top.t1 {
                    return Err(format!(
                        "rank {} track {:?}: span {:?} [{:.9}, {:.9}] overlaps {:?} [{:.9}, {:.9}]",
                        rt.rank, track, s.name, s.t0, s.t1, top.name, top.t0, top.t1
                    ));
                }
            }
            stack.push(s);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracer_records_spans_with_phase_attribution() {
        let tr = Tracer::new(0, TraceConfig::on());
        let phase = tr.open_span(
            Category::Phase,
            "s0:gaxpy",
            0.0,
            Args::default(),
            Some("s0"),
        );
        tr.span(
            Category::DiskRead,
            "read",
            0.0,
            1.0,
            Track::Main,
            Args::io(2, 64).with_array("a", Some(0)),
        );
        tr.close_span(phase, 2.0);
        tr.span(
            Category::Compute,
            "compute",
            2.0,
            3.0,
            Track::Main,
            Args::default(),
        );
        let rt = tr.finish();
        assert_eq!(rt.events.len(), 3);
        assert_eq!(rt.phase_name(&rt.events[1]), Some("s0"));
        assert_eq!(rt.phase_name(&rt.events[2]), None);
        assert_eq!(rt.events[0].t1, 2.0);
        check_well_nested(&rt).unwrap();
    }

    #[test]
    fn counters_respect_config() {
        let tr = Tracer::new(0, TraceConfig::spans_only());
        tr.counter("cache_used", 0.0, 42.0);
        assert_eq!(tr.finish().events.len(), 0);
        let tr = Tracer::new(0, TraceConfig::on());
        tr.counter("cache_used", 0.0, 42.0);
        let rt = tr.finish();
        assert_eq!(rt.events.len(), 1);
        assert_eq!(rt.events[0].kind, EventKind::Counter);
    }

    #[test]
    fn nesting_check_flags_overlap() {
        let tr = Tracer::new(0, TraceConfig::on());
        tr.span(Category::Send, "a", 0.0, 2.0, Track::Main, Args::default());
        tr.span(Category::Recv, "b", 1.0, 3.0, Track::Main, Args::default());
        let rt = tr.finish();
        assert!(check_well_nested(&rt).is_err());
    }

    #[test]
    fn queue_track_is_exempt_from_nesting() {
        // Queueing waits of competing requests overlap by nature; the same
        // pair of spans that fails on Main must pass on Queue.
        let tr = Tracer::new(0, TraceConfig::on());
        tr.span(
            Category::Queue,
            "w1",
            0.0,
            2.0,
            Track::Queue,
            Args::default(),
        );
        tr.span(
            Category::Queue,
            "w2",
            1.0,
            3.0,
            Track::Queue,
            Args::default(),
        );
        let rt = tr.finish();
        assert!(!Track::Queue.requires_nesting());
        assert!(Track::Main.requires_nesting());
        assert!(Track::Overlap.requires_nesting());
        check_well_nested(&rt).unwrap();
    }

    #[test]
    fn nesting_check_allows_contained_and_disjoint() {
        let tr = Tracer::new(0, TraceConfig::on());
        tr.span(
            Category::Collective,
            "outer",
            0.0,
            4.0,
            Track::Main,
            Args::default(),
        );
        tr.span(
            Category::Send,
            "in1",
            0.0,
            1.0,
            Track::Main,
            Args::default(),
        );
        tr.span(
            Category::Recv,
            "in2",
            1.0,
            4.0,
            Track::Main,
            Args::default(),
        );
        tr.span(
            Category::Compute,
            "later",
            4.0,
            5.0,
            Track::Main,
            Args::default(),
        );
        // Overlap track is independent of main.
        tr.span(
            Category::DiskRead,
            "pf",
            3.5,
            4.5,
            Track::Overlap,
            Args::default(),
        );
        let rt = tr.finish();
        check_well_nested(&rt).unwrap();
    }
}
