//! Per-processor execution context.
//!
//! A [`ProcCtx`] is the view one simulated processor has of the machine: its
//! rank, its virtual clock, its operation counters, and its endpoints into
//! the message fabric. The out-of-core runtime layers (`pario`, `noderun`)
//! charge all their work through this context so that simulated time and the
//! paper's two I/O metrics stay consistent by construction.

use std::cell::{Cell, RefCell};

use ooc_trace::{Args, Category, RankTrace, SpanId, Tracer, Track};
use serde::{Deserialize, Serialize};

use crate::collectives::CommError;
use crate::comm::{Endpoints, Msg, Payload, RecvError, Tag};
use crate::costmodel::CostModel;
use crate::fault::{FaultCharges, FaultInjector};
use crate::pool::CoroHook;
use crate::stats::{ProcStats, StatsSnapshot};
use crate::time::{Clock, SimTime};

/// Processor rank, `0..nprocs`.
pub type Rank = usize;

/// How this processor's execution engine blocks at clock-advance points.
pub(crate) enum Blocker {
    /// The rank is an OS thread: block on the mailbox condvar.
    Thread,
    /// The rank is a coroutine on the worker pool: park / yield through
    /// the scheduler hook.
    Coro(CoroHook),
}

impl Blocker {
    fn hook(&self) -> Option<&CoroHook> {
        match self {
            Blocker::Thread => None,
            Blocker::Coro(h) => Some(h),
        }
    }
}

/// The execution context handed to the SPMD closure on each processor.
pub struct ProcCtx {
    rank: Rank,
    nprocs: usize,
    cost: CostModel,
    clock: Clock,
    stats: ProcStats,
    endpoints: RefCell<Endpoints>,
    /// Message-domain fault injector; `None` runs the exact fault-free path.
    faults: Option<FaultInjector>,
    /// Simulated-clock event recorder; `None` (the default) keeps every
    /// instrumented path a single branch.
    tracer: Option<Tracer>,
    /// Array identity of the I/O operation currently charging, set by the
    /// runtime layers via `set_io_hint` so disk spans carry array names.
    io_hint: RefCell<Option<(String, u64)>>,
    /// File offset of the I/O operation currently charging, set by the disk
    /// substrate via `set_io_offset`; consumed by the next disk span when
    /// the trace configuration asks for I/O detail.
    io_offset: Cell<Option<u64>>,
    /// Workload job identity (0 for single-program runs).
    job: u32,
    /// How this rank blocks: as an OS thread or as a pooled coroutine.
    blocker: Blocker,
}

impl ProcCtx {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        rank: Rank,
        nprocs: usize,
        cost: CostModel,
        endpoints: Endpoints,
        faults: Option<FaultInjector>,
        tracer: Option<Tracer>,
        job: u32,
        blocker: Blocker,
    ) -> Self {
        ProcCtx {
            rank,
            nprocs,
            cost,
            clock: Clock::new(),
            stats: ProcStats::new(),
            endpoints: RefCell::new(endpoints),
            faults,
            tracer,
            io_hint: RefCell::new(None),
            io_offset: Cell::new(None),
            job,
            blocker,
        }
    }

    /// Refresh the scheduler's virtual-time key for this rank (pooled
    /// engine only) right before a potential suspension.
    fn sync_blocker_vtime(&self) -> Option<&CoroHook> {
        let hook = self.blocker.hook();
        if let Some(h) = hook {
            h.set_vtime_bits(self.clock.now().seconds().to_bits());
        }
        hook
    }

    /// A clock-advance point with no data dependency (a disk wait in the
    /// parallel I/O layer): give ranks that are behind in virtual time a
    /// chance to run. No-op on the threaded engine; purely a scheduling
    /// hint on the pooled one — results are bitwise-identical either way.
    pub fn io_yield(&self) {
        if let Some(h) = self.sync_blocker_vtime() {
            h.coop_yield();
        }
    }

    /// This processor's rank.
    #[inline]
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Number of processors in the SPMD region.
    #[inline]
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// The machine's cost model.
    #[inline]
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Current local simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Whether event tracing is active on this processor.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.tracer.is_some()
    }

    /// The event recorder, when tracing is enabled.
    #[inline]
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// Workload job identity this processor runs under (0 outside
    /// multi-job workloads).
    #[inline]
    pub fn job(&self) -> u32 {
        self.job
    }

    /// Tag subsequent disk charges with the array identity they serve.
    /// No-op when tracing is off. Called by the I/O runtime layers, which
    /// know the array; the disk substrate below them only sees offsets.
    pub fn set_io_hint(&self, array: &str, file: u64) {
        if self.tracer.is_some() {
            *self.io_hint.borrow_mut() = Some((array.to_string(), file));
        }
    }

    /// Tag the *next* disk charge with its starting file offset. Recorded
    /// on the span only when the trace configuration enables `io_detail`,
    /// and consumed by that one charge — stale offsets never leak onto
    /// later spans.
    pub fn set_io_offset(&self, offset: u64) {
        if self.tracer.as_ref().is_some_and(|tr| tr.config().io_detail) {
            self.io_offset.set(Some(offset));
        }
    }

    fn hinted_args(&self, requests: u64, bytes: u64) -> Args {
        let mut args = Args::io(requests, bytes);
        if let Some((array, file)) = self.io_hint.borrow().as_ref() {
            args = args.with_array(array, Some(*file));
        }
        if let Some(offset) = self.io_offset.take() {
            args = args.with_offset(offset);
        }
        args
    }

    /// Record a completed charge span `[t0, now]` if tracing.
    fn trace_charge(&self, cat: Category, name: &str, t0: SimTime, track: Track, args: Args) {
        if let Some(tr) = &self.tracer {
            tr.span(
                cat,
                name,
                t0.seconds(),
                self.clock.now().seconds(),
                track,
                args,
            );
        }
    }

    /// Open a structural span closed when the returned guard drops. With
    /// tracing off this is free of allocation and recording.
    pub fn trace_span(&self, cat: Category, name: &str) -> TraceSpanGuard<'_> {
        self.open_guard(cat, name, Args::default(), None)
    }

    /// Open a structural span carrying a slab / stage index.
    pub fn trace_slab_span(&self, name: &str, slab: u64) -> TraceSpanGuard<'_> {
        self.open_guard(Category::Slab, name, Args::default().with_slab(slab), None)
    }

    /// Open a statement-level phase scope: until the guard drops, every
    /// recorded event is attributed to phase `name`.
    pub fn trace_phase(&self, name: &str) -> TraceSpanGuard<'_> {
        self.open_guard(Category::Phase, name, Args::default(), Some(name))
    }

    /// Enter an I/O access-method scope: until the returned guard drops,
    /// disk-transfer events carry `label` (`direct`, `sieved`, `two-phase`)
    /// so metrics can histogram request sizes per method. No-op with
    /// tracing off.
    pub fn trace_io_method(&self, label: &str) -> IoMethodGuard<'_> {
        if let Some(tr) = &self.tracer {
            tr.push_io_method(label);
        }
        IoMethodGuard { ctx: self }
    }

    fn open_guard(
        &self,
        cat: Category,
        name: &str,
        args: Args,
        phase_name: Option<&str>,
    ) -> TraceSpanGuard<'_> {
        let id = self
            .tracer
            .as_ref()
            .map(|tr| tr.open_span(cat, name, self.clock.now().seconds(), args, phase_name));
        TraceSpanGuard { ctx: self, id }
    }

    /// Record a point annotation at the current simulated time.
    pub fn trace_instant(&self, cat: Category, name: &str, args: Args) {
        if let Some(tr) = &self.tracer {
            tr.instant(cat, name, self.clock.now().seconds(), args);
        }
    }

    /// Record a counter sample at the current simulated time.
    pub fn trace_counter(&self, name: &str, value: f64) {
        if let Some(tr) = &self.tracer {
            tr.counter(name, self.clock.now().seconds(), value);
        }
    }

    /// Charge `n` floating point operations to this processor.
    pub fn charge_flops(&self, n: u64) {
        let dt = self.cost.compute_time(n);
        let t0 = self.clock.now();
        self.clock.advance(dt);
        self.stats.record_flops(n, dt);
        self.trace_charge(
            Category::Compute,
            "compute",
            t0,
            Track::Main,
            Args {
                value: Some(n as f64),
                ..Args::default()
            },
        );
    }

    /// Charge a disk read of `requests` requests moving `bytes` bytes.
    /// Called by the parallel I/O layer.
    pub fn charge_io_read(&self, requests: u64, bytes: u64) {
        let dt = self.cost.io_time(requests, bytes);
        let t0 = self.clock.now();
        self.clock.advance(dt);
        self.stats.record_io_read(requests, bytes, dt);
        self.trace_charge(
            Category::DiskRead,
            "read",
            t0,
            Track::Main,
            self.hinted_args(requests, bytes),
        );
    }

    /// Charge a disk write of `requests` requests moving `bytes` bytes
    /// (write-behind: see [`CostModel::io_write_time`]).
    pub fn charge_io_write(&self, requests: u64, bytes: u64) {
        let dt = self.cost.io_write_time(requests, bytes);
        let t0 = self.clock.now();
        self.clock.advance(dt);
        self.stats.record_io_write(requests, bytes, dt);
        self.trace_charge(
            Category::DiskWrite,
            "write",
            t0,
            Track::Main,
            self.hinted_args(requests, bytes),
        );
    }

    /// Record `runs` read accesses of `bytes` served from the slab cache.
    /// Hits move no data and advance no clock — only the observability
    /// counters change.
    pub fn charge_io_cache_hit(&self, runs: u64, bytes: u64) {
        self.stats.record_cache_hit(runs, bytes);
        if self.tracer.is_some() {
            let args = self.hinted_args(runs, bytes);
            self.trace_instant(Category::CacheHit, "hit", args);
        }
    }

    /// Charge a dirty-slab write-back: timed like an ordinary disk write
    /// and additionally tracked in the write-back counters, so
    /// `io_write_requests` keeps meaning "requests that reached the disk".
    /// Write-backs happen at eviction/flush time, possibly far from the
    /// access that dirtied the slab; the cache re-establishes the owning
    /// array via `set_io_hint` just before charging, so the span carries
    /// the array identity like any other disk span.
    pub fn charge_io_write_back(&self, requests: u64, bytes: u64) {
        let dt = self.cost.io_write_time(requests, bytes);
        let t0 = self.clock.now();
        self.clock.advance(dt);
        self.stats.record_io_write_back(requests, bytes, dt);
        self.trace_charge(
            Category::WriteBack,
            "write_back",
            t0,
            Track::Main,
            self.hinted_args(requests, bytes),
        );
    }

    /// Charge an arbitrary fixed delay (used by redistribution setup and the
    /// prefetch pipeline model).
    pub fn charge_seconds(&self, dt: f64) {
        self.clock.advance(dt);
    }

    /// Charge recovery work accumulated by the I/O fault layer: re-issued
    /// requests are timed like the originals, backoff and latency spikes are
    /// pure waiting. None of it touches the logical request/byte counters —
    /// the new fault counters record it instead.
    pub fn charge_io_faults(&self, c: &FaultCharges) {
        if c.is_zero() {
            return;
        }
        let dt = self.cost.io_time(c.read_retries, c.read_retry_bytes)
            + self
                .cost
                .io_write_time(c.write_retries, c.write_retry_bytes)
            + c.wait_secs;
        let t0 = self.clock.now();
        self.clock.advance(dt);
        self.stats
            .record_io_faults(c.faults, c.read_retries + c.write_retries, dt);
        self.trace_charge(
            Category::Fault,
            "io_recovery",
            t0,
            Track::Main,
            Args::io(
                c.read_retries + c.write_retries,
                c.read_retry_bytes + c.write_retry_bytes,
            ),
        );
    }

    /// Charge a disk read that was *prefetched*: it overlapped `flops` of
    /// computation, so the clock advances by `max(read time, compute time)`
    /// while the counters record both components in full (software
    /// pipelining of slab fetches, as in the PASSION runtime).
    pub fn charge_prefetched_read(&self, requests: u64, bytes: u64, flops: u64) {
        let io_t = self.cost.io_time(requests, bytes);
        let comp_t = self.cost.compute_time(flops);
        let t0 = self.clock.now();
        self.stats.record_io_read(requests, bytes, io_t);
        self.stats.record_flops(flops, comp_t);
        self.clock.advance(io_t.max(comp_t));
        if self.tracer.is_some() {
            // The read overlaps the compute, so its span lives on the
            // prefetch track: both tracks individually stay non-overlapping
            // while the timeline shows the software pipelining.
            let t = t0.seconds();
            if let Some(tr) = &self.tracer {
                tr.span(
                    Category::DiskRead,
                    "prefetch_read",
                    t,
                    t + io_t,
                    Track::Overlap,
                    self.hinted_args(requests, bytes),
                );
                tr.span(
                    Category::Compute,
                    "compute",
                    t,
                    t + comp_t,
                    Track::Main,
                    Args {
                        value: Some(flops as f64),
                        ..Args::default()
                    },
                );
            }
        }
    }

    /// Blocking send of `payload` to `dst` with matching `tag`.
    ///
    /// Advances this processor's clock by the full transfer time and stamps
    /// the message with its arrival instant.
    pub fn send(&self, dst: Rank, tag: Tag, payload: Payload) {
        assert!(dst < self.nprocs, "send to rank {dst} of {}", self.nprocs);
        assert_ne!(dst, self.rank, "self-send is a protocol error");
        let bytes = payload.size_bytes();
        // Injected message faults are resolved sender-side: a dropped attempt
        // costs a full transfer plus a retransmission backoff, a delay pushes
        // the arrival instant out. The payload itself always arrives intact,
        // so injected faults can never change computed values.
        let mut extra_delay = 0.0;
        if let Some(fi) = &self.faults {
            let plan = fi.msg_plan();
            for attempt in 1..=plan.drops {
                let lost = self.cost.message_time(bytes) + fi.retry().backoff(attempt);
                let t0 = self.clock.now();
                self.clock.advance(lost);
                self.stats.record_msg_retry(lost);
                self.trace_charge(
                    Category::Retry,
                    "msg_retry",
                    t0,
                    Track::Main,
                    Args::msg(dst, bytes),
                );
            }
            if plan.delay_secs > 0.0 {
                extra_delay = plan.delay_secs;
                self.stats.record_msg_delay();
                self.trace_instant(Category::Fault, "msg_delay", Args::msg(dst, bytes));
            }
        }
        let dt = self.cost.message_time(bytes);
        let t0 = self.clock.now();
        let arrival = self.clock.advance(dt);
        let arrival = SimTime(arrival.seconds() + extra_delay);
        self.stats.record_send(bytes, dt);
        self.trace_charge(
            Category::Send,
            "send",
            t0,
            Track::Main,
            Args::msg(dst, bytes),
        );
        // A `false` return means `dst` already aborted (permanent fault);
        // the charge above stands either way so the sender's clock and
        // counters never depend on peer liveness.
        let _ = self.endpoints.borrow().send(
            dst,
            Msg {
                tag,
                payload,
                arrival,
            },
        );
    }

    /// Blocking receive from `src` with matching `tag`.
    ///
    /// The receiver's clock is moved forward to the message's arrival time if
    /// it was waiting; time already past arrival costs nothing.
    pub fn recv(&self, src: Rank, tag: Tag) -> Result<Payload, RecvError> {
        assert!(src < self.nprocs, "recv from rank {src} of {}", self.nprocs);
        let hook = self.sync_blocker_vtime();
        let msg = self.endpoints.borrow().recv_as(src, tag, hook)?;
        let before = self.clock.now();
        let after = self.clock.sync_to(msg.arrival);
        let wait = (after.seconds() - before.seconds()).max(0.0);
        let bytes = msg.payload.size_bytes();
        self.stats.record_recv(bytes, wait);
        self.trace_charge(
            Category::Recv,
            "recv",
            before,
            Track::Main,
            Args::msg(src, bytes),
        );
        Ok(msg.payload)
    }

    /// Receive, panicking on a dead peer — the common case inside collective
    /// algorithms where a missing peer means the SPMD program itself is
    /// broken.
    pub fn recv_expect(&self, src: Rank, tag: Tag) -> Payload {
        self.recv(src, tag)
            .unwrap_or_else(|e| panic!("rank {}: {e}", self.rank))
    }

    /// Receive an `F32` payload, surfacing dead peers and payload
    /// mismatches as [`CommError`] — the recoverable counterpart of
    /// `recv_expect(..).into_f32()` used by the executors' exchanges.
    pub fn try_recv_f32(&self, src: Rank, tag: Tag) -> Result<Vec<f32>, CommError> {
        Ok(self.recv(src, tag)?.try_into_f32()?)
    }

    /// Snapshot of this processor's counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    pub(crate) fn finish(self) -> (ProcReport, Option<RankTrace>) {
        let report = ProcReport {
            rank: self.rank,
            finish_time: self.clock.now().seconds(),
            stats: self.stats.snapshot(),
        };
        (report, self.tracer.map(Tracer::finish))
    }
}

/// RAII scope for a structural trace span opened through
/// [`ProcCtx::trace_span`] / [`ProcCtx::trace_phase`]: the span closes at
/// the simulated time the guard drops. With tracing off the guard is inert.
pub struct TraceSpanGuard<'a> {
    ctx: &'a ProcCtx,
    id: Option<SpanId>,
}

impl Drop for TraceSpanGuard<'_> {
    fn drop(&mut self) {
        if let (Some(tr), Some(id)) = (&self.ctx.tracer, self.id) {
            tr.close_span(id, self.ctx.clock.now().seconds());
        }
    }
}

/// RAII scope for an I/O access-method label opened through
/// [`ProcCtx::trace_io_method`]; pops the method on drop.
pub struct IoMethodGuard<'a> {
    ctx: &'a ProcCtx,
}

impl Drop for IoMethodGuard<'_> {
    fn drop(&mut self) {
        if let Some(tr) = &self.ctx.tracer {
            tr.pop_io_method();
        }
    }
}

/// Final state of one processor after the SPMD region.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcReport {
    /// The processor's rank.
    pub rank: Rank,
    /// Its clock when it finished, in simulated seconds.
    pub finish_time: f64,
    /// Its operation counters.
    pub stats: StatsSnapshot,
}

/// Result of running an SPMD region on the simulated machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    per_proc: Vec<ProcReport>,
    wall_seconds: f64,
    trace: Option<ooc_trace::Trace>,
    /// Peak resident set size of the *host* process, when a harness
    /// recorded one (see `ooc-bench`'s `/proc/self/status` reader). Not a
    /// simulated quantity: excluded from parity comparisons.
    peak_rss_bytes: Option<u64>,
}

impl RunReport {
    pub(crate) fn new(
        mut per_proc: Vec<ProcReport>,
        wall_seconds: f64,
        trace: Option<ooc_trace::Trace>,
    ) -> Self {
        per_proc.sort_by_key(|p| p.rank);
        RunReport {
            per_proc,
            wall_seconds,
            trace,
            peak_rss_bytes: None,
        }
    }

    /// Best-effort peak resident memory of the simulating process, if a
    /// harness attached one via [`RunReport::set_peak_rss_bytes`].
    pub fn peak_rss_bytes(&self) -> Option<u64> {
        self.peak_rss_bytes
    }

    /// Attach a host peak-RSS measurement (bytes) to the report.
    pub fn set_peak_rss_bytes(&mut self, bytes: Option<u64>) {
        self.peak_rss_bytes = bytes;
    }

    /// The recorded simulated-clock trace, when tracing was enabled on the
    /// machine configuration.
    pub fn trace(&self) -> Option<&ooc_trace::Trace> {
        self.trace.as_ref()
    }

    /// Detach the recorded trace from the report.
    pub fn take_trace(&mut self) -> Option<ooc_trace::Trace> {
        self.trace.take()
    }

    /// Number of processors that ran.
    pub fn nprocs(&self) -> usize {
        self.per_proc.len()
    }

    /// Per-processor reports, ordered by rank.
    pub fn per_proc(&self) -> &[ProcReport] {
        &self.per_proc
    }

    /// Simulated elapsed time of the region: the latest finish time.
    pub fn elapsed(&self) -> f64 {
        self.per_proc
            .iter()
            .map(|p| p.finish_time)
            .fold(0.0, f64::max)
    }

    /// Counters summed over all processors.
    pub fn totals(&self) -> StatsSnapshot {
        self.per_proc
            .iter()
            .fold(StatsSnapshot::default(), |acc, p| acc.merge(&p.stats))
    }

    /// Maximum per-processor I/O requests — the paper's "requests per
    /// processor" metric (processors are symmetric in its experiments).
    pub fn io_requests_per_proc(&self) -> u64 {
        self.per_proc
            .iter()
            .map(|p| p.stats.io_requests())
            .max()
            .unwrap_or(0)
    }

    /// Maximum per-processor I/O bytes — the paper's "data fetched per
    /// processor" metric.
    pub fn io_bytes_per_proc(&self) -> u64 {
        self.per_proc
            .iter()
            .map(|p| p.stats.io_bytes())
            .max()
            .unwrap_or(0)
    }

    /// Host wall-clock seconds the simulation itself took (not simulated
    /// time; useful for harness diagnostics only).
    pub fn wall_seconds(&self) -> f64 {
        self.wall_seconds
    }
}
