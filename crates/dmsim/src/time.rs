//! Virtual time.
//!
//! Simulated time is kept in seconds as an `f64`. A dedicated newtype keeps
//! clock arithmetic honest (no accidental mixing with byte counts or flop
//! counts) and centralizes the max/advance operations that the messaging and
//! collective layers rely on.

use std::cell::Cell;
use std::fmt;

/// A point in simulated time, in seconds since the start of the run.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(pub f64);

impl SimTime {
    /// The epoch: the instant the SPMD region begins on every processor.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Seconds since the epoch.
    #[inline]
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// Advance by `dt` seconds. Negative durations are a logic error.
    #[inline]
    pub fn advance(self, dt: f64) -> SimTime {
        debug_assert!(dt >= 0.0, "negative duration: {dt}");
        SimTime(self.0 + dt)
    }

    /// Later of two instants — the clock-synchronization primitive used when
    /// a message is received or a collective completes.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

/// A processor-local virtual clock.
///
/// Each [`crate::ProcCtx`] owns one `Clock`; it is deliberately `!Sync`
/// (interior mutability through [`Cell`]) because a clock belongs to exactly
/// one simulated processor.
#[derive(Debug, Default)]
pub struct Clock {
    now: Cell<SimTime>,
}

impl Clock {
    /// A clock at the epoch.
    pub fn new() -> Self {
        Clock {
            now: Cell::new(SimTime::ZERO),
        }
    }

    /// Current local time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now.get()
    }

    /// Advance the clock by `dt` seconds and return the new time.
    #[inline]
    pub fn advance(&self, dt: f64) -> SimTime {
        let t = self.now.get().advance(dt);
        self.now.set(t);
        t
    }

    /// Synchronize forward: move the clock to `t` if `t` is later. A clock
    /// never moves backwards (receiving an "old" message costs no waiting).
    #[inline]
    pub fn sync_to(&self, t: SimTime) -> SimTime {
        let n = self.now.get().max(t);
        self.now.set(n);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_accumulates() {
        let c = Clock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance(1.5);
        c.advance(0.25);
        assert!((c.now().seconds() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn sync_never_moves_backwards() {
        let c = Clock::new();
        c.advance(2.0);
        c.sync_to(SimTime(1.0));
        assert_eq!(c.now().seconds(), 2.0);
        c.sync_to(SimTime(3.0));
        assert_eq!(c.now().seconds(), 3.0);
    }

    #[test]
    fn max_picks_later() {
        assert_eq!(SimTime(1.0).max(SimTime(2.0)), SimTime(2.0));
        assert_eq!(SimTime(5.0).max(SimTime(2.0)), SimTime(5.0));
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(format!("{}", SimTime(1.25)), "1.250000s");
    }
}
