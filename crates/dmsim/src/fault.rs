//! Seeded, deterministic fault injection.
//!
//! The paper's machine model assumes every disk request and message succeeds;
//! this module perturbs that ideal machine without giving up determinism. One
//! master seed derives an independent splitmix64 stream per (rank, domain)
//! pair, so the fate of the k-th disk request on rank r is a pure function of
//! the seed and the program — independent of thread scheduling and of what
//! any other rank does. Two runs with the same seed therefore inject the same
//! faults at the same points and produce bit-identical results and stats.
//!
//! Fault kinds:
//! - transient read/write errors (the request fails, the retry policy
//!   re-issues it with exponential backoff),
//! - torn writes (a prefix of the payload hits the platter before the fault;
//!   the retry re-writes the full extent, so positional writes stay
//!   idempotent),
//! - latency spikes (the request succeeds but stalls for a configured delay),
//! - dropped and delayed point-to-point messages (the sender re-transmits
//!   after a timeout; delays only push the arrival instant out),
//! - permanent ("hard") faults that no retry can clear — these surface as
//!   typed errors and drive checkpoint/restart in the executors.
//!
//! Transient faults are bounded by [`RetryPolicy::max_attempts`] and the
//! final attempt always succeeds, so any schedule of transient faults
//! eventually permits success; only hard faults escape the retry loop.
//! All recovery work (re-issued requests, backoff waits, re-transmissions)
//! is charged to the simulated clock and the fault counters in
//! [`crate::stats`], never to the paper's logical request/byte metrics.

use std::cell::Cell;

use serde::{Deserialize, Serialize};

/// Bounded-retry policy with exponential backoff.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum attempts per operation (>= 1). The final attempt of a
    /// *transient* fault always succeeds, bounding recovery.
    pub max_attempts: u32,
    /// Backoff before the first retry, in simulated seconds.
    pub backoff_base: f64,
    /// Multiplier applied to the backoff after each failed attempt.
    pub backoff_mult: f64,
}

impl RetryPolicy {
    /// Backoff charged before retry number `attempt` (1-based).
    pub fn backoff(&self, attempt: u32) -> f64 {
        self.backoff_base * self.backoff_mult.powi(attempt.saturating_sub(1) as i32)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            backoff_base: 1e-3,
            backoff_mult: 2.0,
        }
    }
}

/// Per-operation fault rates and the master seed.
///
/// The default configuration is completely quiet: every rate is zero and the
/// injector draws nothing from its streams, so an all-zero config is
/// bit-identical to running without an injector at all.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Master seed; per-rank streams are derived from it.
    pub seed: u64,
    /// Probability a disk read attempt fails transiently.
    pub read_error: f64,
    /// Probability a disk write attempt fails transiently (complete fail).
    pub write_error: f64,
    /// Probability a disk write attempt tears: a prefix reaches the disk,
    /// then the attempt fails and is retried in full.
    pub torn_write: f64,
    /// Probability a disk request succeeds but suffers a latency spike.
    pub io_delay: f64,
    /// Length of one I/O latency spike, in simulated seconds.
    pub io_delay_secs: f64,
    /// Probability a point-to-point send attempt is dropped (re-sent after
    /// a backoff timeout).
    pub msg_drop: f64,
    /// Probability a delivered message is delayed in flight.
    pub msg_delay: f64,
    /// Extra in-flight latency of one delayed message, in simulated seconds.
    pub msg_delay_secs: f64,
    /// Probability a disk read hits a *permanent* fault no retry can clear.
    pub hard_read: f64,
    /// Probability a disk write hits a *permanent* fault.
    pub hard_write: f64,
    /// After this many injected disk faults the disk is marked degraded
    /// (0 = never) and planners may re-plan against reduced bandwidth.
    pub degrade_after: u64,
    /// Bandwidth divisor applied by a degraded disk when re-planning.
    pub degraded_bw_factor: f64,
    /// After this many injected disk faults the disk **dies permanently**
    /// (0 = never): every subsequent request fails with a typed
    /// disk-down error that no retry or checkpoint/restart on the same
    /// disk can clear. Workload-level layers (`ooc-sched`) react by
    /// re-planning the surviving jobs onto the remaining disks.
    pub fail_after: u64,
    /// Retry policy shared by disk and message recovery.
    pub retry: RetryPolicy,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            read_error: 0.0,
            write_error: 0.0,
            torn_write: 0.0,
            io_delay: 0.0,
            io_delay_secs: 0.0,
            msg_drop: 0.0,
            msg_delay: 0.0,
            msg_delay_secs: 0.0,
            hard_read: 0.0,
            hard_write: 0.0,
            degrade_after: 0,
            degraded_bw_factor: 4.0,
            fail_after: 0,
            retry: RetryPolicy::default(),
        }
    }
}

impl FaultConfig {
    /// A quiet config (all rates zero) with the given seed.
    pub fn quiet(seed: u64) -> Self {
        FaultConfig {
            seed,
            ..FaultConfig::default()
        }
    }

    /// A lively chaos preset: frequent transient disk errors, torn writes,
    /// latency spikes, and message drops/delays — but no permanent faults,
    /// so every run completes without checkpoint support.
    pub fn chaos(seed: u64) -> Self {
        FaultConfig {
            seed,
            read_error: 0.05,
            write_error: 0.04,
            torn_write: 0.02,
            io_delay: 0.03,
            io_delay_secs: 0.02,
            msg_drop: 0.05,
            msg_delay: 0.05,
            msg_delay_secs: 0.005,
            ..FaultConfig::default()
        }
    }

    /// True when every fault rate is zero (the injector will never draw).
    pub fn is_quiet(&self) -> bool {
        self.read_error <= 0.0
            && self.write_error <= 0.0
            && self.torn_write <= 0.0
            && self.io_delay <= 0.0
            && self.msg_drop <= 0.0
            && self.msg_delay <= 0.0
            && self.hard_read <= 0.0
            && self.hard_write <= 0.0
    }
}

/// Which substrate an injector perturbs. Each (rank, domain) pair gets its
/// own stream so disk fates never shift message fates and vice versa.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultDomain {
    /// The parallel-I/O substrate (`pario::disk` / `pario::cache`).
    Disk,
    /// The message fabric (`ProcCtx::send`).
    Msg,
}

/// splitmix64 — tiny, seedable, and statistically fine for fate draws.
/// Embedded here because `dmsim` has no runtime RNG dependency.
#[derive(Debug)]
struct Stream {
    state: Cell<u64>,
}

impl Stream {
    fn new(seed: u64) -> Self {
        Stream {
            state: Cell::new(seed),
        }
    }

    fn next_u64(&self) -> u64 {
        let mut z = self.state.get().wrapping_add(0x9e37_79b9_7f4a_7c15);
        self.state.set(z);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn next_f64(&self) -> f64 {
        // 53 uniform bits in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw. A zero (or negative) probability returns `false`
    /// *without advancing the stream*, so disabled fault kinds leave the
    /// stream — and therefore every enabled kind's fate sequence — intact.
    fn chance(&self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        self.next_f64() < p
    }
}

/// A public seeded splitmix64 stream for *workload-level* fault plans.
///
/// The per-(job, rank, domain) streams above belong to one machine run;
/// layers above the machine (the `ooc-sched` fault-domain executive) need
/// their own deterministic draws — which job hangs, where a disk dies —
/// that must not perturb, and must not be perturbed by, any machine-level
/// stream. `FaultStream` is the same generator with an independent salt
/// space: a pure function of `(seed, salt)`.
#[derive(Debug)]
pub struct FaultStream(Stream);

impl FaultStream {
    /// Derive the stream for `salt` (e.g. a workload job index) under
    /// `seed`. Distinct salts decorrelate; the derivation is disjoint from
    /// the machine-level (rank, domain) space by construction.
    pub fn derive(seed: u64, salt: u64) -> FaultStream {
        let s = Stream::new(seed ^ salt.wrapping_mul(0xa076_1d64_78bd_642f) ^ (0x3f << 56));
        FaultStream(Stream::new(s.next_u64()))
    }

    /// Next uniform 64-bit draw.
    pub fn next_u64(&self) -> u64 {
        self.0.next_u64()
    }

    /// Next uniform draw in `[0, 1)`.
    pub fn next_f64(&self) -> f64 {
        self.0.next_f64()
    }

    /// Bernoulli draw; `p <= 0` returns `false` without advancing the
    /// stream (disabled fault kinds leave every other fate sequence
    /// intact, exactly as the machine-level injector behaves).
    pub fn chance(&self, p: f64) -> bool {
        self.0.chance(p)
    }
}

fn mix_seed(seed: u64, rank: usize, domain: FaultDomain) -> u64 {
    let d = match domain {
        FaultDomain::Disk => 0x1d,
        FaultDomain::Msg => 0x2e,
    };
    // One splitmix64 step over a combined word decorrelates nearby ranks.
    let s = Stream::new(seed ^ (rank as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (d << 56));
    s.next_u64()
}

/// Derive the stream seed for a (job, rank, domain) triple. Job 0 — the
/// implicit job of every single-program run — folds to exactly the legacy
/// per-(rank, domain) derivation, so existing seeded runs keep their fate
/// sequences bit-for-bit; any other job id perturbs the master seed before
/// the rank/domain mix, so concurrent jobs draw from independent streams
/// and cannot shift each other's chaos results.
fn mix_seed_job(seed: u64, job: u32, rank: usize, domain: FaultDomain) -> u64 {
    let seed = if job == 0 {
        seed
    } else {
        seed ^ (job as u64).wrapping_mul(0xd6e8_feb8_6659_fd93)
    };
    mix_seed(seed, rank, domain)
}

/// Fate of one disk request attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IoFate {
    /// The attempt succeeds.
    Ok,
    /// The attempt succeeds after a latency spike of the given seconds.
    Delayed(f64),
    /// The attempt fails transiently; retry after backoff.
    Transient,
    /// The attempt tears: a prefix reaches the disk, then it fails.
    Torn,
}

/// Recovery work accumulated by an injector since the last drain.
///
/// The I/O substrate performs retries synchronously but cannot reach the
/// simulated clock directly, so it accumulates charges here; the disk layer
/// drains them through [`IoCharge::io_faults`] after each public operation.
///
/// [`IoCharge::io_faults`]: ../../pario/trait.IoCharge.html#method.io_faults
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultCharges {
    /// Faults injected (transient + torn + delays + hard).
    pub faults: u64,
    /// Re-issued read requests.
    pub read_retries: u64,
    /// Bytes moved by re-issued reads.
    pub read_retry_bytes: u64,
    /// Re-issued write requests (including torn-write re-writes).
    pub write_retries: u64,
    /// Bytes moved by re-issued writes.
    pub write_retry_bytes: u64,
    /// Backoff + latency-spike seconds to charge to the clock.
    pub wait_secs: f64,
}

impl FaultCharges {
    /// True when there is nothing to charge.
    pub fn is_zero(&self) -> bool {
        self.faults == 0
            && self.read_retries == 0
            && self.write_retries == 0
            && self.wait_secs == 0.0
    }
}

/// Message-send perturbation: how many attempts are dropped before one
/// gets through, and how much extra in-flight delay the survivor suffers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MsgPlan {
    /// Dropped attempts before the successful one (< `max_attempts`).
    pub drops: u32,
    /// Extra arrival delay of the delivered message, in simulated seconds.
    pub delay_secs: f64,
}

/// Per-rank, per-domain deterministic fault source.
///
/// Interior-mutable (`Cell` state) so the I/O layers can draw fates through
/// shared references; owned by exactly one simulated processor's thread.
#[derive(Debug)]
pub struct FaultInjector {
    cfg: FaultConfig,
    stream: Stream,
    // Hard-fault rates live in Cells so recovery can quiesce them mid-run
    // (checkpoint/restart re-executes with permanent faults cleared).
    hard_read: Cell<f64>,
    hard_write: Cell<f64>,
    faults_seen: Cell<u64>,
    charges: Cell<FaultCharges>,
}

impl FaultInjector {
    /// Build the injector for `rank` in `domain` from a shared config
    /// (job 0, the single-program case).
    pub fn new(cfg: &FaultConfig, rank: usize, domain: FaultDomain) -> Self {
        Self::for_job(cfg, 0, rank, domain)
    }

    /// Build the injector for `rank` of `job` in `domain`. Streams are a
    /// pure function of (seed, job, rank, domain); job 0 reproduces the
    /// legacy single-job streams exactly.
    pub fn for_job(cfg: &FaultConfig, job: u32, rank: usize, domain: FaultDomain) -> Self {
        FaultInjector {
            stream: Stream::new(mix_seed_job(cfg.seed, job, rank, domain)),
            hard_read: Cell::new(cfg.hard_read),
            hard_write: Cell::new(cfg.hard_write),
            faults_seen: Cell::new(0),
            charges: Cell::new(FaultCharges::default()),
            cfg: cfg.clone(),
        }
    }

    /// The retry policy in force.
    pub fn retry(&self) -> RetryPolicy {
        self.cfg.retry
    }

    /// Draw whether the next read hits a permanent fault.
    pub fn hard_read(&self) -> bool {
        self.stream.chance(self.hard_read.get())
    }

    /// Draw whether the next write hits a permanent fault.
    pub fn hard_write(&self) -> bool {
        self.stream.chance(self.hard_write.get())
    }

    /// Clear the permanent-fault rates: after a checkpoint/restart recovery
    /// the re-execution must be able to finish.
    pub fn quiesce_hard(&self) {
        self.hard_read.set(0.0);
        self.hard_write.set(0.0);
    }

    /// Draw the fate of one read attempt.
    pub fn read_attempt(&self) -> IoFate {
        if self.stream.chance(self.cfg.read_error) {
            IoFate::Transient
        } else if self.stream.chance(self.cfg.io_delay) {
            IoFate::Delayed(self.cfg.io_delay_secs)
        } else {
            IoFate::Ok
        }
    }

    /// Draw the fate of one write attempt.
    pub fn write_attempt(&self) -> IoFate {
        if self.stream.chance(self.cfg.write_error) {
            IoFate::Transient
        } else if self.stream.chance(self.cfg.torn_write) {
            IoFate::Torn
        } else if self.stream.chance(self.cfg.io_delay) {
            IoFate::Delayed(self.cfg.io_delay_secs)
        } else {
            IoFate::Ok
        }
    }

    /// Draw the perturbation of one message send.
    pub fn msg_plan(&self) -> MsgPlan {
        let max = self.cfg.retry.max_attempts.max(1);
        let mut drops = 0;
        while drops + 1 < max && self.stream.chance(self.cfg.msg_drop) {
            drops += 1;
        }
        let delay_secs = if self.stream.chance(self.cfg.msg_delay) {
            self.cfg.msg_delay_secs
        } else {
            0.0
        };
        MsgPlan { drops, delay_secs }
    }

    /// Record one injected fault (any kind) toward degradation.
    pub fn note_fault(&self) {
        self.faults_seen.set(self.faults_seen.get() + 1);
        let mut c = self.charges.get();
        c.faults += 1;
        self.charges.set(c);
    }

    /// Record a re-issued read of `bytes` plus `backoff_secs` of waiting.
    pub fn note_read_retry(&self, bytes: u64, backoff_secs: f64) {
        let mut c = self.charges.get();
        c.read_retries += 1;
        c.read_retry_bytes += bytes;
        c.wait_secs += backoff_secs;
        self.charges.set(c);
    }

    /// Record a re-issued write of `bytes` plus `backoff_secs` of waiting.
    pub fn note_write_retry(&self, bytes: u64, backoff_secs: f64) {
        let mut c = self.charges.get();
        c.write_retries += 1;
        c.write_retry_bytes += bytes;
        c.wait_secs += backoff_secs;
        self.charges.set(c);
    }

    /// Record a latency spike of `secs`.
    pub fn note_wait(&self, secs: f64) {
        let mut c = self.charges.get();
        c.wait_secs += secs;
        self.charges.set(c);
    }

    /// Faults injected so far by this injector.
    pub fn faults_seen(&self) -> u64 {
        self.faults_seen.get()
    }

    /// True once enough faults accumulated to mark the disk degraded.
    pub fn degraded(&self) -> bool {
        self.cfg.degrade_after > 0 && self.faults_seen.get() >= self.cfg.degrade_after
    }

    /// True once enough faults accumulated to kill the disk permanently
    /// ([`FaultConfig::fail_after`]). Unlike degradation — which planners
    /// absorb by re-planning slab sizes — a dead disk fails every
    /// subsequent request with a typed disk-down error.
    pub fn dead(&self) -> bool {
        self.cfg.fail_after > 0 && self.faults_seen.get() >= self.cfg.fail_after
    }

    /// Bandwidth divisor for planning against a degraded disk.
    pub fn degrade_factor(&self) -> f64 {
        self.cfg.degraded_bw_factor
    }

    /// Drain accumulated recovery charges (resets the accumulator).
    pub fn take_charges(&self) -> FaultCharges {
        self.charges.replace(FaultCharges::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_config_never_draws() {
        let fi = FaultInjector::new(&FaultConfig::quiet(42), 0, FaultDomain::Disk);
        for _ in 0..100 {
            assert_eq!(fi.read_attempt(), IoFate::Ok);
            assert_eq!(fi.write_attempt(), IoFate::Ok);
            assert!(!fi.hard_read());
            assert!(!fi.hard_write());
            let p = fi.msg_plan();
            assert_eq!(p.drops, 0);
            assert_eq!(p.delay_secs, 0.0);
        }
        // The stream was never advanced: a fresh injector agrees even after
        // the null draws above.
        assert_eq!(fi.stream.state.get(), mix_seed(42, 0, FaultDomain::Disk));
        assert!(fi.take_charges().is_zero());
    }

    #[test]
    fn same_seed_same_fate_sequence() {
        let mk = || FaultInjector::new(&FaultConfig::chaos(7), 3, FaultDomain::Disk);
        let a = mk();
        let b = mk();
        for _ in 0..1000 {
            assert_eq!(a.read_attempt(), b.read_attempt());
            assert_eq!(a.write_attempt(), b.write_attempt());
        }
    }

    #[test]
    fn ranks_and_domains_get_distinct_streams() {
        let cfg = FaultConfig::chaos(1);
        let d0 = FaultInjector::new(&cfg, 0, FaultDomain::Disk);
        let d1 = FaultInjector::new(&cfg, 1, FaultDomain::Disk);
        let m0 = FaultInjector::new(&cfg, 0, FaultDomain::Msg);
        let seq = |fi: &FaultInjector| (0..64).map(|_| fi.stream.next_u64()).collect::<Vec<_>>();
        let (s_d0, s_d1, s_m0) = (seq(&d0), seq(&d1), seq(&m0));
        assert_ne!(s_d0, s_d1);
        assert_ne!(s_d0, s_m0);
    }

    #[test]
    fn job_zero_streams_are_bitwise_legacy() {
        let cfg = FaultConfig::chaos(7);
        for rank in 0..4 {
            for domain in [FaultDomain::Disk, FaultDomain::Msg] {
                assert_eq!(
                    mix_seed_job(cfg.seed, 0, rank, domain),
                    mix_seed(cfg.seed, rank, domain)
                );
                let legacy = FaultInjector::new(&cfg, rank, domain);
                let job0 = FaultInjector::for_job(&cfg, 0, rank, domain);
                for _ in 0..256 {
                    assert_eq!(legacy.stream.next_u64(), job0.stream.next_u64());
                }
            }
        }
    }

    #[test]
    fn jobs_get_independent_streams_per_rank() {
        let cfg = FaultConfig::chaos(5);
        let seq = |job: u32, rank: usize| {
            let fi = FaultInjector::for_job(&cfg, job, rank, FaultDomain::Disk);
            (0..64).map(|_| fi.stream.next_u64()).collect::<Vec<_>>()
        };
        // Distinct jobs diverge on every rank; the same (job, rank) pair is
        // reproducible.
        for rank in 0..3 {
            assert_ne!(seq(0, rank), seq(1, rank));
            assert_ne!(seq(1, rank), seq(2, rank));
            assert_eq!(seq(1, rank), seq(1, rank));
        }
        // A job's stream on one rank is not another job's stream on a
        // shifted rank (the job mix is not a plain rank offset).
        assert_ne!(seq(1, 0), seq(0, 1));
    }

    #[test]
    fn chaos_preset_actually_faults() {
        let fi = FaultInjector::new(&FaultConfig::chaos(9), 0, FaultDomain::Disk);
        let mut transients = 0;
        for _ in 0..1000 {
            if fi.read_attempt() == IoFate::Transient {
                transients += 1;
            }
        }
        assert!(transients > 0, "5% rate over 1000 draws must fire");
        // But never permanently: chaos has no hard faults.
        assert!(!fi.hard_read());
    }

    #[test]
    fn backoff_grows_exponentially() {
        let r = RetryPolicy {
            max_attempts: 5,
            backoff_base: 1.0,
            backoff_mult: 2.0,
        };
        assert_eq!(r.backoff(1), 1.0);
        assert_eq!(r.backoff(2), 2.0);
        assert_eq!(r.backoff(4), 8.0);
    }

    #[test]
    fn charges_accumulate_and_drain() {
        let fi = FaultInjector::new(&FaultConfig::chaos(3), 0, FaultDomain::Disk);
        fi.note_fault();
        fi.note_read_retry(100, 0.5);
        fi.note_write_retry(50, 0.25);
        fi.note_wait(0.25);
        let c = fi.take_charges();
        assert_eq!(c.faults, 1);
        assert_eq!(c.read_retries, 1);
        assert_eq!(c.read_retry_bytes, 100);
        assert_eq!(c.write_retries, 1);
        assert_eq!(c.write_retry_bytes, 50);
        assert_eq!(c.wait_secs, 1.0);
        assert!(fi.take_charges().is_zero());
        assert_eq!(fi.faults_seen(), 1);
    }

    #[test]
    fn degradation_trips_after_threshold() {
        let cfg = FaultConfig {
            degrade_after: 3,
            ..FaultConfig::quiet(0)
        };
        let fi = FaultInjector::new(&cfg, 0, FaultDomain::Disk);
        assert!(!fi.degraded());
        fi.note_fault();
        fi.note_fault();
        assert!(!fi.degraded());
        fi.note_fault();
        assert!(fi.degraded());
    }

    #[test]
    fn quiesce_clears_hard_rates() {
        let cfg = FaultConfig {
            hard_read: 1.0,
            hard_write: 1.0,
            ..FaultConfig::quiet(0)
        };
        let fi = FaultInjector::new(&cfg, 0, FaultDomain::Disk);
        assert!(fi.hard_read());
        fi.quiesce_hard();
        assert!(!fi.hard_read());
        assert!(!fi.hard_write());
    }

    #[test]
    fn msg_drops_bounded_below_max_attempts() {
        let cfg = FaultConfig {
            msg_drop: 1.0,
            retry: RetryPolicy {
                max_attempts: 4,
                ..RetryPolicy::default()
            },
            ..FaultConfig::quiet(0)
        };
        let fi = FaultInjector::new(&cfg, 0, FaultDomain::Msg);
        for _ in 0..32 {
            assert_eq!(fi.msg_plan().drops, 3);
        }
    }
}
