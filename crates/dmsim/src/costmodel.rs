//! The analytic cost model.
//!
//! The paper measures I/O cost with two metrics — the number of I/O requests
//! per processor and the total data fetched per processor (§4) — because the
//! cost of physically accessing the data "is dictated by the hardware and to
//! a certain extent by the parallel file system". This module is that
//! hardware: it converts the counted metrics into seconds.
//!
//! All parameters are public and serializable so experiments can report the
//! exact machine they simulated, and ablations can perturb one knob at a
//! time.

use serde::{Deserialize, Serialize};

/// Cost parameters of the simulated machine.
///
/// The [`CostModel::delta`] constructor calibrates the model to the Intel
/// Touchstone Delta as used in the paper (i860 nodes, NX message passing,
/// a shared Concurrent-File-System disk farm). See `DESIGN.md` §4 for the
/// calibration argument.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Seconds per floating-point operation (effective, not peak).
    pub flop_time: f64,
    /// Per-message network latency in seconds.
    pub msg_latency: f64,
    /// Network bandwidth per link, bytes/second.
    pub msg_bandwidth: f64,
    /// Fixed cost per read request (seek + file-system overhead), seconds.
    pub io_startup: f64,
    /// Aggregate disk bandwidth of the whole I/O subsystem, bytes/second.
    pub io_aggregate_bandwidth: f64,
    /// Fixed cost per *write* request, seconds. Writes are buffered by the
    /// I/O nodes (write-behind, as on the Delta's CFS), so a writer pays
    /// only the hand-off cost, not the seek.
    pub io_write_startup: f64,
    /// Bandwidth at which a processor hands written bytes to the I/O
    /// nodes, bytes/second (typically network-limited).
    pub io_write_bandwidth: f64,
    /// Number of compute processors sharing the I/O subsystem.
    pub nprocs: usize,
    /// If true the disk farm is shared: a processor's share of bandwidth is
    /// `io_aggregate_bandwidth / nprocs`. If false, each processor owns a
    /// local disk with the full `io_aggregate_bandwidth`.
    pub shared_disks: bool,
}

impl CostModel {
    /// Intel Touchstone Delta calibration for `nprocs` compute nodes.
    ///
    /// * 4 MFLOP/s effective per node — reproduces the paper's in-core
    ///   1K×1K matmul times (140.9 s on 4 procs ≈ 2·N³/P flops / 4 MFLOP/s).
    /// * 15 ms per I/O request startup — reproduces the gap between slab
    ///   ratio 1 and 1/8 in Table 1.
    /// * 5.5 MB/s aggregate disk bandwidth shared by all nodes — reproduces
    ///   the ≈ 1000 s column-slab times on 4 processors.
    /// * 75 µs / 30 MB/s network — typical published NX figures.
    pub fn delta(nprocs: usize) -> Self {
        CostModel {
            flop_time: 1.0 / 4.0e6,
            msg_latency: 75.0e-6,
            msg_bandwidth: 30.0e6,
            io_startup: 15.0e-3,
            io_aggregate_bandwidth: 5.5e6,
            io_write_startup: 1.0e-3,
            io_write_bandwidth: 30.0e6,
            nprocs,
            shared_disks: true,
        }
    }

    /// A machine with negligible costs — useful in unit tests that only care
    /// about functional behaviour.
    pub fn free(nprocs: usize) -> Self {
        CostModel {
            flop_time: 0.0,
            msg_latency: 0.0,
            msg_bandwidth: f64::INFINITY,
            io_startup: 0.0,
            io_aggregate_bandwidth: f64::INFINITY,
            io_write_startup: 0.0,
            io_write_bandwidth: f64::INFINITY,
            nprocs,
            shared_disks: false,
        }
    }

    /// A modern-ish cluster node profile, used by ablation benches to show
    /// the optimization is still directionally right when the
    /// compute/IO-cost ratio changes by orders of magnitude.
    pub fn cluster(nprocs: usize) -> Self {
        CostModel {
            flop_time: 1.0 / 2.0e9,
            msg_latency: 2.0e-6,
            msg_bandwidth: 10.0e9,
            io_startup: 100.0e-6,
            io_aggregate_bandwidth: 2.0e9,
            io_write_startup: 10.0e-6,
            io_write_bandwidth: 10.0e9,
            nprocs,
            shared_disks: true,
        }
    }

    /// Seconds to execute `flops` floating point operations on one node.
    #[inline]
    pub fn compute_time(&self, flops: u64) -> f64 {
        flops as f64 * self.flop_time
    }

    /// Seconds for one point-to-point message of `bytes` payload.
    #[inline]
    pub fn message_time(&self, bytes: u64) -> f64 {
        self.msg_latency + bytes as f64 / self.msg_bandwidth
    }

    /// Effective disk bandwidth *seen by one processor*.
    #[inline]
    pub fn io_bandwidth_per_proc(&self) -> f64 {
        if self.shared_disks {
            self.io_aggregate_bandwidth / self.nprocs.max(1) as f64
        } else {
            self.io_aggregate_bandwidth
        }
    }

    /// Seconds for one processor to perform `requests` read requests moving
    /// `bytes` bytes in total.
    #[inline]
    pub fn io_time(&self, requests: u64, bytes: u64) -> f64 {
        requests as f64 * self.io_startup + bytes as f64 / self.io_bandwidth_per_proc()
    }

    /// Seconds for one processor to *write* `bytes` in `requests` requests.
    /// Writes go through the I/O nodes' buffers (write-behind), so the
    /// writer pays the hand-off, not the physical disk.
    #[inline]
    pub fn io_write_time(&self, requests: u64, bytes: u64) -> f64 {
        requests as f64 * self.io_write_startup + bytes as f64 / self.io_write_bandwidth
    }

    /// The same machine as seen by one job competing for the disk farm
    /// against `load`. The job's fair share of the farm is
    /// `weight / (weight + competitors * competitor_weight)`; read bandwidth
    /// scales down by that share and the per-request startup scales up by
    /// its inverse (a queued request waits, on average, for the competing
    /// jobs' share of service between its own turns). With no competitors
    /// the share is exactly 1 and the returned model is bit-identical to
    /// `self`, so an uncontended estimate never drifts from the legacy one.
    /// Write hand-off is buffered by the I/O nodes and stays uncontended.
    pub fn contended(&self, load: &BackgroundLoad) -> Self {
        let share = load.share();
        CostModel {
            io_aggregate_bandwidth: self.io_aggregate_bandwidth * share,
            io_startup: self.io_startup / share,
            ..self.clone()
        }
    }

    /// The same machine with its disk subsystem degraded by `factor`: read
    /// and write bandwidth are divided, request startup costs are unchanged
    /// (seeks do not get slower, transfers do). Planners use this to re-plan
    /// slab sizes after the fault layer marks a disk degraded mid-run.
    pub fn degrade_io(&self, factor: f64) -> Self {
        assert!(factor >= 1.0, "degradation factor must be >= 1");
        CostModel {
            io_aggregate_bandwidth: self.io_aggregate_bandwidth / factor,
            io_write_bandwidth: self.io_write_bandwidth / factor,
            ..self.clone()
        }
    }
}

/// Background load a job competes against on the shared disk farm: the
/// compile-time summary of a multi-job workload (`ooc-sched`), used by
/// [`CostModel::contended`] for contention-aware estimation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackgroundLoad {
    /// Number of competing jobs expected to share the farm.
    pub competitors: u32,
    /// This job's fair-share weight.
    pub weight: f64,
    /// Weight of each competing job.
    pub competitor_weight: f64,
}

impl BackgroundLoad {
    /// `competitors` equal-weight competing jobs.
    pub fn jobs(competitors: u32) -> Self {
        BackgroundLoad {
            competitors,
            weight: 1.0,
            competitor_weight: 1.0,
        }
    }

    /// The fraction of farm service this job can expect,
    /// `weight / (weight + competitors * competitor_weight)`, exactly 1.0
    /// when there are no competitors.
    pub fn share(&self) -> f64 {
        if self.competitors == 0 {
            return 1.0;
        }
        let w = self.weight.max(f64::MIN_POSITIVE);
        w / (w + self.competitors as f64 * self.competitor_weight.max(0.0))
    }
}

impl Default for BackgroundLoad {
    fn default() -> Self {
        BackgroundLoad::jobs(0)
    }
}

/// A pre-computed I/O cost: the two metrics of §4 plus the modeled time.
///
/// Produced both by the *compiler's estimator* (`ooc-core::cost`) and by the
/// *executor's measurement* (`noderun`), so tests can assert they agree.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct IoCost {
    /// Number of I/O requests issued per processor.
    pub requests: u64,
    /// Total bytes moved between disk and memory per processor.
    pub bytes: u64,
}

impl IoCost {
    /// The zero cost.
    pub const ZERO: IoCost = IoCost {
        requests: 0,
        bytes: 0,
    };

    /// Construct from element counts given an element size in bytes.
    pub fn from_elements(requests: u64, elements: u64, elem_size: usize) -> Self {
        IoCost {
            requests,
            bytes: elements * elem_size as u64,
        }
    }

    /// Sum of two costs.
    pub fn plus(self, other: IoCost) -> IoCost {
        IoCost {
            requests: self.requests + other.requests,
            bytes: self.bytes + other.bytes,
        }
    }

    /// Seconds under `model`.
    pub fn time(&self, model: &CostModel) -> f64 {
        model.io_time(self.requests, self.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_incore_matmul_matches_paper_scale() {
        // 1K x 1K matmul on 4 procs: 2*N^3/P flops at 4 MFLOP/s ~ 134 s.
        // The paper's in-core measurement is 140.91 s.
        let m = CostModel::delta(4);
        let n: u64 = 1024;
        let flops = 2 * n * n * n / 4;
        let t = m.compute_time(flops);
        assert!((120.0..160.0).contains(&t), "t = {t}");
    }

    #[test]
    fn shared_disks_divide_bandwidth() {
        let m = CostModel::delta(8);
        assert!((m.io_bandwidth_per_proc() - 5.5e6 / 8.0).abs() < 1e-9);
        let mut local = m.clone();
        local.shared_disks = false;
        assert_eq!(local.io_bandwidth_per_proc(), 5.5e6);
    }

    #[test]
    fn io_time_is_affine_in_requests() {
        let m = CostModel::delta(4);
        let base = m.io_time(0, 1_000_000);
        let with_reqs = m.io_time(100, 1_000_000);
        assert!((with_reqs - base - 100.0 * m.io_startup).abs() < 1e-9);
    }

    #[test]
    fn free_machine_costs_nothing() {
        let m = CostModel::free(16);
        assert_eq!(m.compute_time(1_000_000), 0.0);
        assert_eq!(m.message_time(1 << 20), 0.0);
        assert_eq!(m.io_time(10, 1 << 20), 0.0);
    }

    #[test]
    fn iocost_algebra() {
        let a = IoCost {
            requests: 3,
            bytes: 100,
        };
        let b = IoCost::from_elements(2, 25, 4);
        let c = a.plus(b);
        assert_eq!(c.requests, 5);
        assert_eq!(c.bytes, 200);
        assert_eq!(IoCost::ZERO.plus(a), a);
    }

    #[test]
    fn degraded_model_slows_transfers_not_seeks() {
        let m = CostModel::delta(4);
        let d = m.degrade_io(4.0);
        assert_eq!(d.io_aggregate_bandwidth, m.io_aggregate_bandwidth / 4.0);
        assert_eq!(d.io_write_bandwidth, m.io_write_bandwidth / 4.0);
        assert_eq!(d.io_startup, m.io_startup);
        assert!(d.io_time(10, 1 << 20) > m.io_time(10, 1 << 20));
        // Pure request cost is unchanged.
        assert_eq!(d.io_time(10, 0), m.io_time(10, 0));
    }

    #[test]
    fn uncontended_model_is_bit_identical() {
        let m = CostModel::delta(4);
        let c = m.contended(&BackgroundLoad::default());
        assert_eq!(c, m);
        assert_eq!(
            c.io_time(17, 123_456).to_bits(),
            m.io_time(17, 123_456).to_bits()
        );
    }

    #[test]
    fn contention_slows_reads_not_write_handoff() {
        let m = CostModel::delta(4);
        let c = m.contended(&BackgroundLoad::jobs(3));
        // Equal weights, 3 competitors: a quarter share.
        assert!((c.io_aggregate_bandwidth - m.io_aggregate_bandwidth / 4.0).abs() < 1e-9);
        assert!((c.io_startup - m.io_startup * 4.0).abs() < 1e-9);
        assert!(c.io_time(10, 1 << 20) > m.io_time(10, 1 << 20));
        assert_eq!(c.io_write_time(10, 1 << 20), m.io_write_time(10, 1 << 20));
    }

    #[test]
    fn background_share_respects_weights() {
        let heavy = BackgroundLoad {
            competitors: 2,
            weight: 4.0,
            competitor_weight: 1.0,
        };
        assert!((heavy.share() - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(BackgroundLoad::jobs(0).share(), 1.0);
        assert!((BackgroundLoad::jobs(1).share() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn message_time_has_latency_floor() {
        let m = CostModel::delta(4);
        assert!(m.message_time(0) >= 75.0e-6);
        assert!(m.message_time(1 << 20) > m.message_time(0));
    }
}
