//! Collective operations built from point-to-point messages.
//!
//! The paper's generated node programs use exactly one collective — the
//! global sum that combines partial GAXPY results (Figures 9 & 12) — plus
//! implicit barriers. We implement the standard binomial-tree algorithms of
//! the era, so collective *costs* emerge from the same latency/bandwidth
//! model as ordinary messages: a reduction of `m` bytes on `P` processors
//! costs `O(log P)` message times plus the combine flops.
//!
//! All collectives are methods on [`ProcCtx`] and must be called by every
//! rank (they are synchronizing).

use crate::comm::{Payload, ProtocolError, RecvError, Tag};
use crate::proc::{ProcCtx, Rank};

/// A communication step failed: either the peer is gone or the payloads
/// disagree with the protocol. Collective `try_*` methods return this so
/// executors can unwind cleanly instead of panicking the whole machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The receive itself failed (peer exited without sending).
    Recv(RecvError),
    /// A payload arrived with the wrong variant.
    Protocol(ProtocolError),
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Recv(e) => e.fmt(f),
            CommError::Protocol(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for CommError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CommError::Recv(e) => Some(e),
            CommError::Protocol(e) => Some(e),
        }
    }
}

impl From<RecvError> for CommError {
    fn from(e: RecvError) -> Self {
        CommError::Recv(e)
    }
}

impl From<ProtocolError> for CommError {
    fn from(e: ProtocolError) -> Self {
        CommError::Protocol(e)
    }
}

/// Reduction operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Element-wise sum (the paper's global sum intrinsic).
    Sum,
    /// Element-wise maximum.
    Max,
    /// Element-wise minimum.
    Min,
}

/// Element types that can travel through collectives.
pub trait CommElem: Copy + PartialOrd + std::ops::Add<Output = Self> {
    /// Wrap a vector of elements into a [`Payload`].
    fn wrap(v: Vec<Self>) -> Payload;
    /// Unwrap a payload into a vector of elements, surfacing a mismatch.
    fn try_unwrap(p: Payload) -> Result<Vec<Self>, ProtocolError>;
    /// Unwrap a payload; panics with a protocol error on mismatch.
    fn unwrap(p: Payload) -> Vec<Self> {
        Self::try_unwrap(p).unwrap_or_else(|e| panic!("{e}"))
    }
}

impl CommElem for f32 {
    fn wrap(v: Vec<Self>) -> Payload {
        Payload::F32(v)
    }
    fn try_unwrap(p: Payload) -> Result<Vec<Self>, ProtocolError> {
        p.try_into_f32()
    }
}

impl CommElem for f64 {
    fn wrap(v: Vec<Self>) -> Payload {
        Payload::F64(v)
    }
    fn try_unwrap(p: Payload) -> Result<Vec<Self>, ProtocolError> {
        p.try_into_f64()
    }
}

impl CommElem for u64 {
    fn wrap(v: Vec<Self>) -> Payload {
        Payload::U64(v)
    }
    fn try_unwrap(p: Payload) -> Result<Vec<Self>, ProtocolError> {
        p.try_into_u64()
    }
}

fn combine<T: CommElem>(acc: &mut [T], other: &[T], op: ReduceOp) {
    assert_eq!(
        acc.len(),
        other.len(),
        "collective called with mismatched lengths"
    );
    for (a, &b) in acc.iter_mut().zip(other) {
        *a = match op {
            ReduceOp::Sum => *a + b,
            ReduceOp::Max => {
                if b > *a {
                    b
                } else {
                    *a
                }
            }
            ReduceOp::Min => {
                if b < *a {
                    b
                } else {
                    *a
                }
            }
        };
    }
}

/// Parent of `rank` in the binomial tree rooted at 0: the rank with its
/// highest set bit cleared. Rank 0 has no parent.
fn parent(rank: Rank) -> Option<Rank> {
    if rank == 0 {
        None
    } else {
        let high = 1usize << (usize::BITS - 1 - rank.leading_zeros());
        Some(rank ^ high)
    }
}

/// Children of `rank` in the binomial tree rooted at 0, in increasing order.
fn children(rank: Rank, nprocs: usize) -> Vec<Rank> {
    let start_bit = if rank == 0 {
        1usize
    } else {
        let high = 1usize << (usize::BITS - 1 - rank.leading_zeros());
        high << 1
    };
    let mut kids = Vec::new();
    let mut bit = start_bit;
    while rank + bit < nprocs {
        kids.push(rank + bit);
        if bit > usize::MAX / 2 {
            break;
        }
        bit <<= 1;
    }
    kids
}

impl ProcCtx {
    fn comm_panic<T>(&self, r: Result<T, CommError>) -> T {
        r.unwrap_or_else(|e| panic!("rank {}: {e}", self.rank()))
    }

    /// Reduce `data` element-wise to rank `root` with operator `op`.
    /// Returns `Ok(Some(result))` on the root, `Ok(None)` elsewhere; a dead
    /// peer or protocol mismatch surfaces as [`CommError`].
    pub fn try_reduce<T: CommElem>(
        &self,
        data: &[T],
        op: ReduceOp,
        root: Rank,
    ) -> Result<Option<Vec<T>>, CommError> {
        assert!(root < self.nprocs(), "reduce root out of range");
        let _span = self.trace_span(ooc_trace::Category::Collective, "reduce");
        // Run the tree rooted at 0 in a rotated rank space so any root works.
        let p = self.nprocs();
        let vrank = (self.rank() + p - root) % p;
        let unrotate = |v: Rank| (v + root) % p;

        let mut acc = data.to_vec();
        // Receive from children (deepest subtree last for pipelining).
        for child in children(vrank, p) {
            let payload = self.recv(unrotate(child), Tag::COLLECTIVE)?;
            let theirs = T::try_unwrap(payload)?;
            combine(&mut acc, &theirs, op);
            self.charge_flops(acc.len() as u64);
        }
        match parent(vrank) {
            None => Ok(Some(acc)),
            Some(par) => {
                self.send(unrotate(par), Tag::COLLECTIVE, T::wrap(acc));
                Ok(None)
            }
        }
    }

    /// Reduce `data` element-wise to rank `root` with operator `op`.
    /// Returns `Some(result)` on the root, `None` elsewhere. Panics on a
    /// dead peer — use [`ProcCtx::try_reduce`] on recoverable paths.
    pub fn reduce<T: CommElem>(&self, data: &[T], op: ReduceOp, root: Rank) -> Option<Vec<T>> {
        let r = self.try_reduce(data, op, root);
        self.comm_panic(r)
    }

    /// Broadcast `data` from `root` to all ranks; every rank returns the
    /// root's vector (non-root input is ignored). Errors surface instead of
    /// panicking.
    pub fn try_broadcast<T: CommElem>(
        &self,
        data: Vec<T>,
        root: Rank,
    ) -> Result<Vec<T>, CommError> {
        assert!(root < self.nprocs(), "broadcast root out of range");
        let _span = self.trace_span(ooc_trace::Category::Collective, "broadcast");
        let p = self.nprocs();
        let vrank = (self.rank() + p - root) % p;
        let unrotate = |v: Rank| (v + root) % p;

        let buf = match parent(vrank) {
            None => data,
            Some(par) => T::try_unwrap(self.recv(unrotate(par), Tag::COLLECTIVE)?)?,
        };
        for child in children(vrank, p) {
            self.send(unrotate(child), Tag::COLLECTIVE, T::wrap(buf.clone()));
        }
        Ok(buf)
    }

    /// Broadcast `data` from `root` to all ranks; every rank returns the
    /// root's vector. Non-root ranks pass their (ignored) local buffer length
    /// via `data` being empty or anything — only the root's data matters.
    pub fn broadcast<T: CommElem>(&self, data: Vec<T>, root: Rank) -> Vec<T> {
        let r = self.try_broadcast(data, root);
        self.comm_panic(r)
    }

    /// All-reduce with surfaced errors: reduce to rank 0 then broadcast.
    pub fn try_allreduce<T: CommElem>(
        &self,
        data: &[T],
        op: ReduceOp,
    ) -> Result<Vec<T>, CommError> {
        let _span = self.trace_span(ooc_trace::Category::Collective, "allreduce");
        match self.try_reduce(data, op, 0)? {
            Some(total) => self.try_broadcast(total, 0),
            None => self.try_broadcast(Vec::new(), 0),
        }
    }

    /// All-reduce: reduce to rank 0 then broadcast; every rank returns the
    /// combined vector.
    pub fn allreduce<T: CommElem>(&self, data: &[T], op: ReduceOp) -> Vec<T> {
        let r = self.try_allreduce(data, op);
        self.comm_panic(r)
    }

    /// Global sum of `f32` data to `root` — the paper's reduction. Returns
    /// the sum on the root, `None` elsewhere.
    pub fn global_sum_f32(&self, data: &[f32], root: Rank) -> Option<Vec<f32>> {
        self.reduce(data, ReduceOp::Sum, root)
    }

    /// All-ranks global sum of `f64` data.
    pub fn allreduce_sum_f64(&self, data: &[f64]) -> Vec<f64> {
        self.allreduce(data, ReduceOp::Sum)
    }

    /// Barrier with surfaced errors: a zero-payload reduce + broadcast.
    pub fn try_barrier(&self) -> Result<(), CommError> {
        let _span = self.trace_span(ooc_trace::Category::Collective, "barrier");
        let token = [0u64; 0];
        self.try_allreduce(&token, ReduceOp::Sum).map(|_| ())
    }

    /// Barrier: a zero-payload reduce + broadcast. After it returns, every
    /// rank's clock is at least the maximum pre-barrier clock plus the tree
    /// traversal cost.
    pub fn barrier(&self) {
        let r = self.try_barrier();
        self.comm_panic(r)
    }

    /// Gather with surfaced errors; `Ok(Some(concatenation))` on the root.
    pub fn try_gather<T: CommElem>(
        &self,
        data: &[T],
        root: Rank,
    ) -> Result<Option<Vec<T>>, CommError> {
        let _span = self.trace_span(ooc_trace::Category::Collective, "gather");
        if self.rank() == root {
            let mut out = Vec::new();
            for r in 0..self.nprocs() {
                if r == root {
                    out.extend_from_slice(data);
                } else {
                    let theirs = T::try_unwrap(self.recv(r, Tag::COLLECTIVE)?)?;
                    out.extend(theirs);
                }
            }
            Ok(Some(out))
        } else {
            self.send(root, Tag::COLLECTIVE, T::wrap(data.to_vec()));
            Ok(None)
        }
    }

    /// Gather each rank's `data` to `root`, concatenated in rank order.
    /// Returns `Some(concatenation)` on the root, `None` elsewhere.
    ///
    /// Linear algorithm (each rank sends straight to the root), matching the
    /// era's NX `gcolx`.
    pub fn gather<T: CommElem>(&self, data: &[T], root: Rank) -> Option<Vec<T>> {
        let r = self.try_gather(data, root);
        self.comm_panic(r)
    }

    /// Scatter with surfaced errors; returns this rank's chunk.
    pub fn try_scatter<T: CommElem>(&self, data: Vec<T>, root: Rank) -> Result<Vec<T>, CommError> {
        let _span = self.trace_span(ooc_trace::Category::Collective, "scatter");
        if self.rank() == root {
            let p = self.nprocs();
            assert!(
                data.len().is_multiple_of(p),
                "scatter: length {} not divisible by {p}",
                data.len()
            );
            let chunk = data.len() / p;
            let mut mine = Vec::new();
            for r in 0..p {
                let piece = data[r * chunk..(r + 1) * chunk].to_vec();
                if r == root {
                    mine = piece;
                } else {
                    self.send(r, Tag::COLLECTIVE, T::wrap(piece));
                }
            }
            Ok(mine)
        } else {
            Ok(T::try_unwrap(self.recv(root, Tag::COLLECTIVE)?)?)
        }
    }

    /// Scatter equal-length chunks of `data` (present on `root`) to all
    /// ranks; returns this rank's chunk. `data.len()` must be divisible by
    /// the processor count on the root.
    pub fn scatter<T: CommElem>(&self, data: Vec<T>, root: Rank) -> Vec<T> {
        let r = self.try_scatter(data, root);
        self.comm_panic(r)
    }

    /// Variable all-to-all with surfaced errors: rank `i` delivers
    /// `sends[j]` to rank `j` and returns the vector of received buffers
    /// indexed by source rank (`out[i]` is this rank's own `sends[rank]`,
    /// moved, not copied through the fabric).
    ///
    /// `sends.len()` must equal the processor count on every rank. The
    /// pairwise algorithm is deterministic: every rank first posts its sends
    /// in increasing peer order (sends never block), then receives in
    /// increasing peer order. Empty buffers are still exchanged so the
    /// operation synchronizes all ranks like the era's `crystal_router`.
    pub fn try_alltoallv<T: CommElem>(
        &self,
        mut sends: Vec<Vec<T>>,
    ) -> Result<Vec<Vec<T>>, CommError> {
        let p = self.nprocs();
        assert_eq!(sends.len(), p, "alltoallv needs one send buffer per rank");
        let _span = self.trace_span(ooc_trace::Category::Collective, "alltoallv");
        let me = self.rank();
        let mut mine = Some(std::mem::take(&mut sends[me]));
        for (peer, buf) in sends.into_iter().enumerate() {
            if peer != me {
                self.send(peer, Tag::COLLECTIVE, T::wrap(buf));
            }
        }
        let mut out = Vec::with_capacity(p);
        for peer in 0..p {
            if peer == me {
                out.push(mine.take().expect("own buffer taken once"));
            } else {
                out.push(T::try_unwrap(self.recv(peer, Tag::COLLECTIVE)?)?);
            }
        }
        Ok(out)
    }

    /// Variable all-to-all; panics on a dead peer or protocol mismatch —
    /// use [`ProcCtx::try_alltoallv`] on recoverable paths.
    pub fn alltoallv<T: CommElem>(&self, sends: Vec<Vec<T>>) -> Vec<Vec<T>> {
        let r = self.try_alltoallv(sends);
        self.comm_panic(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_parent_child_are_inverse() {
        for p in 1..40usize {
            for r in 1..p {
                let par = parent(r).unwrap();
                assert!(par < r, "parent({r}) = {par} not smaller");
                assert!(
                    children(par, p).contains(&r),
                    "rank {r} missing from children of {par} (p={p})"
                );
            }
            // Every rank is reachable exactly once: count tree edges.
            let edges: usize = (0..p).map(|r| children(r, p).len()).sum();
            assert_eq!(edges, p - 1, "p={p}");
        }
    }

    #[test]
    fn rank_zero_has_no_parent() {
        assert_eq!(parent(0), None);
        assert_eq!(parent(1), Some(0));
        assert_eq!(parent(6), Some(2));
        assert_eq!(parent(7), Some(3));
    }

    #[test]
    fn combine_ops() {
        let mut acc = vec![1.0f64, 5.0, 3.0];
        combine(&mut acc, &[2.0, 2.0, 2.0], ReduceOp::Sum);
        assert_eq!(acc, vec![3.0, 7.0, 5.0]);
        combine(&mut acc, &[10.0, 0.0, 5.0], ReduceOp::Max);
        assert_eq!(acc, vec![10.0, 7.0, 5.0]);
        combine(&mut acc, &[1.0, 100.0, 2.0], ReduceOp::Min);
        assert_eq!(acc, vec![1.0, 7.0, 2.0]);
    }
}
