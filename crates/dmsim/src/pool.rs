//! Fixed worker pool scheduling rank coroutines.
//!
//! The pooled engine ([`crate::machine::Engine::Pool`]) turns every
//! simulated rank into a [`crate::coro::Coro`] and multiplexes them onto a
//! small, fixed set of OS threads. A rank runs until it blocks at a
//! clock-advance point — an empty mailbox, a collective step, a disk wait —
//! then yields its continuation back here. The scheduler always dispatches
//! the runnable task with the **lowest `(virtual time, run, rank)` key**.
//!
//! That key is a locality heuristic, not the correctness mechanism: every
//! per-rank result (clock, stats, trace, fault stream) is a pure function
//! of the rank's own event sequence, and messages carry their arrival
//! timestamps, so *any* dataflow-respecting schedule produces bitwise-
//! identical reports (the threaded engine already relies on this — see
//! `simulated_time_is_deterministic`). Dispatching lowest-virtual-time
//! first simply keeps the working set small and makes progress resemble
//! the simulated timeline.
//!
//! Park/wake protocol: a receiver registers itself in its mailbox *under
//! the mailbox lock*, then yields. The window between releasing the
//! mailbox lock and the worker finishing the context switch is covered by
//! `wake_pending`: a wake that arrives while the task is still formally
//! `Running` marks the slot, and the worker re-queues instead of parking
//! when it processes the yield.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::coro::{Coro, CoroStatus, YieldReason, Yielder};

/// Scheduling key: `(virtual-time bits, run sequence, rank, task id)`.
/// Virtual time is an `f64` ordered by `to_bits()`, which is monotone for
/// the non-negative finite values simulated clocks take.
type Key = (u64, u64, usize, usize);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskState {
    /// Submitted but not yet launched; never dispatched or woken.
    Staged,
    /// In the runnable heap.
    Queued,
    /// A worker is executing it right now.
    Running,
    /// Blocked waiting for a wake (message arrival or peer exit).
    Parked,
}

struct Slot {
    /// Present except while a worker is resuming it.
    coro: Option<Coro>,
    state: TaskState,
    /// A wake arrived while the task was `Running` (it was mid-yield).
    wake_pending: bool,
    vtime_bits: u64,
    run_seq: u64,
    rank: usize,
    run: Arc<RunCore>,
}

struct Sched {
    slots: Vec<Option<Slot>>,
    free: Vec<usize>,
    runnable: BinaryHeap<Reverse<Key>>,
    running: usize,
    /// Launched, unfinished tasks.
    live: usize,
    /// Submitted but not yet launched tasks (excluded from deadlock checks).
    staged: usize,
    shutdown: bool,
}

impl Sched {
    fn push_runnable(&mut self, tid: usize) {
        let slot = self.slots[tid].as_mut().expect("live slot");
        slot.state = TaskState::Queued;
        let key = (slot.vtime_bits, slot.run_seq, slot.rank, tid);
        self.runnable.push(Reverse(key));
    }
}

/// State shared by the workers, the submitting threads, and the wake paths
/// in the message fabric.
pub(crate) struct PoolShared {
    sched: Mutex<Sched>,
    work: Condvar,
    next_run_seq: AtomicU64,
    workers: usize,
}

impl PoolShared {
    /// Make a parked task runnable. Wakes on `Running` tasks are deferred
    /// via `wake_pending`; wakes on `Queued`/`Staged`/dead tasks are no-ops
    /// (receivers always re-check their mailbox after resuming, so spurious
    /// wakes are harmless).
    pub(crate) fn wake(&self, tid: usize) {
        let mut s = self.sched.lock().unwrap();
        let Some(slot) = s.slots.get_mut(tid).and_then(Option::as_mut) else {
            return;
        };
        match slot.state {
            TaskState::Parked => {
                s.push_runnable(tid);
                drop(s);
                self.work.notify_one();
            }
            TaskState::Running => slot.wake_pending = true,
            TaskState::Queued | TaskState::Staged => {}
        }
    }

    /// Whether any queued task has a strictly lower key than `(vtime_bits,
    /// run of tid, rank of tid)` — the cheap test behind cooperative yields.
    fn someone_is_behind(&self, tid: usize, vtime_bits: u64) -> bool {
        let s = self.sched.lock().unwrap();
        let Some(slot) = s.slots.get(tid).and_then(Option::as_ref) else {
            return false;
        };
        match s.runnable.peek() {
            Some(Reverse(k)) => *k < (vtime_bits, slot.run_seq, slot.rank, tid),
            None => false,
        }
    }
}

/// Identity a rank task receives when it starts executing; combined with
/// the coroutine's [`Yielder`] it becomes the [`CoroHook`] the blocking
/// paths use.
pub(crate) struct TaskToken {
    pub(crate) tid: usize,
    pub(crate) shared: Arc<PoolShared>,
}

/// The handle a *running* rank coroutine uses to suspend itself. Lives in
/// the rank's `ProcCtx`; the raw yielder pointer is valid for the
/// coroutine's whole lifetime because it points into `coro_main`'s frame
/// on the coroutine's own stack.
pub(crate) struct CoroHook {
    yielder: *const Yielder,
    tid: usize,
    shared: Arc<PoolShared>,
    /// Current virtual time (as bits), refreshed by `ProcCtx` immediately
    /// before every potential suspension so the scheduler re-keys the task
    /// at the clock it blocked at.
    vtime_bits: std::cell::Cell<u64>,
}

impl CoroHook {
    pub(crate) fn new(yielder: &Yielder, token: TaskToken) -> CoroHook {
        CoroHook {
            yielder,
            tid: token.tid,
            shared: token.shared,
            vtime_bits: std::cell::Cell::new(0),
        }
    }

    pub(crate) fn tid(&self) -> usize {
        self.tid
    }

    pub(crate) fn set_vtime_bits(&self, bits: u64) {
        self.vtime_bits.set(bits);
    }

    /// Park until a wake: the caller must already have registered itself
    /// wherever the wake will come from (its mailbox).
    pub(crate) fn park(&self) {
        // SAFETY: the yielder lives on this coroutine's stack and we *are*
        // this coroutine (park is only called from rank code).
        unsafe { (*self.yielder).yield_blocked(self.vtime_bits.get()) };
    }

    /// Cooperative yield at a clock-advance point: switch out only if some
    /// runnable task is behind this one in virtual time, otherwise return
    /// immediately (the scheduler would re-dispatch us anyway).
    pub(crate) fn coop_yield(&self) {
        let bits = self.vtime_bits.get();
        if self.shared.someone_is_behind(self.tid, bits) {
            // SAFETY: as in `park`.
            unsafe { (*self.yielder).yield_coop(bits) };
        }
    }
}

/// Per-run completion state: how `Machine::run_on` blocks until its ranks
/// are done, and where rank panics / deadlock kills are recorded.
pub(crate) struct RunCore {
    remaining: Mutex<usize>,
    done: Condvar,
    /// Lowest-rank panic payload, matching the threaded engine's
    /// join-in-rank-order propagation.
    panic: Mutex<Option<(usize, Box<dyn std::any::Any + Send>)>>,
    failed: AtomicBool,
    deadlocked: Mutex<Vec<usize>>,
    /// Set by [`WorkerPool::kill_run`]: the run is being torn down and no
    /// task of it may be dispatched again. Workers reap killed tasks at
    /// their next dispatch or yield instead of running them.
    killed: AtomicBool,
    killed_ranks: Mutex<Vec<usize>>,
    seq: u64,
}

impl RunCore {
    pub(crate) fn record_panic(&self, rank: usize, payload: Box<dyn std::any::Any + Send>) {
        let mut p = self.panic.lock().unwrap();
        match &*p {
            Some((r, _)) if *r <= rank => {}
            _ => *p = Some((rank, payload)),
        }
    }

    pub(crate) fn take_panic(&self) -> Option<(usize, Box<dyn std::any::Any + Send>)> {
        self.panic.lock().unwrap().take()
    }

    pub(crate) fn failed(&self) -> bool {
        self.failed.load(Ordering::Acquire)
    }

    pub(crate) fn deadlocked_ranks(&self) -> Vec<usize> {
        self.deadlocked.lock().unwrap().clone()
    }

    pub(crate) fn was_killed(&self) -> bool {
        self.killed.load(Ordering::Acquire)
    }

    pub(crate) fn killed_ranks(&self) -> Vec<usize> {
        self.killed_ranks.lock().unwrap().clone()
    }

    fn task_done(&self, finished: usize) {
        let mut rem = self.remaining.lock().unwrap();
        *rem = rem.saturating_sub(finished);
        if *rem == 0 {
            self.done.notify_all();
        }
    }

    /// Block until every task of the run has finished (or been killed).
    pub(crate) fn wait(&self) {
        let mut rem = self.remaining.lock().unwrap();
        while *rem > 0 {
            rem = self.done.wait(rem).unwrap();
        }
    }

    pub(crate) fn is_done(&self) -> bool {
        *self.remaining.lock().unwrap() == 0
    }

    #[cfg(test)]
    fn remaining_for_test(&self) -> usize {
        *self.remaining.lock().unwrap()
    }
}

/// A rank body as submitted to the pool: runs on a fresh coroutine, with
/// the task identity delivered once the coroutine starts.
pub(crate) type RankBody = Box<dyn FnOnce(&Yielder, TaskToken) + Send + 'static>;

/// A fixed set of worker threads executing rank coroutines.
///
/// Cloning is cheap (shared handle); the workers shut down when the last
/// handle drops, after finishing all launched work.
#[derive(Clone)]
pub struct WorkerPool {
    inner: Arc<PoolInner>,
}

struct PoolInner {
    shared: Arc<PoolShared>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.inner.shared.workers)
            .finish()
    }
}

impl WorkerPool {
    /// A pool with `workers` threads; `0` picks the host's available
    /// parallelism.
    pub fn new(workers: usize) -> WorkerPool {
        let workers = if workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            workers
        };
        let shared = Arc::new(PoolShared {
            sched: Mutex::new(Sched {
                slots: Vec::new(),
                free: Vec::new(),
                runnable: BinaryHeap::new(),
                running: 0,
                live: 0,
                staged: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            next_run_seq: AtomicU64::new(0),
            workers,
        });
        let threads = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("dmsim-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            inner: Arc::new(PoolInner {
                shared,
                threads: Mutex::new(threads),
            }),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.inner.shared.workers
    }

    pub(crate) fn shared_arc(&self) -> Arc<PoolShared> {
        self.inner.shared.clone()
    }

    /// Allocate completion state for a run of `ntasks` ranks.
    pub(crate) fn new_run(&self, ntasks: usize) -> Arc<RunCore> {
        Arc::new(RunCore {
            remaining: Mutex::new(ntasks),
            done: Condvar::new(),
            panic: Mutex::new(None),
            failed: AtomicBool::new(false),
            deadlocked: Mutex::new(Vec::new()),
            killed: AtomicBool::new(false),
            killed_ranks: Mutex::new(Vec::new()),
            seq: self
                .inner
                .shared
                .next_run_seq
                .fetch_add(1, Ordering::Relaxed),
        })
    }

    /// Stage one coroutine per body (rank = index). Staged tasks hold slots
    /// but are invisible to dispatch until [`WorkerPool::launch`].
    pub(crate) fn submit(&self, run: &Arc<RunCore>, bodies: Vec<RankBody>) -> Vec<usize> {
        let shared = &self.inner.shared;
        let mut s = shared.sched.lock().unwrap();
        let mut tids = Vec::with_capacity(bodies.len());
        for (rank, body) in bodies.into_iter().enumerate() {
            let tid = s.free.pop().unwrap_or_else(|| {
                s.slots.push(None);
                s.slots.len() - 1
            });
            let token_shared = shared.clone();
            let coro = Coro::new(Box::new(move |y: &Yielder| {
                body(
                    y,
                    TaskToken {
                        tid,
                        shared: token_shared,
                    },
                )
            }));
            s.slots[tid] = Some(Slot {
                coro: Some(coro),
                state: TaskState::Staged,
                wake_pending: false,
                vtime_bits: 0,
                run_seq: run.seq,
                rank,
                run: run.clone(),
            });
            s.staged += 1;
            tids.push(tid);
        }
        tids
    }

    /// Tear down every unfinished task of `run` without poisoning the pool
    /// or touching other runs.
    ///
    /// Parked and staged tasks are reaped immediately (suspended coroutine
    /// stacks are freed with their frames leaked, exactly like deadlock
    /// kills). Queued tasks cannot be removed here — the runnable heap
    /// holds their entries and tids are reused after free, so yanking the
    /// slot would let a stale heap entry dispatch a stranger — and running
    /// tasks are mid-execution on a worker; both are reaped by workers at
    /// their next dispatch or yield. Returns once the kill is initiated;
    /// `run.wait()` blocks until every task is accounted for.
    pub(crate) fn kill_run(&self, run: &Arc<RunCore>) {
        let shared = &self.inner.shared;
        run.killed.store(true, Ordering::Release);
        let mut s = shared.sched.lock().unwrap();
        let mut reaped = 0usize;
        for tid in 0..s.slots.len() {
            let belongs = s.slots[tid]
                .as_ref()
                .is_some_and(|sl| Arc::ptr_eq(&sl.run, run));
            if !belongs {
                continue;
            }
            let state = s.slots[tid].as_ref().map(|sl| sl.state);
            match state {
                Some(TaskState::Parked) => {
                    let slot = s.slots[tid].take().expect("checked live");
                    s.free.push(tid);
                    s.live -= 1;
                    run.killed_ranks.lock().unwrap().push(slot.rank);
                    reaped += 1;
                    // `slot.coro` (suspended) drops here: stack freed,
                    // frames leaked.
                }
                Some(TaskState::Staged) => {
                    let slot = s.slots[tid].take().expect("checked live");
                    s.free.push(tid);
                    s.staged -= 1;
                    run.killed_ranks.lock().unwrap().push(slot.rank);
                    reaped += 1;
                }
                Some(TaskState::Queued | TaskState::Running) | None => {}
            }
        }
        drop(s);
        if reaped > 0 {
            run.task_done(reaped);
        }
        // Workers may be asleep while the heap holds killed entries to reap.
        shared.work.notify_all();
    }

    /// Make previously staged tasks runnable, seeded at virtual time zero
    /// in rank order.
    pub(crate) fn launch(&self, tids: &[usize]) {
        let shared = &self.inner.shared;
        {
            let mut s = shared.sched.lock().unwrap();
            for &tid in tids {
                debug_assert_eq!(
                    s.slots[tid].as_ref().map(|sl| sl.state),
                    Some(TaskState::Staged)
                );
                s.staged -= 1;
                s.live += 1;
                s.push_runnable(tid);
            }
        }
        shared.work.notify_all();
    }
}

impl Drop for PoolInner {
    fn drop(&mut self) {
        {
            let mut s = self.shared.sched.lock().unwrap();
            s.shutdown = true;
        }
        self.shared.work.notify_all();
        for t in self.threads.lock().unwrap().drain(..) {
            let _ = t.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    let mut s = shared.sched.lock().unwrap();
    loop {
        if let Some(Reverse((_, _, _, tid))) = s.runnable.pop() {
            let slot = s.slots[tid].as_mut().expect("queued slot is live");
            if slot.run.was_killed() {
                let slot = s.slots[tid].take().expect("checked live");
                s.free.push(tid);
                s.live -= 1;
                let run = slot.run.clone();
                run.killed_ranks.lock().unwrap().push(slot.rank);
                drop(s);
                // `slot.coro` drops here: if it already started, its
                // suspended stack is freed with frames leaked.
                drop(slot);
                run.task_done(1);
                s = shared.sched.lock().unwrap();
                continue;
            }
            slot.state = TaskState::Running;
            slot.wake_pending = false;
            let mut coro = slot.coro.take().expect("queued slot holds its coroutine");
            s.running += 1;
            drop(s);

            let status = coro.resume();

            s = shared.sched.lock().unwrap();
            s.running -= 1;
            match status {
                CoroStatus::Finished => {
                    let slot = s.slots[tid].take().expect("finished slot is live");
                    s.free.push(tid);
                    s.live -= 1;
                    drop(s);
                    drop(coro);
                    slot.run.task_done(1);
                    s = shared.sched.lock().unwrap();
                }
                CoroStatus::Yielded(reason, vtime_bits) => {
                    let slot = s.slots[tid].as_mut().expect("yielded slot is live");
                    if slot.run.was_killed() {
                        let slot = s.slots[tid].take().expect("checked live");
                        s.free.push(tid);
                        s.live -= 1;
                        let run = slot.run.clone();
                        run.killed_ranks.lock().unwrap().push(slot.rank);
                        drop(s);
                        // The coroutine just yielded into our hands; drop
                        // frees its stack, leaking suspended frames.
                        drop(coro);
                        drop(slot);
                        run.task_done(1);
                        s = shared.sched.lock().unwrap();
                        continue;
                    }
                    slot.vtime_bits = vtime_bits;
                    slot.coro = Some(coro);
                    let requeue = match reason {
                        YieldReason::Coop => true,
                        YieldReason::Blocked => slot.wake_pending,
                    };
                    slot.wake_pending = false;
                    if requeue {
                        s.push_runnable(tid);
                        // Another worker may be asleep from when the heap
                        // was empty; this worker might dispatch a different
                        // task next, so surface the new entry.
                        shared.work.notify_one();
                    } else {
                        slot.state = TaskState::Parked;
                    }
                }
            }
        } else if s.running == 0 && s.staged == 0 && s.live > 0 {
            s = kill_deadlocked(shared, s);
        } else if s.shutdown && s.live == 0 && s.staged == 0 {
            return;
        } else {
            s = shared.work.wait(s).unwrap();
        }
    }
}

/// Every live task is parked and nothing can ever wake one (all wakes come
/// from peer tasks within a run): the simulated programs deadlocked. Kill
/// the parked tasks — their suspended coroutine stacks are leaked, since
/// running destructors on a foreign suspended stack is not possible — mark
/// their runs failed and release the runs' waiters, which turn this into a
/// diagnostic panic on the submitting thread.
fn kill_deadlocked<'a>(
    shared: &'a PoolShared,
    mut s: std::sync::MutexGuard<'a, Sched>,
) -> std::sync::MutexGuard<'a, Sched> {
    let mut victims: Vec<(Arc<RunCore>, usize)> = Vec::new();
    for tid in 0..s.slots.len() {
        let parked = matches!(
            s.slots[tid].as_ref().map(|sl| sl.state),
            Some(TaskState::Parked)
        );
        if !parked {
            continue;
        }
        let slot = s.slots[tid].take().expect("checked live");
        s.free.push(tid);
        s.live -= 1;
        slot.run.failed.store(true, Ordering::Release);
        slot.run.deadlocked.lock().unwrap().push(slot.rank);
        // `slot.coro` (suspended) drops here: stack freed, frames leaked.
        victims.push((slot.run.clone(), 1));
    }
    drop(s);
    for (run, n) in victims {
        run.task_done(n);
    }
    shared.sched.lock().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn run_bodies(pool: &WorkerPool, bodies: Vec<RankBody>) -> Arc<RunCore> {
        let run = pool.new_run(bodies.len());
        let tids = pool.submit(&run, bodies);
        pool.launch(&tids);
        run
    }

    #[test]
    fn tasks_run_to_completion_on_few_workers() {
        let pool = WorkerPool::new(2);
        let count = Arc::new(AtomicUsize::new(0));
        let bodies: Vec<RankBody> = (0..32)
            .map(|_| {
                let count = count.clone();
                Box::new(move |y: &Yielder, token: TaskToken| {
                    let hook = CoroHook::new(y, token);
                    hook.set_vtime_bits(1);
                    hook.coop_yield();
                    count.fetch_add(1, Ordering::SeqCst);
                }) as RankBody
            })
            .collect();
        let run = run_bodies(&pool, bodies);
        run.wait();
        assert_eq!(count.load(Ordering::SeqCst), 32);
        assert!(!run.failed());
    }

    #[test]
    fn park_and_wake_round_trip() {
        let pool = WorkerPool::new(1);
        // Task 0 parks; task 1 wakes it by tid. The tid handoff goes
        // through a shared cell the way the fabric's mailboxes do it.
        let parked_tid = Arc::new(Mutex::new(None::<usize>));
        let order = Arc::new(Mutex::new(Vec::new()));
        let (pt0, ord0) = (parked_tid.clone(), order.clone());
        let (pt1, ord1) = (parked_tid.clone(), order.clone());
        let bodies: Vec<RankBody> = vec![
            Box::new(move |y, token| {
                let hook = CoroHook::new(y, token);
                *pt0.lock().unwrap() = Some(hook.tid());
                hook.park();
                ord0.lock().unwrap().push("woken");
            }),
            Box::new(move |y, token| {
                let hook = CoroHook::new(y, token);
                ord1.lock().unwrap().push("waker");
                let tid = pt1.lock().unwrap().take().expect("task 0 ran first");
                hook.shared.wake(tid);
            }),
        ];
        let run = run_bodies(&pool, bodies);
        run.wait();
        assert_eq!(*order.lock().unwrap(), vec!["waker", "woken"]);
    }

    #[test]
    fn deadlock_is_detected_and_run_fails() {
        let pool = WorkerPool::new(2);
        let bodies: Vec<RankBody> = (0..3)
            .map(|_| {
                Box::new(move |y: &Yielder, token: TaskToken| {
                    // Park with no one to wake us: a simulated deadlock.
                    CoroHook::new(y, token).park();
                }) as RankBody
            })
            .collect();
        let run = run_bodies(&pool, bodies);
        run.wait();
        assert!(run.failed());
        let mut ranks = run.deadlocked_ranks();
        ranks.sort_unstable();
        assert_eq!(ranks, vec![0, 1, 2]);
        // The pool survives and runs new work.
        let ok = Arc::new(AtomicUsize::new(0));
        let ok2 = ok.clone();
        let run2 = run_bodies(
            &pool,
            vec![Box::new(move |_y: &Yielder, _t: TaskToken| {
                ok2.fetch_add(1, Ordering::SeqCst);
            }) as RankBody],
        );
        run2.wait();
        assert_eq!(ok.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn kill_run_reaps_parked_tasks_without_poisoning_pool() {
        let pool = WorkerPool::new(2);
        // A separate spinner run keeps one worker busy so the deadlock
        // detector (which requires `running == 0`) never fires while the
        // victims sit parked.
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let spinner: Vec<RankBody> = vec![Box::new(move |_y: &Yielder, _t: TaskToken| {
            while !stop2.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
        })];
        let run_spin = pool.new_run(spinner.len());
        let tids_spin = pool.submit(&run_spin, spinner);
        pool.launch(&tids_spin);

        // Three ranks park forever.
        let bodies: Vec<RankBody> = (0..3)
            .map(|_| {
                Box::new(move |y: &Yielder, token: TaskToken| {
                    CoroHook::new(y, token).park();
                }) as RankBody
            })
            .collect();
        let run = pool.new_run(bodies.len());
        let tids = pool.submit(&run, bodies);
        pool.launch(&tids);
        // Wait until all three actually parked.
        loop {
            let s = pool.inner.shared.sched.lock().unwrap();
            let parked = s
                .slots
                .iter()
                .flatten()
                .filter(|sl| sl.state == TaskState::Parked)
                .count();
            drop(s);
            if parked == 3 {
                break;
            }
            std::thread::yield_now();
        }
        pool.kill_run(&run);
        run.wait();
        stop.store(true, Ordering::SeqCst);
        run_spin.wait();
        assert_eq!(run.remaining_for_test(), 0);
        assert!(run.was_killed());
        let mut ranks = run.killed_ranks();
        ranks.sort_unstable();
        assert_eq!(ranks, vec![0, 1, 2]);
        assert!(!run.failed(), "kill is not a deadlock failure");
        // The pool still runs fresh work afterwards.
        let ok = Arc::new(AtomicUsize::new(0));
        let ok2 = ok.clone();
        let run2 = run_bodies(
            &pool,
            vec![Box::new(move |_y: &Yielder, _t: TaskToken| {
                ok2.fetch_add(1, Ordering::SeqCst);
            }) as RankBody],
        );
        run2.wait();
        assert_eq!(ok.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn kill_run_leaves_other_runs_untouched() {
        let pool = WorkerPool::new(2);
        // Run A parks forever; run B parks, then is woken and finishes.
        let victim: Vec<RankBody> = vec![Box::new(|y: &Yielder, token: TaskToken| {
            CoroHook::new(y, token).park();
        })];
        let run_a = pool.new_run(victim.len());
        let tids_a = pool.submit(&run_a, victim);
        pool.launch(&tids_a);

        let parked_tid = Arc::new(Mutex::new(None::<usize>));
        let woken = Arc::new(AtomicUsize::new(0));
        let (pt0, w0) = (parked_tid.clone(), woken.clone());
        let pt1 = parked_tid.clone();
        let survivor: Vec<RankBody> = vec![
            Box::new(move |y, token| {
                let hook = CoroHook::new(y, token);
                *pt0.lock().unwrap() = Some(hook.tid());
                hook.park();
                w0.fetch_add(1, Ordering::SeqCst);
            }),
            Box::new(move |y, token| {
                let hook = CoroHook::new(y, token);
                loop {
                    if let Some(tid) = pt1.lock().unwrap().take() {
                        hook.shared.wake(tid);
                        break;
                    }
                    hook.set_vtime_bits(1);
                    hook.coop_yield();
                }
            }),
        ];
        let run_b = pool.new_run(survivor.len());
        let tids_b = pool.submit(&run_b, survivor);
        pool.kill_run(&run_a);
        pool.launch(&tids_b);
        run_a.wait();
        run_b.wait();
        assert!(run_a.was_killed());
        assert!(!run_b.was_killed());
        assert_eq!(woken.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn kill_run_reaps_staged_tasks() {
        let pool = WorkerPool::new(1);
        let ran = Arc::new(AtomicUsize::new(0));
        let ran2 = ran.clone();
        let bodies: Vec<RankBody> = vec![Box::new(move |_y: &Yielder, _t: TaskToken| {
            ran2.fetch_add(1, Ordering::SeqCst);
        })];
        let run = pool.new_run(bodies.len());
        let _tids = pool.submit(&run, bodies);
        // Killed before launch: the staged task must be reaped, never run.
        pool.kill_run(&run);
        run.wait();
        assert_eq!(ran.load(Ordering::SeqCst), 0);
        assert_eq!(run.killed_ranks(), vec![0]);
    }

    #[test]
    fn lowest_vtime_runs_first_on_one_worker() {
        let pool = WorkerPool::new(1);
        let order = Arc::new(Mutex::new(Vec::new()));
        // Rank bodies that coop-yield once at distinct vtimes; with one
        // worker the resumption order must follow the (vtime, rank) key.
        let bodies: Vec<RankBody> = [30u64, 10, 20]
            .iter()
            .enumerate()
            .map(|(rank, &vt)| {
                let order = order.clone();
                Box::new(move |y: &Yielder, token: TaskToken| {
                    let hook = CoroHook::new(y, token);
                    hook.set_vtime_bits(vt);
                    // Force the yield even if nothing is behind us.
                    unsafe { (*hook.yielder).yield_coop(vt) };
                    order.lock().unwrap().push(rank);
                }) as RankBody
            })
            .collect();
        let run = run_bodies(&pool, bodies);
        run.wait();
        assert_eq!(*order.lock().unwrap(), vec![1, 2, 0]);
    }
}
