//! # dmsim — a deterministic distributed-memory machine simulator
//!
//! This crate is the hardware substrate for the out-of-core HPF compilation
//! system. It models the architecture of §2.2 of Bordawekar, Choudhary &
//! Thakur (1994): a distributed-memory machine whose compute processors are
//! connected by a network and served by an I/O subsystem of shared or local
//! disks.
//!
//! The simulator executes **real SPMD programs on real data**: every virtual
//! processor runs the supplied closure — as its own OS thread under
//! [`Engine::Threads`], or as a coroutine multiplexed onto a fixed
//! [`WorkerPool`] under [`Engine::Pool`], which scales to thousands of ranks
//! — and messages carry actual payloads. What is *simulated* is time. Each
//! processor owns a virtual clock, and every operation — floating-point
//! work, message transfers, disk requests — advances that clock according to
//! a [`CostModel`] calibrated to the Intel Touchstone Delta, the machine
//! used in the paper. Because collectives are built from deterministic
//! tree-structured point-to-point messages, the simulated time of a run is a
//! pure function of the program, independent of OS scheduling *and of the
//! execution engine*: both engines produce bitwise-identical reports.
//!
//! ## Quick tour
//!
//! ```
//! use dmsim::{Machine, MachineConfig};
//!
//! let machine = Machine::new(MachineConfig::delta(4));
//! let report = machine.run(|ctx| {
//!     // Every rank contributes its rank id; the allreduce sums them.
//!     let mine = vec![ctx.rank() as f64];
//!     let total = ctx.allreduce_sum_f64(&mine);
//!     assert_eq!(total[0], 0.0 + 1.0 + 2.0 + 3.0);
//!     ctx.charge_flops(1_000);
//! });
//! assert_eq!(report.nprocs(), 4);
//! assert!(report.elapsed() > 0.0);
//! ```

pub mod collectives;
pub mod comm;
mod coro;
pub mod costmodel;
pub mod fault;
pub mod machine;
mod pool;
pub mod proc;
pub mod stats;
pub mod time;

pub use collectives::{CommElem, CommError, ReduceOp};
pub use comm::{Payload, ProtocolError, RecvError, Tag};
pub use costmodel::{BackgroundLoad, CostModel, IoCost};
pub use fault::{
    FaultCharges, FaultConfig, FaultDomain, FaultInjector, FaultStream, IoFate, RetryPolicy,
};
pub use machine::{Engine, Machine, MachineConfig, RunDeath, RunHandle};
pub use ooc_trace::{Trace, TraceConfig};
pub use pool::WorkerPool;
pub use proc::{ProcCtx, Rank, RunReport, TraceSpanGuard};
pub use stats::{ProcStats, StatsSnapshot};
pub use time::SimTime;
