//! Point-to-point message fabric.
//!
//! Every ordered pair of processors gets a dedicated unbounded channel, so a
//! receive from a *specific* source is race-free and deterministic. Message
//! payloads are real data (the simulator computes real results); each message
//! also carries its simulated departure time so the receiver can synchronize
//! its virtual clock.
//!
//! Timing semantics: a send advances the sender's clock by the full message
//! transfer time (latency + bytes/bandwidth) — a conservative store-and-
//! forward model that matches the blocking `csend`/`crecv` style of the
//! paper's era. The message arrives at the sender's post-send clock; a
//! receive moves the receiver's clock to `max(own clock, arrival)`.

use std::collections::VecDeque;

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::time::SimTime;

/// Message tag for matching sends with receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tag(pub u32);

impl Tag {
    /// Tag used by the collective algorithms; user code should avoid it.
    pub const COLLECTIVE: Tag = Tag(u32::MAX);
}

/// A typed message payload.
///
/// The simulator moves real data; a small closed set of element types covers
/// everything the out-of-core runtime needs (raw bytes for file blocks,
/// floats for reductions, integers for control information).
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Raw bytes (array sections in storage form).
    Bytes(Vec<u8>),
    /// 32-bit floats (the paper's `real` arrays).
    F32(Vec<f32>),
    /// 64-bit floats.
    F64(Vec<f64>),
    /// 64-bit unsigned integers (control data, indices).
    U64(Vec<u64>),
}

impl Payload {
    /// Payload size in bytes as charged to the network.
    pub fn size_bytes(&self) -> u64 {
        match self {
            Payload::Bytes(v) => v.len() as u64,
            Payload::F32(v) => 4 * v.len() as u64,
            Payload::F64(v) => 8 * v.len() as u64,
            Payload::U64(v) => 8 * v.len() as u64,
        }
    }

    /// Name of the payload variant, for protocol diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Payload::Bytes(_) => "Bytes",
            Payload::F32(_) => "F32",
            Payload::F64(_) => "F64",
            Payload::U64(_) => "U64",
        }
    }

    /// Unwrap an `F32` payload.
    pub fn try_into_f32(self) -> Result<Vec<f32>, ProtocolError> {
        match self {
            Payload::F32(v) => Ok(v),
            other => Err(ProtocolError::mismatch("F32", &other)),
        }
    }

    /// Unwrap an `F64` payload.
    pub fn try_into_f64(self) -> Result<Vec<f64>, ProtocolError> {
        match self {
            Payload::F64(v) => Ok(v),
            other => Err(ProtocolError::mismatch("F64", &other)),
        }
    }

    /// Unwrap a `U64` payload.
    pub fn try_into_u64(self) -> Result<Vec<u64>, ProtocolError> {
        match self {
            Payload::U64(v) => Ok(v),
            other => Err(ProtocolError::mismatch("U64", &other)),
        }
    }

    /// Unwrap a `Bytes` payload.
    pub fn try_into_bytes(self) -> Result<Vec<u8>, ProtocolError> {
        match self {
            Payload::Bytes(v) => Ok(v),
            other => Err(ProtocolError::mismatch("Bytes", &other)),
        }
    }

    /// Unwrap an `F32` payload; panics with a protocol error otherwise.
    pub fn into_f32(self) -> Vec<f32> {
        self.try_into_f32().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Unwrap an `F64` payload; panics with a protocol error otherwise.
    pub fn into_f64(self) -> Vec<f64> {
        self.try_into_f64().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Unwrap a `U64` payload; panics with a protocol error otherwise.
    pub fn into_u64(self) -> Vec<u64> {
        self.try_into_u64().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Unwrap a `Bytes` payload; panics with a protocol error otherwise.
    pub fn into_bytes(self) -> Vec<u8> {
        self.try_into_bytes().unwrap_or_else(|e| panic!("{e}"))
    }
}

/// A received payload did not have the variant the protocol step expected —
/// the SPMD program's send and receive sides disagree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolError {
    /// The payload variant the receiver expected.
    pub expected: &'static str,
    /// The variant that actually arrived.
    pub got: &'static str,
}

impl ProtocolError {
    fn mismatch(expected: &'static str, got: &Payload) -> Self {
        ProtocolError {
            expected,
            got: got.kind(),
        }
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "protocol error: expected {} payload, got {}",
            self.expected, self.got
        )
    }
}

impl std::error::Error for ProtocolError {}

/// A message in flight.
#[derive(Debug, PartialEq)]
pub struct Msg {
    /// Matching tag.
    pub tag: Tag,
    /// The data.
    pub payload: Payload,
    /// Simulated time at which the message arrives at the receiver.
    pub arrival: SimTime,
}

/// Error returned when a receive cannot complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvError {
    /// The sending processor finished the SPMD region without sending.
    Disconnected {
        /// The source rank that is gone.
        from: usize,
    },
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Disconnected { from } => {
                write!(f, "receive failed: processor {from} exited without sending")
            }
        }
    }
}

impl std::error::Error for RecvError {}

/// One processor's endpoints: senders to every peer and receivers from every
/// peer, plus per-source pending queues for tag-mismatch buffering.
pub struct Endpoints {
    /// `to[d]` sends to rank `d` (entry for self is present but unused).
    pub to: Vec<Sender<Msg>>,
    /// `from[s]` receives from rank `s`.
    pub from: Vec<Receiver<Msg>>,
    /// Messages received from `s` whose tag did not match a pending receive.
    pending: Vec<VecDeque<Msg>>,
}

impl Endpoints {
    /// Blocking receive of the next message from `src` with tag `tag`.
    ///
    /// Messages with other tags that arrive first are buffered and delivered
    /// to later receives, so independent protocols (e.g. a collective and a
    /// user exchange) can interleave safely.
    pub fn recv(&mut self, src: usize, tag: Tag) -> Result<Msg, RecvError> {
        if let Some(pos) = self.pending[src].iter().position(|m| m.tag == tag) {
            return Ok(self.pending[src].remove(pos).expect("position valid"));
        }
        loop {
            match self.from[src].recv() {
                Ok(m) if m.tag == tag => return Ok(m),
                Ok(m) => self.pending[src].push_back(m),
                Err(_) => return Err(RecvError::Disconnected { from: src }),
            }
        }
    }

    /// Send `msg` to `dst`. Returns `false` if `dst` has already exited.
    ///
    /// In a healthy SPMD program that never happens; under fault injection a
    /// peer may have aborted on a permanent fault, in which case the message
    /// is dropped on the floor — the sender keeps running and the aborted
    /// rank's error drives machine-level recovery. Panicking here instead
    /// would tear down every surviving rank's thread.
    pub fn send(&self, dst: usize, msg: Msg) -> bool {
        self.to[dst].send(msg).is_ok()
    }
}

/// Build the full fabric for `n` processors: a vector of per-rank endpoints.
pub fn build_fabric(n: usize) -> Vec<Endpoints> {
    // txs[s][d] / rxs[d][s]: channel from s to d.
    let mut txs: Vec<Vec<Option<Sender<Msg>>>> = (0..n).map(|_| vec![None; n]).collect();
    let mut rxs: Vec<Vec<Option<Receiver<Msg>>>> = (0..n).map(|_| vec![None; n]).collect();
    for (s, tx_row) in txs.iter_mut().enumerate() {
        for (d, slot) in tx_row.iter_mut().enumerate() {
            let (tx, rx) = unbounded();
            *slot = Some(tx);
            rxs[d][s] = Some(rx);
        }
    }
    txs.into_iter()
        .zip(rxs)
        .map(|(tx_row, rx_row)| Endpoints {
            to: tx_row.into_iter().map(|t| t.expect("filled")).collect(),
            from: rx_row.into_iter().map(|r| r.expect("filled")).collect(),
            pending: (0..n).map(|_| VecDeque::new()).collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(tag: u32, val: u64) -> Msg {
        Msg {
            tag: Tag(tag),
            payload: Payload::U64(vec![val]),
            arrival: SimTime(1.0),
        }
    }

    #[test]
    fn fabric_delivers_point_to_point() {
        let mut eps = build_fabric(2);
        let mut b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        a.send(1, msg(7, 42));
        let got = b.recv(0, Tag(7)).expect("message delivered");
        assert_eq!(got.tag, Tag(7));
        assert_eq!(got.arrival, SimTime(1.0));
        assert_eq!(got.payload.into_u64(), vec![42]);
    }

    #[test]
    fn recv_buffers_mismatched_tags() {
        let mut eps = build_fabric(2);
        let mut b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        a.send(1, msg(1, 10));
        a.send(1, msg(2, 20));
        // Ask for tag 2 first: tag 1 must be buffered, not lost.
        let second = b.recv(0, Tag(2)).unwrap();
        assert_eq!(second.payload.into_u64(), vec![20]);
        let first = b.recv(0, Tag(1)).unwrap();
        assert_eq!(first.payload.into_u64(), vec![10]);
    }

    #[test]
    fn recv_from_dead_sender_errors() {
        let mut eps = build_fabric(2);
        let mut b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        drop(a);
        assert_eq!(b.recv(0, Tag(0)), Err(RecvError::Disconnected { from: 0 }));
    }

    #[test]
    fn payload_sizes() {
        assert_eq!(Payload::Bytes(vec![0; 10]).size_bytes(), 10);
        assert_eq!(Payload::F32(vec![0.0; 10]).size_bytes(), 40);
        assert_eq!(Payload::F64(vec![0.0; 10]).size_bytes(), 80);
        assert_eq!(Payload::U64(vec![0; 10]).size_bytes(), 80);
    }

    #[test]
    #[should_panic(expected = "protocol error")]
    fn wrong_payload_unwrap_panics() {
        Payload::F32(vec![1.0]).into_u64();
    }

    #[test]
    fn try_unwrap_returns_typed_mismatch() {
        let err = Payload::F32(vec![1.0]).try_into_u64().unwrap_err();
        assert_eq!(err.expected, "U64");
        assert_eq!(err.got, "F32");
        assert!(err.to_string().contains("protocol error"));
        assert_eq!(Payload::U64(vec![3]).try_into_u64().unwrap(), vec![3]);
        assert_eq!(Payload::Bytes(vec![1]).try_into_bytes().unwrap(), vec![1]);
        assert_eq!(Payload::F64(vec![2.0]).try_into_f64().unwrap(), vec![2.0]);
    }
}
