//! Point-to-point message fabric.
//!
//! Every ordered pair of processors gets a dedicated unbounded channel, so a
//! receive from a *specific* source is race-free and deterministic. Message
//! payloads are real data (the simulator computes real results); each message
//! also carries its simulated departure time so the receiver can synchronize
//! its virtual clock.
//!
//! Timing semantics: a send advances the sender's clock by the full message
//! transfer time (latency + bytes/bandwidth) — a conservative store-and-
//! forward model that matches the blocking `csend`/`crecv` style of the
//! paper's era. The message arrives at the sender's post-send clock; a
//! receive moves the receiver's clock to `max(own clock, arrival)`.

use std::collections::VecDeque;

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::time::SimTime;

/// Message tag for matching sends with receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tag(pub u32);

impl Tag {
    /// Tag used by the collective algorithms; user code should avoid it.
    pub const COLLECTIVE: Tag = Tag(u32::MAX);
}

/// A typed message payload.
///
/// The simulator moves real data; a small closed set of element types covers
/// everything the out-of-core runtime needs (raw bytes for file blocks,
/// floats for reductions, integers for control information).
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Raw bytes (array sections in storage form).
    Bytes(Vec<u8>),
    /// 32-bit floats (the paper's `real` arrays).
    F32(Vec<f32>),
    /// 64-bit floats.
    F64(Vec<f64>),
    /// 64-bit unsigned integers (control data, indices).
    U64(Vec<u64>),
}

impl Payload {
    /// Payload size in bytes as charged to the network.
    pub fn size_bytes(&self) -> u64 {
        match self {
            Payload::Bytes(v) => v.len() as u64,
            Payload::F32(v) => 4 * v.len() as u64,
            Payload::F64(v) => 8 * v.len() as u64,
            Payload::U64(v) => 8 * v.len() as u64,
        }
    }

    /// Unwrap an `F32` payload; panics with a protocol error otherwise.
    pub fn into_f32(self) -> Vec<f32> {
        match self {
            Payload::F32(v) => v,
            other => panic!("protocol error: expected F32 payload, got {other:?}"),
        }
    }

    /// Unwrap an `F64` payload; panics with a protocol error otherwise.
    pub fn into_f64(self) -> Vec<f64> {
        match self {
            Payload::F64(v) => v,
            other => panic!("protocol error: expected F64 payload, got {other:?}"),
        }
    }

    /// Unwrap a `U64` payload; panics with a protocol error otherwise.
    pub fn into_u64(self) -> Vec<u64> {
        match self {
            Payload::U64(v) => v,
            other => panic!("protocol error: expected U64 payload, got {other:?}"),
        }
    }

    /// Unwrap a `Bytes` payload; panics with a protocol error otherwise.
    pub fn into_bytes(self) -> Vec<u8> {
        match self {
            Payload::Bytes(v) => v,
            other => panic!("protocol error: expected Bytes payload, got {other:?}"),
        }
    }
}

/// A message in flight.
#[derive(Debug, PartialEq)]
pub struct Msg {
    /// Matching tag.
    pub tag: Tag,
    /// The data.
    pub payload: Payload,
    /// Simulated time at which the message arrives at the receiver.
    pub arrival: SimTime,
}

/// Error returned when a receive cannot complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvError {
    /// The sending processor finished the SPMD region without sending.
    Disconnected {
        /// The source rank that is gone.
        from: usize,
    },
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Disconnected { from } => {
                write!(f, "receive failed: processor {from} exited without sending")
            }
        }
    }
}

impl std::error::Error for RecvError {}

/// One processor's endpoints: senders to every peer and receivers from every
/// peer, plus per-source pending queues for tag-mismatch buffering.
pub struct Endpoints {
    /// `to[d]` sends to rank `d` (entry for self is present but unused).
    pub to: Vec<Sender<Msg>>,
    /// `from[s]` receives from rank `s`.
    pub from: Vec<Receiver<Msg>>,
    /// Messages received from `s` whose tag did not match a pending receive.
    pending: Vec<VecDeque<Msg>>,
}

impl Endpoints {
    /// Blocking receive of the next message from `src` with tag `tag`.
    ///
    /// Messages with other tags that arrive first are buffered and delivered
    /// to later receives, so independent protocols (e.g. a collective and a
    /// user exchange) can interleave safely.
    pub fn recv(&mut self, src: usize, tag: Tag) -> Result<Msg, RecvError> {
        if let Some(pos) = self.pending[src].iter().position(|m| m.tag == tag) {
            return Ok(self.pending[src].remove(pos).expect("position valid"));
        }
        loop {
            match self.from[src].recv() {
                Ok(m) if m.tag == tag => return Ok(m),
                Ok(m) => self.pending[src].push_back(m),
                Err(_) => return Err(RecvError::Disconnected { from: src }),
            }
        }
    }

    /// Send `msg` to `dst`.
    ///
    /// A send to a finished processor is a protocol error in an SPMD program
    /// and panics (the matching receive can never happen).
    pub fn send(&self, dst: usize, msg: Msg) {
        self.to[dst]
            .send(msg)
            .unwrap_or_else(|_| panic!("send failed: processor {dst} already exited"));
    }
}

/// Build the full fabric for `n` processors: a vector of per-rank endpoints.
pub fn build_fabric(n: usize) -> Vec<Endpoints> {
    // txs[s][d] / rxs[d][s]: channel from s to d.
    let mut txs: Vec<Vec<Option<Sender<Msg>>>> = (0..n).map(|_| vec![None; n]).collect();
    let mut rxs: Vec<Vec<Option<Receiver<Msg>>>> = (0..n).map(|_| vec![None; n]).collect();
    for (s, tx_row) in txs.iter_mut().enumerate() {
        for (d, slot) in tx_row.iter_mut().enumerate() {
            let (tx, rx) = unbounded();
            *slot = Some(tx);
            rxs[d][s] = Some(rx);
        }
    }
    txs.into_iter()
        .zip(rxs)
        .map(|(tx_row, rx_row)| Endpoints {
            to: tx_row.into_iter().map(|t| t.expect("filled")).collect(),
            from: rx_row.into_iter().map(|r| r.expect("filled")).collect(),
            pending: (0..n).map(|_| VecDeque::new()).collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(tag: u32, val: u64) -> Msg {
        Msg {
            tag: Tag(tag),
            payload: Payload::U64(vec![val]),
            arrival: SimTime(1.0),
        }
    }

    #[test]
    fn fabric_delivers_point_to_point() {
        let mut eps = build_fabric(2);
        let mut b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        a.send(1, msg(7, 42));
        let got = b.recv(0, Tag(7)).expect("message delivered");
        assert_eq!(got.tag, Tag(7));
        assert_eq!(got.arrival, SimTime(1.0));
        assert_eq!(got.payload.into_u64(), vec![42]);
    }

    #[test]
    fn recv_buffers_mismatched_tags() {
        let mut eps = build_fabric(2);
        let mut b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        a.send(1, msg(1, 10));
        a.send(1, msg(2, 20));
        // Ask for tag 2 first: tag 1 must be buffered, not lost.
        let second = b.recv(0, Tag(2)).unwrap();
        assert_eq!(second.payload.into_u64(), vec![20]);
        let first = b.recv(0, Tag(1)).unwrap();
        assert_eq!(first.payload.into_u64(), vec![10]);
    }

    #[test]
    fn recv_from_dead_sender_errors() {
        let mut eps = build_fabric(2);
        let mut b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        drop(a);
        assert_eq!(b.recv(0, Tag(0)), Err(RecvError::Disconnected { from: 0 }));
    }

    #[test]
    fn payload_sizes() {
        assert_eq!(Payload::Bytes(vec![0; 10]).size_bytes(), 10);
        assert_eq!(Payload::F32(vec![0.0; 10]).size_bytes(), 40);
        assert_eq!(Payload::F64(vec![0.0; 10]).size_bytes(), 80);
        assert_eq!(Payload::U64(vec![0; 10]).size_bytes(), 80);
    }

    #[test]
    #[should_panic(expected = "protocol error")]
    fn wrong_payload_unwrap_panics() {
        Payload::F32(vec![1.0]).into_u64();
    }
}
