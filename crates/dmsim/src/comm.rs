//! Point-to-point message fabric.
//!
//! Every rank owns one *mailbox*; inside it, per-source FIFO queues are
//! materialized lazily on the first message from that source. A receive
//! from a *specific* source scans only that source's queue, so matching is
//! race-free and deterministic, and a 1024-rank machine whose ranks talk
//! to `O(log n)` peers allocates `O(n log n)` queues instead of the `n²`
//! channel pairs the previous eager fabric built up front.
//!
//! Message payloads are real data (the simulator computes real results);
//! each message also carries its simulated arrival time so the receiver
//! can synchronize its virtual clock.
//!
//! Timing semantics: a send advances the sender's clock by the full message
//! transfer time (latency + bytes/bandwidth) — a conservative store-and-
//! forward model that matches the blocking `csend`/`crecv` style of the
//! paper's era. The message arrives at the sender's post-send clock; a
//! receive moves the receiver's clock to `max(own clock, arrival)`.
//!
//! Blocking works for both execution engines: an OS-thread rank waits on
//! the mailbox condvar, a pooled rank registers its task id in the mailbox
//! and parks its coroutine ([`crate::pool`]). Senders and exiting ranks
//! wake whichever kind of waiter they find. Registration happens under the
//! same lock as the queue scan, so wakeups cannot be lost.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use crate::pool::{CoroHook, PoolShared};
use crate::time::SimTime;

/// Message tag for matching sends with receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tag(pub u32);

impl Tag {
    /// Tag used by the collective algorithms; user code should avoid it.
    pub const COLLECTIVE: Tag = Tag(u32::MAX);
}

/// A typed message payload.
///
/// The simulator moves real data; a small closed set of element types covers
/// everything the out-of-core runtime needs (raw bytes for file blocks,
/// floats for reductions, integers for control information).
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Raw bytes (array sections in storage form).
    Bytes(Vec<u8>),
    /// 32-bit floats (the paper's `real` arrays).
    F32(Vec<f32>),
    /// 64-bit floats.
    F64(Vec<f64>),
    /// 64-bit unsigned integers (control data, indices).
    U64(Vec<u64>),
}

impl Payload {
    /// Payload size in bytes as charged to the network.
    pub fn size_bytes(&self) -> u64 {
        match self {
            Payload::Bytes(v) => v.len() as u64,
            Payload::F32(v) => 4 * v.len() as u64,
            Payload::F64(v) => 8 * v.len() as u64,
            Payload::U64(v) => 8 * v.len() as u64,
        }
    }

    /// Name of the payload variant, for protocol diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Payload::Bytes(_) => "Bytes",
            Payload::F32(_) => "F32",
            Payload::F64(_) => "F64",
            Payload::U64(_) => "U64",
        }
    }

    /// Unwrap an `F32` payload.
    pub fn try_into_f32(self) -> Result<Vec<f32>, ProtocolError> {
        match self {
            Payload::F32(v) => Ok(v),
            other => Err(ProtocolError::mismatch("F32", &other)),
        }
    }

    /// Unwrap an `F64` payload.
    pub fn try_into_f64(self) -> Result<Vec<f64>, ProtocolError> {
        match self {
            Payload::F64(v) => Ok(v),
            other => Err(ProtocolError::mismatch("F64", &other)),
        }
    }

    /// Unwrap a `U64` payload.
    pub fn try_into_u64(self) -> Result<Vec<u64>, ProtocolError> {
        match self {
            Payload::U64(v) => Ok(v),
            other => Err(ProtocolError::mismatch("U64", &other)),
        }
    }

    /// Unwrap a `Bytes` payload.
    pub fn try_into_bytes(self) -> Result<Vec<u8>, ProtocolError> {
        match self {
            Payload::Bytes(v) => Ok(v),
            other => Err(ProtocolError::mismatch("Bytes", &other)),
        }
    }

    /// Unwrap an `F32` payload; panics with a protocol error otherwise.
    pub fn into_f32(self) -> Vec<f32> {
        self.try_into_f32().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Unwrap an `F64` payload; panics with a protocol error otherwise.
    pub fn into_f64(self) -> Vec<f64> {
        self.try_into_f64().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Unwrap a `U64` payload; panics with a protocol error otherwise.
    pub fn into_u64(self) -> Vec<u64> {
        self.try_into_u64().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Unwrap a `Bytes` payload; panics with a protocol error otherwise.
    pub fn into_bytes(self) -> Vec<u8> {
        self.try_into_bytes().unwrap_or_else(|e| panic!("{e}"))
    }
}

/// A received payload did not have the variant the protocol step expected —
/// the SPMD program's send and receive sides disagree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolError {
    /// The payload variant the receiver expected.
    pub expected: &'static str,
    /// The variant that actually arrived.
    pub got: &'static str,
}

impl ProtocolError {
    fn mismatch(expected: &'static str, got: &Payload) -> Self {
        ProtocolError {
            expected,
            got: got.kind(),
        }
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "protocol error: expected {} payload, got {}",
            self.expected, self.got
        )
    }
}

impl std::error::Error for ProtocolError {}

/// A message in flight.
#[derive(Debug, PartialEq)]
pub struct Msg {
    /// Matching tag.
    pub tag: Tag,
    /// The data.
    pub payload: Payload,
    /// Simulated time at which the message arrives at the receiver.
    pub arrival: SimTime,
}

/// Error returned when a receive cannot complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvError {
    /// The sending processor finished the SPMD region without sending.
    Disconnected {
        /// The source rank that is gone.
        from: usize,
    },
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Disconnected { from } => {
                write!(f, "receive failed: processor {from} exited without sending")
            }
        }
    }
}

impl std::error::Error for RecvError {}

/// How the pooled engine wakes a parked rank task: a parked receiver
/// registers its task id in its mailbox, and senders hand that id to the
/// scheduler through this route.
pub(crate) struct PoolWake {
    pub(crate) shared: Arc<PoolShared>,
}

struct MailState {
    /// Per-source queues, materialized on the first message from a source.
    queues: HashMap<usize, VecDeque<Msg>>,
    /// Task id of a pooled rank parked on this mailbox (OS-thread ranks
    /// wait on the condvar instead and leave this `None`).
    waiting: Option<usize>,
}

struct Mailbox {
    state: Mutex<MailState>,
    arrived: Condvar,
}

/// The machine-wide fabric: one mailbox and one exited flag per rank.
pub(crate) struct Fabric {
    mailboxes: Vec<Mailbox>,
    exited: Vec<AtomicBool>,
    wake: OnceLock<PoolWake>,
}

impl Fabric {
    pub(crate) fn new(n: usize) -> Arc<Fabric> {
        Arc::new(Fabric {
            mailboxes: (0..n)
                .map(|_| Mailbox {
                    state: Mutex::new(MailState {
                        queues: HashMap::new(),
                        waiting: None,
                    }),
                    arrived: Condvar::new(),
                })
                .collect(),
            exited: (0..n).map(|_| AtomicBool::new(false)).collect(),
            wake: OnceLock::new(),
        })
    }

    /// Install the pooled-engine wake route. Called once, after the run's
    /// tasks are staged (so the rank→task-id map exists) and before they
    /// are launched.
    pub(crate) fn set_wake(&self, wake: PoolWake) {
        if self.wake.set(wake).is_err() {
            panic!("fabric wake route installed twice");
        }
    }

    fn wake_task(&self, tid: usize) {
        if let Some(w) = self.wake.get() {
            w.shared.wake(tid);
        }
    }

    /// Deliver `msg` from `src` into `dst`'s mailbox; returns `false` if
    /// `dst` already exited (the message is dropped on the floor, matching
    /// a send into a dropped channel).
    fn send(&self, src: usize, dst: usize, msg: Msg) -> bool {
        if self.exited[dst].load(Ordering::Acquire) {
            return false;
        }
        let mb = &self.mailboxes[dst];
        let waiter = {
            let mut st = mb.state.lock().unwrap();
            st.queues.entry(src).or_default().push_back(msg);
            st.waiting.take()
        };
        mb.arrived.notify_all();
        if let Some(tid) = waiter {
            self.wake_task(tid);
        }
        true
    }

    /// Blocking receive for rank `me` of the next message from `src` with
    /// tag `tag`. `hook` selects the blocking style: condvar wait for
    /// OS-thread ranks, park-the-coroutine for pooled ranks.
    fn recv(
        &self,
        me: usize,
        src: usize,
        tag: Tag,
        hook: Option<&CoroHook>,
    ) -> Result<Msg, RecvError> {
        let mb = &self.mailboxes[me];
        let mut st = mb.state.lock().unwrap();
        loop {
            if let Some(q) = st.queues.get_mut(&src) {
                if let Some(pos) = q.iter().position(|m| m.tag == tag) {
                    return Ok(q.remove(pos).expect("position valid"));
                }
            }
            // Checked *after* draining matches and *inside* the lock: an
            // exiting sender stores the flag before sweeping mailbox locks,
            // so a receiver that misses the flag here is guaranteed to be
            // registered (or condvar-waiting) when the sweep reaches it.
            if self.exited[src].load(Ordering::Acquire) {
                return Err(RecvError::Disconnected { from: src });
            }
            match hook {
                None => st = mb.arrived.wait(st).unwrap(),
                Some(h) => {
                    st.waiting = Some(h.tid());
                    drop(st);
                    h.park();
                    st = mb.state.lock().unwrap();
                }
            }
        }
    }

    /// Mark `rank` exited and wake every waiter in the machine so blocked
    /// receivers re-check their sources. Spurious wakes re-park; receivers
    /// actually waiting on `rank` observe the flag and error out.
    pub(crate) fn mark_exited(&self, rank: usize) {
        if self.exited[rank].swap(true, Ordering::AcqRel) {
            return;
        }
        for mb in &self.mailboxes {
            let waiter = { mb.state.lock().unwrap().waiting.take() };
            mb.arrived.notify_all();
            if let Some(tid) = waiter {
                self.wake_task(tid);
            }
        }
    }
}

/// One processor's handle into the fabric. Dropping it marks the rank
/// exited (waking any peer blocked on it), which is how a finished — or
/// panicked and unwound — rank disconnects.
pub struct Endpoints {
    fabric: Arc<Fabric>,
    rank: usize,
}

impl Endpoints {
    pub(crate) fn on(fabric: Arc<Fabric>, rank: usize) -> Endpoints {
        Endpoints { fabric, rank }
    }

    /// Blocking receive of the next message from `src` with tag `tag`,
    /// waiting as an OS thread.
    ///
    /// Messages with other tags that arrive first stay queued and are
    /// delivered to later receives, so independent protocols (e.g. a
    /// collective and a user exchange) can interleave safely.
    pub fn recv(&mut self, src: usize, tag: Tag) -> Result<Msg, RecvError> {
        self.fabric.recv(self.rank, src, tag, None)
    }

    /// Blocking receive with an engine-selected wait: `hook` is `None` on
    /// the threaded engine, `Some` (park the coroutine) on the pooled one.
    pub(crate) fn recv_as(
        &self,
        src: usize,
        tag: Tag,
        hook: Option<&CoroHook>,
    ) -> Result<Msg, RecvError> {
        self.fabric.recv(self.rank, src, tag, hook)
    }

    /// Send `msg` to `dst`. Returns `false` if `dst` has already exited.
    ///
    /// In a healthy SPMD program that never happens; under fault injection a
    /// peer may have aborted on a permanent fault, in which case the message
    /// is dropped on the floor — the sender keeps running and the aborted
    /// rank's error drives machine-level recovery. Panicking here instead
    /// would tear down every surviving rank's thread.
    pub fn send(&self, dst: usize, msg: Msg) -> bool {
        self.fabric.send(self.rank, dst, msg)
    }
}

impl Drop for Endpoints {
    fn drop(&mut self) {
        self.fabric.mark_exited(self.rank);
    }
}

/// Build the full fabric for `n` processors: a vector of per-rank endpoint
/// handles over one shared lazy mailbox fabric.
pub fn build_fabric(n: usize) -> Vec<Endpoints> {
    let fabric = Fabric::new(n);
    (0..n)
        .map(|rank| Endpoints::on(fabric.clone(), rank))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(tag: u32, val: u64) -> Msg {
        Msg {
            tag: Tag(tag),
            payload: Payload::U64(vec![val]),
            arrival: SimTime(1.0),
        }
    }

    #[test]
    fn fabric_delivers_point_to_point() {
        let mut eps = build_fabric(2);
        let mut b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        a.send(1, msg(7, 42));
        let got = b.recv(0, Tag(7)).expect("message delivered");
        assert_eq!(got.tag, Tag(7));
        assert_eq!(got.arrival, SimTime(1.0));
        assert_eq!(got.payload.into_u64(), vec![42]);
    }

    #[test]
    fn recv_buffers_mismatched_tags() {
        let mut eps = build_fabric(2);
        let mut b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        a.send(1, msg(1, 10));
        a.send(1, msg(2, 20));
        // Ask for tag 2 first: tag 1 must stay queued, not get lost.
        let second = b.recv(0, Tag(2)).unwrap();
        assert_eq!(second.payload.into_u64(), vec![20]);
        let first = b.recv(0, Tag(1)).unwrap();
        assert_eq!(first.payload.into_u64(), vec![10]);
    }

    #[test]
    fn recv_from_dead_sender_errors() {
        let mut eps = build_fabric(2);
        let mut b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        drop(a);
        assert_eq!(b.recv(0, Tag(0)), Err(RecvError::Disconnected { from: 0 }));
    }

    #[test]
    fn messages_sent_before_exit_survive_the_exit() {
        let mut eps = build_fabric(2);
        let mut b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        a.send(1, msg(4, 77));
        drop(a);
        // The queued message is still deliverable; only *after* draining it
        // does the disconnect surface.
        assert_eq!(b.recv(0, Tag(4)).unwrap().payload.into_u64(), vec![77]);
        assert_eq!(b.recv(0, Tag(4)), Err(RecvError::Disconnected { from: 0 }));
    }

    #[test]
    fn send_to_exited_rank_reports_failure() {
        let mut eps = build_fabric(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        drop(b);
        assert!(!a.send(1, msg(0, 1)));
    }

    #[test]
    fn large_fabrics_are_cheap_to_build() {
        // The eager predecessor allocated n² channel pairs here; the lazy
        // fabric is O(n) until messages actually flow.
        let eps = build_fabric(1024);
        assert_eq!(eps.len(), 1024);
    }

    #[test]
    fn payload_sizes() {
        assert_eq!(Payload::Bytes(vec![0; 10]).size_bytes(), 10);
        assert_eq!(Payload::F32(vec![0.0; 10]).size_bytes(), 40);
        assert_eq!(Payload::F64(vec![0.0; 10]).size_bytes(), 80);
        assert_eq!(Payload::U64(vec![0; 10]).size_bytes(), 80);
    }

    #[test]
    #[should_panic(expected = "protocol error")]
    fn wrong_payload_unwrap_panics() {
        Payload::F32(vec![1.0]).into_u64();
    }

    #[test]
    fn try_unwrap_returns_typed_mismatch() {
        let err = Payload::F32(vec![1.0]).try_into_u64().unwrap_err();
        assert_eq!(err.expected, "U64");
        assert_eq!(err.got, "F32");
        assert!(err.to_string().contains("protocol error"));
        assert_eq!(Payload::U64(vec![3]).try_into_u64().unwrap(), vec![3]);
        assert_eq!(Payload::Bytes(vec![1]).try_into_bytes().unwrap(), vec![1]);
        assert_eq!(Payload::F64(vec![2.0]).try_into_f64().unwrap(), vec![2.0]);
    }
}
