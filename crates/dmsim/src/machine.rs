//! The simulated machine: configuration and SPMD execution.

use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use ooc_trace::{RankTrace, Trace, TraceConfig, Tracer};
use serde::{Deserialize, Serialize};

use crate::comm::{build_fabric, Endpoints, Fabric, PoolWake};
use crate::costmodel::CostModel;
use crate::fault::{FaultConfig, FaultDomain, FaultInjector};
use crate::pool::{CoroHook, RankBody, RunCore, TaskToken, WorkerPool};
use crate::proc::{Blocker, ProcCtx, ProcReport, RunReport};

/// Which execution engine carries the simulated ranks.
///
/// Both engines produce **bitwise-identical** results — clocks, stats,
/// traces, fault streams — because every per-rank quantity is a pure
/// function of the rank's own event sequence and messages carry their
/// arrival timestamps. The engines differ only in host-resource shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Engine {
    /// One OS thread per simulated rank — the legacy engine and the
    /// exact-parity oracle. Simple, but caps out at OS thread limits.
    #[default]
    Threads,
    /// Ranks are coroutines scheduled on a fixed pool of this many worker
    /// threads (`0` = host parallelism). Scales to thousands of ranks and
    /// lets concurrent runs share one pool.
    Pool(usize),
}

/// Configuration of a simulated distributed-memory machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of compute processors.
    pub nprocs: usize,
    /// Cost model converting counted operations into simulated seconds.
    pub cost: CostModel,
    /// Simulated-clock event tracing; off by default, and when off the
    /// machine runs the exact untraced path.
    pub trace: TraceConfig,
    /// Job identity when this machine runs as part of a multi-job workload
    /// (`ooc-sched`). Seeds fault/RNG streams per (job, rank) pair; job 0 —
    /// the default — is bit-identical to the pre-workload derivation.
    pub job: u32,
    /// Execution engine carrying the ranks; results are engine-invariant.
    pub engine: Engine,
}

impl MachineConfig {
    /// A machine with `nprocs` nodes and an explicit cost model.
    pub fn new(nprocs: usize, cost: CostModel) -> Self {
        assert!(nprocs > 0, "machine needs at least one processor");
        MachineConfig {
            nprocs,
            cost,
            trace: TraceConfig::default(),
            job: 0,
            engine: Engine::default(),
        }
    }

    /// Enable simulated-clock tracing on every processor.
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Tag the machine with a workload job identity (isolates fault/RNG
    /// streams per (job, rank) pair).
    pub fn with_job(mut self, job: u32) -> Self {
        self.job = job;
        self
    }

    /// Select the execution engine (results are engine-invariant).
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Intel Touchstone Delta calibration (see [`CostModel::delta`]).
    pub fn delta(nprocs: usize) -> Self {
        Self::new(nprocs, CostModel::delta(nprocs))
    }

    /// Zero-cost machine for functional tests.
    pub fn free(nprocs: usize) -> Self {
        Self::new(nprocs, CostModel::free(nprocs))
    }

    /// Modern cluster calibration (see [`CostModel::cluster`]).
    pub fn cluster(nprocs: usize) -> Self {
        Self::new(nprocs, CostModel::cluster(nprocs))
    }
}

/// A simulated machine ready to run SPMD regions.
#[derive(Debug, Clone)]
pub struct Machine {
    config: MachineConfig,
    fault: Option<FaultConfig>,
}

impl Machine {
    /// Build a machine from its configuration.
    pub fn new(config: MachineConfig) -> Self {
        Machine {
            config,
            fault: None,
        }
    }

    /// Enable deterministic fault injection on the message fabric. Each rank
    /// derives its own stream from `cfg.seed`, so same-seed runs perturb
    /// identically. (Disk faults are wired separately, through
    /// `pario::LogicalDisk::enable_faults`, from the same config.)
    pub fn with_fault_injection(mut self, cfg: FaultConfig) -> Self {
        self.fault = Some(cfg);
        self
    }

    /// The fault configuration, when injection is enabled.
    pub fn fault_config(&self) -> Option<&FaultConfig> {
        self.fault.as_ref()
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Run `body` as an SPMD region on the configured [`Engine`], each
    /// processor receiving its own [`ProcCtx`]. Returns the
    /// timing/statistics report. Panics in any processor propagate after
    /// the region completes, lowest rank first.
    pub fn run<F>(&self, body: F) -> RunReport
    where
        F: Fn(&ProcCtx) + Send + Sync,
    {
        self.run_with(|ctx| body(ctx)).0
    }

    /// Like [`Machine::run`] but also collects a value from each processor,
    /// returned in rank order.
    pub fn run_with<F, T>(&self, body: F) -> (RunReport, Vec<T>)
    where
        F: Fn(&ProcCtx) -> T + Send + Sync,
        T: Send,
    {
        match self.config.engine {
            Engine::Threads => self.run_threaded(body),
            Engine::Pool(workers) => {
                if !crate::coro::supported() {
                    // No coroutine backend on this target; the threaded
                    // engine is bitwise-identical, only less scalable.
                    return self.run_threaded(body);
                }
                let pool = WorkerPool::new(workers);
                self.run_on(&pool, body)
            }
        }
    }

    /// The legacy engine: one OS thread per simulated processor.
    fn run_threaded<F, T>(&self, body: F) -> (RunReport, Vec<T>)
    where
        F: Fn(&ProcCtx) -> T + Send + Sync,
        T: Send,
    {
        let n = self.config.nprocs;
        let fabric = build_fabric(n);
        let started = Instant::now();

        let tracing = self.config.trace.enabled;
        let mut joined: Vec<(usize, ProcReport, Option<RankTrace>, T)> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (rank, endpoints) in fabric.into_iter().enumerate() {
                let cost = self.config.cost.clone();
                let faults = self
                    .fault
                    .as_ref()
                    .map(|fc| FaultInjector::for_job(fc, self.config.job, rank, FaultDomain::Msg));
                let tracer = tracing.then(|| Tracer::new(rank, self.config.trace));
                let job = self.config.job;
                let body = &body;
                handles.push(scope.spawn(move || {
                    // A panic unwinds through `ctx`, dropping its endpoints,
                    // which marks the rank exited and unblocks its peers.
                    let ctx = ProcCtx::new(
                        rank,
                        n,
                        cost,
                        endpoints,
                        faults,
                        tracer,
                        job,
                        Blocker::Thread,
                    );
                    let value = body(&ctx);
                    let (report, trace) = ctx.finish();
                    (rank, report, trace, value)
                }));
            }
            for h in handles {
                match h.join() {
                    Ok(t) => joined.push(t),
                    Err(e) => std::panic::resume_unwind(e),
                }
            }
        });

        let wall = started.elapsed().as_secs_f64();
        joined.sort_by_key(|(r, _, _, _)| *r);
        let mut reports = Vec::with_capacity(n);
        let mut rank_traces = Vec::with_capacity(n);
        let mut values = Vec::with_capacity(n);
        for (_, rep, rt, val) in joined {
            reports.push(rep);
            rank_traces.extend(rt);
            values.push(val);
        }
        let trace = tracing.then_some(Trace { ranks: rank_traces });
        (RunReport::new(reports, wall, trace), values)
    }

    /// Run the SPMD region as rank coroutines on an existing [`WorkerPool`],
    /// blocking until every rank finished. Several `run_on` calls (from
    /// different OS threads) may share one pool; their tasks interleave on
    /// the workers without affecting each other's results.
    ///
    /// Panics if the simulated program deadlocks (every rank parked with no
    /// wake possible) — the threaded engine would hang forever instead.
    pub fn run_on<F, T>(&self, pool: &WorkerPool, body: F) -> (RunReport, Vec<T>)
    where
        F: Fn(&ProcCtx) -> T + Send + Sync,
        T: Send,
    {
        if !crate::coro::supported() {
            return self.run_threaded(body);
        }
        // `&F` implements `Fn(&ProcCtx) -> T` and is `Copy`; the staged
        // tasks borrow `body` only until `wait()` returns (see the safety
        // argument in `stage_generic`).
        self.stage_generic(pool, &body).wait()
    }

    /// Start the SPMD region on `pool` without blocking: the returned
    /// handle collects the report. Lets a driver thread keep many runs
    /// in flight on one shared pool (multi-job workloads).
    pub fn start_on<F, T>(&self, pool: &WorkerPool, body: F) -> RunHandle<T>
    where
        F: Fn(&ProcCtx) -> T + Send + Sync + 'static,
        T: Send + 'static,
    {
        assert!(
            crate::coro::supported(),
            "start_on requires the coroutine backend (x86_64/aarch64)"
        );
        let body = Arc::new(body);
        let staged = self.stage_generic(pool, move |ctx: &ProcCtx| body(ctx));
        RunHandle {
            staged,
            pool: pool.clone(),
        }
    }

    /// Stage one coroutine per rank on `pool` and launch them. `body` is
    /// cloned per rank (a borrow for `run_on`, an `Arc`-capturing closure
    /// for `start_on`).
    fn stage_generic<'env, T, B>(&self, pool: &WorkerPool, body: B) -> StagedRun<T>
    where
        T: Send + 'env,
        B: Fn(&ProcCtx) -> T + Send + Clone + 'env,
    {
        let n = self.config.nprocs;
        let started = Instant::now();
        let tracing = self.config.trace.enabled;
        let fabric = Fabric::new(n);
        let run = pool.new_run(n);
        let results: SharedResults<T> = Arc::new(Mutex::new((0..n).map(|_| None).collect()));

        let mut bodies: Vec<ErasedBody<'env>> = Vec::with_capacity(n);
        for rank in 0..n {
            let cost = self.config.cost.clone();
            let faults = self
                .fault
                .as_ref()
                .map(|fc| FaultInjector::for_job(fc, self.config.job, rank, FaultDomain::Msg));
            let tracer = tracing.then(|| Tracer::new(rank, self.config.trace));
            let job = self.config.job;
            let fabric = fabric.clone();
            let run = run.clone();
            let results = results.clone();
            let body = body.clone();
            bodies.push(Box::new(move |y, token| {
                let hook = CoroHook::new(y, token);
                let ctx = ProcCtx::new(
                    rank,
                    n,
                    cost,
                    Endpoints::on(fabric, rank),
                    faults,
                    tracer,
                    job,
                    Blocker::Coro(hook),
                );
                match std::panic::catch_unwind(AssertUnwindSafe(|| body(&ctx))) {
                    Ok(value) => {
                        let (report, trace) = ctx.finish();
                        results.lock().unwrap()[rank] = Some((report, trace, value));
                    }
                    Err(payload) => {
                        // Dropping the context disconnects the rank's
                        // endpoints, unblocking any peer waiting on it.
                        drop(ctx);
                        run.record_panic(rank, payload);
                    }
                }
            }));
        }

        // SAFETY: lifetime erasure of the rank closures, which may borrow
        // `body` from the caller's frame ('env). `StagedRun::wait` blocks
        // until every task of the run is accounted for: a finished task has
        // consumed its closure (captures dropped on its own stack), and a
        // deadlock-killed task's suspended stack is *leaked* — its borrows
        // are never touched again — after which `wait` panics. `run_on`
        // calls `wait` before 'env can end, and `start_on` only accepts
        // 'static bodies, so no erased borrow is ever dangling when used.
        let bodies: Vec<RankBody> = unsafe { std::mem::transmute(bodies) };
        let tids = pool.submit(&run, bodies);
        fabric.set_wake(PoolWake {
            shared: pool.shared_arc(),
        });
        pool.launch(&tids);
        StagedRun {
            run,
            results,
            started,
            tracing,
            n,
        }
    }
}

type RankDone<T> = (ProcReport, Option<RankTrace>, T);
type SharedResults<T> = Arc<Mutex<Vec<Option<RankDone<T>>>>>;
/// A rank closure before lifetime erasure (see the SAFETY comment in
/// [`Machine::stage_generic`]); `RankBody` is its `'static` counterpart.
type ErasedBody<'env> = Box<dyn FnOnce(&crate::coro::Yielder, TaskToken) + Send + 'env>;

/// How a pooled run died instead of completing: detected simulated
/// deadlock, or an explicit [`RunHandle::kill`] (e.g. a workload watchdog
/// evicting a hung job). Either way the victims' suspended coroutine
/// stacks are leaked and the rest of the pool is unaffected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunDeath {
    /// Every live rank of the run was parked with no possible wake; the
    /// listed ranks were reaped.
    Deadlock { ranks: Vec<usize> },
    /// The run was torn down via [`RunHandle::kill`]; the listed ranks were
    /// reaped before finishing (ranks that completed earlier are absent).
    Killed { ranks: Vec<usize> },
}

impl std::fmt::Display for RunDeath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunDeath::Deadlock { ranks } => {
                write!(f, "simulated program deadlocked (ranks {ranks:?} parked)")
            }
            RunDeath::Killed { ranks } => {
                write!(f, "run killed (ranks {ranks:?} reaped)")
            }
        }
    }
}

/// A launched pooled run: owns the completion state and result slots.
struct StagedRun<T> {
    run: Arc<RunCore>,
    results: SharedResults<T>,
    started: Instant,
    tracing: bool,
    n: usize,
}

impl<T: Send> StagedRun<T> {
    fn wait(self) -> (RunReport, Vec<T>) {
        match self.wait_outcome() {
            Ok(done) => done,
            Err(RunDeath::Deadlock { ranks }) => panic!(
                "dmsim: simulated program deadlocked on the pooled engine: \
                 ranks {ranks:?} were parked with no possible wake \
                 (their coroutine stacks were leaked)"
            ),
            Err(RunDeath::Killed { ranks }) => panic!(
                "dmsim: pooled run was killed (ranks {ranks:?} reaped); \
                 use wait_outcome() to observe kills without panicking"
            ),
        }
    }

    /// Block until every task is accounted for; a deadlocked or killed run
    /// comes back as a typed [`RunDeath`] instead of a panic. Rank panics
    /// still propagate (lowest rank first) — they are program bugs, not
    /// simulated faults.
    fn wait_outcome(self) -> Result<(RunReport, Vec<T>), RunDeath> {
        self.run.wait();
        if self.run.was_killed() {
            let mut ranks = self.run.killed_ranks();
            ranks.sort_unstable();
            return Err(RunDeath::Killed { ranks });
        }
        if self.run.failed() {
            let mut ranks = self.run.deadlocked_ranks();
            ranks.sort_unstable();
            return Err(RunDeath::Deadlock { ranks });
        }
        if let Some((_rank, payload)) = self.run.take_panic() {
            std::panic::resume_unwind(payload);
        }
        let wall = self.started.elapsed().as_secs_f64();
        let slots = match Arc::try_unwrap(self.results) {
            Ok(m) => m.into_inner().unwrap(),
            // Every task finished cleanly (no deadlock, no panic), so every
            // per-rank clone of the results handle has been dropped.
            Err(_) => unreachable!("result slots still shared after completion"),
        };
        let mut reports = Vec::with_capacity(self.n);
        let mut rank_traces = Vec::with_capacity(self.n);
        let mut values = Vec::with_capacity(self.n);
        for (rank, slot) in slots.into_iter().enumerate() {
            let (rep, rt, val) =
                slot.unwrap_or_else(|| panic!("rank {rank} finished without a result"));
            reports.push(rep);
            rank_traces.extend(rt);
            values.push(val);
        }
        let trace = self.tracing.then_some(Trace { ranks: rank_traces });
        Ok((RunReport::new(reports, wall, trace), values))
    }
}

/// Handle to a run started with [`Machine::start_on`]. Keeps the worker
/// pool alive until the run is collected.
pub struct RunHandle<T> {
    staged: StagedRun<T>,
    pool: WorkerPool,
}

impl<T: Send> RunHandle<T> {
    /// Block until the run completes and collect its report and per-rank
    /// values. Propagates rank panics (lowest rank first) and turns
    /// simulated deadlocks into a diagnostic panic.
    pub fn wait(self) -> (RunReport, Vec<T>) {
        self.staged.wait()
    }

    /// Like [`RunHandle::wait`], but a deadlocked or killed run comes back
    /// as a typed [`RunDeath`] instead of a panic. Rank panics (program
    /// bugs) still propagate.
    pub fn wait_outcome(self) -> Result<(RunReport, Vec<T>), RunDeath> {
        self.staged.wait_outcome()
    }

    /// Tear down the run: unfinished ranks are reaped (suspended coroutine
    /// stacks leaked, like deadlock kills) without touching other runs on
    /// the pool, and any partial results are discarded. Blocks until every
    /// task is accounted for, then reports which ranks were reaped.
    pub fn kill(self) -> RunDeath {
        self.pool.kill_run(&self.staged.run);
        self.staged.run.wait();
        let mut ranks = self.staged.run.killed_ranks();
        ranks.sort_unstable();
        RunDeath::Killed { ranks }
    }

    /// Whether every rank of the run has already finished.
    pub fn is_done(&self) -> bool {
        self.staged.run.is_done()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::ReduceOp;
    use crate::comm::{Payload, Tag};

    #[test]
    fn spmd_region_runs_every_rank_once() {
        let m = Machine::new(MachineConfig::free(5));
        let (_, ranks) = m.run_with(|ctx| ctx.rank());
        assert_eq!(ranks, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn point_to_point_transfers_data_and_time() {
        let m = Machine::new(MachineConfig::delta(2));
        let report = m.run(|ctx| {
            if ctx.rank() == 0 {
                ctx.charge_flops(4_000_000); // 1 simulated second of work
                ctx.send(1, Tag(9), Payload::F64(vec![2.5; 8]));
            } else {
                let data = ctx.recv(0, Tag(9)).unwrap().into_f64();
                assert_eq!(data, vec![2.5; 8]);
            }
        });
        // Rank 1 waited for rank 0's second of compute plus the message.
        let r1 = report.per_proc()[1];
        assert!(r1.finish_time > 1.0, "finish = {}", r1.finish_time);
        assert_eq!(r1.stats.msgs_received, 1);
        assert_eq!(r1.stats.bytes_received, 64);
    }

    #[test]
    fn allreduce_sums_across_all_ranks() {
        for p in [1, 2, 3, 4, 7, 8] {
            let m = Machine::new(MachineConfig::free(p));
            m.run(|ctx| {
                let v = vec![ctx.rank() as f64, 1.0];
                let sum = ctx.allreduce_sum_f64(&v);
                let expect: f64 = (0..ctx.nprocs()).map(|r| r as f64).sum();
                assert_eq!(sum, vec![expect, p as f64]);
            });
        }
    }

    #[test]
    fn reduce_to_nonzero_root() {
        let m = Machine::new(MachineConfig::free(6));
        m.run(|ctx| {
            let v = vec![1.0f32];
            let got = ctx.global_sum_f32(&v, 4);
            if ctx.rank() == 4 {
                assert_eq!(got, Some(vec![6.0]));
            } else {
                assert_eq!(got, None);
            }
        });
    }

    #[test]
    fn broadcast_from_any_root() {
        for root in 0..5 {
            let m = Machine::new(MachineConfig::free(5));
            m.run(move |ctx| {
                let data = if ctx.rank() == root {
                    vec![root as u64 * 10, 7]
                } else {
                    Vec::new()
                };
                let got = ctx.broadcast(data, root);
                assert_eq!(got, vec![root as u64 * 10, 7]);
            });
        }
    }

    #[test]
    fn gather_concatenates_in_rank_order() {
        let m = Machine::new(MachineConfig::free(4));
        m.run(|ctx| {
            let mine = vec![ctx.rank() as u64; 2];
            if let Some(all) = ctx.gather(&mine, 0) {
                assert_eq!(all, vec![0, 0, 1, 1, 2, 2, 3, 3]);
            }
        });
    }

    #[test]
    fn scatter_distributes_chunks() {
        let m = Machine::new(MachineConfig::free(4));
        m.run(|ctx| {
            let data = if ctx.rank() == 0 {
                (0..8u64).collect()
            } else {
                Vec::new()
            };
            let mine = ctx.scatter(data, 0);
            let r = ctx.rank() as u64;
            assert_eq!(mine, vec![2 * r, 2 * r + 1]);
        });
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let m = Machine::new(MachineConfig::delta(4));
        let report = m.run(|ctx| {
            if ctx.rank() == 2 {
                ctx.charge_seconds(5.0);
            }
            ctx.barrier();
        });
        for p in report.per_proc() {
            assert!(
                p.finish_time >= 5.0,
                "rank {} finished at {}",
                p.rank,
                p.finish_time
            );
        }
    }

    #[test]
    fn reduce_max_and_min() {
        let m = Machine::new(MachineConfig::free(5));
        m.run(|ctx| {
            let v = vec![ctx.rank() as f64];
            let mx = ctx.allreduce(&v, ReduceOp::Max);
            let mn = ctx.allreduce(&v, ReduceOp::Min);
            assert_eq!(mx, vec![4.0]);
            assert_eq!(mn, vec![0.0]);
        });
    }

    #[test]
    fn io_charges_show_up_in_report() {
        let m = Machine::new(MachineConfig::delta(2));
        let report = m.run(|ctx| {
            ctx.charge_io_read(10, 1 << 20);
            ctx.charge_io_write(2, 1 << 10);
        });
        let totals = report.totals();
        assert_eq!(totals.io_read_requests, 20);
        assert_eq!(totals.io_write_requests, 4);
        assert_eq!(report.io_requests_per_proc(), 12);
        assert!(report.elapsed() > 0.0);
    }

    #[test]
    fn message_faults_delay_but_never_corrupt() {
        let body = |ctx: &ProcCtx| {
            if ctx.rank() == 0 {
                ctx.send(1, Tag(3), Payload::F64(vec![1.5; 64]));
                Vec::new()
            } else {
                ctx.recv(0, Tag(3)).unwrap().into_f64()
            }
        };
        let clean = Machine::new(MachineConfig::delta(2));
        let (clean_rep, clean_vals) = clean.run_with(body);
        let chaotic = Machine::new(MachineConfig::delta(2))
            .with_fault_injection(crate::fault::FaultConfig::chaos(11));
        let (rep, vals) = chaotic.run_with(body);
        // Payloads are identical; only timing and fault counters differ.
        assert_eq!(vals, clean_vals);
        let t = rep.totals();
        assert_eq!(t.msgs_sent, clean_rep.totals().msgs_sent);
        assert_eq!(t.bytes_sent, clean_rep.totals().bytes_sent);
        // Same seed => bit-identical rerun.
        let (rep2, vals2) = Machine::new(MachineConfig::delta(2))
            .with_fault_injection(crate::fault::FaultConfig::chaos(11))
            .run_with(body);
        assert_eq!(vals2, vals);
        assert_eq!(rep2.per_proc(), rep.per_proc());
        assert_eq!(rep2.elapsed(), rep.elapsed());
    }

    #[test]
    fn dropped_messages_charge_retries_into_time() {
        let cfg = crate::fault::FaultConfig {
            msg_drop: 1.0, // every attempt up to the bound is dropped
            ..crate::fault::FaultConfig::quiet(5)
        };
        let m = Machine::new(MachineConfig::delta(2)).with_fault_injection(cfg);
        let rep = m.run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, Tag(1), Payload::U64(vec![7; 16]));
            } else {
                assert_eq!(ctx.recv(0, Tag(1)).unwrap().into_u64(), vec![7; 16]);
            }
        });
        let t = rep.totals();
        assert_eq!(t.msgs_sent, 1, "logical count unchanged");
        assert_eq!(t.msg_retries, 7, "max_attempts-1 retransmissions");
        assert!(t.faults_injected >= 7);
        assert!(t.time_faults > 0.0);
        // The clean run's send costs one message time; this one cost 8.
        let clean = Machine::new(MachineConfig::delta(2)).run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, Tag(1), Payload::U64(vec![7; 16]));
            } else {
                let _ = ctx.recv(0, Tag(1)).unwrap();
            }
        });
        assert!(rep.elapsed() > clean.elapsed());
    }

    #[test]
    fn fault_free_machine_is_bit_identical_with_quiet_injector() {
        let body = |ctx: &ProcCtx| {
            ctx.charge_flops(1000);
            let v = vec![ctx.rank() as f64; 32];
            let s = ctx.allreduce_sum_f64(&v);
            ctx.barrier();
            s
        };
        let (rep_a, vals_a) = Machine::new(MachineConfig::delta(4)).run_with(body);
        let (rep_b, vals_b) = Machine::new(MachineConfig::delta(4))
            .with_fault_injection(crate::fault::FaultConfig::quiet(99))
            .run_with(body);
        assert_eq!(vals_a, vals_b);
        assert_eq!(rep_a.per_proc(), rep_b.per_proc());
        assert_eq!(rep_a.elapsed(), rep_b.elapsed());
    }

    #[test]
    fn kill_tears_down_hung_run_without_poisoning_pool() {
        if !crate::coro::supported() {
            return;
        }
        let pool = WorkerPool::new(2);
        let m = Machine::new(MachineConfig::free(2));
        // Mutual recv: both ranks park forever. Whether our kill or the
        // deadlock detector reaps them first, `kill` must return promptly
        // and the pool must stay healthy.
        let handle = m.start_on(&pool, |ctx| {
            let peer = 1 - ctx.rank();
            let _ = ctx.recv(peer, Tag(42));
        });
        let death = handle.kill();
        assert!(matches!(death, RunDeath::Killed { .. }));
        let (_, vals) = m.run_on(&pool, |ctx| ctx.rank());
        assert_eq!(vals, vec![0, 1]);
    }

    #[test]
    fn wait_outcome_reports_deadlock_instead_of_panicking() {
        if !crate::coro::supported() {
            return;
        }
        let pool = WorkerPool::new(2);
        let m = Machine::new(MachineConfig::free(2));
        let handle = m.start_on(&pool, |ctx| {
            let peer = 1 - ctx.rank();
            let _ = ctx.recv(peer, Tag(42));
        });
        match handle.wait_outcome() {
            Err(RunDeath::Deadlock { ranks }) => assert_eq!(ranks, vec![0, 1]),
            other => panic!("expected deadlock, got {:?}", other.err()),
        }
        // A clean run on the same pool comes back Ok.
        let handle = m.start_on(&pool, |ctx| ctx.rank() * 10);
        let (_, vals) = handle.wait_outcome().expect("clean run");
        assert_eq!(vals, vec![0, 10]);
    }

    #[test]
    fn simulated_time_is_deterministic() {
        let run = || {
            let m = Machine::new(MachineConfig::delta(8));
            m.run(|ctx| {
                ctx.charge_flops((ctx.rank() as u64 + 1) * 12345);
                let v = vec![ctx.rank() as f64; 100];
                let _ = ctx.allreduce_sum_f64(&v);
                ctx.barrier();
            })
            .elapsed()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "simulated time must not depend on scheduling");
    }
}
