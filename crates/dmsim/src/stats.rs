//! Per-processor operation counters.
//!
//! The paper's evaluation reports two I/O metrics (requests and bytes per
//! processor) plus elapsed time; we additionally track compute and
//! communication so the time breakdown in experiment reports can show where
//! a translation scheme spends its life.

use std::cell::Cell;

use serde::{Deserialize, Serialize};

use crate::costmodel::IoCost;

/// Mutable counters owned by one simulated processor.
///
/// `!Sync` by construction (`Cell` fields): exactly one thread updates it.
#[derive(Debug, Default)]
pub struct ProcStats {
    flops: Cell<u64>,
    msgs_sent: Cell<u64>,
    bytes_sent: Cell<u64>,
    msgs_received: Cell<u64>,
    bytes_received: Cell<u64>,
    io_read_requests: Cell<u64>,
    io_bytes_read: Cell<u64>,
    io_write_requests: Cell<u64>,
    io_bytes_written: Cell<u64>,
    cache_hits: Cell<u64>,
    cache_hit_bytes: Cell<u64>,
    write_back_requests: Cell<u64>,
    write_back_bytes: Cell<u64>,
    faults_injected: Cell<u64>,
    io_retries: Cell<u64>,
    msg_retries: Cell<u64>,
    time_compute: Cell<f64>,
    time_comm: Cell<f64>,
    time_io: Cell<f64>,
    time_faults: Cell<f64>,
}

impl ProcStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` floating-point operations taking `secs` of model time.
    pub fn record_flops(&self, n: u64, secs: f64) {
        self.flops.set(self.flops.get() + n);
        self.time_compute.set(self.time_compute.get() + secs);
    }

    /// Record an outgoing message.
    pub fn record_send(&self, bytes: u64, secs: f64) {
        self.msgs_sent.set(self.msgs_sent.get() + 1);
        self.bytes_sent.set(self.bytes_sent.get() + bytes);
        self.time_comm.set(self.time_comm.get() + secs);
    }

    /// Record an incoming message; `wait_secs` is time spent blocked.
    pub fn record_recv(&self, bytes: u64, wait_secs: f64) {
        self.msgs_received.set(self.msgs_received.get() + 1);
        self.bytes_received.set(self.bytes_received.get() + bytes);
        self.time_comm.set(self.time_comm.get() + wait_secs);
    }

    /// Record a read request of `bytes` taking `secs`.
    pub fn record_io_read(&self, requests: u64, bytes: u64, secs: f64) {
        self.io_read_requests
            .set(self.io_read_requests.get() + requests);
        self.io_bytes_read.set(self.io_bytes_read.get() + bytes);
        self.time_io.set(self.time_io.get() + secs);
    }

    /// Record a write request of `bytes` taking `secs`.
    pub fn record_io_write(&self, requests: u64, bytes: u64, secs: f64) {
        self.io_write_requests
            .set(self.io_write_requests.get() + requests);
        self.io_bytes_written
            .set(self.io_bytes_written.get() + bytes);
        self.time_io.set(self.time_io.get() + secs);
    }

    /// Record `runs` read accesses of `bytes` served from the slab cache
    /// (no disk request, no simulated time).
    pub fn record_cache_hit(&self, runs: u64, bytes: u64) {
        self.cache_hits.set(self.cache_hits.get() + runs);
        self.cache_hit_bytes.set(self.cache_hit_bytes.get() + bytes);
    }

    /// Record a dirty-slab write-back: counted as an ordinary disk write
    /// *and* in the dedicated write-back counters.
    pub fn record_io_write_back(&self, requests: u64, bytes: u64, secs: f64) {
        self.record_io_write(requests, bytes, secs);
        self.write_back_requests
            .set(self.write_back_requests.get() + requests);
        self.write_back_bytes
            .set(self.write_back_bytes.get() + bytes);
    }

    /// Record injected disk faults and their recovery: `faults` injected
    /// events, `retries` re-issued requests, `secs` of backoff + retry time.
    /// Recovery requests are *not* added to the logical I/O counters — those
    /// keep meaning "requests the translation scheme asked for".
    pub fn record_io_faults(&self, faults: u64, retries: u64, secs: f64) {
        self.faults_injected
            .set(self.faults_injected.get() + faults);
        self.io_retries.set(self.io_retries.get() + retries);
        self.time_faults.set(self.time_faults.get() + secs);
    }

    /// Record one dropped message re-transmission taking `secs` (transfer
    /// plus backoff). The logical `msgs_sent` counter is untouched.
    pub fn record_msg_retry(&self, secs: f64) {
        self.faults_injected.set(self.faults_injected.get() + 1);
        self.msg_retries.set(self.msg_retries.get() + 1);
        self.time_faults.set(self.time_faults.get() + secs);
    }

    /// Record one delayed message (extra in-flight latency; charged to the
    /// receiver's wait when it syncs to the later arrival).
    pub fn record_msg_delay(&self) {
        self.faults_injected.set(self.faults_injected.get() + 1);
    }

    /// Immutable copy of the current counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            flops: self.flops.get(),
            msgs_sent: self.msgs_sent.get(),
            bytes_sent: self.bytes_sent.get(),
            msgs_received: self.msgs_received.get(),
            bytes_received: self.bytes_received.get(),
            io_read_requests: self.io_read_requests.get(),
            io_bytes_read: self.io_bytes_read.get(),
            io_write_requests: self.io_write_requests.get(),
            io_bytes_written: self.io_bytes_written.get(),
            cache_hits: self.cache_hits.get(),
            cache_hit_bytes: self.cache_hit_bytes.get(),
            write_back_requests: self.write_back_requests.get(),
            write_back_bytes: self.write_back_bytes.get(),
            faults_injected: self.faults_injected.get(),
            io_retries: self.io_retries.get(),
            msg_retries: self.msg_retries.get(),
            time_compute: self.time_compute.get(),
            time_comm: self.time_comm.get(),
            time_io: self.time_io.get(),
            time_faults: self.time_faults.get(),
        }
    }
}

/// Frozen counters, safe to ship across threads and serialize into reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Floating point operations executed.
    pub flops: u64,
    /// Point-to-point messages sent.
    pub msgs_sent: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Point-to-point messages received.
    pub msgs_received: u64,
    /// Payload bytes received.
    pub bytes_received: u64,
    /// Disk read requests issued.
    pub io_read_requests: u64,
    /// Bytes read from disk.
    pub io_bytes_read: u64,
    /// Disk write requests issued.
    pub io_write_requests: u64,
    /// Bytes written to disk.
    pub io_bytes_written: u64,
    /// Read accesses served from the slab cache (no disk request).
    pub cache_hits: u64,
    /// Bytes served from the slab cache.
    pub cache_hit_bytes: u64,
    /// Dirty-slab write-backs; also counted in `io_write_requests`.
    pub write_back_requests: u64,
    /// Bytes written back from dirty slabs; also in `io_bytes_written`.
    pub write_back_bytes: u64,
    /// Faults injected by the deterministic chaos harness (all kinds).
    pub faults_injected: u64,
    /// Disk requests re-issued by the retry policy; not in `io_requests()`.
    pub io_retries: u64,
    /// Message re-transmissions after injected drops; not in `msgs_sent`.
    pub msg_retries: u64,
    /// Modeled seconds spent computing.
    pub time_compute: f64,
    /// Modeled seconds spent in communication (send + blocked receive).
    pub time_comm: f64,
    /// Modeled seconds spent in disk I/O.
    pub time_io: f64,
    /// Modeled seconds spent recovering from injected faults (retries,
    /// backoff, latency spikes, re-transmissions).
    pub time_faults: f64,
}

impl StatsSnapshot {
    /// A snapshot carrying only the chaos counters — the shape the workload
    /// observatory accumulates when it aggregates per-job fault totals on a
    /// sampling cadence (everything else stays zero so [`delta`] and
    /// [`merge`] compose cleanly).
    ///
    /// [`delta`]: StatsSnapshot::delta
    /// [`merge`]: StatsSnapshot::merge
    pub fn fault_counts(faults_injected: u64, io_retries: u64, msg_retries: u64) -> StatsSnapshot {
        StatsSnapshot {
            faults_injected,
            io_retries,
            msg_retries,
            ..StatsSnapshot::default()
        }
    }

    /// Total I/O requests (reads + writes) — the paper's first metric.
    pub fn io_requests(&self) -> u64 {
        self.io_read_requests + self.io_write_requests
    }

    /// Total bytes moved to/from disk — the paper's second metric.
    pub fn io_bytes(&self) -> u64 {
        self.io_bytes_read + self.io_bytes_written
    }

    /// The combined I/O cost in the estimator's units.
    pub fn io_cost(&self) -> IoCost {
        IoCost {
            requests: self.io_requests(),
            bytes: self.io_bytes(),
        }
    }

    /// Element-wise difference `self - before`: the counters accumulated
    /// between two snapshots of the same processor, for per-phase
    /// attribution (`after - before`). Saturates at zero so a stale pair
    /// can't wrap.
    pub fn delta(&self, before: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            flops: self.flops.saturating_sub(before.flops),
            msgs_sent: self.msgs_sent.saturating_sub(before.msgs_sent),
            bytes_sent: self.bytes_sent.saturating_sub(before.bytes_sent),
            msgs_received: self.msgs_received.saturating_sub(before.msgs_received),
            bytes_received: self.bytes_received.saturating_sub(before.bytes_received),
            io_read_requests: self
                .io_read_requests
                .saturating_sub(before.io_read_requests),
            io_bytes_read: self.io_bytes_read.saturating_sub(before.io_bytes_read),
            io_write_requests: self
                .io_write_requests
                .saturating_sub(before.io_write_requests),
            io_bytes_written: self
                .io_bytes_written
                .saturating_sub(before.io_bytes_written),
            cache_hits: self.cache_hits.saturating_sub(before.cache_hits),
            cache_hit_bytes: self.cache_hit_bytes.saturating_sub(before.cache_hit_bytes),
            write_back_requests: self
                .write_back_requests
                .saturating_sub(before.write_back_requests),
            write_back_bytes: self
                .write_back_bytes
                .saturating_sub(before.write_back_bytes),
            faults_injected: self.faults_injected.saturating_sub(before.faults_injected),
            io_retries: self.io_retries.saturating_sub(before.io_retries),
            msg_retries: self.msg_retries.saturating_sub(before.msg_retries),
            time_compute: self.time_compute - before.time_compute,
            time_comm: self.time_comm - before.time_comm,
            time_io: self.time_io - before.time_io,
            time_faults: self.time_faults - before.time_faults,
        }
    }

    /// Element-wise sum, used to aggregate across processors.
    pub fn merge(&self, other: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            flops: self.flops + other.flops,
            msgs_sent: self.msgs_sent + other.msgs_sent,
            bytes_sent: self.bytes_sent + other.bytes_sent,
            msgs_received: self.msgs_received + other.msgs_received,
            bytes_received: self.bytes_received + other.bytes_received,
            io_read_requests: self.io_read_requests + other.io_read_requests,
            io_bytes_read: self.io_bytes_read + other.io_bytes_read,
            io_write_requests: self.io_write_requests + other.io_write_requests,
            io_bytes_written: self.io_bytes_written + other.io_bytes_written,
            cache_hits: self.cache_hits + other.cache_hits,
            cache_hit_bytes: self.cache_hit_bytes + other.cache_hit_bytes,
            write_back_requests: self.write_back_requests + other.write_back_requests,
            write_back_bytes: self.write_back_bytes + other.write_back_bytes,
            faults_injected: self.faults_injected + other.faults_injected,
            io_retries: self.io_retries + other.io_retries,
            msg_retries: self.msg_retries + other.msg_retries,
            time_compute: self.time_compute + other.time_compute,
            time_comm: self.time_comm + other.time_comm,
            time_io: self.time_io + other.time_io,
            time_faults: self.time_faults + other.time_faults,
        }
    }
}

impl std::ops::Sub for StatsSnapshot {
    type Output = StatsSnapshot;

    /// `after - before`, see [`StatsSnapshot::delta`].
    fn sub(self, before: StatsSnapshot) -> StatsSnapshot {
        self.delta(&before)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_is_inverse_of_accumulation() {
        let s = ProcStats::new();
        s.record_io_read(2, 4096, 0.1);
        let before = s.snapshot();
        s.record_io_read(3, 100, 0.2);
        s.record_send(64, 0.01);
        s.record_flops(10, 1.0);
        let d = s.snapshot() - before;
        assert_eq!(d.io_read_requests, 3);
        assert_eq!(d.io_bytes_read, 100);
        assert_eq!(d.msgs_sent, 1);
        assert_eq!(d.flops, 10);
        assert!((d.time_io - 0.2).abs() < 1e-12);
        assert!((d.time_compute - 1.0).abs() < 1e-12);
        // delta then merge round-trips.
        let back = before.merge(&d);
        assert_eq!(back, s.snapshot());
    }

    #[test]
    fn delta_boundary_cases() {
        // Empty vs empty: identically zero.
        let zero = StatsSnapshot::default();
        assert_eq!(zero.delta(&zero), zero);
        // Single-sample: delta against empty is the snapshot itself, and
        // delta against itself is zero.
        let one = StatsSnapshot::fault_counts(1, 2, 3);
        assert_eq!(one.delta(&zero), one);
        assert_eq!(one.delta(&one), zero);
        // Stale pair (before > after): u64 counters saturate at zero
        // instead of wrapping to ~2^64.
        let big = StatsSnapshot::fault_counts(u64::MAX, u64::MAX, 10);
        let small = StatsSnapshot::fault_counts(5, 0, 10);
        let d = small.delta(&big);
        assert_eq!(d.faults_injected, 0);
        assert_eq!(d.io_retries, 0);
        assert_eq!(d.msg_retries, 0);
        // Saturated counters still delta correctly from a nonzero base.
        let d = big.delta(&small);
        assert_eq!(d.faults_injected, u64::MAX - 5);
        assert_eq!(d.io_retries, u64::MAX);
        assert_eq!(d.msg_retries, 0);
    }

    #[test]
    fn fault_counts_carries_only_chaos_counters() {
        let s = StatsSnapshot::fault_counts(7, 8, 9);
        assert_eq!(s.faults_injected, 7);
        assert_eq!(s.io_retries, 8);
        assert_eq!(s.msg_retries, 9);
        // Everything else is zero, so merging into a real snapshot only
        // moves the chaos counters.
        assert_eq!(s.io_requests(), 0);
        assert_eq!(s.flops, 0);
        assert_eq!(s.time_faults, 0.0);
        let m = s.merge(&StatsSnapshot::fault_counts(1, 1, 1));
        assert_eq!((m.faults_injected, m.io_retries, m.msg_retries), (8, 9, 10));
    }

    #[test]
    fn counters_accumulate() {
        let s = ProcStats::new();
        s.record_flops(100, 1.0);
        s.record_flops(50, 0.5);
        s.record_send(64, 0.01);
        s.record_recv(64, 0.02);
        s.record_io_read(2, 4096, 0.1);
        s.record_io_write(1, 1024, 0.05);
        let snap = s.snapshot();
        assert_eq!(snap.flops, 150);
        assert_eq!(snap.msgs_sent, 1);
        assert_eq!(snap.bytes_sent, 64);
        assert_eq!(snap.io_requests(), 3);
        assert_eq!(snap.io_bytes(), 5120);
        assert!((snap.time_compute - 1.5).abs() < 1e-12);
        assert!((snap.time_io - 0.15).abs() < 1e-12);
    }

    #[test]
    fn cache_counters_are_tracked_separately() {
        let s = ProcStats::new();
        s.record_cache_hit(3, 300);
        s.record_io_write_back(2, 200, 0.1);
        let snap = s.snapshot();
        assert_eq!(snap.cache_hits, 3);
        assert_eq!(snap.cache_hit_bytes, 300);
        assert_eq!(snap.write_back_requests, 2);
        assert_eq!(snap.write_back_bytes, 200);
        // Write-backs are real disk writes too.
        assert_eq!(snap.io_write_requests, 2);
        assert_eq!(snap.io_bytes_written, 200);
        // Hits cost no requests and no time.
        assert_eq!(snap.io_read_requests, 0);
        assert!((snap.time_io - 0.1).abs() < 1e-12);
        let merged = snap.merge(&snap);
        assert_eq!(merged.cache_hits, 6);
        assert_eq!(merged.write_back_bytes, 400);
    }

    #[test]
    fn fault_counters_stay_out_of_logical_metrics() {
        let s = ProcStats::new();
        s.record_io_read(1, 100, 0.1);
        s.record_io_faults(2, 2, 0.3);
        s.record_msg_retry(0.05);
        s.record_msg_delay();
        let snap = s.snapshot();
        assert_eq!(snap.faults_injected, 4);
        assert_eq!(snap.io_retries, 2);
        assert_eq!(snap.msg_retries, 1);
        // Logical metrics unchanged by recovery work.
        assert_eq!(snap.io_requests(), 1);
        assert_eq!(snap.io_bytes(), 100);
        assert_eq!(snap.msgs_sent, 0);
        assert!((snap.time_faults - 0.35).abs() < 1e-12);
        assert!((snap.time_io - 0.1).abs() < 1e-12);
        let m = snap.merge(&snap);
        assert_eq!(m.faults_injected, 8);
        assert_eq!(m.io_retries, 4);
    }

    #[test]
    fn merge_sums_fields() {
        let a = StatsSnapshot {
            flops: 10,
            io_read_requests: 1,
            ..StatsSnapshot::default()
        };
        let b = StatsSnapshot {
            flops: 20,
            io_write_requests: 2,
            ..StatsSnapshot::default()
        };
        let c = a.merge(&b);
        assert_eq!(c.flops, 30);
        assert_eq!(c.io_requests(), 3);
    }

    #[test]
    fn io_cost_mirrors_metrics() {
        let s = StatsSnapshot {
            io_read_requests: 5,
            io_bytes_read: 100,
            io_write_requests: 3,
            io_bytes_written: 28,
            ..StatsSnapshot::default()
        };
        let c = s.io_cost();
        assert_eq!(c.requests, 8);
        assert_eq!(c.bytes, 128);
    }
}
