//! Stackful coroutines for the pooled execution engine.
//!
//! A simulated rank under [`crate::machine::Engine::Pool`] is a *coroutine*:
//! an SPMD closure running on its own heap-allocated stack that can suspend
//! itself at a clock-advance point (a blocking receive, a collective step,
//! a disk wait) and hand its continuation back to the worker that resumed
//! it. The worker pool in [`crate::pool`] multiplexes thousands of such
//! rank-coroutines onto a handful of OS threads.
//!
//! The context switch is ~30 instructions of architecture-specific assembly
//! (x86-64 SysV and AArch64 AAPCS64): push the callee-saved registers, swap
//! stack pointers, pop, return. No syscalls (unlike `swapcontext`, which
//! saves the signal mask on every switch) and no allocation on the switch
//! path. Stacks are allocated lazily on first resume and sized generously
//! (default 2 MiB, matching `std::thread`'s default); untouched pages cost
//! no resident memory, which is what keeps per-rank memory flat at
//! thousand-rank scale.
//!
//! Safety model:
//! * a coroutine is resumed by at most one worker at a time (`&mut self`),
//!   and a suspended coroutine's stack is quiescent — workers only observe
//!   it through the [`ControlSlot`] written before the switch;
//! * panics never unwind across the assembly frames: the pool wraps rank
//!   bodies in `catch_unwind`, and [`coro_main`] aborts as a last resort;
//! * dropping a *suspended* coroutine frees its stack without running the
//!   destructors of the frames on it (they leak). The pool only does this
//!   on the fatal simulated-deadlock path, where the process is panicking
//!   with diagnostics anyway.

use std::cell::Cell;
use std::sync::OnceLock;

/// Why a coroutine suspended itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum YieldReason {
    /// Blocked at a virtual-time wait (empty mailbox): park until a peer's
    /// send or exit wakes the task.
    Blocked,
    /// Cooperative yield at a clock-advance point (disk wait): the task is
    /// still runnable, re-queue it at its new virtual-time key.
    Coop,
}

/// Outcome of one [`Coro::resume`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CoroStatus {
    /// The coroutine suspended; `vtime_bits` is its virtual clock (as
    /// monotone `f64::to_bits`) at the suspension point.
    Yielded(YieldReason, u64),
    /// The closure ran to completion; the stack has been freed.
    Finished,
}

// The two assembly entry points. `ooc_coro_switch(save, restore)` pushes the
// callee-saved registers, stores the current stack pointer to `*save`, loads
// `restore` as the new stack pointer, pops and returns on the new stack.
// `ooc_coro_bootstrap` is the first "return address" of a fresh coroutine:
// it moves the bootstrap pointer and entry function (planted in two saved-
// register slots) into place and calls the entry, which must never return.
extern "C" {
    fn ooc_coro_switch(save: *mut *mut u8, restore: *mut u8);
    fn ooc_coro_bootstrap();
}

#[cfg(not(target_vendor = "apple"))]
macro_rules! asm_name {
    ($n:literal) => {
        $n
    };
}
#[cfg(target_vendor = "apple")]
macro_rules! asm_name {
    ($n:literal) => {
        concat!("_", $n)
    };
}

// x86-64 SysV: callee-saved are rbx, rbp, r12-r15 (no callee-saved SSE
// state). Saved-frame layout ascending from the saved rsp:
//   [r15][r14][r13][r12][rbx][rbp][return address]
// A fresh coroutine plants the bootstrap data pointer in the r12 slot, the
// Rust entry address in the r13 slot, and `ooc_coro_bootstrap` in the
// return-address slot. The stack top is 16-aligned and the frame is 56
// bytes, so after the pops and the `ret` the bootstrap runs with rsp ≡ 0
// (mod 16); its `call` then gives the entry the ABI-required rsp ≡ 8.
#[cfg(target_arch = "x86_64")]
std::arch::global_asm!(
    ".text",
    concat!(".globl ", asm_name!("ooc_coro_switch")),
    concat!(asm_name!("ooc_coro_switch"), ":"),
    "push rbp",
    "push rbx",
    "push r12",
    "push r13",
    "push r14",
    "push r15",
    "mov [rdi], rsp",
    "mov rsp, rsi",
    "pop r15",
    "pop r14",
    "pop r13",
    "pop r12",
    "pop rbx",
    "pop rbp",
    "ret",
    concat!(".globl ", asm_name!("ooc_coro_bootstrap")),
    concat!(asm_name!("ooc_coro_bootstrap"), ":"),
    "mov rdi, r12",
    "call r13",
    "ud2",
);

// AArch64 AAPCS64: callee-saved are x19-x28, the frame pointer x29, the
// link register x30 and the SIMD registers d8-d15 — a 160-byte frame. A
// fresh coroutine plants the bootstrap data pointer in the x19 slot, the
// Rust entry in the x20 slot and `ooc_coro_bootstrap` in the x30 slot (the
// `ret` target). The stack top is 16-aligned as AAPCS64 requires.
#[cfg(target_arch = "aarch64")]
std::arch::global_asm!(
    ".text",
    concat!(".globl ", asm_name!("ooc_coro_switch")),
    ".p2align 2",
    concat!(asm_name!("ooc_coro_switch"), ":"),
    "sub sp, sp, #160",
    "stp x19, x20, [sp]",
    "stp x21, x22, [sp, #16]",
    "stp x23, x24, [sp, #32]",
    "stp x25, x26, [sp, #48]",
    "stp x27, x28, [sp, #64]",
    "stp x29, x30, [sp, #80]",
    "stp d8, d9, [sp, #96]",
    "stp d10, d11, [sp, #112]",
    "stp d12, d13, [sp, #128]",
    "stp d14, d15, [sp, #144]",
    "mov x9, sp",
    "str x9, [x0]",
    "mov sp, x1",
    "ldp x19, x20, [sp]",
    "ldp x21, x22, [sp, #16]",
    "ldp x23, x24, [sp, #32]",
    "ldp x25, x26, [sp, #48]",
    "ldp x27, x28, [sp, #64]",
    "ldp x29, x30, [sp, #80]",
    "ldp d8, d9, [sp, #96]",
    "ldp d10, d11, [sp, #112]",
    "ldp d12, d13, [sp, #128]",
    "ldp d14, d15, [sp, #144]",
    "add sp, sp, #160",
    "ret",
    concat!(".globl ", asm_name!("ooc_coro_bootstrap")),
    ".p2align 2",
    concat!(asm_name!("ooc_coro_bootstrap"), ":"),
    "mov x0, x19",
    "blr x20",
    "brk #0x1",
);

/// Whether the pooled engine's coroutine substrate is available on this
/// target. On unsupported architectures [`crate::machine::Engine::Pool`]
/// falls back to the threaded engine (which is bitwise-identical anyway).
pub const fn supported() -> bool {
    cfg!(any(target_arch = "x86_64", target_arch = "aarch64"))
}

/// Default coroutine stack size: 2 MiB, the same as `std::thread`'s default
/// on Linux, so rank bodies that ran under the threaded engine fit. Pages
/// are faulted in on first touch, so the resident cost per rank is the few
/// pages a rank actually uses. Override with `OOC_CORO_STACK_BYTES`.
const DEFAULT_STACK_BYTES: usize = 2 << 20;

/// Written at the low end of every stack and checked when the coroutine
/// finishes: a clobbered sentinel means the rank body overflowed its stack.
const STACK_SENTINEL: u64 = 0xdead_51ac_c0de_2026;

pub(crate) fn stack_bytes() -> usize {
    static BYTES: OnceLock<usize> = OnceLock::new();
    *BYTES.get_or_init(|| {
        std::env::var("OOC_CORO_STACK_BYTES")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map(|b| b.clamp(64 << 10, 1 << 30))
            .unwrap_or(DEFAULT_STACK_BYTES)
    })
}

/// Heap memory serving as a coroutine stack.
struct StackMem {
    base: *mut u8,
    layout: std::alloc::Layout,
}

impl StackMem {
    fn new(bytes: usize) -> StackMem {
        let layout = std::alloc::Layout::from_size_align(bytes, 16).expect("stack layout");
        // SAFETY: layout has non-zero size.
        let base = unsafe { std::alloc::alloc(layout) };
        if base.is_null() {
            std::alloc::handle_alloc_error(layout);
        }
        // SAFETY: base points at `bytes` >= 64 KiB of fresh memory.
        unsafe { (base as *mut u64).write(STACK_SENTINEL) };
        StackMem { base, layout }
    }

    /// One past the highest usable byte, aligned down to 16.
    fn top(&self) -> *mut u8 {
        let top = self.base as usize + self.layout.size();
        (top & !15) as *mut u8
    }

    fn sentinel_intact(&self) -> bool {
        // SAFETY: base holds at least a u64.
        unsafe { (self.base as *const u64).read() == STACK_SENTINEL }
    }
}

impl Drop for StackMem {
    fn drop(&mut self) {
        // SAFETY: allocated with exactly this layout.
        unsafe { std::alloc::dealloc(self.base, self.layout) };
    }
}

/// Shared slot through which a coroutine and its resuming worker exchange
/// saved contexts and yield metadata. Boxed so its address is stable even
/// as the owning [`Coro`] moves inside the scheduler's task table.
struct ControlSlot {
    /// Saved context of whoever called `resume` (worker side).
    caller_ctx: Cell<*mut u8>,
    /// Saved context of the suspended coroutine.
    coro_ctx: Cell<*mut u8>,
    reason: Cell<YieldReason>,
    vtime_bits: Cell<u64>,
    finished: Cell<bool>,
}

/// Handle a running coroutine uses to suspend itself. Valid only inside the
/// coroutine's closure, on the coroutine's own stack.
pub(crate) struct Yielder {
    control: *const ControlSlot,
}

impl Yielder {
    fn switch_out(&self, reason: YieldReason, vtime_bits: u64) {
        // SAFETY: control outlives the coroutine (owned, boxed, by `Coro`).
        let c = unsafe { &*self.control };
        c.reason.set(reason);
        c.vtime_bits.set(vtime_bits);
        // SAFETY: caller_ctx was saved by the worker that resumed us and its
        // frame is pinned until the switch lands back there.
        unsafe { ooc_coro_switch(c.coro_ctx.as_ptr(), c.caller_ctx.get()) };
    }

    /// Park: suspend until the scheduler is told to wake this task.
    pub(crate) fn yield_blocked(&self, vtime_bits: u64) {
        self.switch_out(YieldReason::Blocked, vtime_bits);
    }

    /// Cooperative yield: stay runnable, re-queued at `vtime_bits`.
    pub(crate) fn yield_coop(&self, vtime_bits: u64) {
        self.switch_out(YieldReason::Coop, vtime_bits);
    }
}

/// What `ooc_coro_bootstrap` hands to [`coro_main`].
struct Bootstrap {
    closure: Box<dyn FnOnce(&Yielder) + Send + 'static>,
    control: *const ControlSlot,
}

/// First Rust frame of every coroutine. Runs the closure, marks the control
/// slot finished, and switches back to the worker for the last time.
unsafe extern "C" fn coro_main(data: *mut Bootstrap) -> ! {
    // Re-box the bootstrap leaked by `Coro::start`; the closure box drops
    // at the end of the catch scope, freeing its captures on the coroutine
    // stack before the final switch-out.
    let data = unsafe { Box::from_raw(data) };
    let Bootstrap { closure, control } = *data;
    let yielder = Yielder { control };
    // The pool's rank wrapper catches panics itself; this catch is the
    // last line of defense keeping unwinding off the assembly frames.
    let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        closure(&yielder);
    }));
    if unwound.is_err() {
        eprintln!("fatal: panic escaped a rank coroutine's catch_unwind");
        std::process::abort();
    }
    // SAFETY: control outlives the coroutine.
    let c = unsafe { &*control };
    c.finished.set(true);
    unsafe { ooc_coro_switch(c.coro_ctx.as_ptr(), c.caller_ctx.get()) };
    // A finished coroutine is never resumed.
    std::process::abort();
}

enum CoroState {
    /// Closure staged, no stack yet.
    Created(Box<Bootstrap>),
    Suspended,
    Finished,
}

/// A rank coroutine: a closure plus (once started) the stack it runs on.
pub(crate) struct Coro {
    state: CoroState,
    stack: Option<StackMem>,
    control: Box<ControlSlot>,
}

// SAFETY: a Coro is only ever driven through `&mut self` (one worker at a
// time); its closure is `Send`; the stack is plain heap memory with no
// thread affinity, and suspension points never hold references to the
// resuming thread's TLS (suspend/resume are synchronous handoffs).
unsafe impl Send for Coro {}

impl Coro {
    /// Stage `closure` as a coroutine. No stack is allocated until the
    /// first [`Coro::resume`], so a fleet of not-yet-admitted rank tasks
    /// costs a few hundred bytes each.
    pub(crate) fn new(closure: Box<dyn FnOnce(&Yielder) + Send + 'static>) -> Coro {
        assert!(supported(), "coroutines unsupported on this target");
        let control = Box::new(ControlSlot {
            caller_ctx: Cell::new(std::ptr::null_mut()),
            coro_ctx: Cell::new(std::ptr::null_mut()),
            reason: Cell::new(YieldReason::Blocked),
            vtime_bits: Cell::new(0),
            finished: Cell::new(false),
        });
        let bootstrap = Box::new(Bootstrap {
            closure,
            control: &*control,
        });
        Coro {
            state: CoroState::Created(bootstrap),
            stack: None,
            control,
        }
    }

    /// Prepare the initial stack frame so the first switch "returns" into
    /// `ooc_coro_bootstrap` with the bootstrap pointer and `coro_main`
    /// planted in the two saved-register slots the trampoline expects.
    fn start(&mut self, bootstrap: Box<Bootstrap>) {
        let stack = StackMem::new(stack_bytes());
        let top = stack.top() as usize;
        let data = Box::into_raw(bootstrap) as usize;
        let entry = coro_main as *const () as usize;
        let trampoline = ooc_coro_bootstrap as *const () as usize;
        #[cfg(target_arch = "x86_64")]
        let sp = {
            let sp = top - 56;
            let slot = |off: usize| (sp + off) as *mut usize;
            // [r15][r14][r13=entry][r12=data][rbx][rbp][ret=trampoline]
            unsafe {
                slot(0).write(0);
                slot(8).write(0);
                slot(16).write(entry);
                slot(24).write(data);
                slot(32).write(0);
                slot(40).write(0);
                slot(48).write(trampoline);
            }
            sp
        };
        #[cfg(target_arch = "aarch64")]
        let sp = {
            let sp = top - 160;
            let slot = |off: usize| (sp + off) as *mut usize;
            // x19=data @0, x20=entry @8, x29 @80, x30=trampoline @88,
            // everything else zero.
            unsafe {
                for off in (0..160).step_by(8) {
                    slot(off).write(0);
                }
                slot(0).write(data);
                slot(8).write(entry);
                slot(88).write(trampoline);
            }
            sp
        };
        self.control.coro_ctx.set(sp as *mut u8);
        self.stack = Some(stack);
    }

    /// Run the coroutine until it yields or finishes. Must not be called on
    /// a finished coroutine.
    pub(crate) fn resume(&mut self) -> CoroStatus {
        match std::mem::replace(&mut self.state, CoroState::Suspended) {
            CoroState::Created(bootstrap) => self.start(bootstrap),
            CoroState::Suspended => {}
            CoroState::Finished => unreachable!("resumed a finished coroutine"),
        }
        // SAFETY: coro_ctx holds a valid suspended context (freshly staged
        // or saved by the coroutine's last switch-out); our own context is
        // saved into caller_ctx for the coroutine to switch back to.
        unsafe {
            ooc_coro_switch(
                self.control.caller_ctx.as_ptr(),
                self.control.coro_ctx.get(),
            )
        };
        if self.control.finished.get() {
            self.state = CoroState::Finished;
            let stack = self.stack.take().expect("finished coroutine had a stack");
            assert!(
                stack.sentinel_intact(),
                "rank coroutine overflowed its {}-byte stack (set OOC_CORO_STACK_BYTES higher)",
                stack.layout.size()
            );
            CoroStatus::Finished
        } else {
            CoroStatus::Yielded(self.control.reason.get(), self.control.vtime_bits.get())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxed(f: impl FnOnce(&Yielder) + Send + 'static) -> Box<dyn FnOnce(&Yielder) + Send> {
        Box::new(f)
    }

    #[test]
    fn runs_to_completion_without_yielding() {
        let hit = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let h = hit.clone();
        let mut c = Coro::new(boxed(move |_| {
            h.fetch_add(7, std::sync::atomic::Ordering::SeqCst);
        }));
        assert_eq!(c.resume(), CoroStatus::Finished);
        assert_eq!(hit.load(std::sync::atomic::Ordering::SeqCst), 7);
    }

    #[test]
    fn yields_carry_reason_and_vtime() {
        let mut c = Coro::new(boxed(|y| {
            y.yield_blocked(41);
            y.yield_coop(42);
        }));
        assert_eq!(c.resume(), CoroStatus::Yielded(YieldReason::Blocked, 41));
        assert_eq!(c.resume(), CoroStatus::Yielded(YieldReason::Coop, 42));
        assert_eq!(c.resume(), CoroStatus::Finished);
    }

    #[test]
    fn deep_call_chains_and_allocation_survive_switches() {
        fn burn(depth: usize, y: &Yielder) -> u64 {
            let v: Vec<u64> = (0..32).map(|i| i + depth as u64).collect();
            if depth == 0 {
                y.yield_coop(depth as u64);
                v.iter().sum()
            } else {
                y.yield_coop(depth as u64);
                burn(depth - 1, y) + v[0]
            }
        }
        let out = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let o = out.clone();
        let mut c = Coro::new(boxed(move |y| {
            o.store(burn(64, y), std::sync::atomic::Ordering::SeqCst);
        }));
        let mut yields = 0;
        while c.resume() != CoroStatus::Finished {
            yields += 1;
        }
        assert_eq!(yields, 65);
        assert!(out.load(std::sync::atomic::Ordering::SeqCst) > 0);
    }

    #[test]
    fn resume_from_a_different_thread_is_fine() {
        let mut c = Coro::new(boxed(|y| {
            let local: Vec<u64> = (0..1000).collect();
            y.yield_blocked(0);
            assert_eq!(local.iter().sum::<u64>(), 499_500);
        }));
        assert!(matches!(c.resume(), CoroStatus::Yielded(..)));
        let done = std::thread::spawn(move || c.resume()).join().unwrap();
        assert_eq!(done, CoroStatus::Finished);
    }

    #[test]
    fn dropping_an_unstarted_coroutine_drops_the_closure() {
        struct Flag(std::sync::Arc<std::sync::atomic::AtomicBool>);
        impl Drop for Flag {
            fn drop(&mut self) {
                self.0.store(true, std::sync::atomic::Ordering::SeqCst);
            }
        }
        let dropped = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag = Flag(dropped.clone());
        let c = Coro::new(boxed(move |_| {
            let _keep = &flag;
        }));
        drop(c);
        assert!(dropped.load(std::sync::atomic::Ordering::SeqCst));
    }
}
