//! Collectives at rank counts far beyond what the threaded engine can
//! host comfortably: correctness and bit-exact determinism of allreduce
//! and alltoallv on the pooled engine at 257, 1000 and 1024 ranks.
//!
//! 257 and 1000 are deliberately awkward sizes — one past a power of two
//! and a non-power-of-two with a long tail — so the dissemination /
//! recursive-doubling structure inside the collectives takes its uneven
//! paths.

use dmsim::{Engine, Machine, MachineConfig};

/// Run `body` twice on a pooled machine and insist the reports agree bit
/// for bit; return the first run's values.
fn run_twice_identically<T, F>(p: usize, workers: usize, body: F) -> Vec<T>
where
    F: Fn(&dmsim::ProcCtx) -> T + Send + Sync + Copy,
    T: Send + PartialEq + std::fmt::Debug,
{
    let mk = || Machine::new(MachineConfig::free(p).with_engine(Engine::Pool(workers)));
    let (rep_a, vals_a) = mk().run_with(body);
    let (rep_b, vals_b) = mk().run_with(body);
    assert_eq!(
        rep_a.elapsed().to_bits(),
        rep_b.elapsed().to_bits(),
        "elapsed time not bit-identical across repeated pooled runs at p={p}"
    );
    assert_eq!(rep_a.per_proc(), rep_b.per_proc());
    assert_eq!(vals_a, vals_b);
    vals_a
}

fn allreduce_at(p: usize, workers: usize) {
    let sums = run_twice_identically(p, workers, |ctx| {
        let me = ctx.rank() as f64;
        ctx.allreduce_sum_f64(&[me + 1.0, me * 2.0])
    });
    assert_eq!(sums.len(), p);
    let n = p as f64;
    let expect0 = n * (n + 1.0) / 2.0; // sum of (rank+1)
    let expect1 = n * (n - 1.0); // sum of 2*rank
    for (rank, sum) in sums.iter().enumerate() {
        assert_eq!(sum.len(), 2, "rank {rank}");
        assert!(
            (sum[0] - expect0).abs() < 1e-6 * expect0.max(1.0),
            "rank {rank}: got {} want {expect0}",
            sum[0]
        );
        assert!(
            (sum[1] - expect1).abs() < 1e-6 * expect1.max(1.0),
            "rank {rank}: got {} want {expect1}",
            sum[1]
        );
    }
    // Every rank must hold the *same bits*, not merely close values.
    let first = &sums[0];
    for (rank, sum) in sums.iter().enumerate() {
        assert_eq!(
            sum.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            first.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            "rank {rank} disagrees with rank 0 on allreduce bits"
        );
    }
}

#[test]
fn allreduce_at_257_ranks_pooled() {
    allreduce_at(257, 2);
}

#[test]
fn allreduce_at_1000_ranks_pooled() {
    allreduce_at(1000, 4);
}

#[test]
fn alltoallv_at_257_ranks_pooled() {
    let p = 257;
    let got = run_twice_identically(p, 2, |ctx| {
        let me = ctx.rank();
        let p = ctx.nprocs();
        // Rank r sends [r*P + dst] to every dst: a unique word per pair.
        let sends: Vec<Vec<u64>> = (0..p).map(|dst| vec![(me * p + dst) as u64]).collect();
        ctx.alltoallv(sends)
    });
    assert_eq!(got.len(), p);
    for (me, inbox) in got.iter().enumerate() {
        assert_eq!(inbox.len(), p, "rank {me} inbox");
        for (src, block) in inbox.iter().enumerate() {
            assert_eq!(
                block,
                &vec![(src * p + me) as u64],
                "rank {me} block from {src}"
            );
        }
    }
}

/// The headline capacity target: 1024 ranks on one pooled machine, with a
/// barrier so every rank's clock participates, on a machine built through
/// the (formerly O(n^2)) fabric constructor.
#[test]
fn a_1024_rank_machine_is_constructible_and_runs_pooled() {
    let p = 1024;
    let vals = run_twice_identically(p, 4, |ctx| {
        ctx.charge_flops(ctx.rank() as u64 + 1);
        ctx.barrier();
        ctx.rank()
    });
    assert_eq!(vals, (0..p).collect::<Vec<_>>());
}
