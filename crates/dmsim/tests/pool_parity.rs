//! Engine parity: the pooled executor must be a drop-in replacement for the
//! threaded engine — same clocks, same stats, same traces, same fault
//! streams, bit for bit — and invariant in the number of pool workers.

use proptest::prelude::*;

use dmsim::{Engine, FaultConfig, Machine, MachineConfig, ProcCtx, TraceConfig, WorkerPool};

/// A rank body exercising every kind of clock-advance point: compute,
/// point-to-point ring traffic with tag mixing, disk charges with
/// cooperative yields, a collective, and a barrier.
fn workout(ctx: &ProcCtx, work_seed: u64) -> Vec<f64> {
    let p = ctx.nprocs();
    let me = ctx.rank();
    ctx.charge_flops((me as u64 * 7919 + work_seed * 131) % 50_000);
    if p > 1 {
        let next = (me + 1) % p;
        let prev = (me + p - 1) % p;
        // Two tags sent in one order, received in the other: exercises the
        // mailbox's tag-mismatch queuing on both engines.
        ctx.send(next, dmsim::Tag(1), dmsim::Payload::U64(vec![me as u64; 8]));
        ctx.send(next, dmsim::Tag(2), dmsim::Payload::F64(vec![me as f64; 4]));
        let b = ctx.recv(prev, dmsim::Tag(2)).unwrap().into_f64();
        let a = ctx.recv(prev, dmsim::Tag(1)).unwrap().into_u64();
        assert_eq!(a, vec![prev as u64; 8]);
        assert_eq!(b, vec![prev as f64; 4]);
    }
    ctx.charge_io_read(4, 1 << 16);
    ctx.io_yield();
    ctx.charge_io_write(2, 1 << 14);
    ctx.io_yield();
    let v = vec![me as f64 + 1.0, work_seed as f64];
    let sum = ctx.allreduce_sum_f64(&v);
    ctx.barrier();
    sum
}

fn run_config(p: usize, engine: Engine) -> MachineConfig {
    MachineConfig::delta(p)
        .with_trace(TraceConfig::detailed())
        .with_engine(engine)
}

/// Run the workout on `engine` and return everything comparable.
fn observe(p: usize, work_seed: u64, fault_seed: Option<u64>, engine: Engine) -> RunObs {
    let mut machine = Machine::new(run_config(p, engine));
    if let Some(seed) = fault_seed {
        machine = machine.with_fault_injection(FaultConfig::chaos(seed));
    }
    let (mut report, values) = machine.run_with(move |ctx| workout(ctx, work_seed));
    RunObs {
        per_proc: report.per_proc().to_vec(),
        elapsed_bits: report.elapsed().to_bits(),
        trace: report.take_trace(),
        values,
    }
}

#[derive(Debug, PartialEq)]
struct RunObs {
    per_proc: Vec<dmsim::proc::ProcReport>,
    elapsed_bits: u64,
    trace: Option<dmsim::Trace>,
    values: Vec<Vec<f64>>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Pool(1), Pool(2) and Pool(8) all equal the threaded oracle, bitwise,
    /// fault injection included.
    #[test]
    fn pool_size_is_unobservable(
        p in 1usize..13,
        work_seed in 0u64..1000,
        chaos_raw in 0u64..2000,
    ) {
        // Low half of the range means "no fault injection"; high half is a
        // chaos seed. (The in-repo proptest shim has no `option::of`.)
        let chaos = chaos_raw.checked_sub(1000);
        let oracle = observe(p, work_seed, chaos, Engine::Threads);
        for workers in [1usize, 2, 8] {
            let pooled = observe(p, work_seed, chaos, Engine::Pool(workers));
            prop_assert_eq!(
                &pooled, &oracle,
                "Pool({}) diverged from Engine::Threads at p={}", workers, p
            );
        }
    }

    /// Sharing one pool across consecutive runs (the multi-job setup) does
    /// not perturb results either.
    #[test]
    fn shared_pool_reuse_is_unobservable(
        p in 2usize..9,
        work_seed in 0u64..1000,
    ) {
        let oracle = observe(p, work_seed, Some(work_seed), Engine::Threads);
        let pool = WorkerPool::new(2);
        for _ in 0..3 {
            let machine = Machine::new(run_config(p, Engine::Pool(2)))
                .with_fault_injection(FaultConfig::chaos(work_seed));
            let (mut report, values) =
                machine.run_on(&pool, move |ctx| workout(ctx, work_seed));
            let obs = RunObs {
                per_proc: report.per_proc().to_vec(),
                elapsed_bits: report.elapsed().to_bits(),
                trace: report.take_trace(),
                values,
            };
            prop_assert_eq!(&obs, &oracle);
        }
    }
}

/// A panic in a rank body surfaces through `run_with` on the pooled engine
/// the same way it does on the threaded one: lowest-rank panic wins.
#[test]
fn rank_panics_propagate_from_the_pool() {
    for engine in [Engine::Threads, Engine::Pool(2)] {
        let err = std::panic::catch_unwind(|| {
            let machine = Machine::new(MachineConfig::delta(4).with_engine(engine));
            machine.run_with(|ctx| {
                ctx.charge_flops(10 * (4 - ctx.rank() as u64));
                panic!("boom from rank {}", ctx.rank());
            });
        })
        .unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("boom from rank 0"),
            "engine {engine:?}: expected lowest-rank panic, got {msg:?}"
        );
    }
}
