//! Property tests for the collective algorithms: results must equal the
//! serial fold for any processor count, vector length and root, and
//! simulated time must be schedule-independent.

use proptest::prelude::*;

use dmsim::{Machine, MachineConfig, ReduceOp};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn reduce_equals_serial_fold(
        p in 1usize..9,
        len in 0usize..20,
        root_seed in 0usize..16,
        op_pick in 0usize..3,
    ) {
        let root = root_seed % p;
        let op = [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min][op_pick];
        let machine = Machine::new(MachineConfig::free(p));
        machine.run(move |ctx| {
            // Rank r contributes f(r, i); integers keep f64 sums exact.
            let mine: Vec<f64> = (0..len)
                .map(|i| ((ctx.rank() * 31 + i * 7) % 101) as f64)
                .collect();
            let got = ctx.reduce(&mine, op, root);
            if ctx.rank() == root {
                let got = got.expect("root sees result");
                for (i, &g) in got.iter().enumerate() {
                    let all: Vec<f64> = (0..p).map(|r| ((r * 31 + i * 7) % 101) as f64).collect();
                    let expect = match op {
                        ReduceOp::Sum => all.iter().sum::<f64>(),
                        ReduceOp::Max => all.iter().cloned().fold(f64::MIN, f64::max),
                        ReduceOp::Min => all.iter().cloned().fold(f64::MAX, f64::min),
                    };
                    assert_eq!(g, expect, "elem {i}");
                }
            } else {
                assert!(got.is_none());
            }
        });
    }

    #[test]
    fn gather_scatter_roundtrip(p in 1usize..9, chunk in 1usize..8, root_seed in 0usize..16) {
        let root = root_seed % p;
        let machine = Machine::new(MachineConfig::free(p));
        machine.run(move |ctx| {
            let mine: Vec<u64> = (0..chunk).map(|i| (ctx.rank() * 100 + i) as u64).collect();
            let gathered = ctx.gather(&mine, root);
            // Root scatters the concatenation back; everyone must get their
            // own chunk again.
            let data = if ctx.rank() == root {
                gathered.expect("root gathered")
            } else {
                Vec::new()
            };
            let back = ctx.scatter(data, root);
            assert_eq!(back, mine, "rank {}", ctx.rank());
        });
    }

    #[test]
    fn broadcast_reaches_everyone(p in 1usize..10, len in 0usize..16, root_seed in 0usize..16) {
        let root = root_seed % p;
        let machine = Machine::new(MachineConfig::delta(p));
        let report = machine.run(move |ctx| {
            let data = if ctx.rank() == root {
                (0..len as u64).map(|i| i * 3 + 1).collect()
            } else {
                Vec::new()
            };
            let got = ctx.broadcast(data, root);
            assert_eq!(got, (0..len as u64).map(|i| i * 3 + 1).collect::<Vec<_>>());
        });
        // Tree edges: exactly p-1 payload-carrying messages in total.
        prop_assert_eq!(report.totals().msgs_sent, (p - 1) as u64);
    }

    #[test]
    fn alltoallv_transposes_the_send_matrix(p in 1usize..9, base in 0usize..6) {
        let machine = Machine::new(MachineConfig::free(p));
        machine.run(move |ctx| {
            let me = ctx.rank();
            // Variable lengths (including empty) so the exchange cannot rely
            // on uniform chunking; contents encode (source, destination).
            let sends: Vec<Vec<u64>> = (0..p)
                .map(|j| {
                    (0..base + (me + j) % 3)
                        .map(|k| (me * 1000 + j * 10 + k) as u64)
                        .collect()
                })
                .collect();
            let got = ctx.alltoallv(sends);
            assert_eq!(got.len(), p);
            for (i, buf) in got.iter().enumerate() {
                let expect: Vec<u64> = (0..base + (i + me) % 3)
                    .map(|k| (i * 1000 + me * 10 + k) as u64)
                    .collect();
                assert_eq!(buf, &expect, "rank {me}: wrong buffer from {i}");
            }
        });
    }

    #[test]
    fn simulated_time_is_schedule_independent(p in 2usize..9, work_seed in 0u64..50) {
        let run_once = || {
            let machine = Machine::new(MachineConfig::delta(p));
            machine.run(move |ctx| {
                ctx.charge_flops((ctx.rank() as u64 * 7919 + work_seed * 131) % 100_000);
                let v = vec![ctx.rank() as f64; 64];
                let _ = ctx.allreduce_sum_f64(&v);
                ctx.barrier();
            })
            .elapsed()
        };
        let a = run_once();
        let b = run_once();
        prop_assert_eq!(a, b);
    }
}
