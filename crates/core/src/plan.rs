//! Executable plans: the compiler's output.
//!
//! An [`ExecPlan`] carries every decision the out-of-core phase made — slab
//! orientation, slab thicknesses, file layouts, ghost widths — in a form the
//! executor (`noderun`) interprets directly. Each plan also knows how to
//! describe itself as a symbolic loop nest ([`crate::ir::NestNode`], built in
//! [`crate::nodegen`]) which is what the cost estimator analyzes and the
//! pretty printer renders.

use serde::{Deserialize, Serialize};

use ooc_array::{ArrayDesc, Section};

use crate::hir::ElwExpr;

/// Slab orientation for the GAXPY translation — the choice at the heart of
/// the paper's §4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SlabStrategy {
    /// Figure 9: stripmine A along its columns; the straightforward
    /// extension of in-core compilation. A streams from disk once per
    /// column of C.
    ColumnSlab,
    /// Figure 12: reorganize A (and C) row-major on disk and stripmine A
    /// along rows; A streams from disk exactly once.
    RowSlab,
}

impl SlabStrategy {
    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            SlabStrategy::ColumnSlab => "column slab",
            SlabStrategy::RowSlab => "row slab",
        }
    }
}

/// Fully parameterized out-of-core GAXPY matrix multiplication.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaxpyPlan {
    /// Chosen slab orientation.
    pub strategy: SlabStrategy,
    /// A — column-block distributed; layout column-major for
    /// [`SlabStrategy::ColumnSlab`], row-major (reorganized) for
    /// [`SlabStrategy::RowSlab`].
    pub a: ArrayDesc,
    /// B — row-block distributed, always column-major (its column slabs are
    /// contiguous either way).
    pub b: ArrayDesc,
    /// C — column-block distributed; layout follows A's.
    pub c: ArrayDesc,
    /// Matrix order.
    pub n: usize,
    /// Processors.
    pub nprocs: usize,
    /// Slab thickness of A along its slab dimension: columns of the OCLA
    /// for the column version, rows for the row version.
    pub slab_a: usize,
    /// Columns of B's OCLA per slab.
    pub slab_b: usize,
    /// Columns of C buffered per write in the column version (the row
    /// version writes one row slab of C per A slab).
    pub slab_c: usize,
}

impl GaxpyPlan {
    /// Local columns per processor (`n / p`, block distribution).
    pub fn local_cols(&self) -> usize {
        self.n.div_ceil(self.nprocs)
    }

    /// Number of slabs of A per processor.
    pub fn num_slabs_a(&self) -> usize {
        let extent = match self.strategy {
            SlabStrategy::ColumnSlab => self.local_cols(),
            SlabStrategy::RowSlab => self.n,
        };
        extent.div_ceil(self.slab_a)
    }

    /// Number of slabs of B per processor.
    pub fn num_slabs_b(&self) -> usize {
        self.n.div_ceil(self.slab_b)
    }

    /// Elements of one A slab.
    pub fn slab_a_elems(&self) -> usize {
        match self.strategy {
            SlabStrategy::ColumnSlab => self.n * self.slab_a,
            SlabStrategy::RowSlab => self.slab_a * self.local_cols(),
        }
    }

    /// Elements of one B slab.
    pub fn slab_b_elems(&self) -> usize {
        self.local_cols() * self.slab_b
    }

    /// Peak in-core elements the plan needs (A slab + B slab + temporary +
    /// C buffer) — what the memory allocator budgets.
    pub fn memory_elems(&self) -> usize {
        let temp = match self.strategy {
            SlabStrategy::ColumnSlab => self.n,
            SlabStrategy::RowSlab => self.slab_a,
        };
        let cbuf = match self.strategy {
            SlabStrategy::ColumnSlab => self.n * self.slab_c,
            SlabStrategy::RowSlab => self.slab_a * self.local_cols(),
        };
        self.slab_a_elems() + self.slab_b_elems() + temp + cbuf
    }

    /// The paper's slab ratio for A: slab elements / OCLA elements.
    pub fn slab_ratio_a(&self) -> f64 {
        self.slab_a_elems() as f64 / (self.n * self.local_cols()) as f64
    }
}

/// Ghost-cell exchange requirement along one dimension (from communication
/// analysis of an elementwise statement).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GhostSpec {
    /// Array dimension the exchange runs along (the distributed one).
    pub dim: usize,
    /// Strip width received from the lower neighbor.
    pub lo_width: usize,
    /// Strip width received from the upper neighbor.
    pub hi_width: usize,
}

/// A distribution remap the executor performs before an elementwise
/// statement: `src` (the declared array) is redistributed into `tmp`
/// (same name, fresh id, the lhs's distribution) so the statement's
/// owner-computes translation applies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RemapSpec {
    /// The declared array in its original distribution.
    pub src: ArrayDesc,
    /// The temporary, distributed like the statement's lhs.
    pub tmp: ArrayDesc,
    /// Access method servicing the redistribution (cost-selected by the
    /// compiler, overridable at run time).
    pub method: pario::IoMethod,
}

/// Stripmined elementwise forall.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElwPlan {
    /// Redistributions inserted before the statement (mixed-distribution
    /// right-hand sides).
    pub pre_remaps: Vec<RemapSpec>,
    /// Assigned array descriptor.
    pub lhs: ArrayDesc,
    /// Right-hand side arrays in reference order (deduplicated).
    pub rhs_arrays: Vec<ArrayDesc>,
    /// The expression over those arrays.
    pub expr: ElwExpr,
    /// Global iteration region (lhs index space).
    pub region: Section,
    /// Dimension the local iteration space is stripmined along.
    pub slab_dim: usize,
    /// Slab thickness along `slab_dim`.
    pub slab_thickness: usize,
    /// Ghost exchanges needed before the slab loop (empty when no shift
    /// crosses a processor boundary).
    pub ghosts: Vec<GhostSpec>,
    /// Flops evaluated per point.
    pub flops_per_point: u64,
}

/// Out-of-core transpose `dst = srcᵀ` via slab-wise all-to-all remap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransposePlan {
    /// Source descriptor.
    pub src: ArrayDesc,
    /// Destination descriptor.
    pub dst: ArrayDesc,
    /// Slab thickness along the source's stripmined dimension (its slowest
    /// layout dimension, so reads are contiguous).
    pub slab_thickness: usize,
    /// Access method servicing the remap's file traffic (cost-selected by
    /// the compiler, overridable at run time).
    pub method: pario::IoMethod,
}

/// Out-of-core CSR SpMV `y = A·x`, where the `x(colidx(k))` gather runs
/// through the inspector–executor subsystem ([`ooc_array::irreg`]): the
/// inspector reads the indirection array once and caches an
/// [`ooc_array::IrregSchedule`]; the executor drives the schedule through
/// the chosen access method every iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpmvPlan {
    /// Result vector (block distributed, length `n`).
    pub y: ArrayDesc,
    /// CSR row pointers (block distributed, length `n + 1`).
    pub rowptr: ArrayDesc,
    /// CSR column indices — the indirection array (block, length `nnz`).
    pub colidx: ArrayDesc,
    /// CSR stored values (block distributed, length `nnz`).
    pub vals: ArrayDesc,
    /// Gathered vector (block distributed, length `n`).
    pub x: ArrayDesc,
    /// Matrix order.
    pub n: usize,
    /// Stored nonzeros.
    pub nnz: usize,
    /// Processors.
    pub nprocs: usize,
    /// Access method for the executor's gather of `x`, cost-selected over
    /// the compiler's scattered-index statistics
    /// ([`crate::irreg::scattered_stats`]). The runtime re-selects from the
    /// inspected schedule's real, allreduced statistics unless overridden.
    pub method: pario::IoMethod,
}

/// One compiled statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ExecPlan {
    /// GAXPY matrix multiplication.
    Gaxpy(GaxpyPlan),
    /// Elementwise forall.
    Elementwise(ElwPlan),
    /// Transpose.
    Transpose(TransposePlan),
    /// CSR sparse matrix–vector product (irregular gather). Boxed: the
    /// five descriptors make this variant far larger than the others.
    Spmv(Box<SpmvPlan>),
}

impl ExecPlan {
    /// Every array descriptor the plan touches (for allocation).
    pub fn arrays(&self) -> Vec<&ArrayDesc> {
        match self {
            ExecPlan::Gaxpy(g) => vec![&g.a, &g.b, &g.c],
            ExecPlan::Elementwise(e) => {
                let mut v = vec![&e.lhs];
                v.extend(e.rhs_arrays.iter());
                for r in &e.pre_remaps {
                    v.push(&r.src);
                    v.push(&r.tmp);
                }
                v
            }
            ExecPlan::Transpose(t) => vec![&t.src, &t.dst],
            ExecPlan::Spmv(s) => vec![&s.y, &s.rowptr, &s.colidx, &s.vals, &s.x],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooc_array::{ArrayId, Distribution, FileLayout, Shape};
    use pario::ElemKind;

    fn plan(strategy: SlabStrategy, n: usize, p: usize, sa: usize, sb: usize) -> GaxpyPlan {
        let col = Distribution::column_block(Shape::matrix(n, n), p);
        let row = Distribution::row_block(Shape::matrix(n, n), p);
        let a_layout = match strategy {
            SlabStrategy::ColumnSlab => FileLayout::column_major(2),
            SlabStrategy::RowSlab => FileLayout::row_major(2),
        };
        GaxpyPlan {
            strategy,
            a: ArrayDesc::new(ArrayId(0), "a", ElemKind::F32, col.clone())
                .with_layout(a_layout.clone()),
            b: ArrayDesc::new(ArrayId(1), "b", ElemKind::F32, row),
            c: ArrayDesc::new(ArrayId(2), "c", ElemKind::F32, col).with_layout(a_layout),
            n,
            nprocs: p,
            slab_a: sa,
            slab_b: sb,
            slab_c: sb.min(n / p),
        }
    }

    #[test]
    fn column_version_slab_counts() {
        // 1K arrays, 4 procs, slab ratio 1/4: A OCLA 1024x256, 64-col slabs.
        let g = plan(SlabStrategy::ColumnSlab, 1024, 4, 64, 64);
        assert_eq!(g.local_cols(), 256);
        assert_eq!(g.num_slabs_a(), 4);
        assert_eq!(g.slab_a_elems(), 1024 * 64);
        assert!((g.slab_ratio_a() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn row_version_slab_counts() {
        // Row slabs cut the full 1024 rows.
        let g = plan(SlabStrategy::RowSlab, 1024, 4, 128, 64);
        assert_eq!(g.num_slabs_a(), 8);
        assert_eq!(g.slab_a_elems(), 128 * 256);
        assert_eq!(g.num_slabs_b(), 16);
    }

    #[test]
    fn memory_accounting_is_sum_of_buffers() {
        let g = plan(SlabStrategy::ColumnSlab, 64, 4, 4, 8);
        // A slab 64*4 + B slab 16*8 + temp 64 + C buffer 64*slab_c.
        assert_eq!(g.memory_elems(), 64 * 4 + 16 * 8 + 64 + 64 * g.slab_c);
    }

    #[test]
    fn exec_plan_lists_arrays() {
        let g = plan(SlabStrategy::RowSlab, 64, 4, 8, 8);
        let p = ExecPlan::Gaxpy(g);
        let names: Vec<&str> = p.arrays().iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }
}
