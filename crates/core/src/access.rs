//! Access-pattern analysis (§4.1, Figure 14).
//!
//! "For each array used in the array assignment statement, for each
//! dimension of the out-of-core array: use index variables to analyze
//! access patterns; compute the I/O costs for stripmining using slabs along
//! this dimension." This module enumerates the candidate stripminings; the
//! cost estimator ([`crate::cost`]) scores each candidate's full loop nest
//! and [`crate::reorg`] selects the cheapest.

use serde::{Deserialize, Serialize};

use ooc_array::{ArrayDesc, DimRange, Section, SlabPlan};

use crate::hir::ElwStmt;
use crate::plan::SlabStrategy;

/// How a dimension of an array is traversed by the statement's loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DimTraversal {
    /// The whole extent is needed for every iteration of an enclosing
    /// sequential loop (the temporal-reuse case: stripmining along this
    /// dimension forces refetching).
    ReusedPerIteration {
        /// Number of refetches a slab suffers.
        times: u64,
    },
    /// The dimension is swept exactly once over the statement.
    StreamedOnce,
    /// Only a single index of the dimension is touched per outer iteration
    /// (e.g. the `j` column of B).
    SingleIndex,
}

/// One candidate stripmining of the GAXPY statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaxpyCandidate {
    /// The slab orientation for A (the dominant array).
    pub strategy: SlabStrategy,
    /// Traversal of A's dimensions under this orientation.
    pub a_dims: Vec<DimTraversal>,
    /// Why the orientation behaves the way it does.
    pub rationale: String,
}

/// Enumerate the GAXPY candidates: stripmining A along columns (dimension
/// 1, the naive extension of in-core compilation) versus along rows
/// (dimension 0, which requires reorganizing A's file layout).
pub fn gaxpy_candidates(n: usize) -> Vec<GaxpyCandidate> {
    vec![
        GaxpyCandidate {
            strategy: SlabStrategy::ColumnSlab,
            a_dims: vec![
                DimTraversal::StreamedOnce,
                DimTraversal::ReusedPerIteration { times: n as u64 },
            ],
            rationale: format!(
                "column slabs: every column of C needs all of A's local columns, \
                 so each slab of A is fetched once per result column ({n} times)"
            ),
        },
        GaxpyCandidate {
            strategy: SlabStrategy::RowSlab,
            a_dims: vec![DimTraversal::StreamedOnce, DimTraversal::StreamedOnce],
            rationale: "row slabs: a slab holds subcolumns of every local column, \
                        enough to produce the matching subcolumn of every result \
                        column, so A streams from disk exactly once"
                .to_string(),
        },
    ]
}

/// Score stripmining an elementwise statement along each dimension: the
/// request count for reading one slab of every referenced array (given the
/// arrays' current file layouts), summed, lower is better. Returns
/// `(dim, requests_per_stage)` pairs in dimension order.
pub fn elw_dim_scores(
    stmt: &ElwStmt,
    lhs_desc: &ArrayDesc,
    rhs_descs: &[ArrayDesc],
    rank: usize,
    slab_thickness: usize,
) -> Vec<(usize, u64)> {
    let local = lhs_desc.local_shape(rank);
    let ndims = local.ndims();
    let mut scores = Vec::with_capacity(ndims);
    for d in 0..ndims {
        let plan = SlabPlan::new(
            local.clone(),
            d,
            slab_thickness.max(1).min(local.extent(d).max(1)),
        );
        let slab = plan.slab(0);
        let mut requests = lhs_desc.layout.count_section_runs(&local, &slab);
        let shifts = stmt.max_shift(ndims);
        for rd in rhs_descs {
            // The read section is the slab widened by the ghost width along
            // the slab dimension (clamped to the local extent).
            let r = slab.range(d);
            let lo = r.lo.saturating_sub(shifts[d]);
            let hi = (r.hi + shifts[d]).min(local.extent(d));
            let widened = slab.clone().with_range(d, DimRange::new(lo, hi));
            requests += rd
                .layout
                .count_section_runs(&rd.local_shape(rank), &widened);
        }
        scores.push((d, requests));
    }
    scores
}

/// Best stripmining dimension for an elementwise statement: the one with
/// the fewest requests per stage; ties break toward the highest dimension
/// (whose slabs are contiguous under the default column-major layout).
pub fn best_elw_slab_dim(
    stmt: &ElwStmt,
    lhs_desc: &ArrayDesc,
    rhs_descs: &[ArrayDesc],
    rank: usize,
    slab_thickness: usize,
) -> usize {
    elw_dim_scores(stmt, lhs_desc, rhs_descs, rank, slab_thickness)
        .into_iter()
        .rev()
        .min_by_key(|&(_, req)| req)
        .map(|(d, _)| d)
        .unwrap_or(0)
}

/// Iteration region restricted to a slab (helper shared by the executor and
/// the estimator): intersect the local iteration section with the slab.
pub fn region_in_slab(local_region: &Section, slab: &Section) -> Option<Section> {
    local_region.intersect(slab)
}

/// One row of the Figure 14 analysis: the I/O cost of stripmining one array
/// along one dimension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig14Row {
    /// Array name.
    pub array: String,
    /// Dimension whose slabs are analyzed.
    pub dim: usize,
    /// The slab orientation this corresponds to for the GAXPY statement.
    pub strategy: SlabStrategy,
    /// `T_fetch`: read requests per processor (equations 3/5).
    pub t_fetch: u64,
    /// `T_data`: elements read per processor (equations 4/6).
    pub t_data: u64,
}

/// The paper's Figure 14 algorithm, instantiated for the GAXPY statement:
/// "for each array … for each dimension … compute the I/O costs for
/// stripmining using slabs along this dimension", then "determine which
/// array requires the largest amount of I/O" — always A here — and pick the
/// orientation that minimizes its cost. The returned rows are the analysis
/// table; selection itself happens in [`crate::reorg`].
pub fn fig14_table(
    estimates: &[(SlabStrategy, crate::cost::CostEstimate)],
    a_name: &str,
    b_name: &str,
) -> Vec<Fig14Row> {
    let mut rows = Vec::new();
    for (strategy, est) in estimates {
        // Stripmining A along dim 1 == column slabs; along dim 0 == row
        // slabs (Figure 11).
        let a_dim = match strategy {
            SlabStrategy::ColumnSlab => 1,
            SlabStrategy::RowSlab => 0,
        };
        rows.push(Fig14Row {
            array: a_name.to_string(),
            dim: a_dim,
            strategy: *strategy,
            t_fetch: est.fetches_of(a_name),
            t_data: est.data_of(a_name),
        });
        rows.push(Fig14Row {
            array: b_name.to_string(),
            dim: 1, // B is always sliced along its columns
            strategy: *strategy,
            t_fetch: est.fetches_of(b_name),
            t_data: est.data_of(b_name),
        });
    }
    rows
}

/// The array with the largest `T_data` across the analysis — the paper's
/// "array that requires the largest amount of I/O".
pub fn dominant_array(rows: &[Fig14Row]) -> Option<&str> {
    rows.iter()
        .max_by_key(|r| r.t_data)
        .map(|r| r.array.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hir::ElwExpr;
    use ooc_array::{ArrayId, Distribution, FileLayout, Shape};
    use pario::ElemKind;

    #[test]
    fn gaxpy_candidates_capture_reuse() {
        let cands = gaxpy_candidates(1024);
        assert_eq!(cands.len(), 2);
        assert_eq!(cands[0].strategy, SlabStrategy::ColumnSlab);
        assert_eq!(
            cands[0].a_dims[1],
            DimTraversal::ReusedPerIteration { times: 1024 }
        );
        assert_eq!(cands[1].a_dims[1], DimTraversal::StreamedOnce);
    }

    fn desc(layout: FileLayout) -> ArrayDesc {
        ArrayDesc::new(
            ArrayId(0),
            "u",
            ElemKind::F32,
            Distribution::column_block(Shape::matrix(16, 16), 4),
        )
        .with_layout(layout)
    }

    fn copy_stmt() -> ElwStmt {
        ElwStmt {
            lhs: "u".into(),
            region: Section::full(&Shape::matrix(16, 16)),
            rhs: ElwExpr::aref("v", 2),
        }
    }

    #[test]
    fn elw_prefers_contiguous_dim_for_cm_layout() {
        // Local 16x4, column-major: slabs along dim 1 are contiguous
        // (1 request), along dim 0 strided (4 requests per array).
        let lhs = desc(FileLayout::column_major(2));
        let rhs = vec![desc(FileLayout::column_major(2))];
        let best = best_elw_slab_dim(&copy_stmt(), &lhs, &rhs, 0, 2);
        assert_eq!(best, 1);
        let scores = elw_dim_scores(&copy_stmt(), &lhs, &rhs, 0, 2);
        assert!(scores[0].1 > scores[1].1);
    }

    #[test]
    fn elw_prefers_rows_for_rm_layout() {
        let lhs = desc(FileLayout::row_major(2));
        let rhs = vec![desc(FileLayout::row_major(2))];
        let best = best_elw_slab_dim(&copy_stmt(), &lhs, &rhs, 0, 2);
        assert_eq!(best, 0);
    }

    #[test]
    fn region_in_slab_intersects() {
        let region = Section::new(vec![DimRange::new(1, 15), DimRange::new(1, 3)]);
        let slab = Section::new(vec![DimRange::new(0, 16), DimRange::new(2, 4)]);
        let r = region_in_slab(&region, &slab).unwrap();
        assert_eq!(r.range(1), DimRange::new(2, 3));
        let outside = Section::new(vec![DimRange::new(0, 16), DimRange::new(8, 12)]);
        assert!(region_in_slab(&region, &outside).is_none());
    }
}
