//! High-level IR: analyzed data-parallel statements.
//!
//! Lowering ([`crate::lower`]) recognizes the statement patterns the
//! compiler knows how to translate out-of-core:
//!
//! * **GAXPY matrix multiplication** — the paper's running example
//!   (Figure 3): a sequential `do j` loop around a `forall k` rank-1 update
//!   and a `SUM` reduction. This is the pattern the access-reorganization
//!   optimization targets.
//! * **Elementwise forall** — a forall nest assigning an expression of
//!   shifted references to identically-distributed arrays (Jacobi
//!   relaxation, scaled copies, AXPY…). Shifts across processor boundaries
//!   become ghost-cell exchanges.
//! * **Transpose** — `c(i,j) = a(j,i)`: a full data remapping, compiled to
//!   an out-of-core redistribution.
//!
//! All bounds are 0-based half-open after lowering.

use serde::{Deserialize, Serialize};

use ooc_array::{Distribution, Section, Shape};

/// A lowered program: resolved array table plus recognized statements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HirProgram {
    /// Arrays in declaration order (name, shape, distribution).
    pub arrays: Vec<HirArray>,
    /// Statements in execution order.
    pub stmts: Vec<HirStmt>,
    /// Total processors.
    pub nprocs: usize,
}

/// One out-of-core array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HirArray {
    /// Source name.
    pub name: String,
    /// Global shape.
    pub shape: Shape,
    /// HPF distribution.
    pub dist: Distribution,
}

impl HirProgram {
    /// Find an array by name.
    pub fn array(&self, name: &str) -> Option<&HirArray> {
        self.arrays.iter().find(|a| a.name == name)
    }
}

/// A recognized data-parallel statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum HirStmt {
    /// GAXPY matrix multiplication `C = A·B` with A, C column-block and B
    /// row-block distributed, all `n × n`.
    Gaxpy {
        /// Left operand (column-block).
        a: String,
        /// Right operand (row-block).
        b: String,
        /// Result (column-block).
        c: String,
        /// Name of the in-core temporary from the source (kept for
        /// diagnostics; the translation keeps it in memory).
        temp: String,
        /// Matrix order.
        n: usize,
    },
    /// Elementwise forall statement.
    Elementwise(ElwStmt),
    /// `dst(i, j) = src(j, i)` over full extents.
    Transpose {
        /// Source array.
        src: String,
        /// Destination array.
        dst: String,
    },
    /// Out-of-core CSR sparse matrix–vector product: a `do i` loop over
    /// rows accumulating `y(i) = Σ vals(k)·x(colidx(k))` for `k` in
    /// `rowptr(i)..rowptr(i+1)`. The `x(colidx(k))` indirection is the
    /// irregular access the inspector–executor subsystem services.
    Spmv {
        /// Result vector, length `n`.
        y: String,
        /// CSR row pointers, length `n + 1` (1-based values in source).
        rowptr: String,
        /// CSR column indices, length `nnz` — the indirection array.
        colidx: String,
        /// CSR stored values, length `nnz`.
        vals: String,
        /// Gathered vector, length `n`.
        x: String,
        /// Matrix order (rows of A, length of `x` and `y`).
        n: usize,
        /// Stored nonzeros.
        nnz: usize,
    },
}

/// An elementwise forall: `lhs(i₀, i₁, …) = expr` for all indices in
/// `region`, where every array reference in `expr` is `array(i₀+d₀, …)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElwStmt {
    /// Assigned array.
    pub lhs: String,
    /// Global iteration region in lhs index space (0-based half-open).
    pub region: Section,
    /// Right-hand side.
    pub rhs: ElwExpr,
}

impl ElwStmt {
    /// All arrays referenced on the right-hand side, with their shift
    /// offsets, in first-appearance order.
    pub fn rhs_refs(&self) -> Vec<(String, Vec<isize>)> {
        let mut out: Vec<(String, Vec<isize>)> = Vec::new();
        collect_refs(&self.rhs, &mut out);
        out
    }

    /// The largest |offset| per dimension over all rhs references — the
    /// ghost-zone width the translation needs.
    pub fn max_shift(&self, ndims: usize) -> Vec<usize> {
        let mut m = vec![0usize; ndims];
        for (_, offs) in self.rhs_refs() {
            for (d, &o) in offs.iter().enumerate() {
                m[d] = m[d].max(o.unsigned_abs());
            }
        }
        m
    }
}

fn collect_refs(e: &ElwExpr, out: &mut Vec<(String, Vec<isize>)>) {
    match e {
        ElwExpr::Const(_) => {}
        ElwExpr::Ref { array, offsets } => {
            if !out.iter().any(|(a, o)| a == array && o == offsets) {
                out.push((array.clone(), offsets.clone()));
            }
        }
        ElwExpr::Neg(inner) => collect_refs(inner, out),
        ElwExpr::Add(l, r) | ElwExpr::Sub(l, r) | ElwExpr::Mul(l, r) | ElwExpr::Div(l, r) => {
            collect_refs(l, out);
            collect_refs(r, out);
        }
    }
}

/// Elementwise expression over shifted array references.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ElwExpr {
    /// Scalar constant.
    Const(f32),
    /// `array(i₀+offsets[0], i₁+offsets[1], …)`.
    Ref {
        /// Referenced array.
        array: String,
        /// Per-dimension shift relative to the iteration index.
        offsets: Vec<isize>,
    },
    /// Negation.
    Neg(Box<ElwExpr>),
    /// Sum.
    Add(Box<ElwExpr>, Box<ElwExpr>),
    /// Difference.
    Sub(Box<ElwExpr>, Box<ElwExpr>),
    /// Product.
    Mul(Box<ElwExpr>, Box<ElwExpr>),
    /// Quotient.
    Div(Box<ElwExpr>, Box<ElwExpr>),
}

impl ElwExpr {
    /// Unshifted reference.
    pub fn aref(array: &str, ndims: usize) -> ElwExpr {
        ElwExpr::Ref {
            array: array.to_string(),
            offsets: vec![0; ndims],
        }
    }

    /// Shifted reference.
    pub fn shifted(array: &str, offsets: Vec<isize>) -> ElwExpr {
        ElwExpr::Ref {
            array: array.to_string(),
            offsets,
        }
    }

    /// `l + r`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(l: ElwExpr, r: ElwExpr) -> ElwExpr {
        ElwExpr::Add(Box::new(l), Box::new(r))
    }

    /// `l * r`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(l: ElwExpr, r: ElwExpr) -> ElwExpr {
        ElwExpr::Mul(Box::new(l), Box::new(r))
    }

    /// Count floating-point operations per evaluated point.
    pub fn flops_per_point(&self) -> u64 {
        match self {
            ElwExpr::Const(_) | ElwExpr::Ref { .. } => 0,
            ElwExpr::Neg(i) => 1 + i.flops_per_point(),
            ElwExpr::Add(l, r) | ElwExpr::Sub(l, r) | ElwExpr::Mul(l, r) | ElwExpr::Div(l, r) => {
                1 + l.flops_per_point() + r.flops_per_point()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooc_array::DimRange;

    fn jacobi_stmt() -> ElwStmt {
        // a(i,j) = 0.25 * (b(i-1,j) + b(i+1,j) + b(i,j-1) + b(i,j+1))
        let sum = ElwExpr::add(
            ElwExpr::add(
                ElwExpr::shifted("b", vec![-1, 0]),
                ElwExpr::shifted("b", vec![1, 0]),
            ),
            ElwExpr::add(
                ElwExpr::shifted("b", vec![0, -1]),
                ElwExpr::shifted("b", vec![0, 1]),
            ),
        );
        ElwStmt {
            lhs: "a".into(),
            region: Section::new(vec![DimRange::new(1, 7), DimRange::new(1, 7)]),
            rhs: ElwExpr::mul(ElwExpr::Const(0.25), sum),
        }
    }

    #[test]
    fn rhs_refs_dedup_and_order() {
        let s = jacobi_stmt();
        let refs = s.rhs_refs();
        assert_eq!(refs.len(), 4);
        assert_eq!(refs[0], ("b".to_string(), vec![-1, 0]));
    }

    #[test]
    fn max_shift_is_ghost_width() {
        let s = jacobi_stmt();
        assert_eq!(s.max_shift(2), vec![1, 1]);
    }

    #[test]
    fn flop_counting() {
        let s = jacobi_stmt();
        // 3 adds + 1 mul = 4 flops per point.
        assert_eq!(s.rhs.flops_per_point(), 4);
    }
}
