//! I/O cost estimation (§4.1).
//!
//! The estimator evaluates a symbolic node program ([`crate::ir::NestNode`])
//! into the paper's two I/O metrics — requests per processor and data per
//! processor — plus communication and compute totals, and converts them to
//! simulated seconds under a [`dmsim::CostModel`]. Because the executor
//! charges the very same quantities through the same model, unit tests can
//! assert estimator == measurement exactly.

use serde::{Deserialize, Serialize};

use dmsim::CostModel;

use crate::ir::{totals, ArrayIoTotals, NestNode, NestTotals};

/// Per-array I/O estimate (re-export of the nest totals entry).
pub type IoEstimate = ArrayIoTotals;

/// A fully evaluated cost estimate for one candidate translation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostEstimate {
    /// Raw counters from the loop-nest walk.
    pub totals: NestTotals,
    /// Element size used to convert elements to bytes.
    pub elem_size: usize,
    /// Modeled seconds of disk I/O.
    pub io_time: f64,
    /// Modeled seconds of communication.
    pub comm_time: f64,
    /// Modeled seconds of computation.
    pub compute_time: f64,
}

impl CostEstimate {
    /// Evaluate a nest under a cost model. Reads and writes are priced
    /// separately (writes are buffered by the I/O nodes).
    pub fn from_nest(nest: &[NestNode], model: &CostModel, elem_size: usize) -> Self {
        Self::from_totals(totals(nest), model, elem_size)
    }

    /// Price already-computed totals — the entry point for reuse-aware
    /// estimation, where the totals come from a cache replay
    /// ([`crate::reuse::gaxpy_cached_totals`]) rather than a nest walk.
    pub fn from_totals(t: NestTotals, model: &CostModel, elem_size: usize) -> Self {
        let (mut r_req, mut r_el, mut w_req, mut w_el) = (0u64, 0u64, 0u64, 0u64);
        for a in t.per_array.values() {
            r_req += a.read_requests;
            r_el += a.read_elems;
            w_req += a.write_requests;
            w_el += a.write_elems;
        }
        let io_time = model.io_time(r_req, r_el * elem_size as u64)
            + model.io_write_time(w_req, w_el * elem_size as u64);
        let comm_time =
            t.comm_messages as f64 * model.msg_latency + t.comm_bytes as f64 / model.msg_bandwidth;
        let compute_time = model.compute_time(t.flops);
        CostEstimate {
            totals: t,
            elem_size,
            io_time,
            comm_time,
            compute_time,
        }
    }

    /// Evaluate a nest under a cost model degraded by background disk-farm
    /// load (concurrent workload jobs sharing the physical disks). With no
    /// competitors the result is bit-identical to
    /// [`CostEstimate::from_nest`]; otherwise reads/writes are priced at
    /// this job's fair bandwidth share while communication and compute stay
    /// untouched — contention lives only on the farm.
    pub fn from_nest_contended(
        nest: &[NestNode],
        model: &CostModel,
        elem_size: usize,
        load: &dmsim::BackgroundLoad,
    ) -> Self {
        Self::from_totals(totals(nest), &model.contended(load), elem_size)
    }

    /// Total modeled seconds (the selection criterion; I/O dominates on the
    /// Delta profile, so the ranking matches the paper's I/O-cost ranking).
    pub fn time(&self) -> f64 {
        self.io_time + self.comm_time + self.compute_time
    }

    /// Total I/O requests per processor — the paper's first metric.
    pub fn io_requests(&self) -> u64 {
        self.totals.io_requests()
    }

    /// Total I/O bytes per processor — the paper's second metric.
    pub fn io_bytes(&self) -> u64 {
        self.totals.io_elems() * self.elem_size as u64
    }

    /// `T_fetch` for one array (equations 3/5).
    pub fn fetches_of(&self, array: &str) -> u64 {
        self.totals
            .per_array
            .get(array)
            .map(|a| a.read_requests)
            .unwrap_or(0)
    }

    /// `T_data` in elements for one array (equations 4/6).
    pub fn data_of(&self, array: &str) -> u64 {
        self.totals
            .per_array
            .get(array)
            .map(|a| a.read_elems)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::NestNode;

    fn nest() -> Vec<NestNode> {
        vec![
            NestNode::loop_(
                "outer",
                10,
                vec![
                    NestNode::read("a", 1, 1000),
                    NestNode::Compute {
                        label: "k".into(),
                        flops: 2000,
                    },
                ],
            ),
            NestNode::Comm {
                label: "sum".into(),
                messages: 4,
                bytes: 4096,
            },
        ]
    }

    #[test]
    fn estimate_matches_hand_computation() {
        let model = CostModel::delta(4);
        let est = CostEstimate::from_nest(&nest(), &model, 4);
        assert_eq!(est.io_requests(), 10);
        assert_eq!(est.io_bytes(), 10 * 1000 * 4);
        assert_eq!(est.fetches_of("a"), 10);
        assert_eq!(est.data_of("a"), 10_000);
        let expect_io = model.io_time(10, 40_000);
        assert!((est.io_time - expect_io).abs() < 1e-12);
        let expect_comm = 4.0 * model.msg_latency + 4096.0 / model.msg_bandwidth;
        assert!((est.comm_time - expect_comm).abs() < 1e-12);
        let expect_comp = model.compute_time(20_000);
        assert!((est.compute_time - expect_comp).abs() < 1e-12);
        assert!((est.time() - (expect_io + expect_comm + expect_comp)).abs() < 1e-12);
    }

    #[test]
    fn free_model_zeroes_time_but_keeps_metrics() {
        let est = CostEstimate::from_nest(&nest(), &CostModel::free(4), 4);
        assert_eq!(est.time(), 0.0);
        assert_eq!(est.io_requests(), 10);
    }

    #[test]
    fn unknown_array_has_zero_cost() {
        let est = CostEstimate::from_nest(&nest(), &CostModel::delta(4), 4);
        assert_eq!(est.fetches_of("zzz"), 0);
    }

    #[test]
    fn contended_estimate_degrades_io_only() {
        let model = CostModel::delta(4);
        let base = CostEstimate::from_nest(&nest(), &model, 4);
        let solo =
            CostEstimate::from_nest_contended(&nest(), &model, 4, &dmsim::BackgroundLoad::jobs(0));
        assert_eq!(solo, base, "zero competitors is bit-identical");
        let busy =
            CostEstimate::from_nest_contended(&nest(), &model, 4, &dmsim::BackgroundLoad::jobs(3));
        assert!(busy.io_time > base.io_time, "contention slows the farm");
        assert_eq!(busy.comm_time, base.comm_time);
        assert_eq!(busy.compute_time, base.compute_time);
        assert_eq!(
            busy.io_requests(),
            base.io_requests(),
            "metrics are load-blind"
        );
    }
}
