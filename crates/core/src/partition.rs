//! In-core phase, step 1: computation partitioning and local bounds.
//!
//! The compiler partitions iteration spaces by the owner-computes rule: the
//! processor owning the assigned element executes the iteration. For the
//! regular distributions of the subset this reduces to intersecting the
//! global iteration region with each processor's owned section and
//! translating to local indices (Figure 7, "Partition Computation /
//! Determine Local Space Bounds").

use ooc_array::{local_section_of_global, Distribution, Section};

/// The local iteration space of `rank` for an elementwise statement
/// assigning `region` of an array with distribution `dist`. `None` when the
/// processor executes nothing.
pub fn local_iteration_space(
    dist: &Distribution,
    rank: usize,
    region: &Section,
) -> Option<Section> {
    local_section_of_global(dist, rank, region)
}

/// Rank of the processor that owns (and therefore stores) global column `j`
/// of a column-block-distributed matrix — the paper's
/// `global_to_processor(j)`.
pub fn owner_of_column(dist: &Distribution, j: usize) -> usize {
    dist.owner(&[0, j])
}

/// Local column index of global column `j` on its owner — the paper's
/// `global_to_local(j)`.
pub fn local_column(dist: &Distribution, j: usize) -> usize {
    dist.local_index(1, j)
}

/// Load-balance summary of a partitioning: iterations per processor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionReport {
    /// Iterations assigned to each rank.
    pub per_rank: Vec<usize>,
}

impl PartitionReport {
    /// Compute the per-rank iteration counts for `region` under `dist`.
    pub fn compute(dist: &Distribution, region: &Section) -> Self {
        let per_rank = (0..dist.nprocs())
            .map(|r| {
                local_iteration_space(dist, r, region)
                    .map(|s| s.len())
                    .unwrap_or(0)
            })
            .collect();
        PartitionReport { per_rank }
    }

    /// Total iterations (must equal the region size).
    pub fn total(&self) -> usize {
        self.per_rank.iter().sum()
    }

    /// Ratio of the most-loaded to the average processor (1.0 = perfect).
    pub fn imbalance(&self) -> f64 {
        let max = *self.per_rank.iter().max().unwrap_or(&0) as f64;
        let avg = self.total() as f64 / self.per_rank.len().max(1) as f64;
        if avg == 0.0 {
            1.0
        } else {
            max / avg
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooc_array::{DimRange, Distribution, Shape};

    #[test]
    fn owner_computes_matches_distribution() {
        let d = Distribution::column_block(Shape::matrix(8, 8), 4);
        assert_eq!(owner_of_column(&d, 0), 0);
        assert_eq!(owner_of_column(&d, 3), 1);
        assert_eq!(owner_of_column(&d, 7), 3);
        assert_eq!(local_column(&d, 5), 1);
    }

    #[test]
    fn partition_covers_region_exactly() {
        let d = Distribution::column_block(Shape::matrix(8, 8), 4);
        let region = Section::new(vec![DimRange::new(1, 7), DimRange::new(1, 7)]);
        let rep = PartitionReport::compute(&d, &region);
        assert_eq!(rep.total(), region.len());
        // Columns 1..7: procs own 2 cols each -> counts 6, 12, 12, 6.
        assert_eq!(rep.per_rank, vec![6, 12, 12, 6]);
        assert!(rep.imbalance() > 1.0);
    }

    #[test]
    fn full_region_is_balanced() {
        let d = Distribution::column_block(Shape::matrix(8, 8), 4);
        let rep = PartitionReport::compute(&d, &Section::full(&Shape::matrix(8, 8)));
        assert_eq!(rep.per_rank, vec![16; 4]);
        assert!((rep.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_processor_gets_none() {
        let d = Distribution::column_block(Shape::matrix(4, 4), 4);
        let region = Section::new(vec![DimRange::new(0, 4), DimRange::new(0, 1)]);
        assert!(local_iteration_space(&d, 3, &region).is_none());
        assert!(local_iteration_space(&d, 0, &region).is_some());
    }
}
