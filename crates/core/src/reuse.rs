//! Reuse-aware I/O prediction for cached executions.
//!
//! With a slab cache in the I/O substrate (`pario::SlabCache`), the
//! closed-form request counts in [`crate::nodegen`] no longer describe a
//! cached execution: a read fully covered by cached segments costs nothing,
//! a miss fetches only the spanning gap, and writes are buffered until
//! write-back. Rather than approximating those effects analytically, the
//! estimator *replays* the executor's exact access sequence through the same
//! cache implementation in predictor mode (no payloads, no backend) and
//! reads the request/byte counts off the cache's per-file counters. Because
//! runtime and predictor share one cache, estimate == measurement holds by
//! construction — the repo's central invariant, extended to caching.

use ooc_array::{ArrayDesc, ArrayId, DimRange, Distribution, FileLayout, Section, Shape};
use pario::{coalesce_runs, ByteRun, DiskStats, ElemKind, NoCharge, SlabCache};

use crate::ir::{ArrayIoTotals, NestTotals};
use crate::nodegen::gaxpy_nest_for;
use crate::plan::{GaxpyPlan, SlabStrategy};

/// Synthetic file ids the replay uses: allocation order in the executor
/// (`alloc(a)`, `alloc(b)`, `alloc(c)` on a fresh environment).
const FILE_A: u64 = 0;
const FILE_B: u64 = 1;
const FILE_C: u64 = 2;

/// One replayed section access against the predictor cache: exactly what
/// `OocEnv::{read,write}_section` does on the byte level — section to
/// element runs under the array's file layout, element runs to byte runs,
/// coalesce, then one cache operation per coalesced run in ascending order.
fn replay_access(
    cache: &mut SlabCache,
    stats: &mut DiskStats,
    file: u64,
    desc: &ArrayDesc,
    rank: usize,
    sec: &Section,
    is_read: bool,
) {
    let local = desc.local_shape(rank);
    let es = desc.elem.size() as u64;
    let byte_runs: Vec<ByteRun> = desc
        .layout
        .section_runs(&local, sec)
        .iter()
        .map(|r| ByteRun::new(r.offset * es, r.len * es))
        .collect();
    for run in coalesce_runs(&byte_runs) {
        if is_read {
            cache
                .read(file, run, None, None, None, &NoCharge, stats)
                .expect("predictor cache read cannot fail");
        } else {
            cache
                .write(file, run, None, None, None, &NoCharge, stats)
                .expect("predictor cache write cannot fail");
        }
    }
}

/// Per-array totals as seen through the cache: misses are the only reads
/// that reach the disk, write-backs the only writes.
fn array_totals(cache: &SlabCache, file: u64, elem: ElemKind) -> ArrayIoTotals {
    let es = elem.size() as u64;
    let c = cache.file_counts(file);
    ArrayIoTotals {
        read_requests: c.read_requests,
        read_elems: c.read_bytes / es,
        write_requests: c.write_back_requests,
        write_elems: c.write_back_bytes / es,
    }
}

/// Predict the I/O totals of executing `plan` on `rank` with a slab cache
/// of `budget` bytes in front of the disk, by replaying the executor's
/// access sequence (including the final charged flush) through a
/// predictor-mode [`SlabCache`]. Communication and flop totals are
/// unaffected by caching and are copied from the symbolic nest.
pub fn gaxpy_cached_totals(plan: &GaxpyPlan, rank: usize, budget: usize) -> NestTotals {
    let base = crate::ir::totals(&gaxpy_nest_for(plan, rank));
    let mut cache = SlabCache::predictor(budget);
    let mut stats = DiskStats::default();

    match plan.strategy {
        SlabStrategy::ColumnSlab => replay_column(plan, rank, &mut cache, &mut stats),
        SlabStrategy::RowSlab => replay_row(plan, rank, &mut cache, &mut stats),
    }
    cache
        .flush(None, None, &NoCharge, &mut stats)
        .expect("predictor flush cannot fail");

    let mut t = NestTotals {
        comm_messages: base.comm_messages,
        comm_bytes: base.comm_bytes,
        flops: base.flops,
        ..NestTotals::default()
    };
    t.per_array.insert(
        plan.a.name.clone(),
        array_totals(&cache, FILE_A, plan.a.elem),
    );
    t.per_array.insert(
        plan.b.name.clone(),
        array_totals(&cache, FILE_B, plan.b.elem),
    );
    t.per_array.insert(
        plan.c.name.clone(),
        array_totals(&cache, FILE_C, plan.c.elem),
    );
    t
}

/// The column-slab access sequence (Figure 9; mirrors
/// `noderun::gaxpy::column_version` line by line).
fn replay_column(plan: &GaxpyPlan, rank: usize, cache: &mut SlabCache, stats: &mut DiskStats) {
    let n = plan.n;
    let lc_a = plan.a.local_shape(rank).extent(1);
    let lr_b = plan.b.local_shape(rank).extent(0);

    let mut cbuf_start_col = 0usize;
    let mut next_c_col = 0usize;

    let mut b_lo = 0usize;
    while b_lo < n {
        let b_hi = (b_lo + plan.slab_b).min(n);
        let b_sec = Section::new(vec![DimRange::new(0, lr_b), DimRange::new(b_lo, b_hi)]);
        replay_access(cache, stats, FILE_B, &plan.b, rank, &b_sec, true);

        for m in 0..(b_hi - b_lo) {
            let j = b_lo + m;
            let mut a_lo = 0usize;
            while a_lo < lc_a {
                let a_hi = (a_lo + plan.slab_a).min(lc_a);
                let a_sec = Section::new(vec![DimRange::new(0, n), DimRange::new(a_lo, a_hi)]);
                replay_access(cache, stats, FILE_A, &plan.a, rank, &a_sec, true);
                a_lo = a_hi;
            }
            if plan.c.dist.owner(&[0, j]) == rank {
                next_c_col += 1;
                if next_c_col - cbuf_start_col == plan.slab_c {
                    let sec = Section::new(vec![
                        DimRange::new(0, n),
                        DimRange::new(cbuf_start_col, next_c_col),
                    ]);
                    replay_access(cache, stats, FILE_C, &plan.c, rank, &sec, false);
                    cbuf_start_col = next_c_col;
                }
            }
        }
        b_lo = b_hi;
    }
    if next_c_col > cbuf_start_col {
        let sec = Section::new(vec![
            DimRange::new(0, n),
            DimRange::new(cbuf_start_col, next_c_col),
        ]);
        replay_access(cache, stats, FILE_C, &plan.c, rank, &sec, false);
    }
}

/// The row-slab access sequence (Figure 12; mirrors
/// `noderun::gaxpy::row_version` line by line).
fn replay_row(plan: &GaxpyPlan, rank: usize, cache: &mut SlabCache, stats: &mut DiskStats) {
    let n = plan.n;
    let lc = plan.a.local_shape(rank).extent(1);
    let lr_b = plan.b.local_shape(rank).extent(0);
    let c_cols = plan.c.local_shape(rank).extent(1);

    let b_resident = plan.slab_b >= n;
    if b_resident {
        let sec = Section::new(vec![DimRange::new(0, lr_b), DimRange::new(0, n)]);
        replay_access(cache, stats, FILE_B, &plan.b, rank, &sec, true);
    }

    let mut r_lo = 0usize;
    while r_lo < n {
        let r_hi = (r_lo + plan.slab_a).min(n);
        let a_sec = Section::new(vec![DimRange::new(r_lo, r_hi), DimRange::new(0, lc)]);
        replay_access(cache, stats, FILE_A, &plan.a, rank, &a_sec, true);

        let mut b_lo = 0usize;
        while b_lo < n {
            let b_hi = (b_lo + plan.slab_b).min(n);
            if !b_resident {
                let b_sec = Section::new(vec![DimRange::new(0, lr_b), DimRange::new(b_lo, b_hi)]);
                replay_access(cache, stats, FILE_B, &plan.b, rank, &b_sec, true);
            }
            b_lo = b_hi;
        }

        let c_sec = Section::new(vec![DimRange::new(r_lo, r_hi), DimRange::new(0, c_cols)]);
        replay_access(cache, stats, FILE_C, &plan.c, rank, &c_sec, false);
        r_lo = r_hi;
    }
}

/// Predict the per-array I/O totals of one pre-statement remap (a
/// [`ooc_array::redistribute_with`] call) executed with `method` on `rank`
/// behind a slab cache of `budget` bytes. The replay drives the same
/// predictor-mode cache as the GAXPY path, with the source as file 0 and
/// the destination as file 1.
///
/// Behind a cache the sieve is bypassed (miss handling already fetches
/// spanning gaps), mirroring the runtime: a zero budget therefore
/// reproduces [`ooc_array::redist_counts`] of the *direct* schedule for
/// `Direct`/`Sieved`, and of the two-phase schedule for `TwoPhase`.
/// Communication is unaffected by caching and copied from the uncached
/// counts.
pub fn remap_cached_totals(
    src: &ArrayDesc,
    dst: &ArrayDesc,
    rank: usize,
    method: pario::IoMethod,
    budget: usize,
) -> NestTotals {
    use ooc_array::{global_section_of_local, local_section_of_global};
    let mut cache = SlabCache::predictor(budget);
    let mut stats = DiskStats::default();
    let p = src.dist.nprocs();
    let uncached = ooc_array::redist_counts(src, dst, rank, method);

    let my_src = global_section_of_local(&src.dist, rank).expect("regular source distribution");
    let my_dst =
        global_section_of_local(&dst.dist, rank).expect("regular destination distribution");
    match method {
        pario::IoMethod::Direct | pario::IoMethod::Sieved => {
            for j in 0..p {
                let theirs = global_section_of_local(&dst.dist, j)
                    .expect("regular destination distribution");
                if let Some(isect) = my_src.intersect(&theirs) {
                    let sec = local_section_of_global(&src.dist, rank, &isect)
                        .expect("sender owns intersection");
                    replay_access(&mut cache, &mut stats, FILE_A, src, rank, &sec, true);
                }
            }
            for j in 0..p {
                let theirs =
                    global_section_of_local(&src.dist, j).expect("regular source distribution");
                if let Some(isect) = my_dst.intersect(&theirs) {
                    let sec = local_section_of_global(&dst.dist, rank, &isect)
                        .expect("receiver owns intersection");
                    replay_access(&mut cache, &mut stats, FILE_B, dst, rank, &sec, false);
                }
            }
        }
        pario::IoMethod::TwoPhase => {
            let es = src.elem.size() as u64;
            let local = src.local_shape(rank);
            let pieces: Vec<Vec<ByteRun>> = (0..p)
                .map(|j| {
                    let theirs = global_section_of_local(&dst.dist, j)
                        .expect("regular destination distribution");
                    let Some(isect) = my_src.intersect(&theirs) else {
                        return Vec::new();
                    };
                    let sec = local_section_of_global(&src.dist, rank, &isect)
                        .expect("sender owns intersection");
                    src.layout
                        .section_runs(&local, &sec)
                        .iter()
                        .map(|r| ByteRun::new(r.offset * es, r.len * es))
                        .collect()
                })
                .collect();
            for run in &pario::plan_union(&pieces).union {
                cache
                    .read(FILE_A, *run, None, None, None, &NoCharge, &mut stats)
                    .expect("predictor cache read cannot fail");
            }
            let dlocal = dst.local_shape(rank);
            if !dlocal.is_empty() {
                replay_access(
                    &mut cache,
                    &mut stats,
                    FILE_B,
                    dst,
                    rank,
                    &Section::full(&dlocal),
                    false,
                );
            }
        }
    }
    cache
        .flush(None, None, &NoCharge, &mut stats)
        .expect("predictor flush cannot fail");

    let mut t = NestTotals {
        comm_messages: uncached.messages,
        comm_bytes: uncached.msg_bytes,
        ..NestTotals::default()
    };
    t.per_array
        .insert(src.name.clone(), array_totals(&cache, FILE_A, src.elem));
    t.per_array
        .insert(dst.name.clone(), array_totals(&cache, FILE_B, dst.elem));
    t
}

/// A canonical GAXPY plan for `strategy` with the paper's distributions and
/// layouts: A and C column-block (column-major for column slabs, row-major
/// reorganized for row slabs), B row-block column-major. Used by the
/// cache-aware memory splitter to score slab splits without needing the
/// full reorganization pass.
pub fn canonical_gaxpy_plan(
    strategy: SlabStrategy,
    n: usize,
    p: usize,
    slab_a: usize,
    slab_b: usize,
) -> GaxpyPlan {
    let col = Distribution::column_block(Shape::matrix(n, n), p);
    let row = Distribution::row_block(Shape::matrix(n, n), p);
    let layout = match strategy {
        SlabStrategy::ColumnSlab => FileLayout::column_major(2),
        SlabStrategy::RowSlab => FileLayout::row_major(2),
    };
    GaxpyPlan {
        strategy,
        a: ArrayDesc::new(ArrayId(0), "a", ElemKind::F32, col.clone()).with_layout(layout.clone()),
        b: ArrayDesc::new(ArrayId(1), "b", ElemKind::F32, row),
        c: ArrayDesc::new(ArrayId(2), "c", ElemKind::F32, col).with_layout(layout),
        n,
        nprocs: p,
        slab_a,
        slab_b,
        slab_c: slab_a.min(n / p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::totals;

    #[test]
    fn zero_budget_reproduces_the_uncached_nest_exactly() {
        for (strategy, sa, sb) in [
            (SlabStrategy::ColumnSlab, 2, 4),
            (SlabStrategy::ColumnSlab, 3, 5), // ragged
            (SlabStrategy::RowSlab, 4, 4),
            (SlabStrategy::RowSlab, 5, 7), // ragged
        ] {
            let plan = canonical_gaxpy_plan(strategy, 16, 4, sa, sb);
            let uncached = totals(&gaxpy_nest_for(&plan, 0));
            let cached = gaxpy_cached_totals(&plan, 0, 0);
            for name in ["a", "b", "c"] {
                assert_eq!(
                    cached.per_array[name], uncached.per_array[name],
                    "{strategy:?} sa={sa} sb={sb} array {name}"
                );
            }
            assert_eq!(cached.comm_messages, uncached.comm_messages);
            assert_eq!(cached.flops, uncached.flops);
        }
    }

    #[test]
    fn generous_budget_collapses_column_slab_rereads() {
        // Column slabs re-read all of A once per column of C; with a budget
        // holding the whole working set, A is fetched from disk once.
        let plan = canonical_gaxpy_plan(SlabStrategy::ColumnSlab, 16, 4, 2, 4);
        let uncached = totals(&gaxpy_nest_for(&plan, 0));
        let cached = gaxpy_cached_totals(&plan, 0, 1 << 20);
        assert!(
            cached.per_array["a"].read_requests < uncached.per_array["a"].read_requests,
            "cached {} !< uncached {}",
            cached.per_array["a"].read_requests,
            uncached.per_array["a"].read_requests
        );
        // Whole local A is 16x4 elements = 256 bytes: one cold fetch per
        // slab, every revisit a hit.
        assert_eq!(
            cached.per_array["a"].read_requests,
            plan.num_slabs_a() as u64
        );
        assert_eq!(cached.per_array["a"].read_elems, 16 * 4);
        // B is streamed once either way.
        assert_eq!(
            cached.per_array["b"].read_elems,
            uncached.per_array["b"].read_elems
        );
    }

    #[test]
    fn one_extra_slab_of_budget_already_helps_column_gaxpy() {
        // slab_a covering all local columns makes A a single slab that is
        // revisited for every column of C; budget = |A local| + |B slab| + C
        // buffer keeps it resident.
        let n = 16;
        let p = 4;
        let plan = canonical_gaxpy_plan(SlabStrategy::ColumnSlab, n, p, n / p, 4);
        let a_bytes = n * (n / p) * 4;
        let b_bytes = (n / p) * plan.slab_b * 4;
        let c_bytes = n * plan.slab_c * 4;
        let budget = a_bytes + b_bytes + c_bytes;
        let uncached = totals(&gaxpy_nest_for(&plan, 0));
        let cached = gaxpy_cached_totals(&plan, 0, budget);
        assert_eq!(cached.per_array["a"].read_requests, 1, "one cold A fetch");
        assert!(cached.io_requests() < uncached.io_requests());
    }

    #[test]
    fn row_version_write_backs_merge_adjacent_slabs() {
        // Row-major C: consecutive row slabs of all owned columns are *not*
        // byte-adjacent per write (each write is c_cols runs), but the
        // buffered segments merge row-wise; flushing writes the merged
        // extents. With a generous budget the total write-backs can only be
        // <= the uncached write count.
        let plan = canonical_gaxpy_plan(SlabStrategy::RowSlab, 16, 4, 4, 4);
        let uncached = totals(&gaxpy_nest_for(&plan, 0));
        let cached = gaxpy_cached_totals(&plan, 0, 1 << 20);
        assert!(cached.per_array["c"].write_requests <= uncached.per_array["c"].write_requests);
        assert_eq!(
            cached.per_array["c"].write_elems, uncached.per_array["c"].write_elems,
            "every produced element still reaches disk"
        );
    }

    #[test]
    fn remap_replay_reproduces_uncached_counts_at_zero_budget() {
        let n = 16;
        let p = 4;
        let src = ArrayDesc::new(
            ArrayId(0),
            "a",
            ElemKind::F32,
            Distribution::row_block(Shape::matrix(n, n), p),
        )
        .with_layout(FileLayout::row_major(2));
        let dst = ArrayDesc::new(
            ArrayId(1),
            "a2",
            ElemKind::F32,
            Distribution::column_block(Shape::matrix(n, n), p),
        );
        // Behind a cache the sieve is bypassed, so Sieved replays as
        // Direct; compare the methods whose uncached schedule survives.
        for method in [pario::IoMethod::Direct, pario::IoMethod::TwoPhase] {
            let t = remap_cached_totals(&src, &dst, 0, method, 0);
            let c = ooc_array::redist_counts(&src, &dst, 0, method);
            assert_eq!(
                t.per_array["a"].read_requests, c.read_requests,
                "{method:?}"
            );
            assert_eq!(t.per_array["a"].read_elems * 4, c.read_bytes, "{method:?}");
            assert_eq!(
                t.per_array["a2"].write_requests, c.write_requests,
                "{method:?}"
            );
            assert_eq!(
                t.per_array["a2"].write_elems * 4,
                c.write_bytes,
                "{method:?}"
            );
            assert_eq!(t.comm_messages, c.messages);
        }
    }

    #[test]
    fn cache_budget_cannot_beat_two_phase_writes() {
        // The direct remap's fragmented writes merge in a generous cache,
        // but never below the two-phase schedule's single full-local write.
        let n = 16;
        let p = 4;
        let src = ArrayDesc::new(
            ArrayId(0),
            "a",
            ElemKind::F32,
            Distribution::row_block(Shape::matrix(n, n), p),
        )
        .with_layout(FileLayout::row_major(2));
        let dst = ArrayDesc::new(
            ArrayId(1),
            "a2",
            ElemKind::F32,
            Distribution::column_block(Shape::matrix(n, n), p),
        );
        let direct_uncached = remap_cached_totals(&src, &dst, 0, pario::IoMethod::Direct, 0);
        let direct_cached = remap_cached_totals(&src, &dst, 0, pario::IoMethod::Direct, 1 << 20);
        let two_phase = remap_cached_totals(&src, &dst, 0, pario::IoMethod::TwoPhase, 0);
        assert!(
            direct_cached.per_array["a2"].write_requests
                <= direct_uncached.per_array["a2"].write_requests
        );
        assert_eq!(two_phase.per_array["a2"].write_requests, 1);
        assert!(
            direct_cached.per_array["a2"].write_requests
                >= two_phase.per_array["a2"].write_requests
        );
    }

    #[test]
    fn requests_are_monotonically_non_increasing_in_budget() {
        let plan = canonical_gaxpy_plan(SlabStrategy::ColumnSlab, 16, 4, 2, 4);
        let mut prev = u64::MAX;
        for budget in [0usize, 256, 1024, 4096, 1 << 20] {
            let t = gaxpy_cached_totals(&plan, 0, budget);
            let req = t.io_requests();
            assert!(
                req <= prev,
                "budget {budget}: {req} requests > previous {prev}"
            );
            prev = req;
        }
    }
}
