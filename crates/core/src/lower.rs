//! Lowering: analyzed HPF AST → HIR statement patterns.

use hpf::{BinOp, Expr, ProgramInfo, Stmt, Subscript};
use ooc_array::{DimRange, Section};

use crate::hir::{ElwExpr, ElwStmt, HirArray, HirProgram, HirStmt};

/// Lowering failure: the statement is outside the supported subset. The
/// message explains which pattern failed and why.
pub type LowerResult<T> = Result<T, String>;

/// Lower an analyzed program to HIR.
pub fn lower(info: &ProgramInfo) -> LowerResult<HirProgram> {
    let arrays: Vec<HirArray> = info
        .arrays
        .iter()
        .map(|a| HirArray {
            name: a.name.clone(),
            shape: a.shape.clone(),
            dist: a.dist.clone(),
        })
        .collect();
    let mut stmts = Vec::new();
    for s in &info.stmts {
        stmts.extend(lower_stmt_seq(s, info)?);
    }
    Ok(HirProgram {
        arrays,
        stmts,
        nprocs: info.nprocs,
    })
}

/// Largest constant-trip `do` loop the compiler will unroll.
pub const UNROLL_LIMIT: i64 = 256;

fn lower_stmt_seq(s: &Stmt, info: &ProgramInfo) -> LowerResult<Vec<HirStmt>> {
    if let Some(g) = try_gaxpy(s, info)? {
        return Ok(vec![g]);
    }
    if let Some(t) = try_transpose(s, info)? {
        return Ok(vec![t]);
    }
    if let Some(e) = try_elementwise(s, info)? {
        return Ok(vec![HirStmt::Elementwise(e)]);
    }
    if let Some(m) = try_spmv(s, info)? {
        return Ok(vec![m]);
    }
    // Iteration: a constant-trip do loop whose body does not reference the
    // loop variable unrolls into the repeated body (e.g. relaxation sweeps
    // alternating between two arrays).
    if let Stmt::Do { var, lo, hi, body } = s {
        let lo_v = info.eval_const(lo).map_err(|e| e.to_string())?;
        let hi_v = info.eval_const(hi).map_err(|e| e.to_string())?;
        let trips = hi_v - lo_v + 1;
        if trips < 0 {
            return Ok(vec![]); // zero-trip loop
        }
        if body.iter().any(|b| stmt_uses_var(b, var)) {
            return Err(format!(
                "do loop over `{var}`: the body references the loop variable, \
                 which only the GAXPY pattern supports"
            ));
        }
        if trips > UNROLL_LIMIT {
            return Err(format!(
                "do loop over `{var}` has {trips} iterations; the unroll \
                 limit is {UNROLL_LIMIT}"
            ));
        }
        let mut once = Vec::new();
        for b in body {
            once.extend(lower_stmt_seq(b, info)?);
        }
        let mut out = Vec::with_capacity(once.len() * trips as usize);
        for _ in 0..trips {
            out.extend(once.iter().cloned());
        }
        return Ok(out);
    }
    Err(format!(
        "unsupported statement pattern: {}",
        hpf::pretty::expr_of_stmt_head(s)
    ))
}

fn stmt_uses_var(s: &Stmt, var: &str) -> bool {
    match s {
        Stmt::Do {
            var: v,
            lo,
            hi,
            body,
        } => {
            // An inner loop may shadow `var`.
            expr_uses_var(lo, var)
                || expr_uses_var(hi, var)
                || (v != var && body.iter().any(|b| stmt_uses_var(b, var)))
        }
        Stmt::Forall { indices, body } => {
            indices
                .iter()
                .any(|(_, lo, hi)| expr_uses_var(lo, var) || expr_uses_var(hi, var))
                || (!indices.iter().any(|(v, _, _)| v == var)
                    && body.iter().any(|b| stmt_uses_var(b, var)))
        }
        Stmt::Assign { lhs, rhs, .. } => expr_uses_var(lhs, var) || expr_uses_var(rhs, var),
    }
}

fn expr_uses_var(e: &Expr, var: &str) -> bool {
    match e {
        Expr::Int(_) | Expr::Real(_) => false,
        Expr::Var(v) => v == var,
        Expr::Neg(i) => expr_uses_var(i, var),
        Expr::Bin(_, l, r) => expr_uses_var(l, var) || expr_uses_var(r, var),
        Expr::ArrayRef { subs, .. } => subs.iter().any(|s| match s {
            Subscript::Index(e) => expr_uses_var(e, var),
            Subscript::Triplet { lo, hi, step } => [lo, hi, step]
                .iter()
                .any(|o| o.as_ref().is_some_and(|e| expr_uses_var(e, var))),
        }),
        Expr::Call { args, .. } => args.iter().any(|a| expr_uses_var(a, var)),
    }
}

/// Recognize the paper's GAXPY pattern (Figure 3):
/// `do j = 1, n { forall (k = 1:n) temp(1:n,k) = b(k,j)*a(1:n,k); c(1:n,j) = sum(temp, 2) }`.
fn try_gaxpy(s: &Stmt, info: &ProgramInfo) -> LowerResult<Option<HirStmt>> {
    let Stmt::Do {
        var: j,
        lo,
        hi,
        body,
    } = s
    else {
        return Ok(None);
    };
    if body.len() != 2 {
        return Ok(None);
    }
    let Stmt::Forall { indices, body: fb } = &body[0] else {
        return Ok(None);
    };
    if indices.len() != 1 || fb.len() != 1 {
        return Ok(None);
    }
    let (k, klo, khi) = &indices[0];
    let Stmt::Assign { lhs, rhs, .. } = &fb[0] else {
        return Ok(None);
    };
    // temp(1:n, k) = b(k, j) * a(1:n, k)  (either multiplication order)
    let Expr::ArrayRef {
        name: temp,
        subs: tsubs,
    } = lhs
    else {
        return Ok(None);
    };
    if !(tsubs.len() == 2 && is_full_triplet(&tsubs[0], info) && is_index_var(&tsubs[1], k)) {
        return Ok(None);
    }
    let Expr::Bin(BinOp::Mul, m1, m2) = rhs else {
        return Ok(None);
    };
    let (scalar_ref, vector_ref) = if is_scalar_ref(m1, k, j) {
        (m1, m2)
    } else if is_scalar_ref(m2, k, j) {
        (m2, m1)
    } else {
        return Ok(None);
    };
    let Expr::ArrayRef { name: b, .. } = scalar_ref.as_ref() else {
        return Ok(None);
    };
    let Expr::ArrayRef { name: a, subs } = vector_ref.as_ref() else {
        return Ok(None);
    };
    if !(subs.len() == 2 && is_full_triplet(&subs[0], info) && is_index_var(&subs[1], k)) {
        return Ok(None);
    }
    // c(1:n, j) = sum(temp, 2)
    let Stmt::Assign {
        lhs: clhs,
        rhs: crhs,
        ..
    } = &body[1]
    else {
        return Ok(None);
    };
    let Expr::ArrayRef { name: c, subs: cs } = clhs else {
        return Ok(None);
    };
    if !(cs.len() == 2 && is_full_triplet(&cs[0], info) && is_index_var(&cs[1], j)) {
        return Ok(None);
    }
    let Expr::Call { name: f, args } = crhs else {
        return Ok(None);
    };
    if f != "sum" || args.len() != 2 {
        return Ok(None);
    }
    match (&args[0], &args[1]) {
        (Expr::Var(t2), Expr::Int(2)) if t2 == temp => {}
        _ => return Ok(None),
    }

    // The pattern matched structurally — now the distributions must fit the
    // GAXPY translation; mismatches are hard errors so the user learns why.
    let n = info
        .eval_const(hi)
        .map_err(|e| format!("gaxpy: non-constant bound: {e}"))? as usize;
    let lo_v = info
        .eval_const(lo)
        .map_err(|e| format!("gaxpy: non-constant bound: {e}"))?;
    let klo_v = info.eval_const(klo).map_err(|e| e.to_string())?;
    let khi_v = info.eval_const(khi).map_err(|e| e.to_string())? as usize;
    if lo_v != 1 || klo_v != 1 || khi_v != n {
        return Err("gaxpy: loops must cover 1:n".to_string());
    }
    // The column sections must cover the full first dimension; a partial
    // triplet like temp(1:5, k) is NOT the GAXPY pattern and must not be
    // silently compiled as if it were.
    let full_covers = |sub: &Subscript| -> bool {
        match sub {
            Subscript::Triplet { hi, .. } => match hi {
                None => true,
                Some(e) => info.eval_const(e).map(|v| v as usize == n).unwrap_or(false),
            },
            _ => false,
        }
    };
    if !(full_covers(&tsubs[0]) && full_covers(&subs[0]) && full_covers(&cs[0])) {
        return Err(format!(
            "gaxpy: column sections must cover 1:{n} (partial sections are not \
             the GAXPY pattern)"
        ));
    }
    for name in [a, b, c] {
        let arr = info
            .array(name)
            .ok_or_else(|| format!("gaxpy: undeclared array `{name}`"))?;
        if arr.shape.extents() != [n, n] {
            return Err(format!("gaxpy: `{name}` must be {n}x{n}"));
        }
    }
    use ooc_array::{DimDist, DistKind};
    let col_block = |name: &str| -> LowerResult<()> {
        let d = &info.array(name).expect("checked").dist;
        match (d.dims()[0], d.dims()[1]) {
            (
                DimDist::Collapsed,
                DimDist::Distributed {
                    kind: DistKind::Block,
                    ..
                },
            ) => Ok(()),
            _ => Err(format!("gaxpy: `{name}` must be distributed (*, block)")),
        }
    };
    col_block(a)?;
    col_block(c)?;
    let bd = &info.array(b).expect("checked").dist;
    match (bd.dims()[0], bd.dims()[1]) {
        (
            DimDist::Distributed {
                kind: DistKind::Block,
                ..
            },
            DimDist::Collapsed,
        ) => {}
        _ => return Err(format!("gaxpy: `{b}` must be distributed (block, *)")),
    }

    Ok(Some(HirStmt::Gaxpy {
        a: a.clone(),
        b: b.clone(),
        c: c.clone(),
        temp: temp.clone(),
        n,
    }))
}

/// Recognize `forall (i=1:n, j=1:m) dst(i,j) = src(j,i)`.
fn try_transpose(s: &Stmt, info: &ProgramInfo) -> LowerResult<Option<HirStmt>> {
    let Stmt::Forall { indices, body } = s else {
        return Ok(None);
    };
    if indices.len() != 2 || body.len() != 1 {
        return Ok(None);
    }
    let Stmt::Assign { lhs, rhs, .. } = &body[0] else {
        return Ok(None);
    };
    let (
        Expr::ArrayRef {
            name: dst,
            subs: ls,
        },
        Expr::ArrayRef {
            name: src,
            subs: rs,
        },
    ) = (lhs, rhs)
    else {
        return Ok(None);
    };
    let (i, j) = (&indices[0].0, &indices[1].0);
    let straight = ls.len() == 2
        && rs.len() == 2
        && is_index_var(&ls[0], i)
        && is_index_var(&ls[1], j)
        && is_index_var(&rs[0], j)
        && is_index_var(&rs[1], i);
    if !straight {
        return Ok(None);
    }
    // Must cover the full extents.
    let dst_arr = info
        .array(dst)
        .ok_or_else(|| format!("transpose: undeclared array `{dst}`"))?;
    let src_arr = info
        .array(src)
        .ok_or_else(|| format!("transpose: undeclared array `{src}`"))?;
    for (dim, (_, lo, hi)) in indices.iter().enumerate() {
        let lo = info.eval_const(lo).map_err(|e| e.to_string())?;
        let hi = info.eval_const(hi).map_err(|e| e.to_string())? as usize;
        if lo != 1 || hi != dst_arr.shape.extent(dim) {
            return Err("transpose: forall must cover the full arrays".to_string());
        }
    }
    if src_arr.shape.extent(0) != dst_arr.shape.extent(1)
        || src_arr.shape.extent(1) != dst_arr.shape.extent(0)
    {
        return Err("transpose: shape mismatch".to_string());
    }
    Ok(Some(HirStmt::Transpose {
        src: src.clone(),
        dst: dst.clone(),
    }))
}

/// Recognize an elementwise forall with shifted references.
fn try_elementwise(s: &Stmt, info: &ProgramInfo) -> LowerResult<Option<ElwStmt>> {
    let Stmt::Forall { indices, body } = s else {
        return Ok(None);
    };
    if body.len() != 1 {
        return Ok(None);
    }
    let Stmt::Assign { lhs, rhs, .. } = &body[0] else {
        return Ok(None);
    };
    let Expr::ArrayRef { name, subs } = lhs else {
        return Ok(None);
    };
    if subs.len() != indices.len() {
        return Ok(None);
    }
    // lhs subscripts must be the forall indices in order.
    let vars: Vec<&str> = indices.iter().map(|(v, _, _)| v.as_str()).collect();
    for (d, sub) in subs.iter().enumerate() {
        if !is_index_var(sub, vars[d]) {
            return Ok(None);
        }
    }
    let arr = info
        .array(name)
        .ok_or_else(|| format!("elementwise: undeclared array `{name}`"))?;
    // Iteration region from the forall bounds (1-based inclusive source).
    let mut ranges = Vec::with_capacity(indices.len());
    for (d, (_, lo, hi)) in indices.iter().enumerate() {
        let lo = info.eval_const(lo).map_err(|e| e.to_string())?;
        let hi = info.eval_const(hi).map_err(|e| e.to_string())?;
        if lo < 1 || hi as usize > arr.shape.extent(d) {
            return Err(format!(
                "elementwise: bounds {lo}:{hi} outside `{name}` dim {d}"
            ));
        }
        ranges.push(DimRange::new(lo as usize - 1, hi as usize));
    }
    let rhs = match lower_elw_expr(rhs, &vars, info) {
        Ok(e) => e,
        // Structurally an elementwise forall but the expression is out of
        // subset — report the reason rather than falling through.
        Err(msg) => return Err(format!("elementwise: {msg}")),
    };
    Ok(Some(ElwStmt {
        lhs: name.clone(),
        region: Section::new(ranges),
        rhs,
    }))
}

/// Recognize out-of-core CSR sparse matrix–vector multiplication:
///
/// ```text
/// do i = 1, n
///   y(i) = 0.0
///   do k = rowptr(i), rowptr(i+1) - 1
///     y(i) = y(i) + vals(k) * x(colidx(k))
///   end do
/// end do
/// ```
///
/// The trigger is the inner loop's array-valued lower bound — `do k =
/// rowptr(i), …` — which no other supported pattern produces; once
/// triggered, deviations are hard errors so the user learns why the
/// irregular translation does not apply.
fn try_spmv(s: &Stmt, info: &ProgramInfo) -> LowerResult<Option<HirStmt>> {
    let Stmt::Do {
        var: i,
        lo,
        hi,
        body,
    } = s
    else {
        return Ok(None);
    };
    if body.len() != 2 {
        return Ok(None);
    }
    let Stmt::Do {
        var: k,
        lo: klo,
        hi: khi,
        body: kbody,
    } = &body[1]
    else {
        return Ok(None);
    };
    let Expr::ArrayRef {
        name: rowptr,
        subs: rp_lo,
    } = klo
    else {
        return Ok(None);
    };
    let err = |msg: String| format!("spmv: {msg}");
    if !(rp_lo.len() == 1 && is_index_var(&rp_lo[0], i)) {
        return Err(err(format!("inner loop must start at `{rowptr}({i})`")));
    }
    let hi_matches = || -> bool {
        let Expr::Bin(BinOp::Sub, l, r) = khi else {
            return false;
        };
        if !matches!(r.as_ref(), Expr::Int(1)) {
            return false;
        }
        let Expr::ArrayRef { name, subs } = l.as_ref() else {
            return false;
        };
        name == rowptr && subs.len() == 1 && affine_offset(&subs[0], i) == Some(1)
    };
    if !hi_matches() {
        return Err(err(format!("inner loop must end at `{rowptr}({i}+1) - 1`")));
    }
    // y(i) = 0.0
    let Stmt::Assign { lhs, rhs, .. } = &body[0] else {
        return Err(err(
            "the row loop must clear the result first, `y(i) = 0.0`".into(),
        ));
    };
    let Expr::ArrayRef { name: y, subs: ys } = lhs else {
        return Err(err(
            "the row loop must clear the result first, `y(i) = 0.0`".into(),
        ));
    };
    if !(ys.len() == 1 && is_index_var(&ys[0], i)) {
        return Err(err(format!("the cleared element must be `{y}({i})`")));
    }
    match rhs {
        Expr::Real(v) if *v == 0.0 => {}
        Expr::Int(0) => {}
        _ => return Err(err(format!("`{y}({i})` must be cleared to zero"))),
    }
    // y(i) = y(i) + vals(k) * x(colidx(k))  (either multiplication order)
    let is_y_i = |e: &Expr| {
        matches!(e, Expr::ArrayRef { name, subs }
            if name == y && subs.len() == 1 && is_index_var(&subs[0], i))
    };
    let acc_err = || {
        err(format!(
            "inner body must be `{y}({i}) = {y}({i}) + vals({k}) * x(colidx({k}))`"
        ))
    };
    if kbody.len() != 1 {
        return Err(acc_err());
    }
    let Stmt::Assign {
        lhs: alhs,
        rhs: arhs,
        ..
    } = &kbody[0]
    else {
        return Err(acc_err());
    };
    if !is_y_i(alhs) {
        return Err(acc_err());
    }
    let Expr::Bin(BinOp::Add, al, ar) = arhs else {
        return Err(acc_err());
    };
    if !is_y_i(al) {
        return Err(acc_err());
    }
    let Expr::Bin(BinOp::Mul, f1, f2) = ar.as_ref() else {
        return Err(acc_err());
    };
    // vals(k): a direct reference through the nonzero index.
    fn direct_ref<'a>(e: &'a Expr, k: &str) -> Option<&'a str> {
        match e {
            Expr::ArrayRef { name, subs } if subs.len() == 1 && is_index_var(&subs[0], k) => {
                Some(name.as_str())
            }
            _ => None,
        }
    }
    // x(colidx(k)): the irregular indirection the inspector services.
    fn indirect_ref<'a>(e: &'a Expr, k: &str) -> Option<(&'a str, &'a str)> {
        let Expr::ArrayRef { name, subs } = e else {
            return None;
        };
        if subs.len() != 1 {
            return None;
        }
        let Subscript::Index(Expr::ArrayRef {
            name: idx,
            subs: isubs,
        }) = &subs[0]
        else {
            return None;
        };
        (isubs.len() == 1 && is_index_var(&isubs[0], k)).then_some((name.as_str(), idx.as_str()))
    }
    let (vals, x, colidx) =
        if let (Some(v), Some((x, c))) = (direct_ref(f1, k), indirect_ref(f2, k)) {
            (v, x, c)
        } else if let (Some(v), Some((x, c))) = (direct_ref(f2, k), indirect_ref(f1, k)) {
            (v, x, c)
        } else {
            return Err(acc_err());
        };

    // Pattern matched — validate bounds, shapes and distributions.
    let lo_v = info
        .eval_const(lo)
        .map_err(|e| err(format!("non-constant row bound: {e}")))?;
    let n = info
        .eval_const(hi)
        .map_err(|e| err(format!("non-constant row bound: {e}")))? as usize;
    if lo_v != 1 {
        return Err(err("the row loop must start at 1".into()));
    }
    let arr = |name: &str| {
        info.array(name)
            .ok_or_else(|| err(format!("undeclared array `{name}`")))
    };
    use ooc_array::{DimDist, DistKind};
    for name in [y, rowptr, colidx, vals, x] {
        let a = arr(name)?;
        if a.shape.extents().len() != 1 {
            return Err(err(format!("`{name}` must be a vector")));
        }
        if !matches!(
            a.dist.dims()[0],
            DimDist::Distributed {
                kind: DistKind::Block,
                ..
            }
        ) {
            return Err(err(format!(
                "`{name}` must be distributed (block): the inspector bins \
                 gather targets by block owner"
            )));
        }
    }
    if arr(y)?.shape.extents() != [n] {
        return Err(err(format!("`{y}` must have length {n}")));
    }
    if arr(x)?.shape.extents() != [n] {
        return Err(err(format!("`{x}` must have length {n}")));
    }
    if arr(rowptr)?.shape.extents() != [n + 1] {
        return Err(err(format!("`{rowptr}` must have length {}", n + 1)));
    }
    let nnz = arr(colidx)?.shape.extent(0);
    if arr(vals)?.shape.extents() != [nnz] {
        return Err(err(format!(
            "`{vals}` must match `{colidx}` (length {nnz})"
        )));
    }
    Ok(Some(HirStmt::Spmv {
        y: y.to_string(),
        rowptr: rowptr.clone(),
        colidx: colidx.to_string(),
        vals: vals.to_string(),
        x: x.to_string(),
        n,
        nnz,
    }))
}

fn lower_elw_expr(e: &Expr, vars: &[&str], info: &ProgramInfo) -> LowerResult<ElwExpr> {
    match e {
        Expr::Int(v) => Ok(ElwExpr::Const(*v as f32)),
        Expr::Real(v) => Ok(ElwExpr::Const(*v as f32)),
        Expr::Var(name) => match info.params.get(name) {
            Some(v) => Ok(ElwExpr::Const(*v as f32)),
            None => Err(format!("scalar `{name}` is not a constant parameter")),
        },
        Expr::Neg(inner) => Ok(ElwExpr::Neg(Box::new(lower_elw_expr(inner, vars, info)?))),
        Expr::Bin(op, l, r) => {
            let l = Box::new(lower_elw_expr(l, vars, info)?);
            let r = Box::new(lower_elw_expr(r, vars, info)?);
            Ok(match op {
                BinOp::Add => ElwExpr::Add(l, r),
                BinOp::Sub => ElwExpr::Sub(l, r),
                BinOp::Mul => ElwExpr::Mul(l, r),
                BinOp::Div => ElwExpr::Div(l, r),
            })
        }
        Expr::ArrayRef { name, subs } => {
            if subs.len() != vars.len() {
                return Err(format!("`{name}` rank does not match forall nest"));
            }
            let mut offsets = Vec::with_capacity(subs.len());
            for (d, sub) in subs.iter().enumerate() {
                offsets.push(affine_offset(sub, vars[d]).ok_or_else(|| {
                    format!("subscript {d} of `{name}` is not `{} ± const`", vars[d])
                })?);
            }
            Ok(ElwExpr::Ref {
                array: name.clone(),
                offsets,
            })
        }
        Expr::Call { name, .. } => Err(format!("intrinsic `{name}` not allowed here")),
    }
}

/// Match `v`, `v + c`, `c + v`, `v - c`; return the signed offset.
fn affine_offset(sub: &Subscript, var: &str) -> Option<isize> {
    let Subscript::Index(e) = sub else {
        return None;
    };
    match e {
        Expr::Var(v) if v == var => Some(0),
        Expr::Bin(BinOp::Add, l, r) => match (l.as_ref(), r.as_ref()) {
            (Expr::Var(v), Expr::Int(c)) if v == var => Some(*c as isize),
            (Expr::Int(c), Expr::Var(v)) if v == var => Some(*c as isize),
            _ => None,
        },
        Expr::Bin(BinOp::Sub, l, r) => match (l.as_ref(), r.as_ref()) {
            (Expr::Var(v), Expr::Int(c)) if v == var => Some(-(*c as isize)),
            _ => None,
        },
        _ => None,
    }
}

fn is_index_var(sub: &Subscript, var: &str) -> bool {
    matches!(sub, Subscript::Index(Expr::Var(v)) if v == var)
}

/// `1:n`, `1:n:1` or `:` (the full first dimension).
fn is_full_triplet(sub: &Subscript, info: &ProgramInfo) -> bool {
    match sub {
        Subscript::Triplet { lo, hi, step } => {
            let lo_ok = match lo {
                None => true,
                Some(e) => info.eval_const(e).map(|v| v == 1).unwrap_or(false),
            };
            let step_ok = match step {
                None => true,
                Some(e) => info.eval_const(e).map(|v| v == 1).unwrap_or(false),
            };
            // `hi` is checked against the shape later; any constant works
            // for pattern recognition.
            let hi_ok = match hi {
                None => true,
                Some(e) => info.eval_const(e).is_ok(),
            };
            lo_ok && step_ok && hi_ok
        }
        _ => false,
    }
}

/// `b(k, j)` — both subscripts plain index variables `k` then `j`.
fn is_scalar_ref(e: &Expr, k: &str, j: &str) -> bool {
    match e {
        Expr::ArrayRef { subs, .. } => {
            subs.len() == 2 && is_index_var(&subs[0], k) && is_index_var(&subs[1], j)
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf::{analyze, parse_program};

    fn lower_src(src: &str) -> LowerResult<HirProgram> {
        let prog = parse_program(src).expect("parse");
        let info = analyze(&prog).expect("sema");
        lower(&info)
    }

    #[test]
    fn figure3_lowers_to_gaxpy() {
        let hir = lower_src(hpf::GAXPY_SOURCE).unwrap();
        assert_eq!(hir.stmts.len(), 1);
        match &hir.stmts[0] {
            HirStmt::Gaxpy { a, b, c, temp, n } => {
                assert_eq!((a.as_str(), b.as_str(), c.as_str()), ("a", "b", "c"));
                assert_eq!(temp, "temp");
                assert_eq!(*n, 64);
            }
            other => panic!("expected gaxpy, got {other:?}"),
        }
    }

    #[test]
    fn gaxpy_with_swapped_multiplication_order() {
        let src = hpf::GAXPY_SOURCE.replace("b(k, j) * a(1:n, k)", "a(1:n, k) * b(k, j)");
        let hir = lower_src(&src).unwrap();
        assert!(matches!(hir.stmts[0], HirStmt::Gaxpy { .. }));
    }

    #[test]
    fn jacobi_lowers_to_elementwise() {
        let src = "
      parameter (n=16)
      real u(n, n), v(n, n)
!hpf$ processors pr(4)
!hpf$ template t(n)
!hpf$ distribute t(block) on pr
!hpf$ align (:, *) with t :: u, v
      forall (i = 2:n-1, j = 2:n-1)
        v(i, j) = 0.25 * (u(i-1, j) + u(i+1, j) + u(i, j-1) + u(i, j+1))
      end forall
      end
";
        let hir = lower_src(src).unwrap();
        let HirStmt::Elementwise(e) = &hir.stmts[0] else {
            panic!("expected elementwise");
        };
        assert_eq!(e.lhs, "v");
        assert_eq!(e.region.range(0), DimRange::new(1, 15));
        assert_eq!(e.max_shift(2), vec![1, 1]);
        assert_eq!(e.rhs.flops_per_point(), 4);
    }

    #[test]
    fn transpose_is_recognized() {
        let src = "
      parameter (n=8)
      real a(n, n), b(n, n)
!hpf$ processors pr(2)
!hpf$ distribute a(*, block) on pr
!hpf$ distribute b(*, block) on pr
      forall (i = 1:n, j = 1:n)
        b(i, j) = a(j, i)
      end forall
      end
";
        let hir = lower_src(src).unwrap();
        assert_eq!(
            hir.stmts[0],
            HirStmt::Transpose {
                src: "a".into(),
                dst: "b".into()
            }
        );
    }

    #[test]
    fn scaled_copy_is_elementwise() {
        let src = "
      parameter (n=8)
      real a(n, n), b(n, n)
!hpf$ processors pr(2)
!hpf$ distribute a(*, block) on pr
!hpf$ distribute b(*, block) on pr
      forall (i = 1:n, j = 1:n)
        b(i, j) = 2.0 * a(i, j) + 1.0
      end forall
      end
";
        let hir = lower_src(src).unwrap();
        assert!(matches!(hir.stmts[0], HirStmt::Elementwise(_)));
    }

    #[test]
    fn nonaffine_subscript_is_reported() {
        let src = "
      parameter (n=8)
      real a(n, n), b(n, n)
!hpf$ processors pr(2)
!hpf$ distribute a(*, block) on pr
!hpf$ distribute b(*, block) on pr
      forall (i = 1:n, j = 1:n)
        b(i, j) = a(i * 2, j)
      end forall
      end
";
        let err = lower_src(src).unwrap_err();
        assert!(err.contains("not `i ± const`"), "{err}");
    }

    #[test]
    fn constant_do_loop_unrolls_sweeps() {
        let src = "
      parameter (n=16, iters=3)
      real u(n, n), v(n, n)
!hpf$ processors pr(4)
!hpf$ template t(n)
!hpf$ distribute t(block) on pr
!hpf$ align (:, *) with t :: u, v
      do it = 1, iters
        forall (i = 2:n-1, j = 2:n-1)
          v(i, j) = 0.25 * (u(i-1, j) + u(i+1, j) + u(i, j-1) + u(i, j+1))
        end forall
        forall (i = 2:n-1, j = 2:n-1)
          u(i, j) = v(i, j)
        end forall
      end do
      end
";
        let hir = lower_src(src).unwrap();
        assert_eq!(hir.stmts.len(), 6); // 3 iterations x 2 statements
        assert!(hir
            .stmts
            .iter()
            .all(|s| matches!(s, HirStmt::Elementwise(_))));
    }

    #[test]
    fn do_loop_referencing_its_variable_is_rejected() {
        let src = "
      parameter (n=8)
      real u(n, n)
!hpf$ processors pr(2)
!hpf$ distribute u(*, block) on pr
      do it = 1, 4
        forall (i = 1:n, j = 1:n)
          u(i, j) = u(i, j) + it
        end forall
      end do
      end
";
        let err = lower_src(src).unwrap_err();
        assert!(err.contains("references the loop variable"), "{err}");
    }

    #[test]
    fn huge_do_loop_hits_the_unroll_limit() {
        let src = "
      parameter (n=8)
      real u(n, n)
!hpf$ processors pr(2)
!hpf$ distribute u(*, block) on pr
      do it = 1, 1000
        forall (i = 1:n, j = 1:n)
          u(i, j) = 2.0 * u(i, j)
        end forall
      end do
      end
";
        let err = lower_src(src).unwrap_err();
        assert!(err.contains("unroll limit"), "{err}");
    }

    #[test]
    fn nested_do_loops_multiply_out() {
        let src = "
      parameter (n=8)
      real u(n, n), v(n, n)
!hpf$ processors pr(2)
!hpf$ distribute u(*, block) on pr
!hpf$ distribute v(*, block) on pr
      do a = 1, 2
        do b = 1, 3
          forall (i = 1:n, j = 1:n)
            v(i, j) = u(i, j)
          end forall
        end do
      end do
      end
";
        let hir = lower_src(src).unwrap();
        assert_eq!(hir.stmts.len(), 6);
    }

    #[test]
    fn gaxpy_partial_column_section_is_rejected() {
        // temp(1:5, k) is not the GAXPY pattern; it must not compile as one.
        let src = hpf::GAXPY_SOURCE.replace("temp(1:n, k)", "temp(1:5, k)");
        let err = lower_src(&src).unwrap_err();
        assert!(err.contains("cover 1:64"), "{err}");
    }

    #[test]
    fn gaxpy_wrong_distribution_is_reported() {
        // b distributed column-block like a: the GAXPY translation does not
        // apply.
        let src = hpf::GAXPY_SOURCE.replace(
            "!hpf$ align (:,*) with d :: b",
            "!hpf$ align (*,:) with d :: b",
        );
        let err = lower_src(&src).unwrap_err();
        assert!(err.contains("(block, *)"), "{err}");
    }

    #[test]
    fn csr_spmv_lowers_to_spmv() {
        let hir = lower_src(hpf::SPMV_SOURCE).unwrap();
        assert_eq!(hir.stmts.len(), 1);
        match &hir.stmts[0] {
            HirStmt::Spmv {
                y,
                rowptr,
                colidx,
                vals,
                x,
                n,
                nnz,
            } => {
                assert_eq!(
                    (
                        y.as_str(),
                        rowptr.as_str(),
                        colidx.as_str(),
                        vals.as_str(),
                        x.as_str()
                    ),
                    ("y", "rowptr", "colidx", "vals", "x")
                );
                assert_eq!((*n, *nnz), (64, 512));
            }
            other => panic!("expected spmv, got {other:?}"),
        }
    }

    #[test]
    fn spmv_with_swapped_multiplication_order() {
        let src = hpf::SPMV_SOURCE.replace("vals(k) * x(colidx(k))", "x(colidx(k)) * vals(k)");
        let hir = lower_src(&src).unwrap();
        assert!(matches!(hir.stmts[0], HirStmt::Spmv { .. }));
    }

    #[test]
    fn spmv_without_clearing_the_result_is_reported() {
        let src = hpf::SPMV_SOURCE.replace("y(i) = 0.0", "y(i) = 1.0");
        let err = lower_src(&src).unwrap_err();
        assert!(err.contains("cleared to zero"), "{err}");
    }

    #[test]
    fn spmv_with_undistributed_indirection_array_is_reported() {
        // The indirection array itself is checked upstream in sema (with a
        // source line); the lowering still rejects it for callers that skip
        // the frontend, and rejects non-block *data* arrays itself.
        let src = hpf::SPMV_SOURCE.replace(
            "distribute colidx(block) on pr",
            "distribute colidx(cyclic) on pr",
        );
        let prog = parse_program(&src).expect("parse");
        let err = analyze(&prog).unwrap_err();
        assert!(
            err.message.contains("colidx") && err.message.contains("block"),
            "{err}"
        );
        assert!(err.line > 0, "sema diagnostic should carry a line: {err}");

        let src =
            hpf::SPMV_SOURCE.replace("distribute x(block) on pr", "distribute x(cyclic) on pr");
        let err = lower_src(&src).unwrap_err();
        assert!(err.contains("`x`") && err.contains("block"), "{err}");
    }

    #[test]
    fn spmv_with_mismatched_vals_length_is_reported() {
        let src = hpf::SPMV_SOURCE.replace("vals(nnz)", "vals(nnz + 1)");
        let err = lower_src(&src).unwrap_err();
        assert!(err.contains("must match"), "{err}");
    }

    #[test]
    fn spmv_with_wrong_upper_bound_is_reported() {
        let src = hpf::SPMV_SOURCE.replace("rowptr(i+1) - 1", "rowptr(i+1)");
        let err = lower_src(&src).unwrap_err();
        assert!(err.contains("rowptr(i+1) - 1"), "{err}");
    }

    #[test]
    fn out_of_bounds_forall_is_reported() {
        let src = "
      parameter (n=8)
      real a(n, n)
!hpf$ processors pr(2)
!hpf$ distribute a(*, block) on pr
      forall (i = 1:n+1, j = 1:n)
        a(i, j) = 0.0
      end forall
      end
";
        let err = lower_src(src).unwrap_err();
        assert!(err.contains("outside"), "{err}");
    }
}
