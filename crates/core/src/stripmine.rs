//! Out-of-core phase, step 1: stripmining (§3.3).
//!
//! "The iteration space of a FORALL statement is sectioned (stripmined) so
//! that each iteration operates on the data that can fit in the processor's
//! memory." This module turns a sizing policy into concrete slab
//! thicknesses for the GAXPY translation and elementwise statements.

use serde::{Deserialize, Serialize};

use crate::memory::MemoryPolicy;
use crate::plan::SlabStrategy;

/// How slab sizes are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SlabSizing {
    /// Explicit thicknesses: columns-of-OCLA for B, and columns (column
    /// version) or rows (row version) for A — the knobs Table 2 sweeps.
    Explicit {
        /// A's slab thickness.
        a: usize,
        /// B's slab thickness.
        b: usize,
    },
    /// The paper's slab ratio: thickness = ratio × slab-dimension extent,
    /// applied to both A and B (Figure 10 / Table 1 use 1, 1/2, 1/4, 1/8).
    Ratio(f64),
    /// A total in-core element budget split between the competing arrays by
    /// a [`MemoryPolicy`].
    Budget {
        /// Total elements of node memory available for slabs.
        elems: usize,
        /// Split policy.
        policy: MemoryPolicy,
    },
}

impl Default for SlabSizing {
    fn default() -> Self {
        // A sensible default node memory: 1M elements (4 MB of reals).
        SlabSizing::Budget {
            elems: 1 << 20,
            policy: MemoryPolicy::AccessWeighted,
        }
    }
}

/// Concrete slab thicknesses for a GAXPY plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaxpySlabs {
    /// A's thickness along its slab dimension.
    pub a: usize,
    /// B's thickness (columns of B's OCLA).
    pub b: usize,
    /// C's write-buffer thickness (columns, column version only).
    pub c: usize,
}

/// The extent A's slab dimension has under `strategy` (columns of the OCLA
/// for the column version, global rows for the row version).
pub fn a_slab_extent(strategy: SlabStrategy, n: usize, p: usize) -> usize {
    match strategy {
        SlabStrategy::ColumnSlab => n.div_ceil(p),
        SlabStrategy::RowSlab => n,
    }
}

/// Resolve a sizing policy into thicknesses.
pub fn size_gaxpy(
    strategy: SlabStrategy,
    n: usize,
    p: usize,
    sizing: SlabSizing,
    model: &dmsim::CostModel,
) -> GaxpySlabs {
    let lc = n.div_ceil(p);
    let a_extent = a_slab_extent(strategy, n, p);
    let (a, b) = match sizing {
        SlabSizing::Explicit { a, b } => (a.clamp(1, a_extent), b.clamp(1, n)),
        SlabSizing::Ratio(r) => {
            assert!(r > 0.0 && r <= 1.0, "slab ratio in (0,1]");
            let a = ((a_extent as f64 * r).round() as usize).clamp(1, a_extent);
            let b = ((n as f64 * r).round() as usize).clamp(1, n);
            (a, b)
        }
        SlabSizing::Budget { elems, policy } => {
            crate::memory::split_gaxpy_budget(strategy, n, p, elems, policy, model)
        }
    };
    // C's write buffer: matches A's thickness in the column version (bounded
    // by the owned columns); the row version writes one row slab per A slab.
    let c = match strategy {
        SlabStrategy::ColumnSlab => a.min(lc),
        SlabStrategy::RowSlab => a,
    };
    GaxpySlabs { a, b, c }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_sizing_matches_paper() {
        // 1K arrays on 4 procs: OCLA of A is 1024x256.
        let s = size_gaxpy(
            SlabStrategy::ColumnSlab,
            1024,
            4,
            SlabSizing::Ratio(0.25),
            &dmsim::CostModel::delta(4),
        );
        assert_eq!(s.a, 64); // 256/4 columns
        assert_eq!(s.b, 256); // 1024/4 columns of B
        let s1 = size_gaxpy(
            SlabStrategy::ColumnSlab,
            1024,
            4,
            SlabSizing::Ratio(1.0),
            &dmsim::CostModel::delta(4),
        );
        assert_eq!(s1.a, 256); // whole OCLA in one slab
    }

    #[test]
    fn row_version_ratio_uses_rows() {
        let s = size_gaxpy(
            SlabStrategy::RowSlab,
            1024,
            4,
            SlabSizing::Ratio(0.125),
            &dmsim::CostModel::delta(4),
        );
        assert_eq!(s.a, 128); // 1024/8 rows
    }

    #[test]
    fn explicit_sizes_are_clamped() {
        let s = size_gaxpy(
            SlabStrategy::ColumnSlab,
            64,
            4,
            SlabSizing::Explicit { a: 9999, b: 0 },
            &dmsim::CostModel::delta(4),
        );
        assert_eq!(s.a, 16); // OCLA has 16 columns
        assert_eq!(s.b, 1);
    }

    #[test]
    fn c_buffer_bounded_by_owned_columns() {
        let s = size_gaxpy(
            SlabStrategy::RowSlab,
            64,
            4,
            SlabSizing::Explicit { a: 32, b: 8 },
            &dmsim::CostModel::delta(4),
        );
        assert_eq!(s.c, 32); // row version: one row slab of C per A slab
        let s2 = size_gaxpy(
            SlabStrategy::ColumnSlab,
            64,
            4,
            SlabSizing::Explicit { a: 32, b: 8 },
            &dmsim::CostModel::delta(4),
        );
        assert_eq!(s2.c, 16); // clamped to lc
    }

    #[test]
    #[should_panic(expected = "slab ratio")]
    fn zero_ratio_rejected() {
        size_gaxpy(
            SlabStrategy::ColumnSlab,
            64,
            4,
            SlabSizing::Ratio(0.0),
            &dmsim::CostModel::delta(4),
        );
    }
}
