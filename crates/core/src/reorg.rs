//! Data access reorganization: candidate generation and selection (§4).
//!
//! For the GAXPY statement the compiler builds both translations — the
//! column-slab version (the straightforward extension of in-core
//! compilation, Figure 9) and the row-slab version (storage reorganized so
//! A streams once, Figure 12) — estimates each one's I/O cost from its
//! symbolic node program, and selects the cheaper (the algorithm of
//! Figure 14).

use serde::{Deserialize, Serialize};

use dmsim::CostModel;
use ooc_array::{ArrayDesc, ArrayId, FileLayout};
use pario::ElemKind;

use crate::cost::CostEstimate;
use crate::hir::HirArray;
use crate::ir::NestNode;
use crate::nodegen::gaxpy_nest;
use crate::plan::{GaxpyPlan, SlabStrategy};
use crate::stripmine::{size_gaxpy, SlabSizing};

/// The layouts a strategy wants for (A, B, C) when storage reorganization
/// is permitted.
pub fn desired_layouts(strategy: SlabStrategy) -> (FileLayout, FileLayout, FileLayout) {
    match strategy {
        SlabStrategy::ColumnSlab => (
            FileLayout::column_major(2),
            FileLayout::column_major(2),
            FileLayout::column_major(2),
        ),
        // Row slabs of A and row-slab writes of C are contiguous only when
        // those files are stored row-major — the reorganization.
        SlabStrategy::RowSlab => (
            FileLayout::row_major(2),
            FileLayout::column_major(2),
            FileLayout::row_major(2),
        ),
    }
}

/// Build a fully-sized GAXPY plan for one strategy.
///
/// `layouts` are the actual file layouts to use (callers pass the desired
/// ones, or the already-locked ones when another statement fixed an array's
/// storage, or column-major when reorganization is disabled — the ablation).
#[allow(clippy::too_many_arguments)]
pub fn build_gaxpy_plan(
    ids: (ArrayId, ArrayId, ArrayId),
    arrays: (&HirArray, &HirArray, &HirArray),
    n: usize,
    p: usize,
    strategy: SlabStrategy,
    sizing: SlabSizing,
    layouts: (FileLayout, FileLayout, FileLayout),
    model: &CostModel,
) -> GaxpyPlan {
    let slabs = size_gaxpy(strategy, n, p, sizing, model);
    let (a, b, c) = arrays;
    let desc = |id: ArrayId, arr: &HirArray, layout: FileLayout| {
        ArrayDesc::new(id, arr.name.clone(), ElemKind::F32, arr.dist.clone()).with_layout(layout)
    };
    GaxpyPlan {
        strategy,
        a: desc(ids.0, a, layouts.0),
        b: desc(ids.1, b, layouts.1),
        c: desc(ids.2, c, layouts.2),
        n,
        nprocs: p,
        slab_a: slabs.a,
        slab_b: slabs.b,
        slab_c: slabs.c,
    }
}

/// Outcome of strategy selection for one GAXPY statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaxpyChoice {
    /// The selected plan.
    pub plan: GaxpyPlan,
    /// Its symbolic node program.
    pub nest: Vec<NestNode>,
    /// Cost estimates of every candidate, in candidate order.
    pub estimates: Vec<(SlabStrategy, CostEstimate)>,
}

/// Selection parameters.
pub struct GaxpySelection<'a> {
    /// Array ids of (a, b, c).
    pub ids: (ArrayId, ArrayId, ArrayId),
    /// HIR arrays of (a, b, c).
    pub arrays: (&'a HirArray, &'a HirArray, &'a HirArray),
    /// Matrix order.
    pub n: usize,
    /// Processors.
    pub p: usize,
    /// Slab sizing policy.
    pub sizing: SlabSizing,
    /// When false, all layouts stay column-major (the ablation showing the
    /// reorganization is what makes row slabs cheap).
    pub reorganize: bool,
    /// Per-array layout already fixed by an earlier statement.
    pub locked: (Option<FileLayout>, Option<FileLayout>, Option<FileLayout>),
    /// Force a strategy instead of selecting by cost (used by the
    /// experiment harness to produce both columns of Table 1).
    pub force: Option<SlabStrategy>,
}

/// Run the Figure 14 selection: build candidates, estimate, choose.
pub fn choose_gaxpy(sel: &GaxpySelection<'_>, model: &CostModel) -> GaxpyChoice {
    let candidates = [SlabStrategy::ColumnSlab, SlabStrategy::RowSlab];
    let mut scored: Vec<(SlabStrategy, GaxpyPlan, Vec<NestNode>, CostEstimate)> = Vec::new();
    for strategy in candidates {
        let desired = if sel.reorganize {
            desired_layouts(strategy)
        } else {
            (
                FileLayout::column_major(2),
                FileLayout::column_major(2),
                FileLayout::column_major(2),
            )
        };
        let layouts = (
            sel.locked.0.clone().unwrap_or(desired.0),
            sel.locked.1.clone().unwrap_or(desired.1),
            sel.locked.2.clone().unwrap_or(desired.2),
        );
        let plan = build_gaxpy_plan(
            sel.ids, sel.arrays, sel.n, sel.p, strategy, sel.sizing, layouts, model,
        );
        let nest = gaxpy_nest(&plan);
        let est = CostEstimate::from_nest(&nest, model, 4);
        scored.push((strategy, plan, nest, est));
    }
    let estimates: Vec<(SlabStrategy, CostEstimate)> =
        scored.iter().map(|(s, _, _, e)| (*s, e.clone())).collect();
    let pick = match sel.force {
        Some(f) => scored
            .iter()
            .position(|(s, _, _, _)| *s == f)
            .expect("forced strategy is a candidate"),
        None => scored
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.3.time().partial_cmp(&b.3.time()).expect("finite times"))
            .map(|(i, _)| i)
            .expect("two candidates"),
    };
    let (_, plan, nest, _) = scored.swap_remove(pick);
    GaxpyChoice {
        plan,
        nest,
        estimates,
    }
}

/// Outcome of access-method selection for one remap-style access (a
/// pre-statement redistribution or a transpose): every candidate method
/// priced under the machine model, cheapest wins unless forced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IoMethodChoice {
    /// What the access is, e.g. `remap b` or `transpose d`.
    pub access: String,
    /// The selected method.
    pub chosen: pario::IoMethod,
    /// Cost estimates of every candidate, in [`pario::IoMethod::ALL`]
    /// order.
    pub estimates: Vec<(pario::IoMethod, CostEstimate)>,
    /// True when [`crate::CompilerOptions::io_method`] forced the choice.
    pub forced: bool,
}

impl IoMethodChoice {
    /// The estimate behind the chosen method.
    pub fn chosen_estimate(&self) -> &CostEstimate {
        &self
            .estimates
            .iter()
            .find(|(m, _)| *m == self.chosen)
            .expect("chosen method was scored")
            .1
    }
}

/// Select the access method for one remap-style access: build the candidate
/// nest for each [`pario::IoMethod`] via `nest_for`, price it under
/// `model`, and pick the cheapest — or `force`, when set. All estimates are
/// kept for the report.
pub fn choose_io_method<F>(
    access: impl Into<String>,
    model: &CostModel,
    force: Option<pario::IoMethod>,
    nest_for: F,
) -> IoMethodChoice
where
    F: Fn(pario::IoMethod) -> Vec<NestNode>,
{
    let estimates: Vec<(pario::IoMethod, CostEstimate)> = pario::IoMethod::ALL
        .into_iter()
        .map(|m| (m, CostEstimate::from_nest(&nest_for(m), model, 4)))
        .collect();
    let chosen = match force {
        Some(f) => f,
        None => {
            estimates
                .iter()
                .min_by(|(_, a), (_, b)| a.time().partial_cmp(&b.time()).expect("finite times"))
                .expect("three candidates")
                .0
        }
    };
    IoMethodChoice {
        access: access.into(),
        chosen,
        estimates,
        forced: force.is_some(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooc_array::{Distribution, Shape};

    fn arrays(n: usize, p: usize) -> (HirArray, HirArray, HirArray) {
        let col = Distribution::column_block(Shape::matrix(n, n), p);
        let row = Distribution::row_block(Shape::matrix(n, n), p);
        (
            HirArray {
                name: "a".into(),
                shape: Shape::matrix(n, n),
                dist: col.clone(),
            },
            HirArray {
                name: "b".into(),
                shape: Shape::matrix(n, n),
                dist: row,
            },
            HirArray {
                name: "c".into(),
                shape: Shape::matrix(n, n),
                dist: col,
            },
        )
    }

    fn selection<'a>(
        arrs: &'a (HirArray, HirArray, HirArray),
        n: usize,
        p: usize,
    ) -> GaxpySelection<'a> {
        GaxpySelection {
            ids: (ArrayId(0), ArrayId(1), ArrayId(2)),
            arrays: (&arrs.0, &arrs.1, &arrs.2),
            n,
            p,
            sizing: SlabSizing::Ratio(0.25),
            reorganize: true,
            locked: (None, None, None),
            force: None,
        }
    }

    #[test]
    fn selector_picks_row_slabs_on_delta() {
        let arrs = arrays(256, 4);
        let sel = selection(&arrs, 256, 4);
        let choice = choose_gaxpy(&sel, &CostModel::delta(4));
        assert_eq!(choice.plan.strategy, SlabStrategy::RowSlab);
        // And the estimate gap is roughly an order of magnitude in data.
        let col = &choice.estimates[0].1;
        let row = &choice.estimates[1].1;
        assert!(col.io_bytes() > 10 * row.io_bytes());
    }

    #[test]
    fn forced_strategy_is_respected() {
        let arrs = arrays(64, 4);
        let mut sel = selection(&arrs, 64, 4);
        sel.force = Some(SlabStrategy::ColumnSlab);
        let choice = choose_gaxpy(&sel, &CostModel::delta(4));
        assert_eq!(choice.plan.strategy, SlabStrategy::ColumnSlab);
        // Both estimates still reported for the comparison table.
        assert_eq!(choice.estimates.len(), 2);
    }

    #[test]
    fn row_plan_reorganizes_a_and_c() {
        let arrs = arrays(64, 4);
        let sel = selection(&arrs, 64, 4);
        let choice = choose_gaxpy(&sel, &CostModel::delta(4));
        assert_eq!(choice.plan.a.layout, FileLayout::row_major(2));
        assert_eq!(choice.plan.c.layout, FileLayout::row_major(2));
        assert_eq!(choice.plan.b.layout, FileLayout::column_major(2));
    }

    #[test]
    fn no_reorg_ablation_shrinks_the_gap() {
        let arrs = arrays(256, 4);
        let mut sel = selection(&arrs, 256, 4);
        let with = choose_gaxpy(&sel, &CostModel::delta(4));
        sel.reorganize = false;
        let without = choose_gaxpy(&sel, &CostModel::delta(4));
        // Without reorganization the row version's A reads are strided, so
        // whatever is selected costs more than the reorganized row version.
        let best_with = with
            .estimates
            .iter()
            .map(|(_, e)| e.time())
            .fold(f64::INFINITY, f64::min);
        let best_without = without
            .estimates
            .iter()
            .map(|(_, e)| e.time())
            .fold(f64::INFINITY, f64::min);
        assert!(best_without > best_with);
    }

    #[test]
    fn locked_layout_is_honored() {
        let arrs = arrays(64, 4);
        let mut sel = selection(&arrs, 64, 4);
        sel.locked.0 = Some(FileLayout::column_major(2));
        let choice = choose_gaxpy(&sel, &CostModel::delta(4));
        assert_eq!(choice.plan.a.layout, FileLayout::column_major(2));
    }
}
