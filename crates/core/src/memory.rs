//! Out-of-core phase: memory allocation among competing arrays (§4.2.1).
//!
//! "Instead of dividing the available memory equally among all arrays, the
//! best performance is obtained when the most frequently accessed array is
//! allocated a larger slab size." Table 2 demonstrates this empirically;
//! this module implements three policies the ablation benches compare:
//!
//! * [`MemoryPolicy::EqualSplit`] — the naive half/half baseline;
//! * [`MemoryPolicy::AccessWeighted`] — closed-form √-weighted split: with
//!   request counts `R_X(m) = K_X / m_X` and `m_A + m_B = M`, total
//!   requests are minimized at `m_X ∝ √K_X`, which allocates more memory
//!   to the more frequently streamed array (the paper's heuristic made
//!   precise);
//! * [`MemoryPolicy::Search`] — exhaustive split search scored by the cost
//!   estimator (the reference optimum).

use serde::{Deserialize, Serialize};

use dmsim::CostModel;

use crate::plan::SlabStrategy;
use crate::stripmine::a_slab_extent;

/// Policy for splitting the node memory budget between A and B slabs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemoryPolicy {
    /// Equal halves.
    EqualSplit,
    /// √-weighted by streaming frequency.
    AccessWeighted,
    /// Grid search over split fractions, minimizing estimated requests.
    Search,
}

/// Elements one index of A's slab dimension occupies.
fn a_elems_per_index(strategy: SlabStrategy, n: usize, p: usize) -> usize {
    match strategy {
        SlabStrategy::ColumnSlab => n,          // a column of the OCLA
        SlabStrategy::RowSlab => n.div_ceil(p), // a row of the OCLA
    }
}

/// Memory-to-thickness clamp shared by the split policies.
fn clamp_split(strategy: SlabStrategy, n: usize, p: usize, ma: usize, mb: usize) -> (usize, usize) {
    let epi_a = a_elems_per_index(strategy, n, p);
    let epi_b = n.div_ceil(p); // a column of B's OCLA
    let a_extent = a_slab_extent(strategy, n, p);
    ((ma / epi_a).clamp(1, a_extent), (mb / epi_b).clamp(1, n))
}

/// Split `elems` of memory into `(slab_a, slab_b)` thicknesses.
pub fn split_gaxpy_budget(
    strategy: SlabStrategy,
    n: usize,
    p: usize,
    elems: usize,
    policy: MemoryPolicy,
    model: &CostModel,
) -> (usize, usize) {
    let clamp = |ma: usize, mb: usize| clamp_split(strategy, n, p, ma, mb);
    match policy {
        MemoryPolicy::EqualSplit => clamp(elems / 2, elems / 2),
        MemoryPolicy::AccessWeighted => {
            let (ka, kb) = stream_weights(strategy, n, p, elems);
            let wa = (ka as f64).sqrt();
            let wb = (kb as f64).sqrt();
            let fa = wa / (wa + wb);
            let ma = (elems as f64 * fa) as usize;
            clamp(ma, elems - ma)
        }
        MemoryPolicy::Search => {
            let mut best: Option<(f64, (usize, usize))> = None;
            for pct in (5..=95).step_by(5) {
                let ma = elems * pct / 100;
                let (sa, sb) = clamp(ma, elems - ma);
                let time = time_estimate(strategy, n, p, sa, sb, model);
                if best.map(|(t, _)| time < t).unwrap_or(true) {
                    best = Some((time, (sa, sb)));
                }
            }
            best.expect("non-empty search").1
        }
    }
}

/// Like [`split_gaxpy_budget`], but when the target runs with a slab cache
/// of `cache_budget` bytes, the [`MemoryPolicy::Search`] grid is scored by
/// *replaying* each candidate split through the reuse predictor
/// ([`crate::reuse::gaxpy_cached_totals`]) instead of the closed-form
/// request counts — cached executions reward splits the uncached formulas
/// undervalue (e.g. an A slab that fits residently). Other policies, and an
/// uncached target, delegate unchanged. The replay walks the full access
/// sequence per grid point, so this is meant for compile-time search over
/// moderate problem sizes, not inner loops.
pub fn split_gaxpy_budget_with_cache(
    strategy: SlabStrategy,
    n: usize,
    p: usize,
    elems: usize,
    policy: MemoryPolicy,
    model: &CostModel,
    cache_budget: Option<usize>,
) -> (usize, usize) {
    let (Some(budget), MemoryPolicy::Search) = (cache_budget, policy) else {
        return split_gaxpy_budget(strategy, n, p, elems, policy, model);
    };
    let mut best: Option<(f64, (usize, usize))> = None;
    for pct in (5..=95).step_by(5) {
        let ma = elems * pct / 100;
        let (sa, sb) = clamp_split(strategy, n, p, ma, elems - ma);
        let time = cached_time_estimate(strategy, n, p, sa, sb, budget, model);
        if best.map(|(t, _)| time < t).unwrap_or(true) {
            best = Some((time, (sa, sb)));
        }
    }
    best.expect("non-empty search").1
}

/// Modeled I/O time of a cached execution of the canonical plan at this
/// split — the cache-aware search objective (reads and write-backs both
/// priced; hits are free).
fn cached_time_estimate(
    strategy: SlabStrategy,
    n: usize,
    p: usize,
    sa: usize,
    sb: usize,
    budget: usize,
    model: &CostModel,
) -> f64 {
    let plan = crate::reuse::canonical_gaxpy_plan(strategy, n, p, sa, sb);
    let t = crate::reuse::gaxpy_cached_totals(&plan, 0, budget);
    let (mut r_req, mut r_el, mut w_req, mut w_el) = (0u64, 0u64, 0u64, 0u64);
    for a in t.per_array.values() {
        r_req += a.read_requests;
        r_el += a.read_elems;
        w_req += a.write_requests;
        w_el += a.write_elems;
    }
    model.io_time(r_req, r_el * 4) + model.io_write_time(w_req, w_el * 4)
}

/// Streaming weights `K_X`: total elements of X moved from disk over the
/// whole computation, as a function of the loop structure. Requests are
/// `K_X / m_X` for slab memory `m_X`.
fn stream_weights(strategy: SlabStrategy, n: usize, p: usize, elems: usize) -> (u64, u64) {
    let lc = n.div_ceil(p) as u64;
    let n64 = n as u64;
    let ocla = n64 * lc;
    match strategy {
        // Column version: A streams once per column of C (N times); B once.
        SlabStrategy::ColumnSlab => (n64 * ocla, ocla),
        // Row version: A itself streams once, but *all of B's traffic* is
        // proportional to A's slab count n/s_a — so in the paper's terms A
        // is the most frequently "acting" array and its slab size carries
        // the weight of B's whole restreamed volume. B's own knob only
        // divides its per-stream request count (k_a streams, seeded from an
        // equal split).
        SlabStrategy::RowSlab => {
            let epi_a = a_elems_per_index(strategy, n, p).max(1) as u64;
            let sa = ((elems as u64 / 2) / epi_a).max(1);
            let ka = n64.div_ceil(sa);
            (n64 * ocla, ka * ocla)
        }
    }
}

/// Read request count as a function of the split (writes do not depend on
/// the A/B split).
fn request_estimate(strategy: SlabStrategy, n: usize, p: usize, sa: usize, sb: usize) -> u64 {
    let n64 = n as u64;
    match strategy {
        SlabStrategy::ColumnSlab => {
            let lc = n.div_ceil(p);
            let ka = (lc as u64).div_ceil(sa as u64);
            let kb = n64.div_ceil(sb as u64);
            // A streamed per column of B; B streamed once.
            n64 * ka + kb
        }
        SlabStrategy::RowSlab => {
            let ka = n64.div_ceil(sa as u64);
            let kb = n64.div_ceil(sb as u64);
            // A once; B once per A slab; B fully resident is read once.
            if sb >= n {
                ka + 1
            } else {
                ka + ka * kb
            }
        }
    }
}

/// Read *bytes* as a function of the split.
fn byte_estimate(strategy: SlabStrategy, n: usize, p: usize, sa: usize, sb: usize) -> u64 {
    let lc = n.div_ceil(p) as u64;
    let n64 = n as u64;
    let ocla = n64 * lc * 4;
    match strategy {
        // A streamed N times, B once — independent of the split.
        SlabStrategy::ColumnSlab => n64 * ocla + ocla,
        SlabStrategy::RowSlab => {
            let ka = n64.div_ceil(sa as u64);
            let _ = sb;
            let b_streams = if sb >= n { 1 } else { ka };
            ocla + b_streams * ocla
        }
    }
}

/// Modeled read time of the split — the search policy's objective.
fn time_estimate(
    strategy: SlabStrategy,
    n: usize,
    p: usize,
    sa: usize,
    sb: usize,
    model: &CostModel,
) -> f64 {
    model.io_time(
        request_estimate(strategy, n, p, sa, sb),
        byte_estimate(strategy, n, p, sa, sb),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 2048;
    const P: usize = 16;

    #[test]
    fn equal_split_halves_memory() {
        let elems = 2 * 256 * 128; // Table 2's 512-column budget (x128 elems)
        let (sa, sb) = split_gaxpy_budget(
            SlabStrategy::RowSlab,
            N,
            P,
            elems,
            MemoryPolicy::EqualSplit,
            &CostModel::delta(P),
        );
        // epi are both 128 for 2K/16: equal thicknesses.
        assert_eq!(sa, sb);
        assert_eq!(sa, 256);
    }

    #[test]
    fn access_weighted_gives_dominant_array_more() {
        // Column version: A streams N times, B once -> A gets more memory.
        let elems = 1 << 18;
        let (sa, sb) = split_gaxpy_budget(
            SlabStrategy::ColumnSlab,
            N,
            P,
            elems,
            MemoryPolicy::AccessWeighted,
            &CostModel::delta(P),
        );
        let epi_a = N;
        let epi_b = N / P;
        assert!(
            sa * epi_a > sb * epi_b,
            "A should get more memory: {} vs {}",
            sa * epi_a,
            sb * epi_b
        );
    }

    #[test]
    fn search_beats_or_matches_equal_split() {
        for strategy in [SlabStrategy::ColumnSlab, SlabStrategy::RowSlab] {
            let elems = 1 << 17;
            let (ea, eb) = split_gaxpy_budget(
                strategy,
                N,
                P,
                elems,
                MemoryPolicy::EqualSplit,
                &CostModel::delta(P),
            );
            let (oa, ob) = split_gaxpy_budget(
                strategy,
                N,
                P,
                elems,
                MemoryPolicy::Search,
                &CostModel::delta(P),
            );
            let m = CostModel::delta(P);
            assert!(
                time_estimate(strategy, N, P, oa, ob, &m)
                    <= time_estimate(strategy, N, P, ea, eb, &m) + 1e-9,
                "{strategy:?}"
            );
        }
    }

    #[test]
    fn thicknesses_stay_in_bounds() {
        for policy in [
            MemoryPolicy::EqualSplit,
            MemoryPolicy::AccessWeighted,
            MemoryPolicy::Search,
        ] {
            for strategy in [SlabStrategy::ColumnSlab, SlabStrategy::RowSlab] {
                for elems in [16usize, 1 << 10, 1 << 24] {
                    let (sa, sb) =
                        split_gaxpy_budget(strategy, 64, 4, elems, policy, &CostModel::delta(4));
                    assert!(sa >= 1 && sa <= a_slab_extent(strategy, 64, 4));
                    assert!((1..=64).contains(&sb));
                }
            }
        }
    }

    #[test]
    fn cache_aware_search_delegates_without_a_cache() {
        let m = CostModel::delta(4);
        for policy in [
            MemoryPolicy::EqualSplit,
            MemoryPolicy::AccessWeighted,
            MemoryPolicy::Search,
        ] {
            for strategy in [SlabStrategy::ColumnSlab, SlabStrategy::RowSlab] {
                let plain = split_gaxpy_budget(strategy, 64, 4, 1 << 10, policy, &m);
                let cached =
                    split_gaxpy_budget_with_cache(strategy, 64, 4, 1 << 10, policy, &m, None);
                assert_eq!(plain, cached, "{policy:?} {strategy:?}");
            }
        }
    }

    #[test]
    fn cache_aware_search_is_no_worse_under_the_cached_objective() {
        // Small problem so the replay-based grid search stays fast.
        let (n, p) = (32, 4);
        let m = CostModel::delta(p);
        let budget = 1 << 14;
        for strategy in [SlabStrategy::ColumnSlab, SlabStrategy::RowSlab] {
            for elems in [256usize, 1 << 11] {
                let (ua, ub) = split_gaxpy_budget(strategy, n, p, elems, MemoryPolicy::Search, &m);
                let (ca, cb) = split_gaxpy_budget_with_cache(
                    strategy,
                    n,
                    p,
                    elems,
                    MemoryPolicy::Search,
                    &m,
                    Some(budget),
                );
                assert!(
                    cached_time_estimate(strategy, n, p, ca, cb, budget, &m)
                        <= cached_time_estimate(strategy, n, p, ua, ub, budget, &m) + 1e-9,
                    "{strategy:?} elems={elems}: cache-aware split ({ca},{cb}) \
                     worse than uncached-scored split ({ua},{ub})"
                );
                assert!(ca >= 1 && cb >= 1);
            }
        }
    }

    #[test]
    fn row_version_weights_favor_a() {
        // The paper's heuristic: A's slab size controls B's restreaming,
        // so A carries the larger weight and gets the larger slab.
        let (ka, kb) = stream_weights(SlabStrategy::RowSlab, N, P, 2 * 256 * 128);
        assert!(ka >= kb, "A weight {ka} must not be below B weight {kb}");
        let (sa, sb) = split_gaxpy_budget(
            SlabStrategy::RowSlab,
            N,
            P,
            1 << 18,
            MemoryPolicy::AccessWeighted,
            &CostModel::delta(P),
        );
        // epi is equal for both at 2K/16, so thickness compares memory.
        assert!(sa >= sb, "A slab {sa} must not be below B slab {sb}");
    }
}
