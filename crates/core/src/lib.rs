//! # ooc-core — the out-of-core HPF compiler
//!
//! The paper's primary contribution: translating out-of-core data-parallel
//! programs into node programs with explicit message passing and parallel
//! I/O, and optimizing the translation by
//!
//! 1. estimating the I/O cost of different array access patterns
//!    ([`cost`]),
//! 2. reorganizing data storage on disk and the corresponding computation
//!    ([`reorg`], choosing slab orientations and file layouts),
//! 3. selecting the access method with the least I/O cost, and
//! 4. allocating memory among competing out-of-core arrays ([`memory`]).
//!
//! Compilation follows the two-phase structure of the paper's Figure 7:
//! the *in-core phase* ([`partition`], [`comm`]) partitions computation by
//! the owner-computes rule and detects communication; the *out-of-core
//! phase* ([`stripmine`], [`nodegen`]) stripmines the local iteration space
//! by the memory budget and inserts I/O calls, producing an executable
//! [`plan::ExecPlan`] plus a symbolic [`ir::NestNode`] loop nest — the
//! "node + MP + I/O program" of Figures 9 and 12 — that the cost estimator
//! analyzes and the pretty printer renders.
//!
//! ```
//! use ooc_core::{CompilerOptions, compile_source};
//!
//! let compiled = compile_source(hpf::GAXPY_SOURCE, &CompilerOptions::default())
//!     .expect("compiles");
//! // The optimizer picks row slabs: an order of magnitude less I/O.
//! assert!(compiled.report().contains("row"));
//! ```

pub mod access;
pub mod comm;
pub mod cost;
pub mod hir;
pub mod ir;
pub mod irreg;
pub mod lower;
pub mod memory;
pub mod nodegen;
pub mod partition;
pub mod pipeline;
pub mod plan;
pub mod reorg;
pub mod reuse;
pub mod stripmine;

pub use cost::{CostEstimate, IoEstimate};
pub use hir::{ElwExpr, ElwStmt, HirProgram, HirStmt};
pub use ir::NestNode;
pub use memory::MemoryPolicy;
pub use pipeline::{compile_hir, compile_source, CompileError, CompiledProgram, CompilerOptions};
pub use plan::{ExecPlan, GaxpyPlan, SlabStrategy, SpmvPlan};
