//! In-core phase, step 2: communication detection.
//!
//! Array assignment statements are analyzed for the communication they
//! induce (Figure 7, "Determine Communication"):
//!
//! * the GAXPY reduction needs a **global sum** per result column;
//! * shifted references in an elementwise forall need **ghost exchanges**
//!   when the shift runs along a distributed dimension;
//! * a transpose between distributed arrays is a full **remap**.

use serde::{Deserialize, Serialize};

use ooc_array::DimDist;

use crate::hir::{ElwStmt, HirProgram, HirStmt};
use crate::plan::GhostSpec;

/// The communication a statement requires.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CommRequirement {
    /// No interprocessor communication.
    None,
    /// A global sum of vectors of the given element count per result
    /// column (GAXPY).
    GlobalSum {
        /// Elements reduced per operation.
        length: usize,
    },
    /// Boundary strips exchanged with grid neighbors before computation.
    Ghost(Vec<GhostSpec>),
    /// Full data remapping (every processor may send to every other).
    Remap,
    /// A runtime-determined gather/scatter exchange: the pattern depends on
    /// an indirection array, so the inspector discovers the actual peers
    /// and volumes; statically every processor may send to every other,
    /// plus a reduction of partial results to the owners.
    Irregular,
}

/// Analyze one statement. Errors describe distribution mismatches the
/// supported translations cannot handle.
pub fn analyze_stmt(stmt: &HirStmt, prog: &HirProgram) -> Result<CommRequirement, String> {
    match stmt {
        HirStmt::Gaxpy { n, .. } => Ok(CommRequirement::GlobalSum { length: *n }),
        HirStmt::Transpose { .. } => Ok(CommRequirement::Remap),
        HirStmt::Elementwise(e) => analyze_elw(e, prog),
        HirStmt::Spmv { .. } => Ok(CommRequirement::Irregular),
    }
}

/// Ghost analysis for an elementwise statement: every referenced array must
/// share the lhs distribution; shifts along distributed dimensions become
/// ghost strips of the shift width.
pub fn analyze_elw(stmt: &ElwStmt, prog: &HirProgram) -> Result<CommRequirement, String> {
    let lhs = prog
        .array(&stmt.lhs)
        .ok_or_else(|| format!("undeclared array `{}`", stmt.lhs))?;
    for (name, _) in stmt.rhs_refs() {
        let arr = prog
            .array(&name)
            .ok_or_else(|| format!("undeclared array `{name}`"))?;
        if arr.dist != lhs.dist {
            return Err(format!(
                "elementwise statement mixes distributions: `{}` and `{name}` \
                 are distributed differently (a remap would be needed)",
                stmt.lhs
            ));
        }
        if arr.shape != lhs.shape {
            return Err(format!(
                "elementwise statement mixes shapes: `{}` vs `{name}`",
                stmt.lhs
            ));
        }
    }
    let ndims = lhs.shape.ndims();
    let mut ghosts = Vec::new();
    for d in 0..ndims {
        let kind = match lhs.dist.dims()[d] {
            DimDist::Collapsed => continue, // shifts stay on-processor
            DimDist::Distributed { kind, .. } => kind,
        };
        let mut lo = 0usize;
        let mut hi = 0usize;
        for (_, offs) in stmt.rhs_refs() {
            let o = offs[d];
            if o < 0 {
                lo = lo.max(o.unsigned_abs());
            } else {
                hi = hi.max(o as usize);
            }
        }
        if lo > 0 || hi > 0 {
            // Ghost strips assume adjacent global indices live on adjacent
            // processors — true only for block distributions.
            if kind != ooc_array::DistKind::Block {
                return Err(format!(
                    "shift along dimension {d} of `{}` which is distributed \
                     {kind:?}: ghost exchange requires a block distribution",
                    stmt.lhs
                ));
            }
            ghosts.push(GhostSpec {
                dim: d,
                lo_width: lo,
                hi_width: hi,
            });
        }
    }
    if ghosts.is_empty() {
        Ok(CommRequirement::None)
    } else {
        Ok(CommRequirement::Ghost(ghosts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hir::{ElwExpr, HirArray};
    use ooc_array::{DimRange, Distribution, Section, Shape};

    fn prog_two_arrays(p: usize, same_dist: bool) -> HirProgram {
        let shape = Shape::matrix(8, 8);
        let d1 = Distribution::column_block(shape.clone(), p);
        let d2 = if same_dist {
            d1.clone()
        } else {
            Distribution::row_block(shape.clone(), p)
        };
        HirProgram {
            arrays: vec![
                HirArray {
                    name: "u".into(),
                    shape: shape.clone(),
                    dist: d1,
                },
                HirArray {
                    name: "v".into(),
                    shape,
                    dist: d2,
                },
            ],
            stmts: vec![],
            nprocs: p,
        }
    }

    fn stencil(offsets: Vec<Vec<isize>>) -> ElwStmt {
        let mut expr = ElwExpr::Const(0.0);
        for o in offsets {
            expr = ElwExpr::add(expr, ElwExpr::shifted("v", o));
        }
        ElwStmt {
            lhs: "u".into(),
            region: Section::new(vec![DimRange::new(1, 7), DimRange::new(1, 7)]),
            rhs: expr,
        }
    }

    #[test]
    fn no_shift_no_comm() {
        let prog = prog_two_arrays(4, true);
        let s = stencil(vec![vec![0, 0]]);
        assert_eq!(analyze_elw(&s, &prog).unwrap(), CommRequirement::None);
    }

    #[test]
    fn shift_along_collapsed_dim_is_local() {
        // Column-block: dim 0 collapsed, shifts along rows need no comm.
        let prog = prog_two_arrays(4, true);
        let s = stencil(vec![vec![-1, 0], vec![1, 0]]);
        assert_eq!(analyze_elw(&s, &prog).unwrap(), CommRequirement::None);
    }

    #[test]
    fn shift_along_distributed_dim_needs_ghosts() {
        let prog = prog_two_arrays(4, true);
        let s = stencil(vec![vec![0, -2], vec![0, 1]]);
        let CommRequirement::Ghost(g) = analyze_elw(&s, &prog).unwrap() else {
            panic!("expected ghosts");
        };
        assert_eq!(
            g,
            vec![GhostSpec {
                dim: 1,
                lo_width: 2,
                hi_width: 1
            }]
        );
    }

    #[test]
    fn mixed_distributions_are_rejected() {
        let prog = prog_two_arrays(4, false);
        let s = stencil(vec![vec![0, 0]]);
        let err = analyze_elw(&s, &prog).unwrap_err();
        assert!(err.contains("distributed differently"));
    }

    #[test]
    fn gaxpy_needs_global_sum() {
        let prog = prog_two_arrays(4, true);
        let g = HirStmt::Gaxpy {
            a: "a".into(),
            b: "b".into(),
            c: "c".into(),
            temp: "t".into(),
            n: 64,
        };
        assert_eq!(
            analyze_stmt(&g, &prog).unwrap(),
            CommRequirement::GlobalSum { length: 64 }
        );
    }

    #[test]
    fn transpose_is_a_remap() {
        let prog = prog_two_arrays(4, true);
        let t = HirStmt::Transpose {
            src: "u".into(),
            dst: "v".into(),
        };
        assert_eq!(analyze_stmt(&t, &prog).unwrap(), CommRequirement::Remap);
    }
}
