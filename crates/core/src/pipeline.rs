//! The end-to-end compilation pipeline.
//!
//! `source → parse → analyze → lower → [per statement: partition,
//! communication analysis, reorganization, stripmining, node generation]
//! → CompiledProgram` — Figure 7 of the paper, as one function call.

use std::fmt;
use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use dmsim::CostModel;
use hpf::FrontError;
use ooc_array::{ArrayDesc, ArrayId, FileLayout, SlabPlan};
use pario::ElemKind;

use crate::access::best_elw_slab_dim;
use crate::comm::{analyze_elw, CommRequirement};
use crate::cost::CostEstimate;
use crate::hir::{HirProgram, HirStmt};
use crate::ir::{render, NestNode};
use crate::lower::lower;
use crate::nodegen::nest_of;
use crate::plan::{ElwPlan, ExecPlan, SlabStrategy, SpmvPlan, TransposePlan};
use crate::reorg::{choose_gaxpy, GaxpyChoice, GaxpySelection};
use crate::stripmine::SlabSizing;

/// Cost-model profile the compiler optimizes for.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MachineProfile {
    /// Intel Touchstone Delta calibration (the paper's machine).
    Delta,
    /// A modern cluster profile (ablations).
    Cluster,
    /// Zero-cost machine (functional tests).
    Free,
    /// Explicit model; its `nprocs` is overwritten with the program's.
    Custom(CostModel),
}

impl MachineProfile {
    /// Instantiate the cost model for `p` processors.
    pub fn model(&self, p: usize) -> CostModel {
        match self {
            MachineProfile::Delta => CostModel::delta(p),
            MachineProfile::Cluster => CostModel::cluster(p),
            MachineProfile::Free => CostModel::free(p),
            MachineProfile::Custom(m) => {
                let mut m = m.clone();
                m.nprocs = p;
                m
            }
        }
    }
}

/// Compiler options.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompilerOptions {
    /// Slab sizing policy for GAXPY statements.
    pub sizing: SlabSizing,
    /// Machine the cost estimator targets.
    pub profile: MachineProfile,
    /// Force a GAXPY slab strategy instead of cost-based selection.
    pub force_strategy: Option<SlabStrategy>,
    /// Allow the compiler to reorganize array storage on disk (file
    /// layouts). Disabling this is the paper's implicit baseline where row
    /// slabs would be strided.
    pub reorganize_storage: bool,
    /// In-core element budget for elementwise and transpose statements.
    pub elw_slab_elems: usize,
    /// Byte budget of the runtime slab cache, when the target runs with one
    /// (`None` = uncached, the default). GAXPY estimates become reuse-aware:
    /// instead of walking the symbolic nest, the estimator replays the access
    /// sequence through a predictor-mode cache so estimate == measurement
    /// still holds under caching.
    pub cache_budget: Option<usize>,
    /// Simulated-clock tracing configuration for the compiled program's
    /// runs. Off by default; carried into `CompiledProgram` so the executor
    /// builds its machine with tracing already configured.
    pub trace: ooc_trace::TraceConfig,
    /// Force one I/O access method for every remap-style access (pre-
    /// statement redistributions and transposes) instead of per-access
    /// cost-based selection (`None`, the default).
    pub io_method: Option<pario::IoMethod>,
    /// Background disk-farm load the compiled program will run against
    /// (concurrent workload jobs sharing the physical disks). `Some` prices
    /// every estimate — and therefore every strategy and access-method
    /// selection — under this job's fair bandwidth share via
    /// [`dmsim::CostModel::contended`]; `None` (the default, and any load
    /// with zero competitors) is bit-identical to the uncontended compiler.
    pub background: Option<dmsim::BackgroundLoad>,
    /// Execution engine for the compiled program's runs: OS threads (the
    /// default) or a fixed worker pool hosting the ranks as cooperative
    /// tasks. Purely a hosting choice — reports are bit-identical either
    /// way — but `Pool` is the only way to run hundreds of ranks or jobs.
    /// Carried into [`CompiledProgram`] like `trace`.
    pub engine: dmsim::Engine,
}

impl Default for CompilerOptions {
    fn default() -> Self {
        CompilerOptions {
            sizing: SlabSizing::default(),
            profile: MachineProfile::Delta,
            force_strategy: None,
            reorganize_storage: true,
            elw_slab_elems: 1 << 20,
            cache_budget: None,
            trace: ooc_trace::TraceConfig::default(),
            io_method: None,
            background: None,
            engine: dmsim::Engine::default(),
        }
    }
}

/// Compilation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// Lexing, parsing or semantic analysis failed.
    Front(FrontError),
    /// A statement is outside the supported subset.
    Lower(String),
    /// Plan construction failed (communication analysis, sizing…).
    Plan(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Front(e) => write!(f, "front end: {e}"),
            CompileError::Lower(m) => write!(f, "lowering: {m}"),
            CompileError::Plan(m) => write!(f, "planning: {m}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<FrontError> for CompileError {
    fn from(e: FrontError) -> Self {
        CompileError::Front(e)
    }
}

/// A compiled out-of-core program: one executable plan per statement, plus
/// the symbolic node programs and cost estimates behind the choices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledProgram {
    /// The lowered program.
    pub hir: HirProgram,
    /// Final array descriptors (ids are indices into `hir.arrays`).
    pub descs: Vec<ArrayDesc>,
    /// One plan per statement.
    pub plans: Vec<ExecPlan>,
    /// One symbolic node program per statement.
    pub nests: Vec<Vec<NestNode>>,
    /// One cost estimate per statement.
    pub estimates: Vec<CostEstimate>,
    /// For GAXPY statements, the per-strategy estimates that drove
    /// selection.
    pub alternatives: Vec<Option<Vec<(SlabStrategy, CostEstimate)>>>,
    /// Per statement, the I/O access-method selections made for its
    /// remap-style accesses (pre-statement redistributions, transposes);
    /// empty for statements without any.
    pub io_choices: Vec<Vec<crate::reorg::IoMethodChoice>>,
    /// The cost model used.
    pub model: CostModel,
    /// Tracing configuration requested at compile time (threaded from
    /// [`CompilerOptions::trace`] to the executor's machine).
    pub trace: ooc_trace::TraceConfig,
    /// Execution engine requested at compile time (threaded from
    /// [`CompilerOptions::engine`] to the executor's machine). Defaults to
    /// [`dmsim::Engine::Threads`] on programs serialized before the field
    /// existed.
    #[serde(default)]
    pub engine: dmsim::Engine,
}

impl CompiledProgram {
    /// Number of processors the program runs on.
    pub fn nprocs(&self) -> usize {
        self.hir.nprocs
    }

    /// Pseudo-code of statement `i`'s node program (Figures 9/12 style).
    pub fn node_program_text(&self, i: usize) -> String {
        render(&self.nests[i])
    }

    /// Human-readable compilation report: arrays, layouts, per-statement
    /// strategy choices and estimates.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "out-of-core compilation report ({} processors)",
            self.nprocs()
        );
        let _ = writeln!(out, "arrays:");
        for d in &self.descs {
            let exts: Vec<String> = d
                .global_shape()
                .extents()
                .iter()
                .map(|e| e.to_string())
                .collect();
            let layout = if d.layout == FileLayout::column_major(d.layout.ndims()) {
                "column-major".to_string()
            } else if d.layout == FileLayout::row_major(d.layout.ndims()) {
                "row-major (reorganized)".to_string()
            } else {
                format!("{:?}", d.layout.order())
            };
            let _ = writeln!(out, "  {}: {} file layout {layout}", d.name, exts.join("x"));
        }
        for (i, plan) in self.plans.iter().enumerate() {
            match plan {
                ExecPlan::Gaxpy(g) => {
                    let _ = writeln!(
                        out,
                        "statement {}: gaxpy {} = {} * {} (n={}) -> {} selected \
                         (slab_a={}, slab_b={}, {} elements in-core)",
                        i + 1,
                        g.c.name,
                        g.a.name,
                        g.b.name,
                        g.n,
                        g.strategy.name(),
                        g.slab_a,
                        g.slab_b,
                        g.memory_elems()
                    );
                    if let Some(alts) = &self.alternatives[i] {
                        for (s, e) in alts {
                            let _ = writeln!(
                                out,
                                "  {:12}: {:>12} requests, {:>14} bytes, est {:>10.2} s",
                                s.name(),
                                e.io_requests(),
                                e.io_bytes(),
                                e.time()
                            );
                        }
                        // The Figure 14 analysis behind the choice.
                        let rows = crate::access::fig14_table(alts, &g.a.name, &g.b.name);
                        let _ = writeln!(
                            out,
                            "  access analysis (T_fetch = requests, T_data = elements per processor):"
                        );
                        for r in &rows {
                            let _ = writeln!(
                                out,
                                "    slabs of `{}` along dim {} ({:12}): T_fetch {:>10}, T_data {:>12}",
                                r.array,
                                r.dim,
                                r.strategy.name(),
                                r.t_fetch,
                                r.t_data
                            );
                        }
                        if let Some(dom) = crate::access::dominant_array(&rows) {
                            let _ = writeln!(
                                out,
                                "  dominant array: `{dom}` (largest amount of I/O; Figure 14)"
                            );
                        }
                    }
                }
                ExecPlan::Elementwise(e) => {
                    let _ = writeln!(
                        out,
                        "statement {}: elementwise {} (slab dim {}, thickness {}, {} ghost exchange(s))",
                        i + 1,
                        e.lhs.name,
                        e.slab_dim,
                        e.slab_thickness,
                        e.ghosts.len()
                    );
                }
                ExecPlan::Transpose(t) => {
                    let _ = writeln!(
                        out,
                        "statement {}: transpose {} = {}^T (slab thickness {}, {} I/O)",
                        i + 1,
                        t.dst.name,
                        t.src.name,
                        t.slab_thickness,
                        t.method.label()
                    );
                }
                ExecPlan::Spmv(s) => {
                    let _ = writeln!(
                        out,
                        "statement {}: spmv {} = A * {} (n={}, {} nonzeros, \
                         inspector-executor, {} gather I/O)",
                        i + 1,
                        s.y.name,
                        s.x.name,
                        s.n,
                        s.nnz,
                        s.method.label()
                    );
                }
            }
            for ch in &self.io_choices[i] {
                let forced = if ch.forced { " (forced)" } else { "" };
                let _ = writeln!(
                    out,
                    "  {}: {} I/O selected{}",
                    ch.access,
                    ch.chosen.label(),
                    forced
                );
                for (m, e) in &ch.estimates {
                    let _ = writeln!(
                        out,
                        "    {:10}: {:>10} requests, {:>12} bytes, est {:>10.4} s",
                        m.label(),
                        e.io_requests(),
                        e.io_bytes(),
                        e.time()
                    );
                }
            }
        }
        out
    }
}

/// Block-cyclic locals are not regular sections; plans over them would
/// silently compute nothing, so reject at compile time.
fn require_regular_dist(desc: &ArrayDesc, what: &str) -> Result<(), CompileError> {
    use ooc_array::{DimDist, DistKind};
    for (d, dd) in desc.dist.dims().iter().enumerate() {
        if let DimDist::Distributed {
            kind: DistKind::BlockCyclic(_),
            ..
        } = dd
        {
            return Err(CompileError::Plan(format!(
                "{what}: dimension {d} of `{}` is block-cyclic distributed; \
                 only block, cyclic and collapsed dimensions are supported",
                desc.name
            )));
        }
    }
    Ok(())
}

/// The transpose remap relies on contiguous owned ranges (block/collapsed).
fn require_block_or_collapsed(desc: &ArrayDesc, what: &str) -> Result<(), CompileError> {
    use ooc_array::{DimDist, DistKind};
    for (d, dd) in desc.dist.dims().iter().enumerate() {
        match dd {
            DimDist::Collapsed
            | DimDist::Distributed {
                kind: DistKind::Block,
                ..
            } => {}
            other => {
                return Err(CompileError::Plan(format!(
                    "{what}: dimension {d} of `{}` is distributed {other:?}; \
                     only block or collapsed dimensions are supported",
                    desc.name
                )))
            }
        }
    }
    Ok(())
}

/// Compile HPF source text.
pub fn compile_source(
    source: &str,
    options: &CompilerOptions,
) -> Result<CompiledProgram, CompileError> {
    let prog = hpf::parse_program(source)?;
    let info = hpf::analyze(&prog)?;
    let hir = lower(&info).map_err(CompileError::Lower)?;
    compile_hir(hir, options)
}

/// Compile an already-lowered program (the programmatic API used by
/// examples and benches).
pub fn compile_hir(
    hir: HirProgram,
    options: &CompilerOptions,
) -> Result<CompiledProgram, CompileError> {
    let p = hir.nprocs;
    // Under background load the whole compilation — strategy selection,
    // access-method selection, estimates, and the model the executor's
    // machine charges — is priced at this job's static bandwidth share.
    // This is the legacy `shared_disks`-style static divide; the `ooc-sched`
    // farm instead models contention dynamically from queues and should be
    // fed programs compiled *without* a background load.
    let model = match &options.background {
        Some(load) => options.profile.model(p).contended(load),
        None => options.profile.model(p),
    };

    let id_of = |name: &str| -> Result<ArrayId, CompileError> {
        hir.arrays
            .iter()
            .position(|a| a.name == name)
            .map(|i| ArrayId(i as u32))
            .ok_or_else(|| CompileError::Plan(format!("undeclared array `{name}`")))
    };

    // Pass 1: walk statements in order deciding strategies and locking
    // layouts (first statement to care about an array's storage wins).
    let mut locked: Vec<Option<FileLayout>> = vec![None; hir.arrays.len()];
    let mut gaxpy_choices: Vec<Option<GaxpyChoice>> = Vec::with_capacity(hir.stmts.len());
    for stmt in &hir.stmts {
        match stmt {
            HirStmt::Gaxpy { a, b, c, n, .. } => {
                let (ia, ib, ic) = (id_of(a)?, id_of(b)?, id_of(c)?);
                let sel = GaxpySelection {
                    ids: (ia, ib, ic),
                    arrays: (
                        hir.array(a).expect("id_of checked"),
                        hir.array(b).expect("id_of checked"),
                        hir.array(c).expect("id_of checked"),
                    ),
                    n: *n,
                    p,
                    sizing: options.sizing,
                    reorganize: options.reorganize_storage,
                    locked: (
                        locked[ia.0 as usize].clone(),
                        locked[ib.0 as usize].clone(),
                        locked[ic.0 as usize].clone(),
                    ),
                    force: options.force_strategy,
                };
                let choice = choose_gaxpy(&sel, &model);
                for (id, layout) in [
                    (ia, choice.plan.a.layout.clone()),
                    (ib, choice.plan.b.layout.clone()),
                    (ic, choice.plan.c.layout.clone()),
                ] {
                    locked[id.0 as usize].get_or_insert(layout);
                }
                gaxpy_choices.push(Some(choice));
            }
            _ => gaxpy_choices.push(None),
        }
    }

    // Freeze descriptors: locked layout or column-major default.
    let descs: Vec<ArrayDesc> = hir
        .arrays
        .iter()
        .enumerate()
        .map(|(i, a)| {
            let layout = locked[i]
                .clone()
                .unwrap_or_else(|| FileLayout::column_major(a.shape.ndims()));
            ArrayDesc::new(
                ArrayId(i as u32),
                a.name.clone(),
                ElemKind::F32,
                a.dist.clone(),
            )
            .with_layout(layout)
        })
        .collect();

    // Pass 2: build plans against frozen descriptors.
    let mut next_tmp_id = hir.arrays.len() as u32;
    let mut plans = Vec::with_capacity(hir.stmts.len());
    let mut nests = Vec::with_capacity(hir.stmts.len());
    let mut estimates = Vec::with_capacity(hir.stmts.len());
    let mut alternatives = Vec::with_capacity(hir.stmts.len());
    let mut io_choices = Vec::with_capacity(hir.stmts.len());
    for (si, stmt) in hir.stmts.iter().enumerate() {
        match stmt {
            HirStmt::Gaxpy { .. } => {
                let choice = gaxpy_choices[si].clone().expect("pass 1 recorded");
                // Descriptors in the plan must match the frozen table.
                let mut plan = choice.plan;
                plan.a = descs[plan.a.id.0 as usize].clone();
                plan.b = descs[plan.b.id.0 as usize].clone();
                plan.c = descs[plan.c.id.0 as usize].clone();
                let nest = crate::nodegen::gaxpy_nest(&plan);
                let est = match options.cache_budget {
                    // Reuse-aware estimate: replay rank 0's access sequence
                    // through a predictor-mode slab cache.
                    Some(budget) => CostEstimate::from_totals(
                        crate::reuse::gaxpy_cached_totals(&plan, 0, budget),
                        &model,
                        4,
                    ),
                    None => CostEstimate::from_nest(&nest, &model, 4),
                };
                plans.push(ExecPlan::Gaxpy(plan));
                nests.push(nest);
                estimates.push(est);
                alternatives.push(Some(choice.estimates));
                io_choices.push(Vec::new());
            }
            HirStmt::Elementwise(e) => {
                let lhs_id = id_of(&e.lhs)?;
                let lhs_desc = descs[lhs_id.0 as usize].clone();
                require_regular_dist(&lhs_desc, "elementwise")?;
                // FORALL has copy-in-copy-out semantics; a shifted self-
                // reference would read slabs already overwritten by earlier
                // stages of the stripmined loop. (Unshifted self-reference
                // is safe: each stage reads its inputs before writing.)
                for (name, offs) in e.rhs_refs() {
                    if name == e.lhs && offs.iter().any(|&o| o != 0) {
                        return Err(CompileError::Plan(format!(
                            "elementwise: `{name}` is assigned and referenced \
                             with a shift; the stripmined translation cannot \
                             preserve forall copy-in semantics (use a second \
                             array)"
                        )));
                    }
                    // Every shifted reference must stay inside the global
                    // array over the whole iteration region.
                    let arr = hir
                        .array(&name)
                        .ok_or_else(|| CompileError::Plan(format!("undeclared array `{name}`")))?;
                    for (d, &off) in offs.iter().enumerate().take(e.region.ndims()) {
                        let r = e.region.range(d);
                        let lo = r.lo as isize + off;
                        let hi = (r.hi - 1) as isize + off;
                        if lo < 0 || hi >= arr.shape.extent(d) as isize {
                            return Err(CompileError::Plan(format!(
                                "elementwise: reference `{name}` shifted by \
                                 {off} along dimension {d} leaves the array \
                                 bounds for part of the iteration region \
                                 ({}..{} of extent {})",
                                lo,
                                hi + 1,
                                arr.shape.extent(d)
                            )));
                        }
                    }
                }
                // Right-hand sides in a different distribution are legal:
                // the compiler inserts a redistribution into a statement-
                // local temporary with the lhs's distribution (the remap an
                // HPF compiler schedules for misaligned operands).
                let mut rhs_descs: Vec<ArrayDesc> = Vec::new();
                let mut pre_remaps = Vec::new();
                for (name, _) in e.rhs_refs() {
                    let id = id_of(&name)?;
                    let d = descs[id.0 as usize].clone();
                    if rhs_descs.iter().any(|x| x.name == d.name) {
                        continue;
                    }
                    if d.dist == lhs_desc.dist {
                        rhs_descs.push(d);
                    } else {
                        require_regular_dist(&d, "elementwise remap")?;
                        if d.global_shape() != lhs_desc.global_shape() {
                            return Err(CompileError::Plan(format!(
                                "elementwise: `{name}` and `{}` have different                                  shapes",
                                e.lhs
                            )));
                        }
                        let tmp = ArrayDesc::new(
                            ArrayId(next_tmp_id),
                            d.name.clone(),
                            ElemKind::F32,
                            lhs_desc.dist.clone(),
                        );
                        next_tmp_id += 1;
                        pre_remaps.push(crate::plan::RemapSpec {
                            src: d,
                            tmp: tmp.clone(),
                            method: pario::IoMethod::Direct,
                        });
                        rhs_descs.push(tmp);
                    }
                }
                // Per-remap access-method selection: price the exact
                // request replay of each method, keep the cheapest.
                let mut stmt_choices = Vec::new();
                for r in &mut pre_remaps {
                    let choice = crate::reorg::choose_io_method(
                        format!("remap {}", r.src.name),
                        &model,
                        options.io_method,
                        |m| {
                            crate::nodegen::remap_nodes(
                                &crate::plan::RemapSpec {
                                    method: m,
                                    ..r.clone()
                                },
                                0,
                            )
                        },
                    );
                    r.method = choice.chosen;
                    stmt_choices.push(choice);
                }
                // Ghost analysis runs against the post-remap distributions.
                let hir_view = {
                    let mut v = hir.clone();
                    for r in &pre_remaps {
                        if let Some(a) = v.arrays.iter_mut().find(|a| a.name == r.src.name) {
                            a.dist = lhs_desc.dist.clone();
                        }
                    }
                    v
                };
                let ghosts = match analyze_elw(e, &hir_view).map_err(CompileError::Plan)? {
                    CommRequirement::Ghost(g) => g,
                    CommRequirement::None => Vec::new(),
                    other => {
                        return Err(CompileError::Plan(format!(
                            "elementwise statement needs unsupported communication {other:?}"
                        )))
                    }
                };
                // Budget per array, then pick the cheapest slab dimension.
                let narr = 1 + rhs_descs.len();
                let per_array = (options.elw_slab_elems / narr).max(1);
                let local = lhs_desc.local_shape(0);
                let probe = SlabPlan::from_memory(local.clone(), local.ndims() - 1, per_array);
                let slab_dim = best_elw_slab_dim(e, &lhs_desc, &rhs_descs, 0, probe.thickness());
                let plan_sized = SlabPlan::from_memory(local, slab_dim, per_array);
                let plan = ElwPlan {
                    pre_remaps,
                    lhs: lhs_desc,
                    rhs_arrays: rhs_descs,
                    expr: e.rhs.clone(),
                    region: e.region.clone(),
                    slab_dim,
                    slab_thickness: plan_sized.thickness(),
                    ghosts,
                    flops_per_point: e.rhs.flops_per_point(),
                };
                let nest = nest_of(&ExecPlan::Elementwise(plan.clone()));
                let est = CostEstimate::from_nest(&nest, &model, 4);
                plans.push(ExecPlan::Elementwise(plan));
                nests.push(nest);
                estimates.push(est);
                alternatives.push(None);
                io_choices.push(stmt_choices);
            }
            HirStmt::Transpose { src, dst } => {
                let src_desc = descs[id_of(src)?.0 as usize].clone();
                let dst_desc = descs[id_of(dst)?.0 as usize].clone();
                require_block_or_collapsed(&src_desc, "transpose")?;
                require_block_or_collapsed(&dst_desc, "transpose")?;
                let local = src_desc.local_shape(0);
                let slab_dim = src_desc.layout.slowest_dim();
                let sp = SlabPlan::from_memory(local, slab_dim, options.elw_slab_elems.max(1));
                let mut plan = TransposePlan {
                    src: src_desc,
                    dst: dst_desc,
                    slab_thickness: sp.thickness(),
                    method: pario::IoMethod::Direct,
                };
                let choice = crate::reorg::choose_io_method(
                    format!("transpose {}", plan.dst.name),
                    &model,
                    options.io_method,
                    |m| {
                        crate::nodegen::transpose_nest(&TransposePlan {
                            method: m,
                            ..plan.clone()
                        })
                    },
                );
                plan.method = choice.chosen;
                let nest = nest_of(&ExecPlan::Transpose(plan.clone()));
                let est = CostEstimate::from_nest(&nest, &model, 4);
                plans.push(ExecPlan::Transpose(plan));
                nests.push(nest);
                estimates.push(est);
                alternatives.push(None);
                io_choices.push(vec![choice]);
            }
            HirStmt::Spmv {
                y,
                rowptr,
                colidx,
                vals,
                x,
                n,
                nnz,
            } => {
                let mut plan = SpmvPlan {
                    y: descs[id_of(y)?.0 as usize].clone(),
                    rowptr: descs[id_of(rowptr)?.0 as usize].clone(),
                    colidx: descs[id_of(colidx)?.0 as usize].clone(),
                    vals: descs[id_of(vals)?.0 as usize].clone(),
                    x: descs[id_of(x)?.0 as usize].clone(),
                    n: *n,
                    nnz: *nnz,
                    nprocs: p,
                    method: pario::IoMethod::Direct,
                };
                // The index set is unknown at compile time: price the gather
                // over the fully-scattered member of the irregular cost-term
                // family. The executor re-selects at run time from the
                // inspected schedule's measured statistics.
                let stats = crate::irreg::scattered_stats(*n, *nnz, p, 4, 1);
                let choice = crate::reorg::choose_io_method(
                    format!("gather {x}({colidx}(k))"),
                    &model,
                    options.io_method,
                    |m| crate::irreg::spmv_nest_with(&plan, m, &stats, 0),
                );
                plan.method = choice.chosen;
                let nest = nest_of(&ExecPlan::Spmv(Box::new(plan.clone())));
                let est = CostEstimate::from_nest(&nest, &model, 4);
                plans.push(ExecPlan::Spmv(Box::new(plan)));
                nests.push(nest);
                estimates.push(est);
                alternatives.push(None);
                io_choices.push(vec![choice]);
            }
        }
    }

    Ok(CompiledProgram {
        hir,
        descs,
        plans,
        nests,
        estimates,
        alternatives,
        io_choices,
        model,
        trace: options.trace,
        engine: options.engine,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_compiles_and_selects_row_slabs() {
        let compiled = compile_source(hpf::GAXPY_SOURCE, &CompilerOptions::default()).unwrap();
        assert_eq!(compiled.plans.len(), 1);
        let ExecPlan::Gaxpy(g) = &compiled.plans[0] else {
            panic!("expected gaxpy plan");
        };
        assert_eq!(g.strategy, SlabStrategy::RowSlab);
        let report = compiled.report();
        assert!(report.contains("row slab"), "{report}");
        assert!(report.contains("reorganized"), "{report}");
        // Both alternatives were scored.
        let alts = compiled.alternatives[0].as_ref().unwrap();
        assert_eq!(alts.len(), 2);
        assert!(alts[0].1.io_requests() > alts[1].1.io_requests());
    }

    #[test]
    fn forced_column_strategy() {
        let opts = CompilerOptions {
            force_strategy: Some(SlabStrategy::ColumnSlab),
            ..CompilerOptions::default()
        };
        let compiled = compile_source(hpf::GAXPY_SOURCE, &opts).unwrap();
        let ExecPlan::Gaxpy(g) = &compiled.plans[0] else {
            panic!()
        };
        assert_eq!(g.strategy, SlabStrategy::ColumnSlab);
    }

    #[test]
    fn report_includes_figure14_analysis() {
        let compiled = compile_source(hpf::GAXPY_SOURCE, &CompilerOptions::default()).unwrap();
        let report = compiled.report();
        assert!(report.contains("access analysis"), "{report}");
        assert!(report.contains("dominant array: `a`"), "{report}");
        assert!(report.contains("T_fetch"), "{report}");
    }

    #[test]
    fn node_program_text_looks_like_figure_12() {
        let compiled = compile_source(hpf::GAXPY_SOURCE, &CompilerOptions::default()).unwrap();
        let text = compiled.node_program_text(0);
        assert!(text.contains("row slabs of a"), "{text}");
        assert!(text.contains("global_sum"), "{text}");
        assert!(text.contains("read_slab(b)"), "{text}");
    }

    #[test]
    fn jacobi_program_compiles_to_elementwise() {
        let src = "
      parameter (n=32)
      real u(n, n), v(n, n)
!hpf$ processors pr(4)
!hpf$ template t(n)
!hpf$ distribute t(block) on pr
!hpf$ align (:, *) with t :: u, v
      forall (i = 2:n-1, j = 2:n-1)
        v(i, j) = 0.25 * (u(i-1, j) + u(i+1, j) + u(i, j-1) + u(i, j+1))
      end forall
      end
";
        let compiled = compile_source(src, &CompilerOptions::default()).unwrap();
        let ExecPlan::Elementwise(e) = &compiled.plans[0] else {
            panic!("expected elementwise plan");
        };
        // Row-block distribution: shifts along dim 0 need ghosts.
        assert_eq!(e.ghosts.len(), 1);
        assert_eq!(e.ghosts[0].dim, 0);
        assert!(compiled.estimates[0].io_requests() > 0);
    }

    #[test]
    fn out_of_bounds_shift_is_rejected_at_compile_time() {
        // u(i, j+1) over the full region walks off the last column.
        let src = "
      parameter (n=8)
      real u(n, n), v(n, n)
!hpf$ processors pr(2)
!hpf$ distribute u(*, block) on pr
!hpf$ distribute v(*, block) on pr
      forall (i = 1:n, j = 1:n)
        v(i, j) = u(i, j+1)
      end forall
      end
";
        let err = compile_source(src, &CompilerOptions::default()).unwrap_err();
        assert!(err.to_string().contains("leaves the array bounds"), "{err}");
        // Restricting the region makes it legal.
        let ok = src.replace("j = 1:n)", "j = 1:n-1)");
        assert!(compile_source(&ok, &CompilerOptions::default()).is_ok());
    }

    #[test]
    fn shifted_self_reference_is_rejected() {
        let src = "
      parameter (n=16)
      real u(n, n)
!hpf$ processors pr(2)
!hpf$ distribute u(*, block) on pr
      forall (i = 2:n-1, j = 1:n)
        u(i, j) = u(i-1, j)
      end forall
      end
";
        let err = compile_source(src, &CompilerOptions::default()).unwrap_err();
        assert!(err.to_string().contains("copy-in"), "{err}");
        // Unshifted in-place update stays legal.
        let ok_src = src.replace("u(i-1, j)", "2.0 * u(i, j)");
        assert!(compile_source(&ok_src, &CompilerOptions::default()).is_ok());
    }

    #[test]
    fn background_load_degrades_estimates_without_changing_metrics() {
        let base = compile_source(hpf::GAXPY_SOURCE, &CompilerOptions::default()).unwrap();
        let idle = compile_source(
            hpf::GAXPY_SOURCE,
            &CompilerOptions {
                background: Some(dmsim::BackgroundLoad::jobs(0)),
                ..CompilerOptions::default()
            },
        )
        .unwrap();
        assert_eq!(idle, base, "zero competitors is bit-identical");
        let busy = compile_source(
            hpf::GAXPY_SOURCE,
            &CompilerOptions {
                background: Some(dmsim::BackgroundLoad::jobs(3)),
                ..CompilerOptions::default()
            },
        )
        .unwrap();
        assert!(busy.estimates[0].io_time > base.estimates[0].io_time);
        assert_eq!(
            busy.estimates[0].io_requests(),
            base.estimates[0].io_requests(),
            "the paper's metrics are load-blind"
        );
    }

    #[test]
    fn spmv_compiles_and_selects_two_phase_unforced() {
        let compiled = compile_source(hpf::SPMV_SOURCE, &CompilerOptions::default()).unwrap();
        assert_eq!(compiled.plans.len(), 1);
        let ExecPlan::Spmv(s) = &compiled.plans[0] else {
            panic!("expected spmv plan, got {:?}", compiled.plans[0]);
        };
        // A scattered index set with heavy requester overlap: the deduped
        // two-phase union read must win on cost, not by force.
        assert_eq!(s.method, pario::IoMethod::TwoPhase);
        let choice = &compiled.io_choices[0][0];
        assert!(!choice.forced);
        assert_eq!(choice.estimates.len(), 3, "all three methods priced");
        let report = compiled.report();
        assert!(report.contains("spmv"), "{report}");
        assert!(report.contains("two-phase"), "{report}");
        assert!(compiled.estimates[0].io_requests() > 0);
    }

    #[test]
    fn spmv_gather_method_can_be_forced() {
        let opts = CompilerOptions {
            io_method: Some(pario::IoMethod::Sieved),
            ..CompilerOptions::default()
        };
        let compiled = compile_source(hpf::SPMV_SOURCE, &opts).unwrap();
        let ExecPlan::Spmv(s) = &compiled.plans[0] else {
            panic!()
        };
        assert_eq!(s.method, pario::IoMethod::Sieved);
        assert!(compiled.io_choices[0][0].forced);
    }

    #[test]
    fn parse_errors_are_reported() {
        let err = compile_source("this is not hpf $$$", &CompilerOptions::default()).unwrap_err();
        assert!(matches!(err, CompileError::Front(_)));
    }

    #[test]
    fn unsupported_patterns_are_reported() {
        let src = "
      parameter (n=8)
      real a(n)
!hpf$ processors pr(2)
!hpf$ distribute a(block) on pr
      do i = 1, n
        a(i) = i
      end do
      end
";
        let err = compile_source(src, &CompilerOptions::default()).unwrap_err();
        assert!(matches!(err, CompileError::Lower(_)), "{err}");
    }
}
