//! Cost terms for irregular (indirection-array) request streams.
//!
//! Affine accesses are priced by enumerating their sections; an
//! `A(idx(i))` gather cannot be — its request stream depends on runtime
//! data. This module prices it anyway, two ways:
//!
//! * **A priori** ([`scattered_stats`]): a synthetic [`IrregStats`]
//!   parameterized by the run-length statistics of the (unseen) index set.
//!   The compiler uses the fully-scattered member of the family (average
//!   run length 1) to select the executor's access method before any data
//!   exists.
//! * **Exact** ([`schedule_nodes`]): once the inspector has produced a real
//!   [`ooc_array::IrregSchedule`], its request arithmetic is replayed by
//!   [`ooc_array::irreg_counts`] / [`ooc_array::inspect_counts`], so the
//!   resulting nest prices the measured run exactly — estimate == measured
//!   for the inspected schedule, like every affine path.
//!
//! Both produce ordinary [`NestNode`] programs, so the existing
//! [`crate::cost::CostEstimate`] machinery and the
//! [`crate::reorg::choose_io_method`] selector apply unchanged.

use ooc_array::{IrregSchedule, IrregStats};
use pario::IoMethod;

use crate::ir::NestNode;
use crate::plan::SpmvPlan;

/// Coalesced runs covering `u` elements that appear in clumps of average
/// length `run_len` inside a window of `window` element slots. Two effects
/// bound the count: clumping (at most `ceil(u / run_len)` runs) and density
/// (as `u` approaches `window`, neighbouring clumps touch and merge; a
/// saturated window is one run). The model takes the tighter bound.
pub fn runs_of(u: u64, window: u64, run_len: u64) -> u64 {
    if u == 0 {
        return 0;
    }
    let l = run_len.max(1);
    let by_clump = u.div_ceil(l);
    let by_density = (u * window.saturating_sub(u))
        .checked_div(window)
        .unwrap_or(0)
        + 1;
    by_clump.min(by_density).max(1)
}

/// Synthetic per-rank statistics of an index set the compiler has never
/// seen: `nnz` indirection entries into a length-`n` block-distributed
/// vector on `p` ranks, targets scattered with average run length
/// `run_len`. This is the a-priori member of the cost-term family —
/// [`IrregSchedule::stats`] produces the measured member once the inspector
/// has run.
pub fn scattered_stats(
    n: usize,
    nnz: usize,
    p: usize,
    elem_size: usize,
    run_len: usize,
) -> IrregStats {
    let p64 = p.max(1) as u64;
    let nloc = (n as u64).div_ceil(p64);
    // Index entries one rank inspects, and the distinct targets they name
    // (repeats collapse; a stream longer than the vector saturates it).
    let m = (nnz as u64).div_ceil(p64);
    let d = m.min(n as u64);
    // Want-list length per (requester, owner) pair: the requester's
    // distinct targets spread evenly over the owners, capped by the
    // owner's local extent.
    let w = d.div_ceil(p64).min(nloc);
    let l = run_len.max(1) as u64;
    // Union across the p requesters an owner serves: overlapping scattered
    // wants dedup, capped by the local extent (where coalescing collapses
    // the union toward one spanning run).
    let u = (w * p64).min(nloc);
    IrregStats {
        nprocs: p64,
        elem_size: elem_size as u64,
        index_elems: m,
        index_requests: u64::from(m > 0),
        gather_elems: m,
        serve_elems: w * p64,
        serve_runs: p64 * runs_of(w, nloc, l),
        peers_with_data: if w > 0 { p64 } else { 0 },
        // A scattered want-list of 2+ elements spans essentially the whole
        // local file; a single element spans one clump.
        span_bytes: if w == 0 {
            0
        } else if w == 1 {
            p64 * l.min(nloc) * elem_size as u64
        } else {
            p64 * nloc * elem_size as u64
        },
        union_runs: runs_of(u, nloc, l),
        union_bytes: u * elem_size as u64,
        remote_served_elems: w * p64.saturating_sub(1),
        remote_want_elems: w * p64.saturating_sub(1),
    }
}

/// Price the inspector itself: the one charged indirection read plus the
/// want-list all-to-all (8 bytes per remote want entry).
pub fn inspector_nodes(index_name: &str, s: &IrregStats) -> Vec<NestNode> {
    vec![
        NestNode::read(index_name, s.index_requests, s.index_elems),
        NestNode::Comm {
            label: "exchange want-lists".into(),
            messages: s.nprocs.saturating_sub(1),
            bytes: s.remote_want_elems * 8,
        },
    ]
}

/// Price one executor invocation under `method`. The three methods trade
/// requests for bytes exactly as the affine remaps do:
///
/// * `Direct` — one request per coalesced serve run, exact bytes;
/// * `Sieved` — one spanning request per peer served, span bytes;
/// * `TwoPhase` — the union read (requester overlap deduped) plus the
///   all-to-all exchange.
pub fn gather_nodes(data_name: &str, s: &IrregStats, method: IoMethod) -> Vec<NestNode> {
    let es = s.elem_size.max(1);
    let (requests, elems) = match method {
        IoMethod::Direct => (s.serve_runs, s.serve_elems),
        IoMethod::Sieved => (s.peers_with_data, s.span_bytes / es),
        IoMethod::TwoPhase => (s.union_runs, s.union_bytes / es),
    };
    let messages = match method {
        // One message per remote peer served.
        IoMethod::Direct | IoMethod::Sieved => s
            .peers_with_data
            .saturating_sub(u64::from(s.peers_with_data > 0)),
        // The all-to-all posts to every peer.
        IoMethod::TwoPhase => s.nprocs.saturating_sub(1),
    };
    vec![
        NestNode::read(data_name, requests, elems),
        NestNode::Comm {
            label: format!("gather exchange ({})", method.label()),
            messages,
            bytes: s.remote_served_elems * es,
        },
    ]
}

/// Exact per-rank nodes for a real inspected schedule (the irregular
/// counterpart of [`crate::nodegen::remap_nodes`]): counts come from
/// [`ooc_array::inspect_counts`] and [`ooc_array::irreg_counts`], which
/// replay the executor's request arithmetic, so a [`CostEstimate`] built
/// from this nest matches the measured disk/message deltas exactly.
///
/// [`CostEstimate`]: crate::cost::CostEstimate
pub fn schedule_nodes(
    sched: &IrregSchedule,
    method: IoMethod,
    include_inspect: bool,
) -> Vec<NestNode> {
    let es = sched.stamp.data.elem.size() as u64;
    let ies = sched.stamp.index.elem.size() as u64;
    let mut v = Vec::new();
    if include_inspect {
        let ic = ooc_array::inspect_counts(sched);
        v.push(NestNode::read(
            &sched.stamp.index.name,
            ic.read_requests,
            ic.read_bytes / ies,
        ));
        v.push(NestNode::Comm {
            label: "exchange want-lists".into(),
            messages: ic.messages,
            bytes: ic.msg_bytes,
        });
    }
    let c = ooc_array::irreg_counts(sched, method);
    v.push(NestNode::read(
        &sched.stamp.data.name,
        c.read_requests,
        c.read_bytes / es,
    ));
    v.push(NestNode::Comm {
        label: format!("gather exchange ({})", method.label()),
        messages: c.messages,
        bytes: c.msg_bytes,
    });
    v
}

/// The per-rank SpMV node program under `method`, priced from `stats`
/// (synthetic at compile time, measured at run time). Mirrors the executor
/// step for step: stream the local rowptr slice and broadcast it, inspect
/// the indirection array, gather `x`, stream the local values, accumulate,
/// reduce the partial products to the row owners, write `y`.
pub fn spmv_nest_with(
    plan: &SpmvPlan,
    method: IoMethod,
    stats: &IrregStats,
    rank: usize,
) -> Vec<NestNode> {
    let p = plan.nprocs as u64;
    let nloc = plan.y.local_shape(rank).extent(0) as u64;
    let rp_loc = plan.rowptr.local_shape(rank).extent(0) as u64;
    let nnz_loc = plan.vals.local_shape(rank).extent(0) as u64;
    let mut v = vec![
        NestNode::read(&plan.rowptr.name, u64::from(rp_loc > 0), rp_loc),
        NestNode::Comm {
            label: "allgather rowptr".into(),
            messages: p.saturating_sub(1),
            bytes: rp_loc * 4 * p.saturating_sub(1),
        },
    ];
    v.extend(inspector_nodes(&plan.colidx.name, stats));
    v.extend(gather_nodes(&plan.x.name, stats, method));
    v.push(NestNode::read(
        &plan.vals.name,
        u64::from(nnz_loc > 0),
        nnz_loc,
    ));
    v.push(NestNode::Compute {
        label: "y(row(k)) += vals(k) * x(colidx(k))".into(),
        flops: 2 * nnz_loc + p.saturating_sub(1) * nloc,
    });
    v.push(NestNode::Comm {
        label: "reduce partial y to row owners".into(),
        messages: p.saturating_sub(1),
        bytes: nloc * 4 * p.saturating_sub(1),
    });
    v.push(NestNode::write(&plan.y.name, u64::from(nloc > 0), nloc));
    v
}

/// The compile-time SpMV nest: the plan's chosen method priced over the
/// fully-scattered member of the cost-term family (run length 1 — the
/// conservative assumption for an unseen index set).
pub fn spmv_nest(plan: &SpmvPlan) -> Vec<NestNode> {
    let stats = scattered_stats(plan.n, plan.nnz, plan.nprocs, 4, 1);
    spmv_nest_with(plan, plan.method, &stats, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostEstimate;
    use crate::ir::totals;
    use dmsim::CostModel;

    #[test]
    fn run_model_obeys_both_bounds() {
        // Clump bound: 16 elements in runs of 4 inside a huge window.
        assert_eq!(runs_of(16, 1 << 20, 4), 4);
        // Density bound: a saturated window coalesces to one run.
        assert_eq!(runs_of(16, 16, 1), 1);
        // Empty stream, no runs.
        assert_eq!(runs_of(0, 64, 1), 0);
        // Sparse scattered singletons: one run each.
        assert_eq!(runs_of(4, 1 << 20, 1), 4);
    }

    #[test]
    fn scattered_family_tightens_with_run_length() {
        let loose = scattered_stats(1 << 16, 1 << 14, 4, 4, 1);
        let tight = scattered_stats(1 << 16, 1 << 14, 4, 4, 8);
        assert!(tight.serve_runs < loose.serve_runs, "clumps coalesce");
        assert!(tight.union_runs <= loose.union_runs);
        assert_eq!(tight.serve_elems, loose.serve_elems, "bytes are run-blind");
    }

    #[test]
    fn two_phase_never_reads_more_than_direct_in_the_model() {
        for (n, nnz, p) in [(64, 512, 4), (1 << 14, 1 << 16, 8), (256, 300, 2)] {
            let s = scattered_stats(n, nnz, p, 4, 1);
            let d = totals(&gather_nodes("x", &s, IoMethod::Direct));
            let t = totals(&gather_nodes("x", &s, IoMethod::TwoPhase));
            assert!(t.per_array["x"].read_requests <= d.per_array["x"].read_requests);
            assert!(t.per_array["x"].read_elems <= d.per_array["x"].read_elems);
        }
    }

    #[test]
    fn selector_prefers_two_phase_on_a_scattered_overlapping_set() {
        // nnz >> n: every rank's want lists overlap heavily, so the union
        // read dedups across requesters and wins under Delta's per-request
        // latency.
        let s = scattered_stats(64, 512, 4, 4, 1);
        let model = CostModel::delta(4);
        let choice =
            crate::reorg::choose_io_method("gather x", &model, None, |m| gather_nodes("x", &s, m));
        assert_eq!(choice.chosen, IoMethod::TwoPhase, "{:?}", choice.estimates);
        assert!(!choice.forced);
    }

    #[test]
    fn spmv_nest_accounts_every_stream() {
        use ooc_array::{ArrayDesc, ArrayId, DimDist, DistKind, Distribution, ProcGrid, Shape};
        use pario::ElemKind;
        let (n, nnz, p) = (64, 512, 4);
        let vec_desc = |id: u32, name: &str, len: usize| {
            ArrayDesc::new(
                ArrayId(id),
                name,
                ElemKind::F32,
                Distribution::new(
                    Shape::new(vec![len]),
                    vec![DimDist::Distributed {
                        kind: DistKind::Block,
                        axis: 0,
                    }],
                    ProcGrid::line(p),
                ),
            )
        };
        let plan = SpmvPlan {
            y: vec_desc(0, "y", n),
            rowptr: vec_desc(1, "rowptr", n + 1),
            colidx: vec_desc(2, "colidx", nnz),
            vals: vec_desc(3, "vals", nnz),
            x: vec_desc(4, "x", n),
            n,
            nnz,
            nprocs: p,
            method: IoMethod::TwoPhase,
        };
        let t = totals(&spmv_nest(&plan));
        // Every stream appears: rowptr, colidx (inspector), x (gather),
        // vals in; y out.
        for name in ["rowptr", "colidx", "x", "vals"] {
            assert!(t.per_array[name].read_elems > 0, "{name}");
        }
        assert_eq!(t.per_array["vals"].read_elems, (nnz / p) as u64);
        assert_eq!(t.per_array["y"].write_elems, (n / p) as u64);
        assert!(t.flops >= 2 * (nnz / p) as u64);
        let est = CostEstimate::from_nest(&spmv_nest(&plan), &CostModel::delta(p), 4);
        assert!(est.time() > 0.0);
    }
}
