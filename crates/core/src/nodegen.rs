//! Node-program generation: executable plans → symbolic loop nests.
//!
//! For each [`ExecPlan`] this module builds the per-processor
//! node+MP+I/O program as a [`NestNode`] tree. Figures 9 and 12 of the
//! paper are exactly [`gaxpy_nest`] for the column-slab and row-slab plans;
//! the cost estimator walks these trees and the executor mirrors their
//! operation sequence, so predicted and measured I/O metrics agree
//! request-for-request (ragged final slabs included).

use ooc_array::{ArrayDesc, DimRange, Section};

use crate::hir::ElwStmt;
use crate::ir::NestNode;
use crate::partition::local_iteration_space;
use crate::plan::{ElwPlan, ExecPlan, GaxpyPlan, RemapSpec, SlabStrategy, TransposePlan};

/// ceil(log2(p)): stages of a binomial-tree collective.
pub fn ceil_log2(p: usize) -> u64 {
    if p <= 1 {
        0
    } else {
        (usize::BITS - (p - 1).leading_zeros()) as u64
    }
}

/// Requests needed to move the slab `[lo, hi)` along `dim` of `desc`'s
/// local array on `rank`, under the array's file layout.
pub fn slab_requests(desc: &ArrayDesc, rank: usize, dim: usize, lo: usize, hi: usize) -> u64 {
    let local = desc.local_shape(rank);
    let sec = Section::full(&local).with_range(dim, DimRange::new(lo, hi));
    desc.layout.count_section_runs(&local, &sec)
}

/// Build the nest for any plan.
pub fn nest_of(plan: &ExecPlan) -> Vec<NestNode> {
    match plan {
        ExecPlan::Gaxpy(g) => gaxpy_nest(g),
        ExecPlan::Elementwise(e) => elw_nest(e, 0),
        ExecPlan::Transpose(t) => transpose_nest(t),
        ExecPlan::Spmv(s) => crate::irreg::spmv_nest(s),
    }
}

/// The GAXPY node program (Figure 9 for column slabs, Figure 12 for row
/// slabs) for rank 0 — the most-loaded processor under ceil-block
/// distribution, hence the one whose time bounds the run.
pub fn gaxpy_nest(plan: &GaxpyPlan) -> Vec<NestNode> {
    gaxpy_nest_for(plan, 0)
}

/// The GAXPY node program of a *specific* rank. When `p` does not divide
/// `n`, ranks own different numbers of columns, so their A-streams, compute
/// and C-writes differ; this per-rank nest matches each rank's measured
/// I/O exactly.
pub fn gaxpy_nest_for(plan: &GaxpyPlan, rank: usize) -> Vec<NestNode> {
    match plan.strategy {
        SlabStrategy::ColumnSlab => gaxpy_column_nest(plan, rank),
        SlabStrategy::RowSlab => gaxpy_row_nest(plan, rank),
    }
}

fn gaxpy_column_nest(plan: &GaxpyPlan, rank: usize) -> Vec<NestNode> {
    let n = plan.n;
    let lc = plan.a.local_shape(rank).extent(1);
    let lc_c = plan.c.local_shape(rank).extent(1);
    let lr_b = plan.b.local_shape(rank).extent(0);
    let logp = ceil_log2(plan.nprocs);

    // Streaming all slabs of A once (per column of B): full slabs + ragged.
    let fa = lc / plan.slab_a;
    let ra = lc % plan.slab_a;
    let mut a_stream = Vec::new();
    if fa > 0 {
        a_stream.push(NestNode::loop_(
            "s = 1, ka  (slabs of a)",
            fa as u64,
            vec![
                NestNode::read(
                    &plan.a.name,
                    slab_requests(&plan.a, rank, 1, 0, plan.slab_a),
                    (n * plan.slab_a) as u64,
                ),
                NestNode::Compute {
                    label: "temp(:) = temp(:) + a(:,i)*b(i,m)".into(),
                    flops: (2 * n * plan.slab_a) as u64,
                },
            ],
        ));
    }
    if ra > 0 {
        a_stream.push(NestNode::read(
            &plan.a.name,
            slab_requests(&plan.a, rank, 1, fa * plan.slab_a, lc),
            (n * ra) as u64,
        ));
        a_stream.push(NestNode::Compute {
            label: "temp(:) = temp(:) + a(:,i)*b(i,m)  (ragged)".into(),
            flops: (2 * n * ra) as u64,
        });
    }

    let per_column = {
        let mut v = a_stream;
        v.push(NestNode::Comm {
            label: "global_sum(temp) -> column of c".into(),
            messages: logp,
            bytes: 4 * n as u64 * logp,
        });
        v
    };

    let col_body = |w: usize| -> Vec<NestNode> {
        vec![
            NestNode::read(
                &plan.b.name,
                slab_requests(&plan.b, rank, 1, 0, w),
                (lr_b * w) as u64,
            ),
            NestNode::loop_("m = 1, cols in icla of b", w as u64, per_column.clone()),
        ]
    };

    let fb = n / plan.slab_b;
    let rb = n % plan.slab_b;
    let mut nest = Vec::new();
    if fb > 0 {
        nest.push(NestNode::loop_(
            "l = 1, kb  (slabs of b)",
            fb as u64,
            col_body(plan.slab_b),
        ));
    }
    if rb > 0 {
        nest.extend(col_body(rb));
    }

    // Buffered writes of C's owned columns (ICLA of slab_c columns).
    let fc = lc_c / plan.slab_c;
    let rc = lc_c % plan.slab_c;
    let mut writes = Vec::new();
    if fc > 0 {
        writes.push(NestNode::loop_(
            "c buffers",
            fc as u64,
            vec![NestNode::write(
                &plan.c.name,
                slab_requests(&plan.c, rank, 1, 0, plan.slab_c),
                (n * plan.slab_c) as u64,
            )],
        ));
    }
    if rc > 0 {
        writes.push(NestNode::write(
            &plan.c.name,
            slab_requests(&plan.c, rank, 1, fc * plan.slab_c, lc_c),
            (n * rc) as u64,
        ));
    }
    nest.push(NestNode::IfOwner {
        label: "mynode owns these columns of c".into(),
        body: writes,
    });
    nest
}

fn gaxpy_row_nest(plan: &GaxpyPlan, rank: usize) -> Vec<NestNode> {
    let n = plan.n;
    let lc = plan.a.local_shape(rank).extent(1);
    let lr_b = plan.b.local_shape(rank).extent(0);
    let logp = ceil_log2(plan.nprocs);
    let fb = n / plan.slab_b;
    let rb = n % plan.slab_b;
    // Loop-invariant I/O motion: when B's ICLA holds the whole OCLA, its
    // read is invariant in the A-slab loop and hoisted out (this is what
    // makes "give B enough memory" pay off in Table 2).
    let b_resident = plan.slab_b >= n;

    let row_body = |h_lo: usize, h_hi: usize| -> Vec<NestNode> {
        let h = h_hi - h_lo;
        let per_column = vec![
            NestNode::Compute {
                label: "temp(:) = temp(:) + a(j,i)*b(i,m)".into(),
                flops: (2 * h * lc) as u64,
            },
            NestNode::Comm {
                label: "global_sum(temp) -> subcolumn of c".into(),
                messages: logp,
                bytes: 4 * h as u64 * logp,
            },
        ];
        let mut v = vec![NestNode::read(
            &plan.a.name,
            slab_requests(&plan.a, rank, 0, h_lo, h_hi),
            (h * lc) as u64,
        )];
        if b_resident {
            v.push(NestNode::loop_(
                "m = 1, n  (b resident)",
                n as u64,
                per_column.clone(),
            ));
        } else {
            if fb > 0 {
                v.push(NestNode::loop_(
                    "nn = 1, kb  (slabs of b)",
                    fb as u64,
                    vec![
                        NestNode::read(
                            &plan.b.name,
                            slab_requests(&plan.b, rank, 1, 0, plan.slab_b),
                            (lr_b * plan.slab_b) as u64,
                        ),
                        NestNode::loop_(
                            "m = 1, cols in icla of b",
                            plan.slab_b as u64,
                            per_column.clone(),
                        ),
                    ],
                ));
            }
            if rb > 0 {
                v.push(NestNode::read(
                    &plan.b.name,
                    slab_requests(&plan.b, rank, 1, fb * plan.slab_b, n),
                    (lr_b * rb) as u64,
                ));
                v.push(NestNode::loop_(
                    "m = 1, cols in icla of b  (ragged)",
                    rb as u64,
                    per_column,
                ));
            }
        }
        v.push(NestNode::IfOwner {
            label: "mynode owns these columns of c".into(),
            body: vec![NestNode::write(
                &plan.c.name,
                slab_requests(&plan.c, rank, 0, h_lo, h_hi),
                (h * plan.c.local_shape(rank).extent(1)) as u64,
            )],
        });
        v
    };

    let fa = n / plan.slab_a;
    let ra = n % plan.slab_a;
    let mut nest = Vec::new();
    if b_resident {
        // Hoisted: B streamed into memory exactly once.
        nest.push(NestNode::read(
            &plan.b.name,
            slab_requests(&plan.b, rank, 1, 0, n),
            (lr_b * n) as u64,
        ));
    }
    if fa > 0 {
        nest.push(NestNode::loop_(
            "l = 1, ka  (row slabs of a)",
            fa as u64,
            row_body(0, plan.slab_a),
        ));
    }
    if ra > 0 {
        nest.extend(row_body(fa * plan.slab_a, n));
    }
    nest
}

/// Node program for an elementwise plan, estimated for `rank` (processors
/// are symmetric in block distributions of full regions; the estimator uses
/// rank 0).
pub fn elw_nest(plan: &ElwPlan, rank: usize) -> Vec<NestNode> {
    let Some(local_region) = local_iteration_space(&plan.lhs.dist, rank, &plan.region) else {
        return Vec::new();
    };
    let local_shape = plan.lhs.local_shape(rank);
    let mut nest = Vec::new();

    // Pre-statement remaps: an exact replay of the redistribution's request
    // arithmetic under the chosen access method (same section machinery,
    // same coalescing, same sieve planner as the executor).
    for r in &plan.pre_remaps {
        nest.extend(remap_nodes(r, rank));
    }

    // Ghost exchanges: per spec, per rhs array, one strip read + one
    // message per neighbor this rank has (mirrors the executor exactly).
    for g in &plan.ghosts {
        let (p_axis, coord) = match plan.lhs.dist.dims()[g.dim] {
            ooc_array::DimDist::Distributed { axis, .. } => {
                let coords = plan.lhs.dist.grid().coords(rank);
                (plan.lhs.dist.grid().extent(axis), coords[axis])
            }
            ooc_array::DimDist::Collapsed => continue,
        };
        let other: usize = (0..local_shape.ndims())
            .filter(|&d| d != g.dim)
            .map(|d| local_shape.extent(d))
            .product();
        let mut sends = Vec::new();
        if coord > 0 && g.hi_width > 0 {
            sends.push(g.hi_width.min(local_shape.extent(g.dim)));
        }
        if coord + 1 < p_axis && g.lo_width > 0 {
            sends.push(g.lo_width.min(local_shape.extent(g.dim)));
        }
        for rd in &plan.rhs_arrays {
            for &w in &sends {
                let strip = Section::full(&local_shape).with_range(g.dim, DimRange::new(0, w));
                nest.push(NestNode::read(
                    &rd.name,
                    rd.layout.count_section_runs(&rd.local_shape(rank), &strip),
                    (w * other) as u64,
                ));
                nest.push(NestNode::Comm {
                    label: format!("ghost send dim {}", g.dim),
                    messages: 1,
                    bytes: (w * other * 4) as u64,
                });
            }
        }
    }

    // Slab loop over the local region along slab_dim. Group stages as
    // first / middle / last since ghost widening clamps at the edges.
    let r = local_region.range(plan.slab_dim);
    let extent = r.len();
    let t = plan.slab_thickness.max(1);
    let stages = extent.div_ceil(t);
    let shifts: Vec<usize> = {
        // Reconstruct per-dimension max shifts from the expression.
        let stmt = ElwStmt {
            lhs: plan.lhs.name.clone(),
            region: plan.region.clone(),
            rhs: plan.expr.clone(),
        };
        stmt.max_shift(local_shape.ndims())
    };

    let stage_nodes = |lo: usize, hi: usize| -> Vec<NestNode> {
        let sec = local_region
            .clone()
            .with_range(plan.slab_dim, DimRange::new(lo, hi));
        let mut v = Vec::new();
        for rd in &plan.rhs_arrays {
            let wlo = lo.saturating_sub(shifts[plan.slab_dim]);
            let whi = (hi + shifts[plan.slab_dim]).min(local_shape.extent(plan.slab_dim));
            // The read section spans the region widened by all shifts in
            // every dimension, clamped to the local array.
            let mut rsec = sec.clone();
            for (d, &shift) in shifts.iter().enumerate().take(local_shape.ndims()) {
                let rr = rsec.range(d);
                let (a, b) = if d == plan.slab_dim {
                    (wlo, whi)
                } else {
                    (
                        rr.lo.saturating_sub(shift),
                        (rr.hi + shift).min(local_shape.extent(d)),
                    )
                };
                rsec = rsec.with_range(d, DimRange::new(a, b));
            }
            v.push(NestNode::read(
                &rd.name,
                rd.layout.count_section_runs(&rd.local_shape(rank), &rsec),
                rsec.len() as u64,
            ));
        }
        v.push(NestNode::Compute {
            label: "evaluate rhs over slab".into(),
            flops: sec.len() as u64 * plan.flops_per_point,
        });
        v.push(NestNode::write(
            &plan.lhs.name,
            plan.lhs.layout.count_section_runs(&local_shape, &sec),
            sec.len() as u64,
        ));
        v
    };

    match stages {
        0 => {}
        1 => nest.extend(stage_nodes(r.lo, r.hi)),
        _ => {
            nest.extend(stage_nodes(r.lo, r.lo + t)); // first
            if stages > 2 {
                nest.push(NestNode::loop_(
                    "interior slabs",
                    (stages - 2) as u64,
                    stage_nodes(r.lo + t, r.lo + 2 * t),
                ));
            }
            nest.extend(stage_nodes(r.lo + (stages - 1) * t, r.hi)); // last
        }
    }
    nest
}

/// The three estimate nodes of one pre-statement remap, exact for `rank`:
/// [`ooc_array::redist_counts`] replays the executor's request schedule for
/// the spec's access method. Sieved read-modify-write writes surface as an
/// extra read node on the destination array, matching how the tracing layer
/// attributes them.
pub fn remap_nodes(r: &RemapSpec, rank: usize) -> Vec<NestNode> {
    let es = r.src.elem.size() as u64;
    let cnt = ooc_array::redist_counts(&r.src, &r.tmp, rank, r.method);
    let mut v = vec![NestNode::read(
        &r.src.name,
        cnt.read_requests,
        cnt.read_bytes / es,
    )];
    if cnt.dst_read_requests > 0 {
        v.push(NestNode::read(
            &r.tmp.name,
            cnt.dst_read_requests,
            cnt.dst_read_bytes / es,
        ));
    }
    v.push(NestNode::Comm {
        label: format!(
            "remap `{}` to the lhs distribution ({})",
            r.src.name,
            r.method.label()
        ),
        messages: cnt.messages,
        bytes: cnt.msg_bytes,
    });
    v.push(NestNode::write(
        &r.tmp.name,
        cnt.write_requests,
        cnt.write_bytes / es,
    ));
    v
}

/// Node program for a transpose plan.
///
/// Under `Direct`/`Sieved` the *read* side is exact (full and ragged slabs
/// accounted separately, matching the executor request for request); the
/// communication and write sides are estimates — the remap's write-side
/// request count depends on arrival interleaving, which the executor
/// measures honestly. Under `TwoPhase` every side is exact: each stage is
/// one contiguous slab read plus the all-to-all exchange, and the whole
/// local destination is assembled in memory and written with a single
/// request after the stage loop.
pub fn transpose_nest(plan: &TransposePlan) -> Vec<NestNode> {
    let local = plan.src.local_shape(0);
    let slab_dim = plan.src.layout.slowest_dim();
    let extent = local.extent(slab_dim);
    let others: u64 = (0..local.ndims())
        .filter(|&d| d != slab_dim)
        .map(|d| local.extent(d) as u64)
        .product();
    let t = plan.slab_thickness.max(1);
    let p = plan.src.dist.nprocs() as u64;
    let two_phase = plan.method == pario::IoMethod::TwoPhase;
    let stage = |h: usize| -> Vec<NestNode> {
        let elems = h as u64 * others;
        let mut v = vec![
            NestNode::read(&plan.src.name, 1, elems),
            NestNode::Comm {
                label: "remap exchange".into(),
                messages: p.saturating_sub(1),
                bytes: elems * 4 * (p.saturating_sub(1)) / p.max(1),
            },
        ];
        if !two_phase {
            v.push(NestNode::write(&plan.dst.name, p, elems));
        }
        v
    };
    let full = extent / t;
    let rag = extent % t;
    let mut nest = Vec::new();
    if full > 0 {
        nest.push(NestNode::loop_(
            "l = 1, slabs of src",
            full as u64,
            stage(t),
        ));
    }
    if rag > 0 {
        nest.extend(stage(rag));
    }
    if two_phase {
        let dst_elems = plan.dst.local_shape(0).len() as u64;
        if dst_elems > 0 {
            nest.push(NestNode::write(&plan.dst.name, 1, dst_elems));
        }
    }
    nest
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::totals;
    use ooc_array::{ArrayId, Distribution, FileLayout, Shape};
    use pario::ElemKind;

    fn gaxpy_plan(strategy: SlabStrategy, n: usize, p: usize, sa: usize, sb: usize) -> GaxpyPlan {
        let col = Distribution::column_block(Shape::matrix(n, n), p);
        let row = Distribution::row_block(Shape::matrix(n, n), p);
        let (a_layout, c_layout) = match strategy {
            SlabStrategy::ColumnSlab => (FileLayout::column_major(2), FileLayout::column_major(2)),
            SlabStrategy::RowSlab => (FileLayout::row_major(2), FileLayout::row_major(2)),
        };
        GaxpyPlan {
            strategy,
            a: ArrayDesc::new(ArrayId(0), "a", ElemKind::F32, col.clone()).with_layout(a_layout),
            b: ArrayDesc::new(ArrayId(1), "b", ElemKind::F32, row),
            c: ArrayDesc::new(ArrayId(2), "c", ElemKind::F32, col).with_layout(c_layout),
            n,
            nprocs: p,
            slab_a: sa,
            slab_b: sb,
            slab_c: sa.min(n / p),
        }
    }

    #[test]
    fn column_nest_matches_equations_3_and_4() {
        // N=64, P=4, slab_a = 4 columns => M = N*slab_a = 256 elements.
        let plan = gaxpy_plan(SlabStrategy::ColumnSlab, 64, 4, 4, 4);
        let t = totals(&gaxpy_nest(&plan));
        let n = 64u64;
        let p = 4u64;
        let m = 64 * 4u64;
        // T_fetch(A) = N^3 / (M P); T_data(A) = N^3 / P.
        assert_eq!(t.per_array["a"].read_requests, n * n * n / (m * p));
        assert_eq!(t.per_array["a"].read_elems, n * n * n / p);
        // B read once: N/slab_b requests, N^2/P elements.
        assert_eq!(t.per_array["b"].read_requests, 64 / 4);
        assert_eq!(t.per_array["b"].read_elems, n * n / p);
        // C written once.
        assert_eq!(t.per_array["c"].write_elems, n * n / p);
    }

    #[test]
    fn row_nest_matches_equations_5_and_6() {
        // N=64, P=4, slab_a = 16 rows => M = slab_a * N/P = 16*16 = 256.
        let plan = gaxpy_plan(SlabStrategy::RowSlab, 64, 4, 16, 4);
        let t = totals(&gaxpy_nest(&plan));
        let n = 64u64;
        let p = 4u64;
        let m = 16 * 16u64;
        // T_fetch(A) = N^2/(M P); T_data(A) = N^2/P.
        assert_eq!(t.per_array["a"].read_requests, n * n / (m * p));
        assert_eq!(t.per_array["a"].read_elems, n * n / p);
        // B re-read once per slab of A.
        let ka = n * n / (m * p);
        assert_eq!(t.per_array["b"].read_elems, ka * n * n / p);
        // C written once, one row slab per A slab.
        assert_eq!(t.per_array["c"].write_requests, ka);
        assert_eq!(t.per_array["c"].write_elems, n * n / p);
    }

    #[test]
    fn row_slabs_order_of_magnitude_fewer_requests() {
        // The paper's headline: same memory, ~N x fewer fetches for A.
        let col = gaxpy_plan(SlabStrategy::ColumnSlab, 256, 4, 16, 16);
        let row = gaxpy_plan(SlabStrategy::RowSlab, 256, 4, 64, 16); // same slab elems
        assert_eq!(col.slab_a_elems(), row.slab_a_elems());
        let tc = totals(&gaxpy_nest(&col));
        let tr = totals(&gaxpy_nest(&row));
        let ratio = tc.per_array["a"].read_requests as f64 / tr.per_array["a"].read_requests as f64;
        assert_eq!(ratio, 256.0, "A fetch ratio should be N");
        assert!(
            tc.per_array["a"].read_elems / tr.per_array["a"].read_elems == 256,
            "A data ratio should be N"
        );
    }

    #[test]
    fn ragged_slabs_account_every_element() {
        // lc = 10, slab_a = 3: slabs of 3,3,3,1 columns.
        let plan = gaxpy_plan(SlabStrategy::ColumnSlab, 40, 4, 3, 7);
        let t = totals(&gaxpy_nest(&plan));
        // A's data per column of C: full OCLA = 40*10; times N=40 columns.
        assert_eq!(t.per_array["a"].read_elems, (40 * 10 * 40) as u64);
        // 4 slabs per sweep, 40 sweeps.
        assert_eq!(t.per_array["a"].read_requests, 4 * 40);
        // B: slabs of 7 columns: 5 full + ragged 5 -> 6 requests.
        assert_eq!(t.per_array["b"].read_requests, 6);
        assert_eq!(t.per_array["b"].read_elems, (10 * 40) as u64);
    }

    #[test]
    fn unreorganized_row_slabs_are_strided() {
        // Ablation: row slabs but A kept column-major -> each A read is
        // lc strided runs instead of 1.
        let mut plan = gaxpy_plan(SlabStrategy::RowSlab, 64, 4, 16, 16);
        plan.a = plan.a.clone().with_layout(FileLayout::column_major(2));
        let t = totals(&gaxpy_nest(&plan));
        let ka = 64 / 16u64;
        assert_eq!(t.per_array["a"].read_requests, ka * 16); // lc=16 runs per slab
    }

    #[test]
    fn compute_flops_total_2n3_over_p() {
        for strategy in [SlabStrategy::ColumnSlab, SlabStrategy::RowSlab] {
            let plan = gaxpy_plan(strategy, 64, 4, 8, 8);
            let t = totals(&gaxpy_nest(&plan));
            assert_eq!(t.flops, 2 * 64u64.pow(3) / 4, "{strategy:?}");
        }
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(64), 6);
    }
}
