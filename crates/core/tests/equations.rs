//! The paper's closed-form I/O cost equations (3)–(6), checked against the
//! loop-nest estimator for randomized (divisible) configurations.
//!
//! Column slabs (equations 3, 4), slab memory `M = N · slab_a` elements:
//!   T_fetch(A) = N³ / (M·P),   T_data(A) = N³ / P.
//! Row slabs (equations 5, 6), slab memory `M = slab_a · N/P`:
//!   T_fetch(A) = N² / (M·P),   T_data(A) = N² / P.

use proptest::prelude::*;

use ooc_array::{ArrayDesc, ArrayId, Distribution, FileLayout, Shape};
use ooc_core::ir::totals;
use ooc_core::nodegen::gaxpy_nest;
use ooc_core::plan::{GaxpyPlan, SlabStrategy};
use pario::ElemKind;

fn plan(strategy: SlabStrategy, n: usize, p: usize, sa: usize, sb: usize) -> GaxpyPlan {
    let col = Distribution::column_block(Shape::matrix(n, n), p);
    let row = Distribution::row_block(Shape::matrix(n, n), p);
    let layout = match strategy {
        SlabStrategy::ColumnSlab => FileLayout::column_major(2),
        SlabStrategy::RowSlab => FileLayout::row_major(2),
    };
    GaxpyPlan {
        strategy,
        a: ArrayDesc::new(ArrayId(0), "a", ElemKind::F32, col.clone()).with_layout(layout.clone()),
        b: ArrayDesc::new(ArrayId(1), "b", ElemKind::F32, row),
        c: ArrayDesc::new(ArrayId(2), "c", ElemKind::F32, col).with_layout(layout),
        n,
        nprocs: p,
        slab_a: sa,
        slab_b: sb,
        slab_c: sa.min(n / p),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Equation (3)/(4): the column version's A cost.
    #[test]
    fn column_version_equations(
        logn in 4usize..9,   // n = 16..256
        logp in 0usize..4,   // p = 1..8
        sa_div in 0usize..3, // slab_a divides lc
        sb_div in 0usize..3,
    ) {
        let n = 1usize << logn;
        let p = 1usize << logp;
        prop_assume!(n / p >= 8);
        let lc = n / p;
        let sa = lc >> sa_div;
        let sb = n >> sb_div;
        let t = totals(&gaxpy_nest(&plan(SlabStrategy::ColumnSlab, n, p, sa, sb)));
        let (n64, p64) = (n as u64, p as u64);
        let m = n64 * sa as u64; // slab elements
        prop_assert_eq!(t.per_array["a"].read_requests, n64.pow(3) / (m * p64));
        prop_assert_eq!(t.per_array["a"].read_elems, n64.pow(3) / p64);
        // B read once, C written once.
        prop_assert_eq!(t.per_array["b"].read_elems, n64 * n64 / p64);
        prop_assert_eq!(t.per_array["c"].write_elems, n64 * n64 / p64);
    }

    /// Equation (5)/(6): the row version's A cost.
    #[test]
    fn row_version_equations(
        logn in 4usize..9,
        logp in 0usize..4,
        sa_div in 0usize..4, // slab_a divides n
        sb_div in 1usize..3, // keep B non-resident so kb matters
    ) {
        let n = 1usize << logn;
        let p = 1usize << logp;
        prop_assume!(n / p >= 4);
        let sa = n >> sa_div;
        let sb = n >> sb_div;
        let t = totals(&gaxpy_nest(&plan(SlabStrategy::RowSlab, n, p, sa, sb)));
        let (n64, p64) = (n as u64, p as u64);
        let m = sa as u64 * (n64 / p64);
        prop_assert_eq!(t.per_array["a"].read_requests, n64 * n64 / (m * p64));
        prop_assert_eq!(t.per_array["a"].read_elems, n64 * n64 / p64);
        // B restreams once per A slab.
        let ka = n64 / sa as u64;
        prop_assert_eq!(t.per_array["b"].read_elems, ka * n64 * n64 / p64);
        // Compute is always 2N³/P flops.
        prop_assert_eq!(t.flops, 2 * n64.pow(3) / p64);
    }

    /// The headline: the row version moves O(N) times less of A.
    #[test]
    fn reorganization_gain_is_order_n(logn in 4usize..9) {
        let n = 1usize << logn;
        let p = 4usize;
        let col = totals(&gaxpy_nest(&plan(SlabStrategy::ColumnSlab, n, p, n / p / 2, n / 2)));
        let row = totals(&gaxpy_nest(&plan(SlabStrategy::RowSlab, n, p, n / 2, n / 2)));
        prop_assert_eq!(
            col.per_array["a"].read_elems / row.per_array["a"].read_elems,
            n as u64
        );
    }
}
