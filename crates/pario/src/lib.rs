//! # pario — the parallel I/O substrate
//!
//! Implements the data storage model of §2.3 of the paper: every simulated
//! processor owns a **logical disk** holding its **Local Array Files**
//! (LAFs). A processor can only touch its own logical disk; data living on
//! another processor's disk must be read by the owner and communicated.
//!
//! The unit of cost is the **I/O request**: one contiguous byte run moved
//! between disk and memory. Strided accesses decompose into multiple runs;
//! adjacent runs are coalesced before being counted, mirroring what a
//! PASSION-style runtime does with data sieving. The two metrics the paper
//! uses to compare translation schemes — requests per processor and bytes per
//! processor — are charged to the machine's [`dmsim`] cost model through the
//! [`IoCharge`] trait at the moment the access happens, so the executor's
//! measured costs and the compiler's estimates can be compared exactly.
//!
//! Two interchangeable backends store the bytes: an in-memory store (fast,
//! used by most tests and benches) and a real-file store under a scratch
//! directory (used to demonstrate the system against a genuine filesystem).

pub mod backend;
pub mod cache;
pub mod disk;
pub mod error;
pub mod laf;
pub mod method;
pub mod request;
pub mod sieve;
pub mod stats;

pub use backend::{DiskBackend, MemBackend, StorageBackend};
pub use cache::{BufferPool, FileIoCounts, SlabCache};
pub use disk::{FileId, LogicalDisk};
pub use error::{FaultOp, IoError};
pub use laf::{bytes_to_f32, f32_to_bytes, ElemKind, ElemRun, LocalArrayFile};
pub use method::{plan_union, IoMethod, UnionPlan};
pub use request::{coalesce_runs, total_bytes, ByteRun};
pub use sieve::{plan_access, AccessPlan, SievePolicy};
pub use stats::DiskStats;

use dmsim::ProcCtx;

/// Sink for I/O cost charges.
///
/// The production implementation is [`dmsim::ProcCtx`], which advances the
/// virtual clock and the per-processor counters. [`NoCharge`] supports
/// standalone use of the I/O layer (tests, file preparation outside the
/// simulated region).
pub trait IoCharge {
    /// Charge a read of `requests` contiguous runs totalling `bytes`.
    fn io_read(&self, requests: u64, bytes: u64);
    /// Charge a write of `requests` contiguous runs totalling `bytes`.
    fn io_write(&self, requests: u64, bytes: u64);
    /// Record `runs` read accesses totalling `bytes` served entirely from
    /// the slab cache. Hits cost no simulated time; the default does
    /// nothing so plain sinks ignore them.
    fn io_cache_hit(&self, _runs: u64, _bytes: u64) {}
    /// Charge a dirty-slab write-back of `requests` contiguous runs
    /// totalling `bytes`. Timed like an ordinary write by default;
    /// implementations may additionally track it separately.
    fn io_write_back(&self, requests: u64, bytes: u64) {
        self.io_write(requests, bytes);
    }
    /// Charge recovery work accumulated by the fault-injection layer
    /// (re-issued requests, backoff waits, latency spikes). The default
    /// ignores it, so plain sinks and the logical request/byte metrics are
    /// untouched by injected faults.
    fn io_faults(&self, _charges: &dmsim::FaultCharges) {}
    /// Hint: subsequent charges serve array `name` stored in file `file`.
    /// Pure observability — the default ignores it; tracing sinks use it to
    /// tag disk events with array identity.
    fn io_array(&self, _name: &str, _file: u64) {}
    /// Hint: the next charge starts at file `offset`. Pure observability —
    /// the default ignores it; detail-tracing sinks stamp it on the disk
    /// span so the `ooc-sched` elevator policy can order seeks.
    fn io_offset(&self, _offset: u64) {}
    /// Observe the slab cache's occupancy after an operation: `used_bytes`
    /// resident, of which `dirty_bytes` not yet written back. Default
    /// ignores it.
    fn io_cache_level(&self, _used_bytes: u64, _dirty_bytes: u64) {}
    /// Observe one sieved read: a spanning read of `span_bytes` of which
    /// only `useful_bytes` were wanted. Default ignores it.
    fn io_sieve(&self, _span_bytes: u64, _useful_bytes: u64) {}
    /// The charged operation is a *disk wait*: a clock-advance point at
    /// which a cooperatively scheduled rank may hand the worker to whichever
    /// rank is furthest behind in virtual time. Purely a scheduling hint —
    /// it charges nothing and must not affect any simulated quantity. The
    /// default (and every plain sink) does nothing; `ProcCtx` forwards to
    /// [`dmsim::ProcCtx::io_yield`], which is a no-op on the threaded
    /// engine.
    fn io_wait(&self) {}
}

impl IoCharge for ProcCtx {
    fn io_read(&self, requests: u64, bytes: u64) {
        self.charge_io_read(requests, bytes);
    }
    fn io_write(&self, requests: u64, bytes: u64) {
        self.charge_io_write(requests, bytes);
    }
    fn io_cache_hit(&self, runs: u64, bytes: u64) {
        self.charge_io_cache_hit(runs, bytes);
    }
    fn io_write_back(&self, requests: u64, bytes: u64) {
        self.charge_io_write_back(requests, bytes);
    }
    fn io_faults(&self, charges: &dmsim::FaultCharges) {
        self.charge_io_faults(charges);
    }
    fn io_array(&self, name: &str, file: u64) {
        self.set_io_hint(name, file);
    }
    fn io_offset(&self, offset: u64) {
        self.set_io_offset(offset);
    }
    fn io_cache_level(&self, used_bytes: u64, dirty_bytes: u64) {
        self.trace_counter("cache_used", used_bytes as f64);
        self.trace_counter("cache_dirty", dirty_bytes as f64);
    }
    fn io_sieve(&self, span_bytes: u64, useful_bytes: u64) {
        if self.tracing() {
            self.trace_instant(
                ooc_trace::Category::Sieve,
                "sieve",
                ooc_trace::Args::io(1, span_bytes - useful_bytes),
            );
        }
    }
    fn io_wait(&self) {
        self.io_yield();
    }
}

/// An [`IoCharge`] that discards charges (setup work outside the measured
/// region, e.g. initial array distribution from "archival storage").
#[derive(Debug, Clone, Copy, Default)]
pub struct NoCharge;

impl IoCharge for NoCharge {
    fn io_read(&self, _requests: u64, _bytes: u64) {}
    fn io_write(&self, _requests: u64, _bytes: u64) {}
}

/// An [`IoCharge`] that accumulates instead of charging, so callers can
/// apply the cost later with different timing semantics (e.g. overlapped
/// with computation by [`dmsim::ProcCtx::charge_prefetched_read`]).
#[derive(Debug, Default)]
pub struct PendingIo {
    reads: std::cell::Cell<(u64, u64)>,
    writes: std::cell::Cell<(u64, u64)>,
}

impl PendingIo {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulated `(requests, bytes)` read so far.
    pub fn reads(&self) -> (u64, u64) {
        self.reads.get()
    }

    /// Accumulated `(requests, bytes)` written so far.
    pub fn writes(&self) -> (u64, u64) {
        self.writes.get()
    }
}

impl IoCharge for PendingIo {
    fn io_read(&self, requests: u64, bytes: u64) {
        let (r, b) = self.reads.get();
        self.reads.set((r + requests, b + bytes));
    }
    fn io_write(&self, requests: u64, bytes: u64) {
        let (r, b) = self.writes.get();
        self.writes.set((r + requests, b + bytes));
    }
}
