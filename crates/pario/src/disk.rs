//! Logical disks.
//!
//! Each simulated processor owns one [`LogicalDisk`] — the paper's
//! abstraction of "another level of memory which is much slower than the
//! main memory" (§2.3). The mapping from logical to physical disks is
//! declared system-dependent by the paper; here the *timing* effect of
//! sharing physical disks is carried by the cost model's
//! `shared_disks`/aggregate-bandwidth parameters, while each logical disk
//! stores its own bytes.

use crate::backend::{MemBackend, StorageBackend};
use crate::cache::{BufferPool, SlabCache};
use crate::error::Result;
use crate::request::{coalesce_runs, total_bytes, ByteRun};
use crate::stats::DiskStats;
use crate::IoCharge;

/// Identifier of a file on a particular logical disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u64);

/// A processor-private disk holding local array files.
pub struct LogicalDisk {
    backend: Box<dyn StorageBackend>,
    next_id: u64,
    stats: DiskStats,
    cache: Option<SlabCache>,
    pool: BufferPool,
}

impl std::fmt::Debug for LogicalDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogicalDisk")
            .field("next_id", &self.next_id)
            .field("stats", &self.stats)
            .field("cache", &self.cache)
            .finish()
    }
}

impl LogicalDisk {
    /// A disk backed by memory.
    pub fn in_memory() -> Self {
        Self::with_backend(Box::new(MemBackend::new()))
    }

    /// A disk backed by real files in a scratch directory; `label`
    /// distinguishes directories (typically the processor rank).
    pub fn on_disk(label: &str) -> Result<Self> {
        Ok(Self::with_backend(Box::new(
            crate::backend::DiskBackend::new(label)?,
        )))
    }

    /// A disk over an explicit backend.
    pub fn with_backend(backend: Box<dyn StorageBackend>) -> Self {
        LogicalDisk {
            backend,
            next_id: 0,
            stats: DiskStats::default(),
            cache: None,
            pool: BufferPool::new(),
        }
    }

    /// Put a slab cache with the given byte budget in front of the backend.
    /// Subsequent run reads/writes go through the cache: covered reads cost
    /// nothing, writes are buffered until eviction or
    /// [`LogicalDisk::flush_cache`]. Replaces any previous cache (flush
    /// first if it may hold dirty data).
    pub fn enable_cache(&mut self, budget: usize) {
        self.cache = Some(SlabCache::new(budget));
    }

    /// True when a slab cache is active.
    pub fn cache_enabled(&self) -> bool {
        self.cache.is_some()
    }

    /// Write back all dirty cached segments, charging each write-back to
    /// `charge`. No-op without a cache.
    pub fn flush_cache(&mut self, charge: &dyn IoCharge) -> Result<()> {
        let LogicalDisk {
            backend,
            cache,
            stats,
            ..
        } = self;
        if let Some(c) = cache.as_mut() {
            c.flush(Some(&mut **backend), charge, stats)?;
        }
        Ok(())
    }

    /// Allocate a new zero-filled file of `len` bytes.
    pub fn create_file(&mut self, len: u64) -> Result<FileId> {
        let id = self.next_id;
        self.next_id += 1;
        self.backend.create(id, len)?;
        Ok(FileId(id))
    }

    /// Length of `file` in bytes.
    pub fn file_len(&self, file: FileId) -> Result<u64> {
        self.backend.len(file.0)
    }

    /// Delete `file`. Cached segments of the file are dropped without
    /// write-back.
    pub fn remove_file(&mut self, file: FileId) -> Result<()> {
        if let Some(c) = self.cache.as_mut() {
            c.invalidate_file(file.0);
        }
        self.backend.remove(file.0)
    }

    /// Cumulative I/O counters for this disk.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// Take a cleared staging buffer from the disk's pool (return it with
    /// [`LogicalDisk::put_buf`] so the capacity is recycled).
    pub fn take_buf(&mut self) -> Vec<u8> {
        self.pool.take()
    }

    /// Return a staging buffer to the pool.
    pub fn put_buf(&mut self, buf: Vec<u8>) {
        self.pool.put(buf)
    }

    /// Read the byte `runs` of `file` into `out` (appended in run order,
    /// after coalescing). Charges one request per coalesced run.
    ///
    /// Returns the number of requests issued.
    pub fn read_runs(
        &mut self,
        file: FileId,
        runs: &[ByteRun],
        out: &mut Vec<u8>,
        charge: &dyn IoCharge,
    ) -> Result<u64> {
        self.read_runs_with(file, runs, out, charge, crate::sieve::SievePolicy::Direct)
    }

    /// Like [`LogicalDisk::read_runs`] but the access may be serviced by
    /// data sieving according to `policy`: one spanning request whose
    /// unwanted bytes are discarded in memory. The charged request/byte
    /// counts reflect what actually moved.
    pub fn read_runs_with(
        &mut self,
        file: FileId,
        runs: &[ByteRun],
        out: &mut Vec<u8>,
        charge: &dyn IoCharge,
        policy: crate::sieve::SievePolicy,
    ) -> Result<u64> {
        use crate::sieve::{plan_access, sieve_extract, AccessPlan};
        // With a slab cache the sieve is bypassed: the cache's miss handling
        // already issues one spanning request per uncovered gap, which
        // subsumes data sieving while also capturing reuse.
        if self.cache.is_some() {
            let coalesced = coalesce_runs(runs);
            let bytes = total_bytes(&coalesced);
            let start = out.len();
            out.resize(start + bytes as usize, 0);
            let LogicalDisk {
                backend,
                cache,
                stats,
                ..
            } = self;
            let cache = cache.as_mut().expect("cache checked above");
            let before = stats.read_requests;
            let mut cursor = start;
            for run in &coalesced {
                let buf = &mut out[cursor..cursor + run.len as usize];
                cache.read(file.0, *run, Some(buf), Some(&mut **backend), charge, stats)?;
                cursor += run.len as usize;
            }
            return Ok(self.stats.read_requests - before);
        }
        match plan_access(runs, policy) {
            AccessPlan::Direct(coalesced) => {
                let bytes = total_bytes(&coalesced);
                let start = out.len();
                out.resize(start + bytes as usize, 0);
                let mut cursor = start;
                for run in &coalesced {
                    let buf = &mut out[cursor..cursor + run.len as usize];
                    self.backend.read_at(file.0, run.offset, buf)?;
                    cursor += run.len as usize;
                }
                let requests = coalesced.len() as u64;
                self.stats.add_read(requests, bytes);
                charge.io_read(requests, bytes);
                Ok(requests)
            }
            AccessPlan::Sieved { span, useful } => {
                let mut span_buf = self.pool.take();
                span_buf.resize(span.len as usize, 0);
                self.backend.read_at(file.0, span.offset, &mut span_buf)?;
                out.extend(sieve_extract(&span, &useful, &span_buf));
                self.pool.put(span_buf);
                self.stats.add_read(1, span.len);
                charge.io_read(1, span.len);
                Ok(1)
            }
        }
    }

    /// Like [`LogicalDisk::write_runs`] but a strided write may be serviced
    /// by sieving: read the spanning extent, scatter the new values into
    /// it, and write the span back (one read + one write request instead of
    /// one write per run).
    pub fn write_runs_with(
        &mut self,
        file: FileId,
        runs: &[ByteRun],
        data: &[u8],
        charge: &dyn IoCharge,
        policy: crate::sieve::SievePolicy,
    ) -> Result<u64> {
        use crate::sieve::{plan_access, sieve_scatter, AccessPlan};
        if self.cache.is_some() {
            return self.write_runs(file, runs, data, charge);
        }
        match plan_access(runs, policy) {
            AccessPlan::Direct(_) => self.write_runs(file, runs, data, charge),
            AccessPlan::Sieved { span, useful } => {
                // The useful runs are coalesced+sorted; reorder `data` from
                // the caller's run order into sorted order first.
                let sorted = sort_write_data(runs, data);
                let mut span_buf = self.pool.take();
                span_buf.resize(span.len as usize, 0);
                self.backend.read_at(file.0, span.offset, &mut span_buf)?;
                let updated = sieve_scatter(&span, &useful, span_buf, &sorted);
                self.backend.write_at(file.0, span.offset, &updated)?;
                self.pool.put(updated);
                self.stats.add_read(1, span.len);
                self.stats.add_write(1, span.len);
                charge.io_read(1, span.len);
                charge.io_write(1, span.len);
                Ok(2)
            }
        }
    }

    /// Write `data` to the byte `runs` of `file` (consumed in run order,
    /// after coalescing; total run length must equal `data.len()`).
    /// Charges one request per coalesced run.
    ///
    /// Write runs must be disjoint — merging overlapping writes would change
    /// the stored bytes.
    pub fn write_runs(
        &mut self,
        file: FileId,
        runs: &[ByteRun],
        data: &[u8],
        charge: &dyn IoCharge,
    ) -> Result<u64> {
        let coalesced = coalesce_runs(runs);
        let bytes = total_bytes(&coalesced);
        debug_assert_eq!(
            bytes,
            total_bytes(runs),
            "overlapping write runs are not allowed"
        );
        assert_eq!(
            bytes as usize,
            data.len(),
            "write data length {} does not match run total {}",
            data.len(),
            bytes
        );
        if self.cache.is_some() {
            // Buffer each coalesced run as a dirty cache segment; the
            // requests are charged at write-back time.
            let sorted = sort_write_data(runs, data);
            let LogicalDisk {
                backend,
                cache,
                stats,
                ..
            } = self;
            let cache = cache.as_mut().expect("cache checked above");
            let before = stats.write_requests;
            let mut cursor = 0usize;
            for run in &coalesced {
                let src = &sorted[cursor..cursor + run.len as usize];
                cache.write(file.0, *run, Some(src), Some(&mut **backend), charge, stats)?;
                cursor += run.len as usize;
            }
            return Ok(self.stats.write_requests - before);
        }
        // The coalesced runs are sorted by offset, but `data` is laid out in
        // the *original* run order; build the mapping original -> data.
        let mut sorted_idx: Vec<usize> = (0..runs.len()).filter(|&i| runs[i].len > 0).collect();
        sorted_idx.sort_by_key(|&i| runs[i].offset);
        let mut data_offsets = vec![0usize; runs.len()];
        let mut acc = 0usize;
        for (i, run) in runs.iter().enumerate() {
            data_offsets[i] = acc;
            acc += run.len as usize;
        }
        for &i in &sorted_idx {
            let run = runs[i];
            let src = &data[data_offsets[i]..data_offsets[i] + run.len as usize];
            self.backend.write_at(file.0, run.offset, src)?;
        }
        let requests = coalesced.len() as u64;
        self.stats.add_write(requests, bytes);
        charge.io_write(requests, bytes);
        Ok(requests)
    }

    /// Convenience: read one contiguous extent.
    pub fn read_extent(
        &mut self,
        file: FileId,
        offset: u64,
        len: u64,
        charge: &dyn IoCharge,
    ) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        self.read_runs(file, &[ByteRun::new(offset, len)], &mut out, charge)?;
        Ok(out)
    }

    /// Convenience: write one contiguous extent.
    pub fn write_extent(
        &mut self,
        file: FileId,
        offset: u64,
        data: &[u8],
        charge: &dyn IoCharge,
    ) -> Result<()> {
        self.write_runs(
            file,
            &[ByteRun::new(offset, data.len() as u64)],
            data,
            charge,
        )?;
        Ok(())
    }
}

/// Reorder write payload bytes from the caller's run order into
/// offset-sorted run order (what the coalesced/sieved paths consume).
fn sort_write_data(runs: &[ByteRun], data: &[u8]) -> Vec<u8> {
    let mut data_offsets = Vec::with_capacity(runs.len());
    let mut acc = 0usize;
    for run in runs {
        data_offsets.push(acc);
        acc += run.len as usize;
    }
    debug_assert_eq!(acc, data.len());
    let mut idx: Vec<usize> = (0..runs.len()).filter(|&i| runs[i].len > 0).collect();
    idx.sort_by_key(|&i| runs[i].offset);
    let mut out = Vec::with_capacity(data.len());
    for i in idx {
        let s = data_offsets[i];
        out.extend_from_slice(&data[s..s + runs[i].len as usize]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NoCharge;

    #[test]
    fn create_read_write_roundtrip() {
        let mut d = LogicalDisk::in_memory();
        let f = d.create_file(64).unwrap();
        d.write_extent(f, 8, &[1, 2, 3, 4], &NoCharge).unwrap();
        let got = d.read_extent(f, 6, 8, &NoCharge).unwrap();
        assert_eq!(got, vec![0, 0, 1, 2, 3, 4, 0, 0]);
        assert_eq!(d.file_len(f).unwrap(), 64);
    }

    #[test]
    fn request_counting_respects_coalescing() {
        let mut d = LogicalDisk::in_memory();
        let f = d.create_file(100).unwrap();
        let runs = [
            ByteRun::new(0, 10),
            ByteRun::new(10, 10),
            ByteRun::new(50, 10),
        ];
        let mut out = Vec::new();
        let reqs = d.read_runs(f, &runs, &mut out, &NoCharge).unwrap();
        assert_eq!(reqs, 2, "adjacent runs coalesce into one request");
        assert_eq!(out.len(), 30);
        assert_eq!(d.stats().read_requests, 2);
        assert_eq!(d.stats().bytes_read, 30);
    }

    #[test]
    fn strided_write_lands_in_right_places() {
        let mut d = LogicalDisk::in_memory();
        let f = d.create_file(16).unwrap();
        // Write [1,2] at offset 12 and [3,4] at offset 2, in that run order.
        let runs = [ByteRun::new(12, 2), ByteRun::new(2, 2)];
        d.write_runs(f, &runs, &[1, 2, 3, 4], &NoCharge).unwrap();
        let all = d.read_extent(f, 0, 16, &NoCharge).unwrap();
        assert_eq!(all[12..14], [1, 2]);
        assert_eq!(all[2..4], [3, 4]);
        assert_eq!(d.stats().write_requests, 2);
    }

    #[test]
    fn file_ids_are_unique() {
        let mut d = LogicalDisk::in_memory();
        let a = d.create_file(8).unwrap();
        let b = d.create_file(8).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn remove_file_frees_id_space_use() {
        let mut d = LogicalDisk::in_memory();
        let a = d.create_file(8).unwrap();
        d.remove_file(a).unwrap();
        assert!(d.file_len(a).is_err());
    }

    #[test]
    fn charges_flow_to_sink() {
        use std::cell::Cell;
        #[derive(Default)]
        struct Counting {
            reads: Cell<(u64, u64)>,
            writes: Cell<(u64, u64)>,
        }
        impl IoCharge for Counting {
            fn io_read(&self, r: u64, b: u64) {
                let (cr, cb) = self.reads.get();
                self.reads.set((cr + r, cb + b));
            }
            fn io_write(&self, r: u64, b: u64) {
                let (cr, cb) = self.writes.get();
                self.writes.set((cr + r, cb + b));
            }
        }
        let sink = Counting::default();
        let mut d = LogicalDisk::in_memory();
        let f = d.create_file(100).unwrap();
        d.write_extent(f, 0, &[9; 10], &sink).unwrap();
        let _ = d.read_extent(f, 0, 20, &sink).unwrap();
        assert_eq!(sink.writes.get(), (1, 10));
        assert_eq!(sink.reads.get(), (1, 20));
    }
}
