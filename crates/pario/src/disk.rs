//! Logical disks.
//!
//! Each simulated processor owns one [`LogicalDisk`] — the paper's
//! abstraction of "another level of memory which is much slower than the
//! main memory" (§2.3). The mapping from logical to physical disks is
//! declared system-dependent by the paper; here the *timing* effect of
//! sharing physical disks is carried by the cost model's
//! `shared_disks`/aggregate-bandwidth parameters, while each logical disk
//! stores its own bytes.

use dmsim::{FaultConfig, FaultDomain, FaultInjector, IoFate};

use crate::backend::{MemBackend, StorageBackend};
use crate::cache::{BufferPool, SlabCache};
use crate::error::{FaultOp, IoError, Result};
use crate::request::{coalesce_runs, total_bytes, ByteRun};
use crate::stats::DiskStats;
use crate::IoCharge;

/// Identifier of a file on a particular logical disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u64);

/// A processor-private disk holding local array files.
pub struct LogicalDisk {
    backend: Box<dyn StorageBackend>,
    next_id: u64,
    stats: DiskStats,
    cache: Option<SlabCache>,
    pool: BufferPool,
    faults: Option<FaultInjector>,
}

/// One backend read, routed through the fault layer when present.
///
/// Transient faults re-issue the read after an exponential backoff, bounded
/// by the retry policy; the final attempt always succeeds, so only *hard*
/// faults (drawn separately) surface — as [`IoError::PermanentFault`].
/// Recovery work accumulates in the injector and is drained into the clock
/// by [`LogicalDisk`] after each public operation.
pub(crate) fn backend_read(
    backend: &mut dyn StorageBackend,
    faults: Option<&FaultInjector>,
    file: u64,
    offset: u64,
    buf: &mut [u8],
) -> Result<()> {
    let Some(fi) = faults else {
        return backend.read_at(file, offset, buf);
    };
    if fi.dead() {
        return Err(IoError::DiskDown { file });
    }
    if fi.hard_read() {
        fi.note_fault();
        return Err(IoError::PermanentFault {
            file,
            offset,
            op: FaultOp::Read,
        });
    }
    let max = fi.retry().max_attempts.max(1);
    let mut attempt = 1u32;
    loop {
        match fi.read_attempt() {
            IoFate::Ok | IoFate::Torn => break,
            IoFate::Delayed(secs) => {
                fi.note_fault();
                fi.note_wait(secs);
                break;
            }
            IoFate::Transient => {
                if attempt >= max {
                    break; // bounded: the last attempt always succeeds
                }
                fi.note_fault();
                fi.note_read_retry(buf.len() as u64, fi.retry().backoff(attempt));
                attempt += 1;
            }
        }
    }
    backend.read_at(file, offset, buf)
}

/// One backend write, routed through the fault layer when present.
///
/// A torn write deposits a prefix of the payload before failing; the retry
/// re-writes the full extent, so the positional write stays idempotent and
/// the final contents are always the intended bytes.
pub(crate) fn backend_write(
    backend: &mut dyn StorageBackend,
    faults: Option<&FaultInjector>,
    file: u64,
    offset: u64,
    data: &[u8],
) -> Result<()> {
    let Some(fi) = faults else {
        return backend.write_at(file, offset, data);
    };
    if fi.dead() {
        return Err(IoError::DiskDown { file });
    }
    if fi.hard_write() {
        fi.note_fault();
        return Err(IoError::PermanentFault {
            file,
            offset,
            op: FaultOp::Write,
        });
    }
    let max = fi.retry().max_attempts.max(1);
    let mut attempt = 1u32;
    loop {
        let fate = fi.write_attempt();
        match fate {
            IoFate::Ok => break,
            IoFate::Delayed(secs) => {
                fi.note_fault();
                fi.note_wait(secs);
                break;
            }
            IoFate::Transient | IoFate::Torn => {
                if attempt >= max {
                    break;
                }
                if fate == IoFate::Torn && !data.is_empty() {
                    // Half the payload reaches the platter before the fault.
                    backend.write_at(file, offset, &data[..data.len() / 2])?;
                }
                fi.note_fault();
                fi.note_write_retry(data.len() as u64, fi.retry().backoff(attempt));
                attempt += 1;
            }
        }
    }
    backend.write_at(file, offset, data)
}

impl std::fmt::Debug for LogicalDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogicalDisk")
            .field("next_id", &self.next_id)
            .field("stats", &self.stats)
            .field("cache", &self.cache)
            .finish()
    }
}

impl LogicalDisk {
    /// A disk backed by memory.
    pub fn in_memory() -> Self {
        Self::with_backend(Box::new(MemBackend::new()))
    }

    /// A disk backed by real files in a scratch directory; `label`
    /// distinguishes directories (typically the processor rank).
    pub fn on_disk(label: &str) -> Result<Self> {
        Ok(Self::with_backend(Box::new(
            crate::backend::DiskBackend::new(label)?,
        )))
    }

    /// A disk over an explicit backend.
    pub fn with_backend(backend: Box<dyn StorageBackend>) -> Self {
        LogicalDisk {
            backend,
            next_id: 0,
            stats: DiskStats::default(),
            cache: None,
            pool: BufferPool::new(),
            faults: None,
        }
    }

    /// Enable deterministic fault injection on this disk: requests draw
    /// their fate from a per-`rank` stream derived from `cfg.seed`. With a
    /// quiet config (or no injector at all) the request path is bit-identical
    /// to the fault-free build.
    pub fn enable_faults(&mut self, cfg: &FaultConfig, rank: usize) {
        self.enable_faults_for_job(cfg, 0, rank);
    }

    /// Like [`LogicalDisk::enable_faults`] but for rank `rank` of workload
    /// job `job`: the fate stream is derived from the (job, rank) pair so
    /// concurrent jobs cannot perturb each other's chaos results. Job 0
    /// reproduces the legacy per-rank streams bit-for-bit.
    pub fn enable_faults_for_job(&mut self, cfg: &FaultConfig, job: u32, rank: usize) {
        self.faults = Some(FaultInjector::for_job(cfg, job, rank, FaultDomain::Disk));
    }

    /// The active fault injector, if any.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.faults.as_ref()
    }

    /// True when enough faults accumulated to mark this disk degraded;
    /// planners should re-plan slab sizes against reduced bandwidth.
    pub fn is_degraded(&self) -> bool {
        self.faults.as_ref().is_some_and(|f| f.degraded())
    }

    /// True when the disk's permanent-failure budget
    /// ([`FaultConfig::fail_after`]) is exhausted: every subsequent access
    /// returns [`IoError::DiskDown`] until the workload re-plans the job
    /// onto surviving disks.
    pub fn is_dead(&self) -> bool {
        self.faults.as_ref().is_some_and(|f| f.dead())
    }

    /// Drain recovery charges accumulated by the fault layer into `charge`.
    fn settle_faults(&self, charge: &dyn IoCharge) {
        if let Some(fi) = &self.faults {
            let c = fi.take_charges();
            if !c.is_zero() {
                charge.io_faults(&c);
            }
        }
    }

    /// Put a slab cache with the given byte budget in front of the backend.
    /// Subsequent run reads/writes go through the cache: covered reads cost
    /// nothing, writes are buffered until eviction or
    /// [`LogicalDisk::flush_cache`]. Replaces any previous cache (flush
    /// first if it may hold dirty data).
    pub fn enable_cache(&mut self, budget: usize) {
        self.cache = Some(SlabCache::new(budget));
    }

    /// True when a slab cache is active.
    pub fn cache_enabled(&self) -> bool {
        self.cache.is_some()
    }

    /// Remember that `file` stores array `name`, so deferred cache
    /// write-backs keep array identity. No-op without a cache.
    pub fn note_array(&mut self, file: FileId, name: &str) {
        if let Some(c) = self.cache.as_mut() {
            c.note_array(file.0, name);
        }
    }

    /// Write back all dirty cached segments, charging each write-back to
    /// `charge`. No-op without a cache.
    pub fn flush_cache(&mut self, charge: &dyn IoCharge) -> Result<()> {
        let LogicalDisk {
            backend,
            cache,
            stats,
            faults,
            ..
        } = self;
        if let Some(c) = cache.as_mut() {
            c.flush(Some(&mut **backend), faults.as_ref(), charge, stats)?;
        }
        self.settle_faults(charge);
        if let Some(c) = self.cache.as_ref() {
            charge.io_cache_level(c.used(), c.dirty_bytes());
        }
        Ok(())
    }

    /// Allocate a new zero-filled file of `len` bytes.
    pub fn create_file(&mut self, len: u64) -> Result<FileId> {
        let id = self.next_id;
        self.next_id += 1;
        self.backend.create(id, len)?;
        Ok(FileId(id))
    }

    /// Length of `file` in bytes.
    pub fn file_len(&self, file: FileId) -> Result<u64> {
        self.backend.len(file.0)
    }

    /// Delete `file`. Cached segments of the file are dropped without
    /// write-back.
    pub fn remove_file(&mut self, file: FileId) -> Result<()> {
        if let Some(c) = self.cache.as_mut() {
            c.invalidate_file(file.0);
        }
        self.backend.remove(file.0)
    }

    /// Cumulative I/O counters for this disk.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// Take a cleared staging buffer from the disk's pool (return it with
    /// [`LogicalDisk::put_buf`] so the capacity is recycled).
    pub fn take_buf(&mut self) -> Vec<u8> {
        self.pool.take()
    }

    /// Return a staging buffer to the pool.
    pub fn put_buf(&mut self, buf: Vec<u8>) {
        self.pool.put(buf)
    }

    /// Read the byte `runs` of `file` into `out` (appended in run order,
    /// after coalescing). Charges one request per coalesced run.
    ///
    /// Returns the number of requests issued.
    pub fn read_runs(
        &mut self,
        file: FileId,
        runs: &[ByteRun],
        out: &mut Vec<u8>,
        charge: &dyn IoCharge,
    ) -> Result<u64> {
        self.read_runs_with(file, runs, out, charge, crate::sieve::SievePolicy::Direct)
    }

    /// Like [`LogicalDisk::read_runs`] but the access may be serviced by
    /// data sieving according to `policy`: one spanning request whose
    /// unwanted bytes are discarded in memory. The charged request/byte
    /// counts reflect what actually moved.
    pub fn read_runs_with(
        &mut self,
        file: FileId,
        runs: &[ByteRun],
        out: &mut Vec<u8>,
        charge: &dyn IoCharge,
        policy: crate::sieve::SievePolicy,
    ) -> Result<u64> {
        use crate::sieve::{plan_access, sieve_extract, AccessPlan};
        // With a slab cache the sieve is bypassed: the cache's miss handling
        // already issues one spanning request per uncovered gap, which
        // subsumes data sieving while also capturing reuse.
        if self.cache.is_some() {
            let coalesced = coalesce_runs(runs);
            let bytes = total_bytes(&coalesced);
            let start = out.len();
            out.resize(start + bytes as usize, 0);
            let LogicalDisk {
                backend,
                cache,
                stats,
                faults,
                ..
            } = self;
            let cache = cache.as_mut().expect("cache checked above");
            let before = stats.read_requests;
            let mut cursor = start;
            for run in &coalesced {
                charge.io_offset(run.offset);
                let buf = &mut out[cursor..cursor + run.len as usize];
                cache.read(
                    file.0,
                    *run,
                    Some(buf),
                    Some(&mut **backend),
                    faults.as_ref(),
                    charge,
                    stats,
                )?;
                cursor += run.len as usize;
            }
            self.settle_faults(charge);
            let c = self.cache.as_ref().expect("cache checked above");
            charge.io_cache_level(c.used(), c.dirty_bytes());
            return Ok(self.stats.read_requests - before);
        }
        match plan_access(runs, policy) {
            AccessPlan::Direct(coalesced) => {
                let bytes = total_bytes(&coalesced);
                let start = out.len();
                out.resize(start + bytes as usize, 0);
                let mut cursor = start;
                for run in &coalesced {
                    let buf = &mut out[cursor..cursor + run.len as usize];
                    backend_read(
                        &mut *self.backend,
                        self.faults.as_ref(),
                        file.0,
                        run.offset,
                        buf,
                    )?;
                    cursor += run.len as usize;
                }
                let requests = coalesced.len() as u64;
                self.stats.add_read(requests, bytes);
                if let Some(first) = coalesced.first() {
                    charge.io_offset(first.offset);
                }
                charge.io_read(requests, bytes);
                self.settle_faults(charge);
                charge.io_wait();
                Ok(requests)
            }
            AccessPlan::Sieved { span, useful } => {
                let mut span_buf = self.pool.take();
                span_buf.resize(span.len as usize, 0);
                backend_read(
                    &mut *self.backend,
                    self.faults.as_ref(),
                    file.0,
                    span.offset,
                    &mut span_buf,
                )?;
                out.extend(sieve_extract(&span, &useful, &span_buf));
                self.pool.put(span_buf);
                self.stats.add_read(1, span.len);
                charge.io_offset(span.offset);
                charge.io_read(1, span.len);
                charge.io_sieve(span.len, total_bytes(&useful));
                self.settle_faults(charge);
                charge.io_wait();
                Ok(1)
            }
        }
    }

    /// Like [`LogicalDisk::write_runs`] but a strided write may be serviced
    /// by sieving: read the spanning extent, scatter the new values into
    /// it, and write the span back (one read + one write request instead of
    /// one write per run).
    pub fn write_runs_with(
        &mut self,
        file: FileId,
        runs: &[ByteRun],
        data: &[u8],
        charge: &dyn IoCharge,
        policy: crate::sieve::SievePolicy,
    ) -> Result<u64> {
        use crate::sieve::{plan_access, sieve_scatter, AccessPlan};
        if self.cache.is_some() {
            return self.write_runs(file, runs, data, charge);
        }
        match plan_access(runs, policy) {
            AccessPlan::Direct(_) => self.write_runs(file, runs, data, charge),
            AccessPlan::Sieved { span, useful } => {
                // The useful runs are coalesced+sorted; reorder `data` from
                // the caller's run order into sorted order first.
                let sorted = sort_write_data(runs, data);
                let mut span_buf = self.pool.take();
                span_buf.resize(span.len as usize, 0);
                backend_read(
                    &mut *self.backend,
                    self.faults.as_ref(),
                    file.0,
                    span.offset,
                    &mut span_buf,
                )?;
                let updated = sieve_scatter(&span, &useful, span_buf, &sorted);
                backend_write(
                    &mut *self.backend,
                    self.faults.as_ref(),
                    file.0,
                    span.offset,
                    &updated,
                )?;
                self.pool.put(updated);
                self.stats.add_read(1, span.len);
                self.stats.add_write(1, span.len);
                charge.io_offset(span.offset);
                charge.io_read(1, span.len);
                charge.io_offset(span.offset);
                charge.io_write(1, span.len);
                charge.io_sieve(span.len, total_bytes(&useful));
                self.settle_faults(charge);
                charge.io_wait();
                Ok(2)
            }
        }
    }

    /// Write `data` to the byte `runs` of `file` (consumed in run order,
    /// after coalescing; total run length must equal `data.len()`).
    /// Charges one request per coalesced run.
    ///
    /// Write runs must be disjoint — merging overlapping writes would change
    /// the stored bytes.
    pub fn write_runs(
        &mut self,
        file: FileId,
        runs: &[ByteRun],
        data: &[u8],
        charge: &dyn IoCharge,
    ) -> Result<u64> {
        let coalesced = coalesce_runs(runs);
        let bytes = total_bytes(&coalesced);
        debug_assert_eq!(
            bytes,
            total_bytes(runs),
            "overlapping write runs are not allowed"
        );
        assert_eq!(
            bytes as usize,
            data.len(),
            "write data length {} does not match run total {}",
            data.len(),
            bytes
        );
        if self.cache.is_some() {
            // Buffer each coalesced run as a dirty cache segment; the
            // requests are charged at write-back time.
            let sorted = sort_write_data(runs, data);
            let LogicalDisk {
                backend,
                cache,
                stats,
                faults,
                ..
            } = self;
            let cache = cache.as_mut().expect("cache checked above");
            let before = stats.write_requests;
            let mut cursor = 0usize;
            for run in &coalesced {
                charge.io_offset(run.offset);
                let src = &sorted[cursor..cursor + run.len as usize];
                cache.write(
                    file.0,
                    *run,
                    Some(src),
                    Some(&mut **backend),
                    faults.as_ref(),
                    charge,
                    stats,
                )?;
                cursor += run.len as usize;
            }
            self.settle_faults(charge);
            let c = self.cache.as_ref().expect("cache checked above");
            charge.io_cache_level(c.used(), c.dirty_bytes());
            return Ok(self.stats.write_requests - before);
        }
        // The coalesced runs are sorted by offset, but `data` is laid out in
        // the *original* run order; build the mapping original -> data.
        let mut sorted_idx: Vec<usize> = (0..runs.len()).filter(|&i| runs[i].len > 0).collect();
        sorted_idx.sort_by_key(|&i| runs[i].offset);
        let mut data_offsets = vec![0usize; runs.len()];
        let mut acc = 0usize;
        for (i, run) in runs.iter().enumerate() {
            data_offsets[i] = acc;
            acc += run.len as usize;
        }
        for &i in &sorted_idx {
            let run = runs[i];
            let src = &data[data_offsets[i]..data_offsets[i] + run.len as usize];
            backend_write(
                &mut *self.backend,
                self.faults.as_ref(),
                file.0,
                run.offset,
                src,
            )?;
        }
        let requests = coalesced.len() as u64;
        self.stats.add_write(requests, bytes);
        if let Some(first) = coalesced.first() {
            charge.io_offset(first.offset);
        }
        charge.io_write(requests, bytes);
        self.settle_faults(charge);
        charge.io_wait();
        Ok(requests)
    }

    /// Convenience: read one contiguous extent.
    pub fn read_extent(
        &mut self,
        file: FileId,
        offset: u64,
        len: u64,
        charge: &dyn IoCharge,
    ) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        self.read_runs(file, &[ByteRun::new(offset, len)], &mut out, charge)?;
        Ok(out)
    }

    /// Convenience: write one contiguous extent.
    pub fn write_extent(
        &mut self,
        file: FileId,
        offset: u64,
        data: &[u8],
        charge: &dyn IoCharge,
    ) -> Result<()> {
        self.write_runs(
            file,
            &[ByteRun::new(offset, data.len() as u64)],
            data,
            charge,
        )?;
        Ok(())
    }
}

/// Reorder write payload bytes from the caller's run order into
/// offset-sorted run order (what the coalesced/sieved paths consume).
fn sort_write_data(runs: &[ByteRun], data: &[u8]) -> Vec<u8> {
    let mut data_offsets = Vec::with_capacity(runs.len());
    let mut acc = 0usize;
    for run in runs {
        data_offsets.push(acc);
        acc += run.len as usize;
    }
    debug_assert_eq!(acc, data.len());
    let mut idx: Vec<usize> = (0..runs.len()).filter(|&i| runs[i].len > 0).collect();
    idx.sort_by_key(|&i| runs[i].offset);
    let mut out = Vec::with_capacity(data.len());
    for i in idx {
        let s = data_offsets[i];
        out.extend_from_slice(&data[s..s + runs[i].len as usize]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NoCharge;

    #[test]
    fn create_read_write_roundtrip() {
        let mut d = LogicalDisk::in_memory();
        let f = d.create_file(64).unwrap();
        d.write_extent(f, 8, &[1, 2, 3, 4], &NoCharge).unwrap();
        let got = d.read_extent(f, 6, 8, &NoCharge).unwrap();
        assert_eq!(got, vec![0, 0, 1, 2, 3, 4, 0, 0]);
        assert_eq!(d.file_len(f).unwrap(), 64);
    }

    #[test]
    fn request_counting_respects_coalescing() {
        let mut d = LogicalDisk::in_memory();
        let f = d.create_file(100).unwrap();
        let runs = [
            ByteRun::new(0, 10),
            ByteRun::new(10, 10),
            ByteRun::new(50, 10),
        ];
        let mut out = Vec::new();
        let reqs = d.read_runs(f, &runs, &mut out, &NoCharge).unwrap();
        assert_eq!(reqs, 2, "adjacent runs coalesce into one request");
        assert_eq!(out.len(), 30);
        assert_eq!(d.stats().read_requests, 2);
        assert_eq!(d.stats().bytes_read, 30);
    }

    #[test]
    fn strided_write_lands_in_right_places() {
        let mut d = LogicalDisk::in_memory();
        let f = d.create_file(16).unwrap();
        // Write [1,2] at offset 12 and [3,4] at offset 2, in that run order.
        let runs = [ByteRun::new(12, 2), ByteRun::new(2, 2)];
        d.write_runs(f, &runs, &[1, 2, 3, 4], &NoCharge).unwrap();
        let all = d.read_extent(f, 0, 16, &NoCharge).unwrap();
        assert_eq!(all[12..14], [1, 2]);
        assert_eq!(all[2..4], [3, 4]);
        assert_eq!(d.stats().write_requests, 2);
    }

    #[test]
    fn file_ids_are_unique() {
        let mut d = LogicalDisk::in_memory();
        let a = d.create_file(8).unwrap();
        let b = d.create_file(8).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn remove_file_frees_id_space_use() {
        let mut d = LogicalDisk::in_memory();
        let a = d.create_file(8).unwrap();
        d.remove_file(a).unwrap();
        assert!(d.file_len(a).is_err());
    }

    #[test]
    fn charges_flow_to_sink() {
        use std::cell::Cell;
        #[derive(Default)]
        struct Counting {
            reads: Cell<(u64, u64)>,
            writes: Cell<(u64, u64)>,
        }
        impl IoCharge for Counting {
            fn io_read(&self, r: u64, b: u64) {
                let (cr, cb) = self.reads.get();
                self.reads.set((cr + r, cb + b));
            }
            fn io_write(&self, r: u64, b: u64) {
                let (cr, cb) = self.writes.get();
                self.writes.set((cr + r, cb + b));
            }
        }
        let sink = Counting::default();
        let mut d = LogicalDisk::in_memory();
        let f = d.create_file(100).unwrap();
        d.write_extent(f, 0, &[9; 10], &sink).unwrap();
        let _ = d.read_extent(f, 0, 20, &sink).unwrap();
        assert_eq!(sink.writes.get(), (1, 10));
        assert_eq!(sink.reads.get(), (1, 20));
    }

    /// Sink that records fault charges alongside logical charges.
    #[derive(Default)]
    struct FaultSink {
        logical: std::cell::Cell<(u64, u64)>,
        faults: std::cell::Cell<dmsim::FaultCharges>,
    }
    impl IoCharge for FaultSink {
        fn io_read(&self, r: u64, b: u64) {
            let (cr, cb) = self.logical.get();
            self.logical.set((cr + r, cb + b));
        }
        fn io_write(&self, r: u64, b: u64) {
            let (cr, cb) = self.logical.get();
            self.logical.set((cr + r, cb + b));
        }
        fn io_faults(&self, charges: &dmsim::FaultCharges) {
            let mut c = self.faults.get();
            c.faults += charges.faults;
            c.read_retries += charges.read_retries;
            c.read_retry_bytes += charges.read_retry_bytes;
            c.write_retries += charges.write_retries;
            c.write_retry_bytes += charges.write_retry_bytes;
            c.wait_secs += charges.wait_secs;
            self.faults.set(c);
        }
    }

    #[test]
    fn transient_faults_leave_data_and_logical_counts_intact() {
        let chaos = FaultConfig::chaos(7);
        let sink = FaultSink::default();
        let mut d = LogicalDisk::in_memory();
        d.enable_faults(&chaos, 0);
        let f = d.create_file(4096).unwrap();
        let pattern: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        for chunk in 0..16u64 {
            d.write_extent(
                f,
                chunk * 256,
                &pattern[(chunk * 256) as usize..][..256],
                &sink,
            )
            .unwrap();
        }
        let got = d.read_extent(f, 0, 4096, &sink).unwrap();
        assert_eq!(got, pattern, "faults never change the stored bytes");
        // Logical counts match a fault-free disk doing the same accesses.
        let clean_sink = FaultSink::default();
        let mut clean = LogicalDisk::in_memory();
        let cf = clean.create_file(4096).unwrap();
        for chunk in 0..16u64 {
            clean
                .write_extent(
                    cf,
                    chunk * 256,
                    &pattern[(chunk * 256) as usize..][..256],
                    &clean_sink,
                )
                .unwrap();
        }
        let _ = clean.read_extent(cf, 0, 4096, &clean_sink).unwrap();
        assert_eq!(
            d.stats(),
            clean.stats(),
            "logical I/O metrics are fault-blind"
        );
        assert_eq!(sink.logical.get(), clean_sink.logical.get());
        // With a 5% read / 4% write error rate over 17 accesses, this seed
        // injects at least one fault; the recovery cost lands in io_faults.
        let fc = sink.faults.get();
        assert!(
            fc.faults > 0,
            "chaos(7) should inject at least one fault here"
        );
        assert!(clean_sink.faults.get().is_zero());
    }

    #[test]
    fn quiet_faults_draw_nothing_and_charge_nothing() {
        let quiet = FaultConfig::quiet(99);
        let sink = FaultSink::default();
        let mut d = LogicalDisk::in_memory();
        d.enable_faults(&quiet, 3);
        let f = d.create_file(128).unwrap();
        d.write_extent(f, 0, &[5u8; 128], &sink).unwrap();
        let _ = d.read_extent(f, 0, 128, &sink).unwrap();
        assert!(sink.faults.get().is_zero());
        assert_eq!(d.fault_injector().unwrap().faults_seen(), 0);
    }

    #[test]
    fn hard_faults_surface_as_permanent_errors() {
        let cfg = FaultConfig {
            hard_read: 1.0,
            ..FaultConfig::quiet(1)
        };
        let mut d = LogicalDisk::in_memory();
        d.enable_faults(&cfg, 0);
        let f = d.create_file(64).unwrap();
        let err = d.read_extent(f, 0, 8, &NoCharge).unwrap_err();
        assert!(
            matches!(
                err,
                IoError::PermanentFault {
                    op: FaultOp::Read,
                    ..
                }
            ),
            "{err}"
        );
        // Quiescing hard faults (checkpoint/restart recovery) lets the same
        // request succeed.
        d.fault_injector().unwrap().quiesce_hard();
        assert!(d.read_extent(f, 0, 8, &NoCharge).is_ok());
    }

    #[test]
    fn disk_dies_permanently_after_its_fault_budget() {
        // Every attempt is transient-faulted, and the second injected fault
        // kills the disk for good.
        let cfg = FaultConfig {
            read_error: 1.0,
            fail_after: 2,
            ..FaultConfig::quiet(3)
        };
        let mut d = LogicalDisk::in_memory();
        d.enable_faults(&cfg, 0);
        let f = d.create_file(64).unwrap();
        assert!(!d.is_dead());
        // First access injects retries until the budget trips.
        let r = d.read_extent(f, 0, 8, &NoCharge);
        let died_immediately = r.is_err();
        let mut hits = 0;
        while !d.is_dead() && hits < 16 {
            let _ = d.read_extent(f, 0, 8, &NoCharge);
            hits += 1;
        }
        assert!(d.is_dead(), "fault budget of 2 must trip the death gate");
        let err = d.read_extent(f, 0, 8, &NoCharge).unwrap_err();
        assert!(matches!(err, IoError::DiskDown { .. }), "{err}");
        let werr = d.write_extent(f, 0, &[1; 4], &NoCharge).unwrap_err();
        assert!(matches!(werr, IoError::DiskDown { .. }), "{werr}");
        // Unlike hard faults, quiescing does not resurrect a dead disk.
        d.fault_injector().unwrap().quiesce_hard();
        assert!(d.read_extent(f, 0, 8, &NoCharge).is_err());
        let _ = died_immediately;
    }

    #[test]
    fn torn_writes_end_with_the_full_payload_on_disk() {
        let cfg = FaultConfig {
            seed: 11,
            torn_write: 1.0,
            ..FaultConfig::default()
        };
        let mut d = LogicalDisk::in_memory();
        d.enable_faults(&cfg, 0);
        let f = d.create_file(64).unwrap();
        let sink = FaultSink::default();
        d.write_extent(f, 0, &[0xAB; 32], &sink).unwrap();
        let got = d.read_extent(f, 0, 32, &sink).unwrap();
        assert_eq!(got, vec![0xAB; 32], "torn write is repaired by the retry");
        assert!(sink.faults.get().write_retries > 0);
    }
}
