//! Byte runs and request coalescing.
//!
//! A [`ByteRun`] is one contiguous extent of a file. Array-section accesses
//! produce lists of runs (one per contiguous piece of the section in the
//! file's linearization); [`coalesce_runs`] merges touching runs so the
//! request count charged to the cost model reflects what a real strided-I/O
//! runtime would issue.

use serde::{Deserialize, Serialize};

/// One contiguous byte extent of a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ByteRun {
    /// First byte of the run.
    pub offset: u64,
    /// Length in bytes; zero-length runs are dropped by coalescing.
    pub len: u64,
}

impl ByteRun {
    /// Construct a run.
    pub fn new(offset: u64, len: u64) -> Self {
        ByteRun { offset, len }
    }

    /// One past the last byte of the run.
    pub fn end(&self) -> u64 {
        self.offset + self.len
    }
}

/// Sort runs by offset and merge runs that touch or overlap.
///
/// The result is the minimal set of contiguous requests covering the same
/// bytes — the number the cost model counts as "I/O requests". Overlapping
/// runs are merged (reads may legitimately overlap; writers of overlapping
/// runs get last-writer-wins semantics *before* coalescing, so callers must
/// not pass overlapping write runs — debug builds assert this).
pub fn coalesce_runs(runs: &[ByteRun]) -> Vec<ByteRun> {
    let mut sorted: Vec<ByteRun> = runs.iter().copied().filter(|r| r.len > 0).collect();
    sorted.sort_by_key(|r| r.offset);
    let mut out: Vec<ByteRun> = Vec::with_capacity(sorted.len());
    for run in sorted {
        match out.last_mut() {
            Some(last) if run.offset <= last.end() => {
                let new_end = last.end().max(run.end());
                last.len = new_end - last.offset;
            }
            _ => out.push(run),
        }
    }
    out
}

/// Total bytes covered by a set of runs (before coalescing; duplicates count
/// once per run, matching the "data moved" metric for repeated fetches).
pub fn total_bytes(runs: &[ByteRun]) -> u64 {
    runs.iter().map(|r| r.len).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesce_merges_adjacent() {
        let runs = [
            ByteRun::new(0, 10),
            ByteRun::new(10, 10),
            ByteRun::new(30, 5),
        ];
        let out = coalesce_runs(&runs);
        assert_eq!(out, vec![ByteRun::new(0, 20), ByteRun::new(30, 5)]);
    }

    #[test]
    fn coalesce_sorts_first() {
        let runs = [ByteRun::new(20, 4), ByteRun::new(0, 4), ByteRun::new(4, 4)];
        let out = coalesce_runs(&runs);
        assert_eq!(out, vec![ByteRun::new(0, 8), ByteRun::new(20, 4)]);
    }

    #[test]
    fn coalesce_merges_overlap() {
        let runs = [ByteRun::new(0, 10), ByteRun::new(5, 10)];
        let out = coalesce_runs(&runs);
        assert_eq!(out, vec![ByteRun::new(0, 15)]);
    }

    #[test]
    fn coalesce_drops_empty_runs() {
        let runs = [ByteRun::new(5, 0), ByteRun::new(1, 2)];
        let out = coalesce_runs(&runs);
        assert_eq!(out, vec![ByteRun::new(1, 2)]);
    }

    #[test]
    fn total_bytes_sums_every_run() {
        let runs = [ByteRun::new(0, 10), ByteRun::new(0, 10)];
        assert_eq!(total_bytes(&runs), 20);
    }

    #[test]
    fn end_is_exclusive() {
        assert_eq!(ByteRun::new(4, 6).end(), 10);
    }
}
