//! Byte runs and request coalescing.
//!
//! A [`ByteRun`] is one contiguous extent of a file. Array-section accesses
//! produce lists of runs (one per contiguous piece of the section in the
//! file's linearization); [`coalesce_runs`] merges touching runs so the
//! request count charged to the cost model reflects what a real strided-I/O
//! runtime would issue.

use serde::{Deserialize, Serialize};

/// One contiguous byte extent of a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ByteRun {
    /// First byte of the run.
    pub offset: u64,
    /// Length in bytes; zero-length runs are dropped by coalescing.
    pub len: u64,
}

impl ByteRun {
    /// Construct a run. Panics when `offset + len` would overflow `u64` —
    /// no file has bytes past `u64::MAX`, so such a run is a caller bug
    /// caught at construction rather than a silent wraparound later.
    pub fn new(offset: u64, len: u64) -> Self {
        Self::try_new(offset, len)
            .unwrap_or_else(|| panic!("ByteRun overflows u64: offset {offset} + len {len}"))
    }

    /// Construct a run, returning `None` when `offset + len` overflows.
    pub fn try_new(offset: u64, len: u64) -> Option<Self> {
        offset.checked_add(len).map(|_| ByteRun { offset, len })
    }

    /// One past the last byte of the run.
    ///
    /// The fields are public, so a struct-literal run can still claim bytes
    /// past `u64::MAX`; `end` saturates there instead of wrapping, which
    /// keeps every comparison in [`coalesce_runs`] ordered correctly.
    pub fn end(&self) -> u64 {
        self.offset.saturating_add(self.len)
    }
}

/// Sort runs by offset and merge runs that touch or overlap.
///
/// The result is the minimal set of contiguous requests covering the same
/// bytes — the number the cost model counts as "I/O requests". Overlapping
/// runs are merged (reads may legitimately overlap; writers of overlapping
/// runs get last-writer-wins semantics *before* coalescing, so callers must
/// not pass overlapping write runs — debug builds assert this).
/// Never panics: runs whose `offset + len` would overflow (only possible via
/// struct-literal construction — [`ByteRun::new`] rejects them) are clamped
/// to the representable extent `[offset, u64::MAX)` before merging.
pub fn coalesce_runs(runs: &[ByteRun]) -> Vec<ByteRun> {
    let mut sorted: Vec<ByteRun> = runs
        .iter()
        .copied()
        .map(|r| ByteRun {
            offset: r.offset,
            len: r.len.min(u64::MAX - r.offset),
        })
        .filter(|r| r.len > 0)
        .collect();
    sorted.sort_by_key(|r| r.offset);
    let mut out: Vec<ByteRun> = Vec::with_capacity(sorted.len());
    for run in sorted {
        match out.last_mut() {
            Some(last) if run.offset <= last.end() => {
                let new_end = last.end().max(run.end());
                last.len = new_end - last.offset;
            }
            _ => out.push(run),
        }
    }
    out
}

/// Total bytes covered by a set of runs (before coalescing; duplicates count
/// once per run, matching the "data moved" metric for repeated fetches).
/// Saturates at `u64::MAX` rather than wrapping on adversarial inputs.
pub fn total_bytes(runs: &[ByteRun]) -> u64 {
    runs.iter().fold(0u64, |acc, r| acc.saturating_add(r.len))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesce_merges_adjacent() {
        let runs = [
            ByteRun::new(0, 10),
            ByteRun::new(10, 10),
            ByteRun::new(30, 5),
        ];
        let out = coalesce_runs(&runs);
        assert_eq!(out, vec![ByteRun::new(0, 20), ByteRun::new(30, 5)]);
    }

    #[test]
    fn coalesce_sorts_first() {
        let runs = [ByteRun::new(20, 4), ByteRun::new(0, 4), ByteRun::new(4, 4)];
        let out = coalesce_runs(&runs);
        assert_eq!(out, vec![ByteRun::new(0, 8), ByteRun::new(20, 4)]);
    }

    #[test]
    fn coalesce_merges_overlap() {
        let runs = [ByteRun::new(0, 10), ByteRun::new(5, 10)];
        let out = coalesce_runs(&runs);
        assert_eq!(out, vec![ByteRun::new(0, 15)]);
    }

    #[test]
    fn coalesce_drops_empty_runs() {
        let runs = [ByteRun::new(5, 0), ByteRun::new(1, 2)];
        let out = coalesce_runs(&runs);
        assert_eq!(out, vec![ByteRun::new(1, 2)]);
    }

    #[test]
    fn total_bytes_sums_every_run() {
        let runs = [ByteRun::new(0, 10), ByteRun::new(0, 10)];
        assert_eq!(total_bytes(&runs), 20);
    }

    #[test]
    fn end_is_exclusive() {
        assert_eq!(ByteRun::new(4, 6).end(), 10);
    }

    #[test]
    #[should_panic(expected = "ByteRun overflows u64")]
    fn construction_rejects_offset_len_overflow() {
        let _ = ByteRun::new(u64::MAX - 5, 100);
    }

    #[test]
    fn try_new_reports_overflow() {
        assert!(ByteRun::try_new(u64::MAX, 1).is_none());
        assert_eq!(
            ByteRun::try_new(u64::MAX - 1, 1),
            Some(ByteRun::new(u64::MAX - 1, 1))
        );
    }

    #[test]
    fn adversarial_literal_runs_never_panic() {
        // Regression: `offset + len` used to wrap, making `end()` tiny and
        // the merge loop underflow. Struct literals bypass `new`'s check,
        // so coalescing must clamp instead of trusting the fields.
        let evil = ByteRun {
            offset: u64::MAX - 5,
            len: 100,
        };
        assert_eq!(evil.end(), u64::MAX);
        let out = coalesce_runs(&[evil, ByteRun::new(0, 8), evil]);
        assert_eq!(out, vec![ByteRun::new(0, 8), ByteRun::new(u64::MAX - 5, 5)]);
        assert_eq!(
            total_bytes(&[
                evil,
                evil,
                ByteRun {
                    offset: 0,
                    len: u64::MAX
                }
            ]),
            u64::MAX
        );
    }
}
