//! Slab reuse cache and write-back buffering.
//!
//! The paper's translation schemes fetch each slab from the local array
//! file every time the loop structure touches it, even when the same slab
//! was read moments before (the column version re-reads all of A for every
//! column of B). [`SlabCache`] keeps recently accessed byte segments of a
//! logical disk in memory under a configurable byte budget, so repeated
//! section reads are served from memory and section writes are buffered
//! as *dirty* segments that reach the disk only on eviction or an explicit
//! [`SlabCache::flush`]. Adjacent dirty segments merge, which collapses
//! the many small column-fragment writes of the transpose executor into a
//! few large write-backs.
//!
//! Two properties make the cache safe to drop into the cost-accounting
//! pipeline:
//!
//! * **Never worse than uncached.** A missing read issues exactly one
//!   spanning request covering the uncovered gap, whose length is at most
//!   the run length; a buffered write is written back at most once. Under a
//!   zero budget every access degenerates to exactly the uncached request
//!   and byte counts.
//! * **Predictable.** The same type runs in *predictor* mode (no backing
//!   store, no payload bytes) inside the compiler's reuse-aware cost
//!   estimator, replaying the executor's access sequence through the
//!   identical replacement logic, so the estimate and the measurement agree
//!   exactly by construction (see `ooc_core::reuse`).
//!
//! [`BufferPool`] is the companion allocation-recycling helper: the hot
//! read path stages bytes in pooled buffers instead of growing a fresh
//! `Vec` per slab.

use std::collections::BTreeMap;

use dmsim::FaultInjector;

use crate::backend::StorageBackend;
use crate::disk::{backend_read, backend_write};
use crate::error::Result;
use crate::request::ByteRun;
use crate::stats::DiskStats;
use crate::IoCharge;

/// One cached byte segment of a file. Segments of a file never overlap.
#[derive(Debug, Clone)]
struct Seg {
    /// Length in bytes.
    len: u64,
    /// True when the segment holds bytes newer than the backing store.
    dirty: bool,
    /// Last-touch tick for LRU replacement.
    tick: u64,
    /// Payload; empty in predictor mode.
    data: Vec<u8>,
}

impl Seg {
    fn end(&self, offset: u64) -> u64 {
        offset + self.len
    }
}

/// Per-file I/O effects of running accesses through the cache. The
/// compiler's reuse-aware estimator reads these to attribute requests and
/// bytes back to individual arrays.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FileIoCounts {
    /// Disk read requests issued on misses.
    pub read_requests: u64,
    /// Bytes fetched from disk on misses.
    pub read_bytes: u64,
    /// Dirty-segment write-backs (eviction + flush).
    pub write_back_requests: u64,
    /// Bytes written back.
    pub write_back_bytes: u64,
    /// Read runs fully served from cache.
    pub cache_hits: u64,
    /// Bytes served from cache on hits.
    pub cache_hit_bytes: u64,
}

/// An LRU cache of byte segments keyed by `(file, byte range)`.
///
/// Reads that are fully covered by cached segments are *hits*: no disk
/// request, no cost-model charge beyond the (free) hit notification.
/// Partially covered reads fetch one spanning request over the uncovered
/// gap. Writes are buffered as dirty segments and charged only when
/// written back. Eviction picks the least-recently-touched segment
/// globally.
pub struct SlabCache {
    budget: u64,
    materialized: bool,
    tick: u64,
    used: u64,
    files: BTreeMap<u64, BTreeMap<u64, Seg>>,
    per_file: BTreeMap<u64, FileIoCounts>,
    /// file -> owning array name, so deferred write-backs (eviction/flush,
    /// possibly far from the dirtying access) keep array identity.
    array_names: BTreeMap<u64, String>,
}

impl std::fmt::Debug for SlabCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlabCache")
            .field("budget", &self.budget)
            .field("materialized", &self.materialized)
            .field("used", &self.used)
            .field("files", &self.files.len())
            .finish()
    }
}

impl SlabCache {
    /// A materialized cache holding real payload bytes, for the runtime.
    pub fn new(budget: usize) -> Self {
        SlabCache {
            budget: budget as u64,
            materialized: true,
            tick: 0,
            used: 0,
            files: BTreeMap::new(),
            per_file: BTreeMap::new(),
            array_names: BTreeMap::new(),
        }
    }

    /// A predictor-mode cache: identical replacement and accounting logic,
    /// but no payload bytes and no backing store. Used by the compiler's
    /// reuse-aware estimator.
    pub fn predictor(budget: usize) -> Self {
        SlabCache {
            materialized: false,
            ..SlabCache::new(budget)
        }
    }

    /// Configured byte budget.
    pub fn budget(&self) -> usize {
        self.budget as usize
    }

    /// Bytes currently cached.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes currently cached that are dirty — buffered writes that have
    /// not yet reached the disk (the trace layer's "outstanding bytes"
    /// counter).
    pub fn dirty_bytes(&self) -> u64 {
        self.files
            .values()
            .flat_map(|segs| segs.values())
            .filter(|s| s.dirty)
            .map(|s| s.len)
            .sum()
    }

    /// Accumulated per-file I/O effects (misses, write-backs, hits).
    pub fn file_counts(&self, file: u64) -> FileIoCounts {
        self.per_file.get(&file).copied().unwrap_or_default()
    }

    /// Remember that `file` stores array `name`, so a later dirty-segment
    /// write-back can re-establish the array identity the charge sink lost
    /// between the dirtying access and the eviction/flush.
    pub fn note_array(&mut self, file: u64, name: &str) {
        match self.array_names.get_mut(&file) {
            Some(n) if n == name => {}
            Some(n) => *n = name.to_string(),
            None => {
                self.array_names.insert(file, name.to_string());
            }
        }
    }

    /// Offsets of segments overlapping `run` in ascending order.
    fn overlapping(&self, file: u64, run: ByteRun) -> Vec<u64> {
        let Some(segs) = self.files.get(&file) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        // The one segment starting at or before the run may spill into it.
        if let Some((&off, seg)) = segs.range(..=run.offset).next_back() {
            if seg.end(off) > run.offset {
                out.push(off);
            }
        }
        for (&off, _) in segs.range(run.offset + 1..run.end()) {
            out.push(off);
        }
        out
    }

    /// Read `run` of `file`. Fully covered runs are hits; otherwise one
    /// spanning request fetches the uncovered gap. `out` (length
    /// `run.len`) receives the assembled bytes in materialized mode.
    #[allow(clippy::too_many_arguments)] // mirrors the backend I/O plumbing
    pub fn read(
        &mut self,
        file: u64,
        run: ByteRun,
        mut out: Option<&mut [u8]>,
        mut backend: Option<&mut dyn StorageBackend>,
        faults: Option<&FaultInjector>,
        charge: &dyn IoCharge,
        stats: &mut DiskStats,
    ) -> Result<()> {
        if run.len == 0 {
            return Ok(());
        }
        if let Some(buf) = out.as_deref() {
            assert_eq!(buf.len() as u64, run.len, "output length must match run");
        }
        self.tick += 1;
        let tick = self.tick;
        let overlaps = self.overlapping(file, run);

        // Find the uncovered span: [first gap byte, last gap byte).
        let mut cursor = run.offset;
        let mut gap_lo: Option<u64> = None;
        let mut gap_hi = run.offset;
        if let Some(segs) = self.files.get(&file) {
            for &off in &overlaps {
                let seg = &segs[&off];
                let s = off.max(run.offset);
                if s > cursor {
                    gap_lo.get_or_insert(cursor);
                    gap_hi = s;
                }
                cursor = cursor.max(seg.end(off).min(run.end()));
            }
        }
        if cursor < run.end() {
            gap_lo.get_or_insert(cursor);
            gap_hi = run.end();
        }

        match gap_lo {
            None => {
                // Hit: every byte is cached.
                charge.io_cache_hit(1, run.len);
                stats.add_cache_hit(1, run.len);
                let counts = self.per_file.entry(file).or_default();
                counts.cache_hits += 1;
                counts.cache_hit_bytes += run.len;
                let segs = self.files.get_mut(&file).expect("covered file");
                for &off in &overlaps {
                    let seg = segs.get_mut(&off).expect("overlap");
                    seg.tick = tick;
                    if let Some(buf) = out.as_deref_mut() {
                        copy_intersection(buf, run, off, &seg.data);
                    }
                }
            }
            Some(lo) => {
                // Miss: one spanning request over the gap, then overlay the
                // cached segments (dirty data is newer than the disk).
                let span = ByteRun::new(lo, gap_hi - lo);
                if self.materialized {
                    let buf = out.as_deref_mut().expect("materialized read needs out");
                    let b = backend
                        .as_deref_mut()
                        .expect("materialized read needs backend");
                    let s = (span.offset - run.offset) as usize;
                    backend_read(
                        b,
                        faults,
                        file,
                        span.offset,
                        &mut buf[s..s + span.len as usize],
                    )?;
                }
                charge.io_read(1, span.len);
                stats.add_read(1, span.len);
                stats.add_cache_miss(1);
                let counts = self.per_file.entry(file).or_default();
                counts.read_requests += 1;
                counts.read_bytes += span.len;

                if let Some(segs) = self.files.get(&file) {
                    if let Some(buf) = out.as_deref_mut() {
                        for &off in &overlaps {
                            copy_intersection(buf, run, off, &segs[&off].data);
                        }
                    }
                }

                // Coverage update: dirty segments stay (they must not lose
                // their unwritten bytes); clean segments are trimmed to
                // their outside-run remainders; the rest of the run becomes
                // fresh clean coverage assembled from `out`.
                let mut dirty_in_run: Vec<(u64, u64)> = Vec::new();
                {
                    let segs = self.files.entry(file).or_default();
                    for &off in &overlaps {
                        let dirty = segs[&off].dirty;
                        if dirty {
                            let seg = segs.get_mut(&off).expect("overlap");
                            seg.tick = tick;
                            dirty_in_run.push((off.max(run.offset), seg.end(off).min(run.end())));
                        } else {
                            let seg = segs.remove(&off).expect("overlap");
                            self.used -= seg.len;
                            for (roff, rseg) in split_outside(off, seg, run, self.materialized) {
                                self.used += rseg.len;
                                segs.insert(roff, rseg);
                            }
                        }
                    }
                    // Insert clean segments for run minus the dirty islands.
                    let mut pos = run.offset;
                    dirty_in_run.sort_unstable();
                    for &(ds, de) in dirty_in_run.iter().chain([(run.end(), run.end())].iter()) {
                        if ds > pos {
                            let data = match out.as_deref() {
                                Some(buf) if self.materialized => {
                                    let a = (pos - run.offset) as usize;
                                    let b = (ds - run.offset) as usize;
                                    buf[a..b].to_vec()
                                }
                                _ => Vec::new(),
                            };
                            segs.insert(
                                pos,
                                Seg {
                                    len: ds - pos,
                                    dirty: false,
                                    tick,
                                    data,
                                },
                            );
                            self.used += ds - pos;
                        }
                        pos = pos.max(de);
                    }
                }
                self.evict_to_budget(&mut backend, faults, charge, stats)?;
            }
        }
        Ok(())
    }

    /// Buffer a write of `run` (payload `data` in materialized mode). No
    /// disk request and no cost-model charge happen now; the bytes reach
    /// the backing store on eviction or [`SlabCache::flush`]. Touching
    /// dirty segments merge, so streams of adjacent writes collapse into
    /// one write-back.
    #[allow(clippy::too_many_arguments)] // mirrors the backend I/O plumbing
    pub fn write(
        &mut self,
        file: u64,
        run: ByteRun,
        data: Option<&[u8]>,
        mut backend: Option<&mut dyn StorageBackend>,
        faults: Option<&FaultInjector>,
        charge: &dyn IoCharge,
        stats: &mut DiskStats,
    ) -> Result<()> {
        if run.len == 0 {
            return Ok(());
        }
        if let Some(d) = data {
            assert_eq!(d.len() as u64, run.len, "write data length must match run");
        }
        self.tick += 1;
        let tick = self.tick;
        {
            let overlaps = self.overlapping(file, run);
            let segs = self.files.entry(file).or_default();
            // Drop the overwritten portions of overlapping segments, keeping
            // the parts outside the run.
            for off in overlaps {
                let seg = segs.remove(&off).expect("overlap");
                self.used -= seg.len;
                for (roff, rseg) in split_outside(off, seg, run, self.materialized) {
                    self.used += rseg.len;
                    segs.insert(roff, rseg);
                }
            }
            let mut new_off = run.offset;
            let mut new_data = match data {
                Some(d) if self.materialized => d.to_vec(),
                _ => Vec::new(),
            };
            let mut new_len = run.len;
            // Merge with a touching dirty segment on the left...
            if let Some((&loff, lseg)) = segs.range(..run.offset).next_back() {
                if lseg.dirty && lseg.end(loff) == run.offset {
                    let lseg = segs.remove(&loff).expect("left");
                    if self.materialized {
                        let mut merged = lseg.data;
                        merged.extend_from_slice(&new_data);
                        new_data = merged;
                    }
                    new_len += lseg.len;
                    new_off = loff;
                }
            }
            // ...and on the right.
            if let Some(rseg) = segs.get(&run.end()) {
                if rseg.dirty {
                    let rseg = segs.remove(&run.end()).expect("right");
                    if self.materialized {
                        new_data.extend_from_slice(&rseg.data);
                    }
                    new_len += rseg.len;
                }
            }
            segs.insert(
                new_off,
                Seg {
                    len: new_len,
                    dirty: true,
                    tick,
                    data: new_data,
                },
            );
            self.used += run.len;
        }
        self.evict_to_budget(&mut backend, faults, charge, stats)
    }

    /// Write back every dirty segment (in `(file, offset)` order, one
    /// request per contiguous segment) and mark it clean. Cached coverage
    /// is kept, so post-flush reads still hit.
    pub fn flush(
        &mut self,
        mut backend: Option<&mut dyn StorageBackend>,
        faults: Option<&FaultInjector>,
        charge: &dyn IoCharge,
        stats: &mut DiskStats,
    ) -> Result<()> {
        let SlabCache {
            files,
            per_file,
            materialized,
            array_names,
            ..
        } = self;
        for (&file, segs) in files.iter_mut() {
            for (&off, seg) in segs.iter_mut() {
                if !seg.dirty {
                    continue;
                }
                if *materialized {
                    let b = backend
                        .as_deref_mut()
                        .expect("materialized flush needs backend");
                    // A failed write-back surfaces with the segment still
                    // dirty and cached, so nothing is lost.
                    backend_write(b, faults, file, off, &seg.data)?;
                }
                if let Some(name) = array_names.get(&file) {
                    charge.io_array(name, file);
                }
                charge.io_write_back(1, seg.len);
                stats.add_write(1, seg.len);
                stats.add_write_back(1, seg.len);
                let counts = per_file.entry(file).or_default();
                counts.write_back_requests += 1;
                counts.write_back_bytes += seg.len;
                seg.dirty = false;
            }
        }
        Ok(())
    }

    /// Drop every segment of `file` without writing anything back. Used
    /// when the file itself is removed.
    pub fn invalidate_file(&mut self, file: u64) {
        if let Some(segs) = self.files.remove(&file) {
            self.used -= segs.values().map(|s| s.len).sum::<u64>();
        }
    }

    fn evict_to_budget(
        &mut self,
        backend: &mut Option<&mut dyn StorageBackend>,
        faults: Option<&FaultInjector>,
        charge: &dyn IoCharge,
        stats: &mut DiskStats,
    ) -> Result<()> {
        while self.used > self.budget {
            let victim = self
                .files
                .iter()
                .flat_map(|(&f, segs)| segs.iter().map(move |(&o, s)| (s.tick, f, o)))
                .min();
            let Some((_, file, off)) = victim else { break };
            // Write a dirty victim back *before* dropping it from the cache:
            // if the write-back fails, the error surfaces and the segment —
            // with its unwritten bytes — stays cached and dirty, so a later
            // flush can still persist it. (Removing first would silently
            // lose the bytes on failure.)
            let dirty = self.files[&file][&off].dirty;
            if dirty {
                let seg = &self.files[&file][&off];
                let len = seg.len;
                if self.materialized {
                    let b = backend
                        .as_deref_mut()
                        .expect("materialized evict needs backend");
                    backend_write(b, faults, file, off, &seg.data)?;
                }
                if let Some(name) = self.array_names.get(&file) {
                    charge.io_array(name, file);
                }
                charge.io_write_back(1, len);
                stats.add_write(1, len);
                stats.add_write_back(1, len);
                let counts = self.per_file.entry(file).or_default();
                counts.write_back_requests += 1;
                counts.write_back_bytes += len;
            }
            let segs = self.files.get_mut(&file).expect("victim file");
            let seg = segs.remove(&off).expect("victim seg");
            if segs.is_empty() {
                self.files.remove(&file);
            }
            self.used -= seg.len;
            stats.add_evicted(seg.len);
        }
        Ok(())
    }
}

/// Copy the intersection of segment `[seg_off, seg_off + data.len())` with
/// `run` from `data` into the run-relative output buffer.
fn copy_intersection(out: &mut [u8], run: ByteRun, seg_off: u64, data: &[u8]) {
    let s = seg_off.max(run.offset);
    let e = (seg_off + data.len() as u64).min(run.end());
    if s >= e {
        return;
    }
    let src = &data[(s - seg_off) as usize..(e - seg_off) as usize];
    out[(s - run.offset) as usize..(e - run.offset) as usize].copy_from_slice(src);
}

/// Split a segment at `off` into the parts lying outside `run`, preserving
/// dirtiness, tick and (in materialized mode) the payload slices.
fn split_outside(off: u64, seg: Seg, run: ByteRun, materialized: bool) -> Vec<(u64, Seg)> {
    let mut out = Vec::new();
    let end = seg.end(off);
    if off < run.offset {
        let len = run.offset - off;
        out.push((
            off,
            Seg {
                len,
                dirty: seg.dirty,
                tick: seg.tick,
                data: if materialized {
                    seg.data[..len as usize].to_vec()
                } else {
                    Vec::new()
                },
            },
        ));
    }
    if end > run.end() {
        let len = end - run.end();
        out.push((
            run.end(),
            Seg {
                len,
                dirty: seg.dirty,
                tick: seg.tick,
                data: if materialized {
                    seg.data[(run.end() - off) as usize..].to_vec()
                } else {
                    Vec::new()
                },
            },
        ));
    }
    out
}

/// Recycles byte buffers so the hot read path does not allocate a fresh
/// `Vec` per slab. Buffers are handed out cleared (length 0) with their
/// capacity intact.
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Vec<Vec<u8>>,
}

/// Buffers retained per pool; enough for the deepest staging nesting.
const POOL_DEPTH: usize = 8;

impl BufferPool {
    /// Empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take a cleared buffer, reusing a returned one when available.
    pub fn take(&mut self) -> Vec<u8> {
        let mut buf = self.free.pop().unwrap_or_default();
        buf.clear();
        buf
    }

    /// Return a buffer to the pool for reuse.
    pub fn put(&mut self, buf: Vec<u8>) {
        if self.free.len() < POOL_DEPTH {
            self.free.push(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::NoCharge;

    fn filled_backend(len: u64) -> MemBackend {
        let mut b = MemBackend::new();
        b.create(0, len).unwrap();
        let data: Vec<u8> = (0..len).map(|i| i as u8).collect();
        b.write_at(0, 0, &data).unwrap();
        b
    }

    fn read(
        cache: &mut SlabCache,
        backend: &mut MemBackend,
        stats: &mut DiskStats,
        run: ByteRun,
    ) -> Vec<u8> {
        let mut out = vec![0u8; run.len as usize];
        cache
            .read(
                0,
                run,
                Some(&mut out),
                Some(backend),
                None,
                &NoCharge,
                stats,
            )
            .unwrap();
        out
    }

    #[test]
    fn second_read_of_same_run_hits() {
        let mut backend = filled_backend(64);
        let mut cache = SlabCache::new(64);
        let mut stats = DiskStats::default();
        let a = read(&mut cache, &mut backend, &mut stats, ByteRun::new(8, 16));
        assert_eq!(a, (8..24).collect::<Vec<u8>>());
        assert_eq!(stats.read_requests, 1);
        assert_eq!(stats.cache_misses, 1);
        let b = read(&mut cache, &mut backend, &mut stats, ByteRun::new(8, 16));
        assert_eq!(b, a);
        assert_eq!(stats.read_requests, 1, "second read served from cache");
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_hit_bytes, 16);
    }

    #[test]
    fn partial_overlap_fetches_only_the_gap() {
        let mut backend = filled_backend(64);
        let mut cache = SlabCache::new(64);
        let mut stats = DiskStats::default();
        read(&mut cache, &mut backend, &mut stats, ByteRun::new(0, 8));
        let b = read(&mut cache, &mut backend, &mut stats, ByteRun::new(4, 8));
        assert_eq!(b, (4..12).collect::<Vec<u8>>());
        assert_eq!(stats.read_requests, 2);
        assert_eq!(stats.bytes_read, 8 + 4, "only bytes 8..12 re-fetched");
    }

    #[test]
    fn writes_buffer_until_flush_and_then_hit() {
        let mut backend = filled_backend(64);
        let mut cache = SlabCache::new(64);
        let mut stats = DiskStats::default();
        let data: Vec<u8> = (100..108).collect();
        cache
            .write(
                0,
                ByteRun::new(16, 8),
                Some(&data),
                Some(&mut backend),
                None,
                &NoCharge,
                &mut stats,
            )
            .unwrap();
        assert_eq!(stats.write_requests, 0, "write is buffered");
        // The backing store still has the old bytes.
        let mut probe = [0u8; 1];
        backend.read_at(0, 16, &mut probe).unwrap();
        assert_eq!(probe[0], 16);
        // A read sees the dirty bytes without any disk traffic.
        let got = read(&mut cache, &mut backend, &mut stats, ByteRun::new(16, 8));
        assert_eq!(got, data);
        assert_eq!(stats.read_requests, 0);

        cache
            .flush(Some(&mut backend), None, &NoCharge, &mut stats)
            .unwrap();
        assert_eq!(stats.write_requests, 1);
        assert_eq!(stats.write_back_requests, 1);
        assert_eq!(stats.write_back_bytes, 8);
        backend.read_at(0, 16, &mut probe).unwrap();
        assert_eq!(probe[0], 100);
        // Coverage survives the flush.
        read(&mut cache, &mut backend, &mut stats, ByteRun::new(16, 8));
        assert_eq!(stats.read_requests, 0);
    }

    #[test]
    fn adjacent_dirty_writes_merge_into_one_write_back() {
        let mut backend = filled_backend(64);
        let mut cache = SlabCache::new(64);
        let mut stats = DiskStats::default();
        for i in 0..4u64 {
            let data = [i as u8; 4];
            cache
                .write(
                    0,
                    ByteRun::new(i * 4, 4),
                    Some(&data),
                    Some(&mut backend),
                    None,
                    &NoCharge,
                    &mut stats,
                )
                .unwrap();
        }
        cache
            .flush(Some(&mut backend), None, &NoCharge, &mut stats)
            .unwrap();
        assert_eq!(
            stats.write_requests, 1,
            "four adjacent writes, one write-back"
        );
        assert_eq!(stats.bytes_written, 16);
        let mut all = [0u8; 16];
        backend.read_at(0, 0, &mut all).unwrap();
        assert_eq!(&all[..4], &[0; 4]);
        assert_eq!(&all[12..], &[3; 4]);
    }

    #[test]
    fn eviction_writes_back_dirty_lru_segment() {
        let mut backend = filled_backend(64);
        let mut cache = SlabCache::new(8);
        let mut stats = DiskStats::default();
        let data = [9u8; 8];
        cache
            .write(
                0,
                ByteRun::new(0, 8),
                Some(&data),
                Some(&mut backend),
                None,
                &NoCharge,
                &mut stats,
            )
            .unwrap();
        // Reading elsewhere overflows the budget and evicts the dirty seg.
        read(&mut cache, &mut backend, &mut stats, ByteRun::new(32, 8));
        assert_eq!(stats.write_back_requests, 1);
        assert_eq!(stats.evicted_bytes, 8);
        let mut probe = [0u8; 8];
        backend.read_at(0, 0, &mut probe).unwrap();
        assert_eq!(probe, data, "dirty bytes written back on eviction");
        // The evicted range now misses again.
        read(&mut cache, &mut backend, &mut stats, ByteRun::new(0, 8));
        assert_eq!(stats.cache_misses, 2);
    }

    #[test]
    fn read_overlays_dirty_bytes_over_span_fetch() {
        let mut backend = filled_backend(64);
        let mut cache = SlabCache::new(64);
        let mut stats = DiskStats::default();
        let data = [200u8; 4];
        cache
            .write(
                0,
                ByteRun::new(4, 4),
                Some(&data),
                Some(&mut backend),
                None,
                &NoCharge,
                &mut stats,
            )
            .unwrap();
        let got = read(&mut cache, &mut backend, &mut stats, ByteRun::new(0, 12));
        assert_eq!(&got[..4], &[0, 1, 2, 3]);
        assert_eq!(&got[4..8], &data);
        assert_eq!(&got[8..], &[8, 9, 10, 11]);
        // One spanning request; dirty bytes must not be lost afterwards.
        assert_eq!(stats.read_requests, 1);
        cache
            .flush(Some(&mut backend), None, &NoCharge, &mut stats)
            .unwrap();
        let mut probe = [0u8; 4];
        backend.read_at(0, 4, &mut probe).unwrap();
        assert_eq!(probe, data);
    }

    #[test]
    fn zero_budget_degenerates_to_uncached_counts() {
        let mut backend = filled_backend(64);
        let mut cache = SlabCache::new(0);
        let mut stats = DiskStats::default();
        for _ in 0..3 {
            read(&mut cache, &mut backend, &mut stats, ByteRun::new(0, 16));
        }
        assert_eq!(stats.read_requests, 3, "no reuse without budget");
        assert_eq!(stats.bytes_read, 48);
        let data = [1u8; 16];
        cache
            .write(
                0,
                ByteRun::new(0, 16),
                Some(&data),
                Some(&mut backend),
                None,
                &NoCharge,
                &mut stats,
            )
            .unwrap();
        assert_eq!(stats.write_requests, 1, "write evicts itself immediately");
        let mut probe = [0u8; 16];
        backend.read_at(0, 0, &mut probe).unwrap();
        assert_eq!(probe, data);
    }

    #[test]
    fn predictor_counts_match_materialized_run() {
        let ops: &[(bool, u64, u64)] = &[
            (false, 0, 16),
            (false, 8, 16),
            (true, 16, 8),
            (false, 12, 8),
            (true, 40, 8),
            (false, 0, 48),
        ];
        let mut backend = filled_backend(64);
        let mut mat = SlabCache::new(24);
        let mut mat_stats = DiskStats::default();
        let mut pred = SlabCache::predictor(24);
        let mut pred_stats = DiskStats::default();
        for &(is_write, off, len) in ops {
            let run = ByteRun::new(off, len);
            if is_write {
                let data = vec![7u8; len as usize];
                mat.write(
                    0,
                    run,
                    Some(&data),
                    Some(&mut backend),
                    None,
                    &NoCharge,
                    &mut mat_stats,
                )
                .unwrap();
                pred.write(0, run, None, None, None, &NoCharge, &mut pred_stats)
                    .unwrap();
            } else {
                let mut out = vec![0u8; len as usize];
                mat.read(
                    0,
                    run,
                    Some(&mut out),
                    Some(&mut backend),
                    None,
                    &NoCharge,
                    &mut mat_stats,
                )
                .unwrap();
                pred.read(0, run, None, None, None, &NoCharge, &mut pred_stats)
                    .unwrap();
            }
        }
        mat.flush(Some(&mut backend), None, &NoCharge, &mut mat_stats)
            .unwrap();
        pred.flush(None, None, &NoCharge, &mut pred_stats).unwrap();
        assert_eq!(mat_stats, pred_stats);
        assert_eq!(mat.file_counts(0), pred.file_counts(0));
    }

    #[test]
    fn invalidate_drops_coverage() {
        let mut backend = filled_backend(64);
        let mut cache = SlabCache::new(64);
        let mut stats = DiskStats::default();
        read(&mut cache, &mut backend, &mut stats, ByteRun::new(0, 16));
        cache.invalidate_file(0);
        assert_eq!(cache.used(), 0);
        read(&mut cache, &mut backend, &mut stats, ByteRun::new(0, 16));
        assert_eq!(stats.cache_misses, 2);
    }

    /// A backend whose writes can be switched off, for write-back failure
    /// injection.
    struct FlakyBackend {
        inner: MemBackend,
        writes_fail: bool,
    }

    impl StorageBackend for FlakyBackend {
        fn create(&mut self, id: u64, len: u64) -> Result<()> {
            self.inner.create(id, len)
        }
        fn len(&self, id: u64) -> Result<u64> {
            self.inner.len(id)
        }
        fn read_at(&mut self, id: u64, offset: u64, buf: &mut [u8]) -> Result<()> {
            self.inner.read_at(id, offset, buf)
        }
        fn write_at(&mut self, id: u64, offset: u64, data: &[u8]) -> Result<()> {
            if self.writes_fail {
                return Err(crate::error::IoError::Backend(std::io::Error::other(
                    "injected write failure",
                )));
            }
            self.inner.write_at(id, offset, data)
        }
        fn remove(&mut self, id: u64) -> Result<()> {
            self.inner.remove(id)
        }
    }

    #[test]
    fn failed_eviction_write_back_surfaces_and_keeps_dirty_bytes() {
        let mut backend = FlakyBackend {
            inner: filled_backend(64),
            writes_fail: false,
        };
        let mut cache = SlabCache::new(8);
        let mut stats = DiskStats::default();
        let data = [42u8; 8];
        cache
            .write(
                0,
                ByteRun::new(0, 8),
                Some(&data),
                Some(&mut backend),
                None,
                &NoCharge,
                &mut stats,
            )
            .unwrap();
        // Break the backend, then force an eviction by writing elsewhere.
        backend.writes_fail = true;
        let err = cache.write(
            0,
            ByteRun::new(32, 8),
            Some(&[7u8; 8]),
            Some(&mut backend),
            None,
            &NoCharge,
            &mut stats,
        );
        assert!(err.is_err(), "failed write-back must surface, not vanish");
        assert_eq!(
            stats.write_back_requests, 0,
            "a failed write-back is not counted as completed"
        );
        // The dirty bytes survived the failure: heal the backend, flush, and
        // they reach the store.
        backend.writes_fail = false;
        cache
            .flush(Some(&mut backend), None, &NoCharge, &mut stats)
            .unwrap();
        let mut probe = [0u8; 8];
        backend.read_at(0, 0, &mut probe).unwrap();
        assert_eq!(probe, data, "dirty bytes persisted after recovery");
    }

    #[test]
    fn failed_flush_write_back_keeps_segment_dirty() {
        let mut backend = FlakyBackend {
            inner: filled_backend(64),
            writes_fail: true,
        };
        let mut cache = SlabCache::new(64);
        let mut stats = DiskStats::default();
        let data = [9u8; 4];
        cache
            .write(
                0,
                ByteRun::new(4, 4),
                Some(&data),
                Some(&mut backend),
                None,
                &NoCharge,
                &mut stats,
            )
            .unwrap();
        assert!(cache
            .flush(Some(&mut backend), None, &NoCharge, &mut stats)
            .is_err());
        // Retry after the backend heals: the segment is still dirty.
        backend.writes_fail = false;
        cache
            .flush(Some(&mut backend), None, &NoCharge, &mut stats)
            .unwrap();
        let mut probe = [0u8; 4];
        backend.read_at(0, 4, &mut probe).unwrap();
        assert_eq!(probe, data);
    }

    #[test]
    fn buffer_pool_reuses_capacity() {
        let mut pool = BufferPool::new();
        let mut b = pool.take();
        b.resize(1024, 0);
        let cap = b.capacity();
        pool.put(b);
        let b2 = pool.take();
        assert!(b2.is_empty());
        assert_eq!(b2.capacity(), cap);
    }
}
