//! Error type for the I/O layer.

use std::fmt;

/// Errors produced by logical-disk and local-array-file operations.
#[derive(Debug)]
pub enum IoError {
    /// An access touched bytes beyond the end of the file.
    OutOfBounds {
        /// File being accessed.
        file: u64,
        /// First byte past the end that the access needed.
        needed: u64,
        /// Actual file length in bytes.
        len: u64,
    },
    /// The file id is not present on this logical disk.
    NoSuchFile {
        /// The missing file id.
        file: u64,
    },
    /// The underlying OS file operation failed (on-disk backend only).
    Backend(std::io::Error),
    /// A typed read/write used a buffer whose size is not a multiple of the
    /// element size.
    BadElementSize {
        /// Bytes supplied.
        bytes: usize,
        /// Element size in bytes.
        elem: usize,
    },
    /// The fault layer injected a permanent fault that no retry can clear;
    /// recovery requires checkpoint/restart, not re-issuing the request.
    PermanentFault {
        /// File being accessed.
        file: u64,
        /// Byte offset of the faulted access.
        offset: u64,
        /// Whether the faulted access was a read or a write.
        op: FaultOp,
    },
    /// The logical disk died permanently (its fault budget ran out); no
    /// retry and no checkpoint/restart on the same disk can clear this.
    /// Recovery means re-planning the job onto surviving disks.
    DiskDown {
        /// File whose access hit the dead disk.
        file: u64,
    },
}

/// The direction of a permanently faulted disk access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// A read hit the permanent fault.
    Read,
    /// A write hit the permanent fault.
    Write,
}

impl fmt::Display for FaultOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultOp::Read => write!(f, "read"),
            FaultOp::Write => write!(f, "write"),
        }
    }
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::OutOfBounds { file, needed, len } => write!(
                f,
                "out-of-bounds access on file {file}: needs byte {needed}, length is {len}"
            ),
            IoError::NoSuchFile { file } => write!(f, "no such file on this logical disk: {file}"),
            IoError::Backend(e) => write!(f, "backend I/O error: {e}"),
            IoError::BadElementSize { bytes, elem } => write!(
                f,
                "buffer of {bytes} bytes is not a whole number of {elem}-byte elements"
            ),
            IoError::PermanentFault { file, offset, op } => write!(
                f,
                "permanent {op} fault on file {file} at byte {offset} (retries exhausted)"
            ),
            IoError::DiskDown { file } => write!(
                f,
                "logical disk died permanently; access to file {file} refused"
            ),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Backend(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Backend(e)
    }
}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, IoError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = IoError::OutOfBounds {
            file: 3,
            needed: 100,
            len: 64,
        };
        let s = e.to_string();
        assert!(s.contains("file 3") && s.contains("100") && s.contains("64"));
        assert!(IoError::NoSuchFile { file: 9 }.to_string().contains('9'));
    }

    #[test]
    fn permanent_fault_display_names_the_site() {
        let e = IoError::PermanentFault {
            file: 4,
            offset: 128,
            op: FaultOp::Write,
        };
        let s = e.to_string();
        assert!(s.contains("permanent write fault"), "{s}");
        assert!(s.contains("file 4") && s.contains("128"), "{s}");
    }

    #[test]
    fn io_error_conversion() {
        let os = std::io::Error::other("boom");
        let e: IoError = os.into();
        assert!(matches!(e, IoError::Backend(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
