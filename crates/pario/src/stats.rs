//! Per-disk I/O accounting, independent of the machine's virtual clock.
//!
//! The simulated-time charges flow through [`crate::IoCharge`]; these
//! counters additionally live on the logical disk itself so that file setup
//! done *outside* an SPMD region (e.g. the initial distribution of an array
//! from "archival storage") can still be inspected by tests and reports.

use serde::{Deserialize, Serialize};

/// Cumulative counters for one logical disk.
///
/// The request/byte counters record actual disk traffic: a section read
/// absorbed by the slab cache does **not** bump `read_requests`, and a
/// buffered section write only bumps `write_requests` when the dirty slab
/// is written back (eviction or flush). The `cache_*`, `write_back_*` and
/// `evicted_bytes` counters make the cache's behaviour observable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiskStats {
    /// Read requests (contiguous runs) issued.
    pub read_requests: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Write requests (contiguous runs) issued.
    pub write_requests: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Section-read runs fully satisfied from the slab cache.
    pub cache_hits: u64,
    /// Bytes served from the slab cache on hits.
    pub cache_hit_bytes: u64,
    /// Section-read runs that needed at least one disk request.
    pub cache_misses: u64,
    /// Dirty-slab write-backs (eviction + flush); also counted in
    /// `write_requests`.
    pub write_back_requests: u64,
    /// Bytes written back from dirty slabs; also counted in `bytes_written`.
    pub write_back_bytes: u64,
    /// Bytes dropped from the cache by eviction (clean and dirty).
    pub evicted_bytes: u64,
}

impl DiskStats {
    /// Total requests, the paper's first I/O metric.
    pub fn requests(&self) -> u64 {
        self.read_requests + self.write_requests
    }

    /// Total bytes, the paper's second I/O metric.
    pub fn bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    pub(crate) fn add_read(&mut self, requests: u64, bytes: u64) {
        self.read_requests += requests;
        self.bytes_read += bytes;
    }

    pub(crate) fn add_write(&mut self, requests: u64, bytes: u64) {
        self.write_requests += requests;
        self.bytes_written += bytes;
    }

    pub(crate) fn add_cache_hit(&mut self, runs: u64, bytes: u64) {
        self.cache_hits += runs;
        self.cache_hit_bytes += bytes;
    }

    pub(crate) fn add_cache_miss(&mut self, runs: u64) {
        self.cache_misses += runs;
    }

    pub(crate) fn add_write_back(&mut self, requests: u64, bytes: u64) {
        self.write_back_requests += requests;
        self.write_back_bytes += bytes;
    }

    pub(crate) fn add_evicted(&mut self, bytes: u64) {
        self.evicted_bytes += bytes;
    }

    /// Element-wise difference `self - before`: the traffic between two
    /// snapshots of the same disk, for per-phase attribution
    /// (`after - before`). Saturates at zero so a stale pair can't wrap.
    pub fn delta(&self, before: &DiskStats) -> DiskStats {
        DiskStats {
            read_requests: self.read_requests.saturating_sub(before.read_requests),
            bytes_read: self.bytes_read.saturating_sub(before.bytes_read),
            write_requests: self.write_requests.saturating_sub(before.write_requests),
            bytes_written: self.bytes_written.saturating_sub(before.bytes_written),
            cache_hits: self.cache_hits.saturating_sub(before.cache_hits),
            cache_hit_bytes: self.cache_hit_bytes.saturating_sub(before.cache_hit_bytes),
            cache_misses: self.cache_misses.saturating_sub(before.cache_misses),
            write_back_requests: self
                .write_back_requests
                .saturating_sub(before.write_back_requests),
            write_back_bytes: self
                .write_back_bytes
                .saturating_sub(before.write_back_bytes),
            evicted_bytes: self.evicted_bytes.saturating_sub(before.evicted_bytes),
        }
    }
}

impl std::ops::Sub for DiskStats {
    type Output = DiskStats;

    /// `after - before`, see [`DiskStats::delta`].
    fn sub(self, before: DiskStats) -> DiskStats {
        self.delta(&before)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_combine_reads_and_writes() {
        let mut s = DiskStats::default();
        s.add_read(2, 100);
        s.add_write(3, 50);
        assert_eq!(s.requests(), 5);
        assert_eq!(s.bytes(), 150);
        assert_eq!(s.read_requests, 2);
        assert_eq!(s.write_requests, 3);
    }

    #[test]
    fn delta_isolates_a_phase() {
        let mut s = DiskStats::default();
        s.add_read(2, 100);
        let before = s;
        s.add_read(1, 10);
        s.add_write(4, 400);
        s.add_write_back(1, 64);
        let d = s - before;
        assert_eq!(d.read_requests, 1);
        assert_eq!(d.bytes_read, 10);
        assert_eq!(d.write_requests, 4);
        assert_eq!(d.write_back_bytes, 64);
        // Counters untouched in the phase stay zero.
        assert_eq!(d.cache_hits, 0);
        assert_eq!(d.evicted_bytes, 0);
    }
}
