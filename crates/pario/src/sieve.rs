//! Data sieving (PASSION runtime, Thakur et al. 1994).
//!
//! A strided section of `k` runs can be serviced either *directly* (`k`
//! requests, exact bytes) or by *sieving*: one request covering the whole
//! span, discarding the unwanted bytes in memory. Sieving trades bytes for
//! requests; whether it wins depends on the machine's request startup vs
//! bandwidth. [`SievePolicy`] makes the choice per access.

use serde::{Deserialize, Serialize};

use crate::request::{coalesce_runs, total_bytes, ByteRun};

/// When to replace a strided access by one spanning request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum SievePolicy {
    /// Never sieve: one request per contiguous run.
    #[default]
    Direct,
    /// Always sieve multi-run accesses.
    Always,
    /// Sieve when the spanning read moves at most `max_waste` times the
    /// useful bytes (e.g. `2.0` allows reading twice the data to save the
    /// seeks).
    WasteBound {
        /// Maximum allowed span/useful byte ratio.
        max_waste: f64,
    },
    /// Sieve when it is cheaper under explicit machine rates.
    CostBased {
        /// Seconds per request.
        startup: f64,
        /// Bytes per second.
        bandwidth: f64,
    },
}

/// The access plan chosen by a policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessPlan {
    /// Issue the coalesced runs as-is.
    Direct(Vec<ByteRun>),
    /// Issue one spanning request; the payload must then be sieved with
    /// [`sieve_extract`].
    Sieved {
        /// The single spanning run.
        span: ByteRun,
        /// The useful runs within it (coalesced, sorted).
        useful: Vec<ByteRun>,
    },
}

impl AccessPlan {
    /// Requests this plan issues.
    pub fn requests(&self) -> u64 {
        match self {
            AccessPlan::Direct(runs) => runs.len() as u64,
            AccessPlan::Sieved { .. } => 1,
        }
    }

    /// Bytes this plan moves from disk.
    pub fn bytes(&self) -> u64 {
        match self {
            AccessPlan::Direct(runs) => total_bytes(runs),
            AccessPlan::Sieved { span, .. } => span.len,
        }
    }
}

/// Decide how to service `runs` under `policy`.
pub fn plan_access(runs: &[ByteRun], policy: SievePolicy) -> AccessPlan {
    let coalesced = coalesce_runs(runs);
    if coalesced.len() <= 1 {
        return AccessPlan::Direct(coalesced);
    }
    let useful = total_bytes(&coalesced);
    let lo = coalesced.first().expect("non-empty").offset;
    let hi = coalesced.last().expect("non-empty").end();
    let span = ByteRun::new(lo, hi - lo);
    let sieve = match policy {
        SievePolicy::Direct => false,
        SievePolicy::Always => true,
        SievePolicy::WasteBound { max_waste } => span.len as f64 <= useful as f64 * max_waste,
        SievePolicy::CostBased { startup, bandwidth } => {
            let direct = coalesced.len() as f64 * startup + useful as f64 / bandwidth;
            let sieved = startup + span.len as f64 / bandwidth;
            sieved < direct
        }
    };
    if sieve {
        AccessPlan::Sieved {
            span,
            useful: coalesced,
        }
    } else {
        AccessPlan::Direct(coalesced)
    }
}

/// Extract the useful runs from a buffer holding the whole span.
pub fn sieve_extract(span: &ByteRun, useful: &[ByteRun], span_data: &[u8]) -> Vec<u8> {
    debug_assert_eq!(span_data.len() as u64, span.len);
    let mut out = Vec::with_capacity(total_bytes(useful) as usize);
    for run in useful {
        let start = (run.offset - span.offset) as usize;
        out.extend_from_slice(&span_data[start..start + run.len as usize]);
    }
    out
}

/// Scatter useful runs back into a span buffer (for sieved writes:
/// read-modify-write). Returns the modified span buffer.
pub fn sieve_scatter(
    span: &ByteRun,
    useful: &[ByteRun],
    mut span_data: Vec<u8>,
    new_data: &[u8],
) -> Vec<u8> {
    debug_assert_eq!(span_data.len() as u64, span.len);
    debug_assert_eq!(new_data.len() as u64, total_bytes(useful));
    let mut cursor = 0usize;
    for run in useful {
        let start = (run.offset - span.offset) as usize;
        span_data[start..start + run.len as usize]
            .copy_from_slice(&new_data[cursor..cursor + run.len as usize]);
        cursor += run.len as usize;
    }
    span_data
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strided(k: usize, useful: u64, gap: u64) -> Vec<ByteRun> {
        (0..k as u64)
            .map(|i| ByteRun::new(i * (useful + gap), useful))
            .collect()
    }

    #[test]
    fn single_run_is_always_direct() {
        let plan = plan_access(&[ByteRun::new(0, 100)], SievePolicy::Always);
        assert_eq!(plan, AccessPlan::Direct(vec![ByteRun::new(0, 100)]));
    }

    #[test]
    fn always_policy_spans_the_access() {
        let runs = strided(4, 10, 90);
        let plan = plan_access(&runs, SievePolicy::Always);
        let AccessPlan::Sieved { span, useful } = plan else {
            panic!("expected sieved");
        };
        assert_eq!(span, ByteRun::new(0, 310)); // 3*(100) + 10
        assert_eq!(useful.len(), 4);
    }

    #[test]
    fn waste_bound_respects_the_ratio() {
        let runs = strided(4, 10, 90); // span 310, useful 40: waste 7.75x
        assert!(matches!(
            plan_access(&runs, SievePolicy::WasteBound { max_waste: 8.0 }),
            AccessPlan::Sieved { .. }
        ));
        assert!(matches!(
            plan_access(&runs, SievePolicy::WasteBound { max_waste: 7.0 }),
            AccessPlan::Direct(_)
        ));
    }

    #[test]
    fn cost_based_matches_arithmetic() {
        let runs = strided(10, 100, 100); // 10 reqs/1000B vs 1 req/1900B
                                          // Expensive seeks: sieve wins.
        let cheap_bw = SievePolicy::CostBased {
            startup: 1e-2,
            bandwidth: 1e6,
        };
        assert!(matches!(
            plan_access(&runs, cheap_bw),
            AccessPlan::Sieved { .. }
        ));
        // Nearly free seeks: direct wins.
        let costly_bytes = SievePolicy::CostBased {
            startup: 1e-9,
            bandwidth: 1e6,
        };
        assert!(matches!(
            plan_access(&runs, costly_bytes),
            AccessPlan::Direct(_)
        ));
    }

    #[test]
    fn extract_pulls_the_right_bytes() {
        let span = ByteRun::new(10, 20);
        let useful = vec![ByteRun::new(12, 3), ByteRun::new(20, 2)];
        let span_data: Vec<u8> = (10..30).collect();
        let got = sieve_extract(&span, &useful, &span_data);
        assert_eq!(got, vec![12, 13, 14, 20, 21]);
    }

    #[test]
    fn scatter_is_extract_inverse() {
        let span = ByteRun::new(0, 10);
        let useful = vec![ByteRun::new(2, 2), ByteRun::new(7, 1)];
        let base = vec![9u8; 10];
        let updated = sieve_scatter(&span, &useful, base, &[1, 2, 3]);
        assert_eq!(updated, vec![9, 9, 1, 2, 9, 9, 9, 3, 9, 9]);
        let back = sieve_extract(&span, &useful, &updated);
        assert_eq!(back, vec![1, 2, 3]);
    }

    #[test]
    fn plan_metrics() {
        let runs = strided(4, 10, 90);
        let direct = plan_access(&runs, SievePolicy::Direct);
        assert_eq!(direct.requests(), 4);
        assert_eq!(direct.bytes(), 40);
        let sieved = plan_access(&runs, SievePolicy::Always);
        assert_eq!(sieved.requests(), 1);
        assert_eq!(sieved.bytes(), 310);
    }
}
