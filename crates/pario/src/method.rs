//! I/O access methods and the file-conforming union planner behind the
//! two-phase collective path.
//!
//! The paper's reorganizations shrink each processor's *own* request count;
//! two-phase collective I/O (PASSION / del Rosario-Bordawekar-Choudhary)
//! shrinks the *cooperative* count: every rank services the file-conforming
//! union of all outgoing pieces with a few coalesced requests, then ships
//! each piece to its computation-conforming owner over the interconnect.
//! [`UnionPlan`] is the in-memory half of that: where each piece's bytes
//! live inside the union buffer, so carving is pure memory movement.

use serde::{Deserialize, Serialize};

use crate::request::{coalesce_runs, ByteRun};

/// How an array-section access is serviced against the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum IoMethod {
    /// One request per contiguous run of the section (the baseline).
    #[default]
    Direct,
    /// Data sieving: one spanning request per access, discarding the
    /// unwanted bytes in memory (trades bandwidth for request count).
    Sieved,
    /// Two-phase collective: coalesced file-conforming reads/writes plus an
    /// all-to-all exchange to the computation-conforming decomposition.
    TwoPhase,
}

impl IoMethod {
    /// Human-readable name used in reports, traces and bench tables.
    pub fn label(self) -> &'static str {
        match self {
            IoMethod::Direct => "direct",
            IoMethod::Sieved => "sieved",
            IoMethod::TwoPhase => "two-phase",
        }
    }

    /// All methods, in comparison-table order.
    pub const ALL: [IoMethod; 3] = [IoMethod::Direct, IoMethod::Sieved, IoMethod::TwoPhase];
}

/// The file-conforming service plan for a set of piece accesses: the
/// coalesced union of every piece's byte runs, plus each piece's location
/// inside the union buffer (union runs concatenated in offset order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnionPlan {
    /// Coalesced runs covering every piece — what the disk services.
    pub union: Vec<ByteRun>,
    /// Per input piece, `(buffer_position, len)` segments in the piece's
    /// own run order; concatenating the segments reproduces the piece.
    pub carves: Vec<Vec<(usize, usize)>>,
}

impl UnionPlan {
    /// Requests the union read/write issues.
    pub fn requests(&self) -> u64 {
        self.union.len() as u64
    }

    /// Bytes the union read/write moves.
    pub fn bytes(&self) -> u64 {
        self.union.iter().map(|r| r.len).sum()
    }

    /// Size of the union buffer (same as [`Self::bytes`], as usize).
    pub fn buffer_len(&self) -> usize {
        self.bytes() as usize
    }

    /// Copy piece `i`'s bytes out of a union buffer.
    pub fn carve(&self, i: usize, union_buf: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.carves[i].iter().map(|&(_, l)| l).sum());
        for &(pos, len) in &self.carves[i] {
            out.extend_from_slice(&union_buf[pos..pos + len]);
        }
        out
    }

    /// Scatter piece `i`'s bytes into a union buffer (the write-side dual
    /// of [`Self::carve`]).
    pub fn scatter(&self, i: usize, piece: &[u8], union_buf: &mut [u8]) {
        let mut cursor = 0usize;
        for &(pos, len) in &self.carves[i] {
            union_buf[pos..pos + len].copy_from_slice(&piece[cursor..cursor + len]);
            cursor += len;
        }
        debug_assert_eq!(cursor, piece.len(), "piece length mismatches its carve");
    }
}

/// Build the union plan for a set of pieces, each a list of byte runs.
///
/// Duplicate and overlapping runs — the natural shape of an irregular
/// gather's request stream, where the same index appears many times — are
/// coalesced into the union exactly once, so [`UnionPlan::bytes`] never
/// double-charges a file byte no matter how often the pieces repeat it.
/// Each piece's carve still replays its runs in their own order (duplicates
/// included), so carving a repeated-index stream reproduces every repeat.
/// Runs that would overflow `u64` are clamped to the addressable extent,
/// mirroring [`coalesce_runs`], so the carves always index inside the union.
pub fn plan_union(pieces: &[Vec<ByteRun>]) -> UnionPlan {
    let all: Vec<ByteRun> = pieces.iter().flatten().copied().collect();
    let union = coalesce_runs(&all);
    // Prefix positions of each union run inside the concatenated buffer.
    let mut prefix = Vec::with_capacity(union.len());
    let mut acc = 0usize;
    for r in &union {
        prefix.push(acc);
        acc += r.len as usize;
    }
    let position = |offset: u64| -> usize {
        // The union covers every input byte, so the containing run exists.
        let i = union.partition_point(|r| r.end() <= offset);
        debug_assert!(i < union.len() && union[i].offset <= offset);
        prefix[i] + (offset - union[i].offset) as usize
    };
    let carves = pieces
        .iter()
        .map(|runs| {
            let mut segs: Vec<(usize, usize)> = Vec::new();
            for r in runs {
                // Same clamp as coalesce_runs applied to the union, so a
                // clamped run cannot address past the union buffer.
                let len = r.len.min(u64::MAX - r.offset) as usize;
                if r.len == 0 || len == 0 {
                    continue;
                }
                let pos = position(r.offset);
                match segs.last_mut() {
                    // Runs that land back-to-back in the union buffer (e.g.
                    // a gather of consecutive indices split into unit runs)
                    // carve identically as one segment — merge them so the
                    // carve is one memcpy instead of thousands.
                    Some((p, l)) if *p + *l == pos => *l += len,
                    _ => segs.push((pos, len)),
                }
            }
            segs
        })
        .collect();
    UnionPlan { union, carves }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_labels_are_stable() {
        assert_eq!(
            IoMethod::ALL.map(IoMethod::label),
            ["direct", "sieved", "two-phase"]
        );
        assert_eq!(IoMethod::default(), IoMethod::Direct);
    }

    #[test]
    fn union_of_strided_pieces_is_contiguous() {
        // Two interleaved strided pieces whose union is one extent — the
        // row-block/row-major redistribution picture.
        let a = vec![ByteRun::new(0, 4), ByteRun::new(8, 4)];
        let b = vec![ByteRun::new(4, 4), ByteRun::new(12, 4)];
        let plan = plan_union(&[a, b]);
        assert_eq!(plan.union, vec![ByteRun::new(0, 16)]);
        assert_eq!(plan.requests(), 1);
        assert_eq!(plan.bytes(), 16);
        let buf: Vec<u8> = (0u8..16).collect();
        assert_eq!(plan.carve(0, &buf), vec![0, 1, 2, 3, 8, 9, 10, 11]);
        assert_eq!(plan.carve(1, &buf), vec![4, 5, 6, 7, 12, 13, 14, 15]);
    }

    #[test]
    fn scatter_is_the_inverse_of_carve() {
        let pieces = vec![
            vec![ByteRun::new(0, 3), ByteRun::new(10, 2)],
            vec![ByteRun::new(3, 4)],
        ];
        let plan = plan_union(&pieces);
        assert_eq!(plan.union, vec![ByteRun::new(0, 7), ByteRun::new(10, 2)]);
        let src: Vec<u8> = (50u8..59).collect();
        let mut rebuilt = vec![0u8; plan.buffer_len()];
        for i in 0..pieces.len() {
            let piece = plan.carve(i, &src);
            plan.scatter(i, &piece, &mut rebuilt);
        }
        // Every byte covered by some piece round-trips.
        assert_eq!(rebuilt[0..3], src[0..3]);
        assert_eq!(rebuilt[3..7], src[3..7]);
        assert_eq!(rebuilt[7..9], src[7..9]);
    }

    #[test]
    fn disjoint_pieces_keep_separate_requests() {
        let plan = plan_union(&[vec![ByteRun::new(0, 4)], vec![ByteRun::new(100, 4)]]);
        assert_eq!(plan.requests(), 2);
        assert_eq!(plan.carves[1], vec![(4, 4)]);
    }

    #[test]
    fn repeated_indices_within_a_piece_are_not_double_charged() {
        // A gather of indices [0, 0, 2]: element 0 requested twice. The
        // union must charge its bytes once; the carve must replay it twice.
        let piece = vec![ByteRun::new(0, 4), ByteRun::new(0, 4), ByteRun::new(8, 4)];
        let plan = plan_union(&[piece]);
        assert_eq!(plan.union, vec![ByteRun::new(0, 4), ByteRun::new(8, 4)]);
        assert_eq!(plan.bytes(), 8, "duplicate offsets double-charged");
        let buf: Vec<u8> = (0u8..8).collect();
        assert_eq!(
            plan.carve(0, &buf),
            vec![0, 1, 2, 3, 0, 1, 2, 3, 4, 5, 6, 7]
        );
    }

    #[test]
    fn repeated_indices_across_pieces_share_one_union_run() {
        // Two ranks both gather element 0 — one disk read serves both.
        let plan = plan_union(&[vec![ByteRun::new(0, 4)], vec![ByteRun::new(0, 4)]]);
        assert_eq!(plan.requests(), 1);
        assert_eq!(plan.bytes(), 4);
        let buf = [9u8, 8, 7, 6];
        assert_eq!(plan.carve(0, &buf), plan.carve(1, &buf));
    }

    #[test]
    fn overlapping_runs_coalesce_and_carve_correctly() {
        let plan = plan_union(&[vec![ByteRun::new(0, 6), ByteRun::new(4, 8)]]);
        assert_eq!(plan.union, vec![ByteRun::new(0, 12)]);
        assert_eq!(plan.bytes(), 12);
        let buf: Vec<u8> = (0u8..12).collect();
        let mut want: Vec<u8> = (0u8..6).collect();
        want.extend(4u8..12);
        assert_eq!(plan.carve(0, &buf), want);
    }

    #[test]
    fn consecutive_index_runs_merge_into_one_carve_segment() {
        // A unit-run-per-element gather of consecutive indices: the carve
        // collapses to a single segment (one memcpy), byte-identically.
        let piece: Vec<ByteRun> = (0..64).map(|i| ByteRun::new(i * 4, 4)).collect();
        let plan = plan_union(&[piece]);
        assert_eq!(plan.union, vec![ByteRun::new(0, 256)]);
        assert_eq!(plan.carves[0], vec![(0, 256)]);
        let buf: Vec<u8> = (0..=255u8).collect();
        assert_eq!(plan.carve(0, &buf), buf);
    }

    #[test]
    fn scatter_with_duplicate_runs_is_last_writer_wins_and_consistent() {
        let piece = vec![ByteRun::new(0, 4), ByteRun::new(0, 4)];
        let plan = plan_union(&[piece]);
        let mut buf = vec![0u8; plan.buffer_len()];
        plan.scatter(0, &[1, 2, 3, 4, 5, 6, 7, 8], &mut buf);
        assert_eq!(buf, vec![5, 6, 7, 8]);
        // Carving back replays the surviving value for both repeats.
        assert_eq!(plan.carve(0, &buf), vec![5, 6, 7, 8, 5, 6, 7, 8]);
    }

    #[test]
    fn overflowing_runs_are_clamped_like_coalesce_runs_not_panicked() {
        let piece = vec![ByteRun {
            offset: u64::MAX - 4,
            len: 100,
        }];
        let plan = plan_union(&[piece]);
        assert_eq!(plan.union, vec![ByteRun::new(u64::MAX - 4, 4)]);
        assert_eq!(plan.carves[0], vec![(0, 4)]);
        let plan = plan_union(&[vec![ByteRun {
            offset: u64::MAX,
            len: 7,
        }]]);
        assert!(plan.union.is_empty());
        assert!(plan.carves[0].is_empty());
    }
}
