//! Local Array Files.
//!
//! A LAF (§2.3) is the disk-resident image of one processor's out-of-core
//! local array. This module adds element typing on top of the byte-level
//! [`LogicalDisk`]: element runs are expressed in element units and
//! converted to byte runs; payloads move as `f32`/`f64` vectors, which is
//! what the compute kernels and message payloads use.

use serde::{Deserialize, Serialize};

use crate::disk::{FileId, LogicalDisk};
use crate::error::{IoError, Result};
use crate::request::ByteRun;
use crate::IoCharge;

/// Element type stored in a local array file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ElemKind {
    /// 32-bit IEEE float — HPF `real`, the paper's element type.
    F32,
    /// 64-bit IEEE float — HPF `double precision`.
    F64,
}

impl ElemKind {
    /// Size of one element in bytes.
    pub fn size(self) -> usize {
        match self {
            ElemKind::F32 => 4,
            ElemKind::F64 => 8,
        }
    }
}

/// An element run: `len` consecutive elements starting at element `offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ElemRun {
    /// First element index.
    pub offset: u64,
    /// Number of elements.
    pub len: u64,
}

impl ElemRun {
    /// Construct a run in element units.
    pub fn new(offset: u64, len: u64) -> Self {
        ElemRun { offset, len }
    }

    fn to_bytes(self, elem: ElemKind) -> ByteRun {
        let s = elem.size() as u64;
        ByteRun::new(self.offset * s, self.len * s)
    }
}

/// Typed handle to one local array file on a processor's logical disk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalArrayFile {
    file: FileId,
    elem: ElemKind,
    len_elems: u64,
}

impl LocalArrayFile {
    /// Allocate a LAF of `len_elems` elements on `disk`.
    pub fn create(disk: &mut LogicalDisk, elem: ElemKind, len_elems: u64) -> Result<Self> {
        let file = disk.create_file(len_elems * elem.size() as u64)?;
        Ok(LocalArrayFile {
            file,
            elem,
            len_elems,
        })
    }

    /// Number of elements in the file.
    pub fn len(&self) -> u64 {
        self.len_elems
    }

    /// True when the file holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len_elems == 0
    }

    /// Element kind.
    pub fn elem(&self) -> ElemKind {
        self.elem
    }

    /// Underlying file id.
    pub fn file_id(&self) -> FileId {
        self.file
    }

    fn byte_runs(&self, runs: &[ElemRun]) -> Vec<ByteRun> {
        runs.iter().map(|r| r.to_bytes(self.elem)).collect()
    }

    /// Read element `runs` as `f32` values (file must be `F32`).
    pub fn read_f32(
        &self,
        disk: &mut LogicalDisk,
        runs: &[ElemRun],
        charge: &dyn IoCharge,
    ) -> Result<Vec<f32>> {
        self.read_f32_with(disk, runs, charge, crate::sieve::SievePolicy::Direct)
    }

    /// Read element `runs` as `f32` values under a sieving policy.
    pub fn read_f32_with(
        &self,
        disk: &mut LogicalDisk,
        runs: &[ElemRun],
        charge: &dyn IoCharge,
        policy: crate::sieve::SievePolicy,
    ) -> Result<Vec<f32>> {
        assert_eq!(self.elem, ElemKind::F32, "read_f32 on non-f32 file");
        // Stage through a pooled buffer so repeated slab reads reuse one
        // allocation instead of growing a fresh Vec per call.
        let mut bytes = disk.take_buf();
        let read =
            disk.read_runs_with(self.file, &self.byte_runs(runs), &mut bytes, charge, policy);
        let out = read.and_then(|_| bytes_to_f32(&bytes));
        disk.put_buf(bytes);
        out
    }

    /// Write `data` to element `runs` (file must be `F32`; total run length
    /// must equal `data.len()`).
    pub fn write_f32(
        &self,
        disk: &mut LogicalDisk,
        runs: &[ElemRun],
        data: &[f32],
        charge: &dyn IoCharge,
    ) -> Result<()> {
        self.write_f32_with(disk, runs, data, charge, crate::sieve::SievePolicy::Direct)
    }

    /// Write `data` to element `runs` under a sieving policy (strided
    /// writes may become a read-modify-write of the spanning extent).
    pub fn write_f32_with(
        &self,
        disk: &mut LogicalDisk,
        runs: &[ElemRun],
        data: &[f32],
        charge: &dyn IoCharge,
        policy: crate::sieve::SievePolicy,
    ) -> Result<()> {
        assert_eq!(self.elem, ElemKind::F32, "write_f32 on non-f32 file");
        let bytes = f32_to_bytes(data);
        disk.write_runs_with(self.file, &self.byte_runs(runs), &bytes, charge, policy)?;
        Ok(())
    }

    /// Read the whole file as `f32` in storage order.
    pub fn read_all_f32(&self, disk: &mut LogicalDisk, charge: &dyn IoCharge) -> Result<Vec<f32>> {
        self.read_f32(disk, &[ElemRun::new(0, self.len_elems)], charge)
    }

    /// Overwrite the whole file from `data` in storage order.
    pub fn write_all_f32(
        &self,
        disk: &mut LogicalDisk,
        data: &[f32],
        charge: &dyn IoCharge,
    ) -> Result<()> {
        assert_eq!(data.len() as u64, self.len_elems, "full write wrong length");
        self.write_f32(disk, &[ElemRun::new(0, self.len_elems)], data, charge)
    }
}

/// Reinterpret little-endian bytes as `f32`s.
pub fn bytes_to_f32(bytes: &[u8]) -> Result<Vec<f32>> {
    if !bytes.len().is_multiple_of(4) {
        return Err(IoError::BadElementSize {
            bytes: bytes.len(),
            elem: 4,
        });
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

/// Serialize `f32`s as little-endian bytes.
pub fn f32_to_bytes(data: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * 4);
    for v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NoCharge;

    #[test]
    fn f32_roundtrip_through_file() {
        let mut disk = LogicalDisk::in_memory();
        let laf = LocalArrayFile::create(&mut disk, ElemKind::F32, 8).unwrap();
        let data = [1.0f32, -2.5, 3.25, f32::MIN_POSITIVE];
        laf.write_f32(&mut disk, &[ElemRun::new(2, 4)], &data, &NoCharge)
            .unwrap();
        let got = laf
            .read_f32(&mut disk, &[ElemRun::new(2, 4)], &NoCharge)
            .unwrap();
        assert_eq!(got, data);
        // Untouched elements are zero.
        let all = laf.read_all_f32(&mut disk, &NoCharge).unwrap();
        assert_eq!(all[0], 0.0);
        assert_eq!(all[7], 0.0);
    }

    #[test]
    fn strided_element_runs_map_to_byte_runs() {
        let mut disk = LogicalDisk::in_memory();
        let laf = LocalArrayFile::create(&mut disk, ElemKind::F32, 16).unwrap();
        laf.write_all_f32(
            &mut disk,
            &(0..16).map(|i| i as f32).collect::<Vec<_>>(),
            &NoCharge,
        )
        .unwrap();
        // Read elements 0..2 and 8..10 — two separate requests.
        let before = disk.stats().read_requests;
        let got = laf
            .read_f32(
                &mut disk,
                &[ElemRun::new(0, 2), ElemRun::new(8, 2)],
                &NoCharge,
            )
            .unwrap();
        assert_eq!(got, vec![0.0, 1.0, 8.0, 9.0]);
        assert_eq!(disk.stats().read_requests - before, 2);
    }

    #[test]
    fn adjacent_element_runs_become_one_request() {
        let mut disk = LogicalDisk::in_memory();
        let laf = LocalArrayFile::create(&mut disk, ElemKind::F32, 16).unwrap();
        let before = disk.stats().read_requests;
        let _ = laf
            .read_f32(
                &mut disk,
                &[ElemRun::new(0, 4), ElemRun::new(4, 4)],
                &NoCharge,
            )
            .unwrap();
        assert_eq!(disk.stats().read_requests - before, 1);
    }

    #[test]
    fn bytes_f32_conversions() {
        let v = vec![0.5f32, -1.0, 1e30];
        let b = f32_to_bytes(&v);
        assert_eq!(bytes_to_f32(&b).unwrap(), v);
        assert!(matches!(
            bytes_to_f32(&[1, 2, 3]),
            Err(IoError::BadElementSize { .. })
        ));
    }

    #[test]
    fn elem_sizes() {
        assert_eq!(ElemKind::F32.size(), 4);
        assert_eq!(ElemKind::F64.size(), 8);
    }

    #[test]
    #[should_panic(expected = "full write wrong length")]
    fn full_write_checks_length() {
        let mut disk = LogicalDisk::in_memory();
        let laf = LocalArrayFile::create(&mut disk, ElemKind::F32, 4).unwrap();
        laf.write_all_f32(&mut disk, &[0.0; 3], &NoCharge).unwrap();
    }
}
