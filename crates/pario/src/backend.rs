//! Storage backends for logical disks.
//!
//! [`MemBackend`] keeps file contents in memory — fast and hermetic, the
//! default for tests and benchmark sweeps. [`DiskBackend`] stores each file
//! as a real file under a private scratch directory, demonstrating the
//! system against an actual filesystem; the scratch directory is removed on
//! drop.

use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::{IoError, Result};

/// Abstract byte store addressed by `(file id, byte offset)`.
///
/// Files are created with a fixed size and are dense (zero-filled). This
/// mirrors a local array file, whose size is known from the out-of-core
/// local array's shape at allocation time.
pub trait StorageBackend: Send {
    /// Create file `id` with `len` zero bytes. `id` must be fresh.
    fn create(&mut self, id: u64, len: u64) -> Result<()>;
    /// Length of file `id` in bytes.
    fn len(&self, id: u64) -> Result<u64>;
    /// Read `buf.len()` bytes starting at `offset`.
    fn read_at(&mut self, id: u64, offset: u64, buf: &mut [u8]) -> Result<()>;
    /// Write `data` starting at `offset`.
    fn write_at(&mut self, id: u64, offset: u64, data: &[u8]) -> Result<()>;
    /// Remove file `id`, releasing its storage.
    fn remove(&mut self, id: u64) -> Result<()>;
}

fn check_bounds(id: u64, offset: u64, len: usize, file_len: u64) -> Result<()> {
    // `offset + len` can wrap for adversarial offsets near `u64::MAX`, which
    // would make a far-out-of-bounds access look in-bounds. Saturate instead:
    // any overflowing request is certainly past the end of the file.
    let needed = offset.saturating_add(len as u64);
    if needed > file_len {
        Err(IoError::OutOfBounds {
            file: id,
            needed,
            len: file_len,
        })
    } else {
        Ok(())
    }
}

/// In-memory backend: each file is a `Vec<u8>`.
#[derive(Debug, Default)]
pub struct MemBackend {
    files: HashMap<u64, Vec<u8>>,
}

impl MemBackend {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StorageBackend for MemBackend {
    fn create(&mut self, id: u64, len: u64) -> Result<()> {
        assert!(
            !self.files.contains_key(&id),
            "file id {id} created twice on one disk"
        );
        self.files.insert(id, vec![0u8; len as usize]);
        Ok(())
    }

    fn len(&self, id: u64) -> Result<u64> {
        self.files
            .get(&id)
            .map(|f| f.len() as u64)
            .ok_or(IoError::NoSuchFile { file: id })
    }

    fn read_at(&mut self, id: u64, offset: u64, buf: &mut [u8]) -> Result<()> {
        let file = self
            .files
            .get(&id)
            .ok_or(IoError::NoSuchFile { file: id })?;
        check_bounds(id, offset, buf.len(), file.len() as u64)?;
        let start = offset as usize;
        buf.copy_from_slice(&file[start..start + buf.len()]);
        Ok(())
    }

    fn write_at(&mut self, id: u64, offset: u64, data: &[u8]) -> Result<()> {
        let file = self
            .files
            .get_mut(&id)
            .ok_or(IoError::NoSuchFile { file: id })?;
        check_bounds(id, offset, data.len(), file.len() as u64)?;
        let start = offset as usize;
        file[start..start + data.len()].copy_from_slice(data);
        Ok(())
    }

    fn remove(&mut self, id: u64) -> Result<()> {
        self.files
            .remove(&id)
            .map(|_| ())
            .ok_or(IoError::NoSuchFile { file: id })
    }
}

static SCRATCH_COUNTER: AtomicU64 = AtomicU64::new(0);

/// On-disk backend: one real file per file id under a private scratch
/// directory in the system temp dir. The directory is deleted when the
/// backend is dropped.
#[derive(Debug)]
pub struct DiskBackend {
    dir: PathBuf,
    files: HashMap<u64, (fs::File, u64)>,
}

impl DiskBackend {
    /// Create a fresh scratch directory named after the process, a global
    /// counter and a label (e.g. the processor rank).
    pub fn new(label: &str) -> Result<Self> {
        let n = SCRATCH_COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("pario-{}-{}-{}", std::process::id(), n, label));
        fs::create_dir_all(&dir)?;
        Ok(DiskBackend {
            dir,
            files: HashMap::new(),
        })
    }

    fn path(&self, id: u64) -> PathBuf {
        self.dir.join(format!("laf-{id}.bin"))
    }
}

impl Drop for DiskBackend {
    fn drop(&mut self) {
        self.files.clear(); // close handles before unlinking
        let _ = fs::remove_dir_all(&self.dir);
    }
}

impl StorageBackend for DiskBackend {
    fn create(&mut self, id: u64, len: u64) -> Result<()> {
        assert!(
            !self.files.contains_key(&id),
            "file id {id} created twice on one disk"
        );
        let file = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(self.path(id))?;
        file.set_len(len)?;
        self.files.insert(id, (file, len));
        Ok(())
    }

    fn len(&self, id: u64) -> Result<u64> {
        self.files
            .get(&id)
            .map(|(_, len)| *len)
            .ok_or(IoError::NoSuchFile { file: id })
    }

    fn read_at(&mut self, id: u64, offset: u64, buf: &mut [u8]) -> Result<()> {
        use std::os::unix::fs::FileExt;
        let (file, len) = self
            .files
            .get(&id)
            .ok_or(IoError::NoSuchFile { file: id })?;
        check_bounds(id, offset, buf.len(), *len)?;
        file.read_exact_at(buf, offset)?;
        Ok(())
    }

    fn write_at(&mut self, id: u64, offset: u64, data: &[u8]) -> Result<()> {
        use std::os::unix::fs::FileExt;
        let (file, len) = self
            .files
            .get(&id)
            .ok_or(IoError::NoSuchFile { file: id })?;
        check_bounds(id, offset, data.len(), *len)?;
        file.write_all_at(data, offset)?;
        Ok(())
    }

    fn remove(&mut self, id: u64) -> Result<()> {
        self.files
            .remove(&id)
            .ok_or(IoError::NoSuchFile { file: id })?;
        fs::remove_file(self.path(id))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(backend: &mut dyn StorageBackend) {
        backend.create(1, 16).unwrap();
        assert_eq!(backend.len(1).unwrap(), 16);

        // Fresh files read as zeros.
        let mut buf = [0xFFu8; 4];
        backend.read_at(1, 0, &mut buf).unwrap();
        assert_eq!(buf, [0, 0, 0, 0]);

        backend.write_at(1, 4, &[1, 2, 3, 4]).unwrap();
        backend.read_at(1, 2, &mut buf).unwrap();
        assert_eq!(buf, [0, 0, 1, 2]);

        // Bounds are enforced.
        assert!(matches!(
            backend.read_at(1, 14, &mut buf),
            Err(IoError::OutOfBounds { .. })
        ));
        assert!(matches!(
            backend.write_at(1, 13, &[0; 4]),
            Err(IoError::OutOfBounds { .. })
        ));
        // Offsets near u64::MAX must not wrap around into bounds.
        assert!(matches!(
            backend.read_at(1, u64::MAX - 2, &mut buf),
            Err(IoError::OutOfBounds { .. })
        ));
        assert!(matches!(
            backend.write_at(1, u64::MAX - 2, &[0; 4]),
            Err(IoError::OutOfBounds { .. })
        ));
        assert!(matches!(
            backend.len(42),
            Err(IoError::NoSuchFile { file: 42 })
        ));

        backend.remove(1).unwrap();
        assert!(matches!(backend.len(1), Err(IoError::NoSuchFile { .. })));
    }

    #[test]
    fn mem_backend_semantics() {
        exercise(&mut MemBackend::new());
    }

    #[test]
    fn disk_backend_semantics() {
        exercise(&mut DiskBackend::new("test").unwrap());
    }

    #[test]
    fn disk_backend_cleans_up_scratch_dir() {
        let dir;
        {
            let mut b = DiskBackend::new("cleanup").unwrap();
            b.create(7, 128).unwrap();
            dir = b.dir.clone();
            assert!(dir.exists());
        }
        assert!(!dir.exists(), "scratch dir should be removed on drop");
    }

    #[test]
    fn backends_agree_on_random_ops() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut mem = MemBackend::new();
        let mut disk = DiskBackend::new("fuzz").unwrap();
        let len = 1024u64;
        mem.create(0, len).unwrap();
        disk.create(0, len).unwrap();
        for _ in 0..200 {
            let off = rng.gen_range(0..len - 32);
            let n = rng.gen_range(1..32usize);
            if rng.gen_bool(0.5) {
                let data: Vec<u8> = (0..n).map(|_| rng.gen()).collect();
                mem.write_at(0, off, &data).unwrap();
                disk.write_at(0, off, &data).unwrap();
            } else {
                let mut a = vec![0u8; n];
                let mut b = vec![0u8; n];
                mem.read_at(0, off, &mut a).unwrap();
                disk.read_at(0, off, &mut b).unwrap();
                assert_eq!(a, b);
            }
        }
    }
}
