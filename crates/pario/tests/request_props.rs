//! Property tests: request coalescing invariants.
//!
//! `coalesce_runs` is the arithmetic every charged request count passes
//! through, so it must be total and canonical: never panic (even on
//! adversarial struct-literal runs whose `offset + len` exceeds `u64`),
//! produce the same answer regardless of input order, and be idempotent —
//! coalescing an already-coalesced list changes nothing.

use proptest::prelude::*;

use pario::{coalesce_runs, plan_union, total_bytes, ByteRun};

/// Arbitrary runs including adversarial near-`u64::MAX` extents that only
/// struct-literal construction can produce.
fn arb_run() -> impl Strategy<Value = ByteRun> {
    prop_oneof![
        // Ordinary small runs (dense, so merges actually happen).
        (0u64..256, 0u64..32).prop_map(|(offset, len)| ByteRun { offset, len }),
        // Runs hugging the top of the address space, lengths that overflow.
        (0u64..65, 0u64..200).prop_map(|(d, len)| ByteRun {
            offset: u64::MAX - d,
            len,
        }),
    ]
}

/// Deterministic order-shuffle driven by a seed (no RNG in the shim needed:
/// rotating and reversing reaches enough distinct permutations).
fn permute(runs: &[ByteRun], seed: u64) -> Vec<ByteRun> {
    let mut v = runs.to_vec();
    if v.is_empty() {
        return v;
    }
    let rot = (seed as usize) % v.len();
    v.rotate_left(rot);
    if seed % 2 == 1 {
        v.reverse();
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn coalescing_is_total_canonical_and_idempotent(
        runs in proptest::collection::vec(arb_run(), 0..24),
        seed in 0u64..16,
    ) {
        // Never panics, whatever the input (including overflow literals).
        let once = coalesce_runs(&runs);

        // Output is canonical: sorted, non-empty runs, no two touching.
        for w in once.windows(2) {
            prop_assert!(w[0].end() < w[1].offset, "touching runs survived: {once:?}");
        }
        prop_assert!(once.iter().all(|r| r.len > 0));

        // Idempotent: coalescing a coalesced list is the identity.
        prop_assert_eq!(&coalesce_runs(&once), &once);

        // Order-insensitive: any permutation of the input coalesces the same.
        prop_assert_eq!(&coalesce_runs(&permute(&runs, seed)), &once);

        // Coverage never grows: merged extents are bounded by the input sum.
        prop_assert!(total_bytes(&once) <= total_bytes(&runs));
    }

    /// Repeated-index request streams (the shape irregular gathers emit):
    /// the union plan charges each file byte once however often pieces
    /// repeat it, and every carve replays its piece's bytes exactly.
    #[test]
    fn union_plans_never_double_charge_repeated_index_streams(
        base in proptest::collection::vec((0u64..64, 1u64..8), 1..16),
        npieces in 1usize..4,
        seed in 0u64..16,
    ) {
        // Build pieces that heavily share and repeat runs.
        let runs: Vec<ByteRun> = base
            .iter()
            .map(|&(o, l)| ByteRun { offset: o * 4, len: l })
            .collect();
        let pieces: Vec<Vec<ByteRun>> = (0..npieces)
            .map(|i| {
                let mut p = permute(&runs, seed + i as u64);
                // Duplicate a run inside the piece: a repeated index.
                p.push(p[i % p.len()]);
                p
            })
            .collect();
        let plan = plan_union(&pieces);

        // Union bytes equal the coalesced coverage of everything requested —
        // duplicates across or within pieces charge nothing extra.
        let all: Vec<ByteRun> = pieces.iter().flatten().copied().collect();
        prop_assert_eq!(plan.bytes(), total_bytes(&coalesce_runs(&all)));
        prop_assert_eq!(plan.requests(), coalesce_runs(&all).len() as u64);

        // Each carve reproduces its piece byte-for-byte from a union buffer
        // whose contents encode absolute file offsets.
        let union = coalesce_runs(&all);
        let mut buf = Vec::with_capacity(plan.buffer_len());
        for r in &union {
            for b in 0..r.len {
                buf.push(((r.offset + b) % 251) as u8);
            }
        }
        for (i, piece) in pieces.iter().enumerate() {
            let got = plan.carve(i, &buf);
            let mut want = Vec::new();
            for r in piece {
                for b in 0..r.len {
                    want.push(((r.offset + b) % 251) as u8);
                }
            }
            prop_assert_eq!(&got, &want, "piece {} carve mismatch", i);
        }
    }
}
