//! Property tests: data sieving must be invisible in the data — any access
//! serviced by a spanning request returns/stores exactly the bytes the
//! direct path would, on both backends.

use proptest::prelude::*;

use pario::{ElemKind, ElemRun, LocalArrayFile, LogicalDisk, NoCharge, SievePolicy};

fn arb_runs(file_elems: u64) -> impl Strategy<Value = Vec<ElemRun>> {
    // Sorted, disjoint element runs inside the file.
    proptest::collection::vec((0u64..file_elems, 1u64..8), 1..10).prop_map(move |raw| {
        let mut runs: Vec<ElemRun> = Vec::new();
        let mut cursor = 0u64;
        for (gap, len) in raw {
            let offset = cursor + gap % 16;
            if offset >= file_elems {
                break;
            }
            let len = len.min(file_elems - offset);
            runs.push(ElemRun::new(offset, len));
            cursor = offset + len + 1; // at least one element of gap
            if cursor >= file_elems {
                break;
            }
        }
        if runs.is_empty() {
            runs.push(ElemRun::new(0, 1));
        }
        runs
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sieved_reads_return_direct_data(runs in arb_runs(256)) {
        let elems = 256u64;
        let mut disk = LogicalDisk::in_memory();
        let laf = LocalArrayFile::create(&mut disk, ElemKind::F32, elems).unwrap();
        let data: Vec<f32> = (0..elems).map(|i| i as f32 * 1.5 - 7.0).collect();
        laf.write_all_f32(&mut disk, &data, &NoCharge).unwrap();

        let direct = laf.read_f32(&mut disk, &runs, &NoCharge).unwrap();
        for policy in [
            SievePolicy::Always,
            SievePolicy::WasteBound { max_waste: 2.0 },
            SievePolicy::CostBased { startup: 1e-2, bandwidth: 1e6 },
        ] {
            let sieved = laf.read_f32_with(&mut disk, &runs, &NoCharge, policy).unwrap();
            prop_assert_eq!(&sieved, &direct, "{:?}", policy);
        }
    }

    #[test]
    fn sieved_writes_store_direct_bytes(runs in arb_runs(128), seed in 0u64..1000) {
        let elems = 128u64;
        let total: u64 = runs.iter().map(|r| r.len).sum();
        let payload: Vec<f32> = (0..total).map(|i| ((i * 31 + seed) % 97) as f32).collect();
        let background: Vec<f32> = (0..elems).map(|i| -(i as f32)).collect();

        let run_with = |policy: SievePolicy| -> Vec<f32> {
            let mut disk = LogicalDisk::in_memory();
            let laf = LocalArrayFile::create(&mut disk, ElemKind::F32, elems).unwrap();
            laf.write_all_f32(&mut disk, &background, &NoCharge).unwrap();
            laf.write_f32_with(&mut disk, &runs, &payload, &NoCharge, policy)
                .unwrap();
            laf.read_all_f32(&mut disk, &NoCharge).unwrap()
        };

        let direct = run_with(SievePolicy::Direct);
        let sieved = run_with(SievePolicy::Always);
        prop_assert_eq!(direct, sieved);
    }

    #[test]
    fn sieving_never_issues_more_requests(runs in arb_runs(256)) {
        let elems = 256u64;
        let count_reqs = |policy: SievePolicy| -> u64 {
            let mut disk = LogicalDisk::in_memory();
            let laf = LocalArrayFile::create(&mut disk, ElemKind::F32, elems).unwrap();
            let _ = laf.read_f32_with(&mut disk, &runs, &NoCharge, policy).unwrap();
            disk.stats().read_requests
        };
        let direct = count_reqs(SievePolicy::Direct);
        let always = count_reqs(SievePolicy::Always);
        prop_assert!(always <= direct);
        prop_assert!(always <= 1 || always == direct);
    }
}
