//! Property tests: `DiskStats` invariants under random workloads.
//!
//! Whatever sequence of section reads, buffered writes and flushes runs
//! against a logical disk — cached or not — the counters must stay
//! internally consistent: write-backs are a subset of writes, hit/miss
//! accounting matches the cache mode, and snapshots only ever grow.

use proptest::prelude::*;

use pario::{coalesce_runs, DiskStats, ElemKind, ElemRun, LocalArrayFile, LogicalDisk, NoCharge};

const FILE_ELEMS: u64 = 128;

/// One step of a random workload.
#[derive(Debug, Clone)]
enum Op {
    Read(Vec<ElemRun>),
    Write(Vec<ElemRun>),
    Flush,
}

fn arb_runs() -> impl Strategy<Value = Vec<ElemRun>> {
    proptest::collection::vec((0u64..FILE_ELEMS, 1u64..12), 1..6).prop_map(|raw| {
        let mut runs: Vec<ElemRun> = Vec::new();
        let mut cursor = 0u64;
        for (gap, len) in raw {
            let offset = cursor + gap % 24;
            if offset >= FILE_ELEMS {
                break;
            }
            runs.push(ElemRun::new(offset, len.min(FILE_ELEMS - offset)));
            cursor = offset + runs.last().unwrap().len + 1;
            if cursor >= FILE_ELEMS {
                break;
            }
        }
        if runs.is_empty() {
            runs.push(ElemRun::new(0, 1));
        }
        runs
    })
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        arb_runs().prop_map(Op::Read),
        arb_runs().prop_map(Op::Write),
        arb_runs().prop_map(Op::Read),
        arb_runs().prop_map(Op::Write),
        Just(Op::Flush),
    ]
}

/// Monotonicity: every counter of `after` is >= its `before` value.
fn assert_monotone(before: &DiskStats, after: &DiskStats) {
    let d = after.delta(before);
    // delta saturates; recomputing forward must reproduce `after` exactly,
    // which fails if any counter ever decreased.
    let recomposed = DiskStats {
        read_requests: before.read_requests + d.read_requests,
        bytes_read: before.bytes_read + d.bytes_read,
        write_requests: before.write_requests + d.write_requests,
        bytes_written: before.bytes_written + d.bytes_written,
        cache_hits: before.cache_hits + d.cache_hits,
        cache_hit_bytes: before.cache_hit_bytes + d.cache_hit_bytes,
        cache_misses: before.cache_misses + d.cache_misses,
        write_back_requests: before.write_back_requests + d.write_back_requests,
        write_back_bytes: before.write_back_bytes + d.write_back_bytes,
        evicted_bytes: before.evicted_bytes + d.evicted_bytes,
    };
    assert_eq!(&recomposed, after, "a DiskStats counter went backwards");
}

fn run_workload(ops: &[Op], cache_budget: Option<usize>) -> (DiskStats, u64) {
    let mut disk = LogicalDisk::in_memory();
    let laf = LocalArrayFile::create(&mut disk, ElemKind::F32, FILE_ELEMS).unwrap();
    let init: Vec<f32> = (0..FILE_ELEMS).map(|i| i as f32).collect();
    laf.write_all_f32(&mut disk, &init, &NoCharge).unwrap();
    if let Some(budget) = cache_budget {
        disk.enable_cache(budget);
    }
    let baseline = disk.stats();
    let mut prev = baseline;
    let mut read_runs_total = 0u64;
    for op in ops {
        match op {
            Op::Read(runs) => {
                let byte_runs: Vec<_> = runs
                    .iter()
                    .map(|r| pario::ByteRun::new(r.offset * 4, r.len * 4))
                    .collect();
                read_runs_total += coalesce_runs(&byte_runs).len() as u64;
                laf.read_f32(&mut disk, runs, &NoCharge).unwrap();
            }
            Op::Write(runs) => {
                let total: u64 = runs.iter().map(|r| r.len).sum();
                let payload: Vec<f32> = (0..total).map(|i| i as f32 * 0.5).collect();
                laf.write_f32(&mut disk, runs, &payload, &NoCharge).unwrap();
            }
            Op::Flush => disk.flush_cache(&NoCharge).unwrap(),
        }
        let now = disk.stats();
        assert_monotone(&prev, &now);
        prev = now;
    }
    disk.flush_cache(&NoCharge).unwrap();
    (disk.stats().delta(&baseline), read_runs_total)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn disk_stats_invariants_hold(ops in proptest::collection::vec(arb_op(), 1..20)) {
        for cache_budget in [None, Some(64), Some(512), Some(1 << 20)] {
            let (s, read_runs) = run_workload(&ops, cache_budget);

            // Write-backs are a subset of the writes that reached the disk.
            prop_assert!(
                s.write_back_requests <= s.write_requests,
                "{:?}: {s:?}", cache_budget
            );
            prop_assert!(
                s.write_back_bytes <= s.bytes_written,
                "{:?}: {s:?}", cache_budget
            );

            match cache_budget {
                None => {
                    // No cache: no hit/miss/write-back accounting at all.
                    prop_assert_eq!(s.cache_hits, 0);
                    prop_assert_eq!(s.cache_hit_bytes, 0);
                    prop_assert_eq!(s.cache_misses, 0);
                    prop_assert_eq!(s.write_back_requests, 0);
                    prop_assert_eq!(s.write_back_bytes, 0);
                    prop_assert_eq!(s.evicted_bytes, 0);
                }
                Some(_) => {
                    // Every coalesced read run is classified exactly once.
                    prop_assert_eq!(
                        s.cache_hits + s.cache_misses, read_runs,
                        "hit/miss accounting inconsistent: {:?}", s
                    );
                    // All buffered writes were flushed by the end, so every
                    // write request the workload caused was a write-back.
                    prop_assert_eq!(s.write_back_requests, s.write_requests);
                    prop_assert_eq!(s.write_back_bytes, s.bytes_written);
                }
            }
        }
    }
}
