//! Minimal plotting: ASCII charts for the terminal and gnuplot-ready data
//! files, so `fig10` can emit the figure as well as the table.

use std::fmt::Write as _;

/// One named series of (x-label, value) points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend name.
    pub name: String,
    /// Points in x order.
    pub points: Vec<(String, f64)>,
}

impl Series {
    /// Build a series from labels and values.
    pub fn new(name: &str, points: Vec<(String, f64)>) -> Self {
        Series {
            name: name.to_string(),
            points,
        }
    }
}

/// Render grouped horizontal ASCII bars, one block per x-label, one bar per
/// series, scaled to `width` characters at the global maximum.
pub fn ascii_bars(title: &str, series: &[Series], width: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let max = series
        .iter()
        .flat_map(|s| s.points.iter().map(|(_, v)| *v))
        .fold(0.0f64, f64::max);
    if max <= 0.0 || series.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    let name_w = series.iter().map(|s| s.name.len()).max().unwrap_or(0);
    let label_w = series
        .iter()
        .flat_map(|s| s.points.iter().map(|(l, _)| l.len()))
        .max()
        .unwrap_or(0);
    let npoints = series[0].points.len();
    for i in 0..npoints {
        for s in series {
            let Some((label, v)) = s.points.get(i) else {
                continue;
            };
            let bar = ((v / max) * width as f64).round() as usize;
            let _ = writeln!(
                out,
                "{label:>label_w$}  {:<name_w$}  {}{} {v:.2}",
                s.name,
                "█".repeat(bar),
                if bar == 0 { "▏" } else { "" },
            );
        }
        if i + 1 < npoints {
            out.push('\n');
        }
    }
    out
}

/// Render a gnuplot-ready data file: one row per x-label, one column per
/// series, `#`-prefixed header.
pub fn gnuplot_dat(series: &[Series]) -> String {
    let mut out = String::from("# x");
    for s in series {
        let _ = write!(out, "\t{}", s.name.replace(' ', "_"));
    }
    out.push('\n');
    let npoints = series.first().map(|s| s.points.len()).unwrap_or(0);
    for i in 0..npoints {
        let label = &series[0].points[i].0;
        let _ = write!(out, "{label}");
        for s in series {
            match s.points.get(i) {
                Some((_, v)) => {
                    let _ = write!(out, "\t{v:.4}");
                }
                None => out.push_str("\t?"),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Series> {
        vec![
            Series::new(
                "4 procs",
                vec![
                    ("1".into(), 931.9),
                    ("1/2".into(), 947.3),
                    ("1/8".into(), 1039.6),
                ],
            ),
            Series::new(
                "64 procs",
                vec![
                    ("1".into(), 807.5),
                    ("1/2".into(), 823.0),
                    ("1/8".into(), 915.6),
                ],
            ),
        ]
    }

    #[test]
    fn ascii_bars_scale_to_max() {
        let s = ascii_bars("fig", &sample(), 20);
        assert!(s.starts_with("fig\n"));
        // The global max (1039.6) gets the full width.
        let max_line = s.lines().find(|l| l.contains("1039.60")).unwrap();
        assert_eq!(max_line.matches('█').count(), 20);
        // Smaller values get proportionally fewer blocks.
        let small = s.lines().find(|l| l.contains("807.50")).unwrap();
        assert!(small.matches('█').count() < 20);
        // Every series appears for every label.
        assert_eq!(s.matches("procs").count(), 6);
    }

    #[test]
    fn ascii_bars_empty_is_graceful() {
        assert!(ascii_bars("t", &[], 10).contains("no data"));
        let zero = vec![Series::new("z", vec![("a".into(), 0.0)])];
        assert!(ascii_bars("t", &zero, 10).contains("no data"));
    }

    #[test]
    fn gnuplot_dat_shape() {
        let dat = gnuplot_dat(&sample());
        let lines: Vec<&str> = dat.lines().collect();
        assert_eq!(lines[0], "# x\t4_procs\t64_procs");
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("1\t931.9000\t807.5000"));
    }
}
