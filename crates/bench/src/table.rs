//! Plain-text table formatting for experiment output.

/// A simple right-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        TextTable {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cell count must match the headers).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "cell count");
        self.rows.push(cells);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for c in 0..ncols {
                if c > 0 {
                    line.push_str("  ");
                }
                let w = widths[c];
                line.push_str(&format!("{:>w$}", cells[c]));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format seconds like the paper's tables (two decimals).
pub fn secs(t: f64) -> String {
    format!("{t:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["Slab Ratio", "Col. slab", "Row slab"]);
        t.row(vec!["1/8".into(), "1045.84".into(), "239.97".into()]);
        t.row(vec!["1".into(), "923.11".into(), "194.15".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Slab Ratio"));
        assert!(lines[2].ends_with("239.97"));
        // Columns align: all lines same length.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "cell count")]
    fn wrong_arity_panics() {
        TextTable::new(&["a", "b"]).row(vec!["x".into()]);
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(secs(1045.8421), "1045.84");
    }
}
