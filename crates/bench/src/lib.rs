//! # ooc-bench — the experiment harness
//!
//! Reproduces the paper's evaluation. Each table/figure has a binary that
//! prints the same rows the paper reports, driven by the functions here:
//!
//! * `cargo run --release -p ooc-bench --bin table1` — column vs row slab
//!   vs in-core times (Table 1);
//! * `cargo run --release -p ooc-bench --bin table2` — memory allocation
//!   between competing arrays (Table 2);
//! * `cargo run --release -p ooc-bench --bin fig10` — slab-ratio sweep of
//!   the column version (Figure 10);
//! * `cargo run --release -p ooc-bench --bin ablation` — policy and
//!   reorganization ablations.
//!
//! Times are **simulated seconds** under the Touchstone-Delta cost model;
//! all I/O and message counts are measured from real execution.

pub mod harness;
pub mod plot;
pub mod table;

pub use harness::{
    gaxpy_hir, peak_rss_bytes, run_incore_matmul, run_matmul, ExperimentRow, MatmulSetup,
};
pub use table::TextTable;

/// The guarded-runtime shape the `oocd` / `oocload` bench pair run under.
/// Both binaries build their [`ooc_sched::ServeConfig`] from this one
/// function so an `oocload`-embedded daemon and an externally launched
/// `oocd` fed the same trace produce byte-identical artifacts.
pub fn daemon_serve_config(seed: u64) -> ooc_sched::ServeConfig {
    ooc_sched::ServeConfig {
        domain: ooc_sched::DomainConfig {
            policy: ooc_sched::Policy::FairShare,
            seed,
            hang_chance: 0.1,
            watchdog_quantum: 4.0,
            deadline_factor: 6.0,
            max_retries: 2,
            backoff_base: 0.5,
            ..ooc_sched::DomainConfig::default()
        },
        sample_every: 5.0,
        read_timeout: Some(std::time::Duration::from_secs(5)),
        ..ooc_sched::ServeConfig::default()
    }
}
