//! # ooc-bench — the experiment harness
//!
//! Reproduces the paper's evaluation. Each table/figure has a binary that
//! prints the same rows the paper reports, driven by the functions here:
//!
//! * `cargo run --release -p ooc-bench --bin table1` — column vs row slab
//!   vs in-core times (Table 1);
//! * `cargo run --release -p ooc-bench --bin table2` — memory allocation
//!   between competing arrays (Table 2);
//! * `cargo run --release -p ooc-bench --bin fig10` — slab-ratio sweep of
//!   the column version (Figure 10);
//! * `cargo run --release -p ooc-bench --bin ablation` — policy and
//!   reorganization ablations.
//!
//! Times are **simulated seconds** under the Touchstone-Delta cost model;
//! all I/O and message counts are measured from real execution.

pub mod harness;
pub mod plot;
pub mod table;

pub use harness::{
    gaxpy_hir, peak_rss_bytes, run_incore_matmul, run_matmul, ExperimentRow, MatmulSetup,
};
pub use table::TextTable;
