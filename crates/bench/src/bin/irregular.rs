//! Inspector-reuse amortization bench for the irregular (indirection-array)
//! gather path.
//!
//! An `A(idx(i))` gather pays two distinct costs: the **inspector** (read
//! the indirection array, exchange want-lists, coalesce serve runs) and the
//! **executor** (drive the cached schedule through one of the three I/O
//! methods). The inspector's product — the [`ooc_array::IrregSchedule`] —
//! is valid for as long as the descriptors and index contents stand still,
//! so iterative codes pay it once. This bench measures exactly that
//! amortization on the Touchstone-Delta cost model: `ITERS` gather
//! iterations with the schedule rebuilt every time (1-shot) versus
//! inspected once and reused, per method, per rank count. The reused
//! ladder must come out at least 2× cheaper.
//!
//! Every rung is run on the threaded engine, on a worker pool, and on both
//! again under chaos fault injection; all four must agree bitwise (chaos
//! may add simulated retry time, never change data). An end-to-end SpMV
//! at 8 ranks through the compiled pipeline closes the loop.
//!
//! Usage: `cargo run --release -p ooc-bench --bin irregular [--smoke]
//! [--out FILE]` (default FILE = BENCH_irregular.json). The JSON contains
//! only simulated quantities, so two invocations produce byte-identical
//! files — CI diffs them.

use dmsim::{Engine, FaultConfig, Machine, MachineConfig};
use ooc_array::irreg::{gather_with, inspect, inspect_counts, irreg_counts};
use ooc_array::{ArrayDesc, ArrayId, DimDist, DistKind, Distribution, OocEnv, ProcGrid, Shape};
use ooc_bench::TextTable;
use ooc_core::{compile_source, CompilerOptions};
use pario::{ElemKind, IoMethod};

/// Gather iterations per scenario (the amortization horizon).
const ITERS: usize = 4;
/// Global extent of the gathered data array.
const N_DATA: usize = 4096;
/// Indirection entries per rank: sized so the inspector's one charged
/// indirection read dominates a single gather, which is what makes reuse
/// worth ≥ 2× over four iterations.
const IDX_PER_RANK: usize = 65_536;
/// Indirection values land in `[0, WINDOW)` — a hot subset that dedups to
/// few serve runs, like the column-index locality of a banded sparse
/// matrix. WINDOW ≤ N_DATA/p keeps the whole window on rank 0.
const WINDOW: usize = 256;
/// Workers on the pooled engine.
const POOL: usize = 3;
/// Fault seed for the chaos parity runs.
const CHAOS_SEED: u64 = 29;

/// The scattered-but-hot indirection stream.
fn index_value(g: usize) -> usize {
    (g * 7 + g / 5) % WINDOW
}

fn vec_desc(id: u32, name: &str, n: usize, p: usize) -> ArrayDesc {
    ArrayDesc::new(
        ArrayId(id),
        name,
        ElemKind::F32,
        Distribution::new(
            Shape::new(vec![n]),
            vec![DimDist::Distributed {
                kind: DistKind::Block,
                axis: 0,
            }],
            ProcGrid::line(p),
        ),
    )
}

fn fnv1a_f32(h: &mut u64, vals: &[f32]) {
    for v in vals {
        for b in v.to_bits().to_le_bytes() {
            *h ^= b as u64;
            *h = h.wrapping_mul(0x100000001b3);
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Re-inspect every iteration: the schedule is built, used once,
    /// thrown away.
    OneShot,
    /// Inspect on the first iteration, reuse the cached schedule after.
    Reused,
}

/// One machine run of `ITERS` gather iterations. Returns the simulated
/// elapsed bits plus per-rank (digest, inspector read bytes, gather read
/// requests) in rank order.
fn scenario(
    p: usize,
    method: IoMethod,
    mode: Mode,
    engine: Engine,
    fault: Option<FaultConfig>,
) -> (u64, Vec<(u64, u64, u64)>) {
    let x = vec_desc(0, "x", N_DATA, p);
    let idx = vec_desc(1, "idx", IDX_PER_RANK * p, p);
    let mut machine = Machine::new(MachineConfig::delta(p).with_engine(engine));
    if let Some(f) = fault {
        machine = machine.with_fault_injection(f);
    }
    let (report, per_rank) = machine.run_with(move |ctx| {
        let mut env = OocEnv::in_memory(ctx.rank());
        env.alloc(&x).unwrap();
        env.alloc(&idx).unwrap();
        env.load_global(&x, &|g: &[usize]| (g[0] % 97) as f32 * 0.25 - 3.0)
            .unwrap();
        env.load_global(&idx, &|g: &[usize]| index_value(g[0]) as f32)
            .unwrap();

        let mut digest = 0xcbf29ce484222325u64;
        let mut inspect_bytes = 0u64;
        let mut gather_reqs = 0u64;
        let mut cached = None;
        for _ in 0..ITERS {
            if mode == Mode::OneShot || cached.is_none() {
                let s = inspect(ctx, &mut env, &x, &idx, ctx).unwrap();
                inspect_bytes += inspect_counts(&s).read_bytes;
                cached = Some(s);
            }
            let s = cached.as_ref().expect("inspected above");
            let out = gather_with(ctx, &mut env, s, method, ctx).unwrap();
            gather_reqs += irreg_counts(s, method).read_requests;
            fnv1a_f32(&mut digest, &out);
        }
        (digest, inspect_bytes, gather_reqs)
    });
    (report.elapsed().to_bits(), per_rank)
}

struct Rung {
    ranks: usize,
    method: IoMethod,
    oneshot_s: f64,
    reused_s: f64,
    amortization: f64,
    inspect_bytes: u64,
    gather_requests: u64,
    digest: u64,
}

/// Run one (ranks, method) rung: both modes, four engines each, all parity
/// asserted. The recorded numbers come from the clean threaded runs.
fn run_rung(p: usize, method: IoMethod) -> Rung {
    let mut elapsed = [0.0f64; 2];
    let mut digest = 0u64;
    let mut inspect_bytes = 0u64;
    let mut gather_requests = 0u64;
    for (slot, mode) in [(0, Mode::OneShot), (1, Mode::Reused)] {
        let (bits, ranks) = scenario(p, method, mode, Engine::Threads, None);
        let (pool_bits, pool_ranks) = scenario(p, method, mode, Engine::Pool(POOL), None);
        assert_eq!(
            (bits, &ranks),
            (pool_bits, &pool_ranks),
            "Threads vs Pool({POOL}) diverged at p={p} {}",
            method.label()
        );
        let chaos = || Some(FaultConfig::chaos(CHAOS_SEED));
        let (cbits, cranks) = scenario(p, method, mode, Engine::Threads, chaos());
        let (cpool_bits, cpool_ranks) = scenario(p, method, mode, Engine::Pool(POOL), chaos());
        assert_eq!(
            (cbits, &cranks),
            (cpool_bits, &cpool_ranks),
            "chaos Threads vs Pool({POOL}) diverged at p={p} {}",
            method.label()
        );
        let values = |rs: &[(u64, u64, u64)]| rs.iter().map(|r| r.0).collect::<Vec<_>>();
        assert_eq!(
            values(&cranks),
            values(&ranks),
            "chaos changed gathered data at p={p} {}",
            method.label()
        );
        elapsed[slot] = f64::from_bits(bits);
        if mode == Mode::Reused {
            digest = ranks.iter().fold(0xcbf29ce484222325u64, |mut h, r| {
                for b in r.0.to_le_bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x100000001b3);
                }
                h
            });
            inspect_bytes = ranks.iter().map(|r| r.1).sum();
            gather_requests = ranks.iter().map(|r| r.2).sum();
        }
    }
    let amortization = elapsed[0] / elapsed[1];
    assert!(
        amortization >= 2.0,
        "inspector reuse amortized only {amortization:.2}x at p={p} {} \
         (one-shot {:.4}s, reused {:.4}s over {ITERS} iterations)",
        method.label(),
        elapsed[0],
        elapsed[1],
    );
    Rung {
        ranks: p,
        method,
        oneshot_s: elapsed[0],
        reused_s: elapsed[1],
        amortization,
        inspect_bytes,
        gather_requests,
        digest,
    }
}

struct SpmvRow {
    ranks: usize,
    elapsed_s: f64,
    y_fnv: u64,
}

/// End-to-end: the compiled SpMV example at 8 ranks, threaded vs pooled.
fn run_spmv_e2e() -> SpmvRow {
    const P: usize = 8;
    let src = hpf::SPMV_SOURCE.replace("nprocs=4", "nprocs=8");
    let compiled = compile_source(&src, &CompilerOptions::default()).unwrap();
    let n = 64usize;
    let nnz = 512usize;
    let mut cfg = noderun::RunConfig::default();
    cfg.init.insert(
        "rowptr".into(),
        noderun::init_fn(move |g| (g[0] * (nnz / n)) as f32),
    );
    cfg.init.insert(
        "colidx".into(),
        noderun::init_fn(move |g| ((g[0] * 37 + (g[0] / 3) * 11) % n) as f32),
    );
    cfg.init.insert(
        "vals".into(),
        noderun::init_fn(|g| ((g[0] % 89) as f32) * 0.25 + 1.0),
    );
    cfg.init.insert(
        "x".into(),
        noderun::init_fn(|g| (g[0] % 17) as f32 * 0.5 + 0.125),
    );
    cfg.collect.push("y".into());

    let threaded = noderun::run(&compiled, &cfg).unwrap();
    let pooled_cfg = noderun::RunConfig {
        engine: Some(Engine::Pool(POOL)),
        ..cfg.clone()
    };
    let pooled = noderun::run(&compiled, &pooled_cfg).unwrap();
    assert_eq!(
        threaded.collected, pooled.collected,
        "spmv collected arrays diverged between engines at p={P}"
    );
    assert_eq!(
        threaded.report.elapsed().to_bits(),
        pooled.report.elapsed().to_bits(),
        "spmv elapsed diverged between engines at p={P}"
    );
    let (_, y) = &threaded.collected["y"];
    assert!(y.iter().any(|v| *v != 0.0), "spmv product is non-trivial");
    let mut fnv = 0xcbf29ce484222325u64;
    fnv1a_f32(&mut fnv, y);
    SpmvRow {
        ranks: P,
        elapsed_s: threaded.report.elapsed(),
        y_fnv: fnv,
    }
}

fn main() {
    let mut out_path = "BENCH_irregular.json".to_string();
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--smoke" => smoke = true,
            other => panic!("unknown argument {other}"),
        }
    }
    let ladder: &[usize] = if smoke { &[8] } else { &[2, 4, 8] };

    println!(
        "irregular bench: {ITERS} iterations, {IDX_PER_RANK} indirection \
         entries/rank into a {WINDOW}-element window of {N_DATA}, ranks \
         {ladder:?} (delta cost model; parity: threads, pool, chaos)\n"
    );

    let mut rungs = Vec::new();
    for &p in ladder {
        for method in IoMethod::ALL {
            rungs.push(run_rung(p, method));
        }
    }

    let mut table = TextTable::new(&[
        "Ranks",
        "Method",
        "1-shot (s)",
        "Reused (s)",
        "Amortization",
        "Gather reqs",
    ]);
    for r in &rungs {
        table.row(vec![
            r.ranks.to_string(),
            r.method.label().to_string(),
            format!("{:.4}", r.oneshot_s),
            format!("{:.4}", r.reused_s),
            format!("{:.2}x", r.amortization),
            r.gather_requests.to_string(),
        ]);
    }
    print!("{}", table.render());

    let spmv = run_spmv_e2e();
    println!(
        "\nspmv e2e: p={} elapsed {:.4}s y_fnv {:016x}",
        spmv.ranks, spmv.elapsed_s, spmv.y_fnv
    );

    // JSON artifact (hand-rolled: the serde shim is marker-only). Only
    // simulated quantities — the file must be byte-identical across runs.
    let mut json = String::from("{\n  \"bench\": \"irregular\",\n");
    json.push_str(&format!(
        "  \"iters\": {ITERS},\n  \"n\": {N_DATA},\n  \"idx_per_rank\": {IDX_PER_RANK},\n  \
         \"window\": {WINDOW},\n  \"pool_workers\": {POOL},\n  \"chaos_seed\": {CHAOS_SEED},\n  \
         \"smoke\": {smoke},\n"
    ));
    json.push_str("  \"rungs\": [\n");
    for (i, r) in rungs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"ranks\": {}, \"method\": \"{}\", \"oneshot_s\": {:.9}, \
             \"reused_s\": {:.9}, \"amortization\": {:.6}, \"inspect_bytes\": {}, \
             \"gather_requests\": {}, \"digest\": \"{:016x}\", \
             \"parity\": \"threads+pool+chaos\"}}{}\n",
            r.ranks,
            r.method.label(),
            r.oneshot_s,
            r.reused_s,
            r.amortization,
            r.inspect_bytes,
            r.gather_requests,
            r.digest,
            if i + 1 < rungs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"spmv\": {{\"ranks\": {}, \"elapsed_s\": {:.9}, \"y_fnv\": \"{:016x}\", \
         \"parity\": \"threads+pool\"}}\n",
        spmv.ranks, spmv.elapsed_s, spmv.y_fnv
    ));
    json.push_str("}\n");
    ooc_trace::json::parse(&json).expect("bench JSON is well-formed");
    std::fs::write(&out_path, &json).expect("write bench JSON");
    println!("wrote {out_path}");
}
