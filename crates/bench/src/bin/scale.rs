//! Capacity bench for the pooled execution engine: how many simulated
//! ranks and concurrent jobs one fixed worker pool hosts, and at what
//! wall-clock cost — with bitwise engine parity asserted at every rung
//! both engines can reach.
//!
//! Two ladders:
//!
//! * **Ranks** — one SPMD microbench (compute, ring traffic, disk charges
//!   with cooperative yields, allreduce, barrier) run solo at 16 → 1024
//!   ranks on a 4-worker pool. Rungs up to `--threaded-max` (default 256)
//!   are re-run on the threaded engine and on a 1-worker pool and must
//!   match bit for bit; beyond that, the 1-worker cross-check still runs.
//! * **Jobs** — 4 → 100 concurrent gaxpy jobs captured live on the shared
//!   pool via `ooc_sched::profile_all_on` and scheduled against the disk
//!   farm. The first job's profile must equal its solo threaded capture.
//!
//! Usage: `cargo run --release -p ooc-bench --bin scale [--smoke]
//! [--threaded-max N] [--out FILE]` (default FILE = BENCH_scale.json).
//! `--smoke` trims the ladders (≤256 ranks, ≤16 jobs) for CI. Exits
//! nonzero on any parity failure.

use std::sync::Arc;
use std::time::Instant;

use dmsim::{Engine, Machine, MachineConfig, Payload, ProcCtx, Tag, WorkerPool};
use ooc_bench::{peak_rss_bytes, TextTable};
use ooc_core::{compile_hir, CompilerOptions};
use ooc_sched::{
    profile, profile_all_on, run_workload, JobSpec, Policy, ProgramJob, WorkloadConfig,
};

const WORKERS: usize = 4;
const JOB_N: usize = 32;
const JOB_P: usize = 4;

/// The solo-ladder SPMD body: every kind of clock-advance point, sized so
/// per-rank state is small and rank count dominates.
fn workout(ctx: &ProcCtx) -> f64 {
    let p = ctx.nprocs();
    let me = ctx.rank();
    ctx.charge_flops((me as u64 * 7919) % 10_000 + 100);
    if p > 1 {
        let next = (me + 1) % p;
        let prev = (me + p - 1) % p;
        ctx.send(next, Tag(1), Payload::U64(vec![me as u64; 4]));
        let got = ctx.recv(prev, Tag(1)).unwrap().into_u64();
        assert_eq!(got, vec![prev as u64; 4]);
    }
    ctx.charge_io_read(2, 1 << 14);
    ctx.io_yield();
    ctx.charge_io_write(1, 1 << 12);
    ctx.io_yield();
    let sum = ctx.allreduce_sum_f64(&[me as f64 + 1.0]);
    ctx.barrier();
    sum[0]
}

struct RankRung {
    ranks: usize,
    wall_s: f64,
    ranks_per_s: f64,
    peak_rss_bytes: Option<u64>,
    parity: &'static str,
}

struct Obs {
    per_proc: Vec<dmsim::proc::ProcReport>,
    elapsed_bits: u64,
    values: Vec<f64>,
}

fn observe(report: &dmsim::RunReport, values: Vec<f64>) -> Obs {
    Obs {
        per_proc: report.per_proc().to_vec(),
        elapsed_bits: report.elapsed().to_bits(),
        values,
    }
}

fn assert_obs_eq(a: &Obs, b: &Obs, what: &str, ranks: usize) {
    assert_eq!(
        a.per_proc, b.per_proc,
        "{what}: per-proc stats at p={ranks}"
    );
    assert_eq!(
        a.elapsed_bits, b.elapsed_bits,
        "{what}: elapsed bits at p={ranks}"
    );
    assert_eq!(a.values, b.values, "{what}: rank values at p={ranks}");
}

fn run_rank_rung(pool: &WorkerPool, ranks: usize, threaded_max: usize) -> RankRung {
    let machine = || Machine::new(MachineConfig::free(ranks));

    let t0 = Instant::now();
    let (mut report, values) = machine().run_on(pool, workout);
    let wall_s = t0.elapsed().as_secs_f64();
    report.set_peak_rss_bytes(peak_rss_bytes());
    let pooled = observe(&report, values);

    // Cross-check: a 1-worker pool serializes every rank on one OS thread
    // and must still produce the same bits.
    let solo_pool = WorkerPool::new(1);
    let (rep1, vals1) = machine().run_on(&solo_pool, workout);
    assert_obs_eq(&observe(&rep1, vals1), &pooled, "Pool(1) vs Pool(4)", ranks);
    let mut parity = "pool1";

    // Oracle: the threaded engine, where each rank is an OS thread. Only
    // viable up to the host's thread budget.
    if ranks <= threaded_max {
        let m = Machine::new(MachineConfig::free(ranks).with_engine(Engine::Threads));
        let (rep_t, vals_t) = m.run_with(workout);
        assert_obs_eq(
            &observe(&rep_t, vals_t),
            &pooled,
            "Threads vs Pool(4)",
            ranks,
        );
        parity = "threads+pool1";
    }

    RankRung {
        ranks,
        wall_s,
        ranks_per_s: ranks as f64 / wall_s.max(1e-9),
        peak_rss_bytes: report.peak_rss_bytes(),
        parity,
    }
}

struct JobsRung {
    jobs: usize,
    wall_s: f64,
    jobs_per_s: f64,
    peak_rss_bytes: Option<u64>,
    farm_makespan: f64,
}

fn run_jobs_rung(pool: &WorkerPool, jobs: usize) -> JobsRung {
    let compiled = Arc::new(
        compile_hir(
            ooc_bench::gaxpy_hir(JOB_N, JOB_P),
            &CompilerOptions::default(),
        )
        .unwrap(),
    );
    let fleet: Vec<ProgramJob> = (0..jobs)
        .map(|i| ProgramJob::new(format!("j{i}"), Arc::clone(&compiled)).with_job_tag(i as u32 + 1))
        .collect();

    let t0 = Instant::now();
    let profiles = profile_all_on(&fleet, pool).expect("live capture");
    let wall_s = t0.elapsed().as_secs_f64();

    // Parity: concurrency must not perturb any job — check the first
    // against its solo threaded capture.
    let solo = profile(&fleet[0].compiled, &fleet[0].cfg).expect("solo capture");
    assert_eq!(
        profiles[0], solo,
        "live capture of job 0 diverged from its solo threaded capture at {jobs} jobs"
    );

    let specs: Vec<JobSpec> = fleet
        .iter()
        .zip(profiles)
        .map(|(j, p)| JobSpec::new(j.name.clone(), p))
        .collect();
    let rep = run_workload(
        &specs,
        &WorkloadConfig {
            policy: Policy::FairShare,
            max_concurrent: jobs,
            ..WorkloadConfig::default()
        },
    )
    .expect("workload batch is well-formed");
    assert_eq!(rep.jobs.len(), jobs);

    JobsRung {
        jobs,
        wall_s,
        jobs_per_s: jobs as f64 / wall_s.max(1e-9),
        peak_rss_bytes: peak_rss_bytes(),
        farm_makespan: rep.makespan(),
    }
}

fn fmt_rss(b: Option<u64>) -> String {
    match b {
        Some(b) => format!("{:.1}", b as f64 / (1024.0 * 1024.0)),
        None => "n/a".to_string(),
    }
}

fn json_rss(b: Option<u64>) -> String {
    match b {
        Some(b) => b.to_string(),
        None => "null".to_string(),
    }
}

fn main() {
    let mut out_path = "BENCH_scale.json".to_string();
    let mut smoke = false;
    let mut threaded_max = 256usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--smoke" => smoke = true,
            "--threaded-max" => {
                threaded_max = args
                    .next()
                    .expect("--threaded-max needs a count")
                    .parse()
                    .expect("--threaded-max needs a number")
            }
            other => panic!("unknown argument {other}"),
        }
    }
    assert!(
        dmsim::Engine::Pool(WORKERS) != dmsim::Engine::Threads,
        "unreachable"
    );

    let rank_ladder: &[usize] = if smoke {
        &[16, 64, 256]
    } else {
        &[16, 64, 256, 1024]
    };
    let jobs_ladder: &[usize] = if smoke { &[4, 16] } else { &[4, 16, 100] };

    println!(
        "scale bench: {WORKERS}-worker pool, ranks ladder {rank_ladder:?}, \
         jobs ladder {jobs_ladder:?} (threaded oracle up to {threaded_max} ranks)\n"
    );

    let pool = WorkerPool::new(WORKERS);

    let rank_rungs: Vec<RankRung> = rank_ladder
        .iter()
        .map(|&p| run_rank_rung(&pool, p, threaded_max))
        .collect();

    let mut table = TextTable::new(&["Ranks", "Wall (s)", "Ranks/s", "Peak RSS (MiB)", "Parity"]);
    for r in &rank_rungs {
        table.row(vec![
            r.ranks.to_string(),
            format!("{:.4}", r.wall_s),
            format!("{:.0}", r.ranks_per_s),
            fmt_rss(r.peak_rss_bytes),
            r.parity.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!();

    let jobs_rungs: Vec<JobsRung> = jobs_ladder
        .iter()
        .map(|&j| run_jobs_rung(&pool, j))
        .collect();

    let mut table = TextTable::new(&[
        "Jobs",
        "Wall (s)",
        "Jobs/s",
        "Peak RSS (MiB)",
        "Farm makespan (s)",
    ]);
    for r in &jobs_rungs {
        table.row(vec![
            r.jobs.to_string(),
            format!("{:.4}", r.wall_s),
            format!("{:.1}", r.jobs_per_s),
            fmt_rss(r.peak_rss_bytes),
            format!("{:.4}", r.farm_makespan),
        ]);
    }
    print!("{}", table.render());

    // JSON artifact (hand-rolled: the serde shim is marker-only).
    let mut json = String::from("{\n  \"bench\": \"scale\",\n");
    json.push_str(&format!(
        "  \"workers\": {WORKERS},\n  \"smoke\": {smoke},\n  \"threaded_max\": {threaded_max},\n"
    ));
    json.push_str("  \"ranks\": [\n");
    for (i, r) in rank_rungs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"ranks\": {}, \"wall_s\": {:.6}, \"ranks_per_s\": {:.3}, \
             \"peak_rss_bytes\": {}, \"parity\": \"{}\"}}{}\n",
            r.ranks,
            r.wall_s,
            r.ranks_per_s,
            json_rss(r.peak_rss_bytes),
            r.parity,
            if i + 1 < rank_rungs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"jobs\": [\n");
    for (i, r) in jobs_rungs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"jobs\": {}, \"wall_s\": {:.6}, \"jobs_per_s\": {:.3}, \
             \"peak_rss_bytes\": {}, \"farm_makespan\": {:.9}}}{}\n",
            r.jobs,
            r.wall_s,
            r.jobs_per_s,
            json_rss(r.peak_rss_bytes),
            r.farm_makespan,
            if i + 1 < jobs_rungs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    ooc_trace::json::parse(&json).expect("bench JSON is well-formed");
    std::fs::write(&out_path, &json).expect("write bench JSON");
    println!("\nwrote {out_path}");
}
