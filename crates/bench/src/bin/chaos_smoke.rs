//! Chaos smoke: run the three paper kernels under a fixed fault seed and
//! assert that every run completes and computes exactly the fault-free
//! answer. CI runs this to catch regressions in the fault-injection and
//! recovery substrate without paying for the full property suite.
//!
//! ```text
//! cargo run --release -p ooc-bench --bin chaos_smoke [seed]
//! ```

use dmsim::FaultConfig;
use noderun::{init_fn, max_abs_diff, ref_transpose, run, RunConfig, RunOutcome};
use ooc_core::{compile_source, CompiledProgram, CompilerOptions};

const N: usize = 64;
const P: usize = 4;

fn fa(g: &[usize]) -> f32 {
    ((g[0] * 7 + g[1] * 3) % 11) as f32 * 0.125 - 0.5
}
fn fb(g: &[usize]) -> f32 {
    ((g[0] * 5 + g[1]) % 13) as f32 * 0.125 - 0.75
}

struct Kernel {
    name: &'static str,
    compiled: CompiledProgram,
    cfg: RunConfig,
    result: &'static str,
}

fn gaxpy() -> Kernel {
    let compiled = compile_source(hpf::GAXPY_SOURCE, &CompilerOptions::default()).unwrap();
    let mut cfg = RunConfig::default();
    cfg.init.insert("a".into(), init_fn(fa));
    cfg.init.insert("b".into(), init_fn(fb));
    cfg.collect.push("c".into());
    Kernel {
        name: "gaxpy",
        compiled,
        cfg,
        result: "c",
    }
}

fn jacobi() -> Kernel {
    let src = format!(
        "
      parameter (n={N})
      real u(n, n), v(n, n)
!hpf$ processors pr({P})
!hpf$ template t(n)
!hpf$ distribute t(block) on pr
!hpf$ align (:, *) with t :: u, v
      forall (i = 2:n-1, j = 2:n-1)
        v(i, j) = 0.25 * (u(i-1, j) + u(i+1, j) + u(i, j-1) + u(i, j+1))
      end forall
      forall (i = 2:n-1, j = 2:n-1)
        u(i, j) = 0.25 * (v(i-1, j) + v(i+1, j) + v(i, j-1) + v(i, j+1))
      end forall
      end
"
    );
    let compiled = compile_source(&src, &CompilerOptions::default()).unwrap();
    let mut cfg = RunConfig::default();
    cfg.init.insert("u".into(), init_fn(fa));
    cfg.init.insert("v".into(), init_fn(fa));
    cfg.collect.push("u".into());
    Kernel {
        name: "jacobi",
        compiled,
        cfg,
        result: "u",
    }
}

fn transpose() -> Kernel {
    let src = format!(
        "
      parameter (n={N})
      real a(n, n), b(n, n)
!hpf$ processors pr({P})
!hpf$ distribute a(*, block) on pr
!hpf$ distribute b(*, block) on pr
      forall (i = 1:n, j = 1:n)
        b(i, j) = a(j, i)
      end forall
      end
"
    );
    let compiled = compile_source(&src, &CompilerOptions::default()).unwrap();
    let mut cfg = RunConfig::default();
    cfg.init.insert("a".into(), init_fn(fa));
    cfg.collect.push("b".into());
    Kernel {
        name: "transpose",
        compiled,
        cfg,
        result: "b",
    }
}

fn run_once(k: &Kernel, fault: Option<FaultConfig>) -> RunOutcome {
    let mut cfg = k.cfg.clone();
    cfg.fault = fault;
    run(&k.compiled, &cfg)
        .unwrap_or_else(|e| panic!("{} failed under fault injection: {e}", k.name))
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(2026);
    println!("chaos smoke: {N}x{N} kernels on {P} procs, fault seed {seed}");

    let mut failures = 0;
    for kernel in [gaxpy(), jacobi(), transpose()] {
        let clean = run_once(&kernel, None);
        let chaos = run_once(&kernel, Some(FaultConfig::chaos(seed)));
        let (_, want) = &clean.collected[kernel.result];
        let (_, got) = &chaos.collected[kernel.result];
        let diff = max_abs_diff(got, want);
        let t = chaos.report.totals();
        let ok = diff == 0.0 && t.faults_injected > 0;
        println!(
            "  {:<9} {}  |diff| {:e}  faults {}  retries {}+{}  t_clean {:.3}s  t_chaos {:.3}s",
            kernel.name,
            if ok { "OK " } else { "FAIL" },
            diff,
            t.faults_injected,
            t.io_retries,
            t.msg_retries,
            clean.report.elapsed(),
            chaos.report.elapsed(),
        );
        if !ok {
            failures += 1;
        }
    }

    // Transpose doubles as the reference cross-check: the chaos result must
    // also match the serial transpose, not merely the fault-free run.
    let k = transpose();
    let chaos = run_once(&k, Some(FaultConfig::chaos(seed)));
    let (_, b) = &chaos.collected["b"];
    assert_eq!(
        max_abs_diff(b, &ref_transpose(N, &fa)),
        0.0,
        "chaos transpose diverged from the serial reference"
    );

    if failures > 0 {
        eprintln!("chaos smoke: {failures} kernel(s) failed");
        std::process::exit(1);
    }
    println!("chaos smoke: all kernels byte-identical under fault injection");
}
