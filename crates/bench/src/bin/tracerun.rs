//! Trace a paper kernel on the simulated machine and export its per-rank
//! timeline as Perfetto-loadable Chrome trace JSON, plus a terminal flame
//! summary, metric histograms and the estimate-vs-measured divergence
//! report.
//!
//! ```text
//! cargo run --release -p ooc-bench --bin tracerun -- \
//!     [gaxpy|transpose|jacobi] [--out trace.json] [--cache BYTES] \
//!     [--prefetch] [--chaos SEED] [--check]
//! ```
//!
//! `--check` validates the emitted JSON against the checked-in schema
//! (`crates/bench/schemas/trace_schema.json`) — finite timestamps, monotone
//! per-rank clocks, required keys — and exits nonzero on any violation.
//! Load the output at <https://ui.perfetto.dev> or `chrome://tracing`.

use dmsim::{FaultConfig, TraceConfig};
use noderun::{divergence_report, init_fn, run, RunConfig};
use ooc_bench::plot::{ascii_bars, Series};
use ooc_bench::table::{secs, TextTable};
use ooc_core::{compile_source, CompiledProgram, CompilerOptions};
use ooc_trace::perfetto::to_chrome_json;
use ooc_trace::{json, metrics};

const N: usize = 64;
const P: usize = 4;

fn fa(g: &[usize]) -> f32 {
    ((g[0] * 7 + g[1] * 3) % 11) as f32 * 0.125 - 0.5
}
fn fb(g: &[usize]) -> f32 {
    ((g[0] * 5 + g[1]) % 13) as f32 * 0.125 - 0.75
}

fn kernel(name: &str, options: &CompilerOptions) -> (CompiledProgram, RunConfig) {
    let mut cfg = RunConfig::default();
    let compiled = match name {
        "gaxpy" => {
            cfg.init.insert("a".into(), init_fn(fa));
            cfg.init.insert("b".into(), init_fn(fb));
            compile_source(hpf::GAXPY_SOURCE, options)
        }
        "transpose" => {
            let src = format!(
                "
      parameter (n={N})
      real a(n, n), b(n, n)
!hpf$ processors pr({P})
!hpf$ distribute a(*, block) on pr
!hpf$ distribute b(*, block) on pr
      forall (i = 1:n, j = 1:n)
        b(i, j) = a(j, i)
      end forall
      end
"
            );
            cfg.init.insert("a".into(), init_fn(fa));
            compile_source(&src, options)
        }
        "jacobi" => {
            let src = format!(
                "
      parameter (n={N})
      real u(n, n), v(n, n)
!hpf$ processors pr({P})
!hpf$ template t(n)
!hpf$ distribute t(block) on pr
!hpf$ align (:, *) with t :: u, v
      forall (i = 2:n-1, j = 2:n-1)
        v(i, j) = 0.25 * (u(i-1, j) + u(i+1, j) + u(i, j-1) + u(i, j+1))
      end forall
      end
"
            );
            cfg.init.insert("u".into(), init_fn(fa));
            cfg.init.insert("v".into(), init_fn(fa));
            compile_source(&src, options)
        }
        other => {
            eprintln!("unknown kernel `{other}` (expected gaxpy, transpose or jacobi)");
            std::process::exit(2);
        }
    }
    .expect("kernel compiles");
    (compiled, cfg)
}

struct Cli {
    kernel: String,
    out: std::path::PathBuf,
    cache: Option<usize>,
    prefetch: bool,
    chaos: Option<u64>,
    check: bool,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        kernel: "gaxpy".to_string(),
        out: "trace.json".into(),
        cache: None,
        prefetch: false,
        chaos: None,
        check: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => cli.out = args.next().expect("--out PATH").into(),
            "--cache" => {
                cli.cache = Some(args.next().expect("--cache BYTES").parse().expect("bytes"))
            }
            "--prefetch" => cli.prefetch = true,
            "--chaos" => {
                cli.chaos = Some(args.next().expect("--chaos SEED").parse().expect("seed"))
            }
            "--check" => cli.check = true,
            name if !name.starts_with('-') => cli.kernel = name.to_string(),
            other => {
                eprintln!("unknown flag `{other}`");
                std::process::exit(2);
            }
        }
    }
    cli
}

fn main() {
    let cli = parse_cli();
    let options = CompilerOptions {
        trace: TraceConfig::on(),
        cache_budget: cli.cache,
        ..CompilerOptions::default()
    };
    let (compiled, mut cfg) = kernel(&cli.kernel, &options);
    cfg.cache_budget = cli.cache;
    cfg.prefetch = cli.prefetch;
    cfg.fault = cli.chaos.map(FaultConfig::chaos);

    let mut outcome = run(&compiled, &cfg).expect("traced run succeeds");
    let trace = outcome.report.take_trace().expect("tracing enabled");
    let json_text = to_chrome_json(&trace);
    std::fs::write(&cli.out, &json_text).expect("write trace file");
    println!(
        "tracerun: {} on {P} ranks — {} events -> {} ({} bytes)",
        cli.kernel,
        trace.event_count(),
        cli.out.display(),
        json_text.len()
    );
    println!("open it at https://ui.perfetto.dev or chrome://tracing\n");

    // ---- Flame summary: where did each rank's simulated time go? --------
    let reg = metrics::from_trace(&trace);
    let labels: Vec<String> = (0..trace.ranks.len())
        .map(|r| format!("rank {r}"))
        .collect();
    let pick = |f: fn(&metrics::TimeBreakdown) -> f64| -> Vec<(String, f64)> {
        labels
            .iter()
            .cloned()
            .zip(reg.per_rank.iter().map(f))
            .collect()
    };
    let series = [
        Series::new("compute", pick(|t| t.compute)),
        Series::new("comm", pick(|t| t.comm)),
        Series::new("io", pick(|t| t.io)),
        Series::new("faults", pick(|t| t.faults)),
    ];
    print!("{}", ascii_bars("simulated seconds by rank", &series, 40));

    // ---- Per-phase attribution. -----------------------------------------
    let mut phases = TextTable::new(&["phase", "compute", "comm", "io", "faults"]);
    for (name, t) in &reg.by_phase {
        phases.row(vec![
            name.clone(),
            secs(t.compute),
            secs(t.comm),
            secs(t.io),
            secs(t.faults),
        ]);
    }
    println!("\n{}", phases.render());

    // ---- Histograms. -----------------------------------------------------
    print!("{}", reg.io_request_bytes.render("I/O request bytes", 32));
    print!("{}", reg.msg_bytes.render("message bytes", 32));
    if reg.retry_ns.count() > 0 {
        print!("{}", reg.retry_ns.render("retry backoff ns", 32));
    }

    // ---- Estimate vs measured. ------------------------------------------
    let report = divergence_report(&compiled, &trace);
    println!("\nestimate vs measured (rank 0):");
    print!("{}", report.render());
    if report.is_zero_gap() {
        println!("all counters match the compiler's estimates exactly");
    } else {
        println!(
            "max relative divergence: {:.1}%",
            100.0 * report.max_rel_gap()
        );
    }

    // ---- Optional schema validation (CI smoke). --------------------------
    if cli.check {
        let schema_text = include_str!("../../schemas/trace_schema.json");
        let schema = json::parse(schema_text).expect("schema parses");
        let parsed = json::parse(&json_text).expect("emitted trace parses");
        match json::validate_chrome_trace(&parsed, &schema) {
            Ok(check) => println!(
                "\ncheck: OK — {} events, {} spans, {} counters, {} ranks",
                check.events, check.spans, check.counters, check.ranks
            ),
            Err(e) => {
                eprintln!("\ncheck: FAIL — {e}");
                std::process::exit(1);
            }
        }
    }
}
