//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. storage reorganization on/off (row slabs with and without the
//!    row-major relayout of A and C);
//! 2. cost-model-driven strategy selection vs forced column slabs;
//! 3. memory-allocation policies at several budgets, on two disk regimes;
//! 4. prefetch (overlap slab fetches with compute);
//! 5. PASSION-style data sieving vs storage reorganization;
//! 6. amortization of the one-time relayout (§2.3);
//! 7. the same program on a modern cluster cost profile (does the
//!    optimization still matter when I/O is 1000x faster?).
//!
//! Usage: `cargo run --release -p ooc-bench --bin ablation [n]`
//! (default n = 512 — ablations sweep many cells).

use dmsim::CostModel;
use ooc_bench::table::secs;
use ooc_bench::{gaxpy_hir, run_matmul, MatmulSetup, TextTable};
use ooc_core::pipeline::MachineProfile;
use ooc_core::stripmine::SlabSizing;
use ooc_core::{compile_hir, CompilerOptions, MemoryPolicy, SlabStrategy};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("n must be an integer"))
        .unwrap_or(512);
    let p = 4usize;

    // ---- 1. Storage reorganization ------------------------------------
    println!("ablation 1: storage reorganization (row-slab {n}x{n}, {p} procs, ratio 1/4)\n");
    let mut t = TextTable::new(&["reorganize", "time (s)", "requests/proc"]);
    for reorg in [true, false] {
        let row = run_matmul(&MatmulSetup {
            n,
            p,
            strategy: Some(SlabStrategy::RowSlab),
            sizing: SlabSizing::Ratio(0.25),
            reorganize: reorg,
            verify: false,
            cache_budget: None,
        });
        t.row(vec![
            reorg.to_string(),
            secs(row.sim_seconds),
            row.io_requests.to_string(),
        ]);
    }
    print!("{}", t.render());

    // ---- 2. Automatic strategy selection -------------------------------
    println!("\nablation 2: compiler selection vs forced strategies\n");
    let mut t = TextTable::new(&["strategy", "time (s)", "bytes/proc"]);
    for (strategy, label) in [
        (None, "auto (cost model)"),
        (Some(SlabStrategy::ColumnSlab), "forced column"),
        (Some(SlabStrategy::RowSlab), "forced row"),
    ] {
        let row = run_matmul(&MatmulSetup {
            n,
            p,
            strategy,
            sizing: SlabSizing::Ratio(0.25),
            reorganize: true,
            verify: false,
            cache_budget: None,
        });
        t.row(vec![
            label.to_string(),
            secs(row.sim_seconds),
            row.io_bytes.to_string(),
        ]);
    }
    print!("{}", t.render());

    // ---- 3. Memory policies across budgets ------------------------------
    // Two regimes: on the request-dominated Delta model an equal split is
    // near-optimal (the A·B request product is symmetric — `search` shows
    // the true optimum); on a bytes-dominated disk the paper's heuristic
    // (weight toward A, whose slab count multiplies B's restreamed volume)
    // pays off.
    println!("\nablation 3: memory allocation policies (row slab)\n");
    let lc = n / p;
    let slow_disk = MachineProfile::Custom(CostModel {
        io_startup: 0.0,
        io_aggregate_bandwidth: 5.5e6 / 8.0,
        ..CostModel::delta(p)
    });
    for (profile, label) in [
        (MachineProfile::Delta, "delta (request-dominated)"),
        (slow_disk, "slow disk (bytes-dominated)"),
    ] {
        println!("{label}:");
        let mut t = TextTable::new(&["budget (elems)", "equal", "weighted", "search"]);
        for budget_cols in [4usize, 16, 64] {
            let elems = budget_cols * lc * 2;
            let mut cells = vec![elems.to_string()];
            for policy in [
                MemoryPolicy::EqualSplit,
                MemoryPolicy::AccessWeighted,
                MemoryPolicy::Search,
            ] {
                let row = ooc_bench::harness::run_matmul_on(
                    &MatmulSetup {
                        n,
                        p,
                        strategy: Some(SlabStrategy::RowSlab),
                        sizing: SlabSizing::Budget { elems, policy },
                        reorganize: true,
                        verify: false,
                        cache_budget: None,
                    },
                    profile.clone(),
                );
                cells.push(secs(row.sim_seconds));
            }
            t.row(cells);
        }
        print!("{}", t.render());
    }

    // ---- 4. Prefetch (software pipelining) -------------------------------
    println!("\nablation 4: prefetch — overlap slab fetches with compute\n");
    {
        let compiled = compile_hir(
            gaxpy_hir(n, p),
            &CompilerOptions {
                sizing: SlabSizing::Ratio(0.25),
                force_strategy: Some(SlabStrategy::ColumnSlab),
                ..CompilerOptions::default()
            },
        )
        .expect("compiles");
        let mut t = TextTable::new(&["prefetch", "time (s)", "requests/proc"]);
        for prefetch in [false, true] {
            let mut cfg = noderun::RunConfig {
                prefetch,
                ..noderun::RunConfig::default()
            };
            cfg.init
                .insert("a".into(), noderun::init_fn(ooc_bench::harness::init_a));
            cfg.init
                .insert("b".into(), noderun::init_fn(ooc_bench::harness::init_b));
            let outcome = noderun::run(&compiled, &cfg).expect("runs");
            t.row(vec![
                prefetch.to_string(),
                secs(outcome.report.elapsed()),
                outcome.report.io_requests_per_proc().to_string(),
            ]);
        }
        print!("{}", t.render());
    }

    // ---- 5. Data sieving on the unreorganized baseline -------------------
    println!("\nablation 5: PASSION-style data sieving vs storage reorganization\n");
    {
        let mut t = TextTable::new(&["configuration", "time (s)", "requests/proc"]);
        for (reorg, sieve, label) in [
            (false, false, "no reorg, direct"),
            (false, true, "no reorg, cost-based sieve"),
            (true, false, "reorganized storage"),
        ] {
            let compiled = compile_hir(
                gaxpy_hir(n, p),
                &CompilerOptions {
                    sizing: SlabSizing::Ratio(0.25),
                    force_strategy: Some(SlabStrategy::RowSlab),
                    reorganize_storage: reorg,
                    ..CompilerOptions::default()
                },
            )
            .expect("compiles");
            let mut cfg = noderun::RunConfig::default();
            if sieve {
                cfg.sieve = Some(pario::SievePolicy::CostBased {
                    startup: compiled.model.io_startup,
                    bandwidth: compiled.model.io_bandwidth_per_proc(),
                });
            }
            cfg.init
                .insert("a".into(), noderun::init_fn(ooc_bench::harness::init_a));
            cfg.init
                .insert("b".into(), noderun::init_fn(ooc_bench::harness::init_b));
            let outcome = noderun::run(&compiled, &cfg).expect("runs");
            t.row(vec![
                label.to_string(),
                secs(outcome.report.elapsed()),
                outcome.report.io_requests_per_proc().to_string(),
            ]);
        }
        print!("{}", t.render());
    }

    // ---- 6. Amortizing the initial reorganization ------------------------
    // §2.3: redistribution "involves some additional overhead which can be
    // amortized if the array is used several times". Measure the one-time
    // cost of relaying A out row-major, against the per-multiply savings.
    println!("\nablation 6: amortizing the storage reorganization of A\n");
    {
        use dmsim::Machine;
        use ooc_array::{
            relayout_in_place, ArrayDesc, ArrayId, Distribution, FileLayout, OocEnv, Shape,
        };
        use pario::ElemKind;
        let dist = Distribution::column_block(Shape::matrix(n, n), p);
        let desc = ArrayDesc::new(ArrayId(0), "a", ElemKind::F32, dist);
        let machine = Machine::new(dmsim::MachineConfig::delta(p));
        let report = machine.run(|ctx| {
            let mut env = OocEnv::in_memory(ctx.rank());
            env.alloc(&desc).unwrap();
            env.load_global(&desc, &ooc_bench::harness::init_a).unwrap();
            relayout_in_place(&mut env, &desc, FileLayout::row_major(2), (n / p) * 64, ctx)
                .unwrap();
        });
        let reorg_cost = report.elapsed();
        let col = run_matmul(&MatmulSetup::table1(n, p, 0.25, SlabStrategy::ColumnSlab));
        let row = run_matmul(&MatmulSetup::table1(n, p, 0.25, SlabStrategy::RowSlab));
        let savings = col.sim_seconds - row.sim_seconds;
        println!(
            "one-time relayout of A: {:.2} s; per-multiply savings (col - row): {:.2} s\n\
             => the reorganization pays for itself after {:.2} uses of the array\n",
            reorg_cost,
            savings,
            reorg_cost / savings.max(1e-9)
        );
    }

    // ---- 7. Modern cluster profile --------------------------------------
    println!("\nablation 7: does the choice still matter on a modern cluster profile?\n");
    let mut t = TextTable::new(&["profile", "col est (s)", "row est (s)", "ratio"]);
    for (profile, label) in [
        (MachineProfile::Delta, "delta 1994"),
        (MachineProfile::Cluster, "cluster 2020s"),
        (
            MachineProfile::Custom(CostModel {
                io_startup: 5e-3,
                ..CostModel::cluster(p)
            }),
            "cluster + slow seeks",
        ),
    ] {
        let mut est = Vec::new();
        for strategy in [SlabStrategy::ColumnSlab, SlabStrategy::RowSlab] {
            let compiled = compile_hir(
                gaxpy_hir(n, p),
                &CompilerOptions {
                    sizing: SlabSizing::Ratio(0.25),
                    profile: profile.clone(),
                    force_strategy: Some(strategy),
                    ..CompilerOptions::default()
                },
            )
            .expect("compiles");
            est.push(compiled.estimates[0].time());
        }
        t.row(vec![
            label.to_string(),
            secs(est[0]),
            secs(est[1]),
            format!("{:.1}x", est[0] / est[1]),
        ]);
    }
    print!("{}", t.render());
}
