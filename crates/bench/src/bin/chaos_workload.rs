//! Chaos workload bench: the guarded runtime under compound failure.
//!
//! A fleet of chaos-captured gaxpy jobs — a few long "tenants" that fill
//! every slot plus a stream of short urgent jobs — runs through
//! `run_workload_guarded` with hang injection, watchdog kills, deadlines,
//! EDF checkpoint-preempt-resume and a mid-workload permanent disk death.
//! The bench asserts the fault-domain contract end to end:
//!
//! - every job reaches a terminal typed `JobOutcome` (the run returning at
//!   all is the liveness proof — no panics, no stuck executive);
//! - at least one disk death fired, at least one hang was injected, and
//!   overload forced at least one EDF preemption;
//! - every non-quarantined job completed;
//! - the JSON summary is byte-identical across two invocations of the
//!   guarded runtime, and across capture engines: profiles captured with
//!   one OS thread per rank (`Threads`) equal profiles captured as
//!   cooperative tasks on a 4-worker pool (`Pool(4)`), so the guarded run
//!   they feed is byte-identical too.
//!
//! Usage: `cargo run --release -p ooc-bench --bin chaos_workload
//! [--jobs N] [--ranks R] [--seed S] [--out FILE]` (defaults: 32 jobs,
//! 4 ranks, seed 2026, FILE = BENCH_chaos_workload.json). CI runs the
//! 16-job / 8-rank variant as the chaos-workload smoke.

use std::sync::Arc;

use dmsim::{FaultConfig, WorkerPool};
use noderun::RunConfig;
use ooc_bench::TextTable;
use ooc_core::{compile_hir, CompilerOptions};
use ooc_sched::{
    profile, profile_all_on, run_workload_guarded, DomainConfig, GuardedReport, JobOutcome,
    JobProfile, JobSpec, Policy, ProgramJob,
};

struct Opts {
    jobs: usize,
    ranks: usize,
    seed: u64,
    out: String,
}

fn parse_opts() -> Opts {
    let mut o = Opts {
        jobs: 32,
        ranks: 4,
        seed: 2026,
        out: "BENCH_chaos_workload.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| panic!("{a} needs a value"));
        match a.as_str() {
            "--jobs" => o.jobs = val().parse().expect("--jobs N"),
            "--ranks" => o.ranks = val().parse().expect("--ranks R"),
            "--seed" => o.seed = val().parse().expect("--seed S"),
            "--out" => o.out = val(),
            other => panic!("unknown argument {other}"),
        }
    }
    assert!(
        o.jobs >= 6,
        "need at least 6 jobs (tenants + urgent stream)"
    );
    assert!(o.ranks >= 2, "need >= 2 disks to survive a disk death");
    o
}

/// The fleet: `nlong` long tenants submitted at t=0 (they fill the
/// concurrency cap), then short urgent jobs streaming in behind them.
/// Every job carries its own machine-level chaos stream (distinct tag).
fn fleet(opts: &Opts, nlong: usize) -> Vec<ProgramJob> {
    let copts = CompilerOptions::default();
    let short =
        Arc::new(compile_hir(ooc_bench::gaxpy_hir(16 * opts.ranks, opts.ranks), &copts).unwrap());
    let long =
        Arc::new(compile_hir(ooc_bench::gaxpy_hir(40 * opts.ranks, opts.ranks), &copts).unwrap());
    (0..opts.jobs)
        .map(|i| {
            let compiled = if i < nlong { &long } else { &short };
            let cfg = RunConfig {
                fault: Some(FaultConfig::chaos(opts.seed)),
                ..RunConfig::default()
            };
            let name = if i < nlong {
                format!("tenant-{i}")
            } else {
                format!("urgent-{}", i - nlong)
            };
            ProgramJob::new(name, Arc::clone(compiled))
                .with_cfg(cfg)
                .with_job_tag(i as u32 + 1)
        })
        .collect()
}

/// Specs for the guarded run: tenants at t=0, urgent jobs staggered by a
/// fraction of the short solo makespan so they arrive while the cap is
/// full of long tenants — forcing EDF preemption.
fn specs_from(jobs: &[ProgramJob], profiles: &[JobProfile], nlong: usize) -> Vec<JobSpec> {
    let short_ms = profiles[nlong].makespan();
    jobs.iter()
        .zip(profiles)
        .enumerate()
        .map(|(i, (j, p))| {
            let submit = if i < nlong {
                0.0
            } else {
                0.4 * short_ms * (i - nlong) as f64
            };
            JobSpec::new(j.name.clone(), p.clone()).with_submit(submit)
        })
        .collect()
}

fn domain_cfg(opts: &Opts, profiles: &[JobProfile], nlong: usize) -> DomainConfig {
    let short_ms = profiles[nlong].makespan();
    let long_ms = profiles[0].makespan();
    DomainConfig {
        policy: Policy::FairShare,
        disks: opts.ranks,
        max_concurrent: nlong,
        seed: opts.seed,
        hang_chance: 0.3,
        watchdog_quantum: 0.5 * short_ms,
        deadline_factor: 8.0,
        max_retries: 2,
        backoff_base: 0.25 * short_ms,
        checkpoint_every: 4,
        epoch: short_ms / 8.0,
        // One permanent death mid-workload, on the highest disk; the
        // farm re-plans the survivors' streams onto the rest.
        disk_deaths: vec![(1.5 * long_ms.min(short_ms * 6.0), opts.ranks - 1)],
        ..DomainConfig::default()
    }
}

/// Deterministic JSON summary of a guarded run. Byte-identity of this
/// string across runs and engines is the bench's reproducibility check.
fn summarize(rep: &GuardedReport, opts: &Opts) -> String {
    let mut json = String::from("{\n  \"bench\": \"chaos_workload\",\n");
    json.push_str(&format!(
        "  \"jobs\": {},\n  \"ranks\": {},\n  \"seed\": {},\n  \"policy\": \"{}\",\n",
        opts.jobs,
        opts.ranks,
        opts.seed,
        rep.policy.name()
    ));
    json.push_str(&format!(
        "  \"disk_deaths\": {},\n  \"makespan\": {:.9},\n  \"completed\": {},\n",
        rep.disk_deaths,
        rep.makespan(),
        rep.completed()
    ));
    json.push_str("  \"results\": [\n");
    for (i, j) in rep.jobs.iter().enumerate() {
        let terminal = match &j.outcome {
            JobOutcome::Done { completion } | JobOutcome::Recovered { completion, .. } => {
                *completion
            }
            JobOutcome::Killed { at } | JobOutcome::Quarantined { at, .. } => *at,
        };
        json.push_str(&format!(
            "    {{\"job\": \"{}\", \"outcome\": \"{}\", \"terminal\": {:.9}, \
             \"attempts\": {}, \"preemptions\": {}, \"kills\": {}, \"hangs\": {}, \
             \"faults_injected\": {}, \"io_retries\": {}, \"msg_retries\": {}}}{}\n",
            j.name,
            j.outcome.label(),
            terminal,
            j.attempts,
            j.preemptions,
            j.kills,
            j.hangs_injected,
            j.faults_injected,
            j.io_retries,
            j.msg_retries,
            if i + 1 < rep.jobs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

fn main() {
    let opts = parse_opts();
    let nlong = 4.min(opts.jobs / 4).max(2);

    // Capture every job's chaos profile on both engines. `Threads` runs
    // each job solo with one OS thread per rank; `Pool(4)` runs the whole
    // fleet as cooperative tasks on four workers. The profiles must match
    // bitwise — the guarded run is a pure function of them.
    let jobs = fleet(&opts, nlong);
    let threaded: Vec<JobProfile> = jobs
        .iter()
        .map(|j| profile(&j.compiled, &j.cfg).expect("threaded capture"))
        .collect();
    let pool = WorkerPool::new(4);
    let pooled = profile_all_on(&jobs, &pool).expect("pooled capture");
    assert_eq!(threaded, pooled, "Threads / Pool(4) capture parity broke");
    println!(
        "chaos workload: {} jobs ({} tenants gaxpy {}x{}, {} urgent gaxpy {}x{}) on {} disks, seed {}",
        opts.jobs,
        nlong,
        40 * opts.ranks,
        40 * opts.ranks,
        opts.jobs - nlong,
        16 * opts.ranks,
        16 * opts.ranks,
        opts.ranks,
        opts.seed
    );

    let specs = specs_from(&jobs, &threaded, nlong);
    let cfg = domain_cfg(&opts, &threaded, nlong);
    let rep = run_workload_guarded(&specs, &cfg).expect("admissible batch");
    let json = summarize(&rep, &opts);

    // Reproducibility: a second guarded run, and a run fed by the pooled
    // capture, must both summarize byte-identically.
    let again = summarize(&run_workload_guarded(&specs, &cfg).unwrap(), &opts);
    assert_eq!(json, again, "guarded run is not reproducible");
    let pooled_specs = specs_from(&jobs, &pooled, nlong);
    let via_pool = summarize(&run_workload_guarded(&pooled_specs, &cfg).unwrap(), &opts);
    assert_eq!(json, via_pool, "Threads vs Pool(4) summaries diverged");

    let mut table = TextTable::new(&[
        "Job",
        "Outcome",
        "Attempts",
        "Preempts",
        "Kills",
        "Hangs",
        "Terminal (s)",
    ]);
    for j in &rep.jobs {
        let terminal = match &j.outcome {
            JobOutcome::Done { completion } | JobOutcome::Recovered { completion, .. } => {
                *completion
            }
            JobOutcome::Killed { at } | JobOutcome::Quarantined { at, .. } => *at,
        };
        table.row(vec![
            j.name.clone(),
            j.outcome.label().to_string(),
            j.attempts.to_string(),
            j.preemptions.to_string(),
            j.kills.to_string(),
            j.hangs_injected.to_string(),
            format!("{terminal:.4}"),
        ]);
    }
    print!("{}", table.render());

    ooc_trace::json::parse(&json).expect("bench JSON is well-formed");
    std::fs::write(&opts.out, &json).expect("write bench JSON");
    println!("\nwrote {}", opts.out);

    // Acceptance: the chaos actually happened, and every fault stayed in
    // its domain.
    let preemptions: u32 = rep.jobs.iter().map(|j| j.preemptions).sum();
    let hangs: u32 = rep.jobs.iter().map(|j| j.hangs_injected).sum();
    let quarantined = rep
        .jobs
        .iter()
        .filter(|j| matches!(j.outcome, JobOutcome::Quarantined { .. }))
        .count();
    assert!(rep.disk_deaths >= 1, "no disk death fired");
    assert!(hangs >= 1, "no hang was injected (seed too lucky)");
    assert!(preemptions >= 1, "overload forced no EDF preemption");
    for j in &rep.jobs {
        assert!(
            !matches!(j.outcome, JobOutcome::Killed { .. }),
            "{}: terminal kill despite a retry budget",
            j.name
        );
        assert!(
            j.outcome.completed() || matches!(j.outcome, JobOutcome::Quarantined { .. }),
            "{}: non-quarantined job did not complete: {:?}",
            j.name,
            j.outcome
        );
    }
    println!(
        "ok: {} completed ({} quarantined), {} disk death(s), {} hang(s), {} preemption(s); \
         summary reproducible across runs and engines",
        rep.completed(),
        quarantined,
        rep.disk_deaths,
        hangs,
        preemptions
    );
}
