//! Service bench: the workload observatory end to end.
//!
//! A fleet of chaos-captured gaxpy jobs runs through the guarded runtime
//! once per queueing policy with the observatory attached: every run
//! streams typed events into an [`EventLog`], samples the farm on a fixed
//! virtual-time cadence, and is scored into an SLO scorecard. The bench
//! asserts the observatory contract end to end:
//!
//! - observation is transparent: the guarded report with an observer
//!   attached equals the unobserved one, job for job;
//! - the rendered event stream and all three artifacts are byte-identical
//!   across two invocations, and across capture engines (`Threads` vs
//!   `Pool(4)`);
//! - the Prometheus exposition passes [`ooc_trace::prom::validate`], the
//!   HTML report passes [`ooc_trace::html::validate`], and the JSON
//!   summary parses with [`ooc_trace::json::parse`].
//!
//! Artifacts: `BENCH_service.json` (scorecards + stream digests),
//! `BENCH_service.prom` (SLO metrics exposition) and `BENCH_service.html`
//! (timeline + time-series report). CI's obs-smoke job runs the bench
//! twice and `cmp`s all three.
//!
//! Usage: `cargo run --release -p ooc-bench --bin service
//! [--jobs N] [--ranks R] [--seed S] [--out FILE]` (defaults: 16 jobs,
//! 4 ranks, seed 2026, FILE = BENCH_service.json).

use std::sync::Arc;

use dmsim::{FaultConfig, WorkerPool};
use noderun::RunConfig;
use ooc_bench::TextTable;
use ooc_core::{compile_hir, CompilerOptions};
use ooc_sched::obs::render_event;
use ooc_sched::{
    profile, profile_all_on, run_workload_guarded, run_workload_guarded_observed, DomainConfig,
    EventLog, GuardedReport, JobProfile, JobSpec, ObsKind, Policy, ProgramJob, SloScorecard,
};
use ooc_trace::html::{Lane, Series};

struct Opts {
    jobs: usize,
    ranks: usize,
    seed: u64,
    out: String,
}

fn parse_opts() -> Opts {
    let mut o = Opts {
        jobs: 16,
        ranks: 4,
        seed: 2026,
        out: "BENCH_service.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| panic!("{a} needs a value"));
        match a.as_str() {
            "--jobs" => o.jobs = val().parse().expect("--jobs N"),
            "--ranks" => o.ranks = val().parse().expect("--ranks R"),
            "--seed" => o.seed = val().parse().expect("--seed S"),
            "--out" => o.out = val(),
            other => panic!("unknown argument {other}"),
        }
    }
    assert!(o.jobs >= 6, "need at least 6 jobs (tenants + short stream)");
    assert!(o.ranks >= 2, "need >= 2 disks to survive a disk death");
    o
}

/// The fleet: a few long tenants at t=0 that fill the concurrency cap,
/// then short jobs streaming in behind them. Every job carries its own
/// machine-level chaos stream (distinct tag).
fn fleet(opts: &Opts, nlong: usize) -> Vec<ProgramJob> {
    let copts = CompilerOptions::default();
    let short =
        Arc::new(compile_hir(ooc_bench::gaxpy_hir(16 * opts.ranks, opts.ranks), &copts).unwrap());
    let long =
        Arc::new(compile_hir(ooc_bench::gaxpy_hir(32 * opts.ranks, opts.ranks), &copts).unwrap());
    (0..opts.jobs)
        .map(|i| {
            let compiled = if i < nlong { &long } else { &short };
            let cfg = RunConfig {
                fault: Some(FaultConfig::chaos(opts.seed)),
                ..RunConfig::default()
            };
            let name = if i < nlong {
                format!("tenant-{i}")
            } else {
                format!("short-{}", i - nlong)
            };
            ProgramJob::new(name, Arc::clone(compiled))
                .with_cfg(cfg)
                .with_job_tag(i as u32 + 1)
        })
        .collect()
}

/// Specs: tenants at t=0, short jobs staggered so they arrive while the
/// cap is full of tenants.
fn specs_from(jobs: &[ProgramJob], profiles: &[JobProfile], nlong: usize) -> Vec<JobSpec> {
    let short_ms = profiles[nlong].makespan();
    jobs.iter()
        .zip(profiles)
        .enumerate()
        .map(|(i, (j, p))| {
            let submit = if i < nlong {
                0.0
            } else {
                0.4 * short_ms * (i - nlong) as f64
            };
            JobSpec::new(j.name.clone(), p.clone()).with_submit(submit)
        })
        .collect()
}

fn domain_cfg(opts: &Opts, profiles: &[JobProfile], nlong: usize, policy: Policy) -> DomainConfig {
    let short_ms = profiles[nlong].makespan();
    let long_ms = profiles[0].makespan();
    DomainConfig {
        policy,
        disks: opts.ranks,
        max_concurrent: nlong,
        seed: opts.seed,
        hang_chance: 0.25,
        watchdog_quantum: 0.5 * short_ms,
        deadline_factor: 8.0,
        max_retries: 2,
        backoff_base: 0.25 * short_ms,
        checkpoint_every: 4,
        epoch: short_ms / 8.0,
        disk_deaths: vec![(1.5 * long_ms.min(short_ms * 6.0), opts.ranks - 1)],
        ..DomainConfig::default()
    }
}

/// FNV-1a digest of the rendered event stream: a stable fingerprint the
/// JSON summary carries so stream divergence shows up in a one-line diff.
fn fnv64(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One policy's observed run: the reproducible pieces the artifacts are
/// built from.
struct PolicyRun {
    report: GuardedReport,
    log: EventLog,
    card: SloScorecard,
    stream: String,
}

fn run_policy(specs: &[JobSpec], cfg: &DomainConfig) -> PolicyRun {
    let sample_every = cfg.epoch * 2.0;
    // Observation must be transparent: the unobserved run is the oracle.
    let plain = run_workload_guarded(specs, cfg).expect("admissible batch");
    let mut log = EventLog::default();
    let report = run_workload_guarded_observed(specs, cfg, sample_every, &mut log)
        .expect("admissible batch");
    assert_eq!(
        plain.jobs,
        report.jobs,
        "{}: observer perturbed the guarded run",
        cfg.policy.name()
    );
    assert_eq!(plain.farm.served, report.farm.served);
    // And reproducible: a second observed run streams identical bytes.
    let mut log2 = EventLog::default();
    run_workload_guarded_observed(specs, cfg, sample_every, &mut log2).unwrap();
    let stream = log.render();
    assert_eq!(
        stream,
        log2.render(),
        "{}: event stream is not reproducible",
        cfg.policy.name()
    );
    let card = SloScorecard::from_guarded(&report);
    PolicyRun {
        report,
        log,
        card,
        stream,
    }
}

/// Deterministic JSON summary: one scorecard and stream digest per policy.
/// Zero-sample quantiles are absent, not zero: `null` in JSON, `-` in the
/// console table.
fn opt_num(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), |v| format!("{v:.9}"))
}

fn opt_cell(v: Option<f64>) -> String {
    v.map_or_else(|| "-".to_string(), |v| format!("{v:.3}"))
}

fn summarize(runs: &[PolicyRun], opts: &Opts, sample_every: f64) -> String {
    let mut json = String::from("{\n  \"bench\": \"service\",\n");
    json.push_str(&format!(
        "  \"jobs\": {},\n  \"ranks\": {},\n  \"seed\": {},\n  \"sample_every\": {:.9},\n",
        opts.jobs, opts.ranks, opts.seed, sample_every
    ));
    json.push_str("  \"policies\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let c = &r.card;
        let postmortems = r
            .report
            .jobs
            .iter()
            .filter(|j| !j.postmortem.is_empty())
            .count();
        json.push_str(&format!(
            "    {{\"policy\": \"{}\", \"completed\": {}, \"recovered\": {}, \
             \"killed\": {}, \"quarantined\": {}, \"deadline_hit_rate\": {:.9}, \
             \"p50_turnaround\": {}, \"p95_turnaround\": {}, \
             \"p99_turnaround\": {}, \"mean_slowdown\": {:.9}, \"makespan\": {:.9}, \
             \"events\": {}, \"samples\": {}, \"postmortems\": {}, \
             \"stream_fnv\": \"{:016x}\"}}{}\n",
            c.policy,
            c.completed,
            c.recovered,
            c.killed,
            c.quarantined,
            c.deadline_hit_rate(),
            opt_num(c.p50_turnaround),
            opt_num(c.p95_turnaround),
            opt_num(c.p99_turnaround),
            c.mean_slowdown,
            c.makespan,
            r.log.events.len(),
            r.log.samples.len(),
            postmortems,
            fnv64(&r.stream),
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

/// The self-contained HTML report for one policy's observed run: a job
/// timeline (admission to terminal event, kills and retries as marks) and
/// the sampled series (per-disk utilization and depth, in-flight jobs).
fn html_report(run: &PolicyRun, opts: &Opts) -> String {
    let mut lanes: Vec<Lane> = Vec::new();
    let mut farm_lane = Lane::new("farm");
    for e in &run.log.events {
        if let ObsKind::DiskDeath { disk, migrated, .. } = &e.kind {
            farm_lane
                .marks
                .push((e.t, format!("disk {disk} died, {migrated} migrated")));
        }
    }
    lanes.push(farm_lane);
    for j in &run.report.jobs {
        let mut lane = Lane::new(&j.name);
        let mut admit: Option<f64> = None;
        for e in run.log.events.iter().filter(|e| e.job == j.job) {
            match &e.kind {
                ObsKind::Admitted { .. } => admit = admit.or(Some(e.t)),
                ObsKind::Completed { .. } | ObsKind::Killed | ObsKind::Quarantined { .. } => {
                    if let Some(a) = admit {
                        lane.spans.push((a, e.t, j.outcome.label().to_string()));
                    }
                }
                ObsKind::WatchdogKill
                | ObsKind::DeadlineKill
                | ObsKind::Preempted
                | ObsKind::RetryScheduled { .. } => {
                    lane.marks.push((e.t, e.kind.tag().to_string()));
                }
                _ => {}
            }
        }
        lanes.push(lane);
    }
    let mut util: Vec<Series> = (0..opts.ranks)
        .map(|d| Series::new(&format!("disk {d} util"), Vec::new()))
        .collect();
    let mut depth: Vec<Series> = (0..opts.ranks)
        .map(|d| Series::new(&format!("disk {d} depth"), Vec::new()))
        .collect();
    let mut in_flight = Series::new("in-flight jobs", Vec::new());
    for s in &run.log.samples {
        for (d, ds) in s.disks.iter().enumerate() {
            util[d].points.push((s.t, ds.utilization));
            depth[d].points.push((s.t, ds.depth as f64));
        }
        in_flight.points.push((s.t, s.in_flight as f64));
    }
    let charts: Vec<(&str, Vec<Series>)> = vec![
        ("disk utilization", util),
        ("queue depth", depth),
        ("in-flight jobs", vec![in_flight]),
    ];
    ooc_trace::html::render(
        &format!("workload observatory — {} policy", run.card.policy),
        &lanes,
        &charts,
    )
}

fn main() {
    let opts = parse_opts();
    let nlong = 4.min(opts.jobs / 4).max(2);

    // Capture on both engines; the observed runs are pure functions of
    // the profiles, so engine parity here transfers to every artifact.
    let jobs = fleet(&opts, nlong);
    let threaded: Vec<JobProfile> = jobs
        .iter()
        .map(|j| profile(&j.compiled, &j.cfg).expect("threaded capture"))
        .collect();
    let pool = WorkerPool::new(4);
    let pooled = profile_all_on(&jobs, &pool).expect("pooled capture");
    assert_eq!(threaded, pooled, "Threads / Pool(4) capture parity broke");
    println!(
        "service bench: {} jobs ({} tenants) on {} disks, seed {}",
        opts.jobs, nlong, opts.ranks, opts.seed
    );

    let specs = specs_from(&jobs, &threaded, nlong);
    let policies = [
        Policy::Fifo,
        Policy::Elevator,
        Policy::Deadline,
        Policy::FairShare,
    ];
    let runs: Vec<PolicyRun> = policies
        .iter()
        .map(|&p| run_policy(&specs, &domain_cfg(&opts, &threaded, nlong, p)))
        .collect();
    let sample_every = domain_cfg(&opts, &threaded, nlong, Policy::Fifo).epoch * 2.0;
    let json = summarize(&runs, &opts, sample_every);

    // Engine parity: the pooled capture feeds one policy end to end and
    // must reproduce the threaded stream byte for byte.
    let pooled_specs = specs_from(&jobs, &pooled, nlong);
    let via_pool = run_policy(
        &pooled_specs,
        &domain_cfg(&opts, &pooled, nlong, Policy::FairShare),
    );
    assert_eq!(
        runs.last().unwrap().stream,
        via_pool.stream,
        "Threads vs Pool(4) event streams diverged"
    );

    let mut table = TextTable::new(&[
        "Policy",
        "Completed",
        "Quarantined",
        "Hit rate",
        "p50",
        "p95",
        "Slowdown",
        "Events",
    ]);
    for r in &runs {
        let c = &r.card;
        table.row(vec![
            c.policy.to_string(),
            format!("{}/{}", c.completed, c.jobs),
            c.quarantined.to_string(),
            format!("{:.2}", c.deadline_hit_rate()),
            opt_cell(c.p50_turnaround),
            opt_cell(c.p95_turnaround),
            format!("{:.2}", c.mean_slowdown),
            r.log.events.len().to_string(),
        ]);
    }
    print!("{}", table.render());

    // A postmortem surfaced somewhere across the policy sweep, and every
    // quarantined job carries one ending in its terminal event.
    for r in &runs {
        for j in r.report.jobs.iter().filter(|j| !j.postmortem.is_empty()) {
            let last = j.postmortem.last().unwrap();
            assert!(
                matches!(last.kind, ObsKind::Quarantined { .. } | ObsKind::Killed),
                "{}: postmortem does not end terminally: {}",
                j.name,
                render_event(last)
            );
        }
    }

    // Artifacts: JSON summary, Prometheus exposition, HTML report — each
    // schema-checked here, byte-compared across invocations by CI.
    let cards: Vec<SloScorecard> = runs.iter().map(|r| r.card.clone()).collect();
    let prom = ooc_trace::prom::render(&SloScorecard::prom(&cards));
    ooc_trace::prom::validate(&prom).expect("Prometheus exposition validates");
    let html = html_report(runs.last().unwrap(), &opts);
    ooc_trace::html::validate(&html).expect("HTML report validates");
    ooc_trace::json::parse(&json).expect("bench JSON is well-formed");

    let stem = opts.out.strip_suffix(".json").unwrap_or(&opts.out);
    std::fs::write(&opts.out, &json).expect("write bench JSON");
    std::fs::write(format!("{stem}.prom"), &prom).expect("write Prometheus exposition");
    std::fs::write(format!("{stem}.html"), &html).expect("write HTML report");
    println!("\nwrote {} {stem}.prom {stem}.html", opts.out);

    let total_events: usize = runs.iter().map(|r| r.log.events.len()).sum();
    let total_samples: usize = runs.iter().map(|r| r.log.samples.len()).sum();
    println!(
        "ok: {} policies scored, {} events and {} samples streamed; \
         artifacts reproducible across runs and engines",
        runs.len(),
        total_events,
        total_samples
    );
}
