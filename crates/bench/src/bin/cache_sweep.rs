//! Budget sweep of the slab reuse cache (DESIGN.md "Reuse and caching").
//!
//! For each kernel the runtime cache budget sweeps from uncached to
//! several multiples of the working set, and the table reports the disk
//! requests, bytes, cache hits, write-backs and simulated time per
//! processor. Requests are monotonically non-increasing in the budget:
//! a larger cache never issues more disk requests (EXPERIMENTS.md).
//!
//! Three kernels exercise the three reuse shapes:
//!
//! * **gaxpy** (column and row slabs) — cyclic slab re-reads of A; once
//!   the budget covers the local A panel the re-reads collapse to one
//!   cold pass. The compiler's reuse-aware estimate (`est`) replays the
//!   same access sequence through a predictor cache, so estimated and
//!   measured request counts agree exactly.
//! * **jacobi sweeps** (elementwise) — ghost-row overlap between adjacent
//!   slabs and cross-sweep reuse of the just-written array.
//! * **transpose** — no read reuse (the source streams once); the gain is
//!   pure write-back coalescing of the small per-piece column fragments.
//!
//! Usage: `cargo run --release -p ooc-bench --bin cache_sweep [n]`
//! (default n = 128).

use dmsim::{Machine, MachineConfig, RunReport};
use noderun::{init_fn, run, RunConfig};
use ooc_array::{ArrayDesc, ArrayId, Distribution, FileLayout, OocEnv, Shape};
use ooc_bench::table::secs;
use ooc_bench::{gaxpy_hir, TextTable};
use ooc_core::plan::TransposePlan;
use ooc_core::stripmine::SlabSizing;
use ooc_core::{compile_source, CompilerOptions, SlabStrategy};
use pario::ElemKind;

fn budget_label(b: Option<usize>) -> String {
    match b {
        None => "uncached".to_string(),
        Some(b) if b >= 1 << 20 => format!("{} MiB", b >> 20),
        Some(b) => format!("{} KiB", b >> 10),
    }
}

/// One row of measured counters from rank 0 (all ranks are symmetric for
/// evenly divisible configurations).
fn counters(report: &RunReport) -> Vec<String> {
    let s = report.per_proc()[0].stats;
    vec![
        s.io_requests().to_string(),
        s.io_bytes().to_string(),
        s.cache_hits.to_string(),
        s.write_back_requests.to_string(),
        secs(report.elapsed()),
    ]
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("n must be an integer"))
        .unwrap_or(128);
    let p = 4usize;
    let la_bytes = n * (n / p) * 4; // one local panel of A (or C)

    // ---- 1. GAXPY: slab re-reads collapse as the budget grows -----------
    for strategy in [SlabStrategy::ColumnSlab, SlabStrategy::RowSlab] {
        println!(
            "cache sweep: gaxpy {n}x{n}, {p} procs, {}, ratio 1/4\n",
            strategy.name()
        );
        let mut t = TextTable::new(&[
            "budget",
            "req/proc",
            "bytes/proc",
            "hits",
            "write-backs",
            "time (s)",
            "est req",
            "est time (s)",
        ]);
        let budgets = [
            None,
            Some(la_bytes / 4),
            Some(la_bytes / 2),
            Some(la_bytes),
            Some(2 * la_bytes),
        ];
        let mut last_requests = u64::MAX;
        for budget in budgets {
            let compiled = ooc_core::compile_hir(
                gaxpy_hir(n, p),
                &CompilerOptions {
                    sizing: SlabSizing::Ratio(0.25),
                    force_strategy: Some(strategy),
                    cache_budget: budget,
                    ..CompilerOptions::default()
                },
            )
            .expect("gaxpy compiles");
            let mut cfg = RunConfig {
                cache_budget: budget,
                ..RunConfig::default()
            };
            cfg.init
                .insert("a".into(), init_fn(ooc_bench::harness::init_a));
            cfg.init
                .insert("b".into(), init_fn(ooc_bench::harness::init_b));
            let outcome = run(&compiled, &cfg).expect("runs");
            let mut cells = vec![budget_label(budget)];
            cells.extend(counters(&outcome.report));
            cells.push(compiled.estimates[0].io_requests().to_string());
            cells.push(secs(compiled.estimates[0].time()));
            t.row(cells);
            let req = outcome.report.per_proc()[0].stats.io_requests();
            assert!(
                req <= last_requests,
                "budget {budget:?}: {req} requests > previous {last_requests}"
            );
            last_requests = req;
        }
        print!("{}", t.render());
        println!();
    }

    // ---- 2. Jacobi sweeps: ghost overlap + cross-sweep reuse ------------
    println!("cache sweep: jacobi {n}x{n}, {p} procs, 4 sweeps\n");
    {
        let src = format!(
            "
      parameter (n={n})
      real u(n, n), v(n, n)
!hpf$ processors pr({p})
!hpf$ template t(n)
!hpf$ distribute t(block) on pr
!hpf$ align (:, *) with t :: u, v
      do it = 1, 2
        forall (i = 2:n-1, j = 2:n-1)
          v(i, j) = 0.25 * (u(i-1, j) + u(i+1, j) + u(i, j-1) + u(i, j+1))
        end forall
        forall (i = 2:n-1, j = 2:n-1)
          u(i, j) = 0.25 * (v(i-1, j) + v(i+1, j) + v(i, j-1) + v(i, j+1))
        end forall
      end do
      end
"
        );
        let compiled = compile_source(
            &src,
            &CompilerOptions {
                elw_slab_elems: 4 * n * 3,
                ..CompilerOptions::default()
            },
        )
        .expect("jacobi compiles");
        let mut t = TextTable::new(&[
            "budget",
            "req/proc",
            "bytes/proc",
            "hits",
            "write-backs",
            "time (s)",
        ]);
        let mut last_requests = u64::MAX;
        for budget in [None, Some(la_bytes / 2), Some(la_bytes), Some(4 * la_bytes)] {
            let mut cfg = RunConfig {
                cache_budget: budget,
                ..RunConfig::default()
            };
            cfg.init.insert(
                "u".into(),
                init_fn(|g| ((g[0] * 13 + g[1] * 7) % 17) as f32 * 0.0625),
            );
            let outcome = run(&compiled, &cfg).expect("runs");
            let mut cells = vec![budget_label(budget)];
            cells.extend(counters(&outcome.report));
            t.row(cells);
            let req = outcome.report.per_proc()[0].stats.io_requests();
            assert!(req <= last_requests, "requests must not grow with budget");
            last_requests = req;
        }
        print!("{}", t.render());
        println!();
    }

    // ---- 3. Transpose: pure write-back coalescing -----------------------
    println!("cache sweep: transpose {n}x{n}, {p} procs (write coalescing only)\n");
    {
        let shape = Shape::matrix(n, n);
        let src = ArrayDesc::new(
            ArrayId(0),
            "s",
            ElemKind::F32,
            Distribution::row_block(shape.clone(), p),
        )
        .with_layout(FileLayout::column_major(2));
        let dst = ArrayDesc::new(
            ArrayId(1),
            "d",
            ElemKind::F32,
            Distribution::column_block(shape, p),
        );
        let plan = TransposePlan {
            src: src.clone(),
            dst: dst.clone(),
            slab_thickness: (n / p / 4).max(1),
            method: pario::IoMethod::Direct,
        };
        let value = |g: &[usize]| (g[0] * 100 + g[1]) as f32;
        let mut t = TextTable::new(&[
            "budget",
            "req/proc",
            "bytes/proc",
            "hits",
            "write-backs",
            "time (s)",
        ]);
        let mut last_requests = u64::MAX;
        for budget in [None, Some(la_bytes / 4), Some(la_bytes), Some(4 * la_bytes)] {
            let machine = Machine::new(MachineConfig::delta(p));
            let report = machine.run(|ctx| {
                let mut env = OocEnv::in_memory(ctx.rank());
                env.alloc(&src).unwrap();
                env.alloc(&dst).unwrap();
                env.load_global(&src, &value).unwrap();
                if let Some(b) = budget {
                    env.enable_cache(b);
                }
                noderun::transpose::execute(ctx, &mut env, &plan).unwrap();
                env.flush_cache(ctx).unwrap();
            });
            let mut cells = vec![budget_label(budget)];
            cells.extend(counters(&report));
            t.row(cells);
            let req = report.per_proc()[0].stats.io_requests();
            assert!(req <= last_requests, "requests must not grow with budget");
            last_requests = req;
        }
        print!("{}", t.render());
    }
}
