//! Table 2: performance of the row-slab version for different slab sizes
//! of arrays A and B (2K×2K, 16 processors) — the memory-allocation
//! experiment, plus the compiler's automatic policies on the same budget.
//!
//! Usage: `cargo run --release -p ooc-bench --bin table2 [n]`
//! (default n = 2048, the paper's size).

use ooc_bench::table::secs;
use ooc_bench::{run_matmul, MatmulSetup, TextTable};
use ooc_core::stripmine::SlabSizing;
use ooc_core::{MemoryPolicy, SlabStrategy};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("n must be an integer"))
        .unwrap_or(2048);
    let p = 16usize;
    let fixed = 256usize * n / 2048; // scale the paper's 256 with n
    let sweep: Vec<usize> = [256usize, 512, 1024, 2048]
        .iter()
        .map(|s| s * n / 2048)
        .collect();

    println!(
        "Table 2: row-slab {n}x{n} matmul on {p} processors, varying slab sizes (time in seconds)\n"
    );
    let mut t = TextTable::new(&[
        "Slab B",
        "A fixed: time",
        "Slab A",
        "B fixed: time",
        "Total (A+B)",
    ]);
    for &s in &sweep {
        let vary_b = run_matmul(&MatmulSetup {
            n,
            p,
            strategy: Some(SlabStrategy::RowSlab),
            sizing: SlabSizing::Explicit { a: fixed, b: s },
            reorganize: true,
            verify: false,
            cache_budget: None,
        });
        let vary_a = run_matmul(&MatmulSetup {
            n,
            p,
            strategy: Some(SlabStrategy::RowSlab),
            sizing: SlabSizing::Explicit { a: s, b: fixed },
            reorganize: true,
            verify: false,
            cache_budget: None,
        });
        t.row(vec![
            s.to_string(),
            secs(vary_b.sim_seconds),
            s.to_string(),
            secs(vary_a.sim_seconds),
            (fixed + s).to_string(),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\npaper (2Kx2K): slab B sweep 826.94 -> 493.04 s; slab A sweep 826.94 -> 452.29 s \
         (giving A the larger slab wins at equal total memory)\n"
    );

    // The compiler's automatic policies on the equal-total budget.
    let lc = n / p;
    let budget_elems = (fixed + 2048 * n / 2048) * lc; // the largest swept total
    println!("automatic memory allocation on a {budget_elems}-element budget:");
    let mut t2 = TextTable::new(&["policy", "time (s)", "requests/proc"]);
    for (policy, name) in [
        (MemoryPolicy::EqualSplit, "equal split"),
        (MemoryPolicy::AccessWeighted, "access weighted"),
        (MemoryPolicy::Search, "search"),
    ] {
        let row = run_matmul(&MatmulSetup {
            n,
            p,
            strategy: Some(SlabStrategy::RowSlab),
            sizing: SlabSizing::Budget {
                elems: budget_elems,
                policy,
            },
            reorganize: true,
            verify: false,
            cache_budget: None,
        });
        t2.row(vec![
            name.to_string(),
            secs(row.sim_seconds),
            row.io_requests.to_string(),
        ]);
    }
    print!("{}", t2.render());
}
