//! Figure 10: effect of slab-size variation on the column-slab translation
//! (the straightforward extension of in-core compilation).
//!
//! Usage: `cargo run --release -p ooc-bench --bin fig10 [n]`
//! (default n = 1024, the paper's size).

use ooc_bench::table::secs;
use ooc_bench::{run_matmul, MatmulSetup, TextTable};
use ooc_core::SlabStrategy;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("n must be an integer"))
        .unwrap_or(1024);
    let procs = [4usize, 16, 32, 64];
    let ratios = [(1.0, "1"), (0.5, "1/2"), (0.25, "1/4"), (0.125, "1/8")];

    println!("Figure 10: column-slab {n}x{n} matmul, time vs slab ratio (simulated seconds)\n");
    let mut headers = vec!["Processors".to_string()];
    for (_, label) in ratios {
        headers.push(format!("ratio {label}"));
    }
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = TextTable::new(&hdr_refs);
    for p in procs {
        let mut cells = vec![p.to_string()];
        for (ratio, _) in ratios {
            let row = run_matmul(&MatmulSetup::table1(n, p, ratio, SlabStrategy::ColumnSlab));
            cells.push(secs(row.sim_seconds));
        }
        t.row(cells);
    }
    print!("{}", t.render());

    // The figure itself: ASCII bars plus a gnuplot-ready data file.
    let series: Vec<ooc_bench::plot::Series> = procs
        .iter()
        .map(|&p| {
            ooc_bench::plot::Series::new(
                &format!("{p} procs"),
                ratios
                    .iter()
                    .map(|&(ratio, label)| {
                        let row =
                            run_matmul(&MatmulSetup::table1(n, p, ratio, SlabStrategy::ColumnSlab));
                        (label.to_string(), row.sim_seconds)
                    })
                    .collect(),
            )
        })
        .collect();
    println!(
        "\n{}",
        ooc_bench::plot::ascii_bars("time (s) by slab ratio", &series, 48)
    );
    let dat_path = "docs/results/fig10.dat";
    if std::fs::write(dat_path, ooc_bench::plot::gnuplot_dat(&series)).is_ok() {
        println!("gnuplot data written to {dat_path}");
    }
    println!(
        "\nexpected shape (paper, 1Kx1K): time grows as the slab ratio shrinks \
         (more, smaller I/O requests) and falls with more processors"
    );
}
