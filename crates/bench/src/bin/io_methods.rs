//! Access-method comparison: direct vs sieved vs two-phase collective I/O
//! (DESIGN.md "Two-phase collective I/O").
//!
//! The scenario is the motivating one for two-phase I/O: a **row-major
//! file** read into a **column-distributed** computation. Every rank's
//! direct accesses are tiny strided row fragments, so requests scale with
//! `rows/rank x ranks`; the two-phase method reads each rank's
//! file-conforming block in one contiguous request and reshuffles in the
//! exchange phase, so the request count collapses to one per rank.
//!
//! For each method the table reports measured per-processor request and
//! byte counters, message traffic, simulated I/O time and elapsed time,
//! next to the compiler's replayed estimate (`est req` — exact by
//! construction). A second table shows the cost-based selector's estimates
//! and its pick, and the trace-derived per-method request-size histograms
//! are rendered underneath.
//!
//! Usage: `cargo run --release -p ooc-bench --bin io_methods [n] [p]`
//! (default n = 256, p = 16).

use dmsim::{CostModel, Machine, MachineConfig, TraceConfig};
use ooc_array::{
    redist_counts, redistribute_with, ArrayDesc, ArrayId, Distribution, FileLayout, OocEnv, Shape,
};
use ooc_bench::table::secs;
use ooc_bench::TextTable;
use ooc_core::nodegen::remap_nodes;
use ooc_core::plan::RemapSpec;
use ooc_core::reorg::choose_io_method;
use pario::{ElemKind, IoMethod};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args
        .next()
        .map(|s| s.parse().expect("n must be an integer"))
        .unwrap_or(256);
    let p: usize = args
        .next()
        .map(|s| s.parse().expect("p must be an integer"))
        .unwrap_or(16);
    assert!(n.is_multiple_of(p), "n must divide evenly across {p} ranks");

    let shape = Shape::matrix(n, n);
    // Row-block source stored row-major (the file-conforming distribution);
    // column-block destination (the computation-conforming one).
    let src = ArrayDesc::new(
        ArrayId(0),
        "a",
        ElemKind::F32,
        Distribution::row_block(shape.clone(), p),
    )
    .with_layout(FileLayout::row_major(2));
    let dst = ArrayDesc::new(
        ArrayId(1),
        "a'",
        ElemKind::F32,
        Distribution::column_block(shape, p),
    );
    let value = |g: &[usize]| (g[0] * 31 + g[1]) as f32 * 0.5;

    println!("io methods: column-distributed read of a row-major {n}x{n} file, {p} procs\n");

    // ---- Measured comparison table --------------------------------------
    let mut t = TextTable::new(&[
        "method",
        "read req/proc",
        "read bytes",
        "write req/proc",
        "msgs/proc",
        "io time (s)",
        "total (s)",
        "est req",
    ]);
    let mut io_times = Vec::new();
    let mut histograms = Vec::new();
    for method in IoMethod::ALL {
        let mut config = MachineConfig::delta(p);
        config.trace = TraceConfig::on();
        let machine = Machine::new(config);
        let mut report = machine.run(|ctx| {
            let mut env = OocEnv::in_memory(ctx.rank());
            env.alloc(&src).unwrap();
            env.alloc(&dst).unwrap();
            env.load_global(&src, &value).unwrap();
            redistribute_with(ctx, &mut env, &src, &dst, method, ctx).unwrap();
        });
        let s = report.per_proc()[0].stats;
        let counts = redist_counts(&src, &dst, 0, method);
        let est_reads = counts.read_requests + counts.dst_read_requests;
        t.row(vec![
            method.label().to_string(),
            s.io_read_requests.to_string(),
            s.io_bytes_read.to_string(),
            s.io_write_requests.to_string(),
            s.msgs_sent.to_string(),
            secs(s.time_io),
            secs(report.elapsed()),
            est_reads.to_string(),
        ]);
        assert_eq!(
            s.io_read_requests,
            est_reads,
            "{}: replayed read estimate must match the measured counter",
            method.label()
        );
        io_times.push((method, s.time_io));
        let trace = report.take_trace().expect("tracing was enabled");
        let reg = ooc_trace::metrics::from_trace(&trace);
        if let Some(h) = reg.io_request_bytes_by_method.get(method.label()) {
            histograms.push((method, h.clone()));
        }
    }
    print!("{}", t.render());
    println!();

    // ---- Selector table --------------------------------------------------
    let spec = RemapSpec {
        src: src.clone(),
        tmp: dst.clone(),
        method: IoMethod::Direct,
    };
    let choice = choose_io_method(
        format!("remap {}", src.name),
        &CostModel::delta(p),
        None,
        |m| {
            remap_nodes(
                &RemapSpec {
                    method: m,
                    ..spec.clone()
                },
                0,
            )
        },
    );
    let mut sel = TextTable::new(&["method", "est req", "est bytes", "est time (s)", "chosen"]);
    for (m, est) in &choice.estimates {
        sel.row(vec![
            m.label().to_string(),
            est.io_requests().to_string(),
            est.io_bytes().to_string(),
            secs(est.time()),
            if *m == choice.chosen {
                "<-".into()
            } else {
                String::new()
            },
        ]);
    }
    print!("{}", sel.render());
    println!();

    // ---- Per-method request-size histograms (from the trace) -------------
    for (method, h) in &histograms {
        print!(
            "{}",
            h.render(&format!("{} request bytes", method.label()), 30)
        );
    }
    println!();

    // The paper's claim, kept honest: at >= 16 ranks the two-phase method
    // beats direct by at least 5x on simulated I/O time, and the selector
    // finds that on its own.
    let time_of = |m: IoMethod| io_times.iter().find(|(x, _)| *x == m).unwrap().1;
    let (direct, two_phase) = (time_of(IoMethod::Direct), time_of(IoMethod::TwoPhase));
    println!(
        "direct/two-phase io-time ratio: {:.1}x (selector chose {})",
        direct / two_phase,
        choice.chosen.label()
    );
    if p >= 16 {
        assert!(
            direct >= 5.0 * two_phase,
            "two-phase must win >=5x at {p} ranks: direct {direct} vs two-phase {two_phase}"
        );
        assert_eq!(
            choice.chosen,
            IoMethod::TwoPhase,
            "selector must pick two-phase on its own"
        );
    }
}
