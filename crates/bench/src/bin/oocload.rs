//! `oocload` — seeded multi-tenant load generator for the `oocd` daemon.
//!
//! Replays a deterministic bursty arrival trace against a running daemon
//! (or an embedded one when `--connect` is absent): by default 1000 job
//! submissions from 100 simulated tenants, delivered racily from 8
//! concurrent submitter connections. The trace is a pure function of the
//! seed, and the daemon is a virtual-time service, so the artifacts —
//! `BENCH_daemon.json` (drain summary + scorecard) and
//! `BENCH_daemon.prom` (SLO exposition) — are byte-identical across
//! invocations and across embedded/external daemons, no matter how the
//! submitter threads interleave on the wire. CI's daemon-smoke job `cmp`s
//! exactly that.
//!
//! Unless `--no-abuse` is given, the run also attacks the protocol the
//! way a buggy tenant would — an oversized frame announcement, a
//! truncated frame followed by a hangup, invalid JSON, an unknown op, a
//! structurally malformed profile, a duplicate job id, and subscribers
//! that disconnect mid-stream — and asserts the daemon shrugs all of it
//! off with typed errors while the accepted session stays intact.
//!
//! Usage: `cargo run --release -p ooc-bench --bin oocload --
//! [--connect ADDR] [--jobs N] [--tenants T] [--threads K] [--seed S]
//! [--out FILE] [--no-abuse] [--no-shutdown]`
//! (defaults: 1000 jobs, 100 tenants, 8 threads, seed 2026,
//! FILE = BENCH_daemon.json; ADDR is a socket path or host:port).

use std::collections::BTreeSet;
use std::time::Duration;

use dmsim::FaultStream;
use ooc_sched::serve::{serve, submit_json, Client, Listener, ProtoError};
use ooc_sched::{IoReq, JobProfile, JobSpec};
use ooc_trace::json::{self, Json};

struct Opts {
    connect: Option<String>,
    jobs: usize,
    tenants: u64,
    threads: usize,
    seed: u64,
    out: String,
    abuse: bool,
    shutdown: bool,
}

fn parse_opts() -> Opts {
    let mut o = Opts {
        connect: None,
        jobs: 1000,
        tenants: 100,
        threads: 8,
        seed: 2026,
        out: "BENCH_daemon.json".to_string(),
        abuse: true,
        shutdown: true,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| panic!("{a} needs a value"));
        match a.as_str() {
            "--connect" => o.connect = Some(val()),
            "--jobs" => o.jobs = val().parse().expect("--jobs N"),
            "--tenants" => o.tenants = val().parse().expect("--tenants T"),
            "--threads" => o.threads = val().parse().expect("--threads K"),
            "--seed" => o.seed = val().parse().expect("--seed S"),
            "--out" => o.out = val(),
            "--no-abuse" => o.abuse = false,
            "--no-shutdown" => o.shutdown = false,
            other => panic!("unknown argument {other}"),
        }
    }
    assert!(o.jobs > 0 && o.threads > 0 && o.tenants > 0);
    o
}

struct Submission {
    tenant: String,
    spec: JobSpec,
}

/// The arrival trace: bursts of 1–12 jobs landing together after quiet
/// gaps, each job a small randomized replay profile owned by a random
/// tenant. A pure function of `(seed, jobs, tenants)`.
fn arrival_trace(opts: &Opts) -> Vec<Submission> {
    let r = FaultStream::derive(opts.seed, 0x0a11);
    let mut t = 0.0;
    let mut out = Vec::with_capacity(opts.jobs);
    while out.len() < opts.jobs {
        t += 1.0 + 9.0 * r.next_f64();
        let burst = 1 + (r.next_u64() % 12) as usize;
        for k in 0..burst.min(opts.jobs - out.len()) {
            let i = out.len();
            let tenant = format!("t{:03}", r.next_u64() % opts.tenants);
            let ranks = 1 + (r.next_u64() % 2) as usize;
            let reqs = 2 + (r.next_u64() % 6) as usize;
            let dt = 0.5 + r.next_f64();
            let stream: Vec<IoReq> = (0..reqs)
                .map(|q| IoReq {
                    t0: q as f64 * dt,
                    t1: q as f64 * dt + 0.6 * dt,
                    requests: 1 + r.next_u64() % 4,
                    bytes: 1 << (10 + r.next_u64() % 6),
                    offset: Some(r.next_u64() % (1 << 30)),
                    write: r.chance(0.3),
                })
                .collect();
            let profile = JobProfile {
                rank_finish: vec![reqs as f64 * dt; ranks],
                streams: vec![stream; ranks],
                ..JobProfile::default()
            };
            let spec = JobSpec::new(format!("{tenant}-j{i:04}"), profile)
                .with_submit(t + 0.05 * k as f64)
                .with_weight(1.0 + (r.next_u64() % 4) as f64);
            out.push(Submission { tenant, spec });
        }
    }
    out
}

/// Connect with retries — the CI smoke job launches `oocd` in the
/// background and the socket may not be bound yet.
fn connect_retry(addr: &str) -> Client {
    for _ in 0..50 {
        if let Ok(c) = Client::connect(addr) {
            return c;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    panic!("could not connect to {addr}");
}

/// The abuse battery: every malformed interaction must come back as a
/// typed error (or a dropped connection) and leave the session intact.
fn abuse(addr: &str, known_good: &str) {
    // Oversized frame announcement: typed error, then the server hangs up.
    let mut c = connect_retry(addr);
    c.send_raw(&u32::MAX.to_le_bytes()).unwrap();
    let err = c.next_frame().unwrap().expect("error frame");
    assert_eq!(
        err.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("frame_too_large")
    );
    assert!(c.next_frame().unwrap().is_none());

    // Truncated frame, then hangup: the daemon just drops us.
    let mut c = connect_retry(addr);
    c.send_raw(&512u32.to_le_bytes()).unwrap();
    c.send_raw(b"not five hundred twelve bytes").unwrap();
    drop(c);

    // Invalid JSON, unknown op, malformed profile: typed errors on a
    // connection that keeps serving.
    let mut c = connect_retry(addr);
    assert!(matches!(
        c.request("}{").unwrap_err(),
        ProtoError::BadJson { .. }
    ));
    assert!(matches!(
        c.request("{\"op\":\"frobnicate\"}").unwrap_err(),
        ProtoError::BadRequest { .. }
    ));
    let poison = "{\"op\":\"submit\",\"job\":{\"name\":\"poison\",\"submit\":0,\"profile\":\
                  {\"rank_finish\":[1.0,2.0],\"streams\":[[[0.0,0.5,1,64,null,false]]]}}}";
    assert!(matches!(
        c.request(poison).unwrap_err(),
        ProtoError::Refused { ref kind, .. } if kind == "admission"
    ));
    // Duplicate of an already-accepted job id.
    let dup = format!(
        "{{\"op\":\"submit\",\"job\":{{\"name\":\"{known_good}\",\"submit\":0,\"profile\":\
         {{\"rank_finish\":[1.0],\"streams\":[[[0.0,0.5,1,64,null,false]]]}}}}}}"
    );
    assert!(matches!(
        c.request(&dup).unwrap_err(),
        ProtoError::Refused { ref kind, .. } if kind == "admission"
    ));
    // The session survived all of it.
    let st = c.request("{\"op\":\"status\"}").unwrap();
    assert_eq!(st.get("phase").and_then(Json::as_str), Some("accepting"));
}

fn main() {
    let opts = parse_opts();
    let trace = arrival_trace(&opts);
    let expected_tenants: BTreeSet<&str> = trace.iter().map(|s| s.tenant.as_str()).collect();

    // Embedded daemon when no --connect: same shared config as `oocd`.
    let (addr, embedded) = match &opts.connect {
        Some(a) => (a.clone(), None),
        None => {
            let d = serve(
                Listener::bind_tcp("127.0.0.1:0").expect("bind"),
                ooc_bench::daemon_serve_config(opts.seed),
            );
            (d.addr.clone(), Some(d))
        }
    };
    println!(
        "oocload: {} jobs from {} tenants over {} connections -> {}",
        trace.len(),
        expected_tenants.len(),
        opts.threads,
        addr
    );

    // A full subscriber, registered before anything is published.
    let mut sub = connect_retry(&addr);
    sub.request("{\"op\":\"subscribe\"}").unwrap();
    // A doomed subscriber that vanishes immediately: the fan-out must
    // drop it without stalling anyone.
    if opts.abuse {
        let mut doomed = connect_retry(&addr);
        doomed.request("{\"op\":\"subscribe\"}").unwrap();
        drop(doomed);
    }

    // Racy delivery: thread k submits indices k, k+K, k+2K… in trace
    // order on its own connection. The wire interleaving is
    // nondeterministic; the drained run must not care.
    std::thread::scope(|scope| {
        for k in 0..opts.threads {
            let addr = &addr;
            let slice: Vec<&Submission> = trace.iter().skip(k).step_by(opts.threads).collect();
            scope.spawn(move || {
                let mut c = connect_retry(addr);
                for s in slice {
                    let resp = c
                        .request(&submit_json(&s.tenant, &s.spec))
                        .unwrap_or_else(|e| panic!("submit {}: {e}", s.spec.name));
                    assert!(matches!(resp.get("ok"), Some(Json::Bool(true))));
                }
            });
        }
    });

    if opts.abuse {
        abuse(&addr, &trace[0].spec.name);
    }

    let mut c = connect_retry(&addr);
    let st = c.request("{\"op\":\"status\"}").unwrap();
    assert_eq!(
        st.get("jobs").and_then(Json::as_num),
        Some(trace.len() as f64),
        "every submission must be admitted"
    );
    assert_eq!(
        st.get("tenants").and_then(Json::as_num),
        Some(expected_tenants.len() as f64)
    );

    // A mid-stream deserter: reads a prefix of the live stream during the
    // drain, then hangs up. Runs concurrently with the drain below.
    let deserter = opts.abuse.then(|| {
        let mut d = connect_retry(&addr);
        d.request("{\"op\":\"subscribe\"}").unwrap();
        std::thread::spawn(move || {
            for _ in 0..50 {
                if !matches!(d.next_frame(), Ok(Some(f)) if f.get("line").is_some()) {
                    break;
                }
            }
            drop(d);
        })
    });

    // Seal the timeline and run. The raw response text is the artifact.
    let summary_raw = c.request_raw("{\"op\":\"drain\"}").unwrap();
    let summary = json::parse(&summary_raw).expect("summary parses");
    assert!(
        matches!(summary.get("ok"), Some(Json::Bool(true))),
        "{summary_raw}"
    );
    let fnv = summary
        .get("stream_fnv")
        .and_then(Json::as_str)
        .expect("summary carries the stream digest")
        .to_string();
    if let Some(d) = deserter {
        d.join().unwrap();
    }

    // Drain the subscriber stream to its end frame and cross-check the
    // digest the daemon advertised.
    let mut lines = 0usize;
    let end = loop {
        let frame = sub
            .next_frame()
            .unwrap()
            .expect("subscriber stream ends with an end frame");
        if matches!(frame.get("end"), Some(Json::Bool(true))) {
            break frame;
        }
        assert!(frame.get("line").is_some());
        lines += 1;
    };
    assert_eq!(
        end.get("stream_fnv").and_then(Json::as_str),
        Some(fnv.as_str()),
        "subscriber stream digest must match the drain summary"
    );
    let events = end.get("events").and_then(Json::as_num).unwrap() as usize;
    let samples = end.get("samples").and_then(Json::as_num).unwrap() as usize;
    assert_eq!(lines, events + samples);

    // Scorecard + Prometheus exposition.
    let card_raw = c.request_raw("{\"op\":\"scorecard\"}").unwrap();
    let card = json::parse(&card_raw).expect("scorecard parses");
    let prom = card
        .get("prom")
        .and_then(Json::as_str)
        .expect("scorecard carries the exposition")
        .to_string();
    ooc_trace::prom::validate(&prom).expect("exposition validates");

    // Artifacts: the JSON summary embeds the raw daemon responses so the
    // byte-comparison covers the whole protocol surface.
    let json_out = format!(
        "{{\n  \"bench\": \"daemon\",\n  \"seed\": {},\n  \"jobs\": {},\n  \"tenants\": {},\n  \
         \"subscriber_lines\": {},\n  \"summary\": {},\n  \"scorecard\": {}\n}}\n",
        opts.seed,
        trace.len(),
        expected_tenants.len(),
        lines,
        summary_raw,
        card_raw,
    );
    std::fs::write(&opts.out, &json_out).expect("write json artifact");
    let stem = opts.out.strip_suffix(".json").unwrap_or(&opts.out);
    std::fs::write(format!("{stem}.prom"), &prom).expect("write prom artifact");

    println!(
        "oocload: drained {} jobs, {} events + {} samples, stream fnv {}",
        trace.len(),
        events,
        samples,
        fnv
    );
    println!("oocload: wrote {} and {stem}.prom", opts.out);

    if opts.shutdown {
        let resp = c.request("{\"op\":\"shutdown\"}").unwrap();
        assert!(matches!(resp.get("stopping"), Some(Json::Bool(true))));
    }
    drop(c);
    drop(sub);
    if let Some(d) = embedded {
        if !opts.shutdown {
            d.shutdown();
        }
        d.join().expect("daemon accept loop");
    }
}
