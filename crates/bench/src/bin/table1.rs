//! Table 1: column-slab vs row-slab performance of out-of-core matrix
//! multiplication for varying slab ratios and processor counts, plus the
//! in-core reference.
//!
//! Usage: `cargo run --release -p ooc-bench --bin table1 [n]`
//! (default n = 1024, the paper's size).

use ooc_bench::table::secs;
use ooc_bench::{run_incore_matmul, run_matmul, MatmulSetup, TextTable};
use ooc_core::SlabStrategy;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("n must be an integer"))
        .unwrap_or(1024);
    let procs = [4usize, 16, 32, 64];
    let ratios = [(0.125, "1/8"), (0.25, "1/4"), (0.5, "1/2"), (1.0, "1")];

    println!("Table 1: out-of-core {n}x{n} matmul, simulated Touchstone Delta (time in seconds)\n");
    let mut headers = vec!["Slab Ratio".to_string()];
    for p in procs {
        headers.push(format!("{p}P col"));
        headers.push(format!("{p}P row"));
    }
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = TextTable::new(&hdr_refs);

    for (ratio, label) in ratios {
        let mut cells = vec![label.to_string()];
        for p in procs {
            for strategy in [SlabStrategy::ColumnSlab, SlabStrategy::RowSlab] {
                let row = run_matmul(&MatmulSetup::table1(n, p, ratio, strategy));
                cells.push(secs(row.sim_seconds));
            }
        }
        table.row(cells);
    }
    // In-core reference row.
    let mut cells = vec!["In-core".to_string()];
    for p in procs {
        let r = run_incore_matmul(n, p);
        cells.push(secs(r.sim_seconds));
        cells.push(String::new());
    }
    table.row(cells);

    print!("{}", table.render());
    println!(
        "\npaper (1Kx1K): e.g. 4P ratio 1/8: col 1045.84 row 239.97; \
         4P ratio 1: col 923.11 row 194.15; in-core 140.91"
    );
}
