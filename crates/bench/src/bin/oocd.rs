//! `oocd` — the multi-tenant I/O daemon, as a standalone process.
//!
//! Binds a Unix-domain or TCP socket, then serves the length-prefixed
//! JSON protocol of [`ooc_sched::serve`]: many tenants submit
//! virtual-time job profiles, `drain` seals the timeline and runs the
//! session through the guarded runtime, subscribers stream the
//! observatory, and `shutdown` stops the process. The daemon exits with
//! status 0 when a client sends `shutdown`.
//!
//! Usage: `cargo run --release -p ooc-bench --bin oocd --
//! [--socket PATH | --tcp ADDR] [--seed S] [--hang-chance F]
//! [--disks D] [--sample-every T] [--read-timeout-ms M]
//! [--max-frame BYTES]`
//!
//! Defaults: TCP on `127.0.0.1:0` (the bound port is printed), and the
//! shared [`ooc_bench::daemon_serve_config`] chaos shape with seed 2026 —
//! the same shape `oocload` uses for its embedded daemon, so external and
//! embedded runs are byte-comparable.

use std::time::Duration;

use ooc_sched::serve::{serve, Listener};

struct Opts {
    socket: Option<String>,
    tcp: String,
    seed: u64,
    hang_chance: Option<f64>,
    disks: Option<usize>,
    sample_every: Option<f64>,
    read_timeout_ms: Option<u64>,
    max_frame: Option<u32>,
}

fn parse_opts() -> Opts {
    let mut o = Opts {
        socket: None,
        tcp: "127.0.0.1:0".to_string(),
        seed: 2026,
        hang_chance: None,
        disks: None,
        sample_every: None,
        read_timeout_ms: None,
        max_frame: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| panic!("{a} needs a value"));
        match a.as_str() {
            "--socket" => o.socket = Some(val()),
            "--tcp" => o.tcp = val(),
            "--seed" => o.seed = val().parse().expect("--seed S"),
            "--hang-chance" => o.hang_chance = Some(val().parse().expect("--hang-chance F")),
            "--disks" => o.disks = Some(val().parse().expect("--disks D")),
            "--sample-every" => o.sample_every = Some(val().parse().expect("--sample-every T")),
            "--read-timeout-ms" => {
                o.read_timeout_ms = Some(val().parse().expect("--read-timeout-ms M"))
            }
            "--max-frame" => o.max_frame = Some(val().parse().expect("--max-frame BYTES")),
            other => panic!("unknown argument {other}"),
        }
    }
    o
}

fn main() {
    let opts = parse_opts();
    let mut cfg = ooc_bench::daemon_serve_config(opts.seed);
    if let Some(h) = opts.hang_chance {
        cfg.domain.hang_chance = h;
    }
    if let Some(d) = opts.disks {
        cfg.domain.disks = d;
    }
    if let Some(s) = opts.sample_every {
        cfg.sample_every = s;
    }
    if let Some(ms) = opts.read_timeout_ms {
        cfg.read_timeout = (ms > 0).then(|| Duration::from_millis(ms));
    }
    if let Some(m) = opts.max_frame {
        cfg.max_frame = m;
    }

    let listener = match &opts.socket {
        #[cfg(unix)]
        Some(path) => Listener::bind_unix(path).expect("bind unix socket"),
        #[cfg(not(unix))]
        Some(_) => panic!("--socket needs a Unix platform; use --tcp"),
        None => Listener::bind_tcp(&opts.tcp).expect("bind tcp socket"),
    };
    let daemon = serve(listener, cfg);
    println!("oocd listening on {}", daemon.addr);
    daemon.join().expect("accept loop");
    println!("oocd stopped");
}
