//! Multi-job workload bench: p50/p95 simulated job completion per disk
//! scheduling policy at 1, 4 and 8 concurrent jobs on the shared farm.
//!
//! The job population is 24 jobs per concurrency level: one "heavy" gaxpy
//! (large matrices, long disk services, fair-share weight 1) hidden among
//! 23 "small" gaxpys (weight 4). Jobs run in instances of exactly the
//! concurrency level, so the metrics isolate *disk scheduling* effects
//! from admission queueing; per-job turnarounds are pooled across
//! instances before taking percentiles. The tail (p95) lands on the small
//! jobs that share a farm with the heavy one — the jobs FIFO convoys
//! behind long heavy requests and weighted fair share rescues.
//!
//! Usage: `cargo run --release -p ooc-bench --bin workload [--out FILE]`
//! (default FILE = BENCH_workload.json). Exits nonzero if fair share does
//! not beat FIFO on p95 at >= 4 concurrent jobs, or if the single-job
//! ladder diverges across policies (farm-parity smoke).

use ooc_bench::TextTable;
use ooc_core::{compile_hir, CompilerOptions};
use ooc_sched::{profile, run_workload, JobProfile, JobSpec, Policy, WorkloadConfig};

const NJOBS: usize = 24;
const SMALL_N: usize = 64;
const HEAVY_N: usize = 160;
const NPROCS: usize = 4;
const SMALL_WEIGHT: f64 = 4.0;
const HEAVY_WEIGHT: f64 = 1.0;

struct Line {
    policy: Policy,
    concurrency: usize,
    p50: f64,
    p95: f64,
    mean_wait: f64,
    max_wait: f64,
    makespan: f64,
}

/// Nearest-rank percentile of an ascending-sorted sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Run the 24-job population at `concurrency` under `policy`; pool the
/// per-job turnarounds.
fn run_level(small: &JobProfile, heavy: &JobProfile, policy: Policy, concurrency: usize) -> Line {
    let mut turnarounds: Vec<f64> = Vec::with_capacity(NJOBS);
    let mut wait_sum = 0.0f64;
    let mut max_wait = 0.0f64;
    let mut requests = 0u64;
    let mut makespan = 0.0f64;
    let mut placed = 0usize;
    while placed < NJOBS {
        let take = concurrency.min(NJOBS - placed);
        let specs: Vec<JobSpec> = (0..take)
            .map(|k| {
                if placed + k == 0 {
                    JobSpec::new("heavy", heavy.clone()).with_weight(HEAVY_WEIGHT)
                } else {
                    JobSpec::new(format!("small-{}", placed + k), small.clone())
                        .with_weight(SMALL_WEIGHT)
                }
            })
            .collect();
        let rep = run_workload(
            &specs,
            &WorkloadConfig {
                policy,
                max_concurrent: concurrency,
                ..WorkloadConfig::default()
            },
        )
        .expect("workload batch is well-formed");
        for j in &rep.jobs {
            turnarounds.push(j.turnaround());
            wait_sum += j.total_wait;
            max_wait = max_wait.max(j.max_wait);
            requests += j.requests;
        }
        makespan = makespan.max(rep.makespan());
        placed += take;
    }
    turnarounds.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Line {
        policy,
        concurrency,
        p50: percentile(&turnarounds, 0.50),
        p95: percentile(&turnarounds, 0.95),
        mean_wait: if requests > 0 {
            wait_sum / requests as f64
        } else {
            0.0
        },
        max_wait,
        makespan,
    }
}

fn main() {
    let mut out_path = "BENCH_workload.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            other => panic!("unknown argument {other}"),
        }
    }

    let small = compile_hir(gaxpy(SMALL_N), &CompilerOptions::default()).unwrap();
    let heavy = compile_hir(gaxpy(HEAVY_N), &CompilerOptions::default()).unwrap();
    let ps = profile(&small, &noderun::RunConfig::default()).unwrap();
    let ph = profile(&heavy, &noderun::RunConfig::default()).unwrap();
    println!(
        "workload bench: {NJOBS} jobs (1 heavy gaxpy {HEAVY_N}x{HEAVY_N} w={HEAVY_WEIGHT}, \
         {} small gaxpy {SMALL_N}x{SMALL_N} w={SMALL_WEIGHT}) on {NPROCS} disks",
        NJOBS - 1
    );
    println!(
        "solo makespans: small {:.4}s ({} reqs), heavy {:.4}s ({} reqs)\n",
        ps.makespan(),
        ps.total_requests(),
        ph.makespan(),
        ph.total_requests()
    );

    let mut lines = Vec::new();
    for &concurrency in &[1usize, 4, 8] {
        for policy in Policy::ALL {
            lines.push(run_level(&ps, &ph, policy, concurrency));
        }
    }

    let mut table = TextTable::new(&[
        "Policy",
        "Conc",
        "p50 (s)",
        "p95 (s)",
        "mean wait (s)",
        "max wait (s)",
        "makespan (s)",
    ]);
    for l in &lines {
        table.row(vec![
            l.policy.name().to_string(),
            l.concurrency.to_string(),
            format!("{:.4}", l.p50),
            format!("{:.4}", l.p95),
            format!("{:.6}", l.mean_wait),
            format!("{:.4}", l.max_wait),
            format!("{:.4}", l.makespan),
        ]);
    }
    print!("{}", table.render());

    // JSON artifact (hand-rolled: the serde shim is marker-only).
    let mut json = String::from("{\n  \"bench\": \"workload\",\n");
    json.push_str(&format!(
        "  \"jobs\": {NJOBS},\n  \"disks\": {NPROCS},\n  \"small_n\": {SMALL_N},\n  \"heavy_n\": {HEAVY_N},\n"
    ));
    json.push_str("  \"results\": [\n");
    for (i, l) in lines.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"policy\": \"{}\", \"concurrency\": {}, \"p50\": {:.9}, \"p95\": {:.9}, \
             \"mean_wait\": {:.9}, \"max_wait\": {:.9}, \"makespan\": {:.9}}}{}\n",
            l.policy.name(),
            l.concurrency,
            l.p50,
            l.p95,
            l.mean_wait,
            l.max_wait,
            l.makespan,
            if i + 1 < lines.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    ooc_trace::json::parse(&json).expect("bench JSON is well-formed");
    std::fs::write(&out_path, &json).expect("write bench JSON");
    println!("\nwrote {out_path}");

    // Acceptance checks.
    let find = |policy: Policy, c: usize| {
        lines
            .iter()
            .find(|l| l.policy == policy && l.concurrency == c)
            .unwrap()
    };
    // Single-job ladder: with one job per instance there is no contention,
    // so every policy must agree bitwise (farm parity smoke).
    for policy in Policy::ALL {
        let a = find(policy, 1);
        let b = find(Policy::StaticShare, 1);
        assert_eq!(
            a.p95.to_bits(),
            b.p95.to_bits(),
            "policy {} diverged on the contention-free ladder",
            policy.name()
        );
        assert_eq!(a.mean_wait, 0.0);
    }
    // Weighted fair share must beat FIFO on the p95 tail once the heavy
    // job contends with >= 3 small ones.
    for c in [4usize, 8] {
        let fifo = find(Policy::Fifo, c);
        let fair = find(Policy::FairShare, c);
        assert!(
            fair.p95 < fifo.p95,
            "fair-share p95 {:.4} !< fifo p95 {:.4} at {c} concurrent jobs",
            fair.p95,
            fifo.p95
        );
        println!(
            "ok: fair-share p95 {:.4}s < fifo p95 {:.4}s at {c} concurrent jobs ({:.1}% better)",
            fair.p95,
            fifo.p95,
            (1.0 - fair.p95 / fifo.p95) * 100.0
        );
    }
}

fn gaxpy(n: usize) -> ooc_core::HirProgram {
    ooc_bench::gaxpy_hir(n, NPROCS)
}
