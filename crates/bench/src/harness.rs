//! Experiment drivers: configure, compile, execute, measure.

use dmsim::{Machine, MachineConfig, ReduceOp};
use noderun::{init_fn, run, RunConfig};
use ooc_array::{ArrayDesc, ArrayId, DimRange, Distribution, OocEnv, Section, Shape};
use ooc_core::hir::{HirArray, HirProgram, HirStmt};
use ooc_core::stripmine::SlabSizing;
use ooc_core::{compile_hir, CompilerOptions, SlabStrategy};
use pario::ElemKind;

/// Best-effort peak resident set size of this process in bytes (Linux
/// `VmHWM` from `/proc/self/status`; `None` elsewhere). A *host* quantity
/// for capacity benchmarking — never part of simulated results or parity
/// comparisons (see [`dmsim::RunReport::set_peak_rss_bytes`]).
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kib: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kib * 1024);
        }
    }
    None
}

/// Deterministic initializers used by all experiments (mild values so f32
/// accumulation stays accurate at 2K).
pub fn init_a(g: &[usize]) -> f32 {
    ((g[0] * 7 + g[1] * 3) % 8) as f32 * 0.25 - 1.0
}

/// See [`init_a`].
pub fn init_b(g: &[usize]) -> f32 {
    ((g[0] * 5 + g[1]) % 9) as f32 * 0.25 - 1.0
}

/// Build the GAXPY HIR program directly (equivalent to parsing Figure 3
/// with `n`, `nprocs` substituted).
pub fn gaxpy_hir(n: usize, p: usize) -> HirProgram {
    let shape = Shape::matrix(n, n);
    let col = Distribution::column_block(shape.clone(), p);
    let row = Distribution::row_block(shape.clone(), p);
    HirProgram {
        arrays: vec![
            HirArray {
                name: "a".into(),
                shape: shape.clone(),
                dist: col.clone(),
            },
            HirArray {
                name: "b".into(),
                shape: shape.clone(),
                dist: row,
            },
            HirArray {
                name: "c".into(),
                shape,
                dist: col,
            },
        ],
        stmts: vec![HirStmt::Gaxpy {
            a: "a".into(),
            b: "b".into(),
            c: "c".into(),
            temp: "temp".into(),
            n,
        }],
        nprocs: p,
    }
}

/// Configuration of one out-of-core matmul measurement.
#[derive(Debug, Clone)]
pub struct MatmulSetup {
    /// Matrix order.
    pub n: usize,
    /// Processors.
    pub p: usize,
    /// Forced strategy (`None` lets the compiler choose).
    pub strategy: Option<SlabStrategy>,
    /// Slab sizing.
    pub sizing: SlabSizing,
    /// Allow storage reorganization.
    pub reorganize: bool,
    /// Verify the product against the serial reference (slow; use for
    /// small `n`).
    pub verify: bool,
    /// Byte budget of the runtime slab cache (`None` = uncached). Threaded
    /// into both the compiler (reuse-aware estimates) and the runtime.
    pub cache_budget: Option<usize>,
}

impl MatmulSetup {
    /// The paper's Table 1 cell: size `n`, `p` processors, a slab ratio and
    /// a strategy.
    pub fn table1(n: usize, p: usize, ratio: f64, strategy: SlabStrategy) -> Self {
        MatmulSetup {
            n,
            p,
            strategy: Some(strategy),
            sizing: SlabSizing::Ratio(ratio),
            reorganize: true,
            verify: false,
            cache_budget: None,
        }
    }
}

/// One measured experiment row.
#[derive(Debug, Clone)]
pub struct ExperimentRow {
    /// Description (strategy / configuration).
    pub label: String,
    /// Simulated elapsed seconds.
    pub sim_seconds: f64,
    /// Estimator's predicted seconds.
    pub est_seconds: f64,
    /// Measured I/O requests per processor (max over ranks).
    pub io_requests: u64,
    /// Measured I/O bytes per processor (max over ranks).
    pub io_bytes: u64,
    /// Max |error| against the serial reference, when verified.
    pub max_error: Option<f32>,
}

/// Compile and execute one out-of-core matmul on the Delta profile.
pub fn run_matmul(setup: &MatmulSetup) -> ExperimentRow {
    run_matmul_on(setup, ooc_core::pipeline::MachineProfile::Delta)
}

/// Compile and execute one out-of-core matmul on an explicit machine
/// profile.
pub fn run_matmul_on(
    setup: &MatmulSetup,
    profile: ooc_core::pipeline::MachineProfile,
) -> ExperimentRow {
    let hir = gaxpy_hir(setup.n, setup.p);
    let options = CompilerOptions {
        sizing: setup.sizing,
        force_strategy: setup.strategy,
        reorganize_storage: setup.reorganize,
        profile,
        cache_budget: setup.cache_budget,
        ..CompilerOptions::default()
    };
    let compiled = compile_hir(hir, &options).expect("gaxpy compiles");
    let mut cfg = RunConfig {
        cache_budget: setup.cache_budget,
        ..RunConfig::default()
    };
    cfg.init.insert("a".into(), init_fn(init_a));
    cfg.init.insert("b".into(), init_fn(init_b));
    if setup.verify {
        cfg.collect.push("c".into());
    }
    let outcome = run(&compiled, &cfg).expect("runs");
    let max_error = if setup.verify {
        let (_, c) = &outcome.collected["c"];
        let expect = noderun::ref_gaxpy(setup.n, &init_a, &init_b);
        Some(noderun::max_abs_diff(c, &expect))
    } else {
        None
    };
    let strategy = match &compiled.plans[0] {
        ooc_core::ExecPlan::Gaxpy(g) => g.strategy,
        _ => unreachable!("gaxpy program"),
    };
    ExperimentRow {
        label: strategy.name().to_string(),
        sim_seconds: outcome.report.elapsed(),
        est_seconds: compiled.estimates[0].time(),
        io_requests: outcome.report.io_requests_per_proc(),
        io_bytes: outcome.report.io_bytes_per_proc(),
        max_error,
    }
}

/// The in-core reference of Table 1: the hand-coded distributed GAXPY
/// (Figure 5) with the local arrays read from disk once at the start and C
/// written once at the end.
pub fn run_incore_matmul(n: usize, p: usize) -> ExperimentRow {
    let shape = Shape::matrix(n, n);
    let col = Distribution::column_block(shape.clone(), p);
    let row = Distribution::row_block(shape.clone(), p);
    let a = ArrayDesc::new(ArrayId(0), "a", ElemKind::F32, col.clone());
    let b = ArrayDesc::new(ArrayId(1), "b", ElemKind::F32, row);
    let c = ArrayDesc::new(ArrayId(2), "c", ElemKind::F32, col);

    let machine = Machine::new(MachineConfig::delta(p));
    let report = machine.run(|ctx| {
        let rank = ctx.rank();
        let mut env = OocEnv::in_memory(rank);
        for d in [&a, &b, &c] {
            env.alloc(d).unwrap();
        }
        env.load_global(&a, &init_a).unwrap();
        env.load_global(&b, &init_b).unwrap();

        // Initial read: whole local arrays, one request each.
        let la = a.local_shape(rank);
        let lb = b.local_shape(rank);
        let a_in = env.read_section(&a, &Section::full(&la), ctx).unwrap();
        let b_in = env.read_section(&b, &Section::full(&lb), ctx).unwrap();

        let lc = la.extent(1);
        let lr_b = lb.extent(0);
        let mut c_out = vec![0.0f32; la.len()]; // C shares A's distribution
        let mut next_col = 0usize;
        for j in 0..n {
            let mut temp = vec![0.0f32; n];
            for i in 0..lc {
                let bval = b_in[i + j * lr_b];
                let colv = &a_in[i * n..(i + 1) * n];
                for (t, &av) in temp.iter_mut().zip(colv) {
                    *t += av * bval;
                }
            }
            ctx.charge_flops((2 * n * lc) as u64);
            let owner = c.dist.owner(&[0, j]);
            let summed = ctx.reduce(&temp, ReduceOp::Sum, owner);
            if rank == owner {
                let v = summed.expect("root");
                c_out[next_col * n..(next_col + 1) * n].copy_from_slice(&v);
                next_col += 1;
            }
        }
        // Final write: whole local C, one request.
        let sec = Section::new(vec![DimRange::new(0, n), DimRange::new(0, lc)]);
        env.write_section(&c, &sec, &c_out, ctx).unwrap();
    });

    ExperimentRow {
        label: "in-core".to_string(),
        sim_seconds: report.elapsed(),
        est_seconds: report.elapsed(),
        io_requests: report.io_requests_per_proc(),
        io_bytes: report.io_bytes_per_proc(),
        max_error: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_row_beats_column_and_verifies() {
        let col = run_matmul(&MatmulSetup {
            verify: true,
            ..MatmulSetup::table1(32, 4, 0.25, SlabStrategy::ColumnSlab)
        });
        let row = run_matmul(&MatmulSetup {
            verify: true,
            ..MatmulSetup::table1(32, 4, 0.25, SlabStrategy::RowSlab)
        });
        assert!(col.max_error.unwrap() < 1e-3);
        assert!(row.max_error.unwrap() < 1e-3);
        assert!(col.sim_seconds > row.sim_seconds);
        assert!(col.io_bytes > row.io_bytes);
    }

    #[test]
    fn incore_is_fastest() {
        let incore = run_incore_matmul(32, 4);
        // At slab ratio 1 the row version degenerates to the in-core
        // structure (whole OCLA as one slab): times tie.
        let row1 = run_matmul(&MatmulSetup::table1(32, 4, 1.0, SlabStrategy::RowSlab));
        assert!(incore.sim_seconds <= row1.sim_seconds + 1e-9);
        // At smaller ratios the out-of-core version re-reads B and pays
        // request startups: strictly slower.
        let row_half = run_matmul(&MatmulSetup::table1(32, 4, 0.5, SlabStrategy::RowSlab));
        assert!(incore.sim_seconds < row_half.sim_seconds);
        // In-core does exactly 3 requests per proc: read A, read B, write C.
        assert_eq!(incore.io_requests, 3);
    }

    #[test]
    fn estimator_tracks_measurement() {
        // Estimated and simulated seconds agree closely (compute + I/O are
        // exact; the collective-time model is approximate).
        let row = run_matmul(&MatmulSetup::table1(64, 4, 0.5, SlabStrategy::RowSlab));
        let rel = (row.est_seconds - row.sim_seconds).abs() / row.sim_seconds;
        assert!(
            rel < 0.15,
            "est {} vs sim {}",
            row.est_seconds,
            row.sim_seconds
        );
    }
}
