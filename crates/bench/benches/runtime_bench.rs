//! Executor benchmarks: small end-to-end runs per plan kind.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ooc_bench::{run_incore_matmul, run_matmul, MatmulSetup};
use ooc_core::{compile_source, CompilerOptions, SlabStrategy};

fn bench_gaxpy(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime/gaxpy_64x64_2p");
    group.sample_size(20);
    for strategy in [SlabStrategy::ColumnSlab, SlabStrategy::RowSlab] {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.name().replace(' ', "_")),
            &strategy,
            |b, &strategy| {
                let setup = MatmulSetup::table1(64, 2, 0.25, strategy);
                b.iter(|| run_matmul(std::hint::black_box(&setup)))
            },
        );
    }
    group.bench_function("in_core", |b| b.iter(|| run_incore_matmul(64, 2)));
    group.finish();
}

fn bench_elementwise(c: &mut Criterion) {
    let src = "
      parameter (n=64)
      real u(n, n), v(n, n)
!hpf$ processors pr(2)
!hpf$ template t(n)
!hpf$ distribute t(block) on pr
!hpf$ align (:, *) with t :: u, v
      forall (i = 2:n-1, j = 2:n-1)
        v(i, j) = 0.25 * (u(i-1, j) + u(i+1, j) + u(i, j-1) + u(i, j+1))
      end forall
      end
";
    let compiled = compile_source(src, &CompilerOptions::default()).unwrap();
    let mut cfg = noderun::RunConfig::default();
    cfg.init.insert(
        "u".into(),
        noderun::init_fn(|g| (g[0] * 3 + g[1]) as f32 * 0.01),
    );
    let mut group = c.benchmark_group("runtime/jacobi_64x64_2p");
    group.sample_size(20);
    group.bench_function("sweep", |b| {
        b.iter(|| noderun::run(std::hint::black_box(&compiled), &cfg).unwrap())
    });
    group.finish();
}

fn bench_transpose(c: &mut Criterion) {
    let src = "
      parameter (n=64)
      real a(n, n), b(n, n)
!hpf$ processors pr(2)
!hpf$ distribute a(*, block) on pr
!hpf$ distribute b(*, block) on pr
      forall (i = 1:n, j = 1:n)
        b(i, j) = a(j, i)
      end forall
      end
";
    let compiled = compile_source(src, &CompilerOptions::default()).unwrap();
    let mut cfg = noderun::RunConfig::default();
    cfg.init.insert(
        "a".into(),
        noderun::init_fn(|g| (g[0] * 7 + g[1]) as f32 * 0.01),
    );
    let mut group = c.benchmark_group("runtime/transpose_64x64_2p");
    group.sample_size(20);
    group.bench_function("remap", |b| {
        b.iter(|| noderun::run(std::hint::black_box(&compiled), &cfg).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_gaxpy, bench_elementwise, bench_transpose);
criterion_main!(benches);
