//! Table/figure cell benchmarks: Criterion groups mirroring the paper's
//! evaluation at reduced scale (`cargo bench` keeps the same structure as
//! the `table1`/`table2`/`fig10` binaries, which run the full sizes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ooc_bench::{run_incore_matmul, run_matmul, MatmulSetup};
use ooc_core::stripmine::SlabSizing;
use ooc_core::SlabStrategy;

const N: usize = 128; // reduced from the paper's 1024 for bench time

fn table1_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for &p in &[4usize, 16] {
        for &(ratio, label) in &[(0.125, "1_8"), (1.0, "1")] {
            for strategy in [SlabStrategy::ColumnSlab, SlabStrategy::RowSlab] {
                let id = format!(
                    "{}p_ratio{}_{}",
                    p,
                    label,
                    strategy.name().replace(' ', "_")
                );
                group.bench_with_input(
                    BenchmarkId::from_parameter(id),
                    &(p, ratio, strategy),
                    |b, &(p, ratio, strategy)| {
                        let setup = MatmulSetup::table1(N, p, ratio, strategy);
                        b.iter(|| run_matmul(&setup));
                    },
                );
            }
        }
        group.bench_with_input(BenchmarkId::new("in_core", p), &p, |b, &p| {
            b.iter(|| run_incore_matmul(N, p))
        });
    }
    group.finish();
}

fn table2_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    let p = 16;
    let fixed = 16usize;
    for &s in &[16usize, 64, 128] {
        group.bench_with_input(BenchmarkId::new("vary_b", s), &s, |b, &s| {
            let setup = MatmulSetup {
                n: N,
                p,
                strategy: Some(SlabStrategy::RowSlab),
                sizing: SlabSizing::Explicit { a: fixed, b: s },
                reorganize: true,
                verify: false,
                cache_budget: None,
            };
            b.iter(|| run_matmul(&setup));
        });
        group.bench_with_input(BenchmarkId::new("vary_a", s), &s, |b, &s| {
            let setup = MatmulSetup {
                n: N,
                p,
                strategy: Some(SlabStrategy::RowSlab),
                sizing: SlabSizing::Explicit { a: s, b: fixed },
                reorganize: true,
                verify: false,
                cache_budget: None,
            };
            b.iter(|| run_matmul(&setup));
        });
    }
    group.finish();
}

fn fig10_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    for &(ratio, label) in &[(1.0, "1"), (0.5, "1_2"), (0.25, "1_4"), (0.125, "1_8")] {
        group.bench_with_input(
            BenchmarkId::new("col_slab_4p", label),
            &ratio,
            |b, &ratio| {
                let setup = MatmulSetup::table1(N, 4, ratio, SlabStrategy::ColumnSlab);
                b.iter(|| run_matmul(&setup));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, table1_cells, table2_cells, fig10_cells);
criterion_main!(benches);
