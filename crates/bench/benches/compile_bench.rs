//! Compiler benchmarks: front end, cost estimation and full pipeline.

use criterion::{criterion_group, criterion_main, Criterion};

use ooc_bench::gaxpy_hir;
use ooc_core::nodegen::gaxpy_nest;
use ooc_core::stripmine::SlabSizing;
use ooc_core::{compile_hir, compile_source, CompilerOptions, CostEstimate, SlabStrategy};

fn bench_frontend(c: &mut Criterion) {
    let mut group = c.benchmark_group("compiler/frontend");
    group.bench_function("parse_figure3", |b| {
        b.iter(|| hpf::parse_program(std::hint::black_box(hpf::GAXPY_SOURCE)).unwrap())
    });
    let prog = hpf::parse_program(hpf::GAXPY_SOURCE).unwrap();
    group.bench_function("analyze_figure3", |b| {
        b.iter(|| hpf::analyze(std::hint::black_box(&prog)).unwrap())
    });
    group.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("compiler/pipeline");
    let options = CompilerOptions::default();
    group.bench_function("compile_source_figure3", |b| {
        b.iter(|| compile_source(hpf::GAXPY_SOURCE, &options).unwrap())
    });
    group.bench_function("compile_hir_1k_x_16", |b| {
        b.iter(|| compile_hir(gaxpy_hir(1024, 16), &options).unwrap())
    });
    group.finish();
}

fn bench_estimator(c: &mut Criterion) {
    let mut group = c.benchmark_group("compiler/estimator");
    let compiled = compile_hir(
        gaxpy_hir(1024, 16),
        &CompilerOptions {
            sizing: SlabSizing::Ratio(0.25),
            force_strategy: Some(SlabStrategy::RowSlab),
            ..CompilerOptions::default()
        },
    )
    .unwrap();
    let ooc_core::ExecPlan::Gaxpy(plan) = &compiled.plans[0] else {
        unreachable!()
    };
    group.bench_function("gaxpy_nest_build", |b| {
        b.iter(|| gaxpy_nest(std::hint::black_box(plan)))
    });
    let nest = gaxpy_nest(plan);
    let model = dmsim::CostModel::delta(16);
    group.bench_function("estimate_from_nest", |b| {
        b.iter(|| CostEstimate::from_nest(std::hint::black_box(&nest), &model, 4))
    });
    group.finish();
}

criterion_group!(benches, bench_frontend, bench_pipeline, bench_estimator);
criterion_main!(benches);
