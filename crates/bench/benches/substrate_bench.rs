//! Micro-benchmarks of the substrates: request coalescing, strided vs
//! contiguous LAF access, layout run counting, and collectives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dmsim::{Machine, MachineConfig};
use ooc_array::{DimRange, FileLayout, Section, Shape};
use pario::{coalesce_runs, ByteRun, ElemKind, LocalArrayFile, LogicalDisk, NoCharge};

fn bench_coalesce(c: &mut Criterion) {
    let mut group = c.benchmark_group("pario/coalesce");
    for &n in &[16usize, 256, 4096] {
        let runs: Vec<ByteRun> = (0..n)
            .map(|i| ByteRun::new((i * 8) as u64, if i % 3 == 0 { 8 } else { 4 }))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &runs, |b, runs| {
            b.iter(|| coalesce_runs(std::hint::black_box(runs)))
        });
    }
    group.finish();
}

fn bench_laf_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("pario/laf_read");
    let elems = 1 << 16;
    let mut disk = LogicalDisk::in_memory();
    let laf = LocalArrayFile::create(&mut disk, ElemKind::F32, elems).unwrap();
    let data: Vec<f32> = (0..elems).map(|i| i as f32).collect();
    laf.write_all_f32(&mut disk, &data, &NoCharge).unwrap();

    // Contiguous: one run; strided: 256 runs of 128 elements with gaps.
    let contiguous = vec![pario::ElemRun::new(0, elems)];
    let strided: Vec<pario::ElemRun> = (0..256)
        .map(|i| pario::ElemRun::new(i * 256, 128))
        .collect();
    group.bench_function("contiguous_64k", |b| {
        b.iter(|| laf.read_f32(&mut disk, &contiguous, &NoCharge).unwrap())
    });
    group.bench_function("strided_256x128", |b| {
        b.iter(|| laf.read_f32(&mut disk, &strided, &NoCharge).unwrap())
    });
    group.bench_function("strided_sieved", |b| {
        b.iter(|| {
            laf.read_f32_with(&mut disk, &strided, &NoCharge, pario::SievePolicy::Always)
                .unwrap()
        })
    });
    group.finish();
}

fn bench_layout_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("layout/section_runs");
    let shape = Shape::matrix(1024, 256);
    let cm = FileLayout::column_major(2);
    let row_slab = Section::new(vec![DimRange::new(100, 164), DimRange::full(256)]);
    group.bench_function("count_strided", |b| {
        b.iter(|| cm.count_section_runs(&shape, std::hint::black_box(&row_slab)))
    });
    group.bench_function("materialize_strided", |b| {
        b.iter(|| cm.section_runs(&shape, std::hint::black_box(&row_slab)))
    });
    let rm = FileLayout::row_major(2);
    group.bench_function("materialize_contiguous", |b| {
        b.iter(|| rm.section_runs(&shape, std::hint::black_box(&row_slab)))
    });
    group.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("dmsim/collectives");
    group.sample_size(10);
    for &p in &[2usize, 8] {
        group.bench_with_input(BenchmarkId::new("allreduce_1k", p), &p, |b, &p| {
            let machine = Machine::new(MachineConfig::free(p));
            b.iter(|| {
                machine.run(|ctx| {
                    let v = vec![ctx.rank() as f64; 1024];
                    let _ = ctx.allreduce_sum_f64(&v);
                })
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_coalesce,
    bench_laf_access,
    bench_layout_runs,
    bench_collectives
);
criterion_main!(benches);
