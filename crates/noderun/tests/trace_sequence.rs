//! The generated node program is an *operation sequence*, not just a cost
//! total: the executor's I/O trace must match the symbolic nest (Figures
//! 9/12) operation for operation — same order, same request counts, same
//! byte counts. Reads and writes are compared as separate sequences: the
//! column version's C-buffer flushes happen while the *owning* rank's
//! columns stream by, so their interleaving position is rank-dependent,
//! while the read stream and the write stream themselves are identical on
//! every rank.

use dmsim::{Machine, MachineConfig};
use noderun::trace::{expected_io_sequence, TracingCharge};
use ooc_array::{ArrayDesc, ArrayId, Distribution, FileLayout, OocEnv, Shape};
use ooc_core::nodegen::gaxpy_nest;
use ooc_core::plan::{GaxpyPlan, SlabStrategy};
use pario::ElemKind;

fn make_plan(strategy: SlabStrategy, n: usize, p: usize, sa: usize, sb: usize) -> GaxpyPlan {
    let col = Distribution::column_block(Shape::matrix(n, n), p);
    let row = Distribution::row_block(Shape::matrix(n, n), p);
    let (la, lcl) = match strategy {
        SlabStrategy::ColumnSlab => (FileLayout::column_major(2), FileLayout::column_major(2)),
        SlabStrategy::RowSlab => (FileLayout::row_major(2), FileLayout::row_major(2)),
    };
    GaxpyPlan {
        strategy,
        a: ArrayDesc::new(ArrayId(0), "a", ElemKind::F32, col.clone()).with_layout(la),
        b: ArrayDesc::new(ArrayId(1), "b", ElemKind::F32, row),
        c: ArrayDesc::new(ArrayId(2), "c", ElemKind::F32, col).with_layout(lcl),
        n,
        nprocs: p,
        slab_a: sa,
        slab_b: sb,
        slab_c: sa.min(n / p),
    }
}

#[test]
fn executor_io_sequence_matches_the_node_program() {
    for (strategy, sa, sb) in [
        (SlabStrategy::ColumnSlab, 2, 4),
        (SlabStrategy::ColumnSlab, 3, 5), // ragged everywhere
        (SlabStrategy::RowSlab, 4, 4),
        (SlabStrategy::RowSlab, 5, 7),  // ragged
        (SlabStrategy::RowSlab, 4, 16), // B resident (hoisted read)
    ] {
        let n = 16;
        let p = 4;
        let plan = make_plan(strategy, n, p, sa, sb);
        let expected = expected_io_sequence(&gaxpy_nest(&plan), 4, 100_000)
            .expect("nest small enough to flatten");

        let machine = Machine::new(MachineConfig::free(p));
        let (_, traces) = machine.run_with(|ctx| {
            let mut env = OocEnv::in_memory(ctx.rank());
            env.alloc(&plan.a).unwrap();
            env.alloc(&plan.b).unwrap();
            env.alloc(&plan.c).unwrap();
            let tracer = TracingCharge::new(ctx);
            noderun::gaxpy::execute_with_charge(ctx, &mut env, &plan, false, &tracer).unwrap();
            tracer.into_events()
        });

        let expected_reads: Vec<_> = expected.iter().filter(|o| o.read).collect();
        let expected_writes: Vec<_> = expected.iter().filter(|o| !o.read).collect();
        for (rank, trace) in traces.iter().enumerate() {
            let reads: Vec<_> = trace.iter().filter(|o| o.read).collect();
            let writes: Vec<_> = trace.iter().filter(|o| !o.read).collect();
            assert_eq!(
                reads, expected_reads,
                "{strategy:?} sa={sa} sb={sb}: rank {rank} read sequence \
                 diverges from the generated node program"
            );
            assert_eq!(
                writes, expected_writes,
                "{strategy:?} sa={sa} sb={sb}: rank {rank} write sequence \
                 diverges from the generated node program"
            );
        }
    }
}

#[test]
fn sequence_differs_between_strategies() {
    // Sanity: the two translations are genuinely different programs.
    let a = expected_io_sequence(
        &gaxpy_nest(&make_plan(SlabStrategy::ColumnSlab, 16, 4, 2, 4)),
        4,
        100_000,
    )
    .unwrap();
    let b = expected_io_sequence(
        &gaxpy_nest(&make_plan(SlabStrategy::RowSlab, 16, 4, 4, 4)),
        4,
        100_000,
    )
    .unwrap();
    assert_ne!(a, b);
    assert!(a.len() > b.len(), "column version issues more operations");
}
