//! End-to-end engine parity: a compiled program run through
//! `noderun::run` produces bit-identical outcomes whether the ranks are OS
//! threads or cooperative tasks on a worker pool — results, clocks, stats,
//! traces, and fault behaviour all included.

use std::sync::Arc;

use dmsim::{Engine, FaultConfig, WorkerPool};
use noderun::{init_fn, run, start, RunConfig, RunOutcome};
use ooc_core::{compile_source, CompiledProgram, CompilerOptions};
use ooc_trace::TraceConfig;

fn fa(g: &[usize]) -> f32 {
    ((g[0] * 7 + g[1] * 3) % 11) as f32 * 0.125 - 0.5
}
fn fb(g: &[usize]) -> f32 {
    ((g[0] * 5 + g[1]) % 13) as f32 * 0.125 - 0.75
}

fn gaxpy() -> (CompiledProgram, RunConfig) {
    let options = CompilerOptions {
        trace: TraceConfig::detailed(),
        ..CompilerOptions::default()
    };
    let compiled = compile_source(hpf::GAXPY_SOURCE, &options).unwrap();
    let mut cfg = RunConfig::default();
    cfg.init.insert("a".into(), init_fn(fa));
    cfg.init.insert("b".into(), init_fn(fb));
    cfg.collect.push("c".into());
    (compiled, cfg)
}

fn assert_same_outcome(a: &mut RunOutcome, b: &mut RunOutcome, what: &str) {
    assert_eq!(a.report.per_proc(), b.report.per_proc(), "{what}: per-proc");
    assert_eq!(
        a.report.elapsed().to_bits(),
        b.report.elapsed().to_bits(),
        "{what}: elapsed"
    );
    assert_eq!(
        a.report.take_trace(),
        b.report.take_trace(),
        "{what}: trace"
    );
    assert_eq!(a.collected, b.collected, "{what}: collected arrays");
    assert_eq!(a.peak_elems, b.peak_elems, "{what}: peak elements");
}

#[test]
fn pooled_run_is_bit_identical_to_threaded_run() {
    let (compiled, cfg) = gaxpy();
    let mut threaded = run(&compiled, &cfg).unwrap();
    let pooled_cfg = RunConfig {
        engine: Some(Engine::Pool(2)),
        ..cfg.clone()
    };
    let mut pooled = run(&compiled, &pooled_cfg).unwrap();
    assert_same_outcome(&mut pooled, &mut threaded, "plain gaxpy");
}

#[test]
fn pooled_run_with_faults_is_bit_identical_to_threaded_run() {
    let (compiled, mut cfg) = gaxpy();
    cfg.fault = Some(FaultConfig::chaos(7));
    let mut threaded = run(&compiled, &cfg).unwrap();
    let pooled_cfg = RunConfig {
        engine: Some(Engine::Pool(3)),
        ..cfg.clone()
    };
    let mut pooled = run(&compiled, &pooled_cfg).unwrap();
    assert_same_outcome(&mut pooled, &mut threaded, "gaxpy under chaos faults");
}

#[test]
fn concurrent_started_runs_match_sequential_runs() {
    let (compiled, cfg) = gaxpy();
    let compiled = Arc::new(compiled);
    let pool = WorkerPool::new(2);
    // Start several jobs before waiting on any: their ranks interleave
    // arbitrarily on the two workers, yet each job's outcome must equal its
    // solo threaded run.
    let started: Vec<_> = (0..4)
        .map(|i| {
            let job_cfg = RunConfig {
                job: i,
                ..cfg.clone()
            };
            start(Arc::clone(&compiled), Arc::new(job_cfg), &pool).unwrap()
        })
        .collect();
    for (i, s) in started.into_iter().enumerate() {
        let mut got = s.wait().unwrap();
        let job_cfg = RunConfig {
            job: i as u32,
            ..cfg.clone()
        };
        let mut solo = run(&compiled, &job_cfg).unwrap();
        assert_same_outcome(&mut got, &mut solo, &format!("job {i}"));
    }
}
