//! End-to-end engine parity: a compiled program run through
//! `noderun::run` produces bit-identical outcomes whether the ranks are OS
//! threads or cooperative tasks on a worker pool — results, clocks, stats,
//! traces, and fault behaviour all included.

use std::sync::Arc;

use dmsim::{Engine, FaultConfig, WorkerPool};
use noderun::{init_fn, run, start, RunConfig, RunOutcome};
use ooc_core::{compile_source, CompiledProgram, CompilerOptions};
use ooc_trace::TraceConfig;

fn fa(g: &[usize]) -> f32 {
    ((g[0] * 7 + g[1] * 3) % 11) as f32 * 0.125 - 0.5
}
fn fb(g: &[usize]) -> f32 {
    ((g[0] * 5 + g[1]) % 13) as f32 * 0.125 - 0.75
}

fn gaxpy() -> (CompiledProgram, RunConfig) {
    let options = CompilerOptions {
        trace: TraceConfig::detailed(),
        ..CompilerOptions::default()
    };
    let compiled = compile_source(hpf::GAXPY_SOURCE, &options).unwrap();
    let mut cfg = RunConfig::default();
    cfg.init.insert("a".into(), init_fn(fa));
    cfg.init.insert("b".into(), init_fn(fb));
    cfg.collect.push("c".into());
    (compiled, cfg)
}

// CSR fixture matching SPMV_SOURCE (n=64, nnz=512): rowptr holds 0-based
// half-open nonzero offsets, colidx 0-based scattered column indices.
const SN: usize = 64;
const SNNZ: usize = 512;
fn f_rowptr(g: &[usize]) -> f32 {
    (g[0] * (SNNZ / SN)) as f32
}
fn f_colidx(g: &[usize]) -> f32 {
    ((g[0] * 37 + (g[0] / 3) * 11) % SN) as f32
}
fn f_vals(g: &[usize]) -> f32 {
    ((g[0] % 89) as f32) * 0.25 + 1.0
}
fn f_x(g: &[usize]) -> f32 {
    (g[0] % 17) as f32 * 0.5 + 0.125
}

fn spmv() -> (CompiledProgram, RunConfig) {
    let options = CompilerOptions {
        trace: TraceConfig::detailed(),
        ..CompilerOptions::default()
    };
    let compiled = compile_source(hpf::SPMV_SOURCE, &options).unwrap();
    let mut cfg = RunConfig::default();
    cfg.init.insert("rowptr".into(), init_fn(f_rowptr));
    cfg.init.insert("colidx".into(), init_fn(f_colidx));
    cfg.init.insert("vals".into(), init_fn(f_vals));
    cfg.init.insert("x".into(), init_fn(f_x));
    cfg.collect.push("y".into());
    (compiled, cfg)
}

fn assert_same_outcome(a: &mut RunOutcome, b: &mut RunOutcome, what: &str) {
    assert_eq!(a.report.per_proc(), b.report.per_proc(), "{what}: per-proc");
    assert_eq!(
        a.report.elapsed().to_bits(),
        b.report.elapsed().to_bits(),
        "{what}: elapsed"
    );
    assert_eq!(
        a.report.take_trace(),
        b.report.take_trace(),
        "{what}: trace"
    );
    assert_eq!(a.collected, b.collected, "{what}: collected arrays");
    assert_eq!(a.peak_elems, b.peak_elems, "{what}: peak elements");
}

#[test]
fn pooled_run_is_bit_identical_to_threaded_run() {
    let (compiled, cfg) = gaxpy();
    let mut threaded = run(&compiled, &cfg).unwrap();
    let pooled_cfg = RunConfig {
        engine: Some(Engine::Pool(2)),
        ..cfg.clone()
    };
    let mut pooled = run(&compiled, &pooled_cfg).unwrap();
    assert_same_outcome(&mut pooled, &mut threaded, "plain gaxpy");
}

#[test]
fn pooled_run_with_faults_is_bit_identical_to_threaded_run() {
    let (compiled, mut cfg) = gaxpy();
    cfg.fault = Some(FaultConfig::chaos(7));
    let mut threaded = run(&compiled, &cfg).unwrap();
    let pooled_cfg = RunConfig {
        engine: Some(Engine::Pool(3)),
        ..cfg.clone()
    };
    let mut pooled = run(&compiled, &pooled_cfg).unwrap();
    assert_same_outcome(&mut pooled, &mut threaded, "gaxpy under chaos faults");
}

#[test]
fn spmv_pooled_run_is_bit_identical_to_threaded_run() {
    // The inspector–executor path — inspection, runtime method
    // re-selection from allreduced stats, gather, reduce — is part of the
    // engine-parity contract like every affine plan.
    let (compiled, cfg) = spmv();
    let mut threaded = run(&compiled, &cfg).unwrap();
    let pooled_cfg = RunConfig {
        engine: Some(Engine::Pool(3)),
        ..cfg.clone()
    };
    let mut pooled = run(&compiled, &pooled_cfg).unwrap();
    assert_same_outcome(&mut pooled, &mut threaded, "spmv");
    let (_, y) = &threaded.collected["y"];
    assert!(y.iter().any(|v| *v != 0.0), "product is non-trivial");
}

#[test]
fn spmv_pooled_run_under_chaos_is_bit_identical_to_threaded_run() {
    let (compiled, mut cfg) = spmv();
    cfg.fault = Some(FaultConfig::chaos(11));
    let mut threaded = run(&compiled, &cfg).unwrap();
    let pooled_cfg = RunConfig {
        engine: Some(Engine::Pool(2)),
        ..cfg.clone()
    };
    let mut pooled = run(&compiled, &pooled_cfg).unwrap();
    assert_same_outcome(&mut pooled, &mut threaded, "spmv under chaos faults");
}

#[test]
fn concurrent_started_runs_match_sequential_runs() {
    let (compiled, cfg) = gaxpy();
    let compiled = Arc::new(compiled);
    let pool = WorkerPool::new(2);
    // Start several jobs before waiting on any: their ranks interleave
    // arbitrarily on the two workers, yet each job's outcome must equal its
    // solo threaded run.
    let started: Vec<_> = (0..4)
        .map(|i| {
            let job_cfg = RunConfig {
                job: i,
                ..cfg.clone()
            };
            start(Arc::clone(&compiled), Arc::new(job_cfg), &pool).unwrap()
        })
        .collect();
    for (i, s) in started.into_iter().enumerate() {
        let mut got = s.wait().unwrap();
        let job_cfg = RunConfig {
            job: i as u32,
            ..cfg.clone()
        };
        let mut solo = run(&compiled, &job_cfg).unwrap();
        assert_same_outcome(&mut got, &mut solo, &format!("job {i}"));
    }
}

#[test]
fn preempted_and_resumed_run_matches_an_uninterrupted_run() {
    let (compiled, cfg) = gaxpy();
    let mut baseline = run(&compiled, &cfg).unwrap();
    let compiled = Arc::new(compiled);
    let pool = WorkerPool::new(2);
    // Preempt at an arbitrary host moment: which ranks get reaped is a
    // host-scheduling race, but the resumed attempt re-executes on a fresh
    // simulated machine, so the outcome is still bit-identical.
    let started = start(Arc::clone(&compiled), Arc::new(cfg.clone()), &pool).unwrap();
    let preempted = started.preempt();
    match preempted.death() {
        dmsim::RunDeath::Killed { .. } | dmsim::RunDeath::Deadlock { .. } => {}
    }
    let mut resumed = preempted.resume().wait().unwrap();
    assert_same_outcome(&mut resumed, &mut baseline, "preempt + resume");
}

#[test]
fn preempt_resume_under_chaos_faults_stays_bit_identical() {
    let (compiled, mut cfg) = gaxpy();
    cfg.fault = Some(FaultConfig::chaos(23));
    let mut baseline = run(&compiled, &cfg).unwrap();
    let compiled = Arc::new(compiled);
    let pool = WorkerPool::new(3);
    let started = start(Arc::clone(&compiled), Arc::new(cfg.clone()), &pool).unwrap();
    let mut resumed = started.preempt().resume().wait().unwrap();
    assert_same_outcome(&mut resumed, &mut baseline, "chaos preempt + resume");
}

#[test]
fn aborting_one_run_leaves_the_pool_healthy_for_others() {
    let (compiled, cfg) = gaxpy();
    let compiled = Arc::new(compiled);
    let pool = WorkerPool::new(2);
    // A victim and a bystander share the pool; the victim is torn down.
    let victim = start(Arc::clone(&compiled), Arc::new(cfg.clone()), &pool).unwrap();
    let bystander = start(Arc::clone(&compiled), Arc::new(cfg.clone()), &pool).unwrap();
    let _death = victim.abort();
    let mut got = bystander.wait().unwrap();
    let mut solo = run(&compiled, &cfg).unwrap();
    assert_same_outcome(&mut got, &mut solo, "bystander after abort");
    // And the pool accepts new work after the abort.
    let mut after = start(Arc::clone(&compiled), Arc::new(cfg.clone()), &pool)
        .unwrap()
        .wait()
        .unwrap();
    let mut solo2 = run(&compiled, &cfg).unwrap();
    assert_same_outcome(&mut after, &mut solo2, "fresh run after abort");
}
