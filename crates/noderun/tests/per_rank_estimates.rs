//! Per-rank estimator exactness, including processor counts that do not
//! divide the matrix order (ragged local extents, empty trailing ranks).
//!
//! `gaxpy_nest_for(plan, rank)` must predict each rank's measured I/O
//! requests, bytes and flops exactly.

use dmsim::{Machine, MachineConfig};
use noderun::{assemble_global, max_abs_diff, ref_gaxpy};
use ooc_array::{ArrayDesc, ArrayId, Distribution, FileLayout, OocEnv, Shape};
use ooc_core::ir::totals;
use ooc_core::nodegen::gaxpy_nest_for;
use ooc_core::plan::{GaxpyPlan, SlabStrategy};
use pario::ElemKind;

fn make_plan(strategy: SlabStrategy, n: usize, p: usize, sa: usize, sb: usize) -> GaxpyPlan {
    let col = Distribution::column_block(Shape::matrix(n, n), p);
    let row = Distribution::row_block(Shape::matrix(n, n), p);
    let (la, lcl) = match strategy {
        SlabStrategy::ColumnSlab => (FileLayout::column_major(2), FileLayout::column_major(2)),
        SlabStrategy::RowSlab => (FileLayout::row_major(2), FileLayout::row_major(2)),
    };
    GaxpyPlan {
        strategy,
        a: ArrayDesc::new(ArrayId(0), "a", ElemKind::F32, col.clone()).with_layout(la),
        b: ArrayDesc::new(ArrayId(1), "b", ElemKind::F32, row),
        c: ArrayDesc::new(ArrayId(2), "c", ElemKind::F32, col).with_layout(lcl),
        n,
        nprocs: p,
        slab_a: sa,
        slab_b: sb,
        slab_c: sa.min(n.div_ceil(p)),
    }
}

fn fa(g: &[usize]) -> f32 {
    ((g[0] * 7 + g[1] * 3) % 11) as f32 * 0.25 - 1.0
}
fn fb(g: &[usize]) -> f32 {
    ((g[0] * 5 + g[1]) % 13) as f32 * 0.25 - 1.0
}

#[test]
fn every_rank_matches_its_own_nest_even_when_p_does_not_divide_n() {
    for (strategy, n, p, sa, sb) in [
        (SlabStrategy::ColumnSlab, 13, 4, 2, 4),
        (SlabStrategy::ColumnSlab, 17, 3, 3, 5),
        (SlabStrategy::RowSlab, 13, 4, 5, 4),
        (SlabStrategy::RowSlab, 19, 5, 4, 7),
        // p > n/2: trailing ranks own nothing.
        (SlabStrategy::ColumnSlab, 5, 4, 1, 2),
        (SlabStrategy::RowSlab, 5, 4, 2, 2),
    ] {
        let plan = make_plan(strategy, n, p, sa, sb);
        let machine = Machine::new(MachineConfig::delta(p));
        let (report, locals) = machine.run_with(|ctx| {
            let mut env = OocEnv::in_memory(ctx.rank());
            env.alloc(&plan.a).unwrap();
            env.alloc(&plan.b).unwrap();
            env.alloc(&plan.c).unwrap();
            env.load_global(&plan.a, &fa).unwrap();
            env.load_global(&plan.b, &fb).unwrap();
            noderun::gaxpy::execute(ctx, &mut env, &plan, false).unwrap();
            env.read_local_all(&plan.c).unwrap()
        });

        for rank in 0..p {
            let predicted = totals(&gaxpy_nest_for(&plan, rank));
            let measured = report.per_proc()[rank].stats;
            let pred_read_reqs: u64 = predicted.per_array.values().map(|a| a.read_requests).sum();
            let pred_read_elems: u64 = predicted.per_array.values().map(|a| a.read_elems).sum();
            let pred_write_reqs: u64 = predicted.per_array.values().map(|a| a.write_requests).sum();
            let pred_write_elems: u64 = predicted.per_array.values().map(|a| a.write_elems).sum();
            let tag = format!("{strategy:?} n={n} p={p} sa={sa} sb={sb} rank={rank}");
            assert_eq!(measured.io_read_requests, pred_read_reqs, "{tag} read reqs");
            assert_eq!(
                measured.io_bytes_read / 4,
                pred_read_elems,
                "{tag} read elems"
            );
            assert_eq!(
                measured.io_write_requests, pred_write_reqs,
                "{tag} write reqs"
            );
            assert_eq!(
                measured.io_bytes_written / 4,
                pred_write_elems,
                "{tag} write elems"
            );
            // Flops: the nest counts kernel flops; the executor additionally
            // charges the reduction-combine flops inside the collectives, so
            // measured >= predicted with the gap bounded by the reduce work.
            assert!(
                measured.flops >= predicted.flops,
                "{tag} flops {} < predicted {}",
                measured.flops,
                predicted.flops
            );
        }

        // And the product is still right.
        let refs: Vec<&[f32]> = locals.iter().map(|v| v.as_slice()).collect();
        let (_, c) = assemble_global(&plan.c, &refs);
        let expect = ref_gaxpy(n, &fa, &fb);
        assert!(max_abs_diff(&c, &expect) < 1e-3, "{strategy:?} n={n} p={p}");
    }
}
