//! The tracing layer's contract: deterministic, well-formed, transparent,
//! and reconciled with the machine's own accounting.
//!
//! - Two identical seeded runs — including chaos-grade fault injection —
//!   emit byte-identical Perfetto JSON.
//! - Every rank's timeline is well-nested per track, with no backwards
//!   clocks, and validates against the checked-in schema.
//! - Enabling tracing changes nothing observable: stats, elapsed time and
//!   computed results are identical to an untraced run.
//! - Summed span durations per category group equal the per-rank
//!   `time_compute`/`time_comm`/`time_io`/`time_faults` within float
//!   rounding.
//! - The divergence report is a zero-gap baseline wherever the cost
//!   estimators are exact (uncached runs, GAXPY under a slab cache).

use dmsim::{FaultConfig, TraceConfig};
use noderun::{divergence_report, init_fn, run, RunConfig};
use ooc_core::{compile_source, CompiledProgram, CompilerOptions};
use ooc_trace::perfetto::to_chrome_json;
use ooc_trace::{check_well_nested, EventKind, TimeGroup, Trace};

const N: usize = 32;
const P: usize = 4;

fn fa(g: &[usize]) -> f32 {
    ((g[0] * 7 + g[1] * 3) % 11) as f32 * 0.125 - 0.5
}
fn fb(g: &[usize]) -> f32 {
    ((g[0] * 5 + g[1]) % 13) as f32 * 0.125 - 0.75
}

fn gaxpy(options: &CompilerOptions) -> (CompiledProgram, RunConfig) {
    let compiled = compile_source(hpf::GAXPY_SOURCE, options).unwrap();
    let mut cfg = RunConfig::default();
    cfg.init.insert("a".into(), init_fn(fa));
    cfg.init.insert("b".into(), init_fn(fb));
    cfg.collect.push("c".into());
    (compiled, cfg)
}

fn transpose(options: &CompilerOptions) -> (CompiledProgram, RunConfig) {
    let src = format!(
        "
      parameter (n={N})
      real a(n, n), b(n, n)
!hpf$ processors pr({P})
!hpf$ distribute a(*, block) on pr
!hpf$ distribute b(*, block) on pr
      forall (i = 1:n, j = 1:n)
        b(i, j) = a(j, i)
      end forall
      end
"
    );
    let compiled = compile_source(&src, options).unwrap();
    let mut cfg = RunConfig::default();
    cfg.init.insert("a".into(), init_fn(fa));
    cfg.collect.push("b".into());
    (compiled, cfg)
}

fn jacobi(options: &CompilerOptions) -> (CompiledProgram, RunConfig) {
    let src = format!(
        "
      parameter (n={N})
      real u(n, n), v(n, n)
!hpf$ processors pr({P})
!hpf$ template t(n)
!hpf$ distribute t(block) on pr
!hpf$ align (:, *) with t :: u, v
      forall (i = 2:n-1, j = 2:n-1)
        v(i, j) = 0.25 * (u(i-1, j) + u(i+1, j) + u(i, j-1) + u(i, j+1))
      end forall
      end
"
    );
    let compiled = compile_source(&src, options).unwrap();
    let mut cfg = RunConfig::default();
    cfg.init.insert("u".into(), init_fn(fa));
    cfg.init.insert("v".into(), init_fn(fa));
    cfg.collect.push("v".into());
    (compiled, cfg)
}

fn traced_options() -> CompilerOptions {
    CompilerOptions {
        trace: TraceConfig::on(),
        ..CompilerOptions::default()
    }
}

fn run_trace(compiled: &CompiledProgram, cfg: &RunConfig) -> Trace {
    let mut outcome = run(compiled, cfg).unwrap();
    outcome
        .report
        .take_trace()
        .expect("tracing was enabled at compile time")
}

#[test]
fn chaos_trace_is_byte_identical_across_runs() {
    let options = traced_options();
    let (compiled, base_cfg) = gaxpy(&options);
    let once = || {
        let mut cfg = base_cfg.clone();
        cfg.fault = Some(FaultConfig::chaos(7));
        to_chrome_json(&run_trace(&compiled, &cfg))
    };
    let a = once();
    let b = once();
    assert!(!a.is_empty());
    assert_eq!(
        a.as_bytes(),
        b.as_bytes(),
        "chaos trace is nondeterministic"
    );

    // The emitted JSON must also be structurally valid: parseable, schema
    // keys present, finite timestamps, monotone per-thread clocks.
    let parsed = ooc_trace::json::parse(&a).expect("trace JSON parses");
    let schema = ooc_trace::json::parse(ooc_trace::json::DEFAULT_SCHEMA).unwrap();
    let check = ooc_trace::json::validate_chrome_trace(&parsed, &schema).expect("trace validates");
    assert!(check.spans > 0, "a chaos gaxpy run must emit spans");
    assert_eq!(check.ranks, P);
}

#[test]
fn per_rank_timelines_are_well_nested() {
    let options = traced_options();
    for (name, compiled, mut cfg) in [
        ("gaxpy", gaxpy(&options).0, gaxpy(&options).1),
        ("transpose", transpose(&options).0, transpose(&options).1),
        ("jacobi", jacobi(&options).0, jacobi(&options).1),
    ] {
        for (prefetch, cache) in [(false, None), (true, None), (false, Some(1 << 16))] {
            cfg.prefetch = prefetch;
            cfg.cache_budget = cache;
            let trace = run_trace(&compiled, &cfg);
            assert_eq!(trace.ranks.len(), P);
            for rt in &trace.ranks {
                check_well_nested(rt).unwrap_or_else(|e| {
                    panic!(
                        "{name} prefetch={prefetch} cache={cache:?} rank {}: {e}",
                        rt.rank
                    )
                });
            }
        }
    }
}

#[test]
fn tracing_is_transparent_to_the_simulation() {
    let (compiled, cfg) = gaxpy(&CompilerOptions::default());
    let plain = run(&compiled, &cfg).unwrap();
    assert!(plain.report.trace().is_none(), "tracing is off by default");

    let mut traced_cfg = cfg.clone();
    traced_cfg.trace = Some(TraceConfig::on());
    let traced = run(&compiled, &traced_cfg).unwrap();
    assert!(traced.report.trace().is_some());

    assert_eq!(plain.report.elapsed(), traced.report.elapsed());
    for (p, t) in plain.report.per_proc().iter().zip(traced.report.per_proc()) {
        assert_eq!(p.stats, t.stats, "tracing perturbed rank {}", t.rank);
    }
    assert_eq!(plain.collected["c"], traced.collected["c"]);
}

/// Per-rank sums of span durations, bucketed by time group.
fn span_sums(trace: &Trace) -> Vec<[f64; 4]> {
    trace
        .ranks
        .iter()
        .map(|rt| {
            let mut sums = [0.0f64; 4];
            for ev in &rt.events {
                if ev.kind != EventKind::Span {
                    continue;
                }
                let Some(group) = ev.cat.time_group() else {
                    continue;
                };
                let slot = match group {
                    TimeGroup::Compute => 0,
                    TimeGroup::Comm => 1,
                    TimeGroup::Io => 2,
                    TimeGroup::Faults => 3,
                };
                sums[slot] += ev.dur();
            }
            sums
        })
        .collect()
}

fn assert_close(label: &str, rank: usize, spans: f64, stats: f64) {
    let tol = 1e-9 + 1e-9 * stats.abs();
    assert!(
        (spans - stats).abs() <= tol,
        "rank {rank} {label}: span sum {spans} != stats {stats}"
    );
}

#[test]
fn span_durations_reconcile_with_machine_stats() {
    let options = traced_options();
    for (name, (compiled, base_cfg)) in [
        ("gaxpy", gaxpy(&options)),
        ("transpose", transpose(&options)),
    ] {
        for (prefetch, cache, fault) in [
            (false, None, None),
            (true, None, None),
            (false, Some(1 << 16), None),
            (false, None, Some(FaultConfig::chaos(11))),
        ] {
            let mut cfg = base_cfg.clone();
            cfg.prefetch = prefetch;
            cfg.cache_budget = cache;
            cfg.fault = fault.clone();
            let mut outcome = run(&compiled, &cfg).unwrap();
            let trace = outcome.report.take_trace().unwrap();
            let sums = span_sums(&trace);
            for (rank, per) in outcome.report.per_proc().iter().enumerate() {
                let label = format!("{name} prefetch={prefetch} cache={cache:?}");
                assert_close(
                    &format!("{label} compute"),
                    rank,
                    sums[rank][0],
                    per.stats.time_compute,
                );
                assert_close(
                    &format!("{label} comm"),
                    rank,
                    sums[rank][1],
                    per.stats.time_comm,
                );
                assert_close(
                    &format!("{label} io"),
                    rank,
                    sums[rank][2],
                    per.stats.time_io,
                );
                assert_close(
                    &format!("{label} faults"),
                    rank,
                    sums[rank][3],
                    per.stats.time_faults,
                );
            }
        }
    }
}

#[test]
fn divergence_report_is_zero_gap_where_estimates_are_exact() {
    // Uncached GAXPY and elementwise: the nest walk is exact.
    let options = traced_options();
    for (name, (compiled, cfg)) in [("gaxpy", gaxpy(&options)), ("jacobi", jacobi(&options))] {
        let trace = run_trace(&compiled, &cfg);
        let report = divergence_report(&compiled, &trace);
        assert!(!report.rows.is_empty(), "{name}: report has rows");
        assert!(
            report.is_zero_gap(),
            "{name}: estimators are exact uncached, but:\n{}",
            report.render()
        );
    }

    // Transpose, default compile: the access-method selector picks the
    // two-phase path (one coalesced write beats the fragmented per-piece
    // writes), whose request arithmetic is exact — a zero-gap report.
    let (compiled, cfg) = transpose(&options);
    let choice = &compiled.io_choices[0][0];
    assert_eq!(choice.chosen, pario::IoMethod::TwoPhase);
    assert!(!choice.forced);
    let trace = run_trace(&compiled, &cfg);
    let report = divergence_report(&compiled, &trace);
    assert!(
        report.is_zero_gap(),
        "two-phase transpose is exact, but:\n{}",
        report.render()
    );

    // Transpose forced onto the direct path: the estimator prices each
    // remap piece as one write request, but the executor's section writes
    // fragment pieces into column runs. The report must surface exactly
    // that — write_requests diverges, every byte count and the read side
    // stay exact — and sort it first.
    let direct_options = CompilerOptions {
        io_method: Some(pario::IoMethod::Direct),
        ..traced_options()
    };
    let (compiled, cfg) = transpose(&direct_options);
    assert!(compiled.io_choices[0][0].forced);
    let trace = run_trace(&compiled, &cfg);
    let report = divergence_report(&compiled, &trace);
    let divergent: Vec<_> = report.divergent().collect();
    assert_eq!(
        divergent.len(),
        1,
        "only the write-request model diverges:\n{}",
        report.render()
    );
    assert_eq!(divergent[0].metric, "write_requests");
    assert!(divergent[0].measured > divergent[0].estimated);
    assert_eq!(
        report.rows[0], *divergent[0],
        "worst divergence sorts first"
    );

    // GAXPY under a slab cache: the reuse-aware estimator replays the cache,
    // so estimate == measured still holds when compile-time and run-time
    // budgets agree.
    let budget = 1 << 16;
    let cached_options = CompilerOptions {
        cache_budget: Some(budget),
        ..traced_options()
    };
    let (compiled, mut cfg) = gaxpy(&cached_options);
    cfg.cache_budget = Some(budget);
    let trace = run_trace(&compiled, &cfg);
    let report = divergence_report(&compiled, &trace);
    assert!(
        report.is_zero_gap(),
        "cached gaxpy baseline diverged:\n{}",
        report.render()
    );
    assert_eq!(report.max_rel_gap(), 0.0);
}
