//! Chaos transparency of the irregular executor: fault injection (disk
//! retries, degraded reads) may change *timing*, never *data* — and the
//! three gather methods compute the same product bitwise, faults or not.
//! So an SpMV forced through two-phase I/O under chaos must collect exactly
//! the y of a fault-free direct run.

use dmsim::FaultConfig;
use noderun::{init_fn, run, RunConfig};
use ooc_core::{compile_source, CompiledProgram, CompilerOptions};
use proptest::prelude::*;

const SN: usize = 64;
const SNNZ: usize = 512;
fn f_rowptr(g: &[usize]) -> f32 {
    (g[0] * (SNNZ / SN)) as f32
}
fn f_vals(g: &[usize]) -> f32 {
    ((g[0] % 89) as f32) * 0.25 + 1.0
}
fn f_x(g: &[usize]) -> f32 {
    (g[0] % 17) as f32 * 0.5 + 0.125
}

fn spmv_cfg(colidx_stride: usize, io_method: Option<pario::IoMethod>) -> RunConfig {
    let mut cfg = RunConfig::default();
    cfg.init.insert("rowptr".into(), init_fn(f_rowptr));
    // A parameterized scatter: different strides exercise different
    // owner-binning and run-coalescing shapes in the inspector.
    cfg.init.insert(
        "colidx".into(),
        init_fn(move |g| ((g[0] * colidx_stride + g[0] / 5) % SN) as f32),
    );
    cfg.init.insert("vals".into(), init_fn(f_vals));
    cfg.init.insert("x".into(), init_fn(f_x));
    cfg.collect.push("y".into());
    cfg.io_method = io_method;
    cfg
}

fn compiled() -> CompiledProgram {
    compile_source(hpf::SPMV_SOURCE, &CompilerOptions::default()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn two_phase_under_chaos_equals_fault_free_direct(
        seed in 0u64..1000,
        stride in 1usize..64,
    ) {
        let compiled = compiled();
        let baseline = run(&compiled, &spmv_cfg(stride, Some(pario::IoMethod::Direct))).unwrap();
        let mut chaos_cfg = spmv_cfg(stride, Some(pario::IoMethod::TwoPhase));
        chaos_cfg.fault = Some(FaultConfig::chaos(seed));
        let chaotic = run(&compiled, &chaos_cfg).unwrap();
        prop_assert_eq!(
            &chaotic.collected, &baseline.collected,
            "two-phase under chaos(seed={}) diverged from fault-free direct (stride={})",
            seed, stride
        );
    }

    #[test]
    fn every_method_agrees_bitwise_under_the_same_faults(
        seed in 0u64..1000,
        stride in 1usize..64,
    ) {
        let compiled = compiled();
        let mut outcomes = Vec::new();
        for m in pario::IoMethod::ALL {
            let mut cfg = spmv_cfg(stride, Some(m));
            cfg.fault = Some(FaultConfig::chaos(seed));
            outcomes.push((m, run(&compiled, &cfg).unwrap()));
        }
        let (m0, first) = &outcomes[0];
        for (m, o) in &outcomes[1..] {
            prop_assert_eq!(
                &o.collected, &first.collected,
                "{:?} and {:?} disagree under chaos(seed={})", m, m0, seed
            );
        }
    }
}
