//! Specialized compute kernels.
//!
//! The generic elementwise evaluator walks the expression tree per point.
//! Most data-parallel statements are *linear combinations of shifted
//! references* (stencils, AXPY, scaled copies); [`LinearKernel`] recognizes
//! that shape symbolically and evaluates it term by term with contiguous
//! inner loops over the fastest dimension — the "specialized code" a real
//! compiler would emit, here selected at run time.
//!
//! The fast path applies when no sample leaves the local index space (no
//! ghost strips): then every shifted access lands inside the widened input
//! section and the source run moves in lockstep with the output run.

use ooc_array::Section;

use ooc_core::hir::ElwExpr;

/// One term of a linear combination: `coef * array[idx + offsets]`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearTerm {
    /// Scalar coefficient.
    pub coef: f32,
    /// Index of the referenced array among the plan's rhs arrays.
    pub ai: usize,
    /// Per-dimension shift.
    pub offsets: Vec<isize>,
}

/// `bias + Σ coef_k · ref_k` — the linear-combination normal form.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinearKernel {
    /// Additive constant.
    pub bias: f32,
    /// The linear terms.
    pub terms: Vec<LinearTerm>,
}

/// Try to put an expression into linear normal form. Returns `None` for
/// genuinely nonlinear expressions (products of references, division by a
/// reference).
pub fn linearize(e: &ElwExpr, array_index: &dyn Fn(&str) -> usize) -> Option<LinearKernel> {
    match e {
        ElwExpr::Const(v) => Some(LinearKernel {
            bias: *v,
            terms: vec![],
        }),
        ElwExpr::Ref { array, offsets } => Some(LinearKernel {
            bias: 0.0,
            terms: vec![LinearTerm {
                coef: 1.0,
                ai: array_index(array),
                offsets: offsets.clone(),
            }],
        }),
        ElwExpr::Neg(i) => linearize(i, array_index).map(|k| scale(k, -1.0)),
        ElwExpr::Add(l, r) => {
            let (l, r) = (linearize(l, array_index)?, linearize(r, array_index)?);
            Some(add(l, r))
        }
        ElwExpr::Sub(l, r) => {
            let (l, r) = (linearize(l, array_index)?, linearize(r, array_index)?);
            Some(add(l, scale(r, -1.0)))
        }
        ElwExpr::Mul(l, r) => {
            let (lk, rk) = (linearize(l, array_index)?, linearize(r, array_index)?);
            // One side must be a pure constant.
            if lk.terms.is_empty() {
                Some(scale(rk, lk.bias))
            } else if rk.terms.is_empty() {
                Some(scale(lk, rk.bias))
            } else {
                None
            }
        }
        ElwExpr::Div(l, r) => {
            let (lk, rk) = (linearize(l, array_index)?, linearize(r, array_index)?);
            if rk.terms.is_empty() && rk.bias != 0.0 {
                Some(scale(lk, 1.0 / rk.bias))
            } else {
                None
            }
        }
    }
}

fn scale(mut k: LinearKernel, s: f32) -> LinearKernel {
    k.bias *= s;
    for t in &mut k.terms {
        t.coef *= s;
    }
    k
}

fn add(mut l: LinearKernel, r: LinearKernel) -> LinearKernel {
    l.bias += r.bias;
    for t in r.terms {
        // Merge identical references.
        match l
            .terms
            .iter_mut()
            .find(|x| x.ai == t.ai && x.offsets == t.offsets)
        {
            Some(x) => x.coef += t.coef,
            None => l.terms.push(t),
        }
    }
    l
}

/// Evaluate a linear kernel over `out_sec`, writing into `out` (section-CM
/// order), reading each term from its input `(section, buffer)` pair. Every
/// shifted access must land inside its input section (the caller guarantees
/// this by only taking the fast path when no ghost strips are needed).
pub fn run_linear(
    kernel: &LinearKernel,
    out_sec: &Section,
    inputs: &[(Section, Vec<f32>)],
    out: &mut [f32],
) {
    out.fill(kernel.bias);
    let ndims = out_sec.ndims();
    let out_shape = out_sec.shape();
    let out_strides = out_shape.strides();

    for term in &kernel.terms {
        let (in_sec, data) = &inputs[term.ai];
        let in_shape = in_sec.shape();
        let in_strides = in_shape.strides();

        // Base source position of the output origin, and per-dim strides.
        let mut base = 0isize;
        for (d, &stride) in in_strides.iter().enumerate().take(ndims) {
            let src0 = out_sec.range(d).lo as isize + term.offsets[d] - in_sec.range(d).lo as isize;
            debug_assert!(
                src0 >= 0 && (src0 as usize) < in_sec.range(d).len().max(1),
                "term offset leaves the input section (dim {d})"
            );
            base += src0 * stride as isize;
        }

        // Iterate outer dims (1..ndims) with an odometer; inner dim 0 is a
        // contiguous run in both buffers.
        if out.is_empty() {
            continue;
        }
        let run = out_shape.extent(0);
        let mut odo = vec![0usize; ndims];
        let mut out_pos = 0usize;
        let mut src_pos = base as usize;
        loop {
            let o = &mut out[out_pos..out_pos + run];
            let s = &data[src_pos..src_pos + run];
            for (ov, &sv) in o.iter_mut().zip(s) {
                *ov += term.coef * sv;
            }
            // Advance the outer odometer.
            let mut d = 1;
            loop {
                if d >= ndims {
                    // Done with this term.
                    break;
                }
                odo[d] += 1;
                out_pos += out_strides[d];
                src_pos += in_strides[d];
                if odo[d] < out_shape.extent(d) {
                    break;
                }
                out_pos -= out_shape.extent(d) * out_strides[d];
                src_pos -= out_shape.extent(d) * in_strides[d];
                odo[d] = 0;
                d += 1;
            }
            if d >= ndims {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooc_array::DimRange;
    use ooc_core::hir::ElwExpr as E;

    fn aidx(name: &str) -> usize {
        match name {
            "u" => 0,
            "w" => 1,
            other => panic!("unknown {other}"),
        }
    }

    #[test]
    fn jacobi_linearizes_to_four_terms() {
        let sum = E::add(
            E::add(E::shifted("u", vec![-1, 0]), E::shifted("u", vec![1, 0])),
            E::add(E::shifted("u", vec![0, -1]), E::shifted("u", vec![0, 1])),
        );
        let expr = E::mul(E::Const(0.25), sum);
        let k = linearize(&expr, &aidx).unwrap();
        assert_eq!(k.bias, 0.0);
        assert_eq!(k.terms.len(), 4);
        assert!(k.terms.iter().all(|t| t.coef == 0.25 && t.ai == 0));
    }

    #[test]
    fn affine_and_difference_forms() {
        // 2u - w/4 + 1
        let expr = E::add(
            ElwExpr::Sub(
                Box::new(E::mul(E::Const(2.0), E::aref("u", 2))),
                Box::new(ElwExpr::Div(
                    Box::new(E::aref("w", 2)),
                    Box::new(E::Const(4.0)),
                )),
            ),
            E::Const(1.0),
        );
        let k = linearize(&expr, &aidx).unwrap();
        assert_eq!(k.bias, 1.0);
        assert_eq!(k.terms.len(), 2);
        assert_eq!(k.terms[0].coef, 2.0);
        assert_eq!(k.terms[1].coef, -0.25);
    }

    #[test]
    fn duplicate_references_merge() {
        let expr = E::add(E::aref("u", 2), E::aref("u", 2));
        let k = linearize(&expr, &aidx).unwrap();
        assert_eq!(k.terms.len(), 1);
        assert_eq!(k.terms[0].coef, 2.0);
    }

    #[test]
    fn nonlinear_forms_are_refused() {
        let uu = E::mul(E::aref("u", 2), E::aref("w", 2));
        assert!(linearize(&uu, &aidx).is_none());
        let div = ElwExpr::Div(Box::new(E::Const(1.0)), Box::new(E::aref("u", 2)));
        assert!(linearize(&div, &aidx).is_none());
    }

    #[test]
    fn run_linear_matches_hand_computation() {
        // out over rows 1..3, cols 0..2 of a 4x3 local space; input section
        // widened to rows 0..4 (shift ±1 along dim 0).
        let out_sec = Section::new(vec![DimRange::new(1, 3), DimRange::new(0, 2)]);
        let in_sec = Section::new(vec![DimRange::new(0, 4), DimRange::new(0, 2)]);
        // Input buffer in section-CM: value = row + 10*col.
        let data: Vec<f32> = (0..2)
            .flat_map(|c| (0..4).map(move |r| (r + 10 * c) as f32))
            .collect();
        let kernel = LinearKernel {
            bias: 100.0,
            terms: vec![
                LinearTerm {
                    coef: 1.0,
                    ai: 0,
                    offsets: vec![-1, 0],
                },
                LinearTerm {
                    coef: 2.0,
                    ai: 0,
                    offsets: vec![1, 0],
                },
            ],
        };
        let inputs = vec![(in_sec, data)];
        let mut out = vec![0.0f32; out_sec.len()];
        run_linear(&kernel, &out_sec, &inputs, &mut out);
        // out(r, c) = 100 + (r-1 + 10c) + 2*(r+1 + 10c), r in {1,2}.
        for c in 0..2 {
            for (k, r) in (1..3).enumerate() {
                let expect = 100.0 + ((r - 1 + 10 * c) as f32) + 2.0 * ((r + 1 + 10 * c) as f32);
                assert_eq!(out[k + c * 2], expect, "r={r} c={c}");
            }
        }
    }
}
