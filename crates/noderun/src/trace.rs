//! Execution tracing: the sequence of I/O operations a rank performs.
//!
//! The compiler's symbolic node program (Figures 9/12) is not just a cost
//! summary — it is an *operation sequence*. This module records the I/O
//! sequence the executor actually performs and flattens a [`NestNode`] tree
//! into its expected sequence, so tests can assert they match operation for
//! operation, not merely in total.

use std::cell::RefCell;

use dmsim::ProcCtx;
use ooc_core::ir::NestNode;
use pario::IoCharge;

/// One I/O operation as observed at the charge seam.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoOp {
    /// True for a read.
    pub read: bool,
    /// Contiguous requests issued.
    pub requests: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Array the operation serves, when the issuing layer hinted it (the
    /// OCLA runtime does; raw disk traffic has no array identity).
    pub array: Option<String>,
}

/// An [`IoCharge`] that forwards to the processor context *and* records the
/// operation sequence.
///
/// Every charge — including cache hits, write-backs, fault recovery and the
/// observability hints — reaches the context unchanged, so wrapping an
/// executor in a `TracingCharge` never perturbs the simulated time, the
/// stats, or the context's own event trace.
pub struct TracingCharge<'a> {
    ctx: &'a ProcCtx,
    events: RefCell<Vec<IoOp>>,
    array: RefCell<Option<String>>,
}

impl<'a> TracingCharge<'a> {
    /// Wrap `ctx`.
    pub fn new(ctx: &'a ProcCtx) -> Self {
        TracingCharge {
            ctx,
            events: RefCell::new(Vec::new()),
            array: RefCell::new(None),
        }
    }

    /// The recorded sequence.
    pub fn into_events(self) -> Vec<IoOp> {
        self.events.into_inner()
    }
}

impl IoCharge for TracingCharge<'_> {
    fn io_read(&self, requests: u64, bytes: u64) {
        self.ctx.charge_io_read(requests, bytes);
        self.events.borrow_mut().push(IoOp {
            read: true,
            requests,
            bytes,
            array: self.array.borrow().clone(),
        });
    }
    fn io_write(&self, requests: u64, bytes: u64) {
        self.ctx.charge_io_write(requests, bytes);
        self.events.borrow_mut().push(IoOp {
            read: false,
            requests,
            bytes,
            array: self.array.borrow().clone(),
        });
    }
    fn io_cache_hit(&self, runs: u64, bytes: u64) {
        self.ctx.charge_io_cache_hit(runs, bytes);
    }
    fn io_write_back(&self, requests: u64, bytes: u64) {
        self.ctx.charge_io_write_back(requests, bytes);
    }
    fn io_faults(&self, charges: &dmsim::FaultCharges) {
        self.ctx.charge_io_faults(charges);
    }
    fn io_array(&self, name: &str, file: u64) {
        *self.array.borrow_mut() = Some(name.to_string());
        IoCharge::io_array(self.ctx, name, file);
    }
    fn io_cache_level(&self, used_bytes: u64, dirty_bytes: u64) {
        IoCharge::io_cache_level(self.ctx, used_bytes, dirty_bytes);
    }
    fn io_sieve(&self, span_bytes: u64, useful_bytes: u64) {
        IoCharge::io_sieve(self.ctx, span_bytes, useful_bytes);
    }
}

/// Flatten a symbolic nest into its expected I/O sequence (loops unrolled;
/// element counts converted to bytes at `elem_size`).
///
/// Guard against huge nests with `limit`: flattening stops (returning
/// `None`) once the sequence exceeds it, so tests cannot accidentally
/// materialize a billion-op trace.
pub fn expected_io_sequence(
    nest: &[NestNode],
    elem_size: usize,
    limit: usize,
) -> Option<Vec<IoOp>> {
    let mut out = Vec::new();
    if walk(nest, elem_size, limit, &mut out) {
        Some(out)
    } else {
        None
    }
}

fn walk(nodes: &[NestNode], elem_size: usize, limit: usize, out: &mut Vec<IoOp>) -> bool {
    for n in nodes {
        match n {
            NestNode::Loop { trips, body, .. } => {
                for _ in 0..*trips {
                    if !walk(body, elem_size, limit, out) {
                        return false;
                    }
                }
            }
            NestNode::IfOwner { body, .. } => {
                if !walk(body, elem_size, limit, out) {
                    return false;
                }
            }
            NestNode::Io {
                array,
                read,
                requests,
                elems,
            } => {
                if out.len() >= limit {
                    return false;
                }
                out.push(IoOp {
                    read: *read,
                    requests: *requests,
                    bytes: elems * elem_size as u64,
                    array: Some(array.clone()),
                });
            }
            NestNode::Comm { .. } | NestNode::Compute { .. } => {}
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooc_core::ir::NestNode as N;

    fn op(read: bool, requests: u64, bytes: u64, array: &str) -> IoOp {
        IoOp {
            read,
            requests,
            bytes,
            array: Some(array.to_string()),
        }
    }

    #[test]
    fn flattening_unrolls_loops_in_order() {
        let nest = vec![
            N::read("b", 1, 10),
            N::loop_("l", 2, vec![N::read("a", 1, 5), N::write("c", 2, 5)]),
        ];
        let seq = expected_io_sequence(&nest, 4, 100).unwrap();
        assert_eq!(
            seq,
            vec![
                op(true, 1, 40, "b"),
                op(true, 1, 20, "a"),
                op(false, 2, 20, "c"),
                op(true, 1, 20, "a"),
                op(false, 2, 20, "c"),
            ]
        );
    }

    #[test]
    fn limit_prevents_explosion() {
        let nest = vec![N::loop_("big", 1_000_000, vec![N::read("a", 1, 1)])];
        assert!(expected_io_sequence(&nest, 4, 1000).is_none());
    }
}
