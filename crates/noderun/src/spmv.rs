//! Out-of-core CSR SpMV executor: the inspector–executor end-to-end proof.
//!
//! Per statement execution is the node program of
//! [`ooc_core::irreg::spmv_nest_with`], step for step: stream the local
//! `rowptr` slice and allgather it, inspect the `colidx` indirection (or
//! reuse a cached [`IrregSchedule`]), gather `x` through the selected I/O
//! method, stream the local `vals`, accumulate partial row products, reduce
//! the partials to the row owners, and write the local `y` slice.
//!
//! Data conventions (the executor defines its file contents; the HPF
//! source is symbolic): `rowptr` holds 0-based half-open nonzero offsets —
//! `rowptr[i] .. rowptr[i+1]` are row `i`'s nonzeros and `rowptr[n] = nnz`
//! — and `colidx` holds 0-based global indices into `x`, exactly as
//! [`ooc_array::inspect`] requires. Both are stored as `f32` like every
//! other out-of-core array.
//!
//! Determinism: the reduction adds received partial blocks in peer order
//! `0..p`, and runtime method re-selection decides from *allreduced*
//! statistics, so every rank picks the same method and every run of the
//! same inputs is bitwise identical across engines.

use dmsim::{CostModel, ProcCtx};
use ooc_array::{
    gather_with, global_section_of_local, inspect, IrregSchedule, IrregStats, OocEnv, OocError,
    Section,
};
use ooc_core::plan::SpmvPlan;
use pario::IoMethod;

/// Allgather this rank's block of a 1-D block-distributed vector; returns
/// the full global vector (blocks of ascending ranks are ascending global
/// ranges, so concatenation in rank order reassembles it).
fn allgather_block(ctx: &ProcCtx, mine: Vec<f32>) -> Result<Vec<f32>, OocError> {
    let p = ctx.nprocs();
    let sends: Vec<Vec<f32>> = (0..p).map(|_| mine.clone()).collect();
    let received = ctx.try_alltoallv::<f32>(sends)?;
    Ok(received.into_iter().flatten().collect())
}

/// Re-select the gather method from the *measured* schedule statistics,
/// allreduced so every rank prices the same machine-global view: per-rank
/// stats travel as `u64` vectors through one all-to-all and merge in rank
/// order. Forced methods never reach here; the caller skips re-selection.
fn select_method(
    ctx: &ProcCtx,
    model: &CostModel,
    sched: &IrregSchedule,
) -> Result<IoMethod, OocError> {
    let p = ctx.nprocs();
    let mine = sched.stats().to_vec();
    let sends: Vec<Vec<u64>> = (0..p).map(|_| mine.clone()).collect();
    let received = ctx.try_alltoallv::<u64>(sends)?;
    let mut merged = IrregStats::default();
    for v in &received {
        merged.merge(&IrregStats::from_vec(v));
    }
    let choice = ooc_core::reorg::choose_io_method(
        format!("gather {} (runtime)", sched.stamp.data.name),
        model,
        None,
        |m| ooc_core::irreg::gather_nodes(&sched.stamp.data.name, &merged, m),
    );
    Ok(choice.chosen)
}

/// Execute the plan on this processor, reusing (or filling) the caller's
/// schedule cache slot. Returns peak in-core elements.
///
/// When `cache` already holds a schedule valid for this plan's data and
/// indirection descriptors, the inspector is skipped entirely — the
/// amortization the subsystem exists for. `model` enables runtime method
/// re-selection from the inspected statistics; `None` keeps `plan.method`
/// (the compile-time choice, or a forced override).
pub fn execute_cached(
    ctx: &ProcCtx,
    env: &mut OocEnv,
    plan: &SpmvPlan,
    cache: &mut Option<IrregSchedule>,
    model: Option<&CostModel>,
) -> Result<usize, OocError> {
    let rank = ctx.rank();
    let p = ctx.nprocs();
    assert_eq!(p, plan.nprocs, "spmv: machine/plan shape mismatch");

    // ---- Row pointers: stream the local slice, allgather the rest. -------
    let rp_shape = plan.rowptr.local_shape(rank);
    let my_rp = if rp_shape.is_empty() {
        Vec::new()
    } else {
        env.read_section(&plan.rowptr, &Section::full(&rp_shape), ctx)?
    };
    let rowptr = {
        let _x = ctx.trace_span(ooc_trace::Category::Collective, "allgather rowptr");
        allgather_block(ctx, my_rp)?
    };
    debug_assert_eq!(rowptr.len(), plan.n + 1);

    // ---- Inspect the indirection, or reuse the cached schedule. ----------
    let reusable = matches!(cache, Some(s) if s.is_valid_for(&plan.x, &plan.colidx, rank, p));
    if !reusable {
        *cache = Some(inspect(ctx, env, &plan.x, &plan.colidx, ctx)?);
    }
    let sched = cache.as_ref().expect("slot filled above");

    // ---- Gather x through the selected method. ---------------------------
    let method = match model {
        Some(m) => select_method(ctx, m, sched)?,
        None => plan.method,
    };
    let xg = gather_with(ctx, env, sched, method, ctx)?;

    // ---- Stream the local values and accumulate partial products. --------
    let vals_shape = plan.vals.local_shape(rank);
    let vals = if vals_shape.is_empty() {
        Vec::new()
    } else {
        env.read_section(&plan.vals, &Section::full(&vals_shape), ctx)?
    };
    debug_assert_eq!(vals.len(), xg.len(), "vals and colidx are co-distributed");
    let rp: Vec<u64> = rowptr.iter().map(|v| *v as u64).collect();
    let nnz_lo = global_section_of_local(&plan.vals.dist, rank)
        .map(|s| s.range(0).lo)
        .unwrap_or(0);
    let mut partial = vec![0.0f32; plan.n];
    {
        let _c = ctx.trace_span(ooc_trace::Category::Compute, "spmv accumulate");
        for (t, (&v, &xv)) in vals.iter().zip(xg.iter()).enumerate() {
            let g = (nnz_lo + t) as u64;
            // Row of global nonzero g: the last r with rowptr[r] <= g.
            let row = rp.partition_point(|&x| x <= g) - 1;
            partial[row] += v * xv;
        }
    }

    // ---- Reduce partials to the row owners (peer-order addition). --------
    let sends: Vec<Vec<f32>> = (0..p)
        .map(|j| {
            global_section_of_local(&plan.y.dist, j)
                .map(|s| {
                    let r = s.range(0);
                    partial[r.lo..r.hi].to_vec()
                })
                .unwrap_or_default()
        })
        .collect();
    let received = {
        let _x = ctx.trace_span(ooc_trace::Category::Exchange, "reduce partial y");
        ctx.try_alltoallv::<f32>(sends)?
    };
    let y_shape = plan.y.local_shape(rank);
    let mut y = vec![0.0f32; y_shape.len()];
    for piece in &received {
        debug_assert!(piece.len() == y.len() || piece.is_empty());
        for (a, b) in y.iter_mut().zip(piece.iter()) {
            *a += *b;
        }
    }

    // ---- Write the local result slice. -----------------------------------
    if !y_shape.is_empty() {
        env.write_section(&plan.y, &Section::full(&y_shape), &y, ctx)?;
    }

    Ok(rowptr.len() + partial.len() + vals.len() + xg.len() + y.len())
}

/// Execute without a persistent schedule cache (one-shot inspection).
pub fn execute(
    ctx: &ProcCtx,
    env: &mut OocEnv,
    plan: &SpmvPlan,
    model: Option<&CostModel>,
) -> Result<usize, OocError> {
    let mut cache = None;
    execute_cached(ctx, env, plan, &mut cache, model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmsim::{Machine, MachineConfig};
    use ooc_array::{ArrayDesc, ArrayId, DimDist, DistKind, Distribution, ProcGrid, Shape};
    use ooc_core::ir::totals;
    use pario::ElemKind;
    use std::sync::{Arc, Mutex};

    fn vec_dist(n: usize, p: usize) -> Distribution {
        Distribution::new(
            Shape::new(vec![n]),
            vec![DimDist::Distributed {
                kind: DistKind::Block,
                axis: 0,
            }],
            ProcGrid::line(p),
        )
    }

    /// A deterministic CSR matrix: row i holds `nnz/n` nonzeros (nnz must
    /// divide evenly) at scattered columns, value = row*1000 + slot.
    pub(crate) struct Csr {
        pub n: usize,
        pub nnz: usize,
    }

    impl Csr {
        pub fn rowptr(&self, i: usize) -> f32 {
            (i * (self.nnz / self.n)) as f32
        }
        pub fn col(&self, k: usize) -> usize {
            (k * 37 + (k / 3) * 11) % self.n
        }
        pub fn val(&self, k: usize) -> f32 {
            ((k % 89) as f32) * 0.25 + 1.0
        }
        pub fn x(&self, j: usize) -> f32 {
            (j % 17) as f32 * 0.5 + 0.125
        }
        /// Dense reference product under the same float order as the
        /// executor: ascending k within each row.
        pub fn reference_y(&self) -> Vec<f32> {
            let per = self.nnz / self.n;
            (0..self.n)
                .map(|i| {
                    let mut acc = 0.0f32;
                    for k in i * per..(i + 1) * per {
                        acc += self.val(k) * self.x(self.col(k));
                    }
                    acc
                })
                .collect()
        }
    }

    pub(crate) fn spmv_plan(n: usize, nnz: usize, p: usize, method: IoMethod) -> SpmvPlan {
        let v = |id: u32, name: &str, len: usize| {
            ArrayDesc::new(ArrayId(id), name, ElemKind::F32, vec_dist(len, p))
        };
        SpmvPlan {
            y: v(0, "y", n),
            rowptr: v(1, "rowptr", n + 1),
            colidx: v(2, "colidx", nnz),
            vals: v(3, "vals", nnz),
            x: v(4, "x", n),
            n,
            nnz,
            nprocs: p,
            method,
        }
    }

    pub(crate) fn load_csr(env: &mut OocEnv, plan: &SpmvPlan, m: &Csr) {
        env.alloc(&plan.y).unwrap();
        env.alloc(&plan.rowptr).unwrap();
        env.alloc(&plan.colidx).unwrap();
        env.alloc(&plan.vals).unwrap();
        env.alloc(&plan.x).unwrap();
        let n = m.n;
        let nnz = m.nnz;
        let mr = Csr { n, nnz };
        env.load_global(&plan.rowptr, &move |g: &[usize]| mr.rowptr(g[0]))
            .unwrap();
        let mc = Csr { n, nnz };
        env.load_global(&plan.colidx, &move |g: &[usize]| mc.col(g[0]) as f32)
            .unwrap();
        let mv = Csr { n, nnz };
        env.load_global(&plan.vals, &move |g: &[usize]| mv.val(g[0]))
            .unwrap();
        let mx = Csr { n, nnz };
        env.load_global(&plan.x, &move |g: &[usize]| mx.x(g[0]))
            .unwrap();
    }

    fn run_spmv(n: usize, nnz: usize, p: usize, method: IoMethod, reselect: bool) -> Vec<f32> {
        let plan = spmv_plan(n, nnz, p, method);
        let model = CostModel::delta(p);
        let out = Arc::new(Mutex::new(vec![Vec::new(); p]));
        let out_c = Arc::clone(&out);
        let machine = Machine::new(MachineConfig::free(p));
        machine.run(move |ctx| {
            let mut env = OocEnv::in_memory(ctx.rank());
            load_csr(&mut env, &plan, &Csr { n, nnz });
            let m = reselect.then_some(&model);
            execute(ctx, &mut env, &plan, m).unwrap();
            let y = env.read_local_all(&plan.y).unwrap();
            out_c.lock().unwrap()[ctx.rank()] = y;
        });
        Arc::try_unwrap(out)
            .unwrap()
            .into_inner()
            .unwrap()
            .into_iter()
            .flatten()
            .collect()
    }

    #[test]
    fn spmv_matches_the_reference_under_every_method() {
        let (n, nnz, p) = (64, 512, 4);
        let expect = Csr { n, nnz }.reference_y();
        for method in IoMethod::ALL {
            let got = run_spmv(n, nnz, p, method, false);
            assert_eq!(got, expect, "{method:?}");
        }
        // Runtime re-selection computes the same product.
        assert_eq!(run_spmv(n, nnz, p, IoMethod::Direct, true), expect);
    }

    #[test]
    fn spmv_is_bitwise_stable_across_rank_counts() {
        let (n, nnz) = (64, 512);
        let expect = Csr { n, nnz }.reference_y();
        for p in [1, 2, 4, 8] {
            assert_eq!(
                run_spmv(n, nnz, p, IoMethod::TwoPhase, false),
                expect,
                "p={p}"
            );
        }
    }

    #[test]
    fn schedule_reuse_skips_the_inspector() {
        let (n, nnz, p) = (64, 512, 4);
        let plan = spmv_plan(n, nnz, p, IoMethod::TwoPhase);
        let machine = Machine::new(MachineConfig::free(p));
        machine.run(move |ctx| {
            let mut env = OocEnv::in_memory(ctx.rank());
            load_csr(&mut env, &plan, &Csr { n, nnz });
            let mut cache = None;
            execute_cached(ctx, &mut env, &plan, &mut cache, None).unwrap();
            let first = cache.clone().expect("inspected");
            let colidx_reads_after_first = env.disk().stats().read_requests;

            // Second iteration: same schedule object, no re-inspection.
            execute_cached(ctx, &mut env, &plan, &mut cache, None).unwrap();
            assert_eq!(cache.as_ref(), Some(&first), "schedule unchanged");

            // The reused iteration never re-reads the indirection array:
            // its reads are rowptr + gather + vals only.
            let c = ooc_array::irreg_counts(&first, IoMethod::TwoPhase);
            let rp_loc = plan.rowptr.local_shape(ctx.rank()).len() as u64;
            let nnz_loc = plan.vals.local_shape(ctx.rank()).len() as u64;
            let expected = u64::from(rp_loc > 0) + c.read_requests + u64::from(nnz_loc > 0);
            let second_reads = env.disk().stats().read_requests - colidx_reads_after_first;
            assert_eq!(second_reads, expected, "rank {}", ctx.rank());
        });
    }

    #[test]
    fn measured_io_matches_the_schedule_nest_exactly() {
        // The acceptance criterion: estimate == measured for the inspected
        // schedule, through every method. The exact nest is the affine
        // reads/writes plus `schedule_nodes` over the real schedule.
        let (n, nnz, p) = (64, 512, 4);
        for method in IoMethod::ALL {
            let plan = spmv_plan(n, nnz, p, method);
            let machine = Machine::new(MachineConfig::free(p));
            machine.run(move |ctx| {
                let rank = ctx.rank();
                let mut env = OocEnv::in_memory(ctx.rank());
                load_csr(&mut env, &plan, &Csr { n, nnz });
                let before = env.disk().stats();
                let mut cache = None;
                execute_cached(ctx, &mut env, &plan, &mut cache, None).unwrap();
                let after = env.disk().stats();
                let sched = cache.expect("inspected");

                // Build the exact per-rank nest and compare byte-for-byte.
                let mut nest = ooc_core::irreg::schedule_nodes(&sched, method, true);
                let rp_loc = plan.rowptr.local_shape(rank).len() as u64;
                let nnz_loc = plan.vals.local_shape(rank).len() as u64;
                let nloc = plan.y.local_shape(rank).len() as u64;
                nest.push(ooc_core::ir::NestNode::read(
                    "rowptr",
                    u64::from(rp_loc > 0),
                    rp_loc,
                ));
                nest.push(ooc_core::ir::NestNode::read(
                    "vals",
                    u64::from(nnz_loc > 0),
                    nnz_loc,
                ));
                nest.push(ooc_core::ir::NestNode::write(
                    "y",
                    u64::from(nloc > 0),
                    nloc,
                ));
                let t = totals(&nest);
                let est_read_reqs: u64 = t.per_array.values().map(|a| a.read_requests).sum();
                let est_read_elems: u64 = t.per_array.values().map(|a| a.read_elems).sum();
                let est_write_reqs: u64 = t.per_array.values().map(|a| a.write_requests).sum();
                let est_write_elems: u64 = t.per_array.values().map(|a| a.write_elems).sum();
                assert_eq!(
                    after.read_requests - before.read_requests,
                    est_read_reqs,
                    "{method:?} rank {rank} read requests"
                );
                assert_eq!(
                    after.bytes_read - before.bytes_read,
                    est_read_elems * 4,
                    "{method:?} rank {rank} read bytes"
                );
                assert_eq!(
                    after.write_requests - before.write_requests,
                    est_write_reqs,
                    "{method:?} rank {rank} write requests"
                );
                assert_eq!(
                    after.bytes_written - before.bytes_written,
                    est_write_elems * 4,
                    "{method:?} rank {rank} write bytes"
                );
            });
        }
    }

    #[test]
    fn runtime_reselection_picks_two_phase_on_this_index_set() {
        let (n, nnz, p) = (64, 512, 4);
        let plan = spmv_plan(n, nnz, p, IoMethod::Direct);
        let model = CostModel::delta(p);
        let chosen = Arc::new(Mutex::new(Vec::new()));
        let chosen_c = Arc::clone(&chosen);
        let machine = Machine::new(MachineConfig::free(p));
        machine.run(move |ctx| {
            let mut env = OocEnv::in_memory(ctx.rank());
            load_csr(&mut env, &plan, &Csr { n, nnz });
            let sched = inspect(ctx, &mut env, &plan.x, &plan.colidx, ctx).unwrap();
            let m = select_method(ctx, &model, &sched).unwrap();
            chosen_c.lock().unwrap().push(m);
        });
        let picks = Arc::try_unwrap(chosen).unwrap().into_inner().unwrap();
        assert_eq!(picks.len(), p);
        assert!(
            picks.iter().all(|m| *m == IoMethod::TwoPhase),
            "all ranks agree on the overlap-deduped method: {picks:?}"
        );
    }
}
