//! Out-of-core transpose executor: slab-wise all-to-all remap.
//!
//! Every rank streams its source OCLA once, slab by slab along the slowest
//! layout dimension (contiguous reads). Each slab is split by the
//! destination owners of its transposed coordinates; pieces travel as
//! point-to-point messages and are written into the destination LAF on
//! arrival. The stage structure is deterministic (stage `s` moves every
//! rank's `s`-th slab), so receives match sends without a scheduler.

use dmsim::{Payload, ProcCtx, Tag};
use ooc_array::{
    global_section_of_local, local_section_of_global, DimRange, OocEnv, OocError, Section, SlabPlan,
};
use ooc_core::plan::TransposePlan;

const REMAP_TAG: Tag = Tag(0x7A05);

/// Transpose of a section: swap the two dimension ranges.
fn transposed(sec: &Section) -> Section {
    assert_eq!(sec.ndims(), 2, "transpose is 2-D");
    Section::new(vec![sec.range(1), sec.range(0)])
}

/// The slab plan of `rank`'s source OCLA.
fn slab_plan_of(plan: &TransposePlan, rank: usize) -> SlabPlan {
    let local = plan.src.local_shape(rank);
    let slab_dim = plan.src.layout.slowest_dim();
    SlabPlan::new(local, slab_dim, plan.slab_thickness.max(1))
}

/// Execute the plan on this processor. Returns peak in-core elements.
///
/// Dispatches on [`TransposePlan::method`]: `Direct` issues per-piece
/// destination writes as they arrive; `Sieved` runs the same schedule with
/// the sieve forced on (per-piece writes become span read-modify-writes);
/// `TwoPhase` exchanges every stage's pieces collectively and assembles the
/// whole destination in memory for a single contiguous write.
pub fn execute(ctx: &ProcCtx, env: &mut OocEnv, plan: &TransposePlan) -> Result<usize, OocError> {
    let _m = ctx.trace_io_method(plan.method.label());
    match plan.method {
        pario::IoMethod::Direct => execute_direct(ctx, env, plan),
        pario::IoMethod::Sieved => {
            let saved = env.sieve_policy();
            env.set_sieve_policy(pario::SievePolicy::Always);
            let r = execute_direct(ctx, env, plan);
            env.set_sieve_policy(saved);
            r
        }
        pario::IoMethod::TwoPhase => execute_two_phase(ctx, env, plan),
    }
}

fn execute_direct(
    ctx: &ProcCtx,
    env: &mut OocEnv,
    plan: &TransposePlan,
) -> Result<usize, OocError> {
    let rank = ctx.rank();
    let p = ctx.nprocs();
    let my_plan = slab_plan_of(plan, rank);
    let peer_plans: Vec<SlabPlan> = (0..p).map(|r| slab_plan_of(plan, r)).collect();
    let stages = peer_plans
        .iter()
        .map(|sp| sp.num_slabs())
        .max()
        .unwrap_or(0);
    let my_dst_global =
        global_section_of_local(&plan.dst.dist, rank).expect("regular destination distribution");

    let mut peak = 0usize;
    for stage in 0..stages {
        // Stage `s` moves every rank's s-th slab; one structural span each.
        let _stage = ctx.trace_slab_span("stage", stage as u64);
        // ---- Send my stage-th slab, split by destination owner. ----------
        if stage < my_plan.num_slabs() {
            let slab = my_plan.slab(stage);
            let data = env.read_section(&plan.src, &slab, ctx)?;
            peak = peak.max(data.len());
            // Global section of this slab in source coordinates.
            let slab_global = global_of_local_section(plan, rank, &slab);
            let sendable = transposed(&slab_global);
            for dst_rank in 0..p {
                let their_dst = global_section_of_local(&plan.dst.dist, dst_rank)
                    .expect("regular destination distribution");
                let Some(isect_dst) = sendable.intersect(&their_dst) else {
                    continue;
                };
                // Element (i, j) of dst = element (j, i) of src: iterate
                // the destination intersection in its CM order and pull
                // from the slab buffer.
                let payload = gather_transposed(&isect_dst, &slab, &data, plan, rank);
                if dst_rank == rank {
                    write_piece(env, plan, rank, &isect_dst, &payload, ctx)?;
                } else {
                    ctx.send(dst_rank, REMAP_TAG, Payload::F32(payload));
                }
            }
        }

        // ---- Receive the pieces of everyone else's stage-th slab. --------
        for (src_rank, peer) in peer_plans.iter().enumerate() {
            if src_rank == rank || stage >= peer.num_slabs() {
                continue;
            }
            let slab = peer.slab(stage);
            let slab_global = global_of_local_section(plan, src_rank, &slab);
            let sendable = transposed(&slab_global);
            let Some(isect_dst) = sendable.intersect(&my_dst_global) else {
                continue;
            };
            let payload = ctx.try_recv_f32(src_rank, REMAP_TAG)?;
            debug_assert_eq!(payload.len(), isect_dst.len());
            peak = peak.max(payload.len());
            write_piece(env, plan, rank, &isect_dst, &payload, ctx)?;
        }
    }
    Ok(peak)
}

/// Two-phase transpose: the same stage structure, but each stage's pieces
/// travel in one collective exchange instead of point-to-point sends, and
/// destination pieces accumulate in a full-local buffer that is written with
/// a single contiguous request after the last stage — the file only ever
/// sees conforming accesses.
fn execute_two_phase(
    ctx: &ProcCtx,
    env: &mut OocEnv,
    plan: &TransposePlan,
) -> Result<usize, OocError> {
    let rank = ctx.rank();
    let p = ctx.nprocs();
    let my_plan = slab_plan_of(plan, rank);
    let peer_plans: Vec<SlabPlan> = (0..p).map(|r| slab_plan_of(plan, r)).collect();
    let stages = peer_plans
        .iter()
        .map(|sp| sp.num_slabs())
        .max()
        .unwrap_or(0);
    let my_dst_global =
        global_section_of_local(&plan.dst.dist, rank).expect("regular destination distribution");

    let dst_local_shape = plan.dst.local_shape(rank);
    let strides = dst_local_shape.strides();
    let mut assembled = vec![0.0f32; dst_local_shape.len()];
    let mut peak = assembled.len();

    for stage in 0..stages {
        let _stage = ctx.trace_slab_span("stage", stage as u64);
        // ---- Split my stage-th slab by destination owner. ----------------
        let mut sends: Vec<Vec<f32>> = vec![Vec::new(); p];
        if stage < my_plan.num_slabs() {
            let slab = my_plan.slab(stage);
            let data = env.read_section(&plan.src, &slab, ctx)?;
            peak = peak.max(assembled.len() + data.len());
            let slab_global = global_of_local_section(plan, rank, &slab);
            let sendable = transposed(&slab_global);
            for (dst_rank, send) in sends.iter_mut().enumerate() {
                let their_dst = global_section_of_local(&plan.dst.dist, dst_rank)
                    .expect("regular destination distribution");
                if let Some(isect_dst) = sendable.intersect(&their_dst) {
                    *send = gather_transposed(&isect_dst, &slab, &data, plan, rank);
                }
            }
        }

        // ---- Exchange: every rank runs all `stages`, so the collective is
        // symmetric even when slab counts differ across ranks. -------------
        let received = {
            let _x = ctx.trace_span(ooc_trace::Category::Exchange, "exchange");
            ctx.try_alltoallv::<f32>(sends)?
        };

        // ---- Scatter the received pieces into the local assembly. --------
        for (src_rank, piece) in received.iter().enumerate() {
            if piece.is_empty() {
                continue;
            }
            let peer = &peer_plans[src_rank];
            debug_assert!(stage < peer.num_slabs());
            let slab = peer.slab(stage);
            let slab_global = global_of_local_section(plan, src_rank, &slab);
            let isect_dst = transposed(&slab_global)
                .intersect(&my_dst_global)
                .expect("non-empty payload implies intersection");
            let local = local_section_of_global(&plan.dst.dist, rank, &isect_dst)
                .expect("receiver owns the piece");
            debug_assert_eq!(local.len(), piece.len());
            for (v, idx) in piece.iter().zip(local.indices()) {
                let off: usize = idx.iter().zip(strides.iter()).map(|(i, s)| i * s).sum();
                assembled[off] = *v;
            }
        }
    }

    if !dst_local_shape.is_empty() {
        env.write_section(&plan.dst, &Section::full(&dst_local_shape), &assembled, ctx)?;
    }
    Ok(peak)
}

/// Global section corresponding to a local section of `rank`'s source.
fn global_of_local_section(plan: &TransposePlan, rank: usize, local: &Section) -> Section {
    // Regular distributions map local ranges monotonically; translate each
    // dimension via its endpoint images.
    let dist = &plan.src.dist;
    let mut ranges = Vec::with_capacity(local.ndims());
    for d in 0..local.ndims() {
        let r = local.range(d);
        debug_assert!(r.step == 1 && !r.is_empty());
        let coords = dist.grid().coords(rank);
        let coord = match dist.dims()[d] {
            ooc_array::DimDist::Collapsed => 0,
            ooc_array::DimDist::Distributed { axis, .. } => coords[axis],
        };
        let lo = dist.global_index(d, coord, r.lo);
        let hi = dist.global_index(d, coord, r.hi - 1) + 1;
        debug_assert_eq!(hi - lo, r.len(), "block/collapsed dims are contiguous");
        ranges.push(DimRange::new(lo, hi));
    }
    Section::new(ranges)
}

/// Gather the values of a destination-space global section from a local
/// source slab buffer (section-CM order on both sides).
fn gather_transposed(
    isect_dst: &Section,
    slab: &Section,
    slab_data: &[f32],
    plan: &TransposePlan,
    rank: usize,
) -> Vec<f32> {
    let src_of_dst = transposed(isect_dst); // global src coordinates
    let local_src = local_section_of_global(&plan.src.dist, rank, &src_of_dst)
        .expect("sender owns the transposed section");
    // Walk destination CM order: dst index (i, j) ↔ src local (j', i').
    let mut out = Vec::with_capacity(isect_dst.len());
    let d0 = isect_dst.range(0);
    let d1 = isect_dst.range(1);
    let s0 = local_src.range(0);
    let s1 = local_src.range(1);
    let slab0 = slab.range(0);
    let slab1 = slab.range(1);
    let rows = slab0.len();
    for j in 0..d1.len() {
        for i in 0..d0.len() {
            // dst (d0.lo + i, d1.lo + j) = src global (d1.lo + j, d0.lo + i)
            // = src local (s0.lo + j, s1.lo + i).
            let lr = s0.lo + j;
            let lc = s1.lo + i;
            let pos = (lr - slab0.lo) + (lc - slab1.lo) * rows;
            out.push(slab_data[pos]);
        }
    }
    out
}

fn write_piece(
    env: &mut OocEnv,
    plan: &TransposePlan,
    rank: usize,
    isect_dst_global: &Section,
    data: &[f32],
    ctx: &ProcCtx,
) -> Result<(), pario::IoError> {
    let local = local_section_of_global(&plan.dst.dist, rank, isect_dst_global)
        .expect("receiver owns the piece");
    debug_assert_eq!(local.len(), data.len());
    env.write_section(&plan.dst, &local, data, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{assemble_global, max_abs_diff, ref_transpose};
    use dmsim::{Machine, MachineConfig};
    use ooc_array::{ArrayDesc, ArrayId, Distribution, FileLayout, Shape};
    use pario::ElemKind;

    fn value(g: &[usize]) -> f32 {
        (g[0] * 100 + g[1]) as f32
    }

    fn run_transpose(
        n: usize,
        p: usize,
        t: usize,
        src_row_block: bool,
        method: pario::IoMethod,
    ) -> Vec<f32> {
        let shape = Shape::matrix(n, n);
        let src_dist = if src_row_block {
            Distribution::row_block(shape.clone(), p)
        } else {
            Distribution::column_block(shape.clone(), p)
        };
        let dst_dist = Distribution::column_block(shape.clone(), p);
        let src = ArrayDesc::new(ArrayId(0), "s", ElemKind::F32, src_dist)
            .with_layout(FileLayout::column_major(2));
        let dst = ArrayDesc::new(ArrayId(1), "d", ElemKind::F32, dst_dist);
        let plan = TransposePlan {
            src: src.clone(),
            dst: dst.clone(),
            slab_thickness: t,
            method,
        };
        let machine = Machine::new(MachineConfig::free(p));
        let (_, results) = machine.run_with(|ctx| {
            let mut env = OocEnv::in_memory(ctx.rank());
            env.alloc(&src).unwrap();
            env.alloc(&dst).unwrap();
            env.load_global(&src, &value).unwrap();
            execute(ctx, &mut env, &plan).unwrap();
            env.read_local_all(&dst).unwrap()
        });
        let locals: Vec<&[f32]> = results.iter().map(|v| v.as_slice()).collect();
        assemble_global(&dst, &locals).1
    }

    #[test]
    fn write_buffering_cuts_transpose_requests_and_time() {
        // The remap writes many small per-piece column fragments; the slab
        // cache merges adjacent dirty fragments so the flush writes back
        // far fewer, larger extents. Reads see no reuse (the source streams
        // once), so the whole difference is write coalescing.
        let n = 16;
        let p = 4;
        let shape = Shape::matrix(n, n);
        let src = ArrayDesc::new(
            ArrayId(0),
            "s",
            ElemKind::F32,
            Distribution::row_block(shape.clone(), p),
        )
        .with_layout(FileLayout::column_major(2));
        let dst = ArrayDesc::new(
            ArrayId(1),
            "d",
            ElemKind::F32,
            Distribution::column_block(shape, p),
        );
        let plan = TransposePlan {
            src: src.clone(),
            dst: dst.clone(),
            slab_thickness: 2,
            method: pario::IoMethod::Direct,
        };
        let run = |budget: Option<usize>| {
            let machine = Machine::new(MachineConfig::delta(p));
            let (report, results) = machine.run_with(|ctx| {
                let mut env = OocEnv::in_memory(ctx.rank());
                env.alloc(&src).unwrap();
                env.alloc(&dst).unwrap();
                env.load_global(&src, &value).unwrap();
                if let Some(b) = budget {
                    env.enable_cache(b);
                }
                execute(ctx, &mut env, &plan).unwrap();
                env.flush_cache(ctx).unwrap();
                env.read_local_all(&dst).unwrap()
            });
            let locals: Vec<&[f32]> = results.iter().map(|v| v.as_slice()).collect();
            (assemble_global(&dst, &locals).1, report)
        };
        let (base_c, base) = run(None);
        let (cached_c, cached) = run(Some(1 << 20));
        assert_eq!(base_c, cached_c, "caching must not change the transpose");
        assert_eq!(cached_c, ref_transpose(n, &value));
        let (b0, c0) = (base.per_proc()[0].stats, cached.per_proc()[0].stats);
        assert!(
            c0.io_write_requests < b0.io_write_requests,
            "cached {} !< uncached {} write requests",
            c0.io_write_requests,
            b0.io_write_requests
        );
        assert_eq!(c0.io_read_requests, b0.io_read_requests, "no read reuse");
        assert!(
            cached.elapsed() < base.elapsed(),
            "cached {} !< uncached {}",
            cached.elapsed(),
            base.elapsed()
        );
    }

    #[test]
    fn transpose_is_correct_across_shapes_of_parallelism() {
        let n = 12;
        let expect = ref_transpose(n, &value);
        for p in [1, 2, 3, 4] {
            for t in [1, 2, 5, 16] {
                for src_row_block in [false, true] {
                    for method in pario::IoMethod::ALL {
                        let got = run_transpose(n, p, t, src_row_block, method);
                        assert!(
                            max_abs_diff(&got, &expect) == 0.0,
                            "p={p} t={t} rb={src_row_block} m={method:?}"
                        );
                    }
                }
            }
        }
    }
}
