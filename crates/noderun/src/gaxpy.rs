//! GAXPY executor: Figures 9 (column slabs) and 12 (row slabs) as real node
//! programs.
//!
//! Every processor runs the same stripmined loop nest the compiler
//! generated symbolically: slabs are fetched through the charged I/O path,
//! partial products accumulate into an in-core temporary, and each result
//! (sub)column is combined with a global-sum reduction whose root is the
//! owner of the column, which buffers and writes it to C's local array
//! file. Returns the peak number of in-core elements held, so tests can
//! check the plan's memory accounting.

use dmsim::{ProcCtx, ReduceOp};
use ooc_array::{DimRange, OocEnv, OocError, Section};
use ooc_core::plan::{GaxpyPlan, SlabStrategy};
use pario::{IoError, PendingIo};

/// Fault-recovery options for a GAXPY statement. All fields default to off,
/// in which case execution is bit-identical to the pre-fault-subsystem
/// executor.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryOpts<'a> {
    /// Directory for slab-granular checkpoints of C's progress. When set,
    /// each rank checkpoints its local C after every outer slab, and a
    /// restarted statement resumes from the *minimum* watermark across
    /// ranks (agreed by an allreduce) so the collective sequences stay in
    /// lockstep.
    pub checkpoint_dir: Option<&'a std::path::Path>,
    /// Cost model used to re-plan slab sizes when the disk degrades
    /// mid-run (graceful degradation). `None` disables re-planning.
    pub model: Option<&'a dmsim::CostModel>,
    /// Slab-cache budget the re-planner should assume (must match the
    /// budget the environment actually runs with).
    pub cache_budget: Option<usize>,
}

/// Execute the plan on this processor. Returns peak in-core elements.
///
/// With `prefetch` enabled the runtime overlaps each slab fetch with the
/// still-pending computation of the previous slab (software pipelining):
/// the I/O *counts* are identical, only the modeled time shrinks.
pub fn execute(
    ctx: &ProcCtx,
    env: &mut OocEnv,
    plan: &GaxpyPlan,
    prefetch: bool,
) -> Result<usize, OocError> {
    execute_with_charge(ctx, env, plan, prefetch, ctx)
}

/// Like [`execute`], but non-prefetched I/O is charged through `charge` —
/// the seam [`crate::trace::TracingCharge`] uses to record the operation
/// sequence. (Prefetched fetches charge through the context's overlapped
/// path and are not routed through `charge`; trace with `prefetch = false`.)
pub fn execute_with_charge(
    ctx: &ProcCtx,
    env: &mut OocEnv,
    plan: &GaxpyPlan,
    prefetch: bool,
    charge: &dyn pario::IoCharge,
) -> Result<usize, OocError> {
    execute_recoverable(ctx, env, plan, prefetch, charge, &RecoveryOpts::default())
}

/// Full-featured entry point: like [`execute_with_charge`] plus optional
/// checkpointing and degraded-disk re-planning per [`RecoveryOpts`].
pub fn execute_recoverable(
    ctx: &ProcCtx,
    env: &mut OocEnv,
    plan: &GaxpyPlan,
    prefetch: bool,
    charge: &dyn pario::IoCharge,
    opts: &RecoveryOpts<'_>,
) -> Result<usize, OocError> {
    match plan.strategy {
        SlabStrategy::ColumnSlab => column_version(ctx, env, plan, prefetch, charge, opts),
        SlabStrategy::RowSlab => row_version(ctx, env, plan, prefetch, charge, opts),
    }
}

/// Checkpoint tag for a GAXPY statement writing `c`.
fn ckpt_tag(plan: &GaxpyPlan) -> String {
    format!("gaxpy-{}", plan.c.name)
}

/// Restore this statement's checkpoint (if any) and agree on the restart
/// watermark: every rank resumes from the minimum progress any rank saved,
/// so the per-column reduces below stay in lockstep. Ranks ahead of the
/// minimum recompute the gap idempotently.
fn agree_restart(
    ctx: &ProcCtx,
    env: &mut OocEnv,
    plan: &GaxpyPlan,
    dir: &std::path::Path,
) -> Result<usize, OocError> {
    let _span = ctx.trace_span(ooc_trace::Category::Checkpoint, "restore");
    let c_local = plan.c.local_shape(ctx.rank());
    let full = Section::full(&c_local);
    let saved =
        ooc_array::restore_checkpoint(env, &plan.c, &full, dir, &ckpt_tag(plan))?.unwrap_or(0);
    let min = ctx.try_allreduce(&[saved], ReduceOp::Min)?[0];
    Ok(min as usize)
}

/// Re-plan slab thicknesses against a degraded disk: once the fault layer
/// marks the disk degraded, the remaining slabs are re-split with the I/O
/// bandwidth derated by the injector's factor. Returns `None` while the
/// disk is healthy.
fn replan_degraded(
    env: &OocEnv,
    plan: &GaxpyPlan,
    opts: &RecoveryOpts<'_>,
) -> Option<(usize, usize)> {
    let model = opts.model?;
    if !env.disk_degraded() {
        return None;
    }
    let degraded = model.degrade_io(env.degrade_factor());
    Some(ooc_core::memory::split_gaxpy_budget_with_cache(
        plan.strategy,
        plan.n,
        plan.nprocs,
        plan.memory_elems(),
        ooc_core::memory::MemoryPolicy::Search,
        &degraded,
        opts.cache_budget,
    ))
}

/// Pipelined slab fetch: accumulate the read, then charge it overlapped
/// with the flops deferred since the previous fetch.
fn read_overlapped(
    env: &mut OocEnv,
    desc: &ooc_array::ArrayDesc,
    sec: &Section,
    ctx: &ProcCtx,
    pending_flops: &mut u64,
) -> Result<Vec<f32>, IoError> {
    let pend = PendingIo::new();
    let data = env.read_section(desc, sec, &pend)?;
    let (r, b) = pend.reads();
    ctx.charge_prefetched_read(r, b, *pending_flops);
    *pending_flops = 0;
    Ok(data)
}

/// Deferred-or-immediate flop charge.
fn charge_or_defer(ctx: &ProcCtx, prefetch: bool, pending: &mut u64, flops: u64) {
    if prefetch {
        *pending += flops;
    } else {
        ctx.charge_flops(flops);
    }
}

/// Flush deferred flops (before a reduction that needs the results).
fn flush_pending(ctx: &ProcCtx, pending: &mut u64) {
    if *pending > 0 {
        ctx.charge_flops(*pending);
        *pending = 0;
    }
}

/// Owner (rank) of global column `j` of C.
fn owner_of(plan: &GaxpyPlan, j: usize) -> usize {
    plan.c.dist.owner(&[0, j])
}

/// The column-slab translation (Figure 9).
fn column_version(
    ctx: &ProcCtx,
    env: &mut OocEnv,
    plan: &GaxpyPlan,
    prefetch: bool,
    charge: &dyn pario::IoCharge,
    opts: &RecoveryOpts<'_>,
) -> Result<usize, OocError> {
    let rank = ctx.rank();
    let n = plan.n;
    let a_local = plan.a.local_shape(rank);
    let b_local = plan.b.local_shape(rank);
    let c_local = plan.c.local_shape(rank);
    let lc_a = a_local.extent(1); // local columns of A
    let lr_b = b_local.extent(0); // local rows of B (== lc_a)
    let lc_c = c_local.extent(1); // owned columns of C

    // Checkpointed restart: resume the outer loop at the agreed watermark
    // (global column index every rank has completed and persisted).
    let start_b = match opts.checkpoint_dir {
        Some(dir) => agree_restart(ctx, env, plan, dir)?,
        None => 0,
    };

    // Slab thicknesses may shrink mid-run under graceful degradation; both
    // are communication-transparent here because the reduce sequence is one
    // reduce per global column j in ascending order, whatever the slabbing.
    let mut slab_a = plan.slab_a;
    let mut slab_b = plan.slab_b;
    let mut replanned = false;

    // C write buffer: up to slab_c columns of n elements.
    let mut cbuf: Vec<f32> = Vec::with_capacity(n * plan.slab_c);
    // Columns with global index below the watermark are already on disk.
    let done_cols = (0..start_b).filter(|&j| owner_of(plan, j) == rank).count();
    let mut cbuf_start_col = done_cols; // first local C column in the buffer
    let mut next_c_col = done_cols; // next local C column to be produced

    let mut peak = 0usize;
    let mut pending_flops = 0u64;

    // Outer loop: slabs of B (columns of B's OCLA are global columns of C).
    let mut slab_idx = 0u64;
    let mut b_lo = start_b;
    while b_lo < n {
        let _slab = ctx.trace_slab_span("b_slab", slab_idx);
        let b_hi = (b_lo + slab_b).min(n);
        let b_sec = Section::new(vec![DimRange::new(0, lr_b), DimRange::new(b_lo, b_hi)]);
        let b_icla = if prefetch {
            read_overlapped(env, &plan.b, &b_sec, ctx, &mut pending_flops)?
        } else {
            env.read_section(&plan.b, &b_sec, charge)?
        };

        for m in 0..(b_hi - b_lo) {
            let j = b_lo + m; // global column of C
            let mut temp = vec![0.0f32; n];

            // Inner loop: stream the slabs of A; with prefetch, each fetch
            // overlaps the previous slab's multiply.
            let mut a_lo = 0usize;
            while a_lo < lc_a {
                let a_hi = (a_lo + slab_a).min(lc_a);
                let a_sec = Section::new(vec![DimRange::new(0, n), DimRange::new(a_lo, a_hi)]);
                let a_icla = if prefetch {
                    read_overlapped(env, &plan.a, &a_sec, ctx, &mut pending_flops)?
                } else {
                    env.read_section(&plan.a, &a_sec, charge)?
                };
                let wa = a_hi - a_lo;
                for ii in 0..wa {
                    // A's local column a_lo+ii pairs with B's local row of
                    // the same index (both are block slices of 1..n).
                    let bval = b_icla[(a_lo + ii) + m * lr_b];
                    let col = &a_icla[ii * n..(ii + 1) * n];
                    for (t, &av) in temp.iter_mut().zip(col) {
                        *t += av * bval;
                    }
                }
                charge_or_defer(ctx, prefetch, &mut pending_flops, (2 * n * wa) as u64);
                peak = peak.max(b_icla.len() + a_icla.len() + temp.len() + cbuf.capacity());
                a_lo = a_hi;
            }

            // Global sum to the owner of column j (needs temp complete:
            // flush any deferred work first).
            flush_pending(ctx, &mut pending_flops);
            let owner = owner_of(plan, j);
            let summed = ctx.try_reduce(&temp, ReduceOp::Sum, owner)?;
            if rank == owner {
                let column = summed.expect("root receives the sum");
                debug_assert_eq!(plan.c.dist.local_index(1, j), next_c_col);
                cbuf.extend_from_slice(&column);
                next_c_col += 1;
                if next_c_col - cbuf_start_col == plan.slab_c {
                    flush_c_columns(
                        env,
                        plan,
                        rank,
                        &mut cbuf,
                        cbuf_start_col,
                        next_c_col,
                        charge,
                    )?;
                    cbuf_start_col = next_c_col;
                }
            }
        }
        if let Some(dir) = opts.checkpoint_dir {
            let _ckpt = ctx.trace_span(ooc_trace::Category::Checkpoint, "checkpoint");
            // Persist every finished column, then checkpoint the local C
            // with the new watermark. The cbuf flush here only changes the
            // flush cadence when checkpointing is on.
            if next_c_col > cbuf_start_col {
                flush_c_columns(
                    env,
                    plan,
                    rank,
                    &mut cbuf,
                    cbuf_start_col,
                    next_c_col,
                    charge,
                )?;
                cbuf_start_col = next_c_col;
            }
            ooc_array::checkpoint_section(
                env,
                &plan.c,
                &Section::full(&c_local),
                dir,
                &ckpt_tag(plan),
                b_hi as u64,
            )?;
        }
        if !replanned {
            if let Some((sa, sb)) = replan_degraded(env, plan, opts) {
                slab_a = sa;
                slab_b = sb;
                replanned = true;
            }
        }
        slab_idx += 1;
        b_lo = b_hi;
    }

    // Ragged final C buffer.
    if next_c_col > cbuf_start_col {
        flush_c_columns(
            env,
            plan,
            rank,
            &mut cbuf,
            cbuf_start_col,
            next_c_col,
            charge,
        )?;
    }
    debug_assert_eq!(next_c_col, lc_c, "every owned column produced");
    if let Some(dir) = opts.checkpoint_dir {
        ooc_array::remove_checkpoint(dir, &ckpt_tag(plan), rank)?;
    }
    Ok(peak)
}

fn flush_c_columns(
    env: &mut OocEnv,
    plan: &GaxpyPlan,
    rank: usize,
    cbuf: &mut Vec<f32>,
    lo_col: usize,
    hi_col: usize,
    charge: &dyn pario::IoCharge,
) -> Result<(), IoError> {
    let n = plan.n;
    let c_local = plan.c.local_shape(rank);
    let sec = Section::new(vec![DimRange::new(0, n), DimRange::new(lo_col, hi_col)]);
    debug_assert_eq!(cbuf.len(), sec.len());
    debug_assert!(hi_col <= c_local.extent(1));
    env.write_section(&plan.c, &sec, cbuf, charge)?;
    cbuf.clear();
    Ok(())
}

/// The row-slab translation (Figure 12): A reorganized row-major and
/// streamed exactly once.
fn row_version(
    ctx: &ProcCtx,
    env: &mut OocEnv,
    plan: &GaxpyPlan,
    prefetch: bool,
    charge: &dyn pario::IoCharge,
    opts: &RecoveryOpts<'_>,
) -> Result<usize, OocError> {
    let rank = ctx.rank();
    let n = plan.n;
    let a_local = plan.a.local_shape(rank);
    let b_local = plan.b.local_shape(rank);
    let lc = a_local.extent(1); // local columns of A (== local rows of B)
    let lr_b = b_local.extent(0);

    let mut peak = 0usize;

    // Checkpointed restart at the agreed row watermark. Row-slab height is
    // part of the collective structure (one reduce per (row slab, column)),
    // so every saved watermark lies on a shared `slab_a` boundary and so
    // does their minimum.
    let start_r = match opts.checkpoint_dir {
        Some(dir) => agree_restart(ctx, env, plan, dir)?,
        None => 0,
    };

    // Graceful degradation can re-plan only B's streaming thickness here:
    // changing `slab_a` would change the reduce sequence and desynchronize
    // ranks that degrade at different times.
    let mut slab_b = plan.slab_b;
    let mut replanned = false;

    // Loop-invariant I/O motion: a B ICLA covering the whole OCLA is read
    // once, before the A-slab loop, and stays resident.
    let b_resident: Option<Vec<f32>> = if plan.slab_b >= n {
        let sec = Section::new(vec![DimRange::new(0, lr_b), DimRange::new(0, n)]);
        Some(env.read_section(&plan.b, &sec, charge)?)
    } else {
        None
    };

    let mut pending_flops = 0u64;
    let mut slab_idx = 0u64;
    let mut r_lo = start_r;
    while r_lo < n {
        let _slab = ctx.trace_slab_span("a_row_slab", slab_idx);
        let r_hi = (r_lo + plan.slab_a).min(n);
        let h = r_hi - r_lo;
        let a_sec = Section::new(vec![DimRange::new(r_lo, r_hi), DimRange::new(0, lc)]);
        // h x lc, CM; with prefetch this fetch overlaps deferred work.
        let a_icla = if prefetch {
            read_overlapped(env, &plan.a, &a_sec, ctx, &mut pending_flops)?
        } else {
            env.read_section(&plan.a, &a_sec, charge)?
        };

        // One row slab of C's owned columns accumulates here.
        let c_cols = plan.c.local_shape(rank).extent(1);
        let mut cbuf = vec![0.0f32; h * c_cols];

        let mut b_lo = 0usize;
        while b_lo < n {
            let b_hi = (b_lo + slab_b).min(n);
            let b_icla_local;
            let b_icla: &[f32] = match &b_resident {
                Some(whole) => whole,
                None => {
                    let b_sec =
                        Section::new(vec![DimRange::new(0, lr_b), DimRange::new(b_lo, b_hi)]);
                    b_icla_local = env.read_section(&plan.b, &b_sec, charge)?;
                    &b_icla_local
                }
            };

            for m in 0..(b_hi - b_lo) {
                let j = b_lo + m;
                let mut temp = vec![0.0f32; h];
                for i in 0..lc {
                    let bval = b_icla[i + m * lr_b];
                    let col = &a_icla[i * h..(i + 1) * h];
                    for (t, &av) in temp.iter_mut().zip(col) {
                        *t += av * bval;
                    }
                }
                charge_or_defer(ctx, prefetch, &mut pending_flops, (2 * h * lc) as u64);
                peak = peak.max(a_icla.len() + b_icla.len() + temp.len() + cbuf.len());

                flush_pending(ctx, &mut pending_flops);
                let owner = owner_of(plan, j);
                let summed = ctx.try_reduce(&temp, ReduceOp::Sum, owner)?;
                if rank == owner {
                    let sub = summed.expect("root receives the sum");
                    let local_j = plan.c.dist.local_index(1, j);
                    cbuf[local_j * h..(local_j + 1) * h].copy_from_slice(&sub);
                }
            }
            b_lo = b_hi;
        }

        // Write this row slab of C (rows r_lo..r_hi of all owned columns).
        let c_sec = Section::new(vec![DimRange::new(r_lo, r_hi), DimRange::new(0, c_cols)]);
        env.write_section(&plan.c, &c_sec, &cbuf, charge)?;
        if let Some(dir) = opts.checkpoint_dir {
            let _ckpt = ctx.trace_span(ooc_trace::Category::Checkpoint, "checkpoint");
            ooc_array::checkpoint_section(
                env,
                &plan.c,
                &Section::full(&plan.c.local_shape(rank)),
                dir,
                &ckpt_tag(plan),
                r_hi as u64,
            )?;
        }
        if !replanned {
            if let Some((_, sb)) = replan_degraded(env, plan, opts) {
                slab_b = sb;
                replanned = true;
            }
        }
        slab_idx += 1;
        r_lo = r_hi;
    }
    if let Some(dir) = opts.checkpoint_dir {
        ooc_array::remove_checkpoint(dir, &ckpt_tag(plan), rank)?;
    }
    Ok(peak)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{assemble_global, max_abs_diff, ref_gaxpy};
    use dmsim::{Machine, MachineConfig};
    use ooc_array::{ArrayDesc, ArrayId, Distribution, FileLayout, Shape};
    use pario::ElemKind;

    fn make_plan(strategy: SlabStrategy, n: usize, p: usize, sa: usize, sb: usize) -> GaxpyPlan {
        let col = Distribution::column_block(Shape::matrix(n, n), p);
        let row = Distribution::row_block(Shape::matrix(n, n), p);
        let (la, lc) = match strategy {
            SlabStrategy::ColumnSlab => (FileLayout::column_major(2), FileLayout::column_major(2)),
            SlabStrategy::RowSlab => (FileLayout::row_major(2), FileLayout::row_major(2)),
        };
        GaxpyPlan {
            strategy,
            a: ArrayDesc::new(ArrayId(0), "a", ElemKind::F32, col.clone()).with_layout(la),
            b: ArrayDesc::new(ArrayId(1), "b", ElemKind::F32, row),
            c: ArrayDesc::new(ArrayId(2), "c", ElemKind::F32, col).with_layout(lc),
            n,
            nprocs: p,
            slab_a: sa,
            slab_b: sb,
            slab_c: sa.min(n / p),
        }
    }

    fn fa(g: &[usize]) -> f32 {
        ((g[0] * 7 + g[1] * 3) % 11) as f32 - 5.0
    }
    fn fb(g: &[usize]) -> f32 {
        ((g[0] * 5 + g[1]) % 13) as f32 - 6.0
    }

    fn run_plan(plan: &GaxpyPlan) -> (Vec<f32>, dmsim::RunReport) {
        let p = plan.nprocs;
        let machine = Machine::new(MachineConfig::delta(p));
        let (report, results) = machine.run_with(|ctx| {
            let mut env = OocEnv::in_memory(ctx.rank());
            env.alloc(&plan.a).unwrap();
            env.alloc(&plan.b).unwrap();
            env.alloc(&plan.c).unwrap();
            env.load_global(&plan.a, &fa).unwrap();
            env.load_global(&plan.b, &fb).unwrap();
            execute(ctx, &mut env, plan, false).unwrap();
            env.read_local_all(&plan.c).unwrap()
        });
        let locals: Vec<&[f32]> = results.iter().map(|v| v.as_slice()).collect();
        let (_, c) = assemble_global(&plan.c, &locals);
        (c, report)
    }

    #[test]
    fn both_versions_compute_the_same_correct_product() {
        let n = 16;
        let p = 4;
        let expect = ref_gaxpy(n, &fa, &fb);
        for strategy in [SlabStrategy::ColumnSlab, SlabStrategy::RowSlab] {
            let plan = make_plan(strategy, n, p, 2, 4);
            let (c, _) = run_plan(&plan);
            assert!(
                max_abs_diff(&c, &expect) < 1e-3,
                "{strategy:?} wrong result"
            );
        }
    }

    #[test]
    fn measured_io_matches_the_estimator_exactly() {
        for (strategy, sa, sb) in [
            (SlabStrategy::ColumnSlab, 2, 4),
            (SlabStrategy::ColumnSlab, 3, 5), // ragged
            (SlabStrategy::RowSlab, 4, 4),
            (SlabStrategy::RowSlab, 5, 7), // ragged
        ] {
            let plan = make_plan(strategy, 16, 4, sa, sb);
            let nest = ooc_core::nodegen::gaxpy_nest(&plan);
            let predicted = ooc_core::ir::totals(&nest);
            let (_, report) = run_plan(&plan);
            let per0 = report.per_proc()[0].stats;
            assert_eq!(
                per0.io_read_requests,
                predicted.per_array["a"].read_requests + predicted.per_array["b"].read_requests,
                "{strategy:?} sa={sa} sb={sb} read requests"
            );
            assert_eq!(
                per0.io_bytes_read / 4,
                predicted.per_array["a"].read_elems + predicted.per_array["b"].read_elems,
                "{strategy:?} read elems"
            );
            assert_eq!(
                per0.io_write_requests, predicted.per_array["c"].write_requests,
                "{strategy:?} write requests"
            );
            assert_eq!(
                per0.io_bytes_written / 4,
                predicted.per_array["c"].write_elems,
                "{strategy:?} write elems"
            );
        }
    }

    fn run_plan_cached(plan: &GaxpyPlan, budget: usize) -> (Vec<f32>, dmsim::RunReport) {
        let p = plan.nprocs;
        let machine = Machine::new(MachineConfig::delta(p));
        let (report, results) = machine.run_with(|ctx| {
            let mut env = OocEnv::in_memory(ctx.rank());
            env.alloc(&plan.a).unwrap();
            env.alloc(&plan.b).unwrap();
            env.alloc(&plan.c).unwrap();
            env.load_global(&plan.a, &fa).unwrap();
            env.load_global(&plan.b, &fb).unwrap();
            // Cache goes live after the uncharged setup, cold — exactly
            // what the reuse predictor models.
            env.enable_cache(budget);
            execute(ctx, &mut env, plan, false).unwrap();
            env.flush_cache(ctx).unwrap();
            env.read_local_all(&plan.c).unwrap()
        });
        let locals: Vec<&[f32]> = results.iter().map(|v| v.as_slice()).collect();
        let (_, c) = assemble_global(&plan.c, &locals);
        (c, report)
    }

    #[test]
    fn cached_measured_io_matches_the_reuse_predictor_exactly() {
        let n = 16;
        let p = 4;
        let expect = ref_gaxpy(n, &fa, &fb);
        for (strategy, sa, sb, budget) in [
            // One resident A slab (sa = lc): budget of A + B slab + C buffer
            // turns all A re-reads into hits.
            (
                SlabStrategy::ColumnSlab,
                4,
                4,
                (16 * 4 + 4 * 4 + 16 * 4) * 4,
            ),
            // Generous budget, small slabs.
            (SlabStrategy::ColumnSlab, 2, 4, 1 << 20),
            (SlabStrategy::ColumnSlab, 3, 5, 1 << 20), // ragged
            (SlabStrategy::RowSlab, 4, 4, 1 << 20),
            (SlabStrategy::RowSlab, 5, 7, 1 << 20), // ragged
            // Tiny budget: constant eviction, still exact.
            (SlabStrategy::ColumnSlab, 2, 4, 256),
            (SlabStrategy::RowSlab, 4, 4, 0),
        ] {
            let plan = make_plan(strategy, n, p, sa, sb);
            let predicted = ooc_core::reuse::gaxpy_cached_totals(&plan, 0, budget);
            let (c, report) = run_plan_cached(&plan, budget);
            assert!(
                max_abs_diff(&c, &expect) < 1e-3,
                "{strategy:?} budget={budget} wrong result"
            );
            let per0 = report.per_proc()[0].stats;
            assert_eq!(
                per0.io_read_requests,
                predicted.per_array["a"].read_requests + predicted.per_array["b"].read_requests,
                "{strategy:?} sa={sa} sb={sb} budget={budget} read requests"
            );
            assert_eq!(
                per0.io_bytes_read / 4,
                predicted.per_array["a"].read_elems + predicted.per_array["b"].read_elems,
                "{strategy:?} budget={budget} read elems"
            );
            assert_eq!(
                per0.io_write_requests, predicted.per_array["c"].write_requests,
                "{strategy:?} budget={budget} write requests"
            );
            assert_eq!(
                per0.io_bytes_written / 4,
                predicted.per_array["c"].write_elems,
                "{strategy:?} budget={budget} write elems"
            );
        }
    }

    #[test]
    fn a_resident_cache_budget_cuts_requests_and_time() {
        // slab_a = lc makes A one slab revisited for every column of C; a
        // budget holding A + a B slab + the C buffer captures all of that
        // reuse. Requests and simulated time must strictly drop.
        let n = 16;
        let p = 4;
        let plan = make_plan(SlabStrategy::ColumnSlab, n, p, n / p, 4);
        let budget = (n * (n / p) + (n / p) * plan.slab_b + n * plan.slab_c) * 4;
        let (_, base) = run_plan(&plan);
        let (_, cached) = run_plan_cached(&plan, budget);
        let (b0, c0) = (base.per_proc()[0].stats, cached.per_proc()[0].stats);
        assert!(
            c0.io_requests() < b0.io_requests(),
            "cached {} !< uncached {}",
            c0.io_requests(),
            b0.io_requests()
        );
        assert!(c0.cache_hits > 0, "reuse must register as hits");
        assert!(
            cached.elapsed() < base.elapsed(),
            "cached {} !< uncached {}",
            cached.elapsed(),
            base.elapsed()
        );
    }

    #[test]
    fn row_version_does_an_order_of_magnitude_less_io() {
        let n = 64;
        let p = 4;
        let col = make_plan(SlabStrategy::ColumnSlab, n, p, 4, 16);
        let row = make_plan(SlabStrategy::RowSlab, n, p, 16, 16); // same slab elems
        let (_, rc) = run_plan(&col);
        let (_, rr) = run_plan(&row);
        let col_bytes = rc.per_proc()[0].stats.io_bytes_read;
        let row_bytes = rr.per_proc()[0].stats.io_bytes_read;
        assert!(
            col_bytes > 10 * row_bytes,
            "col {col_bytes} vs row {row_bytes}"
        );
    }

    #[test]
    fn prefetch_shrinks_time_but_not_counts() {
        let plan = make_plan(SlabStrategy::ColumnSlab, 32, 4, 2, 8);
        let run_with = |prefetch: bool| {
            let machine = Machine::new(MachineConfig::delta(4));
            machine.run(|ctx| {
                let mut env = OocEnv::in_memory(ctx.rank());
                env.alloc(&plan.a).unwrap();
                env.alloc(&plan.b).unwrap();
                env.alloc(&plan.c).unwrap();
                env.load_global(&plan.a, &fa).unwrap();
                env.load_global(&plan.b, &fb).unwrap();
                execute(ctx, &mut env, &plan, prefetch).unwrap();
            })
        };
        let base = run_with(false);
        let pre = run_with(true);
        assert!(
            pre.elapsed() < base.elapsed(),
            "prefetch {} !< base {}",
            pre.elapsed(),
            base.elapsed()
        );
        let (b0, p0) = (base.per_proc()[0].stats, pre.per_proc()[0].stats);
        assert_eq!(b0.io_requests(), p0.io_requests());
        assert_eq!(b0.io_bytes(), p0.io_bytes());
        assert_eq!(b0.flops, p0.flops);
    }

    #[test]
    fn prefetched_result_is_still_correct() {
        let n = 16;
        let expect = ref_gaxpy(n, &fa, &fb);
        for strategy in [SlabStrategy::ColumnSlab, SlabStrategy::RowSlab] {
            let plan = make_plan(strategy, n, 4, 3, 5);
            let machine = Machine::new(MachineConfig::free(4));
            let (_, results) = machine.run_with(|ctx| {
                let mut env = OocEnv::in_memory(ctx.rank());
                env.alloc(&plan.a).unwrap();
                env.alloc(&plan.b).unwrap();
                env.alloc(&plan.c).unwrap();
                env.load_global(&plan.a, &fa).unwrap();
                env.load_global(&plan.b, &fb).unwrap();
                execute(ctx, &mut env, &plan, true).unwrap();
                env.read_local_all(&plan.c).unwrap()
            });
            let locals: Vec<&[f32]> = results.iter().map(|v| v.as_slice()).collect();
            let (_, c) = assemble_global(&plan.c, &locals);
            assert!(max_abs_diff(&c, &expect) < 1e-3, "{strategy:?}");
        }
    }

    #[test]
    fn peak_memory_within_plan_budget() {
        for strategy in [SlabStrategy::ColumnSlab, SlabStrategy::RowSlab] {
            let plan = make_plan(strategy, 16, 4, 2, 4);
            let machine = Machine::new(MachineConfig::free(4));
            let (_, peaks) = machine.run_with(|ctx| {
                let mut env = OocEnv::in_memory(ctx.rank());
                env.alloc(&plan.a).unwrap();
                env.alloc(&plan.b).unwrap();
                env.alloc(&plan.c).unwrap();
                execute(ctx, &mut env, &plan, false).unwrap()
            });
            let budget = plan.memory_elems();
            for peak in peaks {
                assert!(
                    peak <= budget,
                    "{strategy:?}: peak {peak} exceeds budget {budget}"
                );
            }
        }
    }
}
