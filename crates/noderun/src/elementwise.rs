//! Elementwise forall executor: ghost exchange + stripmined evaluation.
//!
//! The plan's arrays all share one distribution, so the owner-computes
//! local iteration space is the local part of the global region. Shifted
//! references crossing the processor boundary along the distributed
//! dimension are served from ghost strips exchanged once, up front (HPF
//! copy-in semantics: the exchange happens before any element of the
//! statement is stored).

use std::collections::HashMap;

use dmsim::{Payload, ProcCtx, Tag};
use ooc_array::{DimDist, DimRange, OocEnv, OocError, Section, Shape};
use ooc_core::hir::ElwExpr;
use ooc_core::partition::local_iteration_space;
use ooc_core::plan::ElwPlan;

const GHOST_TAG: Tag = Tag(0x6057);

/// Ghost strips for one (rhs array, dimension) pair, in section-CM order.
struct Ghost {
    /// Strip from the lower neighbor: serves local indices `-lo_width..0`
    /// along the dimension. `(section in the neighbor's local space, data)`.
    lo: Option<(Section, Vec<f32>)>,
    /// Strip from the upper neighbor: serves `ext..ext+hi_width`.
    hi: Option<(Section, Vec<f32>)>,
}

/// Expression with array references resolved to rhs-array indices.
enum CExpr {
    Const(f32),
    Ref { ai: usize, offsets: Vec<isize> },
    Neg(Box<CExpr>),
    Add(Box<CExpr>, Box<CExpr>),
    Sub(Box<CExpr>, Box<CExpr>),
    Mul(Box<CExpr>, Box<CExpr>),
    Div(Box<CExpr>, Box<CExpr>),
}

fn compile_expr(e: &ElwExpr, plan: &ElwPlan) -> CExpr {
    match e {
        ElwExpr::Const(v) => CExpr::Const(*v),
        ElwExpr::Ref { array, offsets } => {
            let ai = plan
                .rhs_arrays
                .iter()
                .position(|d| d.name == *array)
                .unwrap_or_else(|| panic!("rhs array `{array}` missing from plan"));
            CExpr::Ref {
                ai,
                offsets: offsets.clone(),
            }
        }
        ElwExpr::Neg(i) => CExpr::Neg(Box::new(compile_expr(i, plan))),
        ElwExpr::Add(l, r) => CExpr::Add(
            Box::new(compile_expr(l, plan)),
            Box::new(compile_expr(r, plan)),
        ),
        ElwExpr::Sub(l, r) => CExpr::Sub(
            Box::new(compile_expr(l, plan)),
            Box::new(compile_expr(r, plan)),
        ),
        ElwExpr::Mul(l, r) => CExpr::Mul(
            Box::new(compile_expr(l, plan)),
            Box::new(compile_expr(r, plan)),
        ),
        ElwExpr::Div(l, r) => CExpr::Div(
            Box::new(compile_expr(l, plan)),
            Box::new(compile_expr(r, plan)),
        ),
    }
}

/// Execute the plan on this processor. Returns peak in-core elements.
///
/// With `prefetch`, each stage's slab reads overlap the previous stage's
/// deferred computation (stencil stages have no intervening collective, so
/// the overlap is effective — unlike the GAXPY row version).
pub fn execute(ctx: &ProcCtx, env: &mut OocEnv, plan: &ElwPlan) -> Result<usize, OocError> {
    execute_prefetched(ctx, env, plan, false)
}

/// See [`execute`]; `prefetch` selects the software-pipelined variant.
pub fn execute_prefetched(
    ctx: &ProcCtx,
    env: &mut OocEnv,
    plan: &ElwPlan,
    prefetch: bool,
) -> Result<usize, OocError> {
    let rank = ctx.rank();
    let local_shape = plan.lhs.local_shape(rank);
    let ndims = local_shape.ndims();
    let mut peak = 0usize;

    // Mixed-distribution right-hand sides were remapped by the compiler:
    // redistribute each into its statement-local temporary first.
    for remap in &plan.pre_remaps {
        ooc_array::redistribute_with(ctx, env, &remap.src, &remap.tmp, remap.method, ctx)?;
        peak = peak.max(remap.src.local_shape(rank).len());
    }

    // ---- Ghost exchange (charged I/O + real messages). -----------------
    let ghost_span = ctx.trace_span(ooc_trace::Category::Slab, "ghost_exchange");
    let mut ghosts: HashMap<(usize, usize), Ghost> = HashMap::new();
    for g in &plan.ghosts {
        let (p_axis, coord) = match plan.lhs.dist.dims()[g.dim] {
            DimDist::Distributed { axis, .. } => {
                debug_assert_eq!(plan.lhs.dist.grid().naxes(), 1, "1-D grids supported");
                let coords = plan.lhs.dist.grid().coords(rank);
                (plan.lhs.dist.grid().extent(axis), coords[axis])
            }
            DimDist::Collapsed => unreachable!("ghost along collapsed dim"),
        };
        let ext = local_shape.extent(g.dim);

        for (ai, rd) in plan.rhs_arrays.iter().enumerate() {
            let rd_local = rd.local_shape(rank);
            // Send my lowest hi_width rows to the lower neighbor (they are
            // its upper ghosts) and my highest lo_width rows to the upper
            // neighbor (its lower ghosts).
            if coord > 0 && g.hi_width > 0 {
                let sec = Section::full(&rd_local)
                    .with_range(g.dim, DimRange::new(0, g.hi_width.min(ext)));
                let data = env.read_section(rd, &sec, ctx)?;
                ctx.send(rank - 1, GHOST_TAG, Payload::F32(data));
            }
            if coord + 1 < p_axis && g.lo_width > 0 {
                let lo = ext.saturating_sub(g.lo_width);
                let sec = Section::full(&rd_local).with_range(g.dim, DimRange::new(lo, ext));
                let data = env.read_section(rd, &sec, ctx)?;
                ctx.send(rank + 1, GHOST_TAG, Payload::F32(data));
            }
            let mut ghost = Ghost { lo: None, hi: None };
            if coord > 0 && g.lo_width > 0 {
                let nb = plan.lhs.local_shape(rank - 1);
                let nb_ext = nb.extent(g.dim);
                let sec = Section::full(&nb).with_range(
                    g.dim,
                    DimRange::new(nb_ext.saturating_sub(g.lo_width), nb_ext),
                );
                let data = ctx.try_recv_f32(rank - 1, GHOST_TAG)?;
                debug_assert_eq!(data.len(), sec.len());
                ghost.lo = Some((sec, data));
            }
            if coord + 1 < p_axis && g.hi_width > 0 {
                let nb = plan.lhs.local_shape(rank + 1);
                let sec = Section::full(&nb)
                    .with_range(g.dim, DimRange::new(0, g.hi_width.min(nb.extent(g.dim))));
                let data = ctx.try_recv_f32(rank + 1, GHOST_TAG)?;
                debug_assert_eq!(data.len(), sec.len());
                ghost.hi = Some((sec, data));
            }
            peak += ghost.lo.as_ref().map(|(_, d)| d.len()).unwrap_or(0)
                + ghost.hi.as_ref().map(|(_, d)| d.len()).unwrap_or(0);
            ghosts.insert((ai, g.dim), ghost);
        }
    }
    drop(ghost_span);
    let ghost_peak = peak;

    // ---- Stripmined evaluation. -----------------------------------------
    let Some(local_region) = local_iteration_space(&plan.lhs.dist, rank, &plan.region) else {
        // Nothing to compute here; the exchange above still served the
        // neighbors.
        return Ok(peak);
    };

    let expr = compile_expr(&plan.expr, plan);
    // Specialize: a linear combination with no ghost strips runs through
    // contiguous term-by-term loops instead of the per-point interpreter.
    let fast_kernel = if plan.ghosts.is_empty() {
        crate::kernels::linearize(&plan.expr, &|name| {
            plan.rhs_arrays
                .iter()
                .position(|d| d.name == name)
                .expect("rhs array present")
        })
    } else {
        None
    };
    let stmt_shifts = {
        let stmt = ooc_core::hir::ElwStmt {
            lhs: plan.lhs.name.clone(),
            region: plan.region.clone(),
            rhs: plan.expr.clone(),
        };
        stmt.max_shift(ndims)
    };

    let r = local_region.range(plan.slab_dim);
    let t = plan.slab_thickness.max(1);
    let mut pending_flops = 0u64;
    let mut slab_idx = 0u64;
    let mut lo = r.lo;
    while lo < r.hi {
        let _slab = ctx.trace_slab_span("slab", slab_idx);
        let hi = (lo + t).min(r.hi);
        let out_sec = local_region
            .clone()
            .with_range(plan.slab_dim, DimRange::new(lo, hi));

        // Widened input section per rhs array, clamped to the local array.
        // With prefetch, the whole stage's reads overlap the previous
        // stage's deferred compute.
        let pend = pario::PendingIo::new();
        let mut inputs: Vec<(Section, Vec<f32>)> = Vec::with_capacity(plan.rhs_arrays.len());
        for rd in &plan.rhs_arrays {
            let mut sec = out_sec.clone();
            for (d, &shift) in stmt_shifts.iter().enumerate().take(ndims) {
                let rr = sec.range(d);
                let a = rr.lo.saturating_sub(shift);
                let b = (rr.hi + shift).min(local_shape.extent(d));
                sec = sec.with_range(d, DimRange::new(a, b));
            }
            let data = if prefetch {
                env.read_section(rd, &sec, &pend)?
            } else {
                env.read_section(rd, &sec, ctx)?
            };
            inputs.push((sec, data));
        }
        if prefetch {
            let (reqs, bytes) = pend.reads();
            ctx.charge_prefetched_read(reqs, bytes, pending_flops);
            pending_flops = 0;
        }

        let mut out = vec![0.0f32; out_sec.len()];
        match &fast_kernel {
            Some(k) => crate::kernels::run_linear(k, &out_sec, &inputs, &mut out),
            None => {
                for (pos, idx) in out_sec.indices().enumerate() {
                    out[pos] = eval(&expr, &idx, &inputs, &ghosts, &local_shape);
                }
            }
        }
        if prefetch {
            pending_flops += out_sec.len() as u64 * plan.flops_per_point;
        } else {
            ctx.charge_flops(out_sec.len() as u64 * plan.flops_per_point);
        }
        peak =
            peak.max(ghost_peak + out.len() + inputs.iter().map(|(_, d)| d.len()).sum::<usize>());

        env.write_section(&plan.lhs, &out_sec, &out, ctx)?;
        slab_idx += 1;
        lo = hi;
    }
    if pending_flops > 0 {
        ctx.charge_flops(pending_flops);
    }
    Ok(peak)
}

fn eval(
    e: &CExpr,
    idx: &[usize],
    inputs: &[(Section, Vec<f32>)],
    ghosts: &HashMap<(usize, usize), Ghost>,
    local_shape: &Shape,
) -> f32 {
    match e {
        CExpr::Const(v) => *v,
        CExpr::Neg(i) => -eval(i, idx, inputs, ghosts, local_shape),
        CExpr::Add(l, r) => {
            eval(l, idx, inputs, ghosts, local_shape) + eval(r, idx, inputs, ghosts, local_shape)
        }
        CExpr::Sub(l, r) => {
            eval(l, idx, inputs, ghosts, local_shape) - eval(r, idx, inputs, ghosts, local_shape)
        }
        CExpr::Mul(l, r) => {
            eval(l, idx, inputs, ghosts, local_shape) * eval(r, idx, inputs, ghosts, local_shape)
        }
        CExpr::Div(l, r) => {
            eval(l, idx, inputs, ghosts, local_shape) / eval(r, idx, inputs, ghosts, local_shape)
        }
        CExpr::Ref { ai, offsets } => sample(*ai, idx, offsets, inputs, ghosts, local_shape),
    }
}

/// Fetch `array[idx + offsets]`, falling back to ghost strips when the
/// target leaves the local index space along a distributed dimension.
fn sample(
    ai: usize,
    idx: &[usize],
    offsets: &[isize],
    inputs: &[(Section, Vec<f32>)],
    ghosts: &HashMap<(usize, usize), Ghost>,
    local_shape: &Shape,
) -> f32 {
    let ndims = idx.len();
    let mut target = vec![0isize; ndims];
    let mut oob_dim: Option<usize> = None;
    for d in 0..ndims {
        let t = idx[d] as isize + offsets[d];
        target[d] = t;
        if t < 0 || t >= local_shape.extent(d) as isize {
            debug_assert!(
                oob_dim.is_none(),
                "corner ghost (two out-of-bounds dims) not supported on 1-D grids"
            );
            oob_dim = Some(d);
        }
    }
    match oob_dim {
        None => {
            let (sec, data) = &inputs[ai];
            data[section_cm_index(sec, &target)]
        }
        Some(d) => {
            let ghost = ghosts
                .get(&(ai, d))
                .unwrap_or_else(|| panic!("reference leaves local space without ghosts (dim {d})"));
            if target[d] < 0 {
                let (sec, data) = ghost
                    .lo
                    .as_ref()
                    .expect("lower ghost present (boundary region excluded it otherwise)");
                // Neighbor-local coordinate of the target row.
                let nb_ext = sec.range(d).hi; // strips end at the neighbor's extent
                let mut nb_target = target.clone();
                nb_target[d] += nb_ext as isize;
                data[section_cm_index(sec, &nb_target)]
            } else {
                let (sec, data) = ghost.hi.as_ref().expect("upper ghost present");
                let mut nb_target = target.clone();
                nb_target[d] -= local_shape.extent(d) as isize;
                data[section_cm_index(sec, &nb_target)]
            }
        }
    }
}

/// Column-major position of an absolute local index inside a section.
fn section_cm_index(sec: &Section, target: &[isize]) -> usize {
    let mut pos = 0usize;
    let mut stride = 1usize;
    for (d, &t) in target.iter().enumerate().take(sec.ndims()) {
        let r = sec.range(d);
        debug_assert!(
            t >= r.lo as isize && (t as usize) < r.hi,
            "target {t} outside section dim {d} [{}, {})",
            r.lo,
            r.hi
        );
        pos += (t as usize - r.lo) * stride;
        stride *= r.len();
    }
    pos
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{assemble_global, max_abs_diff, ref_jacobi};
    use dmsim::{Machine, MachineConfig};
    use ooc_array::{ArrayDesc, ArrayId, Distribution, Shape as AShape};
    use ooc_core::hir::ElwExpr;
    use pario::ElemKind;

    fn jacobi_plan(n: usize, p: usize, thickness: usize, row_block: bool) -> ElwPlan {
        let shape = AShape::matrix(n, n);
        let dist = if row_block {
            Distribution::row_block(shape.clone(), p)
        } else {
            Distribution::column_block(shape.clone(), p)
        };
        let u = ArrayDesc::new(ArrayId(0), "u", ElemKind::F32, dist.clone());
        let v = ArrayDesc::new(ArrayId(1), "v", ElemKind::F32, dist.clone());
        let sum = ElwExpr::add(
            ElwExpr::add(
                ElwExpr::shifted("u", vec![-1, 0]),
                ElwExpr::shifted("u", vec![1, 0]),
            ),
            ElwExpr::add(
                ElwExpr::shifted("u", vec![0, -1]),
                ElwExpr::shifted("u", vec![0, 1]),
            ),
        );
        let expr = ElwExpr::mul(ElwExpr::Const(0.25), sum);
        let region = Section::new(vec![DimRange::new(1, n - 1), DimRange::new(1, n - 1)]);
        let ghosts = if row_block {
            vec![ooc_core::plan::GhostSpec {
                dim: 0,
                lo_width: 1,
                hi_width: 1,
            }]
        } else {
            vec![ooc_core::plan::GhostSpec {
                dim: 1,
                lo_width: 1,
                hi_width: 1,
            }]
        };
        let slab_dim = if row_block { 0 } else { 1 };
        ElwPlan {
            pre_remaps: vec![],
            lhs: v,
            rhs_arrays: vec![u],
            expr: expr.clone(),
            region,
            slab_dim,
            slab_thickness: thickness,
            ghosts,
            flops_per_point: expr.flops_per_point(),
        }
    }

    fn init_u(g: &[usize]) -> f32 {
        ((g[0] * 13 + g[1] * 7) % 17) as f32 - 8.0
    }

    fn run_jacobi(n: usize, p: usize, thickness: usize, row_block: bool) -> Vec<f32> {
        let plan = jacobi_plan(n, p, thickness, row_block);
        let machine = Machine::new(MachineConfig::free(p));
        let (_, results) = machine.run_with(|ctx| {
            let mut env = OocEnv::in_memory(ctx.rank());
            env.alloc(&plan.rhs_arrays[0]).unwrap();
            env.alloc(&plan.lhs).unwrap();
            env.load_global(&plan.rhs_arrays[0], &init_u).unwrap();
            // v starts as a copy of u so the untouched boundary matches the
            // reference.
            env.load_global(&plan.lhs, &init_u).unwrap();
            execute(ctx, &mut env, &plan).unwrap();
            env.read_local_all(&plan.lhs).unwrap()
        });
        let locals: Vec<&[f32]> = results.iter().map(|v| v.as_slice()).collect();
        assemble_global(&plan.lhs, &locals).1
    }

    #[test]
    fn jacobi_sweep_matches_reference_both_distributions() {
        let n = 12;
        let expect = ref_jacobi(n, &init_u);
        for row_block in [true, false] {
            for p in [1, 2, 4] {
                for thickness in [1, 3, 16] {
                    let got = run_jacobi(n, p, thickness, row_block);
                    assert!(
                        max_abs_diff(&got, &expect) < 1e-5,
                        "row_block={row_block} p={p} t={thickness}"
                    );
                }
            }
        }
    }

    #[test]
    fn ghost_exchange_sends_messages() {
        let plan = jacobi_plan(12, 3, 4, true);
        let machine = Machine::new(MachineConfig::delta(3));
        let report = machine.run(|ctx| {
            let mut env = OocEnv::in_memory(ctx.rank());
            env.alloc(&plan.rhs_arrays[0]).unwrap();
            env.alloc(&plan.lhs).unwrap();
            env.load_global(&plan.rhs_arrays[0], &init_u).unwrap();
            execute(ctx, &mut env, &plan).unwrap();
        });
        // Rank 1 (middle) exchanges with both neighbors: 2 sends.
        assert_eq!(report.per_proc()[1].stats.msgs_sent, 2);
        assert_eq!(report.per_proc()[0].stats.msgs_sent, 1);
    }

    #[test]
    fn scaled_copy_without_ghosts() {
        // v = 2*u + 1 with zero offsets: no communication at all.
        let n = 8;
        let shape = AShape::matrix(n, n);
        let dist = Distribution::column_block(shape.clone(), 2);
        let u = ArrayDesc::new(ArrayId(0), "u", ElemKind::F32, dist.clone());
        let v = ArrayDesc::new(ArrayId(1), "v", ElemKind::F32, dist);
        let expr = ElwExpr::add(
            ElwExpr::mul(ElwExpr::Const(2.0), ElwExpr::aref("u", 2)),
            ElwExpr::Const(1.0),
        );
        let plan = ElwPlan {
            pre_remaps: vec![],
            lhs: v.clone(),
            rhs_arrays: vec![u.clone()],
            expr: expr.clone(),
            region: Section::full(&shape),
            slab_dim: 1,
            slab_thickness: 2,
            ghosts: vec![],
            flops_per_point: expr.flops_per_point(),
        };
        let machine = Machine::new(MachineConfig::delta(2));
        let (report, results) = machine.run_with(|ctx| {
            let mut env = OocEnv::in_memory(ctx.rank());
            env.alloc(&u).unwrap();
            env.alloc(&v).unwrap();
            env.load_global(&u, &init_u).unwrap();
            execute(ctx, &mut env, &plan).unwrap();
            env.read_local_all(&v).unwrap()
        });
        assert_eq!(report.totals().msgs_sent, 0);
        let locals: Vec<&[f32]> = results.iter().map(|x| x.as_slice()).collect();
        let (gshape, got) = assemble_global(&v, &locals);
        for (off, idx) in Section::full(&gshape).indices().enumerate() {
            assert_eq!(got[off], 2.0 * init_u(&idx) + 1.0);
        }
    }

    #[test]
    fn linear_fast_path_agrees_with_the_interpreter() {
        // Same statement run twice: once eligible for the specialized
        // linear kernel, once forced onto the per-point interpreter by a
        // zero-width ghost spec (which disables the fast path but never
        // exchanges anything). Outputs must be identical.
        let n = 12;
        let shape = AShape::matrix(n, n);
        let dist = Distribution::column_block(shape.clone(), 3);
        let u = ArrayDesc::new(ArrayId(0), "u", ElemKind::F32, dist.clone());
        let w = ArrayDesc::new(ArrayId(1), "w", ElemKind::F32, dist.clone());
        let v = ArrayDesc::new(ArrayId(2), "v", ElemKind::F32, dist);
        // v = 2u(i-1,j) - w/4 + 1  (shift along the collapsed dim only).
        let expr = ElwExpr::add(
            ElwExpr::Sub(
                Box::new(ElwExpr::mul(
                    ElwExpr::Const(2.0),
                    ElwExpr::shifted("u", vec![-1, 0]),
                )),
                Box::new(ElwExpr::Div(
                    Box::new(ElwExpr::aref("w", 2)),
                    Box::new(ElwExpr::Const(4.0)),
                )),
            ),
            ElwExpr::Const(1.0),
        );
        let region = Section::new(vec![DimRange::new(1, n), DimRange::new(0, n)]);
        let base_plan = ElwPlan {
            pre_remaps: vec![],
            lhs: v.clone(),
            rhs_arrays: vec![u.clone(), w.clone()],
            expr: expr.clone(),
            region,
            slab_dim: 1,
            slab_thickness: 2,
            ghosts: vec![],
            flops_per_point: expr.flops_per_point(),
        };
        let mut forced_slow = base_plan.clone();
        forced_slow.ghosts.push(ooc_core::plan::GhostSpec {
            dim: 1,
            lo_width: 0,
            hi_width: 0,
        });

        let run_plan = |plan: &ElwPlan| -> Vec<f32> {
            let machine = Machine::new(MachineConfig::free(3));
            let (_, results) = machine.run_with(|ctx| {
                let mut env = OocEnv::in_memory(ctx.rank());
                env.alloc(&u).unwrap();
                env.alloc(&w).unwrap();
                env.alloc(&v).unwrap();
                env.load_global(&u, &init_u).unwrap();
                env.load_global(&w, &|g: &[usize]| (g[0] + 2 * g[1]) as f32)
                    .unwrap();
                execute(ctx, &mut env, plan).unwrap();
                env.read_local_all(&v).unwrap()
            });
            let locals: Vec<&[f32]> = results.iter().map(|x| x.as_slice()).collect();
            assemble_global(&v, &locals).1
        };

        let fast = run_plan(&base_plan);
        let slow = run_plan(&forced_slow);
        assert_eq!(fast, slow, "specialized kernel diverges from interpreter");
    }

    #[test]
    fn elementwise_prefetch_shrinks_time_not_counts() {
        let plan = jacobi_plan(24, 2, 3, true);
        let run_with = |prefetch: bool| {
            let machine = Machine::new(MachineConfig::delta(2));
            machine.run(|ctx| {
                let mut env = OocEnv::in_memory(ctx.rank());
                env.alloc(&plan.rhs_arrays[0]).unwrap();
                env.alloc(&plan.lhs).unwrap();
                env.load_global(&plan.rhs_arrays[0], &init_u).unwrap();
                execute_prefetched(ctx, &mut env, &plan, prefetch).unwrap();
            })
        };
        let base = run_with(false);
        let pre = run_with(true);
        assert!(
            pre.elapsed() < base.elapsed(),
            "prefetch {} !< base {}",
            pre.elapsed(),
            base.elapsed()
        );
        let (b0, p0) = (base.per_proc()[0].stats, pre.per_proc()[0].stats);
        assert_eq!(b0.io_requests(), p0.io_requests());
        assert_eq!(b0.io_bytes(), p0.io_bytes());
        assert_eq!(b0.flops, p0.flops);
    }

    #[test]
    fn measured_elw_io_matches_estimator() {
        // Interior/edge slab grouping in the estimator must agree with the
        // executor, including the ragged last stage.
        for thickness in [1, 2, 3, 5] {
            let plan = jacobi_plan(12, 2, thickness, true);
            let nest = ooc_core::nodegen::elw_nest(&plan, 0);
            let predicted = ooc_core::ir::totals(&nest);
            let machine = Machine::new(MachineConfig::delta(2));
            let report = machine.run(|ctx| {
                let mut env = OocEnv::in_memory(ctx.rank());
                env.alloc(&plan.rhs_arrays[0]).unwrap();
                env.alloc(&plan.lhs).unwrap();
                execute(ctx, &mut env, &plan).unwrap();
            });
            let s0 = report.per_proc()[0].stats;
            assert_eq!(
                s0.io_read_requests, predicted.per_array["u"].read_requests,
                "t={thickness}"
            );
            assert_eq!(
                s0.io_write_requests, predicted.per_array["v"].write_requests,
                "t={thickness}"
            );
        }
    }
}
